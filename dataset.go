package skycube

import (
	"fmt"
	"io"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
)

// MaxDims is the largest supported dimensionality (the paper evaluates up
// to d = 16; anything ≤ 20 works).
const MaxDims = mask.MaxDims

// Dataset is an immutable set of points over d dimensions. Smaller values
// are better on every dimension; normalise inputs accordingly (e.g. negate
// "higher is better" attributes).
type Dataset struct {
	ds *data.Dataset
}

// NewDataset builds a dataset from a row-major value slice: point i's value
// on dimension j is vals[i*dims+j].
func NewDataset(dims int, vals []float32) (*Dataset, error) {
	if dims <= 0 || dims > MaxDims {
		return nil, fmt.Errorf("skycube: dimensionality %d out of range [1,%d]", dims, MaxDims)
	}
	if len(vals) == 0 || len(vals)%dims != 0 {
		return nil, fmt.Errorf("skycube: %d values is not a positive multiple of %d dims", len(vals), dims)
	}
	ds := data.New(dims, vals)
	if err := data.CheckFinite(ds); err != nil {
		return nil, fmt.Errorf("skycube: %v", err)
	}
	return &Dataset{ds: ds}, nil
}

// DatasetFromRows builds a dataset from per-point rows, all the same width.
func DatasetFromRows(rows [][]float32) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("skycube: no rows")
	}
	d := len(rows[0])
	if d == 0 || d > MaxDims {
		return nil, fmt.Errorf("skycube: row width %d out of range [1,%d]", d, MaxDims)
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("skycube: row %d has %d values, want %d", i, len(r), d)
		}
	}
	ds := data.FromRows(rows)
	if err := data.CheckFinite(ds); err != nil {
		return nil, fmt.Errorf("skycube: %v", err)
	}
	return &Dataset{ds: ds}, nil
}

// ReadDataset parses the whitespace-separated text format: one point per
// line, '#' comments and blank lines skipped. Non-finite coordinates
// (NaN, ±Inf — which strconv happily parses) are rejected: they silently
// poison dominance tests otherwise.
func ReadDataset(r io.Reader) (*Dataset, error) {
	ds, err := data.Read(r)
	if err != nil {
		return nil, err
	}
	if err := data.CheckFinite(ds); err != nil {
		return nil, fmt.Errorf("skycube: %v", err)
	}
	return &Dataset{ds: ds}, nil
}

// Write emits the dataset in the text format ReadDataset parses.
func (d *Dataset) Write(w io.Writer) error { return d.ds.Write(w) }

// Len returns the number of points.
func (d *Dataset) Len() int { return d.ds.N }

// Dims returns the dimensionality.
func (d *Dataset) Dims() int { return d.ds.Dims }

// Point returns the coordinates of point id (read-only).
func (d *Dataset) Point(id int) []float32 { return d.ds.Point(id) }

// Distribution selects a synthetic benchmark family (Börzsönyi et al.).
type Distribution = gen.Distribution

// Synthetic distributions, re-exported for workload generation.
const (
	Independent    = gen.Independent
	Correlated     = gen.Correlated
	Anticorrelated = gen.Anticorrelated
)

// GenerateSynthetic produces the standard benchmark workload: n points over
// dims dimensions from dist, deterministic in seed.
func GenerateSynthetic(dist Distribution, n, dims int, seed int64) *Dataset {
	return &Dataset{ds: gen.Synthetic(dist, n, dims, seed)}
}

// RealWorkload names a stand-in for one of the paper's real datasets.
type RealWorkload = gen.RealDataset

// Real workload stand-ins (paper Table 2).
const (
	NBA       = gen.NBA
	Household = gen.Household
	Covertype = gen.Covertype
	Weather   = gen.Weather
)

// GenerateReal synthesises the named real-data stand-in at a scale factor
// in (0, 1]; scale 1 reproduces the published row count.
func GenerateReal(w RealWorkload, scale float64, seed int64) *Dataset {
	return &Dataset{ds: gen.Real(w, scale, seed)}
}

// CSVOptions configure ReadCSVDataset.
type CSVOptions = data.CSVOptions

// Direction states how a raw attribute relates to preference.
type Direction = data.Direction

// Attribute orientations for Normalize.
const (
	// LowerBetter attributes are already in skyline orientation.
	LowerBetter = data.LowerBetter
	// HigherBetter attributes are mirrored during normalisation.
	HigherBetter = data.HigherBetter
)

// ReadCSVDataset parses tabular data — optionally skipping a header row and
// selecting specific columns — into a dataset.
func ReadCSVDataset(r io.Reader, opt CSVOptions) (*Dataset, error) {
	ds, err := data.ReadCSV(r, opt)
	if err != nil {
		return nil, err
	}
	if ds.Dims > MaxDims {
		return nil, fmt.Errorf("skycube: csv has %d dimensions, max %d", ds.Dims, MaxDims)
	}
	if err := data.CheckFinite(ds); err != nil {
		return nil, fmt.Errorf("skycube: %v", err)
	}
	return &Dataset{ds: ds}, nil
}

// Normalize rescales every dimension into [0,1] with smaller-is-better
// orientation, mirroring dimensions marked HigherBetter. dirs may be nil
// (everything already lower-is-better) or must have one entry per
// dimension. Dominance relationships are preserved per dimension, so the
// skycube of the result equals the skycube of the correctly-oriented raw
// data.
func (d *Dataset) Normalize(dirs []Direction) (*Dataset, error) {
	norm, err := data.Normalize(d.ds, dirs)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: norm}, nil
}

// PartitionMode selects how Partition distributes points across shards.
type PartitionMode = data.PartitionMode

// Partition modes for horizontal sharding.
const (
	// RoundRobinPartition assigns point i to shard i mod k: shard s holds
	// the global ids s, s+k, s+2k, … (id base s, stride k). Every shard sees
	// the same distribution, and the arithmetic mapping stays valid as
	// shards grow.
	RoundRobinPartition = data.RoundRobin
	// RangePartition assigns balanced contiguous blocks (id stride 1).
	RangePartition = data.Range
	// GridPartition assigns axis-aligned spatial cells via recursive median
	// splits, so every shard's points live in a tight bounding box — the
	// shape the cluster tier's region pruning exploits. Positional id
	// mapping (stride 1 over the concatenation order), read-only clusters.
	GridPartition = data.Grid
	// AngularPartition cuts equal-count slices by the first hyperspherical
	// angle around the dataset's min corner, which keeps per-slice skylines
	// small on anticorrelated data. Positional id mapping, read-only.
	AngularPartition = data.Angular
)

// Partition splits the dataset into k horizontal shards for scale-out
// serving (internal/cluster): each shard is a standalone dataset whose rows
// keep their global ids through the mode's arithmetic mapping, so the union
// of shard-local skylines — a superset of the global skyline, since a
// globally undominated point is undominated within its shard — merges back
// exactly under one final dominance filter.
func (d *Dataset) Partition(k int, mode PartitionMode) ([]*Dataset, error) {
	parts, err := data.Partition(d.ds, k, mode)
	if err != nil {
		return nil, fmt.Errorf("skycube: %v", err)
	}
	out := make([]*Dataset, len(parts))
	for i, p := range parts {
		out[i] = &Dataset{ds: p}
	}
	return out, nil
}
