module skycube

go 1.22
