package skycube_test

import (
	"math/rand"
	"reflect"
	"testing"

	"skycube"
)

func TestNewUpdaterValidation(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 50, 4, 1)
	if _, err := skycube.NewUpdater(nil, skycube.Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := skycube.NewUpdater(ds, skycube.Options{Algorithm: skycube.STSC}); err == nil {
		t.Fatal("non-MDMC algorithm accepted")
	}
	if _, err := skycube.NewUpdater(ds, skycube.Options{MaxLevel: 2}); err == nil {
		t.Fatal("partial skycube accepted")
	}
	up, err := skycube.NewUpdater(ds, skycube.Options{MaxLevel: 4})
	if err != nil {
		t.Fatalf("MaxLevel == Dims rejected: %v", err)
	}
	up.Close()
}

// TestUpdaterPublicFlow drives the public API end to end — insert, delete,
// flush, pinned reads, compaction — and checks the served snapshot against
// a fresh one-shot build of the final dataset.
func TestUpdaterPublicFlow(t *testing.T) {
	const d = 4
	ds := skycube.GenerateSynthetic(skycube.Independent, 300, d, 21)
	up, err := skycube.NewUpdater(ds, skycube.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()

	live := make([]int32, ds.Len())
	for i := range live {
		live[i] = int32(i)
	}
	tail := skycube.GenerateSynthetic(skycube.Independent, 60, d, 22)
	for i := 0; i < tail.Len(); i++ {
		id, err := up.Insert(tail.Point(i))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	rng := rand.New(rand.NewSource(23))
	for k := 0; k < 40; k++ {
		idx := rng.Intn(len(live))
		if err := up.Delete(live[idx]); err != nil {
			t.Fatal(err)
		}
		live = append(live[:idx], live[idx+1:]...)
	}
	snap := up.Flush()
	if snap.Epoch() != 2 {
		t.Fatalf("epoch after one batch: %d", snap.Epoch())
	}
	if snap.Live() != len(live) {
		t.Fatalf("live = %d, want %d", snap.Live(), len(live))
	}

	checkAgainstFreshBuild(t, snap, live)

	// Pinned read: epoch 1 must still serve the original dataset's answers.
	pinned, ok := up.At(1)
	if !ok {
		t.Fatal("epoch 1 not addressable")
	}
	oracle, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := skycube.FullSpace(d)
	if got, want := pinned.Skyline(full), oracle.Skyline(full); !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned epoch 1 full-space skyline diverged:\n got %v\nwant %v", got, want)
	}

	// Compaction folds the overlay; answers must not change.
	compacted := up.Compact()
	if compacted.Epoch() != snap.Epoch()+1 {
		t.Fatalf("compaction epoch %d after %d", compacted.Epoch(), snap.Epoch())
	}
	checkAgainstFreshBuild(t, compacted, live)
	if up.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d", up.Stats().Compactions)
	}
}

// TestUpdaterCrossDevice runs the maintenance path with modelled GPUs in
// the device pool, so delete-triggered cuboid recomputes and compactions
// are scheduled cross-device.
func TestUpdaterCrossDevice(t *testing.T) {
	const d = 3
	ds := skycube.GenerateSynthetic(skycube.Correlated, 200, d, 5)
	up, err := skycube.NewUpdater(ds, skycube.Options{
		Threads: 2, GPUs: []skycube.GPUModel{skycube.GTX980}, CPUAlso: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	live := make([]int32, ds.Len())
	for i := range live {
		live[i] = int32(i)
	}
	// Delete current full-space members to force recomputes, insert a few.
	sky := up.Current().Skyline(skycube.FullSpace(d))
	for _, id := range sky[:min(5, len(sky))] {
		if err := up.Delete(id); err != nil {
			t.Fatal(err)
		}
		for i, v := range live {
			if v == id {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
	}
	extra := skycube.GenerateSynthetic(skycube.Correlated, 20, d, 6)
	for i := 0; i < extra.Len(); i++ {
		id, err := up.Insert(extra.Point(i))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	checkAgainstFreshBuild(t, up.Flush(), live)
	checkAgainstFreshBuild(t, up.Compact(), live)
}

// checkAgainstFreshBuild compares a snapshot with a one-shot QSkycube build
// over the snapshot's live points, on every subspace and for every live
// point's membership. Oracle rows are positions into the live slice, so
// they are remapped to updater ids before comparison.
func checkAgainstFreshBuild(t *testing.T, snap skycube.Snapshot, live []int32) {
	t.Helper()
	rows := make([][]float32, len(live))
	for i, id := range live {
		rows[i] = snap.Point(id)
	}
	final, err := skycube.DatasetFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := skycube.Build(final, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	toID := func(positions []int32) []int32 {
		if len(positions) == 0 {
			return nil
		}
		out := make([]int32, len(positions))
		for i, pos := range positions {
			out[i] = live[pos]
		}
		sortInt32s(out)
		return out
	}
	for _, delta := range skycube.AllSubspaces(snap.Dims()) {
		want := toID(oracle.Skyline(delta))
		if got := snap.Skyline(delta); !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d δ=%b:\n got %v\nwant %v", snap.Epoch(), delta, got, want)
		}
	}
	for pos, id := range live {
		if got, want := snap.Membership(id), oracle.Membership(int32(pos)); !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d membership of id %d: got %v, want %v", snap.Epoch(), id, got, want)
		}
	}
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
