// Benchmarks mirroring the paper's evaluation: one benchmark per figure
// and table (see DESIGN.md's per-experiment index), plus ablations of the
// design decisions. Each benchmark exercises the same code path as the
// corresponding cmd/experiments subcommand, at the "tiny" scale so that
// `go test -bench=.` completes quickly; run `cmd/experiments -scale small`
// (or `paper`) for the full sweeps recorded in EXPERIMENTS.md.
package skycube_test

import (
	"io"
	"testing"

	"skycube"
	"skycube/internal/bench"
	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/gpu"
	"skycube/internal/gpusim"
	"skycube/internal/lattice"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

func tinyScale(b *testing.B) bench.Scale {
	b.Helper()
	s, err := bench.ScaleByName("tiny")
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchDataset is the fixed workload for the per-algorithm benchmarks.
func benchDataset() *skycube.Dataset {
	return skycube.GenerateSynthetic(skycube.Independent, 2000, 6, 20170514)
}

func buildBench(b *testing.B, opt skycube.Options) {
	ds := benchDataset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skycube.Build(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: baseline single-thread parity -------------------------------

func BenchmarkFig4QSkycube(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
}

func BenchmarkFig4PQSkycube1T(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.PQSkycube, Threads: 1})
}

// --- Figure 5: thread scaling (modelled speedup harness) -------------------

func BenchmarkFig5ModelledSpeedup(b *testing.B) {
	s := tinyScale(b)
	for i := 0; i < b.N; i++ {
		bench.Fig5(io.Discard, s)
	}
}

// --- Figure 6: CPU algorithms on the default workload ----------------------

func BenchmarkFig6PQSkycube(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.PQSkycube, Threads: 4})
}

func BenchmarkFig6STSC(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.STSC, Threads: 4})
}

func BenchmarkFig6SDSC(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.SDSC, Threads: 4})
}

func BenchmarkFig6MDMC(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.MDMC, Threads: 4})
}

// --- Figure 7: GPU and cross-device runs -----------------------------------

func BenchmarkFig7SDSCGPU(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.SDSC, GPUs: []skycube.GPUModel{skycube.GTX980}})
}

func BenchmarkFig7MDMCGPU(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.MDMC, Threads: 4, GPUs: []skycube.GPUModel{skycube.GTX980}})
}

func BenchmarkFig7SDSCAll(b *testing.B) {
	buildBench(b, skycube.Options{
		Algorithm: skycube.SDSC, Threads: 4, CPUAlso: true,
		GPUs: []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan},
	})
}

func BenchmarkFig7MDMCAll(b *testing.B) {
	buildBench(b, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 4, CPUAlso: true,
		GPUs: []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan},
	})
}

// --- Figures 8–11: profiled hardware-counter runs --------------------------

func BenchmarkFig8to11HardwareProfile(b *testing.B) {
	s := tinyScale(b)
	for i := 0; i < b.N; i++ {
		bench.HardwareReports(s)
	}
}

// --- Figure 12: cross-device work shares ------------------------------------

func BenchmarkFig12WorkShares(b *testing.B) {
	s := tinyScale(b)
	for i := 0; i < b.N; i++ {
		bench.Fig12(io.Discard, s)
	}
}

// --- Figure 13: partial skycubes --------------------------------------------

func BenchmarkFig13PartialSTSC(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.STSC, Threads: 4, MaxLevel: 3})
}

func BenchmarkFig13PartialMDMC(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.MDMC, Threads: 4, MaxLevel: 3})
}

// --- Table 2: real-data stand-in generation ---------------------------------

func BenchmarkTable2StandIns(b *testing.B) {
	s := tinyScale(b)
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, s)
	}
}

// --- Table 3: real-data stand-in builds --------------------------------------

func BenchmarkTable3NBA(b *testing.B) {
	ds := skycube.GenerateReal(skycube.NBA, 0.05, 20170514)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Household(b *testing.B) {
	ds := skycube.GenerateReal(skycube.Household, 0.02, 20170514)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

func internalBenchData() *data.Dataset {
	return gen.Synthetic(gen.Independent, 2000, 6, 20170514)
}

func BenchmarkAblationTreeDepth3(b *testing.B) {
	ds := internalBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		templates.MDMC(ds, templates.MDMCOptions{Options: templates.Options{Threads: 4}})
	}
}

func BenchmarkAblationTreeDepth2(b *testing.B) {
	ds := internalBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		templates.MDMC(ds, templates.MDMCOptions{Options: templates.Options{Threads: 4}, TreeDepth: 2})
	}
}

func BenchmarkAblationNoFilter(b *testing.B) {
	ds := internalBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		templates.MDMC(ds, templates.MDMCOptions{Options: templates.Options{Threads: 4}, DisableFilter: true})
	}
}

func BenchmarkAblationNoMemo(b *testing.B) {
	ds := internalBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		templates.MDMC(ds, templates.MDMCOptions{Options: templates.Options{Threads: 4}, DisableMemo: true})
	}
}

func BenchmarkAblationParentMin(b *testing.B) {
	ds := internalBenchData()
	hook := templates.HybridCuboid(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.TopDown(ds, hook, lattice.TopDownOptions{CuboidThreads: 4})
	}
}

func BenchmarkAblationParentFirst(b *testing.B) {
	ds := internalBenchData()
	hook := templates.HybridCuboid(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.TopDown(ds, hook, lattice.TopDownOptions{CuboidThreads: 4, FirstParent: true})
	}
}

func BenchmarkAblationNoExtendedInput(b *testing.B) {
	ds := internalBenchData()
	inner := templates.HybridCuboid(1)
	all := make([]int32, ds.N)
	for i := range all {
		all[i] = int32(i)
	}
	hook := lattice.CuboidFunc(func(d2 *data.Dataset, rows []int32, delta uint32) ([]int32, []int32) {
		return inner(d2, all, delta)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.TopDown(ds, hook, lattice.TopDownOptions{CuboidThreads: 4})
	}
}

// --- Ablation: pivot-selection strategies (BSkyTree vs OSP vs VMPSP style) ---

func benchPivotStrategy(b *testing.B, strat skyline.PivotStrategy) {
	ds := gen.Synthetic(gen.Anticorrelated, 4000, 6, 20170514)
	rows := make([]int32, ds.N)
	for i := range rows {
		rows[i] = int32(i)
	}
	delta := uint32(1)<<6 - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.PivotFilterWith(ds, rows, delta, false, strat)
	}
}

func BenchmarkAblationPivotMinL1(b *testing.B)  { benchPivotStrategy(b, skyline.PivotMinL1) }
func BenchmarkAblationPivotFirst(b *testing.B)  { benchPivotStrategy(b, skyline.PivotFirst) }
func BenchmarkAblationPivotMedian(b *testing.B) { benchPivotStrategy(b, skyline.PivotMedian) }

// --- Ablation: GPU hook comparison (SkyAlign-style vs GGS) ------------------

func BenchmarkAblationGPUSkyAlign(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 3000, 6, 20170514)
	dev := gpusim.GTX980()
	delta := uint32(1)<<6 - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu.Compute(dev, ds, nil, delta, nil)
	}
}

func BenchmarkAblationGPUGGS(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 3000, 6, 20170514)
	dev := gpusim.GTX980()
	delta := uint32(1)<<6 - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu.ComputeGGS(dev, ds, nil, delta, nil)
	}
}

// --- Ablation: CPU hook comparison (Hybrid vs PSkyline in SDSC) -------------

func BenchmarkAblationHookHybrid(b *testing.B) {
	ds := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.SDSC, Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHookPSkyline(b *testing.B) {
	ds := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := skycube.Options{Algorithm: skycube.SDSC, Threads: 4, SDSCHook: skycube.HookPSkyline}
		if _, _, err := skycube.Build(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability: nil-trace fast path ------------------------------------

// BenchmarkObsMDMCTraceOff measures an MDMC build with no trace attached —
// the baseline for the < 2% instrumentation-overhead criterion; compare
// with BenchmarkObsMDMCTraceOn.
func BenchmarkObsMDMCTraceOff(b *testing.B) {
	buildBench(b, skycube.Options{Algorithm: skycube.MDMC, Threads: 4})
}

// BenchmarkObsMDMCTraceOn measures the same build with span recording live.
func BenchmarkObsMDMCTraceOn(b *testing.B) {
	ds := benchDataset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := skycube.Options{Algorithm: skycube.MDMC, Threads: 4, Trace: skycube.NewTrace()}
		if _, _, err := skycube.Build(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
}
