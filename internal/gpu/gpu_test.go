package gpu

import (
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/gpusim"
	"skycube/internal/mask"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

func flightData() *data.Dataset {
	return data.FromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
}

var flightSkylines = map[mask.Mask][]int32{
	0b100: {0}, 0b010: {3}, 0b001: {2},
	0b101: {0, 1, 2}, 0b110: {0, 1, 3}, 0b011: {1, 2, 3},
	0b111: {0, 1, 2, 3},
}

func TestDeviceComputeFlights(t *testing.T) {
	dev := gpusim.GTX980()
	ds := flightData()
	for delta, want := range flightSkylines {
		res := Compute(dev, ds, nil, delta, nil)
		if !reflect.DeepEqual(res.Skyline, want) {
			t.Errorf("S_%03b = %v, want %v", delta, res.Skyline, want)
		}
	}
}

func TestDeviceComputeMatchesCPU(t *testing.T) {
	dev := gpusim.GTX980()
	for _, dist := range []gen.Distribution{gen.Independent, gen.Anticorrelated, gen.Correlated} {
		ds := gen.Synthetic(dist, 1200, 5, 7)
		for _, delta := range []mask.Mask{1, 0b10110, mask.Full(5)} {
			want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
			got := Compute(dev, ds, nil, delta, nil)
			if !reflect.DeepEqual(got.Skyline, want.Skyline) {
				t.Errorf("%v δ=%b: GPU %d ids != CPU %d ids", dist, delta, len(got.Skyline), len(want.Skyline))
			}
			if !reflect.DeepEqual(got.ExtOnly, want.ExtOnly) {
				t.Errorf("%v δ=%b: GPU extOnly mismatch", dist, delta)
			}
		}
	}
}

func TestSDSCOnDevice(t *testing.T) {
	dev := gpusim.GTX980()
	ds := gen.Synthetic(gen.Independent, 300, 4, 9)
	stats := &StatsCollector{}
	l := SDSC(ds, dev, 0, stats)
	for _, delta := range mask.Subspaces(4) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%04b: %v, want %v", delta, got, want.Skyline)
		}
	}
	st := stats.Total()
	if st.Blocks == 0 || st.Instructions == 0 {
		t.Errorf("device stats empty: %+v", st)
	}
	if dev.ModelSeconds(st) <= 0 {
		t.Error("model seconds should be positive")
	}
}

func TestMDMCOnDevice(t *testing.T) {
	dev := gpusim.GTX980()
	ds := gen.Synthetic(gen.Anticorrelated, 400, 5, 13)
	stats := &StatsCollector{}
	res := MDMC(ds, dev, 2, 0, stats)
	for _, delta := range mask.Subspaces(5) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%05b: %v, want %v", delta, got, want.Skyline)
		}
	}
	st := stats.Total()
	if st.Blocks != int64(len(res.ExtRows)) {
		t.Errorf("blocks = %d, want one per task = %d", st.Blocks, len(res.ExtRows))
	}
	if st.Votes == 0 || st.Transactions == 0 {
		t.Errorf("expected votes and transactions: %+v", st)
	}
}

func TestMDMCOnDeviceMatchesCPUKernel(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 6, 17)
	cpu := templates.MDMC(ds, templates.MDMCOptions{Options: templates.Options{Threads: 2}})
	gpuRes := MDMC(ds, gpusim.GTXTitan(), 2, 0, nil)
	for _, delta := range mask.Subspaces(6) {
		a := cpu.Cube.Skyline(delta)
		b := gpuRes.Cube.Skyline(delta)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("δ=%06b: CPU %v != GPU %v", delta, a, b)
		}
	}
}

func TestBlockThreadsGrowWithDimensionality(t *testing.T) {
	prev := 0
	for _, d := range []int{4, 10, 11, 12, 13, 14, 15, 16} {
		bt := BlockThreads(d)
		if bt < prev {
			t.Errorf("BlockThreads(%d) = %d decreased", d, bt)
		}
		if bt%gpusim.WarpSize != 0 {
			t.Errorf("BlockThreads(%d) = %d not a warp multiple", d, bt)
		}
		prev = bt
	}
}

func TestOccupancyBindsAtHighDimensionality(t *testing.T) {
	// The paper's convergence argument (§7.2): at d = 16 the 16 KB of task
	// state caps resident blocks well below the free-occupancy limit.
	dev := gpusim.GTX980()
	low := dev.OccupantBlocks(templates.StateBytes(8))
	high := dev.OccupantBlocks(templates.StateBytes(16))
	if high >= low {
		t.Errorf("occupancy should shrink with d: d=8 → %d, d=16 → %d", low, high)
	}
	if high != dev.SMs*(dev.SharedMemPerSM/templates.StateBytes(16)) {
		t.Errorf("d=16 occupancy = %d", high)
	}
}

func TestStatsCollectorNilSafe(t *testing.T) {
	var c *StatsCollector
	c.Add(gpusim.Stats{Blocks: 1}) // must not panic
	if c.Total() != (gpusim.Stats{}) {
		t.Error("nil collector should report zero stats")
	}
}
