package gpu

import (
	"reflect"
	"testing"

	"skycube/internal/gen"
	"skycube/internal/gpusim"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

func TestGGSMatchesCPU(t *testing.T) {
	dev := gpusim.GTX980()
	for _, dist := range []gen.Distribution{gen.Independent, gen.Anticorrelated} {
		ds := gen.Synthetic(dist, 1500, 5, 3)
		for _, delta := range []mask.Mask{1, 0b01101, mask.Full(5)} {
			want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
			got := ComputeGGS(dev, ds, nil, delta, nil)
			if !reflect.DeepEqual(got.Skyline, want.Skyline) {
				t.Errorf("%v δ=%b: GGS %d != BNL %d", dist, delta, len(got.Skyline), len(want.Skyline))
			}
			if !reflect.DeepEqual(got.ExtOnly, want.ExtOnly) {
				t.Errorf("%v δ=%b: GGS extOnly mismatch", dist, delta)
			}
		}
	}
}

func TestSDSCWithGGSBuildsFullSkycube(t *testing.T) {
	dev := gpusim.GTXTitan()
	ds := gen.Synthetic(gen.Independent, 400, 4, 9)
	stats := &StatsCollector{}
	l := SDSCWithGGS(ds, dev, 0, stats)
	for _, delta := range mask.Subspaces(4) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%04b: %v, want %v", delta, got, want.Skyline)
		}
	}
	if stats.Total().Blocks == 0 {
		t.Error("GGS reported no device blocks")
	}
}

// GGS performs a DT per confirmed point with no mask-test pruning, so it
// should issue far more memory transactions than the SkyAlign-style hook
// for the same work — the work-efficiency gap the paper cites (§3, §6.1).
func TestGGSDoesMoreWorkThanSkyAlignHook(t *testing.T) {
	dev := gpusim.GTX980()
	ds := gen.Synthetic(gen.Anticorrelated, 3000, 6, 5)
	delta := mask.Full(6)
	ggsStats := &StatsCollector{}
	skyStats := &StatsCollector{}
	g := ComputeGGS(dev, ds, nil, delta, ggsStats)
	s := Compute(dev, ds, nil, delta, skyStats)
	if !reflect.DeepEqual(g.Skyline, s.Skyline) {
		t.Fatal("hooks disagree on the skyline")
	}
	if ggsStats.Total().Transactions <= skyStats.Total().Transactions {
		t.Errorf("GGS transactions (%d) should exceed SkyAlign-style (%d)",
			ggsStats.Total().Transactions, skyStats.Total().Transactions)
	}
}
