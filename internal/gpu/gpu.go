// Package gpu contains the GPU specialisations of the skycube templates
// (paper §6), executed on the gpusim device model.
//
// SDSC hook (§6.1): a SkyAlign-style skyline — global static pivots, flat
// label arrays scanned sequentially for coalesced reads, mask tests before
// dominance tests, and on-the-fly subspace projection of DTs.
//
// MDMC hook (§6.2): one thread block per point task. The task-local
// bitmasks B_{p∉S} and B_{p∉S⁺} live in (simulated) shared memory, whose
// per-block footprint 2·(2^d −1) bits bounds occupancy; the block's threads
// stride the tree's leaves for the filter scan and again for the refine
// scan, taking a warp vote before dominance tests.
package gpu

import (
	"fmt"
	"sort"
	"sync"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/gpusim"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

// CuboidHook returns the SDSC GPU specialisation: a lattice cuboid function
// that computes S_δ and S⁺_δ \ S_δ on the given device. Stats, if non-nil,
// accumulates the modelled device counters across cuboids.
func CuboidHook(dev *gpusim.Device, stats *StatsCollector) lattice.CuboidFunc {
	return func(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32) {
		res := Compute(dev, ds, rows, delta, stats)
		return res.Skyline, res.ExtOnly
	}
}

// StatsCollector accumulates device statistics across launches; safe for
// concurrent use.
type StatsCollector struct {
	mu sync.Mutex
	s  gpusim.Stats
}

// Add merges launch stats.
func (c *StatsCollector) Add(s gpusim.Stats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.s.Add(s)
	c.mu.Unlock()
}

// Total returns the accumulated stats.
func (c *StatsCollector) Total() gpusim.Stats {
	if c == nil {
		return gpusim.Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// Compute runs the two-phase (extended, then skyline-within-extended)
// computation of one cuboid on the device.
func Compute(dev *gpusim.Device, ds *data.Dataset, rows []int32, delta mask.Mask, stats *StatsCollector) skyline.Result {
	if rows == nil {
		rows = make([]int32, ds.N)
		for i := range rows {
			rows[i] = int32(i)
		}
	}
	ext := deviceFilter(dev, ds, rows, delta, true, stats)
	sky := deviceFilter(dev, ds, ext, delta, false, stats)
	extOnly := make([]int32, 0, len(ext)-len(sky))
	j := 0
	for _, v := range ext {
		if j < len(sky) && sky[j] == v {
			j++
			continue
		}
		extOnly = append(extOnly, v)
	}
	return skyline.Result{Skyline: sky, ExtOnly: extOnly}
}

// deviceTileSize is the number of points consumed per kernel launch.
const deviceTileSize = 4096

// deviceBlockThreads is the SDSC kernel's block size.
const deviceBlockThreads = 128

// deviceFilter is the SkyAlign-style survivor filter: points sorted by L1
// norm over δ are consumed in tiles; each tile is one kernel launch in
// which every thread owns one point and scans the flat label array of the
// current result, mask-testing before any dominance test.
func deviceFilter(dev *gpusim.Device, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, stats *StatsCollector) []int32 {
	n := len(rows)
	if n == 0 {
		return nil
	}
	d := ds.Dims
	dims := mask.Dims(delta)
	med, quart := subspacePivots(ds, rows, dims)
	medM := make([]mask.Mask, n)
	quartM := make([]mask.Mask, n)
	sum := make([]float32, n)
	for k, p := range rows {
		pt := ds.Point(int(p))
		var m, q mask.Mask
		var s float32
		for idx, j := range dims {
			v := pt[j]
			s += v
			half := 1
			if v < med[idx] {
				m |= 1 << uint(j)
				half = 0
			}
			if v < quart[half][idx] {
				q |= 1 << uint(j)
			}
		}
		medM[k], quartM[k], sum[k] = m, q, s
	}
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sum[ia] != sum[ib] {
			return sum[ia] < sum[ib]
		}
		return rows[ia] < rows[ib]
	})

	// Input upload: the cuboid's (reduced) rows and labels cross PCIe once.
	stats.Add(gpusim.Transfer(n * (d*4 + 8)))

	// Flat, append-only result arrays: the linear layout the kernel scans
	// sequentially for coalesced reads.
	var resMed, resQuart []mask.Mask
	var resIdx []int32 // indices into rows
	survivors := make([]int32, 0, n/4)

	alive := make([]bool, deviceTileSize)
	for tileStart := 0; tileStart < n; tileStart += deviceTileSize {
		tileEnd := tileStart + deviceTileSize
		if tileEnd > n {
			tileEnd = n
		}
		tile := ord[tileStart:tileEnd]
		tlen := len(tile)
		blocks := (tlen + deviceBlockThreads - 1) / deviceBlockThreads
		st, err := dev.Launch(blocks, deviceBlockThreads, 0, func(b *gpusim.BlockCtx) {
			lo := b.Block * deviceBlockThreads
			hi := lo + deviceBlockThreads
			if hi > tlen {
				hi = tlen
			}
			for t := lo; t < hi; t++ {
				k := tile[t]
				pp := ds.Point(int(rows[k]))
				mp, qp := medM[k], quartM[k]
				// One coalesced load of the point's own row and labels.
				b.LoadCoalesced(4*d + 8)
				ok := true
				for e := 0; e < len(resIdx); e++ {
					// The label scan is sequential over flat arrays; a warp
					// reads each 128-byte line once.
					if t%gpusim.WarpSize == 0 && e%16 == 0 {
						b.LoadCoalesced(128)
					}
					b.Instr(3)
					worse := skyline.CompositeStrict2(mp, qp, resMed[e], resQuart[e])
					if worse&delta != 0 {
						continue
					}
					better := skyline.CompositeStrict2(resMed[e], resQuart[e], mp, qp)
					if better&delta == delta {
						ok = false
						break
					}
					// Inconclusive: exact DT with an on-the-fly projected
					// load (§6.1 — the GPU projects points into δ).
					if b.Vote(true) {
						b.Diverge()
					}
					b.LoadScattered(1, 4*len(dims))
					b.Instr(len(dims))
					r := dom.CompareIn(ds.Point(int(rows[resIdx[e]])), pp, delta)
					if killsRel(r, delta, strict) {
						ok = false
						break
					}
				}
				alive[t] = ok
			}
		})
		if err != nil {
			panic(fmt.Sprintf("gpu: SDSC launch failed: %v", err))
		}
		stats.Add(st)

		// Host-side epilogue: intra-tile filtering and appends, as the
		// sequential tail of each iteration.
		tileRows := make([]int32, 0, tlen)
		backref := make(map[int32]int32, tlen)
		for t := 0; t < tlen; t++ {
			if alive[t] {
				r := rows[tile[t]]
				backref[r] = tile[t]
				tileRows = append(tileRows, r)
			}
		}
		kept := intraTile(ds, tileRows, delta, strict)
		for _, r := range kept {
			k := backref[r]
			resMed = append(resMed, medM[k])
			resQuart = append(resQuart, quartM[k])
			resIdx = append(resIdx, k)
			survivors = append(survivors, r)
		}
	}
	sort.Slice(survivors, func(a, b int) bool { return survivors[a] < survivors[b] })
	return survivors
}

// killsRel evaluates the removal predicate on a δ-projected relationship.
func killsRel(r dom.Rel, delta mask.Mask, strict bool) bool {
	if strict {
		return r.Lt&delta == delta
	}
	return r.Eq&delta != delta && (r.Lt|r.Eq)&delta == delta
}

// intraTile removes points dominated within their own tile.
func intraTile(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	out := rows[:0]
	for i, p := range rows {
		pp := ds.Point(int(p))
		dead := false
		for j, q := range rows {
			if i == j {
				continue
			}
			if killsRel(dom.CompareIn(ds.Point(int(q)), pp, delta), delta, strict) {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, p)
		}
	}
	return out
}

// subspacePivots mirrors the Hybrid pivot computation over only δ's dims.
func subspacePivots(ds *data.Dataset, rows []int32, dims []int) (med []float32, quart [2][]float32) {
	med = make([]float32, len(dims))
	quart[0] = make([]float32, len(dims))
	quart[1] = make([]float32, len(dims))
	col := make([]float32, len(rows))
	for idx, j := range dims {
		for i, p := range rows {
			col[i] = ds.Value(int(p), j)
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		n := len(col)
		med[idx] = col[n/2]
		quart[0][idx] = col[n/4]
		q3 := 3 * n / 4
		if q3 >= n {
			q3 = n - 1
		}
		quart[1][idx] = col[q3]
	}
	return med, quart
}

// BlockThreads returns the MDMC block size for dimensionality d: as the
// per-task state grows, more threads cooperate on each point (§6.2).
func BlockThreads(d int) int {
	switch {
	case d <= 10:
		return 32
	case d <= 12:
		return 64
	case d <= 14:
		return 128
	default:
		return 256
	}
}

// PreferredChunk reports the point-task grab size that keeps the device
// saturated for dimensionality d: one point per thread block, so a grab
// should cover at least the concurrently-resident blocks (which shrink as
// the 2·(2^d −1)-bit task state eats shared memory, §6.2), rounded up to a
// multiple of the warp-friendly 64 and clamped to a sane range. This is the
// device's chunk-size report to the adaptive cross-device scheduler.
func PreferredChunk(dev *gpusim.Device, d int) int {
	occ := dev.OccupantBlocks(templates.StateBytes(d))
	chunk := (occ + 63) / 64 * 64
	if chunk < 64 {
		chunk = 64
	}
	if chunk > 2048 {
		chunk = 2048
	}
	return chunk
}

// PointKernel returns the MDMC GPU specialisation: a templates.PointKernel
// that processes each chunk as one kernel launch with a block per point.
// Stats, if non-nil, accumulates device counters.
func PointKernel(dev *gpusim.Device, stats *StatsCollector) templates.PointKernel {
	var pool sync.Pool
	return func(ctx *templates.MDMCContext, lo, hi int) {
		d := ctx.D
		threads := BlockThreads(d)
		shared := templates.StateBytes(d)
		tree := ctx.Tree
		nLeaves := len(tree.Leaves)
		st, err := dev.Launch(hi-lo, threads, shared, func(b *gpusim.BlockCtx) {
			sol, _ := pool.Get().(*templates.Solution)
			if sol == nil {
				sol = templates.NewSolution(ctx)
			}
			defer pool.Put(sol)
			p := lo + b.Block
			sol.Reset()

			// Filter (§6.2): the block's threads stride the leaves, reading
			// the flat three-level label arrays — one coalesced pass over
			// 3×4 bytes per leaf — and compare full paths.
			b.LoadCoalesced(12 * nLeaves)
			sol.FilterLeafScan(p, func(int) {
				b.Instr(6)
				b.SharedAccess(1)
			})
			b.Sync()

			// Refine: second strided scan; a warp vote decides whether any
			// lane needs a DT, and DT loads are coalesced because a leaf's
			// points are physically consecutive.
			b.LoadCoalesced(12 * nLeaves)
			sol.RefineInstrumented(p, true,
				func(skipped bool) {
					b.Instr(4)
					if b.Vote(!skipped) {
						b.Diverge()
					}
				},
				func() {
					b.LoadCoalesced(4 * d)
					b.Instr(d)
					b.SharedAccess(2)
				})

			// Asynchronous copy of the finished bitmask to the host cube.
			b.LoadCoalesced(templates.StateBytes(d) / 2)
			ctx.Cube.Insert(ctx.OrigRow[p], sol.NotInS())
		})
		if err != nil {
			panic(fmt.Sprintf("gpu: MDMC launch failed: %v", err))
		}
		// Finished bitmasks stream back to the host cube asynchronously.
		st.Add(gpusim.Transfer((hi - lo) * templates.StateBytes(ctx.D) / 2))
		stats.Add(st)
	}
}

// MDMC runs the full MDMC template on a single device: shared prologue on
// the CPU, all point tasks on the GPU.
func MDMC(ds *data.Dataset, dev *gpusim.Device, threads, maxLevel int, stats *StatsCollector) *templates.MDMCResult {
	return MDMCTraced(ds, dev, threads, maxLevel, stats, nil)
}

// MDMCTraced is MDMC recording the prologue phases and the device's point
// pass as spans on the device's track.
func MDMCTraced(ds *data.Dataset, dev *gpusim.Device, threads, maxLevel int,
	stats *StatsCollector, tr *obs.Trace) *templates.MDMCResult {
	ctx := templates.PrepareMDMCTraced(ds, threads, 3, maxLevel, tr)
	kernel := PointKernel(dev, stats)
	// One launch per chunk; a single puller suffices since the launch
	// itself fans out across the device's resident blocks.
	h := tr.Begin(dev.Name, obs.CatChunk, "points")
	h.SetN(int64(ctx.NumTasks()))
	kernel(ctx, 0, ctx.NumTasks())
	h.End()
	return &templates.MDMCResult{Cube: ctx.Cube, ExtRows: ctx.ExtRows}
}

// SDSC runs the full SDSC template on a single device.
func SDSC(ds *data.Dataset, dev *gpusim.Device, maxLevel int, stats *StatsCollector) *lattice.Lattice {
	return SDSCTraced(ds, dev, maxLevel, stats, nil, nil)
}

// SDSCTraced is SDSC recording level and per-cuboid spans on tracks named
// after the device, reporting completed cuboids to onCuboid (both the
// trace and the callback may be nil).
func SDSCTraced(ds *data.Dataset, dev *gpusim.Device, maxLevel int,
	stats *StatsCollector, tr *obs.Trace, onCuboid func(delta mask.Mask)) *lattice.Lattice {
	return lattice.TopDown(ds, CuboidHook(dev, stats), lattice.TopDownOptions{
		CuboidThreads: 1,
		MaxLevel:      maxLevel,
		Trace:         tr,
		TrackPrefix:   dev.Name,
		OnCuboid:      onCuboid,
	})
}
