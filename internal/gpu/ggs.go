package gpu

import (
	"fmt"
	"sort"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/gpusim"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
)

// CuboidHookGGS returns an SDSC hook backed by the GGS algorithm (Bøgh,
// Assent, Magnani — DaMoN 2013; paper §3): the sort-based, throughput-
// oriented GPU skyline that SkyAlign was shown to beat on most workloads.
// GGS sorts the input by its L1 norm and then repeatedly launches a kernel
// in which every unresolved point is compared — with plain dominance tests
// only, no mask tests — against the confirmed skyline so far.
//
// It exists as the alternative GPU hook, demonstrating the SDSC template's
// "plug in any parallel skyline algorithm" property (§4.2.2), and as the
// baseline for the SkyAlign-style hook's work-efficiency advantage.
func CuboidHookGGS(dev *gpusim.Device, stats *StatsCollector) lattice.CuboidFunc {
	return func(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32) {
		res := ComputeGGS(dev, ds, rows, delta, stats)
		return res.Skyline, res.ExtOnly
	}
}

// ComputeGGS runs the two-phase cuboid computation with the GGS filter.
func ComputeGGS(dev *gpusim.Device, ds *data.Dataset, rows []int32, delta mask.Mask, stats *StatsCollector) skyline.Result {
	if rows == nil {
		rows = make([]int32, ds.N)
		for i := range rows {
			rows[i] = int32(i)
		}
	}
	ext := ggsFilter(dev, ds, rows, delta, true, stats)
	sky := ggsFilter(dev, ds, ext, delta, false, stats)
	extOnly := make([]int32, 0, len(ext)-len(sky))
	j := 0
	for _, v := range ext {
		if j < len(sky) && sky[j] == v {
			j++
			continue
		}
		extOnly = append(extOnly, v)
	}
	return skyline.Result{Skyline: sky, ExtOnly: extOnly}
}

// ggsBlock is the number of candidate points confirmed per iteration.
const ggsBlock = 1024

func ggsFilter(dev *gpusim.Device, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, stats *StatsCollector) []int32 {
	n := len(rows)
	if n == 0 {
		return nil
	}
	dims := mask.Dims(delta)

	// Sort by L1 norm over δ: dominators always precede the dominated.
	ord := make([]int32, n)
	sums := make([]float32, n)
	for k, p := range rows {
		pt := ds.Point(int(p))
		var s float32
		for _, j := range dims {
			s += pt[j]
		}
		sums[k] = s
		ord[k] = int32(k)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sums[ia] != sums[ib] {
			return sums[ia] < sums[ib]
		}
		return rows[ia] < rows[ib]
	})

	stats.Add(gpusim.Transfer(n * len(dims) * 4)) // input upload

	confirmed := make([]int32, 0, n/4) // indices into rows, in L1 order
	survivors := make([]int32, 0, n/4)
	alive := make([]bool, ggsBlock)
	for blockStart := 0; blockStart < n; blockStart += ggsBlock {
		blockEnd := blockStart + ggsBlock
		if blockEnd > n {
			blockEnd = n
		}
		block := ord[blockStart:blockEnd]
		blen := len(block)
		blocks := (blen + deviceBlockThreads - 1) / deviceBlockThreads
		st, err := dev.Launch(blocks, deviceBlockThreads, 0, func(b *gpusim.BlockCtx) {
			lo := b.Block * deviceBlockThreads
			hi := lo + deviceBlockThreads
			if hi > blen {
				hi = blen
			}
			for t := lo; t < hi; t++ {
				k := block[t]
				pp := ds.Point(int(rows[k]))
				b.LoadCoalesced(4 * len(dims))
				ok := true
				for _, c := range confirmed {
					// GGS does a full DT per confirmed point — the
					// work-inefficiency SkyAlign's mask tests avoid.
					b.LoadScattered(1, 4*len(dims))
					b.Instr(len(dims))
					if killsRel(dom.CompareIn(ds.Point(int(rows[c])), pp, delta), delta, strict) {
						ok = false
						break
					}
				}
				alive[t] = ok
			}
		})
		if err != nil {
			panic(fmt.Sprintf("gpu: GGS launch failed: %v", err))
		}
		stats.Add(st)

		// Intra-block resolution on the host, then confirm survivors.
		blockRows := make([]int32, 0, blen)
		backref := make(map[int32]int32, blen)
		for t := 0; t < blen; t++ {
			if alive[t] {
				r := rows[block[t]]
				backref[r] = block[t]
				blockRows = append(blockRows, r)
			}
		}
		for _, r := range intraTile(ds, blockRows, delta, strict) {
			confirmed = append(confirmed, backref[r])
			survivors = append(survivors, r)
		}
	}
	sort.Slice(survivors, func(a, b int) bool { return survivors[a] < survivors[b] })
	return survivors
}

// SDSCWithGGS runs the SDSC template on one device with the GGS hook.
func SDSCWithGGS(ds *data.Dataset, dev *gpusim.Device, maxLevel int, stats *StatsCollector) *lattice.Lattice {
	return SDSCWithGGSTraced(ds, dev, maxLevel, stats, nil, nil)
}

// SDSCWithGGSTraced is SDSCWithGGS with span recording and a completed-
// cuboid callback.
func SDSCWithGGSTraced(ds *data.Dataset, dev *gpusim.Device, maxLevel int,
	stats *StatsCollector, tr *obs.Trace, onCuboid func(delta mask.Mask)) *lattice.Lattice {
	return lattice.TopDown(ds, CuboidHookGGS(dev, stats), lattice.TopDownOptions{
		CuboidThreads: 1,
		MaxLevel:      maxLevel,
		Trace:         tr,
		TrackPrefix:   dev.Name,
		OnCuboid:      onCuboid,
	})
}
