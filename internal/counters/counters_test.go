package counters

import (
	"reflect"
	"testing"

	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

// The profiled builds must produce exactly the same skycubes as the
// production implementations — instrumentation must never change results.
func TestProfiledBuildsAreCorrect(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 400, 5, 3)
	cfg := Config{Threads: 4, Sockets: 2, HugePages: true}

	_, lpq := ProfilePQ(ds, cfg)
	_, lst := ProfileST(ds, cfg)
	_, lsd := ProfileSD(ds, cfg)
	_, md := ProfileMD(ds, cfg)

	for _, delta := range mask.Subspaces(5) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		for name, got := range map[string][]int32{
			"PQ": lpq.Skyline(delta),
			"ST": lst.Skyline(delta),
			"SD": lsd.Skyline(delta),
			"MD": md.Cube.Skyline(delta),
		} {
			if !reflect.DeepEqual(got, want.Skyline) {
				t.Errorf("%s δ=%05b: %v, want %v", name, delta, got, want.Skyline)
			}
		}
	}
}

func TestReportsHaveCounters(t *testing.T) {
	ds := gen.Synthetic(gen.Anticorrelated, 600, 5, 9)
	cfg := Config{Threads: 2, Sockets: 1, HugePages: true}
	for _, run := range []func() Report{
		func() Report { r, _ := ProfilePQ(ds, cfg); return r },
		func() Report { r, _ := ProfileST(ds, cfg); return r },
		func() Report { r, _ := ProfileSD(ds, cfg); return r },
		func() Report { r, _ := ProfileMD(ds, cfg); return r },
	} {
		r := run()
		c := r.Counters
		if c.Instructions == 0 || c.Loads == 0 {
			t.Errorf("%s: empty counters %+v", r.Algo, c)
		}
		if r.CPI() <= 0 {
			t.Errorf("%s: CPI = %v", r.Algo, r.CPI())
		}
	}
}

// The paper's headline hardware observation (Fig. 8): MDMC's static tree
// misses cache orders of magnitude less often than the baseline's
// pointer-chasing trees.
func TestMDMissesLessThanPQ(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 6, 5)
	cfg := Config{Threads: 4, Sockets: 1, HugePages: true}
	pq, _ := ProfilePQ(ds, cfg)
	md, _ := ProfileMD(ds, cfg)
	if md.Counters.L2Misses >= pq.Counters.L2Misses {
		t.Errorf("MD L2 misses (%d) should be below PQ (%d)",
			md.Counters.L2Misses, pq.Counters.L2Misses)
	}
	if md.Counters.L3Misses >= pq.Counters.L3Misses {
		t.Errorf("MD L3 misses (%d) should be below PQ (%d)",
			md.Counters.L3Misses, pq.Counters.L3Misses)
	}
}

// Fig. 10's observation: the data-parallel MD has a far lower STLB miss
// rate than the pointer-chasing baseline. At unit-test scale (2 000 points)
// transparent huge pages make every footprint TLB-resident, so the
// comparison is run with 4 KiB pages, where the working-set difference is
// observable; the harness's Figure 10 uses huge pages at larger scale.
func TestMDTLBBetterThanPQ(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 6, 7)
	cfg := Config{Threads: 4, Sockets: 1, HugePages: false}
	pq, _ := ProfilePQ(ds, cfg)
	md, _ := ProfileMD(ds, cfg)
	if md.Counters.STLBMissRate() >= pq.Counters.STLBMissRate() {
		t.Errorf("MD STLB rate (%v) should be below PQ (%v)",
			md.Counters.STLBMissRate(), pq.Counters.STLBMissRate())
	}
}

// Fig. 11's observation: PQ's CPI degrades when its threads span two
// sockets; the second socket hurts it more than MD.
func TestSecondSocketHurtsPQMost(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 6, 11)
	one := Config{Threads: 4, Sockets: 1, HugePages: true}
	two := Config{Threads: 4, Sockets: 2, HugePages: true}
	pq1, _ := ProfilePQ(ds, one)
	pq2, _ := ProfilePQ(ds, two)
	md1, _ := ProfileMD(ds, one)
	md2, _ := ProfileMD(ds, two)
	pqDeg := pq2.CPI() / pq1.CPI()
	mdDeg := md2.CPI() / md1.CPI()
	if pqDeg < mdDeg {
		t.Errorf("PQ should degrade more across sockets: PQ %.3f× vs MD %.3f×", pqDeg, mdDeg)
	}
}

func TestConfigDefaults(t *testing.T) {
	sys := newSystem(Config{})
	if sys.threads != 1 || sys.sockets != 1 {
		t.Errorf("defaults: threads=%d sockets=%d", sys.threads, sys.sockets)
	}
	// Thread placement: with 4 threads on 2 sockets, half on each.
	sys = newSystem(Config{Threads: 4, Sockets: 2})
	s0, s1 := 0, 0
	for w := 0; w < 4; w++ {
		if sys.threadProbe(w).Socket() == 0 {
			s0++
		} else {
			s1++
		}
	}
	if s0 != 2 || s1 != 2 {
		t.Errorf("placement: %d on socket0, %d on socket1", s0, s1)
	}
}
