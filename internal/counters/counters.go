// Package counters provides the profiled builds used by the hardware-level
// experiments (paper §7.2, Figures 8–11): variants of PQSkycube, STSC, SDSC
// and MDMC whose hot loops route every significant data access through a
// memsim probe, so the memory-hierarchy model observes the algorithms'
// *real* access streams.
//
// The profiled variants mirror the production algorithms' inner loops —
// the same pivot partitioning, tile scans and filter/refine phases — and
// their outputs are asserted equal to the production implementations in
// the package tests. Addresses are logical but faithful to the layouts:
// the dataset and flat label arrays are contiguous; the baseline's
// recursive tree nodes come from a shared pseudo-heap allocator, scattering
// them the way a real allocator does under concurrent cuboid construction.
package counters

import (
	"sort"
	"sync"
	"sync/atomic"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/memsim"
	"skycube/internal/stree"
	"skycube/internal/templates"
)

// Logical address-space bases, far enough apart that structures never
// alias. The data region layout matches the row-major dataset.
const (
	dataBase    = 0x10_0000_0000
	labelBase   = 0x20_0000_0000
	treeBase    = 0x30_0000_0000
	heapBase    = 0x40_0000_0000
	scratchBase = 0x50_0000_0000
	resultBase  = 0x60_0000_0000

	heapNodeBytes    = 256
	scratchPerThread = 1 << 20
)

// Config selects the modelled machine for a profiled run.
type Config struct {
	// Threads is the number of profiled worker threads (cores).
	Threads int
	// Sockets is 1 or 2; threads are split evenly across sockets.
	Sockets int
	// HugePages enables 2 MiB pages (the paper's machine has transparent
	// huge pages on).
	HugePages bool
	// SMT models hyper-threading: two contexts alternate on each core, so
	// per-thread issue width halves and the private L2 is shared (modelled
	// as halved). Used for the "HT" data points of Figure 5.
	SMT bool
}

// Report is the outcome of one profiled run.
type Report struct {
	Algo     string
	Counters memsim.Counters
	MachCfg  memsim.Config
	// CriticalPathCycles is the largest per-thread cycle count — the
	// modelled parallel execution time, from which Figure 5's modelled
	// speedups are computed.
	CriticalPathCycles int64
}

// CPI returns the run's modelled cycles per instruction.
func (r Report) CPI() float64 { return r.Counters.CPI(r.MachCfg) }

// profiler bundles the per-run shared state.
type profiler struct {
	sys   *System
	alloc int64 // pseudo-heap allocation counter
}

// System wraps a memsim.System with thread placement.
type System struct {
	*memsim.System
	threads int
	sockets int
}

func newSystem(cfg Config) *System {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	mc := memsim.DefaultConfig(cfg.Sockets, cfg.HugePages)
	if cfg.SMT {
		// Two contexts alternate on each core: per-thread issue width
		// halves, the private L2 is shared, and — the point of SMT — the
		// partner context fills a thread's stall slots, so unhidden miss
		// latency halves. Memory-bound algorithms therefore gain from HT
		// while compute-bound ones pay the issue tax (paper Fig. 5).
		mc.BaseCPI *= 2
		mc.L2Bytes /= 2
		mc.HideFactor = (1 + mc.HideFactor) / 2
	}
	return &System{
		System:  memsim.NewSystem(mc),
		threads: cfg.Threads,
		sockets: cfg.Sockets,
	}
}

// threadProbe creates the probe for worker w, pinned round-robin by socket
// half: the first half of the workers on socket 0, the rest on socket 1 —
// the paper's "split evenly over two sockets" configuration.
func (s *System) threadProbe(w int) *memsim.Thread {
	sock := 0
	if s.sockets > 1 && w >= (s.threads+1)/2 {
		sock = 1
	}
	return s.NewThread(sock)
}

// allocNode returns the pseudo-heap address of a freshly allocated tree
// node or bucket: a shared atomic counter interleaves concurrent cuboids'
// allocations across the heap, like a real allocator under parallel load.
func (p *profiler) allocNode() uint64 {
	n := atomic.AddInt64(&p.alloc, 1) - 1
	return heapBase + uint64(n)*heapNodeBytes
}

func pointAddr(ds *data.Dataset, row int32) uint64 {
	return dataBase + uint64(row)*uint64(ds.Dims)*4
}

// staticTopDown is the profiled builds' level-synchronised traversal with
// *static* round-robin cuboid assignment: cuboid i of each level goes to
// thread i mod T. Unlike the production traversal's dynamic pulling, the
// assignment is independent of the host's scheduler, so modelled critical
// paths are deterministic on any machine (static scheduling is also what
// pinned OpenMP loops do on the paper's testbed).
func staticTopDown(ds *data.Dataset, probes []*memsim.Thread,
	cuboid func(th *memsim.Thread, rows []int32, delta mask.Mask) ([]int32, []int32)) *lattice.Lattice {

	d := ds.Dims
	l := lattice.New(d)
	all := make([]int32, ds.N)
	for i := range all {
		all[i] = int32(i)
	}
	for level := d; level >= 1; level-- {
		cuboids := mask.Level(d, level)
		var wg sync.WaitGroup
		workers := len(probes)
		if workers > len(cuboids) {
			workers = len(cuboids)
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(cuboids); i += workers {
					delta := cuboids[i]
					rows := all
					if level < d {
						par := l.MinParent(delta)
						rows = mergeRows(l.Sky[par], l.ExtOnly[par])
					}
					sky, extOnly := cuboid(probes[w], rows, delta)
					l.Sky[delta] = sky
					l.ExtOnly[delta] = extOnly
				}
			}(w)
		}
		wg.Wait()
		// Level-synchronisation barrier (once per lattice level).
		for _, th := range probes {
			th.Barrier(2500)
		}
	}
	return l
}

func mergeRows(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// ProfilePQ runs the profiled PQSkycube baseline: a top-down lattice
// traversal whose cuboids (computed threads-at-a-time within a level) each
// build a recursive, pointer-based pivot tree.
func ProfilePQ(ds *data.Dataset, cfg Config) (Report, *lattice.Lattice) {
	sys := newSystem(cfg)
	p := &profiler{sys: sys}
	probes := make([]*memsim.Thread, sys.threads)
	for w := range probes {
		probes[w] = sys.threadProbe(w)
	}
	l := staticTopDown(ds, probes, func(th *memsim.Thread, rows []int32, delta mask.Mask) ([]int32, []int32) {
		ext := p.probedPivotFilter(th, ds, rows, delta, true)
		sky := p.probedPivotFilter(th, ds, ext, delta, false)
		return sky, diffSorted(ext, sky)
	})
	return Report{Algo: "PQ", Counters: sys.Totals(), MachCfg: sys.Config(),
		CriticalPathCycles: sys.MaxThreadCycles()}, l
}

// ProfileST runs the profiled STSC: the same traversal, but each cuboid is
// a single-threaded run of the tiled flat-array algorithm.
func ProfileST(ds *data.Dataset, cfg Config) (Report, *lattice.Lattice) {
	sys := newSystem(cfg)
	probes := make([]*memsim.Thread, sys.threads)
	for w := range probes {
		probes[w] = sys.threadProbe(w)
	}
	l := staticTopDown(ds, probes, func(th *memsim.Thread, rows []int32, delta mask.Mask) ([]int32, []int32) {
		ext := probedTiledFilter(ds, rows, delta, true, []*memsim.Thread{th})
		sky := probedTiledFilter(ds, ext, delta, false, []*memsim.Thread{th})
		return sky, diffSorted(ext, sky)
	})
	return Report{Algo: "ST", Counters: sys.Totals(), MachCfg: sys.Config(),
		CriticalPathCycles: sys.MaxThreadCycles()}, l
}

// ProfileSD runs the profiled SDSC: cuboids one at a time, all threads
// cooperating on each tile.
func ProfileSD(ds *data.Dataset, cfg Config) (Report, *lattice.Lattice) {
	sys := newSystem(cfg)
	probes := make([]*memsim.Thread, sys.threads)
	for w := range probes {
		probes[w] = sys.threadProbe(w)
	}
	hook := func(ds *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
		ext := probedTiledFilter(ds, rows, delta, true, probes)
		sky := probedTiledFilter(ds, ext, delta, false, probes)
		return sky, diffSorted(ext, sky)
	}
	l := lattice.TopDown(ds, hook, lattice.TopDownOptions{CuboidThreads: 1})
	return Report{Algo: "SD", Counters: sys.Totals(), MachCfg: sys.Config(),
		CriticalPathCycles: sys.MaxThreadCycles()}, l
}

// ProfileMD runs the profiled MDMC point loop over the shared static tree.
func ProfileMD(ds *data.Dataset, cfg Config) (Report, *templates.MDMCResult) {
	sys := newSystem(cfg)
	ctx := templates.PrepareMDMC(ds, sys.threads, 3, 0)
	tree := ctx.Tree
	n := ctx.NumTasks()

	// Static round-robin chunk assignment (16-point chunks — fine-grained
	// enough to balance the skewed per-point cost), so the modelled
	// per-thread work split does not depend on the host scheduler.
	var wg sync.WaitGroup
	wg.Add(sys.threads)
	for w := 0; w < sys.threads; w++ {
		th := sys.threadProbe(w)
		scratch := scratchBase + uint64(w)*scratchPerThread
		go func(w int) {
			defer wg.Done()
			sol := templates.NewSolution(ctx)
			for pStart := w * 16; pStart < n; pStart += sys.threads * 16 {
				pEnd := pStart + 16
				if pEnd > n {
					pEnd = n
				}
				for p := pStart; p < pEnd; p++ {
					sol.Reset()
					profiledMDFilter(th, tree, sol, p, scratch)
					profiledMDRefine(th, tree, sol, p, scratch)
					ctx.Cube.Insert(ctx.OrigRow[p], sol.NotInS())
				}
			}
		}(w)
	}
	wg.Wait()
	res := &templates.MDMCResult{Cube: ctx.Cube, ExtRows: ctx.ExtRows}
	return Report{Algo: "MD", Counters: sys.Totals(), MachCfg: sys.Config(),
		CriticalPathCycles: sys.MaxThreadCycles()}, res
}

// profiledMDFilter mirrors Solution.Filter (top two tree levels) with
// probes: only the compact node-label arrays are read — they fit in L2 —
// plus the thread's own bitset scratch.
func profiledMDFilter(th *memsim.Thread, tree *stree.Tree, sol *templates.Solution, p int, scratch uint64) {
	t := tree
	medP, quartP := t.Med[p], t.Quart[p]
	th.Load(treeBase+uint64(p)*8, 8) // p's own labels
	for i1 := range t.L1 {
		n1 := t.L1[i1]
		th.Load(treeBase+0x1000+uint64(i1)*8, 8)
		th.Instr(2)
		d1 := n1.Label &^ medP
		sameHalf := ^(n1.Label ^ medP)
		c := t.L1Child[i1]
		for i2 := c[0]; i2 < c[1]; i2++ {
			n2 := t.L2[i2]
			th.Load(treeBase+0x10000+uint64(i2)*8, 8)
			th.Instr(3)
			d2 := (n2.Label &^ quartP) & sameHalf
			total := d1 | d2
			if total != 0 {
				th.Load(scratch+uint64(total/8)%scratchPerThread, 8)
			}
			sol.SetStrict(total)
		}
	}
}

// profiledMDRefine mirrors Solution.Refine with probes: sequential loads of
// the flat leaf-label array, contiguous DT loads within surviving leaves,
// and bitset updates confined to the thread's scratch region.
func profiledMDRefine(th *memsim.Thread, tree *stree.Tree, sol *templates.Solution, p int, scratch uint64) {
	leafIdx := 0
	sol.RefineInstrumented(p, true,
		func(skipped bool) {
			th.Load(treeBase+0x100000+uint64(leafIdx)*12, 12)
			th.Instr(3)
			leafIdx++
		},
		func() {
			// The DT loads one leaf point's row (contiguous) and updates
			// the solution bitsets in scratch.
			th.Load(pointAddr(tree.Data, int32(leafIdx%tree.Data.N)), tree.Data.Dims*4)
			th.Load(scratch+uint64(leafIdx*8)%scratchPerThread, 8)
			th.Instr(tree.Data.Dims)
		})
}

func diffSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)-len(b))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// probedCompare is an exact DT with probes: loads both points' rows.
func probedCompare(th *memsim.Thread, ds *data.Dataset, q, p int32) dom.Rel {
	th.Load(pointAddr(ds, q), ds.Dims*4)
	th.Load(pointAddr(ds, p), ds.Dims*4)
	th.Instr(ds.Dims)
	return dom.Compare(ds.Point(int(q)), ds.Point(int(p)))
}

func kills(r dom.Rel, delta mask.Mask, strict bool) bool {
	if strict {
		return dom.RelStrictlyDominates(r, delta)
	}
	return dom.RelDominates(r, delta)
}

// ---------------------------------------------------------------------------
// Profiled PQSkycube cuboid: recursive pivot partitioning with pointer-
// based buckets from the shared pseudo-heap.

const probedLeafSize = 48

func (p *profiler) probedPivotFilter(th *memsim.Thread, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	out := p.probedPivotRec(th, ds, rows, delta, strict, 0)
	sorted := append([]int32(nil), out...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted
}

type probedBucket struct {
	m    mask.Mask
	rows []int32
	addr uint64 // pseudo-heap node backing this bucket
}

func (p *profiler) probedPivotRec(th *memsim.Thread, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, depth int) []int32 {
	if len(rows) <= probedLeafSize || depth > 64 {
		return p.probedBNL(th, ds, rows, delta, strict)
	}
	piv := p.probedSelectPivot(th, ds, rows, delta)
	pivPoint := ds.Point(int(piv))
	th.Load(pointAddr(ds, piv), ds.Dims*4)

	parts := make(map[mask.Mask]*probedBucket, 64)
	var order []*probedBucket
	progress := false
	for _, q := range rows {
		th.Load(pointAddr(ds, q), ds.Dims*4)
		th.Instr(ds.Dims)
		r := dom.Compare(pivPoint, ds.Point(int(q)))
		if q != piv && kills(r, delta, strict) {
			progress = true
			continue
		}
		m := r.Leq() & delta
		b := parts[m]
		if b == nil {
			b = &probedBucket{m: m, addr: p.allocNode()}
			parts[m] = b
			order = append(order, b)
		}
		// Bucket append chases the bucket's heap node.
		th.Load(b.addr, 16)
		b.rows = append(b.rows, q)
	}
	if !progress && len(order) == 1 {
		return p.probedBNL(th, ds, rows, delta, strict)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := mask.Count(order[a].m), mask.Count(order[b].m)
		if ca != cb {
			return ca < cb
		}
		return order[a].m < order[b].m
	})

	type resEntry struct {
		row  int32
		m    mask.Mask
		addr uint64
	}
	var result []resEntry
	for _, b := range order {
		local := p.probedPivotRec(th, ds, b.rows, delta, strict, depth+1)
		for _, q := range local {
			dead := false
			for _, e := range result {
				// The mask test reads the result entry's tree node.
				th.Load(e.addr, 8)
				th.Instr(1)
				if e.m&^b.m&delta != 0 {
					continue
				}
				if kills(probedCompare(th, ds, e.row, q), delta, strict) {
					dead = true
					break
				}
			}
			if !dead {
				result = append(result, resEntry{row: q, m: b.m, addr: p.allocNode()})
			}
		}
	}
	out := make([]int32, len(result))
	for i, e := range result {
		out[i] = e.row
	}
	return out
}

func (p *profiler) probedSelectPivot(th *memsim.Thread, ds *data.Dataset, rows []int32, delta mask.Mask) int32 {
	dims := mask.Dims(delta)
	lo := make([]float32, len(dims))
	hi := make([]float32, len(dims))
	for k := range dims {
		v := ds.Value(int(rows[0]), dims[k])
		lo[k], hi[k] = v, v
	}
	for _, q := range rows[1:] {
		th.Load(pointAddr(ds, q), ds.Dims*4)
		for k, j := range dims {
			v := ds.Value(int(q), j)
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	best := rows[0]
	bestScore := float64(1e30)
	for _, q := range rows {
		th.Load(pointAddr(ds, q), ds.Dims*4)
		th.Instr(len(dims))
		s := 0.0
		for k, j := range dims {
			den := hi[k] - lo[k]
			if den <= 0 {
				continue
			}
			s += float64((ds.Value(int(q), j) - lo[k]) / den)
		}
		if s < bestScore {
			bestScore = s
			best = q
		}
	}
	return best
}

func (p *profiler) probedBNL(th *memsim.Thread, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	window := make([]int32, 0, 16)
	for _, q := range rows {
		dead := false
		w := 0
		for _, e := range window {
			r := probedCompare(th, ds, e, q)
			if kills(r, delta, strict) {
				dead = true
				break
			}
			rq := dom.Rel{Lt: delta &^ (r.Lt | r.Eq), Eq: r.Eq}
			if !kills(rq, delta, strict) {
				window[w] = e
				w++
			}
		}
		if dead {
			continue
		}
		window = window[:w]
		window = append(window, q)
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	return window
}
