package counters

import (
	"sort"
	"sync"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
	"skycube/internal/memsim"
	"skycube/internal/skyline"
)

// barrierCycles is the modelled cost of one fork/join barrier per
// participating thread (≈ a microsecond at the modelled clock).
const barrierCycles = 5000

// probedTiledFilter is the profiled build of the Hybrid-style tiled
// flat-array skyline used by the ST and SD hooks. It mirrors
// skyline.hybridFilter: global two-level labels over δ, L1-norm tile order,
// a per-tile parallel prune against the accumulated result groups, then a
// sequential intra-tile pass. Probes record the sequential label-array
// loads, the DT point loads, and the result-group walks.
//
// With one probe the run is single-threaded (the STSC hook); with several,
// each tile's phase A is split across the probes' goroutines (the SDSC
// hook), so the same access stream lands on the modelled sockets the way
// the real algorithm's does.
func probedTiledFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, probes []*memsim.Thread) []int32 {
	const tileSize = 512
	n := len(rows)
	if n == 0 {
		return nil
	}
	dims := mask.Dims(delta)
	med, quart := tiledPivots(ds, rows, dims, probes)
	medM := make([]mask.Mask, n)
	quartM := make([]mask.Mask, n)
	sum := make([]float32, n)
	for k, q := range rows {
		probes[0].Load(pointAddr(ds, q), ds.Dims*4)
		probes[0].Instr(len(dims))
		pt := ds.Point(int(q))
		var m, qm mask.Mask
		var s float32
		for idx, j := range dims {
			v := pt[j]
			s += v
			half := 1
			if v < med[idx] {
				m |= 1 << uint(j)
				half = 0
			}
			if v < quart[half][idx] {
				qm |= 1 << uint(j)
			}
		}
		medM[k], quartM[k], sum[k] = m, qm, s
	}
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sum[ia] != sum[ib] {
			return sum[ia] < sum[ib]
		}
		return rows[ia] < rows[ib]
	})

	type group struct {
		med, quart mask.Mask
		members    []int32
	}
	var groups []group
	groupIdx := make(map[uint64]int)
	survivors := make([]int32, 0, n/4)
	alive := make([]bool, tileSize)

	var wg sync.WaitGroup
	for tileStart := 0; tileStart < n; tileStart += tileSize {
		tileEnd := tileStart + tileSize
		if tileEnd > n {
			tileEnd = n
		}
		tile := ord[tileStart:tileEnd]
		tlen := len(tile)

		work := func(th *memsim.Thread, lo, hi int) {
			defer wg.Done()
			for t := lo; t < hi; t++ {
				k := tile[t]
				th.Load(labelBase+uint64(k)*8, 8) // p's own labels
				mp, qp := medM[k], quartM[k]
				ok := true
			groupLoop:
				for gi := range groups {
					g := &groups[gi]
					// Sequential walk of the compact group-label array.
					th.Load(labelBase+0x1000_0000+uint64(gi)*8, 8)
					th.Instr(3)
					worse := skyline.CompositeStrict2(mp, qp, g.med, g.quart)
					if worse&delta != 0 {
						continue
					}
					better := skyline.CompositeStrict2(g.med, g.quart, mp, qp)
					if better&delta == delta {
						ok = false
						break
					}
					for _, m := range g.members {
						r := probedCompare(th, ds, rows[m], rows[k])
						if kills(r, delta, strict) {
							ok = false
							break groupLoop
						}
					}
				}
				alive[t] = ok
			}
		}
		tn := len(probes)
		if tn > tlen {
			tn = tlen
		}
		wg.Add(tn)
		for w := 0; w < tn; w++ {
			go work(probes[w], w*tlen/tn, (w+1)*tlen/tn)
		}
		wg.Wait()
		if len(probes) > 1 {
			// Fork/join barrier per tile, paid by every participating
			// thread — the synchronisation cost that limits SDSC's
			// scalability and makes hyper-threading counterproductive for
			// it (paper §7.2, Fig. 5).
			for _, th := range probes {
				th.Barrier(barrierCycles)
			}
		}

		// Intra-tile pass: Hybrid parallelises this phase over sub-blocks,
		// so its DT charges rotate across the probes.
		tileRows := make([]int32, 0, tlen)
		backref := make(map[int32]int32, tlen)
		for t := 0; t < tlen; t++ {
			if alive[t] {
				r := rows[tile[t]]
				backref[r] = tile[t]
				tileRows = append(tileRows, r)
			}
		}
		kept := probedIntraTile(probes, ds, tileRows, delta, strict)
		for _, r := range kept {
			k := backref[r]
			key := uint64(medM[k])<<32 | uint64(quartM[k])
			gi, exists := groupIdx[key]
			if !exists {
				gi = len(groups)
				groups = append(groups, group{med: medM[k], quart: quartM[k]})
				groupIdx[key] = gi
			}
			groups[gi].members = append(groups[gi].members, k)
			survivors = append(survivors, r)
		}
	}
	sort.Slice(survivors, func(a, b int) bool { return survivors[a] < survivors[b] })
	return survivors
}

// probedIntraTile is the window filter over one tile's survivors, with
// each point's comparisons charged round-robin across the probes (the
// production algorithm's intra-tile phase is parallelised over sub-blocks).
func probedIntraTile(probes []*memsim.Thread, ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	window := make([]int32, 0, 16)
	for qi, q := range rows {
		th := probes[qi%len(probes)]
		dead := false
		w := 0
		for _, e := range window {
			r := probedCompare(th, ds, e, q)
			if kills(r, delta, strict) {
				dead = true
				break
			}
			rq := dom.Rel{Lt: delta &^ (r.Lt | r.Eq), Eq: r.Eq}
			if !kills(rq, delta, strict) {
				window[w] = e
				w++
			}
		}
		if dead {
			continue
		}
		window = window[:w]
		window = append(window, q)
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	return window
}

// tiledPivots computes the per-dimension median and quartiles over rows,
// charging each dimension's column scan to a probe round-robin (the
// production code computes the columns independently in parallel).
func tiledPivots(ds *data.Dataset, rows []int32, dims []int, probes []*memsim.Thread) (med []float32, quart [2][]float32) {
	med = make([]float32, len(dims))
	quart[0] = make([]float32, len(dims))
	quart[1] = make([]float32, len(dims))
	col := make([]float32, len(rows))
	for idx, j := range dims {
		th := probes[idx%len(probes)]
		for i, q := range rows {
			col[i] = ds.Value(int(q), j)
		}
		th.Load(dataBase+uint64(j)*uint64(len(rows))*4, len(rows)*4)
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		n := len(col)
		med[idx] = col[n/2]
		quart[0][idx] = col[n/4]
		q3 := 3 * n / 4
		if q3 >= n {
			q3 = n - 1
		}
		quart[1][idx] = col[q3]
	}
	return med, quart
}
