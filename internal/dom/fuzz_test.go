package dom

import (
	"encoding/binary"
	"testing"

	"skycube/internal/mask"
)

// fuzzPointSets decodes raw fuzz bytes into two small point sets over a
// shared dimensionality (2–5). Coordinates land on a coarse signed 16-bit
// grid in [-1, 1], so ties, duplicates and negative values are common —
// exactly the inputs where corner arithmetic and Definition-1 tie handling
// can disagree.
func fuzzPointSets(raw []byte) (a, b [][]float32, d int) {
	if len(raw) < 2 {
		return nil, nil, 0
	}
	d = 2 + int(raw[0])%4
	na := 1 + int(raw[1])%8
	raw = raw[2:]
	decode := func(n int) [][]float32 {
		if len(raw) < n*d*2 {
			return nil
		}
		pts := make([][]float32, n)
		for i := 0; i < n; i++ {
			row := make([]float32, d)
			for j := 0; j < d; j++ {
				v := int16(binary.LittleEndian.Uint16(raw[(i*d+j)*2:]))
				row[j] = float32(v) / 16384
			}
			pts[i] = row
		}
		raw = raw[n*d*2:]
		return pts
	}
	a = decode(na)
	nb := 1 + len(raw)/(d*2)
	if nb > 8 {
		nb = 8
	}
	b = decode(nb)
	return a, b, d
}

// FuzzRegionDominance checks the region-dominance soundness contract
// against brute force over the bounded points: whenever a corner test
// claims dominance, every witnessed point-level dominance must hold; and
// the corner tests must agree with running DominatesIn directly on the
// corners (regions are just points to the kernel).
func FuzzRegionDominance(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 0, 255, 127, 255, 127})
	f.Add([]byte{2, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28})
	f.Add([]byte{1, 2, 0x00, 0x80, 0xff, 0x7f, 0x01, 0x80, 0xfe, 0x7f,
		0x00, 0x00, 0x00, 0x00, 0x10, 0x00, 0x10, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		setA, setB, d := fuzzPointSets(raw)
		if setA == nil || setB == nil {
			t.Skip("too few bytes for two point sets")
		}
		ra, rb := RegionOf(setA), RegionOf(setB)
		for _, p := range setA {
			if !ra.Contains(p) {
				t.Fatalf("region %v does not contain its point %v", ra, p)
			}
		}
		for delta := mask.Mask(1); delta < 1<<uint(d); delta++ {
			// Corner tests must be the plain kernel applied to the corners.
			if got, want := RegionDominatesRegion(ra, rb, delta), DominatesIn(ra.Max, rb.Min, delta); got != want {
				t.Fatalf("δ=%b: RegionDominatesRegion=%v, corner DominatesIn=%v", delta, got, want)
			}
			// Soundness of region-vs-region: the claim implies every pair.
			if RegionDominatesRegion(ra, rb, delta) {
				for _, a := range setA {
					for _, b := range setB {
						if !DominatesIn(a, b, delta) {
							t.Fatalf("δ=%b: region A dominates region B claimed, but %v ⊀ %v", delta, a, b)
						}
					}
				}
			}
			// Soundness of region-vs-point and point-vs-region.
			for _, q := range setB {
				if RegionDominatesPoint(ra, q, delta) {
					for _, a := range setA {
						if !DominatesIn(a, q, delta) {
							t.Fatalf("δ=%b: max-corner claim on %v, but %v ⊀ it", delta, q, a)
						}
					}
				}
			}
			for _, p := range setA {
				if PointDominatesRegion(p, rb, delta) {
					for _, b := range setB {
						if !DominatesIn(p, b, delta) {
							t.Fatalf("δ=%b: min-corner claim by %v, but it ⊀ %v", delta, p, b)
						}
					}
				}
			}
		}
	})
}
