// Package dom implements dominance tests (DTs) and mask tests (MTs), the
// comparison kernels of every skyline and skycube algorithm in this
// repository (paper §2.2, Definition 1, and Appendix B.2 Equation 1).
//
// Convention: smaller values are better on every dimension (paper
// footnote 2).
package dom

import (
	"math/bits"

	"skycube/internal/mask"
)

// Rel captures the complete per-dimension relationship between two points
// as three bitmasks. Exactly one of Lt, Eq, Gt (= ^(Lt|Eq) within the
// dimensionality) holds per dimension.
type Rel struct {
	Lt mask.Mask // bit i set iff p[i] < q[i]
	Eq mask.Mask // bit i set iff p[i] == q[i]
}

// Leq returns the bitmask B_{p≤q}.
func (r Rel) Leq() mask.Mask { return r.Lt | r.Eq }

// Compare computes the per-dimension relationship masks between p and q.
// This is the exact dominance test's data load: it reads all d coordinates
// of both points (the paper's DT cost). The loop is written without
// branches in the accumulation so compilers can unroll it; on hardware this
// is the part VSkyline vectorises with SIMD.
//
// Contract: p and q must have the same length — comparing points of
// different dimensionality is always a programming error, and silently
// truncating to the shorter point would fabricate a Rel claiming equality
// beyond it, so mismatches panic. Aliasing is fine: Compare(p, p) returns
// {Lt: 0, Eq: full}, and p and q may overlap arbitrarily since both are
// only read.
func Compare(p, q []float32) Rel {
	if len(p) != len(q) {
		panic("dom: Compare on points of different dimensionality")
	}
	var lt, eq mask.Mask
	for i := 0; i < len(p); i++ {
		pi, qi := p[i], q[i]
		var l, e mask.Mask
		if pi < qi {
			l = 1
		}
		if pi == qi {
			e = 1
		}
		lt |= l << uint(i)
		eq |= e << uint(i)
	}
	return Rel{Lt: lt, Eq: eq}
}

// CompareIn computes the relationship masks over only the dimensions of δ,
// loading at most |δ| coordinates per point. Bits outside δ are zero.
// The paper (§5.1) notes that for the CPU the projected DT is *not* cheaper
// than comparing all dimensions and masking afterwards; this variant exists
// for the GPU specialisation (§6.1), where projected DTs reduce loads, and
// for tests of that claim.
func CompareIn(p, q []float32, delta mask.Mask) Rel {
	var lt, eq mask.Mask
	for rem := delta; rem != 0; rem &^= rem & -rem {
		i := trailingZeros(rem)
		pi, qi := p[i], q[i]
		// Same branch-free accumulation shape as Compare: two independent
		// compares per dimension, no else-chain the compiler must order.
		var l, e mask.Mask
		if pi < qi {
			l = 1
		}
		if pi == qi {
			e = 1
		}
		lt |= l << uint(i)
		eq |= e << uint(i)
	}
	return Rel{Lt: lt, Eq: eq}
}

func trailingZeros(m mask.Mask) int {
	// math/bits.TrailingZeros32 compiles to a single TZCNT/BSF instruction;
	// CompareIn calls this once per set bit of δ, so it must not loop.
	return bits.TrailingZeros32(uint32(m))
}

// DominatesIn reports whether p ≺_δ q: p dominates q in subspace δ
// (Definition 1): (B_{p=q} & δ) ≠ δ and (B_{p≤q} & δ) = δ.
func DominatesIn(p, q []float32, delta mask.Mask) bool {
	r := Compare(p, q)
	return r.Eq&delta != delta && r.Leq()&delta == delta
}

// StrictlyDominatesIn reports whether p ≺≺_δ q: (B_{p<q} & δ) = δ.
func StrictlyDominatesIn(p, q []float32, delta mask.Mask) bool {
	r := Compare(p, q)
	return r.Lt&delta == delta
}

// RelDominates evaluates Definition 1 on precomputed masks.
func RelDominates(r Rel, delta mask.Mask) bool {
	return r.Eq&delta != delta && r.Leq()&delta == delta
}

// RelStrictlyDominates evaluates strict dominance on precomputed masks.
func RelStrictlyDominates(r Rel, delta mask.Mask) bool {
	return r.Lt&delta == delta
}

// MaskTest evaluates Equation 1 of the paper (Appendix B.2): given the
// relationships of p and q to a common pivot π — bPivP = B_{π≤p},
// bPivQ = B_{π≤q} — it reports whether p *could* dominate q in δ. A false
// result proves p ⊀_δ q via transitivity (there is a dimension i ∈ δ with
// q[i] < π[i] ≤ p[i]); a true result is inconclusive and requires a DT.
//
// The `& δ` projection is fused into the test exactly as §5.1 describes,
// rather than projecting the stored masks.
func MaskTest(bPivP, bPivQ, delta mask.Mask) bool {
	return (bPivQ|^bPivP)&delta == delta
}

// StrictTransitive returns the subspace in which q is *guaranteed* to
// strictly dominate p given only tree path labels: bQ and bP are the masks
// of dimensions on which q (resp. p) is strictly below a common pivot.
// On every dimension of the result, q < pivot ≤ p. A zero result conveys
// nothing. This is the filter-phase primitive of MDMC (§5.2, §6.2).
func StrictTransitive(bQ, bP mask.Mask) mask.Mask {
	return bQ &^ bP
}
