package dom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skycube/internal/mask"
)

// The flights of Table 1 with the paper's bit order — dimension 0 is
// Arrival, 1 is Duration, 2 is Price (the paper writes points as
// (p[d−1], …, p[0]) with Price leftmost). Smaller is better; earlier
// arrival is better so clock times are used directly.
var flights = [][]float32{
	{12.20, 17, 120}, // f0
	{9.00, 12, 148},  // f1
	{8.20, 13, 169},  // f2
	{21.25, 3, 186},  // f3
	{21.25, 5, 196},  // f4
}

func TestCompareFlightExamples(t *testing.T) {
	// Paper §2.1: B_{f0≤f1} = 100, B_{f1≤f0} = 011, B_{f0=f1} = 000.
	r01 := Compare(flights[0], flights[1])
	if r01.Leq() != 0b100 {
		t.Errorf("B_{f0≤f1} = %03b, want 100", r01.Leq())
	}
	if r01.Eq != 0 {
		t.Errorf("B_{f0=f1} = %03b, want 000", r01.Eq)
	}
	r10 := Compare(flights[1], flights[0])
	if r10.Leq() != 0b011 {
		t.Errorf("B_{f1≤f0} = %03b, want 011", r10.Leq())
	}
}

func TestDominanceFlightExamples(t *testing.T) {
	// §2.2: f1 ≺ f0 in δ = 011.
	if !DominatesIn(flights[1], flights[0], 0b011) {
		t.Error("f1 should dominate f0 in δ=011")
	}
	// f3 strictly dominates f4 in δ = 110 …
	if !StrictlyDominatesIn(flights[3], flights[4], 0b110) {
		t.Error("f3 should strictly dominate f4 in δ=110")
	}
	// … but merely dominates f4 in δ = 111 (equal arrival).
	if !DominatesIn(flights[3], flights[4], 0b111) {
		t.Error("f3 should dominate f4 in δ=111")
	}
	if StrictlyDominatesIn(flights[3], flights[4], 0b111) {
		t.Error("f3 should NOT strictly dominate f4 in δ=111")
	}
}

func TestDominanceIrreflexive(t *testing.T) {
	for _, f := range flights {
		for _, delta := range mask.Subspaces(3) {
			if DominatesIn(f, f, delta) {
				t.Fatalf("point dominates itself in δ=%b", delta)
			}
		}
	}
}

func randPoint(rng *rand.Rand, d int) []float32 {
	p := make([]float32, d)
	for i := range p {
		// Small integer domain to exercise equality cases frequently.
		p[i] = float32(rng.Intn(5))
	}
	return p
}

func TestDominanceAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const d = 6
	for it := 0; it < 2000; it++ {
		p, q := randPoint(rng, d), randPoint(rng, d)
		delta := mask.Mask(rng.Intn(1<<d-1) + 1)
		if DominatesIn(p, q, delta) && DominatesIn(q, p, delta) {
			t.Fatalf("dominance is symmetric for p=%v q=%v δ=%b", p, q, delta)
		}
	}
}

func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d = 5
	for it := 0; it < 2000; it++ {
		p, q, r := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		delta := mask.Mask(rng.Intn(1<<d-1) + 1)
		if DominatesIn(p, q, delta) && DominatesIn(q, r, delta) {
			if !DominatesIn(p, r, delta) {
				t.Fatalf("transitivity broken: p=%v q=%v r=%v δ=%b", p, q, r, delta)
			}
		}
	}
}

func TestStrictImpliesDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 6
	for it := 0; it < 2000; it++ {
		p, q := randPoint(rng, d), randPoint(rng, d)
		delta := mask.Mask(rng.Intn(1<<d-1) + 1)
		if StrictlyDominatesIn(p, q, delta) && !DominatesIn(p, q, delta) {
			t.Fatalf("strict dominance without dominance: p=%v q=%v δ=%b", p, q, delta)
		}
	}
}

func TestDominancePropagatesToSubspaces(t *testing.T) {
	// Strict dominance in δ propagates to every non-empty submask of δ —
	// the invariant MDMC's filter exploits.
	rng := rand.New(rand.NewSource(4))
	const d = 5
	for it := 0; it < 1000; it++ {
		p, q := randPoint(rng, d), randPoint(rng, d)
		delta := mask.Mask(rng.Intn(1<<d-1) + 1)
		if !StrictlyDominatesIn(p, q, delta) {
			continue
		}
		mask.SubmasksOf(delta, func(sub mask.Mask) bool {
			if !StrictlyDominatesIn(p, q, sub) {
				t.Fatalf("strict dominance did not propagate to %b ⊆ %b", sub, delta)
			}
			return true
		})
	}
}

func TestCompareInMatchesCompare(t *testing.T) {
	f := func(a, b [8]uint8, d16 uint16) bool {
		const d = 8
		p, q := make([]float32, d), make([]float32, d)
		for i := 0; i < d; i++ {
			p[i], q[i] = float32(a[i]%4), float32(b[i]%4)
		}
		delta := mask.Mask(d16)&mask.Full(d) | 1
		full := Compare(p, q)
		proj := CompareIn(p, q, delta)
		return proj.Lt == full.Lt&delta && proj.Eq == full.Eq&delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaskTestSoundness(t *testing.T) {
	// If MaskTest returns false, p must not dominate q in δ — for every
	// pivot. (Completeness does not hold: a true result is inconclusive.)
	rng := rand.New(rand.NewSource(5))
	const d = 5
	for it := 0; it < 5000; it++ {
		piv := randPoint(rng, d)
		p, q := randPoint(rng, d), randPoint(rng, d)
		delta := mask.Mask(rng.Intn(1<<d-1) + 1)
		bPivP := Compare(piv, p).Leq()
		bPivQ := Compare(piv, q).Leq()
		if !MaskTest(bPivP, bPivQ, delta) && DominatesIn(p, q, delta) {
			t.Fatalf("mask test rejected a real dominance: piv=%v p=%v q=%v δ=%b", piv, p, q, delta)
		}
	}
}

func TestMaskTestPaperExample(t *testing.T) {
	// Appendix B.2 with pivot f2 on (Arrival, Duration): the region of f0
	// cannot dominate the region of f1 because f0 is worse than the pivot
	// on both dimensions while f1 is better on one.
	piv := flights[2][:2]
	bPivP := Compare(piv, flights[0][:2]).Leq() // π ≤ f0 per dimension
	bPivQ := Compare(piv, flights[1][:2]).Leq()
	if MaskTest(bPivP, bPivQ, 0b11) {
		t.Errorf("mask test should prove f0 cannot dominate f1 (bPivP=%02b bPivQ=%02b)", bPivP, bPivQ)
	}
	// Opposite direction is inconclusive (must return true).
	if !MaskTest(bPivQ, bPivP, 0b11) {
		t.Error("mask test for f1 vs f0 should be inconclusive (true)")
	}
}

func TestStrictTransitive(t *testing.T) {
	// §5.2 worked example with pm = (12.20, 12, 169): in <-mask encoding
	// B_{f0<pm} = 100 (only Price below the median) and B_{f4<pm} = 010
	// (only Duration). f0 is below the median exactly where f4 is not, so
	// f0 strictly dominates f4 in δ = 100 — the paper's δ = 4.
	if got := StrictTransitive(0b100, 0b010); got != 0b100 {
		t.Errorf("StrictTransitive(100,010) = %03b, want 100", got)
	}
	if got := StrictTransitive(0b101, 0b101); got != 0 {
		t.Errorf("equal masks must convey nothing, got %03b", got)
	}
}

func TestStrictTransitiveSound(t *testing.T) {
	// Whenever the tree labels imply strict dominance, an exact DT must
	// agree on that subspace.
	rng := rand.New(rand.NewSource(6))
	const d = 6
	for it := 0; it < 5000; it++ {
		piv := randPoint(rng, d)
		p, q := randPoint(rng, d), randPoint(rng, d)
		bQ := Compare(q, piv).Lt // dims where q < pivot
		bP := Compare(p, piv).Lt
		delta := StrictTransitive(bQ, bP)
		if delta == 0 {
			continue
		}
		if !StrictlyDominatesIn(q, p, delta) {
			t.Fatalf("transitive claim wrong: piv=%v q=%v p=%v δ=%b", piv, q, p, delta)
		}
	}
}

func BenchmarkCompare16(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := randPoint(rng, 16), randPoint(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Compare(p, q).Lt
	}
}

// BenchmarkCompareIn16 measures the projected DT over a half-populated
// 16-dim subspace: one trailingZeros per set bit of δ, so the bit-scan cost
// (bits.TrailingZeros32 vs the old shift loop) dominates the difference.
func BenchmarkCompareIn16(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := randPoint(rng, 16), randPoint(rng, 16)
	const delta = mask.Mask(0b1010101010101010)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = CompareIn(p, q, delta).Lt
	}
}

// BenchmarkCompareInSparse is the sparse-subspace case (2 of 16 dims, the
// high bits): the shift loop paid 14+15 iterations here, the hardware bit
// scan pays one instruction per set bit.
func BenchmarkCompareInSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := randPoint(rng, 16), randPoint(rng, 16)
	const delta = mask.Mask(0b1100000000000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = CompareIn(p, q, delta).Lt
	}
}

var sink mask.Mask
