// Region dominance: axis-aligned bounding boxes as dominance witnesses.
//
// The distributed tier (internal/cluster) ships per-partition region bounds
// — the componentwise min/max corners of a shard's local skyline — so that
// dominance against a *region* can prove dominance by *every point inside
// it* without shipping the points. The direction of each test matters:
//
//   - A region's MAX corner dominating a point proves every point of the
//     region dominates it (each point is ≤ the max corner on every
//     dimension, so ≤ carries through, and a strict dimension of the corner
//     stays strict).
//   - A point dominating a region's MIN corner proves it dominates every
//     point of the region, by the mirrored argument.
//   - Region A's max corner dominating region B's min corner proves every
//     point of A dominates every point of B.
//
// All three are sound only when the witnessing region is non-empty (a
// corner of nothing proves nothing); callers carry the point count
// alongside the corners for exactly that reason.
package dom

import "skycube/internal/mask"

// Region is an axis-aligned bounding box: Min[i] ≤ p[i] ≤ Max[i] for every
// point p the region bounds, on every dimension i. The zero Region (nil
// corners) bounds nothing.
type Region struct {
	Min, Max []float32
}

// RegionOf returns the tight bounding box of the given points (componentwise
// min and max). An empty point set yields the zero Region.
func RegionOf(points [][]float32) Region {
	if len(points) == 0 {
		return Region{}
	}
	d := len(points[0])
	min := make([]float32, d)
	max := make([]float32, d)
	copy(min, points[0])
	copy(max, points[0])
	for _, p := range points[1:] {
		for i := 0; i < d && i < len(p); i++ {
			if p[i] < min[i] {
				min[i] = p[i]
			}
			if p[i] > max[i] {
				max[i] = p[i]
			}
		}
	}
	return Region{Min: min, Max: max}
}

// Contains reports whether p lies inside the region (inclusive).
func (r Region) Contains(p []float32) bool {
	if r.Min == nil {
		return false
	}
	for i := range r.Min {
		if i >= len(p) || p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// RegionDominatesPoint reports whether every point of the (non-empty)
// region dominates q in δ: the region's max corner ≺_δ q. The corner acts
// as the worst point the region could hold; if even that dominates q, every
// actual point does.
func RegionDominatesPoint(r Region, q []float32, delta mask.Mask) bool {
	return r.Max != nil && DominatesIn(r.Max, q, delta)
}

// PointDominatesRegion reports whether p dominates every point of the
// (non-empty) region in δ: p ≺_δ the region's min corner. The min corner is
// the best point the region could hold; dominating it dominates everything
// the region bounds.
func PointDominatesRegion(p []float32, r Region, delta mask.Mask) bool {
	return r.Min != nil && DominatesIn(p, r.Min, delta)
}

// RegionDominatesRegion reports whether every point of (non-empty) region a
// dominates every point of region b in δ: a's max corner ≺_δ b's min
// corner. This is the whole-shard skip test of the pruned distributed
// gather — a partition whose entire region is dominated contributes nothing
// to the global skyline.
func RegionDominatesRegion(a, b Region, delta mask.Mask) bool {
	return a.Max != nil && b.Min != nil && DominatesIn(a.Max, b.Min, delta)
}
