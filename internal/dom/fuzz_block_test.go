package dom

import (
	"math"
	"testing"

	"skycube/internal/data"
	"skycube/internal/mask"
)

// fuzzVal maps 16 bits to a finite float32. Grid mode collapses values onto
// a few levels so ties and exact dominance are common; continuous mode
// spreads sign, exponent (2^-15..2^16) and mantissa so the float32-sum
// monotonicity the stop point relies on is stressed across magnitudes.
func fuzzVal(u uint16, grid int) float32 {
	if grid > 0 {
		return float32(int(u) % grid)
	}
	sign := uint32(u>>15) << 31
	exp := uint32(112+(u>>10)&31) << 23
	mant := uint32(u&1023) << 13
	return math.Float32frombits(sign | exp | mant)
}

// FuzzBlockKernelEquivalence asserts the block kernels are bit-for-bit
// equivalent to the scalar Compare loop on arbitrary blocks, and that
// stop-point termination never changes a verdict on sum-sorted sets.
func FuzzBlockKernelEquivalence(f *testing.F) {
	f.Add([]byte("\x03\x00\x01abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Add([]byte("\x01\x05\x00AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"))
	f.Add([]byte("\x07\x02\x01the quick brown fox jumps over the lazy dog, twice over"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			return
		}
		k := 1 + int(raw[0]%8)
		grid := 0
		if raw[1]%2 == 0 {
			grid = 2 + int(raw[1]%9)
		}
		strict := raw[2]%2 == 1
		body := raw[3:]
		nvals := len(body) / 2
		if nvals < 2*k {
			return
		}
		vals := make([]float32, nvals)
		for i := range vals {
			vals[i] = fuzzVal(uint16(body[2*i])|uint16(body[2*i+1])<<8, grid)
		}
		pq := vals[:k]
		lanes := vals[k:]
		n := len(lanes) / k
		if n == 0 {
			return
		}
		if n > 600 {
			n = 600
		}
		rows := make([][]float32, n)
		for i := range rows {
			rows[i] = lanes[i*k : (i+1)*k]
		}
		ds := data.FromRows(rows)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		dims := make([]int, k)
		for j := range dims {
			dims[j] = j
		}
		bs := data.SortedBlocksOf(ds, ids, dims, 64)
		defer data.PutBlockSet(bs)

		var tally KernelTally
		full := mask.Full(k)
		want := false
		buf := make([]float32, k)
		for i := 0; i < n; i++ {
			r := Compare(ds.Point(i), pq)
			ok := RelDominates(r, full)
			if strict {
				ok = RelStrictlyDominates(r, full)
			}
			if ok {
				want = true
				break
			}
		}
		if got := BlocksAnyDominator(bs, pq, 0, strict, false, &tally); got != want {
			t.Fatalf("AnyDominator: block %v, scalar %v", got, want)
		}
		psum := data.SumOver(pq, dims)
		if got := BlocksAnyDominator(bs, pq, psum, strict, true, &tally); got != want {
			t.Fatalf("AnyDominator with stop point: block %v, scalar %v", got, want)
		}

		out := make([]uint64, 1)
		for _, b := range bs.Blocks {
			DominatedBitmap(b, pq, strict, out, &tally)
			rel := make([]Rel, b.N)
			CompareBlock(b.Cols, 0, b.N, pq, rel)
			for lane := 0; lane < b.N; lane++ {
				q := lanePoint(b, lane, buf)
				if wr := Compare(q, pq); rel[lane] != wr {
					t.Fatalf("CompareBlock lane %d: %+v, want %+v", lane, rel[lane], wr)
				}
				r := Compare(pq, q)
				wantBit := RelDominates(r, full)
				if strict {
					wantBit = RelStrictlyDominates(r, full)
				}
				if gotBit := out[lane>>6]&(1<<uint(lane&63)) != 0; gotBit != wantBit {
					t.Fatalf("DominatedBitmap lane %d: %v, want %v", lane, gotBit, wantBit)
				}
			}
		}
	})
}
