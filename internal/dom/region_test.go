package dom

import (
	"testing"

	"skycube/internal/mask"
)

func TestRegionOf(t *testing.T) {
	pts := [][]float32{{1, 5, 3}, {2, 2, 9}, {0, 7, 4}}
	r := RegionOf(pts)
	wantMin := []float32{0, 2, 3}
	wantMax := []float32{2, 7, 9}
	for i := range wantMin {
		if r.Min[i] != wantMin[i] || r.Max[i] != wantMax[i] {
			t.Fatalf("corner dim %d: got [%v,%v], want [%v,%v]", i, r.Min[i], r.Max[i], wantMin[i], wantMax[i])
		}
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("region %v does not contain its own point %v", r, p)
		}
	}
	if RegionOf(nil).Min != nil {
		t.Fatal("empty RegionOf should be the zero Region")
	}
}

func TestRegionDominanceDirections(t *testing.T) {
	// Region of two points bounded by min (1,1) and max (2,3).
	r := RegionOf([][]float32{{1, 3}, {2, 1}})
	full := mask.Mask(0b11)

	// Max corner (2,3) dominates (5,5): every region point dominates it.
	if !RegionDominatesPoint(r, []float32{5, 5}, full) {
		t.Error("max corner (2,3) should dominate (5,5)")
	}
	// (3,2) is dominated by region point (2,1) but NOT by the max corner —
	// the region test must stay conservative and say no.
	if RegionDominatesPoint(r, []float32{3, 2}, full) {
		t.Error("region must not claim dominance (2,3) ⊀ (3,2)")
	}
	// Point (0,0) dominates min corner (1,1): dominates every region point.
	if !PointDominatesRegion([]float32{0, 0}, r, full) {
		t.Error("(0,0) should dominate the whole region")
	}
	// (1.5, 0) does not dominate the min corner (1 < 1.5 on dim 0).
	if PointDominatesRegion([]float32{1.5, 0}, r, full) {
		t.Error("(1.5,0) must not dominate a region whose min corner is (1,1)")
	}
	// Subspace projection: on dim 1 alone, max corner 3 vs point (99, 3) is
	// equal — no dominance under Definition 1.
	if RegionDominatesPoint(r, []float32{99, 3}, mask.Bit(1)) {
		t.Error("equal value on the only projected dim is not dominance")
	}

	// Region-vs-region: A = box of {(0,0),(1,1)}, B = box of {(2,2),(3,3)}.
	a := RegionOf([][]float32{{0, 0}, {1, 1}})
	b := RegionOf([][]float32{{2, 2}, {3, 3}})
	if !RegionDominatesRegion(a, b, full) {
		t.Error("A (max 1,1) should dominate B (min 2,2)")
	}
	if RegionDominatesRegion(b, a, full) {
		t.Error("B must not dominate A")
	}
	// Overlapping boxes: no proof either way.
	c := RegionOf([][]float32{{0.5, 0.5}, {2.5, 2.5}})
	if RegionDominatesRegion(a, c, full) && RegionDominatesRegion(c, a, full) {
		t.Error("overlapping regions cannot dominate each other both ways")
	}

	// The zero region proves nothing in any direction.
	var zero Region
	if RegionDominatesPoint(zero, []float32{9, 9}, full) ||
		PointDominatesRegion([]float32{0, 0}, zero, full) ||
		RegionDominatesRegion(zero, a, full) || RegionDominatesRegion(a, zero, full) {
		t.Error("the zero Region must never witness dominance")
	}
}

// TestRegionSoundnessBrute cross-checks the soundness contract on a fixed
// grid: whenever the region test claims dominance, brute force over the
// actual points must agree (the reverse — completeness — is not promised).
func TestRegionSoundnessBrute(t *testing.T) {
	setA := [][]float32{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}}
	setB := [][]float32{{3, 3, 3}, {4, 2.5, 5}, {2.5, 4, 4}}
	ra, rb := RegionOf(setA), RegionOf(setB)
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		if RegionDominatesRegion(ra, rb, delta) {
			for _, a := range setA {
				for _, b := range setB {
					if !DominatesIn(a, b, delta) {
						t.Fatalf("δ=%b: region claim but %v ⊀ %v", delta, a, b)
					}
				}
			}
		}
		for _, q := range setB {
			if RegionDominatesPoint(ra, q, delta) {
				for _, a := range setA {
					if !DominatesIn(a, q, delta) {
						t.Fatalf("δ=%b: corner claim but %v ⊀ %v", delta, a, q)
					}
				}
			}
		}
		for _, p := range setA {
			if PointDominatesRegion(p, rb, delta) {
				for _, b := range setB {
					if !DominatesIn(p, b, delta) {
						t.Fatalf("δ=%b: min-corner claim but %v ⊀ %v", delta, p, b)
					}
				}
			}
		}
	}
}
