package dom

import (
	"math/rand"
	"testing"

	"skycube/internal/data"
	"skycube/internal/mask"
)

// lanePoint reconstructs the projected coordinates of one lane.
func lanePoint(b *data.Block, lane int, buf []float32) []float32 {
	buf = buf[:0]
	for _, col := range b.Cols {
		buf = append(buf, col[lane])
	}
	return buf
}

// scalarAnyDominator is the reference loop the block kernels must match.
func scalarAnyDominator(bs *data.BlockSet, pq []float32, strict bool) bool {
	full := mask.Full(bs.K)
	buf := make([]float32, bs.K)
	for _, b := range bs.Blocks {
		for lane := 0; lane < b.N; lane++ {
			if !b.IsAlive(lane) {
				continue
			}
			r := Compare(lanePoint(b, lane, buf), pq)
			if strict {
				if RelStrictlyDominates(r, full) {
					return true
				}
			} else if RelDominates(r, full) {
				return true
			}
		}
	}
	return false
}

func randBlockSet(rng *rand.Rand, k, n, blockSize int, grid int) ([]float32, *data.BlockSet) {
	pts := make([][]float32, n)
	dims := make([]int, k)
	for j := range dims {
		dims[j] = j
	}
	for i := range pts {
		p := make([]float32, k)
		for j := range p {
			p[j] = float32(rng.Intn(grid)) / float32(grid)
		}
		pts[i] = p
	}
	ds := data.FromRows(pts)
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	bs := data.SortedBlocksOf(ds, rows, dims, blockSize)
	q := make([]float32, k)
	for j := range q {
		q[j] = float32(rng.Intn(grid)) / float32(grid)
	}
	return q, bs
}

func TestBlockKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tally KernelTally
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(400)
		grid := []int{2, 4, 16, 1024}[rng.Intn(4)]
		pq, bs := randBlockSet(rng, k, n, 64+64*rng.Intn(4), grid)
		// Kill a random subset so the Alive masking is exercised.
		for _, b := range bs.Blocks {
			for lane := 0; lane < b.N; lane++ {
				if rng.Intn(5) == 0 {
					b.Kill(lane)
				}
			}
		}
		for _, strict := range []bool{false, true} {
			want := scalarAnyDominator(bs, pq, strict)
			got := BlocksAnyDominator(bs, pq, 0, strict, false, &tally)
			if got != want {
				t.Fatalf("trial %d strict=%v: block %v, scalar %v", trial, strict, got, want)
			}
		}
		data.PutBlockSet(bs)
	}
	tally.Flush()
}

func TestDominatedBitmapMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tally KernelTally
	out := make([]uint64, 8)
	buf := make([]float32, 8)
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(300)
		pq, bs := randBlockSet(rng, k, n, 64+64*rng.Intn(4), 8)
		full := mask.Full(k)
		for _, strict := range []bool{false, true} {
			for _, b := range bs.Blocks {
				DominatedBitmap(b, pq, strict, out, &tally)
				for lane := 0; lane < b.N; lane++ {
					q := lanePoint(b, lane, buf)
					want := false
					if b.IsAlive(lane) {
						r := Compare(pq, q)
						if strict {
							want = RelStrictlyDominates(r, full)
						} else {
							want = RelDominates(r, full)
						}
					}
					got := out[lane>>6]&(1<<uint(lane&63)) != 0
					if got != want {
						t.Fatalf("trial %d strict=%v lane %d: bitmap %v, scalar %v", trial, strict, lane, got, want)
					}
				}
			}
		}
		data.PutBlockSet(bs)
	}
	tally.Flush()
}

func TestCompareBlockMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(10)
		n := 1 + rng.Intn(200)
		cols := make([][]float32, k)
		for j := range cols {
			cols[j] = make([]float32, n)
			for i := range cols[j] {
				cols[j][i] = float32(rng.Intn(8))
			}
		}
		pp := make([]float32, k)
		for j := range pp {
			pp[j] = float32(rng.Intn(8))
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		out := make([]Rel, hi-lo)
		CompareBlock(cols, lo, hi, pp, out)
		buf := make([]float32, k)
		for i := lo; i < hi; i++ {
			for j := 0; j < k; j++ {
				buf[j] = cols[j][i]
			}
			if want := Compare(buf, pp); out[i-lo] != want {
				t.Fatalf("trial %d lane %d: %+v, want %+v", trial, i, out[i-lo], want)
			}
		}
	}
}

// TestStopPointSound is the soundness check of sorted stop-point filtering:
// on sum-sorted block sets, stopping at the first block with MinSum > psum
// must never change the verdict.
func TestStopPointSound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var tally KernelTally
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(400)
		pq, bs := randBlockSet(rng, k, n, 64, 6)
		dims := make([]int, k)
		for j := range dims {
			dims[j] = j
		}
		psum := data.SumOver(pq, dims)
		noStop := BlocksAnyDominator(bs, pq, psum, false, false, &tally)
		withStop := BlocksAnyDominator(bs, pq, psum, false, true, &tally)
		if noStop != withStop {
			t.Fatalf("trial %d: stop point changed verdict: %v vs %v", trial, withStop, noStop)
		}
		sNo := BlocksAnyDominator(bs, pq, psum, true, false, &tally)
		sStop := BlocksAnyDominator(bs, pq, psum, true, true, &tally)
		if sNo != sStop {
			t.Fatalf("trial %d strict: stop point changed verdict: %v vs %v", trial, sStop, sNo)
		}
		data.PutBlockSet(bs)
	}
	tally.Flush()
}

func TestKernelConfigRoundTrip(t *testing.T) {
	defer SetKernelConfig(KernelConfig{})
	SetKernelConfig(KernelConfig{DisableBlocks: true, DisableStopPoints: true})
	if BlocksEnabled() || StopPointsEnabled() {
		t.Fatal("disable flags not honoured")
	}
	got := Kernels()
	if !got.DisableBlocks || !got.DisableStopPoints {
		t.Fatalf("Kernels() = %+v", got)
	}
	SetKernelConfig(KernelConfig{})
	if !BlocksEnabled() || !StopPointsEnabled() {
		t.Fatal("zero config should enable everything")
	}
}

func TestKernelTallyFlush(t *testing.T) {
	before := KernelStats()
	tally := KernelTally{Sweeps: 3, StopExits: 2, Fallbacks: 1}
	tally.Flush()
	if tally != (KernelTally{}) {
		t.Fatalf("tally not zeroed: %+v", tally)
	}
	after := KernelStats()
	if after.BlockSweeps-before.BlockSweeps != 3 ||
		after.StopPointExits-before.StopPointExits != 2 ||
		after.ScalarFallbacks-before.ScalarFallbacks != 1 {
		t.Fatalf("counters did not advance: before %+v after %+v", before, after)
	}
}

// Satellite: the Compare length contract is a panic, not silent truncation.
func TestCompareLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare on mismatched lengths should panic")
		}
	}()
	Compare([]float32{1, 2, 3}, []float32{1, 2})
}

// Satellite: aliasing is explicitly allowed — a point compared to itself is
// all-equal, never a dominator.
func TestCompareAliasing(t *testing.T) {
	p := []float32{1, 2, 3, 4}
	r := Compare(p, p)
	full := mask.Full(4)
	if r.Lt != 0 || r.Eq != full {
		t.Fatalf("Compare(p, p) = %+v", r)
	}
	if RelDominates(r, full) {
		t.Fatal("a point must not dominate itself")
	}
	// Overlapping subslices of the same backing array are also fine.
	r = Compare(p[:3], p[1:])
	if r.Lt != mask.Full(3) {
		t.Fatalf("overlapping compare: %+v", r)
	}
}
