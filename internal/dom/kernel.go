// Kernel configuration and counters for the block dominance layer.
//
// The block kernels (block.go) are a pure performance layer: every caller
// keeps a scalar path that is bit-for-bit equivalent, selected either by the
// global configuration below (ablation) or by input size (sparse tails).
// The configuration lives here, at the bottom of the import graph, so the
// skyline algorithms, the MDMC template, the cluster merge and the serving
// binaries can all consult one switch without new dependencies.
package dom

import "sync/atomic"

// KernelConfig selects between the block dominance kernels and the scalar
// reference path. The zero value enables everything.
type KernelConfig struct {
	// DisableBlocks forces every filter/refine loop onto the scalar
	// dom.Compare path (the -no-block-kernel ablation).
	DisableBlocks bool
	// DisableStopPoints keeps the block kernels but scans every block,
	// ignoring the sorted δ-sum stop point (the -no-stop-points ablation).
	DisableStopPoints bool
}

var (
	disableBlocks     atomic.Bool
	disableStopPoints atomic.Bool
)

// SetKernelConfig installs the process-wide kernel configuration. Safe for
// concurrent use; builds in flight may mix modes across points, which is
// harmless because the modes are result-equivalent.
func SetKernelConfig(c KernelConfig) {
	disableBlocks.Store(c.DisableBlocks)
	disableStopPoints.Store(c.DisableStopPoints)
}

// Kernels returns the current kernel configuration.
func Kernels() KernelConfig {
	return KernelConfig{
		DisableBlocks:     disableBlocks.Load(),
		DisableStopPoints: disableStopPoints.Load(),
	}
}

// BlocksEnabled reports whether the block kernels are active.
func BlocksEnabled() bool { return !disableBlocks.Load() }

// StopPointsEnabled reports whether sorted stop-point termination is active.
func StopPointsEnabled() bool { return !disableStopPoints.Load() }

// KernelCounters is a snapshot of the process-wide kernel activity counters,
// exported as the skycube_kernel_* metric family.
type KernelCounters struct {
	// BlockSweeps counts 64-lane word sweeps executed by the block kernels.
	BlockSweeps uint64
	// StopPointExits counts scans terminated early because the next block's
	// minimum δ-sum proved no later candidate could dominate.
	StopPointExits uint64
	// ScalarFallbacks counts filter calls that ran the scalar path while
	// blocks were enabled (inputs below the block threshold).
	ScalarFallbacks uint64
}

var kcSweeps, kcStops, kcFallbacks atomic.Uint64

// KernelStats returns the cumulative counters since process start.
func KernelStats() KernelCounters {
	return KernelCounters{
		BlockSweeps:     kcSweeps.Load(),
		StopPointExits:  kcStops.Load(),
		ScalarFallbacks: kcFallbacks.Load(),
	}
}

// KernelTally batches kernel counter updates locally so hot loops pay one
// atomic add per counter per filter call rather than per block sweep.
type KernelTally struct {
	Sweeps    uint64
	StopExits uint64
	Fallbacks uint64
}

// Flush adds the tally into the global counters and zeroes it.
func (t *KernelTally) Flush() {
	if t.Sweeps != 0 {
		kcSweeps.Add(t.Sweeps)
		t.Sweeps = 0
	}
	if t.StopExits != 0 {
		kcStops.Add(t.StopExits)
		t.StopExits = 0
	}
	if t.Fallbacks != 0 {
		kcFallbacks.Add(t.Fallbacks)
		t.Fallbacks = 0
	}
}
