package dom

import (
	"fmt"
	"math/rand"
	"testing"

	"skycube/internal/data"
	"skycube/internal/mask"
)

// benchBlock builds one full 256-lane block of uniform points in [0,1)^d
// plus a median-ish query, the acceptance-criteria shape (d ∈ {4,8}, n=256).
func benchBlock(d int) (*data.Block, []float32, [][]float32) {
	rng := rand.New(rand.NewSource(int64(d)))
	rows := make([][]float32, 256)
	for i := range rows {
		p := make([]float32, d)
		for j := range p {
			p[j] = rng.Float32()
		}
		rows[i] = p
	}
	bs := data.NewBlockSet(d, 256)
	dims := make([]int, d)
	for j := range dims {
		dims[j] = j
	}
	for i, p := range rows {
		bs.Append(p, int32(i), data.SumOver(p, dims))
	}
	pq := make([]float32, d)
	for j := range pq {
		pq[j] = 0.5
	}
	return bs.Blocks[0], pq, rows
}

// BenchmarkDominatedBitmap is the dense block sweep: one query marked
// against all 256 lanes in four verdict words.
func BenchmarkDominatedBitmap(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			blk, pq, _ := benchBlock(d)
			out := make([]uint64, 4)
			var tally KernelTally
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DominatedBitmap(blk, pq, false, out, &tally)
			}
		})
	}
}

// BenchmarkDominatedBitmapScalar is the scalar-loop equivalent the block
// kernel is gated ≥2× against: the same 256 verdicts via per-point Compare.
func BenchmarkDominatedBitmapScalar(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			_, pq, rows := benchBlock(d)
			full := mask.Full(d)
			out := make([]uint64, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for w := range out {
					out[w] = 0
				}
				for lane, q := range rows {
					if RelDominates(Compare(pq, q), full) {
						out[lane>>6] |= 1 << uint(lane&63)
					}
				}
			}
		})
	}
}

// BenchmarkAnyDominatorIn measures the filter direction (does any lane
// dominate the query) with its word-level early exit.
func BenchmarkAnyDominatorIn(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			blk, pq, _ := benchBlock(d)
			var tally KernelTally
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AnyDominatorIn(blk, pq, false, &tally)
			}
		})
	}
}

// BenchmarkCompareBlock measures the MDMC refine shape: full Rel masks for
// a 64-lane leaf chunk against one point.
func BenchmarkCompareBlock(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			blk, pq, _ := benchBlock(d)
			out := make([]Rel, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CompareBlock(blk.Cols, 0, 64, pq, out)
			}
		})
	}
}

// BenchmarkCompareBlockScalar is CompareBlock's per-point reference.
func BenchmarkCompareBlockScalar(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			_, pq, rows := benchBlock(d)
			out := make([]Rel, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lane := 0; lane < 64; lane++ {
					out[lane] = Compare(rows[lane], pq)
				}
			}
		})
	}
}
