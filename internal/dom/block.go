// Block dominance kernels: branch-free 64-lane bitmask sweeps over the SoA
// layout of internal/data, plus sorted stop-point termination.
//
// The scalar kernels in dom.go compare one pair of points with a per-point
// early exit; profitable when most comparisons fail fast, but every test
// pays a call, a strided row load and unpredictable branches. The block
// kernels amortise that: one query point against a whole block is d
// sequential column sweeps accumulating lt/le verdict words, exactly the
// compare-to-mask shape VSkyline vectorises and the GPU specialisation
// coalesces. Combined with ascending δ-sum block order (Ciaccia &
// Martinenghi's sort-based filtering), a scan also gains a stop point: once
// the next block's minimum sum exceeds the query's, no later lane can
// dominate it and the sweep terminates.
//
// The lane loops run a fixed 64 iterations on full words (the constant trip
// count is what lets the compiler unroll and drop bounds checks — measured
// faster than both a SETcc accumulation and a float-bits sign extraction),
// with per-point early exit only at word granularity: a column sweep stops
// when the whole word's verdict is already zero.
//
// Every kernel is bit-for-bit equivalent to the scalar loop it replaces
// (FuzzBlockKernelEquivalence enforces this); dominance semantics are those
// of Definition 1 with the projection already applied, i.e. the block's K
// columns ARE the subspace δ.
package dom

import (
	"skycube/internal/data"
	"skycube/internal/mask"
)

// blockDomWord computes the 64-lane dominance verdict for word w of block b
// against the projected query pq (len ≥ number of columns): bit i is set iff
// the lane's point dominates pq over all K columns — strictly (every column
// less) when strict, else Definition 1 (every column ≤, at least one <).
// Dead lanes report 0.
func blockDomWord(b *data.Block, w int, pq []float32, strict bool) uint64 {
	base := w << 6
	cnt := b.N - base
	if cnt <= 0 {
		return 0
	}
	if cnt > 64 {
		cnt = 64
	}
	alive := b.Alive[w]
	if alive == 0 {
		return 0
	}
	if strict {
		ltAll := alive
		for j, col := range b.Cols {
			pv := pq[j]
			var lt uint64
			if cnt == 64 {
				sub := col[base : base+64 : base+64]
				for i := 0; i < 64; i++ {
					if sub[i] < pv {
						lt |= 1 << uint(i)
					}
				}
			} else {
				for i, v := range col[base : base+cnt] {
					if v < pv {
						lt |= 1 << uint(i)
					}
				}
			}
			ltAll &= lt
			if ltAll == 0 {
				return 0
			}
		}
		return ltAll
	}
	leqAll := alive
	var ltAny uint64
	for j, col := range b.Cols {
		pv := pq[j]
		var lt, le uint64
		if cnt == 64 {
			sub := col[base : base+64 : base+64]
			for i := 0; i < 64; i++ {
				v := sub[i]
				if v < pv {
					lt |= 1 << uint(i)
				}
				if v <= pv {
					le |= 1 << uint(i)
				}
			}
		} else {
			for i, v := range col[base : base+cnt] {
				if v < pv {
					lt |= 1 << uint(i)
				}
				if v <= pv {
					le |= 1 << uint(i)
				}
			}
		}
		leqAll &= le
		if leqAll == 0 {
			return 0
		}
		ltAny |= lt
	}
	return leqAll & ltAny
}

// AnyDominatorIn reports whether any live lane of b dominates the projected
// query pq, sweeping word by word.
func AnyDominatorIn(b *data.Block, pq []float32, strict bool, t *KernelTally) bool {
	words := (b.N + 63) >> 6
	for w := 0; w < words; w++ {
		t.Sweeps++
		if blockDomWord(b, w, pq, strict) != 0 {
			return true
		}
	}
	return false
}

// BlocksAnyDominator scans a block set for a dominator of pq whose δ-sum is
// psum. With useStop set the set must be in ascending-sum append order
// (data.SortedBlocksOf, or caller-maintained): the scan stops at the first
// block whose MinSum exceeds psum, because float32 sum monotonicity
// guarantees every dominator of pq sums to at most psum.
func BlocksAnyDominator(bs *data.BlockSet, pq []float32, psum float32, strict bool, useStop bool, t *KernelTally) bool {
	for _, b := range bs.Blocks {
		if useStop && b.MinSum() > psum {
			t.StopExits++
			return false
		}
		if AnyDominatorIn(b, pq, strict, t) {
			return true
		}
	}
	return false
}

// DominatedBitmap writes into out (len ≥ ⌈b.N/64⌉ words) the lanes of b that
// the projected query pq dominates — the reverse direction of AnyDominatorIn,
// used to cross one dominance witness off a whole block of members at once.
func DominatedBitmap(b *data.Block, pq []float32, strict bool, out []uint64, t *KernelTally) {
	words := (b.N + 63) >> 6
	for w := 0; w < words; w++ {
		t.Sweeps++
		base := w << 6
		cnt := b.N - base
		if cnt > 64 {
			cnt = 64
		}
		alive := b.Alive[w]
		if alive == 0 {
			out[w] = 0
			continue
		}
		if strict {
			gtAll := alive
			for j, col := range b.Cols {
				pv := pq[j]
				var gt uint64
				if cnt == 64 {
					sub := col[base : base+64 : base+64]
					for i := 0; i < 64; i++ {
						if pv < sub[i] {
							gt |= 1 << uint(i)
						}
					}
				} else {
					for i, v := range col[base : base+cnt] {
						if pv < v {
							gt |= 1 << uint(i)
						}
					}
				}
				gtAll &= gt
				if gtAll == 0 {
					break
				}
			}
			out[w] = gtAll
			continue
		}
		geqAll := alive
		var gtAny uint64
		for j, col := range b.Cols {
			pv := pq[j]
			var gt, ge uint64
			if cnt == 64 {
				sub := col[base : base+64 : base+64]
				for i := 0; i < 64; i++ {
					v := sub[i]
					if pv < v {
						gt |= 1 << uint(i)
					}
					if pv <= v {
						ge |= 1 << uint(i)
					}
				}
			} else {
				for i, v := range col[base : base+cnt] {
					if pv < v {
						gt |= 1 << uint(i)
					}
					if pv <= v {
						ge |= 1 << uint(i)
					}
				}
			}
			geqAll &= ge
			if geqAll == 0 {
				break
			}
			gtAny |= gt
		}
		out[w] = geqAll & gtAny
	}
}

// CompareBlock computes Compare(point q, pp) for every q in the half-open
// leaf-sorted range [lo, hi) of the column-major view cols (cols[j][q] is
// point q's coordinate on dimension j), writing the Rel masks into
// out[:hi-lo]. It is the SoA form of the MDMC refine DT: dimensions-outer,
// so each column is one sequential sweep, and the two independent compares
// per lane mirror Compare's branch-free accumulation exactly.
func CompareBlock(cols [][]float32, lo, hi int, pp []float32, out []Rel) {
	n := hi - lo
	for i := 0; i < n; i++ {
		out[i] = Rel{}
	}
	for j, col := range cols {
		pv := pp[j]
		bit := uint(j)
		for i, v := range col[lo:hi] {
			var l, e mask.Mask
			if v < pv {
				l = 1
			}
			if v == pv {
				e = 1
			}
			out[i].Lt |= l << bit
			out[i].Eq |= e << bit
		}
	}
}
