// Serving benchmarks for the materialized read path. BenchmarkServeHot is
// the headline number: a warm epoch-keyed cache turns a /skyline request
// into a map probe and a byte write — zero allocations per request —
// versus the parse + extract + encode of the uncached path
// (BenchmarkServeCold). See BENCH_serve.json for the recorded baseline and
// the README "Serving performance" section for the recipe.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"skycube"
	"skycube/internal/obs"
)

// nopResponseWriter discards the response without allocating, so the
// benchmark measures the serving path, not the recorder.
type nopResponseWriter struct {
	h http.Header
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

func (w *nopResponseWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
}

// benchServer builds a serving stack over a synthetic dataset. Metrics and
// Logger stay nil so the middleware is a passthrough (no statusWriter
// wrapper allocation) — the production fast path for a bare node.
func benchServer(b *testing.B, disableCache bool) *Server {
	b.Helper()
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 4096, 5, 97)
	cube, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	return NewWith(cube, ds, Options{DisableCache: disableCache})
}

// benchRequest builds one reusable GET request outside the timed loop.
func benchRequest(b *testing.B, path string) *http.Request {
	b.Helper()
	u, err := url.Parse(path)
	if err != nil {
		b.Fatal(err)
	}
	return &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
}

// BenchmarkServeHot measures the cache-hit path: every iteration after the
// first is a map probe plus a pre-encoded byte write. The allocs/op report
// is part of the acceptance bar (0 on the hit path).
func BenchmarkServeHot(b *testing.B) {
	s := benchServer(b, false)
	req := benchRequest(b, "/skyline?dims=0,2,4")
	w := &nopResponseWriter{h: http.Header{}}
	s.ServeHTTP(w, req) // warm the key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeHotTraced is BenchmarkServeHot with tracing compiled in
// but sampled out: a request ring is wired, SampleEvery is 0, and the
// request carries no traceparent header. The tracing decision — one header
// probe plus a nil-sampler test — must keep the hit path at 0 allocs/op
// (the acceptance bar, enforced by CI's bench-smoke job).
func BenchmarkServeHotTraced(b *testing.B) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 4096, 5, 97)
	cube, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	s := NewWith(cube, ds, Options{Requests: obs.NewRequestRing(64)})
	req := benchRequest(b, "/skyline?dims=0,2,4")
	w := &nopResponseWriter{h: http.Header{}}
	s.ServeHTTP(w, req) // warm the key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeCold is the same request with caching disabled: parse,
// cube lookup, JSON encode, every time. The ratio to BenchmarkServeHot is
// the read path's speedup.
func BenchmarkServeCold(b *testing.B) {
	s := benchServer(b, true)
	req := benchRequest(b, "/skyline?dims=0,2,4")
	w := &nopResponseWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeHotNotModified measures the revalidation path: a warm key
// plus If-None-Match answering 304 without touching the body.
func BenchmarkServeHotNotModified(b *testing.B) {
	s := benchServer(b, false)
	req := benchRequest(b, "/skyline?dims=0,2,4")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	req.Header.Set("If-None-Match", rec.Header().Get("Etag"))
	w := &nopResponseWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeMixed is the maintenance-mode steady state: a writer
// flushes every 64 reads (rolling the epoch and thereby the cache keys),
// readers rotate across 8 subspace variants. This prices the epoch-advance
// invalidation model under churn rather than a pure-hit fantasy.
func BenchmarkServeMixed(b *testing.B) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 2048, 5, 101)
	up, err := skycube.NewUpdater(ds, skycube.Options{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer up.Close()
	s := NewWith(nil, nil, Options{Updater: up})

	variants := make([]*http.Request, 8)
	for i := range variants {
		variants[i] = benchRequest(b, fmt.Sprintf("/skyline?dims=%d,%d", i%5, (i+1)%5))
	}
	insBody := `{"points": [[500, 500, 500, 500, 500]]}`
	w := &nopResponseWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			ins := httptest.NewRequest(http.MethodPost, "/insert", strings.NewReader(insBody))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, ins)
			fl := httptest.NewRequest(http.MethodPost, "/flush", nil)
			s.ServeHTTP(httptest.NewRecorder(), fl)
		}
		w.reset()
		s.ServeHTTP(w, variants[i%len(variants)])
	}
}
