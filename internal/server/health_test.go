package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestHealthzStatic(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Ready || h.Mode != "static" {
		t.Fatalf("healthz = %+v", h)
	}
	if rec := post(t, s, "/healthz", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", rec.Code)
	}
}

func TestHealthzMaintenanceEpochAndReadiness(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Mode != "maintenance" || h.Epoch != up.Current().Epoch() {
		t.Fatalf("healthz = %+v, want maintenance mode at epoch %d", h, up.Current().Epoch())
	}

	s.SetReady(false)
	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while not ready: status %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "unavailable" {
		t.Fatalf("healthz while not ready = %+v", h)
	}
	s.SetReady(true)
	if rec = get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after SetReady(true): status %d, want 200", rec.Code)
	}
}

func TestInsertRejectsNonFinite(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})
	before := up.Stats()
	// JSON itself cannot spell NaN/Inf, so over HTTP every non-finite
	// coordinate is rejected at the decode or float32-range stage — but it
	// must be a 400, and it must not leave partial rows buffered.
	for _, body := range []string{
		`{"points": [[0.1, NaN]]}`,                           // NaN literal: invalid JSON
		`{"points": [[0.1, Infinity]]}`,                      // Infinity literal: invalid JSON
		`{"points": [[1e400, 0.1]]}`,                         // overflows float64
		`{"points": [[0.1, 0.2], [0.3, -1e999]]}`,            // -Inf mid-batch
		`{"points": [[0.1, 0.2], [0.3, 3e38], [4e38, 0.1]]}`, // float32 overflow after valid rows
	} {
		rec := post(t, s, "/insert", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST /insert %s: status %d, want 400: %s", body, rec.Code, rec.Body.String())
		}
	}
	if after := up.Stats(); after.PendingInserts != before.PendingInserts {
		t.Fatalf("rejected inserts still buffered: %+v", after)
	}
}

// TestInsertBatchIdempotent drives the batch-tagged insert path: a
// duplicate batch id replays the original response without applying the
// points again, so a coordinator retry after a timed-out (but applied)
// write cannot double-insert.
func TestInsertBatchIdempotent(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})
	body := `{"points": [[10.5, 2, 30]], "batch": "b1"}`
	rec1 := post(t, s, "/insert", body)
	if rec1.Code != http.StatusOK {
		t.Fatalf("first batch insert: status %d: %s", rec1.Code, rec1.Body.String())
	}
	ins1, _ := up.Pending()
	rec2 := post(t, s, "/insert", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("replayed batch insert: status %d: %s", rec2.Code, rec2.Body.String())
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatalf("replay differs from original:\n%s\n%s", rec1.Body.String(), rec2.Body.String())
	}
	if ins2, _ := up.Pending(); ins2 != ins1 {
		t.Fatalf("duplicate batch re-applied: pending %d -> %d", ins1, ins2)
	}
	// A fresh batch id applies normally.
	rec3 := post(t, s, "/insert", `{"points": [[10.5, 2, 30]], "batch": "b2"}`)
	if rec3.Code != http.StatusOK {
		t.Fatalf("fresh batch insert: status %d", rec3.Code)
	}
	if ins3, _ := up.Pending(); ins3 != ins1+1 {
		t.Fatalf("fresh batch not applied: pending %d, want %d", ins3, ins1+1)
	}
	// A failed batch replays its failure too: the valid prefix buffered by
	// the first attempt must not be buffered a second time on retry. (A
	// dims mismatch fails at Updater.Insert, after the prefix is buffered —
	// unlike non-finite values, which die at JSON decode.)
	bad := `{"points": [[10.5, 2, 30], [1, 2]], "batch": "b3"}`
	before, _ := up.Pending()
	rec4 := post(t, s, "/insert", bad)
	if rec4.Code != http.StatusBadRequest {
		t.Fatalf("bad batch insert: status %d, want 400", rec4.Code)
	}
	mid, _ := up.Pending()
	if mid != before+1 {
		t.Fatalf("valid prefix not buffered: pending %d, want %d", mid, before+1)
	}
	rec5 := post(t, s, "/insert", bad)
	if rec5.Code != http.StatusBadRequest || rec5.Body.String() != rec4.Body.String() {
		t.Fatalf("failed batch replay: status %d, body %q, want 400 %q",
			rec5.Code, rec5.Body.String(), rec4.Body.String())
	}
	if after, _ := up.Pending(); after != mid {
		t.Fatalf("retried failed batch re-buffered its prefix: pending %d -> %d", mid, after)
	}
}
