package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestHealthzStatic(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Ready || h.Mode != "static" {
		t.Fatalf("healthz = %+v", h)
	}
	if rec := post(t, s, "/healthz", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", rec.Code)
	}
}

func TestHealthzMaintenanceEpochAndReadiness(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Mode != "maintenance" || h.Epoch != up.Current().Epoch() {
		t.Fatalf("healthz = %+v, want maintenance mode at epoch %d", h, up.Current().Epoch())
	}

	s.SetReady(false)
	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while not ready: status %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "unavailable" {
		t.Fatalf("healthz while not ready = %+v", h)
	}
	s.SetReady(true)
	if rec = get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after SetReady(true): status %d, want 200", rec.Code)
	}
}

func TestInsertRejectsNonFinite(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})
	before := up.Stats()
	// JSON itself cannot spell NaN/Inf, so over HTTP every non-finite
	// coordinate is rejected at the decode or float32-range stage — but it
	// must be a 400, and it must not leave partial rows buffered.
	for _, body := range []string{
		`{"points": [[0.1, NaN]]}`,                           // NaN literal: invalid JSON
		`{"points": [[0.1, Infinity]]}`,                      // Infinity literal: invalid JSON
		`{"points": [[1e400, 0.1]]}`,                         // overflows float64
		`{"points": [[0.1, 0.2], [0.3, -1e999]]}`,            // -Inf mid-batch
		`{"points": [[0.1, 0.2], [0.3, 3e38], [4e38, 0.1]]}`, // float32 overflow after valid rows
	} {
		rec := post(t, s, "/insert", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST /insert %s: status %d, want 400: %s", body, rec.Code, rec.Body.String())
		}
	}
	if after := up.Stats(); after.PendingInserts != before.PendingInserts {
		t.Fatalf("rejected inserts still buffered: %+v", after)
	}
}
