// Package server exposes a materialised skycube over HTTP, turning the
// library into the small decision-support service the paper's introduction
// motivates: the expensive materialisation happens once at startup, after
// which every subspace skyline — any combination of criteria a user cares
// about — is a constant-time lookup.
//
// Endpoints (all JSON):
//
//	GET /info                     dataset and skycube summary
//	GET /skyline?dims=0,2,5       skyline over the given dimensions
//	GET /membership?id=17         subspaces in which point 17 is a member
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"skycube"
)

// Server wraps a built skycube and its dataset.
type Server struct {
	cube skycube.Skycube
	ds   *skycube.Dataset
	mux  *http.ServeMux
}

// New builds a handler for a materialised skycube.
func New(cube skycube.Skycube, ds *skycube.Dataset) *Server {
	s := &Server{cube: cube, ds: ds, mux: http.NewServeMux()}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/skyline", s.handleSkyline)
	s.mux.HandleFunc("/membership", s.handleMembership)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// infoResponse is the /info payload.
type infoResponse struct {
	Points    int `json:"points"`
	Dims      int `json:"dims"`
	Subspaces int `json:"subspaces"`
	MaxLevel  int `json:"max_level"`
	StoredIDs int `json:"stored_ids"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, infoResponse{
		Points:    s.ds.Len(),
		Dims:      s.ds.Dims(),
		Subspaces: len(skycube.AllSubspaces(s.ds.Dims())),
		MaxLevel:  s.cube.MaxLevel(),
		StoredIDs: s.cube.IDCount(),
	})
}

// skylineResponse is the /skyline payload.
type skylineResponse struct {
	Dims     []int       `json:"dims"`
	Subspace uint32      `json:"subspace"`
	Count    int         `json:"count"`
	IDs      []int32     `json:"ids"`
	Points   [][]float32 `json:"points,omitempty"`
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	dimSpec := r.URL.Query().Get("dims")
	if dimSpec == "" {
		http.Error(w, "missing dims parameter (e.g. dims=0,2,5)", http.StatusBadRequest)
		return
	}
	var dims []int
	var delta skycube.Subspace
	for _, part := range strings.Split(dimSpec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d >= s.ds.Dims() {
			http.Error(w, fmt.Sprintf("bad dimension %q (need 0..%d)", part, s.ds.Dims()-1),
				http.StatusBadRequest)
			return
		}
		dims = append(dims, d)
		delta |= skycube.SubspaceOf(d)
	}
	if skycube.SubspaceSize(delta) > s.cube.MaxLevel() {
		http.Error(w, fmt.Sprintf("subspace has %d dimensions but only levels ≤ %d are materialised",
			skycube.SubspaceSize(delta), s.cube.MaxLevel()), http.StatusUnprocessableEntity)
		return
	}
	ids := s.cube.Skyline(delta)
	resp := skylineResponse{Dims: dims, Subspace: delta, Count: len(ids), IDs: ids}
	if r.URL.Query().Get("points") == "true" {
		resp.Points = make([][]float32, len(ids))
		for i, id := range ids {
			resp.Points[i] = s.ds.Point(int(id))
		}
	}
	writeJSON(w, resp)
}

// membershipResponse is the /membership payload.
type membershipResponse struct {
	ID        int32    `json:"id"`
	Subspaces []uint32 `json:"subspaces"`
	DimLists  [][]int  `json:"dim_lists"`
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	idSpec := r.URL.Query().Get("id")
	id, err := strconv.Atoi(idSpec)
	if err != nil || id < 0 || id >= s.ds.Len() {
		http.Error(w, fmt.Sprintf("bad id %q (need 0..%d)", idSpec, s.ds.Len()-1),
			http.StatusBadRequest)
		return
	}
	subspaces := s.cube.Membership(int32(id))
	resp := membershipResponse{ID: int32(id), Subspaces: subspaces, DimLists: make([][]int, len(subspaces))}
	for i, delta := range subspaces {
		resp.DimLists[i] = skycube.SubspaceDims(delta)
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
