// Package server exposes a materialised skycube over HTTP, turning the
// library into the small decision-support service the paper's introduction
// motivates: the expensive materialisation happens once at startup, after
// which every subspace skyline — any combination of criteria a user cares
// about — is a constant-time lookup.
//
// Endpoints (JSON unless noted):
//
//	GET /info                     dataset and skycube summary
//	GET /skyline?dims=0,2,5       skyline over the given dimensions
//	GET /membership?id=17         subspaces in which point 17 is a member
//	GET /buildinfo                how the cube was built (algorithm, timings, shares)
//	GET /metrics                  Prometheus text exposition of the registry
//	GET /trace                    Chrome trace_event JSON of the build trace
//
// /metrics and /trace only exist when the Server is constructed with
// NewWith and the corresponding Options field is set. Every request flows
// through a middleware that records per-endpoint latency histograms and
// request counters into the same registry, and optionally logs.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"skycube"
	"skycube/internal/obs"
)

// BuildInfo describes how the served skycube was constructed; it is the
// /buildinfo payload.
type BuildInfo struct {
	Algorithm       string                `json:"algorithm"`
	Points          int                   `json:"points"`
	Dims            int                   `json:"dims"`
	MaxLevel        int                   `json:"max_level"`
	ElapsedSeconds  float64               `json:"elapsed_seconds"`
	Shares          []skycube.DeviceShare `json:"shares,omitempty"`
	GPUModelSeconds []float64             `json:"gpu_model_seconds,omitempty"`
}

// Options configure the optional observability surface of a Server.
type Options struct {
	// BuildInfo, if non-nil, enables GET /buildinfo.
	BuildInfo *BuildInfo
	// Metrics, if non-nil, enables GET /metrics and receives the request
	// middleware's counters and latency histograms. Sharing the registry
	// the build wrote into puts build and serving metrics on one page.
	Metrics *obs.Registry
	// Trace, if non-nil, enables GET /trace, serving the build trace as
	// Chrome trace_event JSON.
	Trace *obs.Trace
	// Logger, if non-nil, logs one line per request (method, path, status,
	// duration).
	Logger *log.Logger
}

// Server wraps a built skycube and its dataset.
type Server struct {
	cube skycube.Skycube
	ds   *skycube.Dataset
	mux  *http.ServeMux
	opt  Options
}

// New builds a handler for a materialised skycube with no observability
// extras — the original three endpoints only.
func New(cube skycube.Skycube, ds *skycube.Dataset) *Server {
	return NewWith(cube, ds, Options{})
}

// NewWith builds a handler with the requested observability surface.
func NewWith(cube skycube.Skycube, ds *skycube.Dataset, opt Options) *Server {
	s := &Server{cube: cube, ds: ds, mux: http.NewServeMux(), opt: opt}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/skyline", s.handleSkyline)
	s.mux.HandleFunc("/membership", s.handleMembership)
	if opt.BuildInfo != nil {
		s.mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	}
	if opt.Metrics != nil {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if opt.Trace != nil {
		s.mux.HandleFunc("/trace", s.handleTrace)
	}
	return s
}

// Handle mounts an extra handler on the server's mux (e.g. pprof).
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// statusWriter captures the response code for the request middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: the middleware around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opt.Metrics == nil && s.opt.Logger == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)
	path := r.URL.Path
	if s.opt.Metrics != nil {
		s.opt.Metrics.CounterM("http_requests_total", "HTTP requests served.",
			"path", path, "code", strconv.Itoa(sw.status)).Inc()
		s.opt.Metrics.HistogramM("http_request_duration_seconds",
			"HTTP request latency.", nil, "path", path).Observe(dur.Seconds())
	}
	if s.opt.Logger != nil {
		s.opt.Logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sw.status, dur)
	}
}

// infoResponse is the /info payload.
type infoResponse struct {
	Points    int `json:"points"`
	Dims      int `json:"dims"`
	Subspaces int `json:"subspaces"`
	MaxLevel  int `json:"max_level"`
	StoredIDs int `json:"stored_ids"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, infoResponse{
		Points:    s.ds.Len(),
		Dims:      s.ds.Dims(),
		Subspaces: len(skycube.AllSubspaces(s.ds.Dims())),
		MaxLevel:  s.cube.MaxLevel(),
		StoredIDs: s.cube.IDCount(),
	})
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.opt.BuildInfo)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opt.Metrics.WritePrometheus(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.opt.Trace.WriteChrome(w)
}

// skylineResponse is the /skyline payload.
type skylineResponse struct {
	Dims     []int       `json:"dims"`
	Subspace uint32      `json:"subspace"`
	Count    int         `json:"count"`
	IDs      []int32     `json:"ids"`
	Points   [][]float32 `json:"points,omitempty"`
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	dimSpec := r.URL.Query().Get("dims")
	if dimSpec == "" {
		http.Error(w, "missing dims parameter (e.g. dims=0,2,5)", http.StatusBadRequest)
		return
	}
	var dims []int
	var delta skycube.Subspace
	for _, part := range strings.Split(dimSpec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d >= s.ds.Dims() {
			http.Error(w, fmt.Sprintf("bad dimension %q (need 0..%d)", part, s.ds.Dims()-1),
				http.StatusBadRequest)
			return
		}
		if delta&skycube.SubspaceOf(d) != 0 {
			http.Error(w, fmt.Sprintf("duplicate dimension %d in dims=%s", d, dimSpec),
				http.StatusBadRequest)
			return
		}
		dims = append(dims, d)
		delta |= skycube.SubspaceOf(d)
	}
	if skycube.SubspaceSize(delta) > s.cube.MaxLevel() {
		http.Error(w, fmt.Sprintf("subspace has %d dimensions but only levels ≤ %d are materialised",
			skycube.SubspaceSize(delta), s.cube.MaxLevel()), http.StatusUnprocessableEntity)
		return
	}
	ids := s.cube.Skyline(delta)
	resp := skylineResponse{Dims: dims, Subspace: delta, Count: len(ids), IDs: ids}
	if r.URL.Query().Get("points") == "true" {
		resp.Points = make([][]float32, len(ids))
		for i, id := range ids {
			resp.Points[i] = s.ds.Point(int(id))
		}
	}
	writeJSON(w, resp)
}

// membershipResponse is the /membership payload.
type membershipResponse struct {
	ID        int32    `json:"id"`
	Subspaces []uint32 `json:"subspaces"`
	DimLists  [][]int  `json:"dim_lists"`
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	idSpec := r.URL.Query().Get("id")
	id, err := strconv.Atoi(idSpec)
	if err != nil || id < 0 || id >= s.ds.Len() {
		http.Error(w, fmt.Sprintf("bad id %q (need 0..%d)", idSpec, s.ds.Len()-1),
			http.StatusBadRequest)
		return
	}
	subspaces := s.cube.Membership(int32(id))
	resp := membershipResponse{ID: int32(id), Subspaces: subspaces, DimLists: make([][]int, len(subspaces))}
	for i, delta := range subspaces {
		resp.DimLists[i] = skycube.SubspaceDims(delta)
	}
	writeJSON(w, resp)
}

// writeJSON encodes to a buffer first so an encoding failure can still
// produce a clean 500: encoding straight to w would have committed a 200
// and a partial body before the error surfaced.
func writeJSON(w http.ResponseWriter, v interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}
