// Package server exposes a materialised skycube over HTTP, turning the
// library into the small decision-support service the paper's introduction
// motivates: the expensive materialisation happens once at startup, after
// which every subspace skyline — any combination of criteria a user cares
// about — is a constant-time lookup.
//
// Endpoints (JSON unless noted):
//
//	GET /info                     dataset and skycube summary
//	GET /skyline?dims=0,2,5       skyline over the given dimensions
//	GET /membership?id=17         subspaces in which point 17 is a member
//	GET /buildinfo                how the cube was built (algorithm, timings, shares)
//	GET /metrics                  Prometheus text exposition of the registry
//	GET /trace                    Chrome trace_event JSON of the build trace
//	GET /healthz                  liveness + readiness probe (503 while unready)
//
// /metrics and /trace only exist when the Server is constructed with
// NewWith and the corresponding Options field is set. Every request flows
// through a middleware that records per-endpoint latency histograms and
// request counters into the same registry, and optionally logs.
//
// When Options.Updater is set the server runs in maintenance mode: reads
// resolve against the updater's latest MVCC snapshot — or an older epoch
// pinned with ?epoch=N while it remains in the history ring — and five
// more endpoints are mounted:
//
//	POST /insert                  {"points": [[...], ...]} → buffered ids
//	POST /delete                  {"ids": [...]} → tombstones buffered
//	POST /flush                   apply the buffered batch, publish an epoch
//	POST /compact                 fold the overlay into a fresh base
//	GET  /updates                 maintenance counters (delta.Stats)
//
// Mutation bodies are capped with http.MaxBytesReader (Options.MaxBodyBytes).
//
// # Materialized read path
//
// /skyline and /membership responses are cached as fully-encoded JSON,
// keyed on (epoch, request variant) and bounded by an LRU
// (Options.CacheEntries). Invalidation is epoch-advance only — a flush or
// compaction publishes a new epoch and thereby new keys — never TTL, so a
// cached response is provably the bytes the uncached path would produce.
// Every read response carries a strong ETag derived from (epoch, subspace)
// and honours If-None-Match with 304 Not Modified. Concurrent cold reads
// of one key are collapsed to a single computation (singleflight), and a
// cache hit writes pre-encoded bytes without allocating.
// Options.DisableCache turns the memoization off (the ETag/304 contract
// remains); pinned ?epoch=N reads are keyed under their pinned epoch, so
// they bypass the current-epoch fast path but still memoize exactly.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skycube"
	"skycube/internal/obs"
	"skycube/internal/rcache"
	"skycube/internal/wal"
)

// BuildInfo describes how the served skycube was constructed; it is the
// /buildinfo payload.
type BuildInfo struct {
	Algorithm       string                `json:"algorithm"`
	Points          int                   `json:"points"`
	Dims            int                   `json:"dims"`
	MaxLevel        int                   `json:"max_level"`
	ElapsedSeconds  float64               `json:"elapsed_seconds"`
	Shares          []skycube.DeviceShare `json:"shares,omitempty"`
	GPUModelSeconds []float64             `json:"gpu_model_seconds,omitempty"`
}

// Options configure the optional observability surface of a Server.
type Options struct {
	// BuildInfo, if non-nil, enables GET /buildinfo.
	BuildInfo *BuildInfo
	// Metrics, if non-nil, enables GET /metrics and receives the request
	// middleware's counters and latency histograms. Sharing the registry
	// the build wrote into puts build and serving metrics on one page.
	Metrics *obs.Registry
	// Trace, if non-nil, enables GET /trace, serving the build trace as
	// Chrome trace_event JSON.
	Trace *obs.Trace
	// Logger, if non-nil, logs one line per request (method, path, status,
	// duration).
	Logger *log.Logger
	// Updater, if non-nil, switches the server into maintenance mode: the
	// cube and dataset passed to NewWith are ignored (and may be nil), reads
	// serve the updater's snapshots, and the mutation endpoints are mounted.
	Updater *skycube.Updater
	// MaxBodyBytes caps mutation request bodies via http.MaxBytesReader;
	// 0 means 1 MiB.
	MaxBodyBytes int64
	// CacheEntries bounds the materialized read-path cache (LRU);
	// 0 means rcache.DefaultEntries.
	CacheEntries int
	// DisableCache turns response memoization off entirely. Responses still
	// carry ETags and honour If-None-Match — only the server-side reuse of
	// encoded bytes is disabled.
	DisableCache bool
	// CacheLayer labels the cache's metrics ("" means "node"); the cluster
	// shard overrides it so node and shard caches are distinguishable on
	// one metrics page.
	CacheLayer string
	// Requests, if non-nil, enables distributed request tracing: requests
	// carrying a traceparent header (propagated by the cluster coordinator)
	// and one in SampleEvery locally-initiated requests are recorded — with
	// typed span events from the layers they touch — into this ring, and
	// GET /debug/requests serves the ring as JSON. Requests that are
	// sampled out pay one header lookup and keep the warm-cache path
	// allocation-free.
	Requests *obs.RequestRing
	// SampleEvery admits one in N locally-initiated requests into tracing
	// (0 = trace only requests that arrive with a traceparent header).
	SampleEvery int
	// SlowQuery, when > 0, logs one structured line (with the trace id when
	// sampled) for every request at least this slow.
	SlowQuery time.Duration
	// TraceKind labels this server's hop records ("" means "node"); the
	// cluster shard overrides it.
	TraceKind string
}

// DefaultMaxBodyBytes is the mutation body cap when Options.MaxBodyBytes
// is zero.
const DefaultMaxBodyBytes = 1 << 20

// Server wraps a built skycube and its dataset.
type Server struct {
	cube skycube.Skycube
	ds   *skycube.Dataset
	mux  *http.ServeMux
	opt  Options

	// cache is the materialized read path: fully-encoded responses keyed on
	// (epoch, request variant). nil when Options.DisableCache is set — a
	// nil rcache.Cache computes every request and stores nothing.
	cache *rcache.Cache
	cm    *obs.CacheMetrics
	// km folds the process-wide dominance-kernel counters into the registry
	// at /metrics scrape time; nil when metrics are off.
	km *obs.KernelMetrics

	// sampler admits locally-initiated requests into the request ring; nil
	// (never sampling) unless Options.SampleEvery is positive.
	sampler *obs.Sampler
	// traceKind labels this server's hop records ("node" by default).
	traceKind string

	// notReady (any bit set) makes /healthz report 503: bit 0 is the
	// caller-controlled SetReady latch, and busy counts in-flight
	// unready-making operations (compactions).
	notReady atomic.Bool
	busy     atomic.Int32

	// batchMu serialises batch-tagged (idempotent) inserts and guards the
	// replay cache: a duplicate arriving while the original is still
	// applying waits and then replays instead of racing it to a double
	// insert.
	batchMu    sync.Mutex
	batchResp  map[string]batchReply
	batchOrder []string

	// wal is the updater's durability subsystem (nil when in-memory):
	// mutation acks block on wal.Commit, and remembered batch replies are
	// journaled so idempotent-retry dedup survives restarts.
	wal *wal.Store
}

// batchReply is a remembered /insert outcome, replayed verbatim (status
// included) when the same batch id arrives again.
type batchReply struct {
	status int
	body   []byte
}

// maxRememberedBatches caps the replay cache; the oldest entries are
// evicted first. Retries arrive within seconds, so thousands of batches of
// slack is plenty.
const maxRememberedBatches = 4096

// New builds a handler for a materialised skycube with no observability
// extras — the original three endpoints only.
func New(cube skycube.Skycube, ds *skycube.Dataset) *Server {
	return NewWith(cube, ds, Options{})
}

// NewWith builds a handler with the requested observability surface.
func NewWith(cube skycube.Skycube, ds *skycube.Dataset, opt Options) *Server {
	s := &Server{cube: cube, ds: ds, mux: http.NewServeMux(), opt: opt}
	layer := opt.CacheLayer
	if layer == "" {
		layer = "node"
	}
	s.cm = obs.NewCacheMetrics(opt.Metrics, layer)
	s.km = obs.NewKernelMetrics(opt.Metrics)
	if !opt.DisableCache {
		s.cache = rcache.New(opt.CacheEntries, s.cm)
	}
	s.sampler = obs.NewSampler(opt.SampleEvery)
	s.traceKind = opt.TraceKind
	if s.traceKind == "" {
		s.traceKind = "node"
	}
	if opt.Requests != nil {
		s.mux.Handle("/debug/requests", opt.Requests.Handler())
	}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/skyline", s.handleSkyline)
	s.mux.HandleFunc("/membership", s.handleMembership)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if opt.BuildInfo != nil {
		s.mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	}
	if opt.Metrics != nil {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if opt.Trace != nil {
		s.mux.HandleFunc("/trace", s.handleTrace)
	}
	if opt.Updater != nil {
		s.mux.HandleFunc("/insert", s.handleInsert)
		s.mux.HandleFunc("/delete", s.handleDelete)
		s.mux.HandleFunc("/flush", s.handleFlush)
		s.mux.HandleFunc("/compact", s.handleCompact)
		s.mux.HandleFunc("/updates", s.handleUpdates)
		if st := opt.Updater.Store(); st != nil {
			// Durable updater: acks commit the WAL, and the batch replay
			// cache is seeded with the replies recovery carried over — a
			// client retrying a pre-crash batch replays instead of
			// double-applying.
			s.wal = st
			for id, rep := range st.RememberedBatches() {
				s.rememberBatch(id, batchReply{status: rep.Status, body: rep.Body})
			}
		}
	}
	return s
}

// durableCommit blocks until every journaled record is durable under the
// WAL's fsync policy; a no-op for in-memory updaters. Mutation handlers
// call it at the acknowledgement point, so one fsync group-commits a whole
// request.
func (s *Server) durableCommit() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Commit()
}

// Handle mounts an extra handler on the server's mux (e.g. pprof).
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// SetReady flips the caller-controlled half of the readiness probe — e.g. a
// shard node rebuilding its cube marks itself unready so load balancers and
// the cluster coordinator route around it. Servers start ready (NewWith is
// called with a finished cube).
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current readiness: the SetReady latch and no in-flight
// compaction.
func (s *Server) Ready() bool { return !s.notReady.Load() && s.busy.Load() == 0 }

// healthResponse is the /healthz payload. Liveness is implied by any
// response at all; Ready distinguishes "up" from "able to serve correctly".
type healthResponse struct {
	Status string `json:"status"` // "ok" or "unavailable"
	Ready  bool   `json:"ready"`
	Mode   string `json:"mode"`            // "static" or "maintenance"
	Epoch  uint64 `json:"epoch,omitempty"` // serving epoch in maintenance mode

	// Durability freshness (present only for WAL-backed updaters): where
	// this node's recovered state sits relative to its log. Anti-entropy
	// compares these against peers to decide whether a restarted replica
	// missed writes while it was down.
	WALSeq      uint64 `json:"wal_seq,omitempty"`      // active segment seq
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"` // newest checkpoint's seq
	Replayed    int    `json:"replayed,omitempty"`     // records replayed at boot
	Records     uint64 `json:"records,omitempty"`      // records journaled since boot
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	resp := healthResponse{Status: "ok", Ready: s.Ready(), Mode: "static"}
	if s.opt.Updater != nil {
		resp.Mode = "maintenance"
		resp.Epoch = s.opt.Updater.Current().Epoch()
	}
	if s.wal != nil {
		resp.WALSeq = s.wal.Seq()
		resp.SnapshotSeq = s.wal.SnapshotSeq()
		resp.Replayed = s.opt.Updater.Replayed()
		resp.Records = s.wal.Records()
	}
	if !resp.Ready {
		resp.Status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// statusWriter captures the response code and body byte count for the
// request middleware. It forwards the optional interfaces the bare wrapper
// would otherwise swallow: http.Flusher (so SSE/streaming handlers behind
// the middleware can push incremental writes) and io.ReaderFrom (so
// io.Copy-style responses keep the underlying writer's zero-copy path).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer's Flusher, if any, so streaming
// handlers are not silently buffered by the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards to the underlying writer's io.ReaderFrom (sendfile and
// friends), falling back to a plain copy that deliberately bypasses this
// wrapper's own ReadFrom.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(src)
		w.bytes += n
		return n, err
	}
	n, err := io.Copy(struct{ io.Writer }{w.ResponseWriter}, src)
	w.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler: the middleware around the mux. The
// bare configuration — no metrics, no logger, no slow-query threshold, and
// this request not sampled into the trace ring — is a straight passthrough,
// preserving the warm-cache 0-alloc serving path.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var rec *obs.ReqRecord
	if s.opt.Requests != nil {
		if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
			if trace, _, ok := obs.ParseTraceparent(tp); ok {
				rec = obs.NewRecord(s.traceKind, trace, r.Method, r.URL.Path, r.URL.RawQuery)
			}
		}
		if rec == nil && s.sampler.Sample() {
			rec = obs.NewRecord(s.traceKind, obs.NewTraceID(), r.Method, r.URL.Path, r.URL.RawQuery)
		}
	}
	if rec == nil && s.opt.Metrics == nil && s.opt.Logger == nil && s.opt.SlowQuery <= 0 {
		s.mux.ServeHTTP(w, r)
		return
	}
	if rec != nil {
		s.opt.Requests.Add(rec)
		r = r.WithContext(obs.WithRecord(r.Context(), rec))
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)
	rec.Finish(sw.status)
	path := r.URL.Path
	if s.opt.Metrics != nil {
		s.opt.Metrics.CounterM("http_requests_total", "HTTP requests served.",
			"path", path, "code", strconv.Itoa(sw.status)).Inc()
		s.opt.Metrics.HistogramM("http_request_duration_seconds",
			"HTTP request latency.", nil, "path", path).
			ObserveExemplar(dur.Seconds(), rec.TraceID())
		s.opt.Metrics.CounterM("http_response_bytes_total",
			"HTTP response body bytes written.", "path", path).Add(float64(sw.bytes))
	}
	if s.opt.SlowQuery > 0 && dur >= s.opt.SlowQuery {
		s.logSlow(r, sw.status, dur, rec.TraceID())
	}
	if s.opt.Logger != nil {
		s.opt.Logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), sw.status, dur)
	}
}

// logSlow emits the slow-query log line: one structured line per offending
// request, carrying the trace id when the request was sampled so the
// corresponding /debug/requests record (and /trace/query timeline) is one
// lookup away.
func (s *Server) logSlow(r *http.Request, status int, dur time.Duration, traceID string) {
	if traceID == "" {
		traceID = "-"
	}
	line := fmt.Sprintf("slow-query method=%s path=%s query=%q status=%d dur=%s threshold=%s trace=%s",
		r.Method, r.URL.Path, r.URL.RawQuery, status, dur, s.opt.SlowQuery, traceID)
	if s.opt.Logger != nil {
		s.opt.Logger.Print(line)
		return
	}
	log.Print(line)
}

// allow guards a handler's verb: on mismatch it answers 405 with the
// Allow header RFC 9110 §15.5.6 requires, so clients learn the right verb
// instead of guessing.
func allow(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	http.Error(w, fmt.Sprintf("method %s not allowed (use %s)", r.Method, method),
		http.StatusMethodNotAllowed)
	return false
}

// view is what one read request resolves against: the static cube the
// server was built with, or one MVCC snapshot pinned for the request's
// duration. Pinning is just holding the value — the writer is never
// blocked, and every answer within the request is from a single epoch.
type view struct {
	cube  skycube.Skycube
	snap  skycube.Snapshot // nil in static mode
	epoch uint64           // 0 in static mode
}

// points returns how many points the view serves (live points in
// maintenance mode).
func (v view) points(s *Server) int {
	if v.snap != nil {
		return v.snap.Live()
	}
	return s.ds.Len()
}

// idBound returns the exclusive upper bound on addressable point ids.
func (v view) idBound(s *Server) int {
	if v.snap != nil {
		return v.snap.Len()
	}
	return s.ds.Len()
}

// point returns the coordinates of id.
func (v view) point(s *Server, id int32) []float32 {
	if v.snap != nil {
		return v.snap.Point(id)
	}
	return s.ds.Point(int(id))
}

// resolveView picks the cube a read request is answered from, honouring
// ?epoch=N in maintenance mode. A false return means the response has
// already been written.
func (s *Server) resolveView(w http.ResponseWriter, r *http.Request) (view, bool) {
	espec := r.URL.Query().Get("epoch")
	if s.opt.Updater == nil {
		if espec != "" {
			http.Error(w, "epoch parameter requires a server in maintenance mode",
				http.StatusBadRequest)
			return view{}, false
		}
		return view{cube: s.cube}, true
	}
	var snap skycube.Snapshot
	if espec != "" {
		e, err := strconv.ParseUint(espec, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad epoch %q", espec), http.StatusBadRequest)
			return view{}, false
		}
		var ok bool
		if snap, ok = s.opt.Updater.At(e); !ok {
			http.Error(w, fmt.Sprintf("epoch %d is not addressable (evicted from the history ring or not yet published)", e),
				http.StatusGone)
			return view{}, false
		}
	} else {
		snap = s.opt.Updater.Current()
	}
	return view{cube: snap, snap: snap, epoch: snap.Epoch()}, true
}

// decodeBody decodes a JSON request body into v under the configured size
// cap. A false return means the response has already been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	limit := s.opt.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// infoResponse is the /info payload.
type infoResponse struct {
	Points    int    `json:"points"`
	Dims      int    `json:"dims"`
	Subspaces int    `json:"subspaces"`
	MaxLevel  int    `json:"max_level"`
	StoredIDs int    `json:"stored_ids"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	v, ok := s.resolveView(w, r)
	if !ok {
		return
	}
	writeJSON(w, infoResponse{
		Points:    v.points(s),
		Dims:      v.cube.Dims(),
		Subspaces: len(skycube.AllSubspaces(v.cube.Dims())),
		MaxLevel:  v.cube.MaxLevel(),
		StoredIDs: v.cube.IDCount(),
		Epoch:     v.epoch,
	})
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, s.opt.BuildInfo)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ks := skycube.KernelStats()
	s.km.Sync(ks.BlockSweeps, ks.StopPointExits, ks.ScalarFallback)
	// Exemplars use OpenMetrics syntax that classic text-format parsers
	// reject, so they are opt-in per scrape.
	if r.URL.Query().Get("exemplars") == "1" {
		_ = s.opt.Metrics.WritePrometheusExemplars(w)
		return
	}
	_ = s.opt.Metrics.WritePrometheus(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.opt.Trace.WriteChrome(w)
}

// skylineResponse is the /skyline payload.
type skylineResponse struct {
	Dims     []int       `json:"dims"`
	Subspace uint32      `json:"subspace"`
	Count    int         `json:"count"`
	IDs      []int32     `json:"ids"`
	Points   [][]float32 `json:"points,omitempty"`
	Epoch    uint64      `json:"epoch,omitempty"`
}

// currentEpoch returns the epoch an unpinned read would serve right now:
// the updater's latest published epoch, or 0 for an immutable static cube.
func (s *Server) currentEpoch() uint64 {
	if s.opt.Updater != nil {
		return s.opt.Updater.Current().Epoch()
	}
	return 0
}

// cacheable reports whether the request may take the current-epoch fast
// path: GET with no pinned epoch (pinned reads resolve their own key in
// the slow path, where the epoch parameter has been parsed).
func cacheable(r *http.Request) bool {
	return r.Method == http.MethodGet && !strings.Contains(r.URL.RawQuery, "epoch=")
}

// serveEntry writes a materialized response through rcache.Serve (strong
// ETag, If-None-Match → 304, pre-encoded bytes).
func serveEntry(w http.ResponseWriter, r *http.Request, e *rcache.Entry, cm *obs.CacheMetrics) {
	rcache.Serve(w, r, e, cm)
}

// traceCache records the cache disposition of a read on the request's trace
// record, if it carries one. Untraced requests pay a single context lookup.
func traceCache(r *http.Request, detail string) {
	if rec := obs.RecordFrom(r.Context()); rec != nil {
		rec.Event(obs.Event{Kind: obs.EvCache, Detail: detail, Start: rec.Since()})
	}
}

// encodeEntry marshals v and wraps it with the strong validator for
// (epoch, tag) — the fill function of every cached read endpoint.
func encodeEntry(epoch uint64, tag string, v interface{}) (*rcache.Entry, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return rcache.NewEntry(fmt.Sprintf(`"e%d-%s"`, epoch, tag), buf.Bytes()), nil
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if s.cache != nil && cacheable(r) {
		if e, ok := s.cache.Get(rcache.Key{Epoch: s.currentEpoch(), Variant: r.URL.RawQuery}); ok {
			traceCache(r, "hit")
			serveEntry(w, r, e, s.cm)
			return
		}
	}
	traceCache(r, "miss")
	v, ok := s.resolveView(w, r)
	if !ok {
		return
	}
	dimSpec := r.URL.Query().Get("dims")
	if dimSpec == "" {
		http.Error(w, "missing dims parameter (e.g. dims=0,2,5)", http.StatusBadRequest)
		return
	}
	var dims []int
	var delta skycube.Subspace
	for _, part := range strings.Split(dimSpec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d >= v.cube.Dims() {
			http.Error(w, fmt.Sprintf("bad dimension %q (need 0..%d)", part, v.cube.Dims()-1),
				http.StatusBadRequest)
			return
		}
		if delta&skycube.SubspaceOf(d) != 0 {
			http.Error(w, fmt.Sprintf("duplicate dimension %d in dims=%s", d, dimSpec),
				http.StatusBadRequest)
			return
		}
		dims = append(dims, d)
		delta |= skycube.SubspaceOf(d)
	}
	if skycube.SubspaceSize(delta) > v.cube.MaxLevel() {
		http.Error(w, fmt.Sprintf("subspace has %d dimensions but only levels ≤ %d are materialised",
			skycube.SubspaceSize(delta), v.cube.MaxLevel()), http.StatusUnprocessableEntity)
		return
	}
	withPoints := r.URL.Query().Get("points") == "true"
	// Fill under the view's epoch — the epoch of the body — so the entry,
	// its ETag, and its payload can never disagree. Concurrent cold readers
	// of the same key coalesce into one extraction and one encode.
	e, err := s.cache.Fill(rcache.Key{Epoch: v.epoch, Variant: r.URL.RawQuery},
		func() (*rcache.Entry, error) {
			ids := v.cube.Skyline(delta)
			resp := skylineResponse{Dims: dims, Subspace: delta, Count: len(ids), IDs: ids, Epoch: v.epoch}
			if withPoints {
				resp.Points = make([][]float32, len(ids))
				for i, id := range ids {
					resp.Points[i] = v.point(s, id)
				}
			}
			return encodeEntry(v.epoch, fmt.Sprintf("s%d", delta), resp)
		})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	serveEntry(w, r, e, s.cm)
}

// membershipResponse is the /membership payload.
type membershipResponse struct {
	ID        int32    `json:"id"`
	Subspaces []uint32 `json:"subspaces"`
	DimLists  [][]int  `json:"dim_lists"`
	Alive     *bool    `json:"alive,omitempty"`
	Epoch     uint64   `json:"epoch,omitempty"`
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	if s.cache != nil && cacheable(r) {
		if e, ok := s.cache.Get(rcache.Key{Epoch: s.currentEpoch(), Variant: r.URL.RawQuery}); ok {
			traceCache(r, "hit")
			serveEntry(w, r, e, s.cm)
			return
		}
	}
	traceCache(r, "miss")
	v, ok := s.resolveView(w, r)
	if !ok {
		return
	}
	idSpec := r.URL.Query().Get("id")
	id, err := strconv.Atoi(idSpec)
	if err != nil || id < 0 || id >= v.idBound(s) {
		http.Error(w, fmt.Sprintf("bad id %q (need 0..%d)", idSpec, v.idBound(s)-1),
			http.StatusBadRequest)
		return
	}
	e, err := s.cache.Fill(rcache.Key{Epoch: v.epoch, Variant: r.URL.RawQuery},
		func() (*rcache.Entry, error) {
			subspaces := v.cube.Membership(int32(id))
			resp := membershipResponse{ID: int32(id), Subspaces: subspaces, DimLists: make([][]int, len(subspaces)), Epoch: v.epoch}
			if v.snap != nil {
				alive := v.snap.Alive(int32(id))
				resp.Alive = &alive
			}
			for i, delta := range subspaces {
				resp.DimLists[i] = skycube.SubspaceDims(delta)
			}
			return encodeEntry(v.epoch, fmt.Sprintf("m%d", id), resp)
		})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	serveEntry(w, r, e, s.cm)
}

// insertRequest is the POST /insert body; insertResponse its payload. The
// returned ids are buffered — they become visible at the next /flush.
type insertRequest struct {
	Points [][]float32 `json:"points"`
	// Batch, when non-empty, makes the insert idempotent: a batch id seen
	// before replays the original response (status included) without
	// applying anything. The cluster coordinator tags every replica write
	// with one, so a retry after a timeout — where the first attempt may or
	// may not have been applied — cannot double-insert.
	Batch string `json:"batch,omitempty"`
}

type insertResponse struct {
	IDs            []int32 `json:"ids"`
	PendingInserts int     `json:"pending_inserts"`
	PendingDeletes int     `json:"pending_deletes"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var req insertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		http.Error(w, `missing points (e.g. {"points": [[1,2,3]]})`, http.StatusBadRequest)
		return
	}
	if req.Batch != "" {
		s.batchMu.Lock()
		defer s.batchMu.Unlock()
		if rep, ok := s.batchResp[req.Batch]; ok {
			s.replayBatch(w, rep)
			return
		}
	}
	ids := make([]int32, 0, len(req.Points))
	for i, p := range req.Points {
		id, err := s.opt.Updater.Insert(p)
		if err != nil {
			// Earlier points in the request stay buffered; report how far
			// the request got so the client can reconcile. Remembering the
			// failure keeps even a retried partial batch idempotent — the
			// buffered prefix is not re-applied.
			msg := fmt.Sprintf("point %d: %v (%d of %d points buffered)",
				i, err, len(ids), len(req.Points))
			if req.Batch != "" {
				s.rememberBatch(req.Batch, batchReply{status: http.StatusBadRequest, body: []byte(msg)})
			}
			http.Error(w, msg, http.StatusBadRequest)
			return
		}
		ids = append(ids, id)
	}
	ins, del := s.opt.Updater.Pending()
	resp := insertResponse{IDs: ids, PendingInserts: ins, PendingDeletes: del}
	if req.Batch != "" {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rep := batchReply{status: http.StatusOK, body: buf.Bytes()}
		if err := s.persistBatch(req.Batch, rep); err != nil {
			// The inserts are buffered but not durably acknowledged.
			// Remember the failure under the batch id so a retry replays
			// this 500 instead of double-applying the points.
			rep = batchReply{status: http.StatusInternalServerError,
				body: []byte("durability failure: " + err.Error())}
		}
		s.rememberBatch(req.Batch, rep)
		s.replayBatch(w, rep)
		return
	}
	if err := s.durableCommit(); err != nil {
		http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, resp)
}

// rememberBatch stores a batch outcome for replay, evicting the oldest
// entries beyond the cap. The caller holds batchMu (or is still inside
// single-threaded construction). In-memory only: journaling a new outcome
// is the insert handler's job, so recovery-seeded replies are not
// re-journaled.
func (s *Server) rememberBatch(id string, rep batchReply) {
	if s.batchResp == nil {
		s.batchResp = make(map[string]batchReply)
	}
	if _, known := s.batchResp[id]; !known {
		s.batchOrder = append(s.batchOrder, id)
	}
	s.batchResp[id] = rep
	for len(s.batchOrder) > maxRememberedBatches {
		delete(s.batchResp, s.batchOrder[0])
		s.batchOrder = s.batchOrder[1:]
	}
}

// persistBatch journals a fresh batch outcome and commits the WAL — the
// durability point of an acknowledged idempotent insert. No-op when
// in-memory.
func (s *Server) persistBatch(id string, rep batchReply) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.LogBatch(id, rep.status, rep.body); err != nil {
		return err
	}
	return s.wal.Commit()
}

// replayBatch writes a remembered batch outcome.
func (s *Server) replayBatch(w http.ResponseWriter, rep batchReply) {
	if rep.status != http.StatusOK {
		http.Error(w, string(rep.body), rep.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rep.body)
}

// deleteRequest is the POST /delete body; deleteResponse its payload.
type deleteRequest struct {
	IDs []int32 `json:"ids"`
}

type deleteResponse struct {
	Deleted        int `json:"deleted"`
	PendingInserts int `json:"pending_inserts"`
	PendingDeletes int `json:"pending_deletes"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var req deleteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		http.Error(w, `missing ids (e.g. {"ids": [17]})`, http.StatusBadRequest)
		return
	}
	for i, id := range req.IDs {
		if err := s.opt.Updater.Delete(id); err != nil {
			http.Error(w, fmt.Sprintf("id %d: %v (%d of %d deletes buffered)",
				id, err, i, len(req.IDs)), http.StatusBadRequest)
			return
		}
	}
	if err := s.durableCommit(); err != nil {
		http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	ins, del := s.opt.Updater.Pending()
	writeJSON(w, deleteResponse{Deleted: len(req.IDs), PendingInserts: ins, PendingDeletes: del})
}

// epochResponse is the /flush and /compact payload: the snapshot that now
// serves reads.
type epochResponse struct {
	Epoch   uint64 `json:"epoch"`
	Live    int    `json:"live"`
	Overlay int    `json:"overlay"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	snap := s.opt.Updater.Flush()
	// The epoch marker was committed before the snapshot was published;
	// this surfaces any durability failure that commit swallowed.
	if err := s.durableCommit(); err != nil {
		http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, epochResponse{Epoch: snap.Epoch(), Live: snap.Live(), Overlay: s.opt.Updater.Stats().Overlay})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	// The rebuild makes the node unready for the probe's purposes: readers
	// still work (MVCC), but latency and memory are degraded, so probes
	// should steer traffic elsewhere until it completes.
	s.busy.Add(1)
	defer s.busy.Add(-1)
	snap := s.opt.Updater.Compact()
	if err := s.durableCommit(); err != nil {
		http.Error(w, "durability failure: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, epochResponse{Epoch: snap.Epoch(), Live: snap.Live(), Overlay: s.opt.Updater.Stats().Overlay})
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, s.opt.Updater.Stats())
}

// bufPool recycles encode buffers across requests; writeJSON copies the
// bytes out to the wire before returning its buffer, so pooling is safe.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// writeJSON encodes to a pooled buffer first so an encoding failure can
// still produce a clean 500: encoding straight to w would have committed a
// 200 and a partial body before the error surfaced.
func writeJSON(w http.ResponseWriter, v interface{}) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}
