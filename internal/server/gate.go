package server

import (
	"io"
	"net/http"
	"sync/atomic"
)

// StartupGate lets a node accept TCP connections while crash recovery is
// still replaying the WAL: every request answers 503 not-ready until
// Open hands it the real handler. Probes and the cluster coordinator see
// a live-but-unready replica (and breaker around it) instead of
// connection-refused — the difference between "recovering" and "gone".
//
// The zero value is not usable; call NewStartupGate. Open may be called
// at most once; requests racing it serve either response consistently.
type StartupGate struct {
	h atomic.Pointer[http.Handler]
}

// NewStartupGate returns a gate with no handler: all requests 503.
func NewStartupGate() *StartupGate { return &StartupGate{} }

// Open installs the recovered handler; all subsequent requests route to
// it.
func (g *StartupGate) Open(h http.Handler) { g.h.Store(&h) }

// Ready reports whether Open has been called.
func (g *StartupGate) Ready() bool { return g.h.Load() != nil }

// ServeHTTP implements http.Handler.
func (g *StartupGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, `{"status":"recovering","ready":false}`+"\n")
}
