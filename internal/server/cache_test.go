// Tests of the materialized read path: strong ETags and 304 revalidation,
// epoch-advance invalidation, pinned-epoch keying, and — under -race — the
// guarantee that a response body's epoch never disagrees with its ETag
// while a writer flushes concurrently.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"skycube/internal/obs"
)

// getH issues a GET with extra headers.
func getH(t *testing.T, s *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestSkylineETagAndNotModified(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/skyline?dims=0,1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	etag := rec.Header().Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing or unquoted ETag: %q", etag)
	}
	// Revalidation with the exact validator, a list, and a weak form.
	for _, inm := range []string{etag, `"zzz", ` + etag, "W/" + etag, "*"} {
		rec = getH(t, s, "/skyline?dims=0,1", map[string]string{"If-None-Match": inm})
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 carried a body", inm)
		}
	}
	// A non-matching validator serves the full body again.
	rec = getH(t, s, "/skyline?dims=0,1", map[string]string{"If-None-Match": `"stale"`})
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("stale validator: status %d, body %d bytes", rec.Code, rec.Body.Len())
	}
}

// TestCachedBytesIdentical proves a cache hit serves byte-identical output
// to the uncached path, for skyline and membership, points and not.
func TestCachedBytesIdentical(t *testing.T) {
	cached, _, _ := newTestServer(t, 0)
	uncachedSrv, _, _ := newTestServer(t, 0)
	uncached := NewWith(uncachedSrv.cube, uncachedSrv.ds, Options{DisableCache: true})
	for _, path := range []string{
		"/skyline?dims=0,1", "/skyline?dims=0,1,2&points=true", "/membership?id=3",
	} {
		first := get(t, cached, path)
		second := get(t, cached, path) // served from cache
		plain := get(t, uncached, path)
		if first.Body.String() != second.Body.String() {
			t.Errorf("%s: cached bytes differ from cold bytes", path)
		}
		if second.Body.String() != plain.Body.String() {
			t.Errorf("%s: cached bytes differ from uncached server", path)
		}
		if first.Header().Get("Etag") != second.Header().Get("Etag") {
			t.Errorf("%s: ETag changed between cold and hit", path)
		}
	}
}

// TestFlushAndCompactAdvanceCacheKey checks that a mutation + flush (and a
// compact) invalidate by epoch advance: the same URL serves new bytes and a
// new validator, with no explicit invalidation anywhere.
func TestFlushAndCompactAdvanceCacheKey(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newUpdaterServer(t, Options{Metrics: reg})

	before := get(t, s, "/skyline?dims=0,1,2")
	etagBefore := before.Header().Get("Etag")
	// Warm hit at epoch 1.
	get(t, s, "/skyline?dims=0,1,2")

	post(t, s, "/insert", `{"points": [[1.0, 1, 100]]}`)
	post(t, s, "/flush", "")

	after := get(t, s, "/skyline?dims=0,1,2")
	if after.Body.String() == before.Body.String() {
		t.Fatal("flush did not change the served body")
	}
	if etagAfter := after.Header().Get("Etag"); etagAfter == etagBefore {
		t.Fatalf("flush did not change the validator: %q", etagAfter)
	}
	// The pre-flush validator must no longer revalidate.
	rec := getH(t, s, "/skyline?dims=0,1,2", map[string]string{"If-None-Match": etagBefore})
	if rec.Code != http.StatusOK {
		t.Fatalf("stale validator revalidated after flush: status %d", rec.Code)
	}
	var sky skylineResponse
	if err := json.Unmarshal(after.Body.Bytes(), &sky); err != nil {
		t.Fatal(err)
	}
	if sky.Epoch != 2 {
		t.Fatalf("post-flush body epoch %d, want 2", sky.Epoch)
	}

	// Compaction advances the key too.
	etag2 := after.Header().Get("Etag")
	post(t, s, "/compact", "")
	rec = get(t, s, "/skyline?dims=0,1,2")
	if rec.Header().Get("Etag") == etag2 {
		t.Fatal("compact did not advance the validator")
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sky); err != nil {
		t.Fatal(err)
	}
	if sky.Epoch != 3 {
		t.Fatalf("post-compact body epoch %d, want 3", sky.Epoch)
	}
}

// TestPinnedEpochKeying: a ?epoch=N read bypasses the current-epoch fast
// path but memoizes under its own pinned key — and keeps serving the old
// epoch's bytes after the head moves on.
func TestPinnedEpochKeying(t *testing.T) {
	s, _ := newUpdaterServer(t, Options{})
	baseline := get(t, s, "/skyline?dims=0,1,2")

	post(t, s, "/insert", `{"points": [[1.0, 1, 100]]}`)
	post(t, s, "/flush", "")

	// Pinned read at epoch 1: must match the pre-write response body
	// modulo its variant (same ids, epoch 1).
	p1 := get(t, s, "/skyline?dims=0,1,2&epoch=1")
	p2 := get(t, s, "/skyline?dims=0,1,2&epoch=1")
	if p1.Code != http.StatusOK || p1.Body.String() != p2.Body.String() {
		t.Fatalf("pinned reads disagree: %d %q vs %q", p1.Code, p1.Body, p2.Body)
	}
	var pinned, base skylineResponse
	if err := json.Unmarshal(p1.Body.Bytes(), &pinned); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(baseline.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}
	if pinned.Epoch != 1 || fmt.Sprint(pinned.IDs) != fmt.Sprint(base.IDs) {
		t.Fatalf("pinned epoch-1 read = %+v, want ids %v at epoch 1", pinned, base.IDs)
	}
	// The pinned variant's cache key is distinct from the unpinned one: the
	// unpinned read serves epoch 2.
	var head skylineResponse
	if err := json.Unmarshal(get(t, s, "/skyline?dims=0,1,2").Body.Bytes(), &head); err != nil {
		t.Fatal(err)
	}
	if head.Epoch != 2 {
		t.Fatalf("unpinned read epoch %d, want 2", head.Epoch)
	}
}

// TestCacheMetricsCount checks hits/misses/coalesce flow into the registry
// under the node layer label.
func TestCacheMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newUpdaterServer(t, Options{Metrics: reg})
	get(t, s, "/skyline?dims=0")  // miss
	get(t, s, "/skyline?dims=0")  // hit
	get(t, s, "/skyline?dims=0")  // hit
	get(t, s, "/membership?id=0") // miss
	if h := s.cm.Hits(); h != 2 {
		t.Errorf("hits = %v, want 2", h)
	}
	if m := s.cm.Misses(); m != 2 {
		t.Errorf("misses = %v, want 2", m)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`skycube_cache_hits_total{layer="node"} 2`,
		`skycube_cache_misses_total{layer="node"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestDisableCacheKeepsETagContract: with the cache off, responses still
// carry validators and honour If-None-Match.
func TestDisableCacheKeepsETagContract(t *testing.T) {
	s, _ := newUpdaterServer(t, Options{DisableCache: true})
	rec := get(t, s, "/skyline?dims=0,1")
	etag := rec.Header().Get("Etag")
	if etag == "" {
		t.Fatal("no ETag with cache disabled")
	}
	rec = getH(t, s, "/skyline?dims=0,1", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match with cache disabled: status %d, want 304", rec.Code)
	}
	if s.cache != nil {
		t.Fatal("DisableCache left a live cache")
	}
}

// TestConcurrentReadersWriterConsistency hammers reads while a writer
// inserts and flushes; run under -race this doubles as a race probe. The
// invariant: a response body's epoch always matches the epoch encoded in
// its ETag — the cache must never pair one epoch's bytes with another's
// validator, no matter how the flush interleaves.
func TestConcurrentReadersWriterConsistency(t *testing.T) {
	s, _ := newUpdaterServer(t, Options{})
	const readers = 8
	const reads = 60
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: insert + flush in a tight loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			post(t, s, "/insert", fmt.Sprintf(`{"points": [[%d, %d, %d]]}`, 50+i, 50+i, 500+i))
			post(t, s, "/flush", "")
		}
	}()
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		go func() {
			for i := 0; i < reads; i++ {
				req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1,2", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
				var resp skylineResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("decode: %w", err)
					return
				}
				wantPrefix := fmt.Sprintf(`"e%d-`, resp.Epoch)
				if etag := rec.Header().Get("Etag"); !strings.HasPrefix(etag, wantPrefix) {
					errs <- fmt.Errorf("body epoch %d but ETag %q", resp.Epoch, etag)
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < readers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCacheEntriesBound checks the LRU bound is honoured end to end.
func TestCacheEntriesBound(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	srv := NewWith(s.cube, s.ds, Options{CacheEntries: 2})
	for _, dims := range []string{"0", "1", "2", "0,1"} {
		get(t, srv, "/skyline?dims="+dims)
	}
	if n := srv.cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want bound 2", n)
	}
}
