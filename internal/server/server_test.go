package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"skycube"
)

func newTestServer(t *testing.T, maxLevel int) (*Server, skycube.Skycube, *skycube.Dataset) {
	t.Helper()
	ds, err := skycube.DatasetFromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 2, MaxLevel: maxLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(cube, ds), cube, ds
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestInfo(t *testing.T) {
	s, cube, _ := newTestServer(t, 0)
	rec := get(t, s, "/info")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp infoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Points != 5 || resp.Dims != 3 || resp.Subspaces != 7 || resp.MaxLevel != 3 {
		t.Errorf("info = %+v", resp)
	}
	if resp.StoredIDs != cube.IDCount() {
		t.Errorf("stored ids %d != %d", resp.StoredIDs, cube.IDCount())
	}
}

func TestSkylineQuery(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/skyline?dims=0,1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// S3 {Arrival, Duration} = {f1, f2, f3}.
	if !reflect.DeepEqual(resp.IDs, []int32{1, 2, 3}) || resp.Count != 3 || resp.Subspace != 3 {
		t.Errorf("skyline = %+v", resp)
	}
	if resp.Points != nil {
		t.Error("points should be omitted unless requested")
	}
}

func TestSkylineQueryWithPoints(t *testing.T) {
	s, _, ds := newTestServer(t, 0)
	rec := get(t, s, "/skyline?dims=2&points=true")
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// S4 {Price} = {f0}.
	if !reflect.DeepEqual(resp.IDs, []int32{0}) {
		t.Fatalf("skyline = %+v", resp)
	}
	if len(resp.Points) != 1 || resp.Points[0][2] != ds.Point(0)[2] {
		t.Errorf("points = %v", resp.Points)
	}
}

func TestSkylineQueryErrors(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for path, want := range map[string]int{
		"/skyline":           http.StatusBadRequest, // no dims
		"/skyline?dims=":     http.StatusBadRequest,
		"/skyline?dims=9":    http.StatusBadRequest, // out of range
		"/skyline?dims=a":    http.StatusBadRequest,
		"/skyline?dims=0,,1": http.StatusBadRequest,
	} {
		if rec := get(t, s, path); rec.Code != want {
			t.Errorf("%s: status %d, want %d", path, rec.Code, want)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/skyline?dims=0", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d", rec.Code)
	}
}

func TestSkylineAboveMaxLevel(t *testing.T) {
	s, _, _ := newTestServer(t, 2)
	if rec := get(t, s, "/skyline?dims=0,1"); rec.Code != http.StatusOK {
		t.Errorf("2-d query on level-2 cube: status %d", rec.Code)
	}
	if rec := get(t, s, "/skyline?dims=0,1,2"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("3-d query on level-2 cube: status %d", rec.Code)
	}
}

func TestMembershipQuery(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/membership?id=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp membershipResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// f4 is in no subspace skyline.
	if len(resp.Subspaces) != 0 {
		t.Errorf("f4 membership = %v, want none", resp.Subspaces)
	}
	rec = get(t, s, "/membership?id=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// f2 ∈ S1, S3, S5, S7.
	if !reflect.DeepEqual(resp.Subspaces, []uint32{1, 3, 5, 7}) {
		t.Errorf("f2 membership = %v, want [1 3 5 7]", resp.Subspaces)
	}
	if len(resp.DimLists) != 4 || !reflect.DeepEqual(resp.DimLists[1], []int{0, 1}) {
		t.Errorf("dim lists = %v", resp.DimLists)
	}
}

func TestMembershipErrors(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for _, path := range []string{"/membership", "/membership?id=-1", "/membership?id=99", "/membership?id=x"} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}
