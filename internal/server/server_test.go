package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"skycube"
	"skycube/internal/obs"
)

func newTestServer(t *testing.T, maxLevel int) (*Server, skycube.Skycube, *skycube.Dataset) {
	t.Helper()
	ds, err := skycube.DatasetFromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 2, MaxLevel: maxLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(cube, ds), cube, ds
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestInfo(t *testing.T) {
	s, cube, _ := newTestServer(t, 0)
	rec := get(t, s, "/info")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp infoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Points != 5 || resp.Dims != 3 || resp.Subspaces != 7 || resp.MaxLevel != 3 {
		t.Errorf("info = %+v", resp)
	}
	if resp.StoredIDs != cube.IDCount() {
		t.Errorf("stored ids %d != %d", resp.StoredIDs, cube.IDCount())
	}
}

func TestSkylineQuery(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/skyline?dims=0,1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// S3 {Arrival, Duration} = {f1, f2, f3}.
	if !reflect.DeepEqual(resp.IDs, []int32{1, 2, 3}) || resp.Count != 3 || resp.Subspace != 3 {
		t.Errorf("skyline = %+v", resp)
	}
	if resp.Points != nil {
		t.Error("points should be omitted unless requested")
	}
}

func TestSkylineQueryWithPoints(t *testing.T) {
	s, _, ds := newTestServer(t, 0)
	rec := get(t, s, "/skyline?dims=2&points=true")
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// S4 {Price} = {f0}.
	if !reflect.DeepEqual(resp.IDs, []int32{0}) {
		t.Fatalf("skyline = %+v", resp)
	}
	if len(resp.Points) != 1 || resp.Points[0][2] != ds.Point(0)[2] {
		t.Errorf("points = %v", resp.Points)
	}
}

func TestSkylineQueryErrors(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for path, want := range map[string]int{
		"/skyline":           http.StatusBadRequest, // no dims
		"/skyline?dims=":     http.StatusBadRequest,
		"/skyline?dims=9":    http.StatusBadRequest, // out of range
		"/skyline?dims=a":    http.StatusBadRequest,
		"/skyline?dims=0,,1": http.StatusBadRequest,
	} {
		if rec := get(t, s, path); rec.Code != want {
			t.Errorf("%s: status %d, want %d", path, rec.Code, want)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/skyline?dims=0", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d", rec.Code)
	}
}

func TestSkylineAboveMaxLevel(t *testing.T) {
	s, _, _ := newTestServer(t, 2)
	if rec := get(t, s, "/skyline?dims=0,1"); rec.Code != http.StatusOK {
		t.Errorf("2-d query on level-2 cube: status %d", rec.Code)
	}
	if rec := get(t, s, "/skyline?dims=0,1,2"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("3-d query on level-2 cube: status %d", rec.Code)
	}
}

func TestMembershipQuery(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	rec := get(t, s, "/membership?id=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp membershipResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// f4 is in no subspace skyline.
	if len(resp.Subspaces) != 0 {
		t.Errorf("f4 membership = %v, want none", resp.Subspaces)
	}
	rec = get(t, s, "/membership?id=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// f2 ∈ S1, S3, S5, S7.
	if !reflect.DeepEqual(resp.Subspaces, []uint32{1, 3, 5, 7}) {
		t.Errorf("f2 membership = %v, want [1 3 5 7]", resp.Subspaces)
	}
	if len(resp.DimLists) != 4 || !reflect.DeepEqual(resp.DimLists[1], []int{0, 1}) {
		t.Errorf("dim lists = %v", resp.DimLists)
	}
}

func TestMembershipErrors(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for _, path := range []string{"/membership", "/membership?id=-1", "/membership?id=99", "/membership?id=x"} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestSkylineDuplicateDims(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for _, path := range []string{"/skyline?dims=1,1", "/skyline?dims=0,2,0"} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
	// Distinct dims still work.
	if rec := get(t, s, "/skyline?dims=1,0"); rec.Code != http.StatusOK {
		t.Errorf("dims=1,0: status %d", rec.Code)
	}
}

func newObsServer(t *testing.T) (*Server, *obs.Registry, *obs.Trace) {
	t.Helper()
	ds, err := skycube.DatasetFromRows([][]float32{
		{1, 4, 2}, {3, 1, 5}, {2, 3, 1}, {5, 5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := skycube.NewMetrics()
	tr := skycube.NewTrace()
	cube, stats, err := skycube.Build(ds, skycube.Options{
		Algorithm: skycube.MDMC, Threads: 2, Metrics: reg, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWith(cube, ds, Options{
		BuildInfo: &BuildInfo{
			Algorithm:      "MDMC",
			Points:         ds.Len(),
			Dims:           ds.Dims(),
			MaxLevel:       cube.MaxLevel(),
			ElapsedSeconds: stats.Elapsed.Seconds(),
		},
		Metrics: reg,
		Trace:   tr,
	})
	return s, reg, tr
}

func TestBuildInfoEndpoint(t *testing.T) {
	s, _, _ := newObsServer(t)
	rec := get(t, s, "/buildinfo")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var info BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Algorithm != "MDMC" || info.Points != 4 || info.Dims != 3 {
		t.Errorf("buildinfo = %+v", info)
	}

	// A plain New server has no /buildinfo.
	plain, _, _ := newTestServer(t, 0)
	if rec := get(t, plain, "/buildinfo"); rec.Code != http.StatusNotFound {
		t.Errorf("plain server /buildinfo: status %d, want 404", rec.Code)
	}
}

func TestMetricsEndpointAndMiddleware(t *testing.T) {
	s, _, _ := newObsServer(t)
	// Generate traffic the middleware should count.
	get(t, s, "/info")
	get(t, s, "/skyline?dims=0")
	get(t, s, "/skyline?dims=notadim")

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`skycube_builds_total{algorithm="MDMC"} 1`,
		`http_requests_total{code="200",path="/info"} 1`,
		`http_requests_total{code="400",path="/skyline"} 1`,
		`http_request_duration_seconds_bucket`,
		`http_request_duration_seconds_count{path="/skyline"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	s, _, tr := newObsServer(t)
	rec := get(t, s, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if tr.Len() == 0 || len(doc.TraceEvents) < tr.Len() {
		t.Errorf("%d events for %d spans", len(doc.TraceEvents), tr.Len())
	}
}

// newUpdaterServer builds a maintenance-mode server over the same 5-point
// dataset as newTestServer.
func newUpdaterServer(t *testing.T, opt Options) (*Server, *skycube.Updater) {
	t.Helper()
	ds, err := skycube.DatasetFromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
	if err != nil {
		t.Fatal(err)
	}
	up, err := skycube.NewUpdater(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(up.Close)
	opt.Updater = up
	return NewWith(nil, nil, opt), up
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestMethodNotAllowed checks that every endpoint answers a mismatched
// verb with 405 and a correct Allow header.
func TestMethodNotAllowed(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	for _, path := range []string{"/info", "/skyline?dims=0", "/membership?id=1"} {
		rec := post(t, s, path, "{}")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, rec.Code)
		}
		if got := rec.Header().Get("Allow"); got != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, got)
		}
	}
	us, _ := newUpdaterServer(t, Options{})
	for _, path := range []string{"/insert", "/delete", "/flush", "/compact"} {
		rec := get(t, us, path)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, rec.Code)
		}
		if got := rec.Header().Get("Allow"); got != http.MethodPost {
			t.Errorf("GET %s: Allow = %q, want POST", path, got)
		}
	}
	if rec := post(t, us, "/updates", "{}"); rec.Code != http.StatusMethodNotAllowed ||
		rec.Header().Get("Allow") != http.MethodGet {
		t.Errorf("POST /updates: status %d, Allow %q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestMutationFlow drives insert → flush → delete → flush over HTTP and
// checks that reads follow the epochs, including pinned ?epoch=N reads
// against evicted and future epochs.
func TestMutationFlow(t *testing.T) {
	s, up := newUpdaterServer(t, Options{})

	// Epoch 1 serves the initial build.
	var info infoResponse
	rec := get(t, s, "/info")
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Points != 5 {
		t.Fatalf("initial info = %+v", info)
	}
	baseline := up.Current().Skyline(skycube.FullSpace(3))

	// Insert a point dominating everything, flush, and watch it take over.
	rec = post(t, s, "/insert", `{"points": [[1.0, 1, 100]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/insert: %d %s", rec.Code, rec.Body)
	}
	var ins insertResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ins.IDs, []int32{5}) || ins.PendingInserts != 1 {
		t.Fatalf("insert response = %+v", ins)
	}
	rec = post(t, s, "/flush", "")
	var ep epochResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != 2 || ep.Live != 6 {
		t.Fatalf("flush response = %+v", ep)
	}
	var sky skylineResponse
	rec = get(t, s, "/skyline?dims=0,1,2")
	if err := json.Unmarshal(rec.Body.Bytes(), &sky); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sky.IDs, []int32{5}) || sky.Epoch != 2 {
		t.Fatalf("post-insert skyline = %+v", sky)
	}

	// A pinned read at epoch 1 still serves the pre-insert answers.
	rec = get(t, s, "/skyline?dims=0,1,2&epoch=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &sky); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sky.IDs, baseline) || sky.Epoch != 1 {
		t.Fatalf("pinned epoch-1 skyline = %+v, want ids %v", sky, baseline)
	}

	// Delete the usurper; the old skyline returns at epoch 3.
	rec = post(t, s, "/delete", `{"ids": [5]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("/delete: %d %s", rec.Code, rec.Body)
	}
	post(t, s, "/flush", "")
	rec = get(t, s, "/skyline?dims=0,1,2")
	if err := json.Unmarshal(rec.Body.Bytes(), &sky); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sky.IDs, baseline) || sky.Epoch != 3 {
		t.Fatalf("post-delete skyline = %+v, want ids %v", sky, baseline)
	}

	// Membership of the dead id reports alive=false.
	var mem membershipResponse
	rec = get(t, s, "/membership?id=5")
	if err := json.Unmarshal(rec.Body.Bytes(), &mem); err != nil {
		t.Fatal(err)
	}
	if mem.Alive == nil || *mem.Alive || len(mem.Subspaces) != 0 {
		t.Fatalf("dead-id membership = %+v", mem)
	}

	// Epoch errors: future → 410, garbage → 400, deleting a dead id → 400.
	if rec := get(t, s, "/skyline?dims=0&epoch=99"); rec.Code != http.StatusGone {
		t.Errorf("future epoch: status %d, want 410", rec.Code)
	}
	if rec := get(t, s, "/skyline?dims=0&epoch=x"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad epoch: status %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/delete", `{"ids": [5]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("double delete: status %d, want 400", rec.Code)
	}

	// /compact folds the overlay and bumps the epoch.
	rec = post(t, s, "/compact", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != 4 || ep.Live != 5 || ep.Overlay != 0 {
		t.Fatalf("compact response = %+v", ep)
	}

	// /updates serves the stats counters.
	var st skycube.UpdaterStats
	rec = get(t, s, "/updates")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 || st.Live != 5 || st.Compactions != 1 {
		t.Fatalf("updates stats = %+v", st)
	}
}

// TestEpochEviction pins reads past the history ring.
func TestEpochEviction(t *testing.T) {
	s, _ := newUpdaterServer(t, Options{})
	// Default history is 8; push epoch 1 out.
	for i := 0; i < 9; i++ {
		if rec := post(t, s, "/insert", `{"points": [[50, 50, 500]]}`); rec.Code != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body)
		}
		post(t, s, "/flush", "")
	}
	if rec := get(t, s, "/skyline?dims=0&epoch=1"); rec.Code != http.StatusGone {
		t.Errorf("evicted epoch: status %d, want 410", rec.Code)
	}
	if rec := get(t, s, "/skyline?dims=0&epoch=10"); rec.Code != http.StatusOK {
		t.Errorf("latest epoch: status %d, want 200", rec.Code)
	}
}

// TestBodyCap checks the MaxBytesReader guard and malformed-body errors.
func TestBodyCap(t *testing.T) {
	s, _ := newUpdaterServer(t, Options{MaxBodyBytes: 64})
	big := `{"points": [[` + strings.Repeat("1,", 200) + `1]]}`
	if rec := post(t, s, "/insert", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}
	for body, want := range map[string]int{
		`not json`:          http.StatusBadRequest,
		`{"points": []}`:    http.StatusBadRequest,
		`{"unknown": true}`: http.StatusBadRequest,
		`{"points": [[1]]}`: http.StatusBadRequest, // wrong dimensionality
	} {
		if rec := post(t, s, "/insert", body); rec.Code != want {
			t.Errorf("body %q: status %d, want %d", body, rec.Code, want)
		}
	}
}

// TestEpochOnStaticServer rejects ?epoch=N without an updater.
func TestEpochOnStaticServer(t *testing.T) {
	s, _, _ := newTestServer(t, 0)
	if rec := get(t, s, "/skyline?dims=0&epoch=1"); rec.Code != http.StatusBadRequest {
		t.Errorf("static epoch read: status %d, want 400", rec.Code)
	}
}

func TestRequestLogging(t *testing.T) {
	ds, err := skycube.DatasetFromRows([][]float32{{1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := skycube.Build(ds, skycube.Options{Algorithm: skycube.MDMC, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s := NewWith(cube, ds, Options{Logger: log.New(&logBuf, "", 0)})
	get(t, s, "/info")
	get(t, s, "/membership?id=99")
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("logged %d lines: %q", len(lines), logBuf.String())
	}
	if !strings.HasPrefix(lines[0], "GET /info 200") {
		t.Errorf("log line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "GET /membership?id=99 400") {
		t.Errorf("log line %q", lines[1])
	}
}
