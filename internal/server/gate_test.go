package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"skycube"
)

func TestStartupGateBlocksUntilOpen(t *testing.T) {
	g := NewStartupGate()
	if g.Ready() {
		t.Fatal("gate ready before Open")
	}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("gated request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("gated request: Retry-After %q, want 1", rec.Header().Get("Retry-After"))
	}
	var body struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "recovering" || body.Ready {
		t.Fatalf("gated body = %+v", body)
	}

	s, _, _ := newTestServer(t, 0)
	g.Open(s)
	if !g.Ready() {
		t.Fatal("gate not ready after Open")
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("opened gate /healthz: status %d, want 200", rec.Code)
	}
}

// newDurableServer is newUpdaterServer over a data directory, so closing
// the updater and rebuilding from dir exercises the serving layer's
// recovery wiring (WAL commit on ack, batch replay cache seeding).
func newDurableServer(t *testing.T, dir string) (*Server, *skycube.Updater) {
	t.Helper()
	ds, err := skycube.DatasetFromRows([][]float32{
		{12.20, 17, 120},
		{9.00, 12, 148},
		{8.20, 13, 169},
		{21.25, 3, 186},
		{21.25, 5, 196},
	})
	if err != nil {
		t.Fatal(err)
	}
	up, err := skycube.NewUpdater(ds, skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: dir, CheckpointEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewWith(nil, nil, Options{Updater: up}), up
}

// TestDurableBatchDedupAcrossRestart: an acknowledged idempotent batch
// insert must replay — same status, same body, no re-apply — when the
// client retries it against a server rebuilt from the data directory.
func TestDurableBatchDedupAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, up := newDurableServer(t, dir)

	const batch = `{"points":[[1.5,2.5,3.5],[4.5,5.5,6.5]],"batch":"retry-me"}`
	rec := post(t, s, "/insert", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", rec.Code, rec.Body.String())
	}
	firstBody := rec.Body.String()
	if rec := post(t, s, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatalf("flush: status %d: %s", rec.Code, rec.Body.String())
	}
	wantLive := up.Current().Live()
	wantSky := up.Current().Skyline(skycube.FullSpace(3))
	up.Close()

	s2, up2 := newDurableServer(t, dir)
	defer up2.Close()
	if up2.Current().Live() != wantLive {
		t.Fatalf("recovered live = %d, want %d", up2.Current().Live(), wantLive)
	}
	if got := up2.Current().Skyline(skycube.FullSpace(3)); !reflect.DeepEqual(got, wantSky) {
		t.Fatalf("recovered skyline %v, want %v", got, wantSky)
	}

	// The retry must replay the original ack byte for byte and must not
	// insert the points again.
	rec = post(t, s2, "/insert", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("replayed insert: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != firstBody {
		t.Fatalf("replayed body %q, want %q", rec.Body.String(), firstBody)
	}
	if ins, _ := up2.Pending(); ins != 0 {
		t.Fatalf("retried batch re-buffered %d inserts", ins)
	}
	if rec := post(t, s2, "/flush", ""); rec.Code != http.StatusOK {
		t.Fatal("flush after replay failed")
	}
	if up2.Current().Live() != wantLive {
		t.Fatalf("retry double-applied: live = %d, want %d", up2.Current().Live(), wantLive)
	}
}
