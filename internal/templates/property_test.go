package templates

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// Property: for arbitrary low-cardinality data, each point's solution
// bitmask B_{p∉S} produced by the MDMC kernel equals the brute-force
// dominance computation over every subspace — the end-to-end invariant of
// Algorithm 3.
func TestQuickSolutionBitmaskMatchesBruteForce(t *testing.T) {
	f := func(raw []byte, d8 uint8) bool {
		d := int(d8%3) + 2 // 2..4 dims
		n := len(raw) / d
		if n < 3 {
			return true
		}
		vals := make([]float32, n*d)
		for i := range vals {
			vals[i] = float32(raw[i] % 5)
		}
		ds := data.New(d, vals)
		res := MDMC(ds, MDMCOptions{Options: Options{Threads: 2}})

		// Brute force: for every subspace, which rows are dominated?
		for _, delta := range mask.Subspaces(d) {
			var want []int32
			for p := 0; p < n; p++ {
				dominated := false
				for q := 0; q < n && !dominated; q++ {
					if p == q {
						continue
					}
					if dom.RelDominates(dom.Compare(ds.Point(q), ds.Point(p)), delta) {
						dominated = true
					}
				}
				if !dominated {
					want = append(want, int32(p))
				}
			}
			if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, 20+rng.Intn(150))
			rng.Read(raw)
			v[0] = reflect.ValueOf(raw)
			v[1] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the filter phase alone never sets a bit that the full
// computation would not — it is a sound under-approximation (mask-only
// claims are always confirmed by DTs).
func TestQuickFilterIsSound(t *testing.T) {
	f := func(raw []byte) bool {
		const d = 4
		n := len(raw) / d
		if n < 4 {
			return true
		}
		vals := make([]float32, n*d)
		for i := range vals {
			vals[i] = float32(raw[i]) / 16
		}
		ds := data.New(d, vals)
		ctx := PrepareMDMC(ds, 1, 3, 0)
		sol := NewSolution(ctx)
		for p := 0; p < ctx.NumTasks(); p++ {
			sol.Reset()
			sol.Filter(p, 2)
			pp := ctx.Tree.Data.Point(p)
			for delta := 1; delta <= mask.NumSubspaces(d); delta++ {
				if !sol.NotInS().Test(delta - 1) {
					continue
				}
				// Claimed strictly dominated in δ: verify with brute force.
				strict := false
				for q := 0; q < ctx.Tree.Data.N && !strict; q++ {
					if q == p {
						continue
					}
					if dom.StrictlyDominatesIn(ctx.Tree.Data.Point(q), pp, mask.Mask(delta)) {
						strict = true
					}
				}
				if !strict {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, 24+rng.Intn(160))
			rng.Read(raw)
			v[0] = reflect.ValueOf(raw)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
