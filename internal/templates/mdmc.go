package templates

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skycube/internal/bitset"
	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/hashcube"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
	"skycube/internal/stree"
)

// MDMCOptions configure the point-bitmask template and its CPU kernel.
type MDMCOptions struct {
	Options
	// TreeDepth is 3 (the paper's octile-extended tree) or 2 (SkyAlign's);
	// 0 defaults to 3. Exposed for the tree-depth ablation.
	TreeDepth int
	// FilterLevels is how many tree levels the filter phase reads: the CPU
	// specialisation uses 2 (top levels stay L2-cache-resident, §5.2); the
	// GPU one uses all (§6.2). 0 defaults to 2.
	FilterLevels int
	// DisableFilter skips the filter phase entirely (refine-only ablation).
	DisableFilter bool
	// DisableMemo disables the seen-mask memoisation of refine (ablation of
	// the O(n·(2^d+n)) improvement, §4.3).
	DisableMemo bool
	// OnChunk, if non-nil, is told how many point tasks each completed
	// chunk processed (progress reporting and metrics).
	OnChunk func(n int)
}

// MDMCContext is the shared, read-only state of one MDMC run: the static
// tree over S⁺(P) and the output HashCube. It is what the template shares
// across devices (paper §4.3): built once, then consumed by any number of
// point kernels in parallel.
type MDMCContext struct {
	Tree *stree.Tree
	// OrigRow maps a tree (sorted) position to the input-dataset row id —
	// the id inserted into the HashCube.
	OrigRow []int32
	D       int
	// MaxLevel is the partial-computation bound d′ (App. A.2): refine skips
	// verification of subspaces with |δ| > MaxLevel.
	MaxLevel int
	Cube     *hashcube.HashCube
	// ExtRows are the rows of S⁺(P) in the input dataset (ascending).
	ExtRows []int32
}

// NumTasks returns the number of data-parallel point tasks, |S⁺(P)|.
func (c *MDMCContext) NumTasks() int { return c.Tree.Data.N }

// PointKernel processes the point tasks at sorted positions [lo, hi),
// computing each point's B_{p∉S} and inserting it into ctx.Cube. It is the
// architecture-specific hook pair (filter + refine) of the MDMC template.
type PointKernel func(ctx *MDMCContext, lo, hi int)

// PrepareMDMC performs the template's shared prologue (Algorithm 3 line 2):
// compute S⁺(P) in parallel, then build the static global tree over it.
func PrepareMDMC(ds *data.Dataset, threads, treeDepth, maxLevel int) *MDMCContext {
	return PrepareMDMCTraced(ds, threads, treeDepth, maxLevel, nil)
}

// PrepareMDMCTraced is PrepareMDMC recording the prologue's two phases —
// the parallel extended-skyline computation and the static tree build — as
// spans on the "prepare" track.
func PrepareMDMCTraced(ds *data.Dataset, threads, treeDepth, maxLevel int, tr *obs.Trace) *MDMCContext {
	if treeDepth == 0 {
		treeDepth = 3
	}
	if maxLevel <= 0 || maxLevel > ds.Dims {
		maxLevel = ds.Dims
	}
	full := mask.Full(ds.Dims)
	h := tr.Begin("prepare", obs.CatPrepare, "extended-skyline")
	h.SetN(int64(ds.N))
	ext := skyline.ExtendedSkyline(ds, nil, full, skyline.AlgoHybrid, threads)
	h.End()
	intRows := make([]int, len(ext))
	for i, r := range ext {
		intRows[i] = int(r)
	}
	h = tr.Begin("prepare", obs.CatPrepare, "static-tree")
	h.SetN(int64(len(ext)))
	sub := ds.Subset(intRows)
	tree := stree.Build(sub, treeDepth)
	orig := make([]int32, len(ext))
	for pos, subRow := range tree.SrcRow {
		orig[pos] = ext[subRow]
	}
	h.End()
	return &MDMCContext{
		Tree:     tree,
		OrigRow:  orig,
		D:        ds.Dims,
		MaxLevel: maxLevel,
		Cube:     hashcube.New(ds.Dims),
		ExtRows:  ext,
	}
}

// Grab hands the next chunk of point tasks to a worker lane, returning
// lo == hi when the queue is exhausted. It is the template's task-pulling
// protocol (§4.3): the lane identifies the puller (a CPU worker index or 0
// for a single-puller GPU) so a scheduler can attribute and size grabs per
// consumer. Implementations must hand out disjoint ranges whose union is
// exactly [0, NumTasks) — the differential and chaos tests enforce this.
type Grab func(lane int) (lo, hi int)

// DefaultPointChunk is the static grab size of the plain CPU template run.
const DefaultPointChunk = 64

// CounterGrab returns the template's baseline grab source: fixed-size
// chunks handed out by a shared atomic counter.
func CounterGrab(n, chunk int) Grab {
	if chunk < 1 {
		chunk = DefaultPointChunk
	}
	var next int64
	return func(int) (int, int) {
		lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
		if lo >= n {
			return n, n
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}
}

// RunMDMC drives a kernel over all point tasks with the given worker count,
// handing out fixed-size chunks from an atomic counter — the template's
// synchronisation-free data parallelism. OnChunk, if non-nil, is told how
// many tasks each grab processed (used for device-share accounting).
func RunMDMC(ctx *MDMCContext, kernel PointKernel, workers int, onChunk func(n int)) {
	RunMDMCTraced(ctx, kernel, workers, nil, onChunk)
}

// RunMDMCTraced is RunMDMC recording one span per completed chunk on a
// per-worker track ("cpu-0", "cpu-1", …). With a nil trace the only cost
// over RunMDMC is a pointer test per chunk.
func RunMDMCTraced(ctx *MDMCContext, kernel PointKernel, workers int, tr *obs.Trace, onChunk func(n int)) {
	grab := CounterGrab(ctx.NumTasks(), DefaultPointChunk)
	RunMDMCGrab(ctx, kernel, workers, grab, func(lane, n int, dur time.Duration) {
		if tr != nil {
			tr.Record(fmt.Sprintf("cpu-%d", lane), obs.CatChunk, "points", dur, int64(n))
		}
		if onChunk != nil {
			onChunk(n)
		}
	})
}

// RunMDMCGrab drives a kernel with workers independent pullers consuming an
// arbitrary grab source — the generalised form of the MDMC drain loop that
// the cross-device scheduler (internal/hetero) plugs its per-device
// work-stealing queues into. account, if non-nil, is told the lane, size
// and wall time of every completed chunk.
func RunMDMCGrab(ctx *MDMCContext, kernel PointKernel, workers int, grab Grab,
	account func(lane, n int, dur time.Duration)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo, hi := grab(w)
				if lo >= hi {
					return
				}
				start := time.Now()
				kernel(ctx, lo, hi)
				if account != nil {
					account(w, hi-lo, time.Since(start))
				}
			}
		}(w)
	}
	wg.Wait()
}

// MDMCResult is the output of an MDMC build.
type MDMCResult struct {
	Cube *hashcube.HashCube
	// ExtRows are the rows of S⁺(P); every other row is in no subspace
	// skyline and is therefore absent from the cube.
	ExtRows []int32
}

// MDMC is the multicore CPU specialisation of the MDMC template.
func MDMC(ds *data.Dataset, opt MDMCOptions) *MDMCResult {
	ctx := PrepareMDMCTraced(ds, opt.threads(), opt.TreeDepth, opt.MaxLevel, opt.Trace)
	RunMDMCTraced(ctx, CPUPointKernel(opt), opt.threads(), opt.Trace, opt.OnChunk)
	return &MDMCResult{Cube: ctx.Cube, ExtRows: ctx.ExtRows}
}

// CPUPointKernel returns the CPU filter/refine hook of §5.2. Per point p:
//
//   - Filter: walk the top FilterLevels of the tree in a predictable
//     depth-first order, deriving from path labels alone subspaces in which
//     some tree node's points strictly dominate p, and set all their
//     submasks. No data points are loaded.
//   - Refine: scan the leaves; a leaf is skipped when everything it could
//     contribute is already known (its optimistic mask is strictly
//     dominated). Otherwise each leaf point gets one vectorisable DT whose
//     (B_{q<p}, B_{q=p}) masks are expanded into the solution bitsets,
//     memoised so each distinct mask is processed once.
func CPUPointKernel(opt MDMCOptions) PointKernel {
	filterLevels := opt.FilterLevels
	if filterLevels == 0 {
		filterLevels = 2
	}
	return func(ctx *MDMCContext, lo, hi int) {
		k := NewSolution(ctx)
		for p := lo; p < hi; p++ {
			k.Reset()
			if !opt.DisableFilter {
				k.Filter(p, filterLevels)
			}
			k.Refine(p, !opt.DisableMemo)
			ctx.Cube.Insert(ctx.OrigRow[p], k.NotInS())
		}
		k.FlushKernelTally()
	}
}

// Solution is the per-task state of Algorithm 3: the two solution bitmasks
// B_{p∉S} and B_{p∉S⁺} (2^d − 1 bits each) plus the remaining-subspace
// counter that provides early exit. On the CPU this is per-worker scratch;
// the GPU specialisation places it in simulated shared memory and wraps
// these same updates with device accounting.
type Solution struct {
	ctx        *MDMCContext
	notInS     *bitset.Set // B_{p∉S}: bit δ−1 set iff p dominated in δ
	notInSPlus *bitset.Set // B_{p∉S⁺}: bit δ−1 set iff p strictly dominated in δ
	// remaining counts subspaces with |δ| ≤ MaxLevel not yet set in notInS;
	// when it reaches zero the point's fate is fully decided.
	remaining int
	relevant  int // initial value of remaining
	// relBuf is per-worker scratch for the chunked block refine: one
	// dom.CompareBlock sweep's worth of relationship masks.
	relBuf [refineChunk]dom.Rel
	// tally batches kernel counter updates; FlushKernelTally publishes them.
	tally dom.KernelTally
}

// refineChunk is the leaf-chunk width of the block refine path: one verdict
// word of lanes per CompareBlock sweep.
const refineChunk = 64

// FlushKernelTally publishes the solution's batched kernel counters. The
// point-kernel drivers call it once per chunk of point tasks.
func (k *Solution) FlushKernelTally() { k.tally.Flush() }

// NewSolution allocates task state for one worker of ctx's run.
func NewSolution(ctx *MDMCContext) *Solution {
	n := mask.NumSubspaces(ctx.D)
	relevant := 0
	if ctx.MaxLevel >= ctx.D {
		relevant = n
	} else {
		for l := 1; l <= ctx.MaxLevel; l++ {
			relevant += mask.Binomial(ctx.D, l)
		}
	}
	return &Solution{
		ctx:        ctx,
		notInS:     bitset.New(n),
		notInSPlus: bitset.New(n),
		relevant:   relevant,
	}
}

// NotInS exposes the finished B_{p∉S} for HashCube insertion.
func (k *Solution) NotInS() *bitset.Set { return k.notInS }

// Remaining reports how many relevant subspaces are still undecided.
func (k *Solution) Remaining() int { return k.remaining }

// StateBytes returns the shared-memory footprint of one task's state: two
// bitmasks of 2^d − 1 bits (§6.2).
func StateBytes(d int) int { return 2 * ((1 << uint(d)) / 8) }

// Reset prepares the state for a new point task.
func (k *Solution) Reset() {
	k.notInS.Reset()
	k.notInSPlus.Reset()
	k.remaining = k.relevant
}

// setDominated marks p as dominated in δ.
func (k *Solution) setDominated(delta mask.Mask) {
	i := int(delta) - 1
	if !k.notInS.Test(i) {
		k.notInS.Set(i)
		if k.ctx.MaxLevel >= k.ctx.D || mask.Count(delta) <= k.ctx.MaxLevel {
			k.remaining--
		}
	}
}

// SetStrict marks p as strictly dominated in δ and all δ's submasks.
// Propagation is cut short at masks already known to be strictly dominated.
func (k *Solution) SetStrict(delta mask.Mask) {
	if delta == 0 || k.notInSPlus.Test(int(delta)-1) {
		return
	}
	mask.SubmasksOf(delta, func(sub mask.Mask) bool {
		i := int(sub) - 1
		if k.notInSPlus.Test(i) {
			// Already known: the bit tests keep per-submask work to a pair
			// of word operations.
			return true
		}
		k.notInSPlus.Set(i)
		k.setDominated(sub)
		return true
	})
}

// Filter is the CPU filter hook (§5.2): iterate the top tree levels
// depth-first, combining median- and quartile-label information (and octile
// if levels == 3) into guaranteed-strict-dominance subspaces. Only path
// labels are read — never data points.
func (k *Solution) Filter(p int, levels int) {
	t := k.ctx.Tree
	k.FilterExternal(t.Med[p], t.Quart[p], t.Oct[p], levels, nil)
}

// FilterExternal is the filter phase for a point identified by its path
// labels alone — typically a point outside the tree, routed through the
// retained pivots with Tree.Route. This is what turns an incremental insert
// into a single-point MDMC task: the shared static tree filters the new
// point exactly as it would have filtered a build-time point.
//
// leafAlive, if non-nil, reports whether tree leaf li still holds at least
// one live point. The filter's dominance claims quantify over every point
// of a node, so a node whose points have all been deleted proves nothing;
// with the callback set, the walk always descends to leaf granularity and
// skips fully-dead leaves.
func (k *Solution) FilterExternal(medP, quartP, octP mask.Mask, levels int, leafAlive func(li int) bool) {
	t := k.ctx.Tree
	for i1 := range t.L1 {
		n1 := t.L1[i1]
		// Dims where the node's points are strictly below the median and p
		// is not: every point of n1 strictly dominates p there.
		d1 := n1.Label &^ medP
		sameHalf := ^(n1.Label ^ medP)
		c := t.L1Child[i1]
		for i2 := c[0]; i2 < c[1]; i2++ {
			n2 := t.L2[i2]
			d2 := (n2.Label &^ quartP) & sameHalf
			total := d1 | d2
			lc := t.L2Child[i2]
			if levels >= 3 && t.Depth == 3 {
				sameQuarter := sameHalf & ^(n2.Label ^ quartP)
				for li := lc[0]; li < lc[1]; li++ {
					if leafAlive != nil && !leafAlive(int(li)) {
						continue
					}
					lf := t.Leaves[li]
					d3 := (lf.Label &^ octP) & sameQuarter
					k.SetStrict(total | d3)
				}
				continue
			}
			if leafAlive != nil {
				alive := false
				for li := lc[0]; li < lc[1]; li++ {
					if leafAlive(int(li)) {
						alive = true
						break
					}
				}
				if !alive {
					continue
				}
			}
			k.SetStrict(total)
		}
	}
}

// FilterLeafScan is the GPU-style filter (§6.2): a sequential scan of all
// leaves deriving the full three-level composite mask for each, which is
// stronger than the CPU's two-level filter but does more work. OnLeaf, if
// non-nil, is called per leaf for device accounting.
func (k *Solution) FilterLeafScan(p int, onLeaf func(leafLen int)) {
	t := k.ctx.Tree
	for _, lf := range t.Leaves {
		if onLeaf != nil {
			onLeaf(lf.Len())
		}
		k.SetStrict(t.CompositeStrict(int(lf.Start), p))
	}
}

// Refine is the refine hook: leaf scan with label-based skipping, exact
// DTs, and seen-mask memoisation. OnLeaf/OnDT, if non-nil, are called for
// device accounting (leaf visits and dominance tests respectively).
func (k *Solution) Refine(p int, memo bool) {
	k.RefineInstrumented(p, memo, nil, nil)
}

// RefineInstrumented is Refine with accounting callbacks.
func (k *Solution) RefineInstrumented(p int, memo bool, onLeaf func(skipped bool), onDT func()) {
	t := k.ctx.Tree
	ds := t.Data
	pp := ds.Point(p)
	full := mask.Full(k.ctx.D)
	// The block path needs exact per-DT accounting off (onDT == nil): a
	// sweep tests a whole chunk at once, so instrumented callers (the
	// hardware-counter and GPU-model experiments) keep the scalar loop.
	blocks := dom.BlocksEnabled() && t.Cols != nil
	for _, lf := range t.Leaves {
		if k.remaining == 0 {
			return
		}
		// Optimistic mask: dims on which leaf points might be ≤ p. If p is
		// already strictly dominated there, nothing new can come from this
		// leaf (every contribution is one of its submasks).
		optimistic := full &^ t.CompositeStrict(p, int(lf.Start))
		skip := optimistic == 0 || (memo && k.notInSPlus.Test(int(optimistic)-1))
		if onLeaf != nil {
			onLeaf(skip)
		}
		if skip {
			continue
		}
		if blocks && onDT == nil {
			if k.refineLeafBlocks(t, int(lf.Start), int(lf.End), p, pp, full, memo) {
				return
			}
			continue
		}
		for q := int(lf.Start); q < int(lf.End); q++ {
			if q == p {
				continue
			}
			if onDT != nil {
				onDT()
			}
			k.ApplyDT(ds.Point(q), pp, full, memo)
			if k.remaining == 0 {
				return
			}
		}
	}
}

// refineLeafBlocks applies the leaf range [lo, hi) to the solution through
// the SoA kernel: dom.CompareBlock computes the relationship masks of up to
// refineChunk leaf points per sweep over t.Cols, then each lane's masks are
// folded in with exactly the scalar path's per-point early-exit checks —
// the bitsets evolve identically to per-point ApplyDT calls. skip, when
// ≥ 0, is the sorted position of the task point itself (self-DTs convey
// nothing and the scalar path skips them). Reports whether remaining hit 0.
func (k *Solution) refineLeafBlocks(t *stree.Tree, lo, hi, skip int, pp []float32, full mask.Mask, memo bool) bool {
	for ; lo < hi; lo += refineChunk {
		end := lo + refineChunk
		if end > hi {
			end = hi
		}
		k.tally.Sweeps++
		dom.CompareBlock(t.Cols, lo, end, pp, k.relBuf[:end-lo])
		for i := 0; i < end-lo; i++ {
			if lo+i == skip {
				continue
			}
			k.ApplyRel(k.relBuf[i], full, memo)
			if k.remaining == 0 {
				return true
			}
		}
	}
	return false
}

// RefineExternal is the refine hook for a point outside the tree: exact
// DTs of the tree's points against coordinates pp, with the same
// optimistic-mask leaf skipping and seen-mask memoisation as Refine. The
// leaf-skip comparison runs on pp's routed path labels (Tree.Route), so an
// external point prunes exactly as well as a build-time one.
//
// alive, if non-nil, reports whether the point at sorted position q is
// still live; deleted points must not contribute dominance. Callers with
// live points outside the tree (later incremental inserts) extend the
// solution with ApplyDT per extra point, checking Remaining for early exit.
func (k *Solution) RefineExternal(pp []float32, medP, quartP, octP mask.Mask, memo bool, alive func(q int) bool) {
	t := k.ctx.Tree
	ds := t.Data
	full := mask.Full(k.ctx.D)
	// The block sweep has no per-lane liveness hook; with deletions pending
	// (alive != nil) the scalar loop runs instead.
	blocks := dom.BlocksEnabled() && t.Cols != nil && alive == nil
	for _, lf := range t.Leaves {
		if k.remaining == 0 {
			return
		}
		s := int(lf.Start)
		// Optimistic mask: dims on which leaf points might be ≤ p, from the
		// routed labels against the leaf representative's stored labels.
		optimistic := full &^ stree.CompositeStrictLabels(
			medP, quartP, octP, t.Med[s], t.Quart[s], t.Oct[s], t.Depth)
		if optimistic == 0 || (memo && k.notInSPlus.Test(int(optimistic)-1)) {
			continue
		}
		if blocks {
			if k.refineLeafBlocks(t, s, int(lf.End), -1, pp, full, memo) {
				return
			}
			continue
		}
		for q := s; q < int(lf.End); q++ {
			if alive != nil && !alive(q) {
				continue
			}
			k.ApplyDT(ds.Point(q), pp, full, memo)
			if k.remaining == 0 {
				return
			}
		}
	}
}

// ApplyDT performs one exact dominance test of q against p and folds the
// resulting masks into the solution bitsets.
func (k *Solution) ApplyDT(qq, pp []float32, full mask.Mask, memo bool) {
	var lt, eq mask.Mask
	for i := range pp {
		if qq[i] < pp[i] {
			lt |= 1 << uint(i)
		} else if qq[i] == pp[i] {
			eq |= 1 << uint(i)
		}
	}
	k.ApplyRel(dom.Rel{Lt: lt, Eq: eq}, full, memo)
}

// ApplyRel folds precomputed relationship masks of one DT (q's relation to
// p, as produced by dom.Compare/dom.CompareBlock) into the solution bitsets:
//
//   - every submask of B_{q<p} is strictly dominated;
//   - every submask δ of B_{q≤p} with at least one strict bit is dominated.
func (k *Solution) ApplyRel(r dom.Rel, full mask.Mask, memo bool) {
	lt := r.Lt
	m := (lt | r.Eq) & full
	if m == 0 || lt == 0 {
		return // q beats p nowhere, or only ties: no dominance anywhere
	}
	if memo && k.notInSPlus.Test(int(m)-1) {
		// p is strictly dominated in m, so every submask of m is already
		// recorded in both bitsets: q conveys no new information (§4.3).
		return
	}
	k.SetStrict(lt)
	// Non-strict contributions: submasks of m that intersect lt.
	mask.SubmasksOf(m, func(sub mask.Mask) bool {
		if sub&lt != 0 {
			k.setDominated(sub)
		}
		return true
	})
}
