package templates

import (
	"math/rand"
	"testing"

	"skycube/internal/bitset"
	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

// naiveNotInS computes B_{p∉S} for point pp directly: one dominance test
// per live point, bit δ−1 set iff some live point dominates pp in δ.
func naiveNotInS(ds *data.Dataset, alive func(row int) bool, pp []float32, d int) *bitset.Set {
	out := bitset.New(mask.NumSubspaces(d))
	for _, delta := range mask.Subspaces(d) {
		for q := 0; q < ds.N; q++ {
			if alive != nil && !alive(q) {
				continue
			}
			qq := ds.Point(q)
			dominates, strict := true, false
			for j := 0; j < d; j++ {
				if delta&(1<<uint(j)) == 0 {
					continue
				}
				if qq[j] > pp[j] {
					dominates = false
					break
				}
				if qq[j] < pp[j] {
					strict = true
				}
			}
			if dominates && strict {
				out.Set(int(delta) - 1)
				break
			}
		}
	}
	return out
}

// extSubset reduces ds to its own extended skyline, so that every row is in
// S⁺ and the MDMC tree covers the whole dataset — the precondition under
// which deletions inside the tree keep the external solve exact.
func extSubset(ds *data.Dataset, d int) *data.Dataset {
	ext := skyline.ExtendedSkyline(ds, nil, mask.Full(d), skyline.AlgoBNL, 1)
	rows := make([]int, len(ext))
	for i, r := range ext {
		rows[i] = int(r)
	}
	return ds.Subset(rows)
}

// An external point solved against the shared tree must get exactly the
// same non-membership mask a from-scratch scan over the full dataset
// yields — the tree holds only S⁺(P), but non-S⁺ dominance is implied.
func TestExternalSolveMatchesNaive(t *testing.T) {
	const d = 4
	ds := gen.Synthetic(gen.Independent, 600, d, 3)
	ctx := PrepareMDMC(ds, 2, 0, 0)
	rng := rand.New(rand.NewSource(5))
	sol := NewSolution(ctx)
	for trial := 0; trial < 50; trial++ {
		pp := make([]float32, d)
		for j := range pp {
			pp[j] = rng.Float32()
		}
		sol.Reset()
		med, quart, oct := ctx.Tree.Route(pp)
		sol.FilterExternal(med, quart, oct, 2, nil)
		sol.RefineExternal(pp, med, quart, oct, true, nil)
		want := naiveNotInS(ds, nil, pp, d)
		for bit := 0; bit < mask.NumSubspaces(d); bit++ {
			if sol.NotInS().Test(bit) != want.Test(bit) {
				t.Fatalf("trial %d: subspace δ=%d: got dominated=%v, want %v",
					trial, bit+1, sol.NotInS().Test(bit), want.Test(bit))
			}
		}
	}
}

// With tree points deleted, FilterExternal/RefineExternal must exclude
// their dominance via the liveness callbacks, and extra live points outside
// the tree (later inserts) fold in through ApplyDT.
func TestExternalSolveWithDeletesAndExtras(t *testing.T) {
	const d = 4
	base := extSubset(gen.Synthetic(gen.Anticorrelated, 400, d, 8), d)
	ctx := PrepareMDMC(base, 2, 0, 0)
	if ctx.NumTasks() != base.N {
		t.Fatalf("precondition: tree holds %d of %d rows", ctx.NumTasks(), base.N)
	}
	rng := rand.New(rand.NewSource(17))

	// Kill a third of the tree's points.
	dead := make([]bool, base.N) // indexed by sorted tree position
	for pos := 0; pos < base.N; pos++ {
		if rng.Intn(3) == 0 {
			dead[pos] = true
		}
	}
	leafAlive := func(li int) bool {
		lf := ctx.Tree.Leaves[li]
		for q := int(lf.Start); q < int(lf.End); q++ {
			if !dead[q] {
				return true
			}
		}
		return false
	}
	alive := func(q int) bool { return !dead[q] }

	// Extra live points the tree has never seen.
	extras := make([][]float32, 30)
	for i := range extras {
		pp := make([]float32, d)
		for j := range pp {
			pp[j] = rng.Float32()
		}
		extras[i] = pp
	}

	// Oracle dataset: live tree points in tree order, then the extras.
	var rows [][]float32
	for pos := 0; pos < base.N; pos++ {
		if !dead[pos] {
			rows = append(rows, ctx.Tree.Data.Point(pos))
		}
	}
	rows = append(rows, extras...)
	oracle := data.FromRows(rows)

	full := mask.Full(d)
	sol := NewSolution(ctx)
	for trial := 0; trial < 40; trial++ {
		pp := make([]float32, d)
		for j := range pp {
			pp[j] = rng.Float32()
		}
		sol.Reset()
		med, quart, oct := ctx.Tree.Route(pp)
		sol.FilterExternal(med, quart, oct, 2, leafAlive)
		sol.RefineExternal(pp, med, quart, oct, true, alive)
		for _, ex := range extras {
			if sol.Remaining() == 0 {
				break
			}
			sol.ApplyDT(ex, pp, full, true)
		}
		want := naiveNotInS(oracle, nil, pp, d)
		for bit := 0; bit < mask.NumSubspaces(d); bit++ {
			if sol.NotInS().Test(bit) != want.Test(bit) {
				t.Fatalf("trial %d: subspace δ=%d: got dominated=%v, want %v",
					trial, bit+1, sol.NotInS().Test(bit), want.Test(bit))
			}
		}
	}
}
