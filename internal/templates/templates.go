// Package templates implements the paper's three parallel skycube
// templates (§4) and their multicore CPU specialisations (§5).
//
// A template fixes the architecture-oblivious control flow and the static,
// read-only shared data structures; the parallel work is a declarative hook
// filled in per architecture:
//
//   - STSC — single-thread-single-cuboid (§4.2.1): cuboids of a lattice
//     level run concurrently, each computed by a *sequential* skyline
//     algorithm. Hook: a CuboidFunc.
//   - SDSC — single-device-single-cuboid (§4.2.2): cuboids run one at a
//     time per device, each computed by a *parallel* skyline algorithm.
//     Hook: a CuboidFunc.
//   - MDMC — multiple-device-multiple-cuboid (§4.3): one data-parallel task
//     per point of S⁺(P), computing that point's full non-membership
//     bitmask B_{p∉S} over a shared static tree, inserted into a HashCube.
//     Hooks: the filter and refine phases, packaged as a PointKernel.
//
// The CPU specialisations hook in the Hybrid skyline algorithm (STSC with
// one thread per cuboid, SDSC with all threads on one cuboid) and a
// cache-conscious filter/refine kernel for MDMC. GPU specialisations live
// in internal/gpu; cross-device composition in internal/hetero.
package templates

import (
	"skycube/internal/data"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
)

// Options configure the CPU specialisations.
type Options struct {
	// Threads is the worker count (physical cores in the paper's terms).
	Threads int
	// MaxLevel restricts materialisation to |δ| ≤ MaxLevel (App. A.2);
	// 0 means the full skycube.
	MaxLevel int
	// Trace, if non-nil, records level and cuboid spans (see internal/obs).
	Trace *obs.Trace
	// OnCuboid, if non-nil, is called after each cuboid completes — the
	// hook progress reporting and metrics ride on.
	OnCuboid func(delta mask.Mask)
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// STSCTemplate runs the single-thread-single-cuboid template with an
// arbitrary sequential cuboid hook.
func STSCTemplate(ds *data.Dataset, hook lattice.CuboidFunc, opt Options) *lattice.Lattice {
	return lattice.TopDown(ds, hook, lattice.TopDownOptions{
		CuboidThreads: opt.threads(),
		MaxLevel:      opt.MaxLevel,
		Trace:         opt.Trace,
		TrackPrefix:   "stsc",
		OnCuboid:      opt.OnCuboid,
	})
}

// SDSCTemplate runs the single-device-single-cuboid template with an
// arbitrary parallel cuboid hook: cuboids are computed serially (one device
// here; internal/hetero distributes cuboids across several devices).
func SDSCTemplate(ds *data.Dataset, hook lattice.CuboidFunc, opt Options) *lattice.Lattice {
	return lattice.TopDown(ds, hook, lattice.TopDownOptions{
		CuboidThreads: 1,
		MaxLevel:      opt.MaxLevel,
		Trace:         opt.Trace,
		TrackPrefix:   "sdsc",
		OnCuboid:      opt.OnCuboid,
	})
}

// STSC is the multicore specialisation of STSC: each thread computes whole
// cuboids with a single-threaded run of the Hybrid algorithm, whose
// compact, fixed-depth, array-based tree keeps concurrent queries from
// thrashing the shared cache the way the baseline's pointer trees do
// (paper §5.1).
func STSC(ds *data.Dataset, opt Options) *lattice.Lattice {
	return STSCTemplate(ds, HybridCuboid(1), opt)
}

// SDSC is the multicore specialisation of SDSC: one cuboid at a time,
// computed by Hybrid with all threads.
func SDSC(ds *data.Dataset, opt Options) *lattice.Lattice {
	return SDSCTemplate(ds, HybridCuboid(opt.threads()), opt)
}

// HybridCuboid returns a cuboid hook running the Hybrid skyline algorithm
// with the given thread count, adapted per §5.1 to produce the extended
// skyline alongside the skyline and to evaluate mask and dominance tests in
// the subspace.
func HybridCuboid(threads int) lattice.CuboidFunc {
	return SkylineCuboid(skyline.AlgoHybrid, threads)
}

// SkylineCuboid returns a cuboid hook backed by any of the skyline
// substrate's algorithms — the general form of the templates' pluggability
// claim (§4.2): new parallel skyline algorithms slot in without touching
// the traversal.
func SkylineCuboid(algo skyline.Algo, threads int) lattice.CuboidFunc {
	return func(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32) {
		res := skyline.Compute(ds, rows, delta, algo, threads)
		return res.Skyline, res.ExtOnly
	}
}

// SDSCWith runs the SDSC template with the named skyline algorithm as its
// hook (e.g. the PSkyline divide-and-conquer baseline).
func SDSCWith(ds *data.Dataset, algo skyline.Algo, opt Options) *lattice.Lattice {
	return SDSCTemplate(ds, SkylineCuboid(algo, opt.threads()), opt)
}
