package templates

import (
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/hashcube"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/qskycube"
	"skycube/internal/skyline"
)

func flightData() *data.Dataset {
	return data.FromRows([][]float32{
		{12.20, 17, 120}, // f0
		{9.00, 12, 148},  // f1
		{8.20, 13, 169},  // f2
		{21.25, 3, 186},  // f3
		{21.25, 5, 196},  // f4
	})
}

var flightSkylines = map[mask.Mask][]int32{
	0b100: {0}, 0b010: {3}, 0b001: {2},
	0b101: {0, 1, 2}, 0b110: {0, 1, 3}, 0b011: {1, 2, 3},
	0b111: {0, 1, 2, 3},
}

// checkLattice compares every cuboid of l against direct BNL computation.
func checkLattice(t *testing.T, name string, ds *data.Dataset, l *lattice.Lattice, maxLevel int) {
	t.Helper()
	for _, delta := range mask.Subspaces(ds.Dims) {
		if maxLevel > 0 && mask.Count(delta) > maxLevel {
			continue
		}
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("%s: S_%b = %v, want %v", name, delta, got, want.Skyline)
		}
	}
}

// checkCube compares every cuboid of an MDMC HashCube against BNL.
func checkCube(t *testing.T, name string, ds *data.Dataset, cube *hashcube.HashCube, maxLevel int) {
	t.Helper()
	for _, delta := range mask.Subspaces(ds.Dims) {
		if maxLevel > 0 && mask.Count(delta) > maxLevel {
			continue
		}
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := cube.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("%s: S_%b = %v, want %v", name, delta, got, want.Skyline)
		}
	}
}

func TestSTSCFlights(t *testing.T) {
	l := STSC(flightData(), Options{Threads: 2})
	for delta, want := range flightSkylines {
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want) {
			t.Errorf("S_%03b = %v, want %v", delta, got, want)
		}
	}
}

func TestMDMCFlights(t *testing.T) {
	res := MDMC(flightData(), MDMCOptions{Options: Options{Threads: 2}})
	for delta, want := range flightSkylines {
		if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want) {
			t.Errorf("S_%03b = %v, want %v", delta, got, want)
		}
	}
	// f4 is in S⁺(P) (it ties f3 on arrival) so all five flights are tasks.
	if len(res.ExtRows) != 5 {
		t.Errorf("|S⁺(P)| = %d, want 5", len(res.ExtRows))
	}
}

func TestAllAlgorithmsAgreeAcrossDistributions(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.Anticorrelated} {
		ds := gen.Synthetic(dist, 400, 5, 3)
		name := dist.String()
		checkLattice(t, name+"/QSkycube", ds, qskycube.Build(ds, qskycube.Options{Threads: 1}), 0)
		checkLattice(t, name+"/PQSkycube", ds, qskycube.Build(ds, qskycube.Options{Threads: 4}), 0)
		checkLattice(t, name+"/STSC", ds, STSC(ds, Options{Threads: 4}), 0)
		checkLattice(t, name+"/SDSC", ds, SDSC(ds, Options{Threads: 4}), 0)
		checkCube(t, name+"/MDMC", ds, MDMC(ds, MDMCOptions{Options: Options{Threads: 4}}).Cube, 0)
	}
}

func TestMDMCHigherDimensional(t *testing.T) {
	ds := gen.Synthetic(gen.Anticorrelated, 300, 8, 11)
	res := MDMC(ds, MDMCOptions{Options: Options{Threads: 4}})
	// Spot-check a sample of subspaces (all 255 would be slow with BNL).
	for _, delta := range []mask.Mask{1, 0b10000000, 0b10101010, 0b1111, 0b11110000, mask.Full(8)} {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("S_%08b = %v, want %v", delta, got, want.Skyline)
		}
	}
}

func TestMDMCAblationsStayCorrect(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 250, 5, 17)
	variants := []struct {
		name string
		opt  MDMCOptions
	}{
		{"no-filter", MDMCOptions{DisableFilter: true}},
		{"no-memo", MDMCOptions{DisableMemo: true}},
		{"depth-2", MDMCOptions{TreeDepth: 2}},
		{"filter-3-levels", MDMCOptions{FilterLevels: 3}},
		{"everything-off", MDMCOptions{DisableFilter: true, DisableMemo: true, TreeDepth: 2}},
	}
	for _, v := range variants {
		v.opt.Threads = 2
		checkCube(t, v.name, ds, MDMC(ds, v.opt).Cube, 0)
	}
}

func TestPartialSkycubes(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 200, 6, 23)
	const d1 = 3
	l := STSC(ds, Options{Threads: 2, MaxLevel: d1})
	checkLattice(t, "STSC-partial", ds, l, d1)
	for _, delta := range mask.Subspaces(6) {
		if mask.Count(delta) > d1 && l.Skyline(delta) != nil {
			t.Errorf("STSC materialised δ=%b above MaxLevel", delta)
		}
	}
	res := MDMC(ds, MDMCOptions{Options: Options{Threads: 2, MaxLevel: d1}})
	checkCube(t, "MDMC-partial", ds, res.Cube, d1)
}

func TestMDMCSkipsFullyDominatedPoints(t *testing.T) {
	// A point strictly dominated in the full space is in no subspace
	// skyline; MDMC must not even create a task for it.
	ds := data.FromRows([][]float32{
		{0.1, 0.1}, {0.9, 0.9}, {0.05, 0.5},
	})
	res := MDMC(ds, MDMCOptions{})
	if len(res.ExtRows) != 2 {
		t.Fatalf("|S⁺| = %d, want 2 (row 1 excluded)", len(res.ExtRows))
	}
	for _, delta := range mask.Subspaces(2) {
		for _, id := range res.Cube.Skyline(delta) {
			if id == 1 {
				t.Errorf("dominated row 1 appears in S_%b", delta)
			}
		}
	}
}

func TestSTSCAndSDSCShareResults(t *testing.T) {
	ds := gen.Synthetic(gen.Anticorrelated, 600, 4, 31)
	ls := STSC(ds, Options{Threads: 3})
	ld := SDSC(ds, Options{Threads: 3})
	for _, delta := range mask.Subspaces(4) {
		if !reflect.DeepEqual(ls.Skyline(delta), ld.Skyline(delta)) {
			t.Errorf("ST and SD disagree on δ=%b", delta)
		}
		if !reflect.DeepEqual(ls.ExtOnly[delta], ld.ExtOnly[delta]) {
			t.Errorf("ST and SD extended sets disagree on δ=%b", delta)
		}
	}
}

func TestRunMDMCChunkAccounting(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 300, 4, 41)
	ctx := PrepareMDMC(ds, 2, 3, 0)
	var total int64
	done := make(chan int64, 64)
	RunMDMC(ctx, CPUPointKernel(MDMCOptions{}), 3, func(n int) { done <- int64(n) })
	close(done)
	for n := range done {
		total += n
	}
	if total != int64(ctx.NumTasks()) {
		t.Errorf("chunks accounted %d tasks, want %d", total, ctx.NumTasks())
	}
	checkCube(t, "RunMDMC", ds, ctx.Cube, 0)
}

func TestDuplicateHeavyData(t *testing.T) {
	// Covertype-style low-cardinality data: many ties exercise the
	// strict/non-strict distinction everywhere.
	rows := make([][]float32, 300)
	for i := range rows {
		rows[i] = []float32{
			float32(i % 3), float32((i / 3) % 3), float32((i / 9) % 3),
		}
	}
	ds := data.FromRows(rows)
	checkLattice(t, "STSC-lowcard", ds, STSC(ds, Options{Threads: 2}), 0)
	checkCube(t, "MDMC-lowcard", ds, MDMC(ds, MDMCOptions{Options: Options{Threads: 2}}).Cube, 0)
}
