package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	trace := NewTraceID()
	span := NewSpanID()
	h := Traceparent(trace, span)
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("Traceparent = %q, want 00-...-01", h)
	}
	if len(h) != 55 {
		t.Fatalf("Traceparent length %d, want 55", len(h))
	}
	gotTrace, gotSpan, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", h)
	}
	if gotTrace != trace {
		t.Errorf("trace id round trip: got %s, want %s", gotTrace, trace)
	}
	if gotSpan != span {
		t.Errorf("span id round trip: got %s, want %s", gotSpan, span)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	good := Traceparent(NewTraceID(), NewSpanID())
	bad := []string{
		"",
		"00-abc",
		strings.Replace(good, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + "-" + good[36:52] + "-01", // zero trace id
		good[:36] + strings.Repeat("0", 16) + "-01",                 // zero span id
		"00-" + strings.Repeat("zz", 16) + "-" + good[36:52] + "-01",
		good[:54], // truncated
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
	if _, _, ok := ParseTraceparent(good); !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", good)
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%s) = %s, %v", id, got, ok)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted, want reject", bad)
		}
	}
}

func TestIDsNeverZero(t *testing.T) {
	for i := 0; i < 100; i++ {
		if NewTraceID() == (TraceID{}) {
			t.Fatal("NewTraceID returned the zero id")
		}
		if NewSpanID() == (SpanID{}) {
			t.Fatal("NewSpanID returned the zero id")
		}
	}
}

func TestSampler(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatal("NewSampler(0) should be nil (never sampling)")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler sampled")
	}
	s := NewSampler(3)
	var admitted []int
	for i := 0; i < 9; i++ {
		if s.Sample() {
			admitted = append(admitted, i)
		}
	}
	want := []int{0, 3, 6}
	if len(admitted) != len(want) {
		t.Fatalf("Sample admitted %v, want %v", admitted, want)
	}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("Sample admitted %v, want %v", admitted, want)
		}
	}
	// every=1 admits everything.
	all := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !all.Sample() {
			t.Fatal("SampleEvery=1 rejected a request")
		}
	}
}
