package obs

// SchedMetrics bundles the metric families of the adaptive cross-device
// scheduler (internal/hetero): steal and refill counters plus the live
// chunk-size and throughput gauges each device's queue is tuned by. A nil
// *SchedMetrics is valid everywhere and records nothing, mirroring the
// nil-trace fast path, so the scheduler hot loop pays one pointer test per
// event when metrics are off.
type SchedMetrics struct {
	reg *Registry
}

// NewSchedMetrics wires scheduler metrics into reg; a nil registry yields a
// nil (no-op) bundle.
func NewSchedMetrics(reg *Registry) *SchedMetrics {
	if reg == nil {
		return nil
	}
	return &SchedMetrics{reg: reg}
}

// Steal records one steal of tasks point tasks by thief from victim's queue.
func (m *SchedMetrics) Steal(thief, victim string, tasks int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_sched_steals_total",
		"Work-stealing events between device queues.",
		"thief", thief, "victim", victim).Inc()
	m.reg.CounterM("skycube_sched_stolen_tasks_total",
		"Point tasks moved between device queues by stealing.",
		"thief", thief).Add(float64(tasks))
}

// Refill records one refill of a device queue from the global grab counter.
func (m *SchedMetrics) Refill(device string, tasks int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_sched_refills_total",
		"Device-queue refills from the global grab counter.",
		"device", device).Inc()
}

// Retune records a chunk-size adjustment and exposes the new size.
func (m *SchedMetrics) Retune(device string, chunk int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_sched_retunes_total",
		"Chunk-size retunes driven by the per-device throughput EWMA.",
		"device", device).Inc()
	m.reg.GaugeM("skycube_sched_chunk_size",
		"Current auto-tuned grab size of the device's queue.",
		"device", device).Set(float64(chunk))
}

// Rate exposes the device's current EWMA throughput in tasks per second.
func (m *SchedMetrics) Rate(device string, perSec float64) {
	if m == nil {
		return
	}
	m.reg.GaugeM("skycube_sched_task_rate",
		"EWMA point-task throughput of the device (tasks/s).",
		"device", device).Set(perSec)
}
