package obs

import "time"

// WALMetrics bundles the metric families of the durability subsystem
// (internal/wal): append/fsync throughput, group-commit batching,
// checkpoint and recovery timings, and torn-tail truncations. A nil
// *WALMetrics is valid everywhere and records nothing.
type WALMetrics struct {
	reg *Registry
}

// NewWALMetrics wires WAL metrics into reg; a nil registry yields a nil
// (no-op) bundle.
func NewWALMetrics(reg *Registry) *WALMetrics {
	if reg == nil {
		return nil
	}
	return &WALMetrics{reg: reg}
}

// Append records one framed record appended to the log and its on-disk
// size (frame header included).
func (m *WALMetrics) Append(bytes int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_wal_appended_records_total",
		"Records appended to the write-ahead log.").Inc()
	m.reg.CounterM("skycube_wal_appended_bytes_total",
		"Bytes appended to the write-ahead log, frame headers included.").Add(float64(bytes))
}

// Fsync records one fsync of the active segment and how many records the
// group commit made durable with it (0 for policy-driven syncs that found
// nothing new).
func (m *WALMetrics) Fsync(records int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_wal_fsyncs_total",
		"fsync calls on the active WAL segment.").Inc()
	m.reg.HistogramM("skycube_wal_fsync_seconds",
		"Wall time of one WAL fsync.", nil).Observe(dur.Seconds())
	m.reg.HistogramM("skycube_wal_group_commit_records",
		"Records made durable per group commit (fsync batch size).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}).Observe(float64(records))
}

// Checkpoint records one completed epoch-snapshot checkpoint: its wall
// time, the snapshot file size, and how many obsolete WAL segments the
// log truncation deleted.
func (m *WALMetrics) Checkpoint(dur time.Duration, bytes int64, truncatedSegments int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_wal_checkpoints_total",
		"Epoch-snapshot checkpoints completed.").Inc()
	m.reg.HistogramM("skycube_wal_checkpoint_seconds",
		"Wall time of one checkpoint (serialize, fsync, rename, truncate).", nil).Observe(dur.Seconds())
	m.reg.GaugeM("skycube_wal_snapshot_bytes",
		"Size of the latest snapshot file.").Set(float64(bytes))
	m.reg.CounterM("skycube_wal_truncated_segments_total",
		"WAL segments deleted by checkpoint log truncation.").Add(float64(truncatedSegments))
}

// Recovery records one completed crash recovery: snapshot load + tail
// replay wall time, the number of records replayed, and the epoch the
// node recovered to.
func (m *WALMetrics) Recovery(dur time.Duration, replayed int, epoch uint64) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_wal_recoveries_total",
		"Crash recoveries completed (snapshot load + WAL tail replay).").Inc()
	m.reg.CounterM("skycube_wal_replayed_records_total",
		"WAL records replayed during recovery.").Add(float64(replayed))
	m.reg.HistogramM("skycube_wal_recovery_seconds",
		"Wall time of one recovery.", nil).Observe(dur.Seconds())
	m.reg.GaugeM("skycube_wal_recovered_epoch",
		"Epoch the latest recovery restored.").Set(float64(epoch))
}

// TornTail records a torn final record truncated during recovery (a
// crash mid-append; expected, recovered from, but worth counting).
func (m *WALMetrics) TornTail(droppedBytes int64) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_wal_torn_tail_truncations_total",
		"Torn final records truncated from the WAL tail during recovery.").Inc()
	m.reg.CounterM("skycube_wal_torn_tail_bytes_total",
		"Bytes dropped by torn-tail truncations.").Add(float64(droppedBytes))
}
