package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request-level distributed tracing: each sampled request owns one
// ReqRecord — the hop's identity (trace/span id), its wall-clock interval,
// and a list of typed Events (replica attempts, hedges, retries, breaker
// rejections, cache dispositions, merge, encode) appended by whatever layer
// handles part of the request. Records are published into a bounded
// lock-free RequestRing the moment the request starts, so GET
// /debug/requests shows in-flight requests too, and a record is findable by
// trace id while its query is still fanning out.
//
// The ring is a power-of-two array of atomic pointers with a monotonically
// increasing write cursor: Add is an atomic increment plus a pointer store
// (no lock, no allocation beyond the record itself), old records are
// overwritten in FIFO order, and readers snapshot through the record's own
// mutex — an in-flight record's events are appended under that mutex, so a
// concurrent snapshot sees a consistent prefix.

// Event kinds. Strings rather than an enum so layers can mint new kinds
// without touching this package; sharing these constants keeps /debug and
// explain output consistent.
const (
	EvAttempt       = "attempt"        // one HTTP attempt against a replica
	EvHedge         = "hedge"          // hedge launched against a second replica
	EvRetry         = "retry"          // backoff retry launched
	EvBreakerReject = "breaker_reject" // no replica's breaker admitted a request
	EvShardResult   = "shard_result"   // accepted shard response (N = candidates)
	EvCache         = "cache"          // cache disposition (Detail: hit-*, miss, bypass)
	EvCuboid        = "cuboid"         // shard-local cuboid extraction (N = rows)
	EvMerge         = "merge"          // coordinator dominance-filter merge (N = kept)
	EvEncode        = "encode"         // response encode (Bytes = body length)
	EvPrefilter     = "prefilter"      // representative-point pre-round (N = filter points)
	EvPrune         = "prune"          // shard-side filtered candidates (N = dropped)
	EvPruneSkip     = "prune_skip"     // whole shard skipped, region dominated (N = skipped count)
	EvPruneFallback = "prune_fallback" // pruned gather abandoned (Detail: reason)
)

// Event is one typed, timed occurrence within a request. Start is the
// offset from the owning record's start; Dur may be zero for instantaneous
// events. All fields are optional except Kind.
type Event struct {
	Kind    string        `json:"kind"`
	Shard   string        `json:"shard,omitempty"`
	Replica string        `json:"replica,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	Hedge   bool          `json:"hedge,omitempty"`
	Start   time.Duration `json:"start_ns"`
	Dur     time.Duration `json:"dur_ns,omitempty"`
	N       int64         `json:"n,omitempty"`
	Bytes   int64         `json:"bytes,omitempty"`
	Epoch   uint64        `json:"epoch,omitempty"`
	Err     string        `json:"error,omitempty"`
}

// ReqRecord is one hop's trace record. A nil *ReqRecord is valid everywhere
// and records nothing — untraced requests pay one nil test per would-be
// event, mirroring the nil-trace fast path of the build tracer.
type ReqRecord struct {
	traceID TraceID
	spanID  SpanID
	kind    string // "coordinator", "shard", "node"
	method  string
	path    string
	query   string
	start   time.Time

	mu     sync.Mutex
	events []Event
	status int
	dur    time.Duration
	done   bool
}

// NewRecord starts a hop record now. kind labels the serving layer; trace
// is the propagated id (mint with NewTraceID when this hop is the root).
// A fresh span id is minted for the hop.
func NewRecord(kind string, trace TraceID, method, path, query string) *ReqRecord {
	return &ReqRecord{
		traceID: trace,
		spanID:  NewSpanID(),
		kind:    kind,
		method:  method,
		path:    path,
		query:   query,
		start:   time.Now(),
	}
}

// TraceID returns the hop's trace id ("" for nil).
func (r *ReqRecord) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID.String()
}

// Traceparent renders the header value to propagate to the next hop
// ("" for nil).
func (r *ReqRecord) Traceparent() string {
	if r == nil {
		return ""
	}
	return Traceparent(r.traceID, r.spanID)
}

// Start returns the hop's wall-clock start (zero for nil).
func (r *ReqRecord) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Since returns the current offset from the record's start (0 for nil) —
// the Start value events should carry.
func (r *ReqRecord) Since() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Event appends one event. Safe on nil and for concurrent use.
func (r *ReqRecord) Event(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Finish seals the record with the response status and total duration.
func (r *ReqRecord) Finish(status int) {
	if r == nil {
		return
	}
	d := time.Since(r.start)
	r.mu.Lock()
	r.status = status
	r.dur = d
	r.done = true
	r.mu.Unlock()
}

// Duration returns the sealed duration, or the live elapsed time while the
// request is still in flight.
func (r *ReqRecord) Duration() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.dur
	}
	return time.Since(r.start)
}

// RecordSnapshot is the JSON form of a record: what /debug/requests serves
// and what the coordinator's cross-process trace assembly consumes from
// shard rings.
type RecordSnapshot struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	Kind     string    `json:"kind"`
	Method   string    `json:"method"`
	Path     string    `json:"path"`
	Query    string    `json:"query,omitempty"`
	Status   int       `json:"status,omitempty"`
	InFlight bool      `json:"in_flight,omitempty"`
	Start    time.Time `json:"start"`
	// Dur is nanoseconds: the sealed duration, or elapsed-so-far in flight.
	Dur    time.Duration `json:"dur_ns"`
	Events []Event       `json:"events,omitempty"`
}

// Snapshot copies the record into its serialisable form. An in-flight
// record reports its elapsed time so far and InFlight true.
func (r *ReqRecord) Snapshot() RecordSnapshot {
	if r == nil {
		return RecordSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RecordSnapshot{
		TraceID:  r.traceID.String(),
		SpanID:   r.spanID.String(),
		Kind:     r.kind,
		Method:   r.method,
		Path:     r.path,
		Query:    r.query,
		Status:   r.status,
		InFlight: !r.done,
		Start:    r.start,
		Dur:      r.dur,
		Events:   append([]Event(nil), r.events...),
	}
	if !r.done {
		s.Dur = time.Since(r.start)
	}
	return s
}

// RequestRing is the bounded ring of recent (and in-flight) request
// records. A nil ring is valid and records nothing.
type RequestRing struct {
	slots []atomic.Pointer[ReqRecord]
	mask  uint64
	pos   atomic.Uint64
}

// DefaultRingSize bounds a ring constructed with size ≤ 0.
const DefaultRingSize = 256

// NewRequestRing returns a ring holding the most recent `size` records
// (rounded up to a power of two; DefaultRingSize when ≤ 0).
func NewRequestRing(size int) *RequestRing {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &RequestRing{slots: make([]atomic.Pointer[ReqRecord], n), mask: uint64(n - 1)}
}

// Add publishes a record (typically at request start, so in-flight requests
// are inspectable). No-op on a nil ring.
func (g *RequestRing) Add(rec *ReqRecord) {
	if g == nil || rec == nil {
		return
	}
	i := g.pos.Add(1) - 1
	g.slots[i&g.mask].Store(rec)
}

// Snapshot returns up to limit records, newest first (all resident records
// when limit ≤ 0). trace, when non-empty, filters to records of that trace
// id.
func (g *RequestRing) Snapshot(trace string, limit int) []RecordSnapshot {
	if g == nil {
		return nil
	}
	end := g.pos.Load()
	n := uint64(len(g.slots))
	if limit <= 0 || uint64(limit) > n {
		limit = int(n)
	}
	out := make([]RecordSnapshot, 0, limit)
	for i := uint64(0); i < n && len(out) < limit; i++ {
		rec := g.slots[(end-1-i)&g.mask].Load()
		if rec == nil {
			continue
		}
		if trace != "" && rec.traceID.String() != trace {
			continue
		}
		out = append(out, rec.Snapshot())
	}
	return out
}

// Find returns the most recent resident record with the given trace id, nil
// if none.
func (g *RequestRing) Find(trace string) *ReqRecord {
	if g == nil {
		return nil
	}
	end := g.pos.Load()
	for i := uint64(0); i < uint64(len(g.slots)); i++ {
		rec := g.slots[(end-1-i)&g.mask].Load()
		if rec != nil && rec.traceID.String() == trace {
			return rec
		}
	}
	return nil
}

// ringResponse is the /debug/requests payload.
type ringResponse struct {
	Requests []RecordSnapshot `json:"requests"`
}

// Handler serves the ring as JSON: GET /debug/requests[?trace=<32hex>]
// [&limit=N], newest first.
func (g *RequestRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		limit := 0
		if l := q.Get("limit"); l != "" {
			v, err := strconv.Atoi(l)
			if err != nil || v < 0 {
				http.Error(w, "bad limit "+strconv.Quote(l), http.StatusBadRequest)
				return
			}
			limit = v
		}
		resp := ringResponse{Requests: g.Snapshot(q.Get("trace"), limit)}
		if resp.Requests == nil {
			resp.Requests = []RecordSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// DecodeRequests parses a /debug/requests body — the coordinator uses it to
// ingest shard hop records when assembling a cross-process trace.
func DecodeRequests(body []byte) ([]RecordSnapshot, error) {
	var resp ringResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return resp.Requests, nil
}

// recordKey is the context key carrying the request's ReqRecord.
type recordKey struct{}

// WithRecord stashes rec in ctx so lower layers (the fan-out client, cache
// lookups) can append events without signature changes.
func WithRecord(ctx context.Context, rec *ReqRecord) context.Context {
	return context.WithValue(ctx, recordKey{}, rec)
}

// RecordFrom returns the request's record, nil when the request is not
// traced. The nil return composes with ReqRecord's nil-safe methods: an
// untraced path costs a context lookup and a nil test.
func RecordFrom(ctx context.Context) *ReqRecord {
	rec, _ := ctx.Value(recordKey{}).(*ReqRecord)
	return rec
}

// SnapshotSpans converts a hop snapshot into build-tracer spans on the
// given track, offset by base (the hop's start relative to the root hop's
// start): one span covering the whole hop, plus one span per timed event.
// Feeding the spans of every hop of a trace into WriteChromeSpans yields
// the stitched cross-process timeline.
func SnapshotSpans(s RecordSnapshot, base time.Duration, track string) []Span {
	name := s.Method + " " + s.Path
	if s.Query != "" {
		name += "?" + s.Query
	}
	spans := []Span{{Track: track, Cat: CatServe, Name: name, Start: base, Dur: s.Dur}}
	for _, e := range s.Events {
		sp := Span{
			Track: track,
			Cat:   e.Kind,
			Name:  eventName(e),
			Start: base + e.Start,
			Dur:   e.Dur,
			N:     e.N,
		}
		spans = append(spans, sp)
	}
	return spans
}

// eventName derives a human-readable span name from an event's fields.
func eventName(e Event) string {
	name := e.Kind
	switch {
	case e.Replica != "":
		name += " " + e.Replica
	case e.Shard != "":
		name += " " + e.Shard
	}
	if e.Detail != "" {
		name += " [" + e.Detail + "]"
	}
	if e.Hedge {
		name += " (hedge)"
	}
	if e.Err != "" {
		name += " ERR"
	}
	return name
}
