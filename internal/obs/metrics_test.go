package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.CounterM("builds_total", "number of builds")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %v", c.Value())
	}
	if r.CounterM("builds_total", "") != c {
		t.Error("get-or-create should return the same instance")
	}
	g := r.GaugeM("temp", "", "device", "980-1")
	g.Set(1.5)
	g.Add(-0.5)
	if g.Value() != 1 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.CounterM("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramM("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 56.05`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusOutputLabelsAndOrder(t *testing.T) {
	r := NewRegistry()
	r.CounterM("tasks_total", "tasks per device", "device", "CPU0").Add(10)
	r.CounterM("tasks_total", "", "device", "980-1").Add(20)
	r.GaugeM("alpha", "a gauge").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `tasks_total{device="CPU0"} 10`) ||
		!strings.Contains(out, `tasks_total{device="980-1"} 20`) {
		t.Errorf("label output wrong:\n%s", out)
	}
	if !strings.Contains(out, "# HELP tasks_total tasks per device") {
		t.Errorf("missing help:\n%s", out)
	}
	// Families sort by name: alpha before tasks_total.
	if strings.Index(out, "alpha") > strings.Index(out, "tasks_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
	if err := (*Registry)(nil).WritePrometheus(&buf); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterM("m", "", "path", `a"b\c`).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `m{path="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}

func TestMistypedFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterM("x", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	r.GaugeM("x", "")
}
