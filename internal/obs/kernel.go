package obs

import "sync"

// KernelMetrics exports the process-wide dominance-kernel counters
// (internal/dom.KernelStats) as Prometheus families. The kernels themselves
// only bump cheap process atomics — this bundle converts their cumulative
// values into counter families at scrape time via Sync, so the hot loops
// never touch the registry. A nil *KernelMetrics is valid and records
// nothing, like the other bundles.
type KernelMetrics struct {
	reg *Registry

	mu                      sync.Mutex
	sweeps, stops, scalarFB uint64 // last synced cumulative values
}

// NewKernelMetrics wires kernel metrics into reg; a nil registry yields a
// nil (no-op) bundle.
func NewKernelMetrics(reg *Registry) *KernelMetrics {
	if reg == nil {
		return nil
	}
	return &KernelMetrics{reg: reg}
}

// Sync folds the current cumulative kernel counters into the registry,
// adding only the growth since the previous Sync. Callers pass the raw
// values (this package cannot import internal/dom — dom sits below obs in
// the dependency order) — typically dom.KernelStats() at /metrics scrape
// time.
func (m *KernelMetrics) Sync(sweeps, stops, scalarFB uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	dSweeps := sweeps - m.sweeps
	dStops := stops - m.stops
	dFB := scalarFB - m.scalarFB
	m.sweeps, m.stops, m.scalarFB = sweeps, stops, scalarFB
	m.mu.Unlock()
	if dSweeps > 0 {
		m.reg.CounterM("skycube_kernel_block_sweeps_total",
			"64-lane block dominance sweeps executed by the SoA kernels.").
			Add(float64(dSweeps))
	}
	if dStops > 0 {
		m.reg.CounterM("skycube_kernel_stop_point_exits_total",
			"Block scans terminated early by a sorted stop point.").
			Add(float64(dStops))
	}
	if dFB > 0 {
		m.reg.CounterM("skycube_kernel_scalar_fallbacks_total",
			"Dominance filters that ran the scalar path with block kernels enabled (input below the block threshold or instrumented caller).").
			Add(float64(dFB))
	}
}
