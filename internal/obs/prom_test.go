package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusConformance checks the text exposition against the
// format's structural rules: HELP/TYPE precede samples, histogram buckets
// are cumulative and ascending in le, the +Inf bucket exists and equals
// _count, _sum and _count are present, and label values are escaped.
func TestWritePrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.CounterM("conf_requests_total", "Requests.", "path", "/skyline", "code", "200").Add(3)
	r.GaugeM("conf_temp", "Temperature.").Set(-1.5)
	h := r.HistogramM("conf_latency_seconds", "Latency.", []float64{0.1, 0.5, 2}, "path", "/x")
	for _, v := range []float64{0.05, 0.3, 0.3, 1.9, 10} {
		h.Observe(v)
	}
	// Label values needing escaping: backslash, quote, newline.
	r.CounterM("conf_escaped_total", "Escaping.", "k", `a\b"c`+"\nd").Inc()

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// No OpenMetrics exemplar syntax in the default exposition.
	if strings.Contains(out, "} # {") || strings.Contains(out, "# {trace_id") {
		t.Errorf("default exposition leaked exemplar syntax:\n%s", out)
	}

	typeSeen := map[string]string{}
	samplesSeen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typeSeen[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		// Sample line: name{...} value — its family's TYPE must already
		// have been written.
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typeSeen[family]; !ok {
			t.Errorf("sample %q precedes its TYPE line", line)
		}
		samplesSeen[name] = true
		// The value must parse as a float.
		fields := strings.Fields(line)
		if _, err := strconv.ParseFloat(fields[len(fields)-1], 64); err != nil {
			t.Errorf("sample value does not parse in %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"conf_requests_total", "conf_temp",
		"conf_latency_seconds_bucket", "conf_latency_seconds_sum", "conf_latency_seconds_count",
		"conf_escaped_total",
	} {
		if !samplesSeen[want] {
			t.Errorf("missing samples for %s\n%s", want, out)
		}
	}

	// Histogram structure: cumulative counts, ascending le, +Inf == _count.
	var bounds []string
	var counts []int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "conf_latency_seconds_bucket") {
			continue
		}
		i := strings.Index(line, `le="`)
		if i < 0 {
			t.Fatalf("bucket line without le label: %q", line)
		}
		rest := line[i+4:]
		j := strings.Index(rest, `"`)
		bounds = append(bounds, rest[:j])
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		counts = append(counts, n)
	}
	wantBounds := []string{"0.1", "0.5", "2", "+Inf"}
	if fmt.Sprint(bounds) != fmt.Sprint(wantBounds) {
		t.Fatalf("bucket bounds %v, want %v", bounds, wantBounds)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != 5 {
		t.Fatalf("+Inf bucket = %d, want 5 (every observation)", counts[len(counts)-1])
	}
	if !strings.Contains(out, "conf_latency_seconds_count{path=\"/x\"} 5") {
		t.Errorf("_count sample missing or wrong:\n%s", out)
	}

	// Escaping: backslash, quote and newline must be escaped in the label
	// value, and no raw newline may split the sample line.
	if !strings.Contains(out, `k="a\\b\"c\nd"`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramM("ex_latency_seconds", "Latency.", []float64{0.1, 1}, "path", "/skyline")
	h.ObserveExemplar(0.05, "aabbccdd00112233aabbccdd00112233")
	h.ObserveExemplar(0.5, "ffeeddcc00112233ffeeddcc00112233")
	h.ObserveExemplar(30, "0123456789abcdef0123456789abcdef") // +Inf bucket
	h.ObserveExemplar(0.06, "")                               // empty id: plain Observe

	if trace, v, ok := h.Exemplar(0); !ok || trace != "aabbccdd00112233aabbccdd00112233" || v != 0.05 {
		t.Fatalf("bucket 0 exemplar = %q %v %v", trace, v, ok)
	}
	if trace, _, ok := h.Exemplar(2); !ok || trace != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("+Inf exemplar = %q %v", trace, ok)
	}
	if _, _, ok := h.Exemplar(99); ok {
		t.Fatal("out-of-range bucket returned an exemplar")
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}

	// Default exposition: clean. Exemplar exposition: OpenMetrics suffix.
	var plain, withEx strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") {
		t.Errorf("WritePrometheus leaked exemplars:\n%s", plain.String())
	}
	if err := r.WritePrometheusExemplars(&withEx); err != nil {
		t.Fatal(err)
	}
	want := ` # {trace_id="aabbccdd00112233aabbccdd00112233"} 0.05`
	if !strings.Contains(withEx.String(), want) {
		t.Errorf("exemplar suffix %q missing from:\n%s", want, withEx.String())
	}
}
