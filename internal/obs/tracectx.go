package obs

import (
	"encoding/hex"
	"math/rand"
	"strings"
	"sync/atomic"
)

// Distributed trace identity, W3C Trace Context style. The coordinator
// mints a TraceID per sampled query and propagates it to shard and node
// servers in a `traceparent` request header
// ("00-<32 hex trace id>-<16 hex span id>-01"), so one query's hops can be
// found — and stitched back together — across processes by the id alone.
//
// Ids only need to be unique, not unguessable, so they come from math/rand
// rather than crypto/rand: minting must stay cheap enough to sit on the
// sampled serving path.

// TraceparentHeader is the propagation header name (lower-case per the
// W3C Trace Context recommendation; Go's header lookup is case-insensitive).
const TraceparentHeader = "Traceparent"

// TraceID identifies one distributed request end-to-end.
type TraceID [16]byte

// SpanID identifies one hop (one process's handling) within a trace.
type SpanID [8]byte

// IsZero reports an unset id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lower-case hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lower-case hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID mints a random trace id (never zero).
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], rand.Uint64())
		putUint64(t[8:], rand.Uint64())
	}
	return t
}

// NewSpanID mints a random span id (never zero).
func NewSpanID() SpanID {
	var s SpanID
	for s == (SpanID{}) {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
}

// Traceparent renders the W3C header value for (trace, span) with the
// sampled flag set — a hop is only ever labelled when it is being recorded.
func Traceparent(t TraceID, s SpanID) string {
	var b strings.Builder
	b.Grow(2 + 1 + 32 + 1 + 16 + 1 + 2)
	b.WriteString("00-")
	b.WriteString(t.String())
	b.WriteByte('-')
	b.WriteString(s.String())
	b.WriteString("-01")
	return b.String()
}

// ParseTraceparent extracts the trace and parent-span ids from a
// traceparent header value. Unknown versions are accepted as long as the
// field layout matches (per the spec's forward-compatibility rule);
// malformed values report false.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, false
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, false
	}
	if t.IsZero() || s == (SpanID{}) {
		return t, s, false
	}
	return t, s, true
}

// ParseTraceID parses a bare 32-hex-digit trace id (the /trace/query?id=
// form).
func ParseTraceID(h string) (TraceID, bool) {
	var t TraceID
	if len(h) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(h)); err != nil {
		return t, false
	}
	return t, !t.IsZero()
}

// Sampler admits every Nth request into tracing. A nil Sampler, or one
// constructed with every ≤ 0, never samples — that is the configuration the
// 0-alloc hot-path guard runs under. Sample is one atomic add, no
// allocation, safe for concurrent use.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler admitting one request in every `every`;
// every ≤ 0 returns nil (sampling off).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this request is admitted. The first request is
// always admitted (so `every` larger than the traffic seen still yields a
// trace), then every `every`th after it.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return (s.n.Add(1)-1)%s.every == 0
}
