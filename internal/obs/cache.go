package obs

// CacheMetrics bundles the skycube_cache_* families of the materialized
// read path (internal/rcache): hits, misses, singleflight coalesces,
// evictions, conditional-request 304s and bytes served, all labelled by
// serving layer ("node", "shard", "coordinator"). A nil *CacheMetrics is
// valid everywhere and records nothing.
//
// Unlike the other bundles, every handle is resolved once at construction:
// the cache-hit path is the hottest read path in the system and must not
// pay the registry's map lookup — or any allocation — per request.
type CacheMetrics struct {
	hits        *Counter
	misses      *Counter
	coalesced   *Counter
	evictions   *Counter
	notModified *Counter
	bytes       *Counter
	entries     *Gauge
}

// NewCacheMetrics wires cache metrics for one serving layer into reg; a nil
// registry yields a nil (no-op) bundle.
func NewCacheMetrics(reg *Registry, layer string) *CacheMetrics {
	if reg == nil {
		return nil
	}
	return &CacheMetrics{
		hits: reg.CounterM("skycube_cache_hits_total",
			"Materialized read-path cache hits (responses served as pre-encoded bytes).",
			"layer", layer),
		misses: reg.CounterM("skycube_cache_misses_total",
			"Materialized read-path cache misses (response computed and encoded).",
			"layer", layer),
		coalesced: reg.CounterM("skycube_cache_coalesced_total",
			"Requests that waited on another request's in-flight fill (singleflight).",
			"layer", layer),
		evictions: reg.CounterM("skycube_cache_evictions_total",
			"Cache entries evicted by the LRU bound.",
			"layer", layer),
		notModified: reg.CounterM("skycube_cache_not_modified_total",
			"Conditional requests answered 304 Not Modified via If-None-Match.",
			"layer", layer),
		bytes: reg.CounterM("skycube_cache_bytes_served_total",
			"Response bytes served straight from the cache.",
			"layer", layer),
		entries: reg.GaugeM("skycube_cache_entries",
			"Entries currently resident in the cache.",
			"layer", layer),
	}
}

// Hit records one cache hit serving n pre-encoded bytes.
func (m *CacheMetrics) Hit(n int) {
	if m == nil {
		return
	}
	m.hits.Inc()
	m.bytes.Add(float64(n))
}

// Miss records one cache miss (the caller computed and encoded the entry).
func (m *CacheMetrics) Miss() {
	if m == nil {
		return
	}
	m.misses.Inc()
}

// Coalesce records one request that piggybacked on an in-flight fill.
func (m *CacheMetrics) Coalesce() {
	if m == nil {
		return
	}
	m.coalesced.Inc()
}

// Evict records one LRU eviction.
func (m *CacheMetrics) Evict() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

// NotModified records one If-None-Match match answered 304.
func (m *CacheMetrics) NotModified() {
	if m == nil {
		return
	}
	m.notModified.Inc()
}

// Resident reports the current entry count.
func (m *CacheMetrics) Resident(n int) {
	if m == nil {
		return
	}
	m.entries.Set(float64(n))
}

// Snapshot counters for tests (a nil bundle reports zeros).

// Hits returns the hit counter's value.
func (m *CacheMetrics) Hits() float64 {
	if m == nil {
		return 0
	}
	return m.hits.Value()
}

// Misses returns the miss counter's value.
func (m *CacheMetrics) Misses() float64 {
	if m == nil {
		return 0
	}
	return m.misses.Value()
}

// Coalesced returns the singleflight-coalesce counter's value.
func (m *CacheMetrics) Coalesced() float64 {
	if m == nil {
		return 0
	}
	return m.coalesced.Value()
}
