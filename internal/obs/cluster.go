package obs

import "time"

// ClusterMetrics bundles the metric families of the scatter-gather cluster
// tier (internal/cluster): per-shard fan-out latency, hedge/retry/breaker
// counters and the merge filter ratio. A nil *ClusterMetrics is valid
// everywhere and records nothing, mirroring the nil-trace fast path.
type ClusterMetrics struct {
	reg *Registry
}

// NewClusterMetrics wires cluster metrics into reg; a nil registry yields a
// nil (no-op) bundle.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	if reg == nil {
		return nil
	}
	return &ClusterMetrics{reg: reg}
}

// Fanout records one shard's contribution to a scatter-gather query: the
// wall time from dispatch to an accepted response (across retries and
// hedges), and whether the shard ultimately answered.
func (m *ClusterMetrics) Fanout(shard string, dur time.Duration, ok bool) {
	if m == nil {
		return
	}
	m.reg.HistogramM("skycube_cluster_fanout_seconds",
		"Per-shard scatter-gather latency, dispatch to accepted response.",
		nil, "shard", shard).Observe(dur.Seconds())
	if !ok {
		m.reg.CounterM("skycube_cluster_shard_failures_total",
			"Scatter-gather sub-requests that exhausted every replica.",
			"shard", shard).Inc()
	}
}

// Hedge records a hedged read being launched, and whether the hedge (the
// late request to the second replica) was the one that answered first.
func (m *ClusterMetrics) Hedge(shard string, won bool) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_hedges_total",
		"Hedged reads launched against a second replica.", "shard", shard).Inc()
	if won {
		m.reg.CounterM("skycube_cluster_hedge_wins_total",
			"Hedged reads where the hedge beat the primary.", "shard", shard).Inc()
	}
}

// Retry records one retry attempt against a shard's replica set.
func (m *ClusterMetrics) Retry(shard string) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_retries_total",
		"Retries of failed sub-requests (after backoff).", "shard", shard).Inc()
}

// Breaker records a circuit-breaker state change for one replica. state is
// 0 closed, 1 open, 2 half-open (the gauge makes the current state
// scrapeable; opens are additionally counted).
func (m *ClusterMetrics) Breaker(replica string, state int) {
	if m == nil {
		return
	}
	m.reg.GaugeM("skycube_cluster_breaker_state",
		"Replica circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		"replica", replica).Set(float64(state))
	if state == 1 {
		m.reg.CounterM("skycube_cluster_breaker_opens_total",
			"Circuit-breaker open transitions.", "replica", replica).Inc()
	}
}

// Merge records one coordinator merge: how many candidate ids the shards
// returned and how many survived the final dominance filter. The ratio
// kept/candidates is the merge filter ratio — how much of the shard-local
// superset was real.
func (m *ClusterMetrics) Merge(candidates, kept int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_merge_candidates_total",
		"Shard-local candidate ids gathered before the final dominance filter.").Add(float64(candidates))
	m.reg.CounterM("skycube_cluster_merge_kept_total",
		"Ids surviving the final dominance filter (global skyline members).").Add(float64(kept))
	if candidates > 0 {
		m.reg.GaugeM("skycube_cluster_merge_filter_ratio",
			"kept/candidates of the latest merge: 1 means shard-local results were already exact.").
			Set(float64(kept) / float64(candidates))
	}
}

// Pruned records one shard's source-side pruning outcome within a pruned
// gather: how many local skyline members the shard dropped before replying
// (filtered), against how many it considered. Filtered points are bytes that
// never crossed the wire — the saving is credited here using the caller's
// estimate of the per-point wire cost.
func (m *ClusterMetrics) Pruned(shard string, considered, filtered, bytesSaved int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_pruned_points_total",
		"Shard-local skyline points dropped source-side by region/filter pruning.",
		"shard", shard).Add(float64(filtered))
	m.reg.CounterM("skycube_cluster_prune_considered_total",
		"Shard-local skyline points considered by the pruned gather (shipped + filtered + skipped).",
		"shard", shard).Add(float64(considered))
	if bytesSaved > 0 {
		m.reg.CounterM("skycube_cluster_bytes_saved_total",
			"Estimated response bytes avoided by source-side pruning and shard skips.").
			Add(float64(bytesSaved))
	}
}

// ShardSkipped records a whole-shard skip: the prelude proved the shard's
// entire remaining region dominated (or empty), so its cuboid was never
// requested. count is the shard's local skyline size the coordinator
// avoided shipping; bytesSaved is the caller's estimate of the body bytes
// that never crossed the wire.
func (m *ClusterMetrics) ShardSkipped(shard string, count, bytesSaved int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_shards_skipped_total",
		"Gather sub-requests skipped entirely because the shard's region was dominated.",
		"shard", shard).Inc()
	m.reg.CounterM("skycube_cluster_pruned_points_total",
		"Shard-local skyline points dropped source-side by region/filter pruning.",
		"shard", shard).Add(float64(count))
	if bytesSaved > 0 {
		m.reg.CounterM("skycube_cluster_bytes_saved_total",
			"Estimated response bytes avoided by source-side pruning and shard skips.").
			Add(float64(bytesSaved))
	}
}

// Prefilter records one representative-point pre-round: how many filter
// points the merged broadcast set carried.
func (m *ClusterMetrics) Prefilter(points int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_prefilter_rounds_total",
		"Representative-point pre-rounds executed before the main gather.").Inc()
	m.reg.CounterM("skycube_cluster_prefilter_points_total",
		"Representative points broadcast in pre-filter rounds.").Add(float64(points))
}

// PruneFallback records the pruned gather abandoning its prelude and falling
// back to the plain unpruned path. reason is one of "prelude_error",
// "epoch_mismatch", "gather_error".
func (m *ClusterMetrics) PruneFallback(reason string) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_prune_fallbacks_total",
		"Pruned gathers that fell back to the unpruned path, by reason.",
		"reason", reason).Inc()
}

// Query records one coordinator query end-to-end: total latency and whether
// the response was complete or explicitly partial (a whole shard down).
func (m *ClusterMetrics) Query(dur time.Duration, partial bool) {
	m.QueryTraced(dur, partial, "")
}

// QueryTraced is Query with the sampled query's trace id attached as the
// latency bucket's exemplar, so a p99 bucket on the metrics page names a
// concrete trace inspectable via /debug/requests and /trace/query.
func (m *ClusterMetrics) QueryTraced(dur time.Duration, partial bool, traceID string) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_cluster_queries_total",
		"Scatter-gather skyline queries served by the coordinator.").Inc()
	m.reg.HistogramM("skycube_cluster_query_seconds",
		"End-to-end coordinator query latency (scatter, gather, merge).", nil).
		ObserveExemplar(dur.Seconds(), traceID)
	if partial {
		m.reg.CounterM("skycube_cluster_partial_responses_total",
			"Queries answered with an explicit partial result (a shard had no live replica).").Inc()
	}
}
