package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	h := tr.Begin("x", CatChunk, "nop")
	h.SetN(7)
	h.End()
	tr.Record("x", CatChunk, "nop", time.Millisecond, 1)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Now() != 0 {
		t.Fatal("nil trace should record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-trace chrome export is not valid JSON: %v", err)
	}
}

// fakeClock is a deterministic trace time source: each test advances it
// explicitly, so timing assertions are exact instead of sleep-based.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) advance(d time.Duration) { c.now += d }
func (c *fakeClock) trace() *Trace           { return newWithClock(func() time.Duration { return c.now }) }

func TestBeginEndRecordsSpan(t *testing.T) {
	clk := &fakeClock{}
	tr := clk.trace()
	clk.advance(3 * time.Millisecond)
	h := tr.Begin("cpu-0", CatCuboid, "δ=101")
	h.SetN(42)
	clk.advance(time.Millisecond)
	h.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Track != "cpu-0" || s.Cat != CatCuboid || s.Name != "δ=101" || s.N != 42 {
		t.Errorf("span = %+v", s)
	}
	if s.Start != 3*time.Millisecond || s.Dur != time.Millisecond {
		t.Errorf("span timing = [%v +%v], want [3ms +1ms]", s.Start, s.Dur)
	}
}

func TestRecordBackdates(t *testing.T) {
	clk := &fakeClock{}
	tr := clk.trace()
	clk.advance(2 * time.Millisecond)
	tr.Record("980-1", CatChunk, "points", time.Millisecond, 256)
	s := tr.Spans()[0]
	if s.Dur != s.End()-s.Start {
		t.Errorf("end arithmetic wrong: %+v", s)
	}
	if s.Start != time.Millisecond || s.Dur != time.Millisecond {
		t.Errorf("backdated span = [%v +%v], want [1ms +1ms]", s.Start, s.Dur)
	}
	// A duration longer than the trace's lifetime clamps to the epoch.
	tr.Record("980-1", CatChunk, "clamped", time.Hour, 1)
	for _, sp := range tr.Spans() {
		if sp.Start < 0 {
			t.Errorf("span starts before epoch: %+v", sp)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h := tr.Begin("w", CatChunk, "c")
				h.SetN(1)
				h.End()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != goroutines*perG {
		t.Fatalf("recorded %d spans, want %d", tr.Len(), goroutines*perG)
	}
	var n int64
	for _, s := range tr.Spans() {
		n += s.N
	}
	if n != goroutines*perG {
		t.Fatalf("span N sum = %d", n)
	}
}

func TestSpansSortedAndTracks(t *testing.T) {
	tr := New()
	tr.Record("b", CatChunk, "x", time.Microsecond, 0)
	tr.Record("a", CatChunk, "y", time.Microsecond, 0)
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %v", tracks)
	}
}

func TestCoverage(t *testing.T) {
	tr := New()
	// Two overlapping spans covering [0, 10ms) and [5ms, 20ms) of a 20ms
	// total: full coverage despite overlap.
	tr.record(Span{Track: "t", Cat: CatLevel, Name: "a", Start: 0, Dur: 10 * time.Millisecond})
	tr.record(Span{Track: "t", Cat: CatLevel, Name: "b", Start: 5 * time.Millisecond, Dur: 15 * time.Millisecond})
	if c := tr.Coverage(CatLevel, 20*time.Millisecond); c < 0.999 {
		t.Errorf("coverage = %v, want ~1", c)
	}
	// A gap in [10, 15) leaves 75%.
	tr2 := New()
	tr2.record(Span{Cat: CatLevel, Start: 0, Dur: 10 * time.Millisecond})
	tr2.record(Span{Cat: CatLevel, Start: 15 * time.Millisecond, Dur: 5 * time.Millisecond})
	if c := tr2.Coverage("", 20*time.Millisecond); c < 0.74 || c > 0.76 {
		t.Errorf("coverage = %v, want 0.75", c)
	}
	if c := (*Trace)(nil).Coverage("", time.Second); c != 0 {
		t.Errorf("nil coverage = %v", c)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	h := tr.Begin("CPU0", CatCuboid, "δ=11")
	h.SetN(3)
	h.End()
	tr.Record("980-1", CatChunk, "points", time.Millisecond, 256)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				names[ev.Args["name"].(string)] = true
			}
		case "X":
			complete++
			if ev.TID == 0 {
				t.Errorf("complete event with unassigned tid: %+v", ev)
			}
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if !names["CPU0"] || !names["980-1"] {
		t.Errorf("thread names = %v", names)
	}
}

// BenchmarkSpanNilTrace measures the nil-trace fast path: the cost an
// instrumented hot path pays when tracing is off.
func BenchmarkSpanNilTrace(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := tr.Begin("w", CatChunk, "c")
		h.SetN(64)
		h.End()
	}
}

// BenchmarkSpanActiveTrace is the comparison point with tracing on.
func BenchmarkSpanActiveTrace(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := tr.Begin("w", CatChunk, "c")
		h.SetN(64)
		h.End()
	}
}
