package obs

import "time"

// DeltaMetrics bundles the metric families of the incremental-maintenance
// subsystem (internal/delta): batch/epoch counters, overlay pressure and
// compaction timings. A nil *DeltaMetrics is valid everywhere and records
// nothing, mirroring the nil-trace fast path.
type DeltaMetrics struct {
	reg *Registry
}

// NewDeltaMetrics wires delta metrics into reg; a nil registry yields a nil
// (no-op) bundle.
func NewDeltaMetrics(reg *Registry) *DeltaMetrics {
	if reg == nil {
		return nil
	}
	return &DeltaMetrics{reg: reg}
}

// Batch records one applied delta batch: its insert/delete counts, how many
// cuboids the deletes forced to recompute, and the apply wall time.
func (m *DeltaMetrics) Batch(inserts, deletes, recomputed int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_delta_batches_total",
		"Delta batches applied by the updater.").Inc()
	m.reg.CounterM("skycube_delta_inserts_total",
		"Points inserted through delta batches.").Add(float64(inserts))
	m.reg.CounterM("skycube_delta_deletes_total",
		"Points deleted through delta batches.").Add(float64(deletes))
	m.reg.CounterM("skycube_delta_recomputed_cuboids_total",
		"Cuboids recomputed because a deleted point was a skyline member.").Add(float64(recomputed))
	m.reg.HistogramM("skycube_delta_apply_seconds",
		"Wall time to apply one delta batch.", nil).Observe(dur.Seconds())
}

// Epoch exposes the snapshot just published: its epoch number, live point
// count and overlay size (the compaction trigger's numerator).
func (m *DeltaMetrics) Epoch(epoch uint64, live, overlay int) {
	if m == nil {
		return
	}
	m.reg.GaugeM("skycube_delta_epoch",
		"Epoch of the current MVCC snapshot.").Set(float64(epoch))
	m.reg.GaugeM("skycube_delta_live_points",
		"Live points in the current snapshot.").Set(float64(live))
	m.reg.GaugeM("skycube_delta_overlay_entries",
		"Overlay entries (tombstones, masks, cuboid overrides) above the base cube.").Set(float64(overlay))
}

// Compaction records one completed compaction: the full-rebuild wall time
// and the size of the new base.
func (m *DeltaMetrics) Compaction(dur time.Duration, basePoints int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_delta_compactions_total",
		"Background/forced compactions (full rebuilds folding the overlay into a new base).").Inc()
	m.reg.HistogramM("skycube_delta_compaction_seconds",
		"Wall time of one compaction rebuild.", nil).Observe(dur.Seconds())
	m.reg.GaugeM("skycube_delta_base_points",
		"Live points in the base cube produced by the latest compaction.").Set(float64(basePoints))
}
