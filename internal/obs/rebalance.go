package obs

import "time"

// RebalanceMetrics bundles the metric families of the elastic-membership
// control plane (internal/rebalance and the cluster admin surface):
// snapshot-stream transfers, tail replication, catch-up progress, shard-map
// swaps and ownership pruning. A nil *RebalanceMetrics is valid everywhere
// and records nothing.
type RebalanceMetrics struct {
	reg *Registry
}

// NewRebalanceMetrics wires rebalance metrics into reg; a nil registry
// yields a nil (no-op) bundle.
func NewRebalanceMetrics(reg *Registry) *RebalanceMetrics {
	if reg == nil {
		return nil
	}
	return &RebalanceMetrics{reg: reg}
}

// SnapshotServed records one snapshot stream served to a joining replica.
func (m *RebalanceMetrics) SnapshotServed(bytes int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_snapshots_served_total",
		"Snapshot streams served to bootstrapping replicas.").Inc()
	m.reg.CounterM("skycube_rebalance_snapshot_bytes_served_total",
		"Snapshot bytes served to bootstrapping replicas.").Add(float64(bytes))
	m.reg.HistogramM("skycube_rebalance_snapshot_serve_seconds",
		"Wall time of serving one snapshot stream (checkpoint included).", nil).Observe(dur.Seconds())
}

// TailServed records one tail-feed response and how many records it
// carried.
func (m *RebalanceMetrics) TailServed(records int, bytes int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_tail_requests_total",
		"WAL-tail feed requests served.").Inc()
	m.reg.CounterM("skycube_rebalance_tail_records_served_total",
		"WAL records served over the tail feed.").Add(float64(records))
	m.reg.CounterM("skycube_rebalance_tail_bytes_served_total",
		"Framed tail bytes served over the tail feed.").Add(float64(bytes))
}

// Bootstrap records one completed replica bootstrap: snapshot fetch,
// directory materialization and local recovery.
func (m *RebalanceMetrics) Bootstrap(dur time.Duration, snapshotBytes int, tailRecords int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_bootstraps_total",
		"Replica bootstraps completed from a peer's snapshot stream.").Inc()
	m.reg.HistogramM("skycube_rebalance_bootstrap_seconds",
		"Wall time of one snapshot-streamed bootstrap.", nil).Observe(dur.Seconds())
	m.reg.CounterM("skycube_rebalance_bootstrap_bytes_total",
		"Snapshot bytes fetched by bootstraps.").Add(float64(snapshotBytes))
	m.reg.CounterM("skycube_rebalance_bootstrap_tail_records_total",
		"Tail records applied during bootstraps.").Add(float64(tailRecords))
}

// CatchUp records one tail catch-up round against a peer and whether it
// reached the peer's durable frontier.
func (m *RebalanceMetrics) CatchUp(records int, caughtUp bool) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_catchup_rounds_total",
		"Tail catch-up rounds pulled from a peer.").Inc()
	m.reg.CounterM("skycube_rebalance_catchup_records_total",
		"WAL records applied by tail catch-up.").Add(float64(records))
	if caughtUp {
		m.reg.CounterM("skycube_rebalance_catchup_converged_total",
			"Catch-up rounds that reached the peer's frontier.").Inc()
	}
}

// MapSwap records one shard-map generation swap and the new topology size.
func (m *RebalanceMetrics) MapSwap(gen uint64, shards int) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_map_swaps_total",
		"Shard-map generation swaps (join, split, drain cutover).").Inc()
	m.reg.GaugeM("skycube_rebalance_map_generation",
		"Current shard-map generation.").Set(float64(gen))
	m.reg.GaugeM("skycube_rebalance_map_shards",
		"Shard groups in the current map.").Set(float64(shards))
}

// StaleGen records one request answered 409 for carrying an outdated map
// generation (the sender refreshes its map and retries).
func (m *RebalanceMetrics) StaleGen() {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_stale_generation_total",
		"Requests rejected for carrying a stale shard-map generation.").Inc()
}

// Prune records one ownership prune pass on a shard: points examined and
// points deleted because the ring assigns them elsewhere.
func (m *RebalanceMetrics) Prune(examined, deleted int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reg.CounterM("skycube_rebalance_prunes_total",
		"Ownership prune passes completed after a cutover.").Inc()
	m.reg.CounterM("skycube_rebalance_pruned_points_total",
		"Points deleted by ownership pruning (now owned by another shard).").Add(float64(deleted))
	m.reg.CounterM("skycube_rebalance_prune_examined_total",
		"Live points examined by ownership pruning.").Add(float64(examined))
	m.reg.HistogramM("skycube_rebalance_prune_seconds",
		"Wall time of one ownership prune pass.", nil).Observe(dur.Seconds())
}
