package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families — counters, gauges and histograms,
// optionally labelled — and serialises them in the Prometheus text
// exposition format. Metric handles are get-or-create: the same
// (name, labels) pair always returns the same instance, so hot paths can
// resolve a handle once and update it with a single atomic operation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	mu              sync.Mutex
	series          map[string]any // rendered label string -> *Counter etc.
	order           []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// labelString renders variadic key/value pairs as a stable, escaped
// Prometheus label block ("" for no labels).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(p.v)
		fmt.Fprintf(&b, `%s="%s"`, p.k, v)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v must be ≥ 0).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. Each bucket
// additionally retains the most recent exemplar observed into it — a
// (value, trace id) pair — so a suspicious latency bucket points at a
// concrete inspectable trace instead of an anonymous count.
type Histogram struct {
	upper  []float64 // ascending upper bounds (excluding +Inf)
	counts []atomic.Int64
	// ex holds one exemplar per bucket plus one for the +Inf overflow.
	ex    []atomic.Pointer[exemplar]
	count atomic.Int64
	sum   Gauge
}

// exemplar is one concrete observation attached to a bucket: the observed
// value and the trace id of the request that produced it.
type exemplar struct {
	value   float64
	traceID string
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Int64, len(buckets)),
		ex:     make([]atomic.Pointer[exemplar], len(buckets)+1),
	}
}

// bucketOf returns the index of the bucket v falls into (len(upper) for the
// +Inf overflow).
func (h *Histogram) bucketOf(v float64) int {
	for i, b := range h.upper {
		if v <= b {
			return i
		}
	}
	return len(h.upper)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if i := h.bucketOf(v); i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one observation and attaches the producing
// request's trace id as the bucket's exemplar. An empty trace id degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		h.ex[h.bucketOf(v)].Store(&exemplar{value: v, traceID: traceID})
	}
	h.Observe(v)
}

// Exemplar returns the trace id and value attached to the bucket with the
// given index (len(upper) addresses the +Inf bucket); ok reports whether
// one has been recorded.
func (h *Histogram) Exemplar(bucket int) (traceID string, value float64, ok bool) {
	if bucket < 0 || bucket >= len(h.ex) {
		return "", 0, false
	}
	e := h.ex[bucket].Load()
	if e == nil {
		return "", 0, false
	}
	return e.traceID, e.value, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are latency buckets in seconds, spanning 1 µs to ~100 s —
// wide enough for both a skyline lookup and a full skycube build. The
// sub-100 µs bounds (1/10/50 µs) exist for the materialized read path:
// warm-cache reads complete in hundreds of nanoseconds to tens of
// microseconds, and without them every cache win collapsed
// indistinguishably into the first bucket.
var DefBuckets = []float64{
	1e-06, 1e-05, 5e-05,
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1,
	.25, .5, 1, 2.5, 5, 10, 25, 50, 100,
}

// CounterM returns the counter for (name, labels), creating it on first
// use. Labels are alternating key/value pairs.
func (r *Registry) CounterM(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter", nil)
	return f.get(labelString(labels), func() any { return &Counter{} }).(*Counter)
}

// GaugeM returns the gauge for (name, labels), creating it on first use.
func (r *Registry) GaugeM(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, "gauge", nil)
	return f.get(labelString(labels), func() any { return &Gauge{} }).(*Gauge)
}

// HistogramM returns the histogram for (name, labels), creating it on
// first use with the family's bucket bounds (DefBuckets if buckets is nil
// on first registration).
func (r *Registry) HistogramM(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, "histogram", buckets)
	return f.get(labelString(labels), func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// WritePrometheus serialises every family in the text exposition format,
// families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WritePrometheusExemplars serialises like WritePrometheus but appends
// OpenMetrics-style exemplars ("# {trace_id=...} value") to histogram
// bucket lines that have one. Classic Prometheus text-format scrapers do
// not understand the suffix, so it is opt-in (/metrics?exemplars=1) rather
// than the default exposition.
func (r *Registry) WritePrometheusExemplars(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, exemplars bool) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		series := make(map[string]any, len(f.series))
		for k, v := range f.series {
			series[k] = v
		}
		f.mu.Unlock()
		for _, key := range order {
			if err := writeSeries(w, f, key, series[key], exemplars); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, key string, s any, exemplars bool) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %v\n", f.name, key, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %v\n", f.name, key, m.Value())
		return err
	case *Histogram:
		// Cumulative buckets, then +Inf, sum and count, with the le label
		// merged into any existing label block.
		var cum int64
		for i, ub := range m.upper {
			cum += m.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				f.name, mergeLabel(key, "le", formatBound(ub)), cum,
				exemplarSuffix(m, i, exemplars)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			f.name, mergeLabel(key, "le", "+Inf"), m.Count(),
			exemplarSuffix(m, len(m.upper), exemplars)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", f.name, key, m.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, m.Count())
		return err
	}
	return nil
}

// exemplarSuffix renders a bucket's exemplar in OpenMetrics syntax, "" when
// exemplars are off or the bucket has none.
func exemplarSuffix(m *Histogram, bucket int, enabled bool) string {
	if !enabled {
		return ""
	}
	trace, value, ok := m.Exemplar(bucket)
	if !ok {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s"} %g`, trace, value)
}

// formatBound renders a bucket bound the way Prometheus clients do: the
// shortest representation that round-trips.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// mergeLabel inserts k="v" into an existing rendered label block.
func mergeLabel(block, k, v string) string {
	pair := fmt.Sprintf(`%s="%s"`, k, v)
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}
