package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata events naming the threads). The file loads into
// about://tracing or https://ui.perfetto.dev, rendering a device/worker
// timeline in the style of the paper's Figure 12.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serialises the trace in Chrome trace_event JSON. Each track
// becomes one named thread of a single process; spans become complete
// ("X") events with microsecond timestamps relative to the trace epoch.
// A nil trace writes an empty (but valid) trace file.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return WriteChromeSpans(w, nil)
	}
	return WriteChromeSpans(w, t.Spans())
}

// WriteChromeSpans serialises an explicit span list in Chrome trace_event
// JSON — the same rendering WriteChrome gives a build trace, but usable for
// spans assembled from elsewhere, such as the distributed request records
// stitched across coordinator and shard hops. Tracks become threads in
// order of first appearance; an empty or nil list writes a valid empty
// trace file.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tid := map[string]int{}
	for _, s := range spans {
		if _, ok := tid[s.Track]; ok {
			continue
		}
		i := len(tid)
		tid[s.Track] = i + 1
		file.TraceEvents = append(file.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
				Args: map[string]any{"name": s.Track}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: i + 1,
				Args: map[string]any{"sort_index": i}},
		)
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  tid[s.Track],
		}
		if s.N != 0 {
			ev.Args = map[string]any{"n": s.N}
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
