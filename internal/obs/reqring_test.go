package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestRingNewestFirstAndOverwrite(t *testing.T) {
	ring := NewRequestRing(4)
	var recs []*ReqRecord
	for i := 0; i < 6; i++ {
		rec := NewRecord("node", NewTraceID(), "GET", "/skyline", "dims=0")
		rec.Finish(200)
		ring.Add(rec)
		recs = append(recs, rec)
	}
	snaps := ring.Snapshot("", 0)
	if len(snaps) != 4 {
		t.Fatalf("ring of 4 holds %d records", len(snaps))
	}
	// Newest first: records 5,4,3,2; 0 and 1 overwritten.
	for i, want := range []*ReqRecord{recs[5], recs[4], recs[3], recs[2]} {
		if snaps[i].TraceID != want.TraceID() {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snaps[i].TraceID, want.TraceID())
		}
	}
	if got := ring.Find(recs[5].TraceID()); got != recs[5] {
		t.Fatal("Find missed a resident record")
	}
	if got := ring.Find(recs[0].TraceID()); got != nil {
		t.Fatal("Find returned an overwritten record")
	}
}

func TestRequestRingInFlightVisible(t *testing.T) {
	ring := NewRequestRing(8)
	rec := NewRecord("coordinator", NewTraceID(), "GET", "/skyline", "dims=0,1")
	ring.Add(rec) // published before the request finishes
	rec.Event(Event{Kind: EvAttempt, Shard: "0", Replica: "http://a", Start: rec.Since()})
	snaps := ring.Snapshot(rec.TraceID(), 0)
	if len(snaps) != 1 {
		t.Fatalf("got %d records, want 1", len(snaps))
	}
	s := snaps[0]
	if !s.InFlight {
		t.Error("unfinished record not marked in_flight")
	}
	if s.Dur <= 0 {
		t.Error("in-flight record should report elapsed time")
	}
	if len(s.Events) != 1 || s.Events[0].Kind != EvAttempt {
		t.Errorf("events = %+v, want one attempt", s.Events)
	}
	rec.Finish(206)
	s = rec.Snapshot()
	if s.InFlight || s.Status != 206 {
		t.Errorf("after Finish: in_flight=%v status=%d", s.InFlight, s.Status)
	}
}

func TestNilRecordAndRingAreNoops(t *testing.T) {
	var rec *ReqRecord
	var ring *RequestRing
	rec.Event(Event{Kind: EvMerge})
	rec.Finish(200)
	ring.Add(rec)
	if rec.TraceID() != "" || rec.Traceparent() != "" || rec.Since() != 0 || rec.Duration() != 0 {
		t.Fatal("nil record leaked state")
	}
	if got := ring.Snapshot("", 0); got != nil {
		t.Fatal("nil ring snapshot not nil")
	}
	if ring.Find("x") != nil {
		t.Fatal("nil ring Find not nil")
	}
}

func TestRingHandler(t *testing.T) {
	ring := NewRequestRing(8)
	a := NewRecord("node", NewTraceID(), "GET", "/skyline", "dims=0")
	a.Finish(200)
	b := NewRecord("node", NewTraceID(), "GET", "/membership", "id=3")
	b.Finish(404)
	ring.Add(a)
	ring.Add(b)

	// Full listing, newest first.
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	snaps, err := DecodeRequests(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeRequests: %v", err)
	}
	if len(snaps) != 2 || snaps[0].TraceID != b.TraceID() || snaps[1].TraceID != a.TraceID() {
		t.Fatalf("handler listing wrong: %+v", snaps)
	}

	// Trace filter.
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?trace="+a.TraceID(), nil))
	snaps, _ = DecodeRequests(rec.Body.Bytes())
	if len(snaps) != 1 || snaps[0].TraceID != a.TraceID() {
		t.Fatalf("trace filter returned %+v", snaps)
	}

	// Limit.
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?limit=1", nil))
	snaps, _ = DecodeRequests(rec.Body.Bytes())
	if len(snaps) != 1 {
		t.Fatalf("limit=1 returned %d records", len(snaps))
	}

	// Bad verbs and params.
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/requests", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?limit=x", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", rec.Code)
	}
}

func TestRecordContextPlumbing(t *testing.T) {
	if RecordFrom(context.Background()) != nil {
		t.Fatal("empty context carried a record")
	}
	rec := NewRecord("shard", NewTraceID(), "GET", "/shard/cuboid", "subspace=3")
	ctx := WithRecord(context.Background(), rec)
	if RecordFrom(ctx) != rec {
		t.Fatal("record lost in context")
	}
}

func TestSnapshotSpansAndChromeExport(t *testing.T) {
	rec := NewRecord("coordinator", NewTraceID(), "GET", "/skyline", "dims=0,1")
	rec.Event(Event{Kind: EvAttempt, Shard: "0", Replica: "http://a", Start: time.Millisecond, Dur: 2 * time.Millisecond})
	rec.Event(Event{Kind: EvMerge, Start: 4 * time.Millisecond, Dur: time.Millisecond, N: 7})
	rec.Finish(200)
	snap := rec.Snapshot()

	spans := SnapshotSpans(snap, 10*time.Millisecond, "coordinator")
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (overall + 2 events)", len(spans))
	}
	if spans[0].Track != "coordinator" || !strings.Contains(spans[0].Name, "GET /skyline?dims=0,1") {
		t.Errorf("overall span = %+v", spans[0])
	}
	if spans[0].Start != 10*time.Millisecond {
		t.Errorf("base offset not applied: start %v", spans[0].Start)
	}
	if spans[1].Start != 11*time.Millisecond {
		t.Errorf("event offset: got %v, want 11ms", spans[1].Start)
	}
	if spans[2].N != 7 {
		t.Errorf("merge span N = %d, want 7", spans[2].N)
	}

	var buf strings.Builder
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatalf("WriteChromeSpans: %v", err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &file); err != nil {
		t.Fatalf("chrome output is not JSON: %v", err)
	}
	// 2 metadata events for the one track + 3 "X" events.
	if len(file.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(file.TraceEvents))
	}
}
