// Package obs is the observability substrate of the skycube system: a
// dependency-free tracing and metrics library threaded through every build
// path (the templates, the lattice traversal, the device scheduler) and
// exposed over the HTTP server.
//
// The design constraints come from the hot paths it instruments:
//
//   - A *Trace may be nil, and every method is a nil-receiver no-op, so a
//     build without tracing pays only a pointer test per would-be span —
//     the "nil-trace fast path".
//   - Recording is lock-cheap under STSC/SDSC/MDMC concurrency: spans land
//     in one of 64 shards chosen by an atomic round-robin counter, so the
//     per-shard mutexes are nearly uncontended even with every core
//     pulling 64-point MDMC chunks.
//   - Timestamps are monotonic offsets from the trace epoch (time.Since on
//     the epoch's monotonic clock), so spans from concurrent goroutines
//     order correctly.
//
// Spans are typed by a category ("build", "level", "cuboid", "chunk",
// "prepare", …) and carry a track — the timeline lane they render on in
// the Chrome trace_event export (a device name such as "980-1", or a
// worker lane such as "cpu-3"). See chrome.go for the exporter and
// metrics.go for the counter/gauge/histogram registry.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories used across the build paths. They are plain strings so
// callers can mint new ones, but sharing these keeps exports consistent.
const (
	CatBuild   = "build"   // one span per skycube.Build call
	CatLevel   = "level"   // one span per lattice level barrier
	CatCuboid  = "cuboid"  // one span per cuboid computation
	CatChunk   = "chunk"   // one span per MDMC point-chunk grab
	CatPrepare = "prepare" // MDMC prologue phases (extended skyline, tree)
	CatServe   = "serve"   // HTTP request handling
)

// Span is one completed timed event.
type Span struct {
	// Track is the timeline lane (device or worker) the span belongs to.
	Track string
	// Cat is the span category (CatBuild, CatCuboid, …).
	Cat string
	// Name describes the unit of work ("δ=1011", "points[128,192)", …).
	Name string
	// Start is the offset from the trace epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// N is an optional work count (points in a chunk, rows in a cuboid).
	N int64
}

// End returns the span's end offset from the trace epoch.
func (s Span) End() time.Duration { return s.Start + s.Dur }

const traceShards = 64 // power of two; shard index is a mask of a counter

type traceShard struct {
	mu    sync.Mutex
	spans []Span
	// Pad each shard to its own cache line so neighbouring shard locks do
	// not false-share.
	_ [40]byte
}

// Trace records spans for one build (or one server lifetime). The zero
// value is not usable; call New. A nil *Trace is valid everywhere and
// records nothing.
type Trace struct {
	epoch time.Time
	// clock, when non-nil, replaces time.Since(epoch) as the trace's time
	// source — injected by tests so timing assertions are deterministic
	// instead of sleep-based.
	clock  func() time.Duration
	rr     atomic.Uint32
	shards [traceShards]traceShard
}

// New returns an empty trace whose epoch is now.
func New() *Trace { return &Trace{epoch: time.Now()} }

// newWithClock returns a trace driven by the given time source instead of
// the wall clock (test use).
func newWithClock(clock func() time.Duration) *Trace {
	return &Trace{epoch: time.Now(), clock: clock}
}

// now returns the current offset from the epoch under the trace's clock.
func (t *Trace) now() time.Duration {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.epoch)
}

// Epoch returns the trace's time origin (zero for a nil trace).
func (t *Trace) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Now returns the current offset from the trace epoch, 0 for nil.
func (t *Trace) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// SpanHandle is an in-flight span started by Begin. The zero value (what a
// nil trace hands out) is a no-op.
type SpanHandle struct {
	t     *Trace
	start time.Duration
	n     int64
	track string
	cat   string
	name  string
}

// Begin starts a span on the given track. The span is recorded when End is
// called. On a nil trace this is a no-op returning a no-op handle.
func (t *Trace) Begin(track, cat, name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, start: t.now(), track: track, cat: cat, name: name}
}

// SetN attaches a work count to the span before End.
func (h *SpanHandle) SetN(n int64) {
	if h.t != nil {
		h.n = n
	}
}

// End records the span. Safe on the zero handle.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.record(Span{
		Track: h.track, Cat: h.cat, Name: h.name,
		Start: h.start, Dur: h.t.now() - h.start, N: h.n,
	})
}

// Record adds a span whose interval was measured by the caller: it ended
// now and lasted dur. This is the form the device scheduler uses — each
// device times its own kernel and reports the duration with its account
// callback, and the scheduler back-dates the span. No-op on nil.
func (t *Trace) Record(track, cat, name string, dur time.Duration, n int64) {
	if t == nil {
		return
	}
	end := t.now()
	start := end - dur
	if start < 0 {
		start = 0
	}
	t.record(Span{Track: track, Cat: cat, Name: name, Start: start, Dur: end - start, N: n})
}

func (t *Trace) record(s Span) {
	sh := &t.shards[t.rr.Add(1)&(traceShards-1)]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].spans)
		t.shards[i].mu.Unlock()
	}
	return n
}

// Spans returns a copy of all recorded spans sorted by start time (ties by
// track, then name). Nil trace returns nil.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		t.shards[i].mu.Lock()
		out = append(out, t.shards[i].spans...)
		t.shards[i].mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].Track != out[b].Track {
			return out[a].Track < out[b].Track
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Tracks returns the distinct track names in recording order of first
// appearance within the sorted span list.
func (t *Trace) Tracks() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range t.Spans() {
		if !seen[s.Track] {
			seen[s.Track] = true
			out = append(out, s.Track)
		}
	}
	return out
}

// Coverage returns the fraction of [0, total] covered by the union of the
// spans in the given category (all categories if cat is ""). It is the
// acceptance measure for "spans cover ≥ 99% of Stats.Elapsed".
func (t *Trace) Coverage(cat string, total time.Duration) float64 {
	if t == nil || total <= 0 {
		return 0
	}
	type iv struct{ a, b time.Duration }
	var ivs []iv
	for _, s := range t.Spans() {
		if cat != "" && s.Cat != cat {
			continue
		}
		ivs = append(ivs, iv{s.Start, s.End()})
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered, hi time.Duration
	hi = -1
	for _, v := range ivs {
		a, b := v.a, v.b
		if b > total {
			b = total
		}
		if a < hi {
			a = hi
		}
		if b > a {
			covered += b - a
		}
		if v.b > hi {
			hi = v.b
		}
	}
	return float64(covered) / float64(total)
}
