package delta

import (
	"math/rand"
	"sync"
	"testing"

	"skycube/internal/gen"
	"skycube/internal/mask"
)

// TestConcurrentReadersWriter pits snapshot readers against a writer
// applying delta batches (with background auto-compaction enabled). It is
// the CI -race job's main target: readers pin epochs lock-free while the
// writer publishes, appends to the shared value arena, and swaps bases.
// Each reader cross-checks the internal consistency of whatever epoch it
// pinned — skyline members must be alive and listed by Membership.
func TestConcurrentReadersWriter(t *testing.T) {
	const d = 4
	ds := gen.Synthetic(gen.Independent, 400, d, 7)
	u := NewUpdater(ds, Options{
		Threads: 4, AutoCompact: true, CompactFraction: 0.05, MinCompactOverlay: 8,
	})
	defer u.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	total := mask.NumSubspaces(d)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := u.Current()
				delta := mask.Mask(1 + rng.Intn(total))
				sky := snap.Skyline(delta)
				for _, id := range sky {
					if !snap.Alive(id) {
						t.Errorf("epoch %d: skyline δ=%b lists dead id %d", snap.Epoch(), delta, id)
						return
					}
				}
				if len(sky) > 0 {
					id := sky[rng.Intn(len(sky))]
					found := false
					for _, m := range snap.Membership(id) {
						if m == delta {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("epoch %d: id %d in Skyline(%b) but not in its Membership", snap.Epoch(), id, delta)
						return
					}
				}
				// Pinned epochs from the history ring must stay addressable
				// and agree with themselves.
				if pinned := u.At(snap.Epoch()); pinned != nil && pinned.Epoch() != snap.Epoch() {
					t.Errorf("At(%d) returned epoch %d", snap.Epoch(), pinned.Epoch())
					return
				}
			}
		}(int64(r))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(99))
		live := make([]int32, ds.N)
		for i := range live {
			live[i] = int32(i)
		}
		for b := 0; b < 20; b++ {
			for k := 0; k < 15; k++ {
				p := make([]float32, d)
				for j := range p {
					p[j] = rng.Float32()
				}
				id, err := u.Insert(p)
				if err != nil {
					t.Error(err)
					return
				}
				live = append(live, id)
			}
			for k := 0; k < 10 && len(live) > 50; k++ {
				idx := rng.Intn(len(live))
				if err := u.Delete(live[idx]); err != nil {
					t.Error(err)
					return
				}
				live = append(live[:idx], live[idx+1:]...)
			}
			u.Flush()
		}
	}()
	wg.Wait()
}
