package delta

import (
	"sort"

	"skycube/internal/bitset"
	"skycube/internal/data"
	"skycube/internal/hashcube"
	"skycube/internal/mask"
)

// baseCube is one immutable generation of the materialised skycube: the
// HashCube a full build produced, plus the row↔logical-id mapping. The
// initial build's rows are the logical ids themselves; a compaction builds
// over the live subset, so its cube rows need translating.
type baseCube struct {
	h *hashcube.HashCube
	// ids maps cube row → logical id; nil means identity over [0, points).
	ids []int32
	// row maps logical id → cube row; nil with identity ids.
	row map[int32]int32
	// points is the number of live points the base was built over.
	points int
}

func (b *baseCube) id(row int32) int32 {
	if b.ids == nil {
		return row
	}
	return b.ids[row]
}

func (b *baseCube) rowOf(id int32) (int32, bool) {
	if b.ids == nil {
		if id >= 0 && int(id) < b.points {
			return id, true
		}
		return 0, false
	}
	r, ok := b.row[id]
	return r, ok
}

// Snapshot is one immutable MVCC epoch of the maintained skycube: the base
// cube plus the overlay the delta batches since the base accumulated —
// tombstones, per-point mask patches, freshly inserted points' masks, and
// exact per-cuboid overrides from delete-triggered recomputes. Readers pin
// an epoch by holding the pointer; every query method is safe for
// unlimited concurrent use and never blocks a writer.
//
// Query precedence, per subspace δ: a cuboid override (exact, recomputed
// over the live dataset) wins outright; otherwise the overlay masks adjust
// the base cube's answer. Overlay masks only ever grow (an insert can only
// dominate existing points in more subspaces); bits can only clear through
// a delete, and deletes always leave an exact override behind — which is
// what keeps the two overlay layers consistent.
type Snapshot struct {
	epoch uint64
	d     int
	// ds is the logical dataset at this epoch: row i holds point id i,
	// dead rows included (they are masked by tomb / absence from base).
	ds   *data.Dataset
	base *baseCube
	// tomb holds ids deleted since the base was built.
	tomb map[int32]struct{}
	// added maps ids inserted since the base to their full B_{p∉S} masks.
	added map[int32]*bitset.Set
	// patched maps base ids to the extra dominated bits inserts gave them.
	patched map[int32]*bitset.Set
	// cuboids holds exact skyline overrides for recomputed subspaces.
	cuboids map[mask.Mask][]int32
	live    int
}

// Epoch returns the snapshot's MVCC epoch (1 is the initial build).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Dims returns the data dimensionality.
func (s *Snapshot) Dims() int { return s.d }

// MaxLevel returns the materialised level bound; incremental maintenance
// always materialises the full skycube.
func (s *Snapshot) MaxLevel() int { return s.d }

// Live returns the number of live points at this epoch.
func (s *Snapshot) Live() int { return s.live }

// Len returns the logical id bound: ids in [0, Len) existed at some epoch
// ≤ this one, though some may be dead.
func (s *Snapshot) Len() int { return s.ds.N }

// Alive reports whether id is a live point at this epoch.
func (s *Snapshot) Alive(id int32) bool {
	if id < 0 || int(id) >= s.ds.N {
		return false
	}
	if _, dead := s.tomb[id]; dead {
		return false
	}
	if _, ok := s.added[id]; ok {
		return true
	}
	_, ok := s.base.rowOf(id)
	return ok
}

// Point returns the coordinates of point id (read-only). Valid for dead
// points too; gate with Alive where liveness matters.
func (s *Snapshot) Point(id int32) []float32 { return s.ds.Point(int(id)) }

// OverlaySize is the number of overlay entries above the base — the
// compaction trigger's numerator and a serving-cost proxy.
func (s *Snapshot) OverlaySize() int {
	return len(s.tomb) + len(s.added) + len(s.patched) + len(s.cuboids)
}

// Skyline returns the ids of the points in S_δ at this epoch, ascending.
func (s *Snapshot) Skyline(delta mask.Mask) []int32 {
	if delta == 0 || int(delta) > mask.NumSubspaces(s.d) {
		return nil
	}
	if list, ok := s.cuboids[delta]; ok {
		if len(list) == 0 {
			return nil
		}
		out := make([]int32, len(list))
		copy(out, list)
		return out
	}
	bit := int(delta) - 1
	var out []int32
	for _, row := range s.base.h.Skyline(delta) {
		id := s.base.id(row)
		if _, dead := s.tomb[id]; dead {
			continue
		}
		if p, ok := s.patched[id]; ok && p.Test(bit) {
			continue
		}
		out = append(out, id)
	}
	for id, m := range s.added {
		if _, dead := s.tomb[id]; dead {
			continue
		}
		if !m.Test(bit) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Membership returns the subspaces in which id is a skyline member at this
// epoch, ascending — the inverse query of Skyline, consistent with it for
// every (id, δ) pair.
func (s *Snapshot) Membership(id int32) []mask.Mask {
	if id < 0 || int(id) >= s.ds.N {
		return nil
	}
	if _, dead := s.tomb[id]; dead {
		return nil
	}
	total := mask.NumSubspaces(s.d)
	var member []mask.Mask
	if m, ok := s.added[id]; ok {
		for b := 0; b < total; b++ {
			if !m.Test(b) {
				member = append(member, mask.Mask(b+1))
			}
		}
	} else if row, ok := s.base.rowOf(id); ok {
		member = s.base.h.Membership(row)
		if p, ok := s.patched[id]; ok {
			kept := member[:0]
			for _, delta := range member {
				if !p.Test(int(delta) - 1) {
					kept = append(kept, delta)
				}
			}
			member = kept
		}
	}
	// Reconcile with cuboid overrides: for an overridden δ the recomputed
	// list is the sole authority (it is how points resurface after the
	// delete of their last dominator).
	if len(s.cuboids) > 0 {
		kept := member[:0]
		for _, delta := range member {
			if _, over := s.cuboids[delta]; !over {
				kept = append(kept, delta)
			}
		}
		member = kept
		for delta, list := range s.cuboids {
			if containsID(list, id) {
				member = append(member, delta)
			}
		}
		sort.Slice(member, func(a, b int) bool { return member[a] < member[b] })
	}
	if len(member) == 0 {
		return nil
	}
	return member
}

// IDCount returns a space measure of the snapshot: the base cube's stored
// ids plus the overlay entries layered on top.
func (s *Snapshot) IDCount() int {
	total := s.base.h.IDCount() + len(s.added) + len(s.patched)
	for _, list := range s.cuboids {
		total += len(list)
	}
	return total
}

// containsID reports whether a sorted id list contains id.
func containsID(list []int32, id int32) bool {
	i := sort.Search(len(list), func(k int) bool { return list[k] >= id })
	return i < len(list) && list[i] == id
}
