package delta

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
)

// naiveSkyline is the oracle: a quadratic dominance scan over the live
// points, independent of every production code path.
func naiveSkyline(pts [][]float32, ids []int32, delta mask.Mask) []int32 {
	var out []int32
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && dominatesIn(q, p, delta) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, ids[i])
		}
	}
	return out
}

// verifySnapshot checks a snapshot against the naive oracle on every
// subspace, plus the Membership transpose, Alive and Live.
func verifySnapshot(t *testing.T, snap *Snapshot, live []int32) {
	t.Helper()
	pts := make([][]float32, len(live))
	for i, id := range live {
		pts[i] = snap.Point(id)
	}
	total := mask.NumSubspaces(snap.Dims())
	member := make(map[int32][]mask.Mask)
	for delta := mask.Mask(1); int(delta) <= total; delta++ {
		want := naiveSkyline(pts, live, delta)
		got := snap.Skyline(delta)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d δ=%b: got %v\nwant %v", snap.Epoch(), delta, got, want)
		}
		for _, id := range want {
			member[id] = append(member[id], delta)
		}
	}
	liveSet := make(map[int32]struct{}, len(live))
	for _, id := range live {
		liveSet[id] = struct{}{}
	}
	for i := 0; i < snap.Len(); i++ {
		id := int32(i)
		if got := snap.Membership(id); !reflect.DeepEqual(got, member[id]) {
			t.Fatalf("epoch %d membership of %d: got %v, want %v", snap.Epoch(), id, got, member[id])
		}
		if _, want := liveSet[id]; snap.Alive(id) != want {
			t.Fatalf("epoch %d Alive(%d) = %v, want %v", snap.Epoch(), id, snap.Alive(id), want)
		}
	}
	if snap.Live() != len(live) {
		t.Fatalf("epoch %d Live() = %d, want %d", snap.Epoch(), snap.Live(), len(live))
	}
}

func sortedIDs(live []int32) []int32 {
	out := append([]int32(nil), live...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TestRandomMixedBatchesMatchNaive is the package's core equivalence test:
// random insert/delete batches across distributions and dimensionalities,
// every flushed snapshot compared against the naive oracle, and a final
// compaction re-verified.
func TestRandomMixedBatchesMatchNaive(t *testing.T) {
	dists := []gen.Distribution{gen.Correlated, gen.Independent, gen.Anticorrelated}
	for _, dist := range dists {
		for d := 2; d <= 5; d++ {
			t.Run(fmt.Sprintf("%v/d=%d", dist, d), func(t *testing.T) {
				seed := int64(41*d) + int64(dist)
				ds := gen.Synthetic(dist, 220, d, seed)
				u := NewUpdater(ds, Options{Threads: 4})
				defer u.Close()
				rng := rand.New(rand.NewSource(seed))
				live := make([]int32, ds.N)
				for i := range live {
					live[i] = int32(i)
				}
				verifySnapshot(t, u.Current(), live)
				for round := 0; round < 3; round++ {
					extra := gen.Synthetic(dist, 25, d, seed+int64(round)+100)
					for i := 0; i < extra.N; i++ {
						id, err := u.Insert(extra.Point(i))
						if err != nil {
							t.Fatal(err)
						}
						live = append(live, id)
					}
					// Deletes hit pending inserts too (cancellation path).
					for k := 0; k < 18 && len(live) > 1; k++ {
						idx := rng.Intn(len(live))
						if err := u.Delete(live[idx]); err != nil {
							t.Fatal(err)
						}
						live = append(live[:idx], live[idx+1:]...)
					}
					verifySnapshot(t, u.Flush(), sortedIDs(live))
				}
				verifySnapshot(t, u.Compact(), sortedIDs(live))
			})
		}
	}
}

// TestEmptyStartAndDeleteAll covers both degenerate bases: an updater born
// over zero points (nil tree, inserts solved against extras only) and a
// base whose every point has been tombstoned.
func TestEmptyStartAndDeleteAll(t *testing.T) {
	const d = 3
	u := NewUpdater(data.New(d, nil), Options{Threads: 2})
	defer u.Close()
	rng := rand.New(rand.NewSource(5))
	var live []int32
	for round := 0; round < 2; round++ {
		for k := 0; k < 20; k++ {
			p := []float32{rng.Float32(), rng.Float32(), rng.Float32()}
			id, err := u.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		verifySnapshot(t, u.Flush(), sortedIDs(live))
	}

	// Now delete everything without compacting.
	for _, id := range live {
		if err := u.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := u.Flush()
	verifySnapshot(t, snap, nil)
	total := mask.NumSubspaces(d)
	for delta := mask.Mask(1); int(delta) <= total; delta++ {
		if got := snap.Skyline(delta); got != nil {
			t.Fatalf("empty skycube δ=%b: got %v", delta, got)
		}
	}

	// Inserts against a fully-dead tree must still resolve correctly.
	live = nil
	for k := 0; k < 15; k++ {
		p := []float32{rng.Float32(), rng.Float32(), rng.Float32()}
		id, err := u.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	verifySnapshot(t, u.Flush(), sortedIDs(live))
}

// TestDeleteValidation checks the eager error contract of Delete.
func TestDeleteValidation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 30, 3, 1)
	u := NewUpdater(ds, Options{Threads: 1})
	defer u.Close()
	if err := u.Delete(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := u.Delete(30); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := u.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := u.Delete(7); err == nil {
		t.Fatal("double pending delete accepted")
	}
	u.Flush()
	if err := u.Delete(7); err == nil {
		t.Fatal("delete of dead id accepted")
	}
	// Cancelling a pending insert consumes its id permanently.
	id, _ := u.Insert([]float32{1, 2, 3})
	if err := u.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := u.Delete(id); err == nil {
		t.Fatal("double cancel accepted")
	}
	snap := u.Flush()
	if snap.Alive(id) {
		t.Fatalf("cancelled insert %d is alive", id)
	}
	if ins, del := u.Pending(); ins != 0 || del != 0 {
		t.Fatalf("pending after flush: %d inserts, %d deletes", ins, del)
	}
}

// TestEpochPinnedHistory checks MVCC isolation: an old epoch pinned from
// the history ring keeps serving its old answers verbatim after later
// batches, and eviction honours the History bound.
func TestEpochPinnedHistory(t *testing.T) {
	const d = 4
	ds := gen.Synthetic(gen.Independent, 150, d, 3)
	u := NewUpdater(ds, Options{Threads: 2, History: 3})
	defer u.Close()
	full := mask.Full(d)
	s1 := u.Current()
	if s1.Epoch() != 1 {
		t.Fatalf("initial epoch %d", s1.Epoch())
	}
	wantSky := s1.Skyline(full)
	wantMem := s1.Membership(wantSky[0])

	for round := 0; round < 4; round++ {
		if _, err := u.Insert(make([]float32, d)); err != nil { // dominates everything
			t.Fatal(err)
		}
		u.Flush()
	}
	if got := s1.Skyline(full); !reflect.DeepEqual(got, wantSky) {
		t.Fatalf("pinned epoch 1 skyline changed: %v -> %v", wantSky, got)
	}
	if got := s1.Membership(wantSky[0]); !reflect.DeepEqual(got, wantMem) {
		t.Fatalf("pinned epoch 1 membership changed")
	}
	if u.Current().Epoch() != 5 {
		t.Fatalf("epoch after 4 batches: %d", u.Current().Epoch())
	}
	if u.At(1) != nil {
		t.Fatal("epoch 1 still addressable past History=3")
	}
	if s := u.At(4); s == nil || s.Epoch() != 4 {
		t.Fatal("epoch 4 not addressable")
	}
	if u.At(99) != nil {
		t.Fatal("future epoch addressable")
	}
}

// TestAutoCompactTrigger drives the overlay past an aggressive threshold
// and waits for the background compactor to fold it into a new base.
func TestAutoCompactTrigger(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 120, 4, 9)
	u := NewUpdater(ds, Options{
		Threads: 2, AutoCompact: true, CompactFraction: 0.01, MinCompactOverlay: -1,
	})
	defer u.Close()
	rng := rand.New(rand.NewSource(9))
	live := make([]int32, ds.N)
	for i := range live {
		live[i] = int32(i)
	}
	for b := 0; b < 5; b++ {
		for k := 0; k < 10; k++ {
			p := []float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
			id, err := u.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		for k := 0; k < 5; k++ {
			idx := rng.Intn(len(live))
			if err := u.Delete(live[idx]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
		u.Flush()
	}
	deadline := time.Now().Add(10 * time.Second)
	for u.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no compaction within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	verifySnapshot(t, u.Current(), sortedIDs(live))
}

// TestStatsShape sanity-checks the diagnostics counters.
func TestStatsShape(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 80, 3, 2)
	u := NewUpdater(ds, Options{Threads: 1})
	defer u.Close()
	if _, err := u.Insert([]float32{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := u.Delete(3); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.PendingInserts != 1 || st.PendingDeletes != 1 {
		t.Fatalf("pending = %d/%d, want 1/1", st.PendingInserts, st.PendingDeletes)
	}
	u.Flush()
	st = u.Stats()
	if st.Epoch != 2 || st.Live != 80 || st.Dead != 1 || st.BasePoints != 80 {
		t.Fatalf("stats after batch: %+v", st)
	}
}
