// Package delta maintains a built skycube under batched point inserts and
// deletes, serving lock-free MVCC snapshots while a writer applies batches
// and a background compactor folds the accumulated overlay into fresh full
// builds.
//
// The paper's templates compute a skycube once; this package keeps that
// result alive as the dataset changes, by reusing the same machinery
// incrementally:
//
//   - An insert is a single-point MDMC task. The new point is routed
//     through the retained global pivots (stree.Tree.Route), filtered
//     against the static tree's path labels (FilterExternal) and refined
//     with exact dominance tests (RefineExternal), yielding its B_{p∉S}
//     exactly as a build-time point task would — in O(filter + refine)
//     instead of a full rebuild. The reverse direction (the insert
//     dominating existing points) is a second leaf-order scan emitting
//     mask patches.
//   - A delete tombstones the victim and enqueues exactly the cuboids in
//     which it was a skyline member for recompute on the device pool
//     (hetero.ComputeCuboids): removing a non-member of S_δ can never
//     change S_δ, because dominance chains terminate at members.
//   - Serving is MVCC: each applied batch publishes a new immutable
//     Snapshot layering copy-on-write overlays (tombstones, mask patches,
//     added-point masks, per-cuboid overrides) over a shared immutable
//     base cube. Readers pin an epoch by loading a pointer and are never
//     blocked; a bounded history ring keeps recent epochs addressable.
//   - When the overlay exceeds a configurable fraction of the base, a
//     compaction rebuilds the base over the live points (scheduled across
//     the configured devices) and resets the overlay.
//
// One subtlety deserves a name: the loose set. Points outside the extended
// skyline S⁺(P) are absent from the static tree, which is sound while
// their full-space strict dominators live. When a delete kills such a
// dominator, the outsiders it strictly dominated are promoted to "loose"
// dominance sources: future inserts must test against them, since the tree
// no longer vouches for them. Their own memberships need no tracking — a
// non-member only joins S_δ when a member of S_δ dies, and that cuboid is
// recomputed exactly.
package delta

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skycube/internal/bitset"
	"skycube/internal/data"
	"skycube/internal/hashcube"
	"skycube/internal/hetero"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/templates"
)

// Defaults for Options fields left zero.
const (
	DefaultCompactFraction   = 0.25
	DefaultHistory           = 8
	DefaultMinCompactOverlay = 64
)

// Options configure an Updater.
type Options struct {
	// Threads is the CPU worker count for builds, recomputes and insert
	// solves; 0 means all cores.
	Threads int
	// Devices is the pool cuboid recomputes and compactions are scheduled
	// on; empty means one CPU device over Threads cores.
	Devices []hetero.Device
	// CompactFraction triggers auto-compaction when the overlay entry count
	// exceeds this fraction of the base's point count. 0 means
	// DefaultCompactFraction; negative disables the trigger.
	CompactFraction float64
	// AutoCompact runs compactions in a background goroutine when the
	// trigger fires. Without it, compaction only happens via Compact.
	AutoCompact bool
	// History is how many recent snapshots stay addressable by epoch for
	// pinned reads; 0 means DefaultHistory.
	History int
	// MinCompactOverlay is the overlay floor below which auto-compaction
	// never fires (avoids rebuild churn on tiny bases); 0 means
	// DefaultMinCompactOverlay, negative means no floor.
	MinCompactOverlay int
	// Metrics, if non-nil, receives batch/epoch/compaction observations.
	Metrics *obs.DeltaMetrics
}

// Journal receives every accepted mutation and published epoch, in the
// exact order the updater will replay them after a crash (internal/wal
// implements it over an on-disk record log). Log* methods only append —
// they must not block on durability — while Commit blocks until every
// record appended so far is durable under the journal's sync policy.
//
// Ordering contract: LogInsert/LogDelete are called under the updater's
// buffer lock, and LogEpoch for a flush is called at the drain point while
// that same lock is held — so a mutation record sequenced before an epoch
// marker is exactly a mutation that epoch applied, and one sequenced after
// it is pending on the new epoch. Epoch markers are committed before the
// snapshot is published, so a served epoch can never be lost to a crash.
type Journal interface {
	// LogInsert records an accepted insert: the id the updater assigned and
	// the point, stamped with the epoch current when it was buffered.
	LogInsert(epoch uint64, id int32, point []float32) error
	// LogDelete records an accepted delete (or same-batch insert
	// cancellation), stamped like LogInsert.
	LogDelete(epoch uint64, id int32) error
	// LogEpoch records an epoch advance — a flush (compact=false) applying
	// every mutation logged so far, or a compaction (compact=true) folding
	// the overlay — with the produced epoch and its live-point count.
	LogEpoch(compact bool, epoch uint64, live int) error
	// Commit blocks until all previously appended records are durable per
	// the journal's configured fsync policy.
	Commit() error
}

// Updater owns the mutable write side: it buffers inserts and deletes,
// applies them as batches, and publishes immutable Snapshots. All write
// methods are safe for concurrent use; reads go through Current/At and
// never contend with the writer.
type Updater struct {
	d       int
	threads int
	opt     Options

	// mu serialises batch application, compaction, and all fields below.
	mu sync.Mutex
	// vals/ids back every snapshot's dataset header: row i is point id i,
	// append-only, so published headers stay valid forever.
	vals []float32
	ids  []int32
	n    int
	// dead holds every id ever deleted (and cancelled pending inserts).
	dead map[int32]struct{}

	// Base-build artefacts, replaced wholesale by each compaction.
	mctx *templates.MDMCContext
	// treeID maps a tree sorted position to its logical id; treePos is the
	// inverse; posLeaf maps a sorted position to its leaf index.
	treeID  []int32
	treePos map[int32]int
	posLeaf []int32
	// leafDead counts deleted points per tree leaf, for filter liveness.
	leafDead []int
	// outsiders are live base-era ids outside S⁺ of the base, still
	// vouched for by a live full-space dominator; loose are the promoted
	// ones that future inserts must test against directly.
	outsiders map[int32]struct{}
	loose     map[int32]struct{}

	cur atomic.Pointer[Snapshot]

	histMu sync.Mutex
	hist   []*Snapshot

	// pendMu guards the not-yet-applied batch. Lock order: mu before pendMu.
	pendMu      sync.Mutex
	pendInserts []pendingInsert
	pendDeleted map[int32]struct{}
	nextID      int32

	compactCh   chan struct{}
	closed      chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
	compactions int64

	// journal, if non-nil, receives every accepted mutation and epoch
	// advance (AttachJournal). Plain field: it is attached once, before the
	// updater is shared across goroutines.
	journal Journal
}

type pendingInsert struct {
	id        int32
	point     []float32
	cancelled bool
}

// NewUpdater builds the initial skycube over ds (epoch 1) and returns an
// updater maintaining it. Point ids are assigned by row: ds row i is id i,
// and inserts continue from ds.N. ds's values are copied; the caller may
// reuse it.
func NewUpdater(ds *data.Dataset, opt Options) *Updater {
	d := ds.Dims
	threads := opt.Threads
	if threads < 1 {
		threads = runtime.NumCPU()
	}
	u := &Updater{
		d:           d,
		threads:     threads,
		opt:         opt,
		vals:        append([]float32(nil), ds.Vals[:ds.N*d]...),
		ids:         make([]int32, ds.N),
		n:           ds.N,
		dead:        make(map[int32]struct{}),
		pendDeleted: make(map[int32]struct{}),
		nextID:      int32(ds.N),
		compactCh:   make(chan struct{}, 1),
		closed:      make(chan struct{}),
	}
	for i := range u.ids {
		u.ids[i] = int32(i)
	}
	u.mu.Lock()
	snap := u.buildBaseLocked(1)
	u.publish(snap)
	u.mu.Unlock()
	opt.Metrics.Epoch(snap.epoch, snap.live, snap.OverlaySize())
	if opt.AutoCompact {
		u.StartAutoCompact()
	}
	return u
}

// PendingOp is one buffered (not yet flushed) insert in a RestoreState.
type PendingOp struct {
	ID int32
	// Point is the insert's coordinates.
	Point []float32
	// Cancelled marks an insert deleted within its own unflushed batch.
	Cancelled bool
}

// RestoreState is a consistent persistence image of an updater: the
// applied logical dataset at one epoch plus the buffered mutations that
// were pending when it was captured. CaptureState produces it and
// NewUpdaterFrom reconstructs an equivalent updater from it — the skycube
// itself is not serialized; it is rebuilt deterministically over the live
// points, exactly like a compaction at the captured epoch.
type RestoreState struct {
	Dims  int
	Epoch uint64
	// Live is the live-point count at Epoch, used to verify the rebuild.
	Live int
	// Vals is the full logical dataset, row i = point id i, dead rows
	// included; NextID is len(Vals)/Dims plus the pending inserts.
	Vals []float32
	// Dead lists every dead id (deletes and cancelled inserts), ascending.
	Dead []int32
	// PendingInserts/PendingDeletes are the buffered batch at capture, in
	// buffer order.
	PendingInserts []PendingOp
	PendingDeletes []int32
}

// CaptureState returns a consistent RestoreState of the updater and, at
// the exact capture point — while both the apply lock and the buffer lock
// are held, so no journal record can be sequenced concurrently — calls
// rotate with the captured epoch (the WAL uses it to switch segments, so
// "records after the snapshot" is an exact boundary). The value slices
// alias the updater's append-only backing arrays and stay valid forever.
func (u *Updater) CaptureState(rotate func(epoch uint64) error) (RestoreState, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.pendMu.Lock()
	defer u.pendMu.Unlock()
	snap := u.cur.Load()
	nv := u.n * u.d
	st := RestoreState{
		Dims:  u.d,
		Epoch: snap.epoch,
		Live:  snap.live,
		Vals:  u.vals[:nv:nv],
		Dead:  make([]int32, 0, len(u.dead)),
	}
	for id := range u.dead {
		st.Dead = append(st.Dead, id)
	}
	sort.Slice(st.Dead, func(a, b int) bool { return st.Dead[a] < st.Dead[b] })
	if len(u.pendInserts) > 0 {
		st.PendingInserts = make([]PendingOp, len(u.pendInserts))
		for i, pi := range u.pendInserts {
			st.PendingInserts[i] = PendingOp{ID: pi.id, Point: pi.point, Cancelled: pi.cancelled}
		}
	}
	if len(u.pendDeleted) > 0 {
		st.PendingDeletes = make([]int32, 0, len(u.pendDeleted))
		for id := range u.pendDeleted {
			st.PendingDeletes = append(st.PendingDeletes, id)
		}
		sort.Slice(st.PendingDeletes, func(a, b int) bool {
			return st.PendingDeletes[a] < st.PendingDeletes[b]
		})
	}
	if rotate != nil {
		if err := rotate(st.Epoch); err != nil {
			return RestoreState{}, err
		}
	}
	return st, nil
}

// NewUpdaterFrom reconstructs an updater from a RestoreState: a full build
// over the state's live points published at the state's epoch (exactly a
// compaction of the pre-crash updater, which serves identical query
// results), with the pending batch re-buffered. It verifies the rebuilt
// live count against the state and fails rather than serve a diverged
// cube. The background compactor is NOT started even when opt.AutoCompact
// is set — WAL replay must drive every epoch advance itself — call
// StartAutoCompact once replay is complete.
func NewUpdaterFrom(st RestoreState, opt Options) (*Updater, error) {
	if st.Dims <= 0 {
		return nil, fmt.Errorf("delta: restore state has %d dims", st.Dims)
	}
	if len(st.Vals)%st.Dims != 0 {
		return nil, fmt.Errorf("delta: restore state has %d values, not a multiple of %d dims",
			len(st.Vals), st.Dims)
	}
	if st.Epoch == 0 {
		return nil, fmt.Errorf("delta: restore state has epoch 0")
	}
	n := len(st.Vals) / st.Dims
	threads := opt.Threads
	if threads < 1 {
		threads = runtime.NumCPU()
	}
	u := &Updater{
		d:           st.Dims,
		threads:     threads,
		opt:         opt,
		vals:        append([]float32(nil), st.Vals...),
		ids:         make([]int32, n),
		n:           n,
		dead:        make(map[int32]struct{}, len(st.Dead)),
		pendDeleted: make(map[int32]struct{}, len(st.PendingDeletes)),
		nextID:      int32(n),
		compactCh:   make(chan struct{}, 1),
		closed:      make(chan struct{}),
	}
	for i := range u.ids {
		u.ids[i] = int32(i)
	}
	for _, id := range st.Dead {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("delta: restore state dead id %d out of range [0,%d)", id, n)
		}
		u.dead[id] = struct{}{}
	}
	for _, op := range st.PendingInserts {
		if len(op.Point) != st.Dims {
			return nil, fmt.Errorf("delta: restore state pending insert %d has %d dims, want %d",
				op.ID, len(op.Point), st.Dims)
		}
		if op.ID != u.nextID {
			return nil, fmt.Errorf("delta: restore state pending insert id %d, want %d", op.ID, u.nextID)
		}
		u.nextID++
		u.pendInserts = append(u.pendInserts, pendingInsert{
			id: op.ID, point: append([]float32(nil), op.Point...), cancelled: op.Cancelled,
		})
	}
	for _, id := range st.PendingDeletes {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("delta: restore state pending delete %d out of range [0,%d)", id, n)
		}
		u.pendDeleted[id] = struct{}{}
	}
	u.mu.Lock()
	snap := u.buildBaseLocked(st.Epoch)
	if snap.live != st.Live {
		u.mu.Unlock()
		return nil, fmt.Errorf("delta: restored build has %d live points at epoch %d, checkpoint recorded %d",
			snap.live, st.Epoch, st.Live)
	}
	u.publish(snap)
	u.mu.Unlock()
	opt.Metrics.Epoch(snap.epoch, snap.live, snap.OverlaySize())
	return u, nil
}

// AttachJournal wires a journal into the updater. It must be called before
// the updater is shared across goroutines (i.e. before serving), and after
// any WAL replay — replayed mutations must not be re-journaled.
func (u *Updater) AttachJournal(j Journal) { u.journal = j }

// StartAutoCompact starts the background compactor goroutine (idempotent
// callers beware: call at most once). NewUpdater calls it itself when
// Options.AutoCompact is set; NewUpdaterFrom defers it to the caller so
// WAL replay is the only writer during recovery.
func (u *Updater) StartAutoCompact() {
	u.wg.Add(1)
	go u.compactLoop()
}

// Close stops the background compactor. The current snapshot stays valid.
func (u *Updater) Close() {
	u.closeOnce.Do(func() { close(u.closed) })
	u.wg.Wait()
}

// Current returns the latest published snapshot.
func (u *Updater) Current() *Snapshot { return u.cur.Load() }

// At returns the snapshot at the given epoch if it is still in the history
// ring, or nil if it was evicted (or never existed).
func (u *Updater) At(epoch uint64) *Snapshot {
	u.histMu.Lock()
	defer u.histMu.Unlock()
	for _, s := range u.hist {
		if s.epoch == epoch {
			return s
		}
	}
	return nil
}

// Insert buffers one point for the next batch and returns its assigned id.
// The point is not visible until Flush applies the batch.
func (u *Updater) Insert(point []float32) (int32, error) {
	if len(point) != u.d {
		return 0, fmt.Errorf("delta: point has %d dims, want %d", len(point), u.d)
	}
	if err := data.CheckFiniteRow(point); err != nil {
		return 0, fmt.Errorf("delta: %v", err)
	}
	cp := append([]float32(nil), point...)
	u.pendMu.Lock()
	defer u.pendMu.Unlock()
	id := u.nextID
	u.nextID++
	u.pendInserts = append(u.pendInserts, pendingInsert{id: id, point: cp})
	if u.journal != nil {
		if err := u.journal.LogInsert(u.cur.Load().epoch, id, cp); err != nil {
			u.pendInserts = u.pendInserts[:len(u.pendInserts)-1]
			u.nextID--
			return 0, fmt.Errorf("delta: journal insert: %w", err)
		}
	}
	return id, nil
}

// Delete buffers the deletion of a live point (or cancels a same-batch
// pending insert). Validation is eager: unknown and already-deleted ids
// are rejected immediately.
func (u *Updater) Delete(id int32) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.pendMu.Lock()
	defer u.pendMu.Unlock()
	if id < 0 || id >= u.nextID {
		return fmt.Errorf("delta: unknown id %d", id)
	}
	if _, dead := u.dead[id]; dead {
		return fmt.Errorf("delta: id %d already deleted", id)
	}
	if _, dup := u.pendDeleted[id]; dup {
		return fmt.Errorf("delta: id %d already pending deletion", id)
	}
	if id >= int32(u.n) {
		// A pending insert: cancel it in place.
		for i := range u.pendInserts {
			if u.pendInserts[i].id == id {
				if u.pendInserts[i].cancelled {
					return fmt.Errorf("delta: id %d already deleted", id)
				}
				if err := u.logDelete(id); err != nil {
					return err
				}
				u.pendInserts[i].cancelled = true
				return nil
			}
		}
		return fmt.Errorf("delta: unknown id %d", id)
	}
	if err := u.logDelete(id); err != nil {
		return err
	}
	u.pendDeleted[id] = struct{}{}
	return nil
}

// logDelete journals an accepted delete. Caller holds mu and pendMu and has
// validated the id; the buffer is only mutated if journaling succeeded.
func (u *Updater) logDelete(id int32) error {
	if u.journal == nil {
		return nil
	}
	if err := u.journal.LogDelete(u.cur.Load().epoch, id); err != nil {
		return fmt.Errorf("delta: journal delete: %w", err)
	}
	return nil
}

// Pending reports the buffered batch size: inserts (minus cancellations)
// and deletes awaiting the next Flush.
func (u *Updater) Pending() (inserts, deletes int) {
	u.pendMu.Lock()
	defer u.pendMu.Unlock()
	for _, pi := range u.pendInserts {
		if !pi.cancelled {
			inserts++
		}
	}
	return inserts, len(u.pendDeleted)
}

// NextID returns the id the next Insert will assign. State-transfer code
// uses it as the exact boundary between rows that came from a peer's
// replicated stream and rows inserted directly afterwards (a split's
// piecewise id mapping is sealed at this value).
func (u *Updater) NextID() int32 {
	u.pendMu.Lock()
	defer u.pendMu.Unlock()
	return u.nextID
}

// Flush applies the buffered batch and returns the snapshot serving it
// (the current snapshot when the batch was empty).
func (u *Updater) Flush() *Snapshot {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.applyLocked()
}

// Compact forces a full rebuild over the live points, folding the overlay
// into a new base, and returns the fresh snapshot.
func (u *Updater) Compact() *Snapshot {
	u.mu.Lock()
	start := time.Now()
	prev := u.cur.Load()
	snap := u.buildBaseLocked(prev.epoch + 1)
	// As in applyLocked: the marker is journaled and committed before the
	// epoch is published. Compaction does not drain the pending buffer, so
	// mutation records racing past this marker correctly stay pending.
	if u.journal != nil {
		if err := u.journal.LogEpoch(true, snap.epoch, snap.live); err == nil {
			_ = u.journal.Commit()
		}
	}
	u.publish(snap)
	u.mu.Unlock()
	atomic.AddInt64(&u.compactions, 1)
	u.opt.Metrics.Compaction(time.Since(start), snap.base.points)
	u.opt.Metrics.Epoch(snap.epoch, snap.live, snap.OverlaySize())
	return snap
}

// Stats is a point-in-time view of the updater for diagnostics endpoints.
type Stats struct {
	Epoch          uint64 `json:"epoch"`
	Live           int    `json:"live"`
	Dead           int    `json:"dead"`
	Overlay        int    `json:"overlay"`
	BasePoints     int    `json:"base_points"`
	PendingInserts int    `json:"pending_inserts"`
	PendingDeletes int    `json:"pending_deletes"`
	Compactions    int64  `json:"compactions"`
}

// Stats returns current counters. Dead counts against the current base
// generation's view (all-time deletes including cancelled inserts).
func (u *Updater) Stats() Stats {
	snap := u.cur.Load()
	ins, del := u.Pending()
	return Stats{
		Epoch:          snap.epoch,
		Live:           snap.live,
		Dead:           snap.ds.N - snap.live,
		Overlay:        snap.OverlaySize(),
		BasePoints:     snap.base.points,
		PendingInserts: ins,
		PendingDeletes: del,
		Compactions:    atomic.LoadInt64(&u.compactions),
	}
}

// ---- write path ----

// datasetHeader returns an immutable view of the logical dataset: row i is
// point id i, dead rows included. Appends to u.vals never disturb already
// published headers (old epochs keep the old backing array or a disjoint
// prefix of the same one).
func (u *Updater) datasetHeader() *data.Dataset {
	nv := u.n * u.d
	return &data.Dataset{Dims: u.d, N: u.n, Vals: u.vals[:nv:nv], IDs: u.ids[:u.n:u.n]}
}

func (u *Updater) point(id int32) []float32 {
	return u.vals[int(id)*u.d : (int(id)+1)*u.d]
}

func (u *Updater) liveRows() []int32 {
	out := make([]int32, 0, u.n-len(u.dead))
	for i := 0; i < u.n; i++ {
		if _, dead := u.dead[int32(i)]; !dead {
			out = append(out, int32(i))
		}
	}
	return out
}

func (u *Updater) devices() []hetero.Device {
	if len(u.opt.Devices) > 0 {
		return u.opt.Devices
	}
	return []hetero.Device{&hetero.CPUDevice{Threads: u.threads}}
}

// buildBaseLocked runs a full build over the live points and resets all
// base-generation state (tree routing tables, liveness counters, the
// loose/outsider split). Caller holds u.mu.
func (u *Updater) buildBaseLocked(epoch uint64) *Snapshot {
	header := u.datasetHeader()
	live := u.liveRows()
	if len(live) == 0 {
		u.mctx = &templates.MDMCContext{D: u.d, MaxLevel: u.d, Cube: hashcube.New(u.d)}
		u.treeID, u.treePos, u.posLeaf, u.leafDead = nil, map[int32]int{}, nil, nil
		u.outsiders, u.loose = map[int32]struct{}{}, map[int32]struct{}{}
		return &Snapshot{
			epoch: epoch, d: u.d, ds: header,
			base: &baseCube{h: u.mctx.Cube, ids: []int32{}, row: map[int32]int32{}},
		}
	}
	sub := header
	identity := len(live) == u.n
	if !identity {
		intRows := make([]int, len(live))
		for i, r := range live {
			intRows[i] = int(r)
		}
		sub = header.Subset(intRows)
	}
	ctx := templates.PrepareMDMC(sub, u.threads, 3, 0)
	hetero.MDMCRunPrepared(ctx, u.devices(), hetero.Tuning{}, nil, nil)

	base := &baseCube{h: ctx.Cube, points: sub.N}
	if !identity {
		base.ids = sub.IDs
		base.row = make(map[int32]int32, sub.N)
		for r, id := range sub.IDs {
			base.row[id] = int32(r)
		}
	}

	tree := ctx.Tree
	u.mctx = ctx
	u.treeID = tree.Data.IDs
	u.treePos = make(map[int32]int, len(u.treeID))
	for pos, id := range u.treeID {
		u.treePos[id] = pos
	}
	u.posLeaf = make([]int32, tree.Data.N)
	for li, lf := range tree.Leaves {
		for pos := lf.Start; pos < lf.End; pos++ {
			u.posLeaf[pos] = int32(li)
		}
	}
	u.leafDead = make([]int, len(tree.Leaves))
	ext := make(map[int32]struct{}, len(ctx.ExtRows))
	for _, r := range ctx.ExtRows {
		ext[sub.IDs[r]] = struct{}{}
	}
	u.outsiders = make(map[int32]struct{}, len(live)-len(ext))
	for _, id := range live {
		if _, in := ext[id]; !in {
			u.outsiders[id] = struct{}{}
		}
	}
	u.loose = map[int32]struct{}{}

	return &Snapshot{epoch: epoch, d: u.d, ds: header, base: base, live: len(live)}
}

// applyLocked applies the buffered batch: tombstone deletes first, then
// solve inserts against the post-delete live set, then recompute exactly
// the cuboids the victims were members of — over the final live set, so
// the overrides are exact at the new epoch. Caller holds u.mu.
func (u *Updater) applyLocked() *Snapshot {
	prev := u.cur.Load()
	u.pendMu.Lock()
	inserts := u.pendInserts
	deleted := u.pendDeleted
	if len(inserts) == 0 && len(deleted) == 0 {
		u.pendMu.Unlock()
		return prev
	}
	// Journal the flush marker at the drain point, while pendMu is still
	// held: the records sequenced before this marker are exactly the
	// mutations this epoch applies (an insert racing this flush lands after
	// the marker and stays pending on replay). On journal failure the batch
	// is left buffered and the flush is a no-op — the durable-commit at the
	// serving layer's ack point surfaces the same error to the client.
	if u.journal != nil {
		liveIns := 0
		for _, pi := range inserts {
			if !pi.cancelled {
				liveIns++
			}
		}
		if err := u.journal.LogEpoch(false, prev.epoch+1, prev.live+liveIns-len(deleted)); err != nil {
			u.pendMu.Unlock()
			return prev
		}
	}
	u.pendInserts = nil
	u.pendDeleted = make(map[int32]struct{})
	u.pendMu.Unlock()
	start := time.Now()
	total := mask.NumSubspaces(u.d)

	victims := make([]int32, 0, len(deleted))
	for id := range deleted {
		victims = append(victims, id)
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })

	// Cuboids where a victim was a member must be recomputed; everywhere
	// else the delete is invisible (non-members never shield anything).
	affected := make(map[mask.Mask]struct{})
	for _, v := range victims {
		for _, delta := range prev.Membership(v) {
			affected[delta] = struct{}{}
		}
	}

	// Tombstone victims in writer state, and promote outsiders whose
	// full-space vouching dominator might just have died.
	for _, v := range victims {
		u.dead[v] = struct{}{}
		if pos, ok := u.treePos[v]; ok {
			u.leafDead[u.posLeaf[pos]]++
		}
		delete(u.loose, v)
		delete(u.outsiders, v)
	}
	if len(u.outsiders) > 0 {
		for _, v := range victims {
			vp := u.point(v)
			for q := range u.outsiders {
				if strictlyDominatesFull(vp, u.point(q)) {
					u.loose[q] = struct{}{}
					delete(u.outsiders, q)
				}
			}
		}
	}

	// Append all insert rows (cancelled ones too — ids are positional) and
	// collect the live ones.
	lives := make([]pendingInsert, 0, len(inserts))
	for _, pi := range inserts {
		u.vals = append(u.vals, pi.point...)
		u.ids = append(u.ids, pi.id)
		u.n++
		if pi.cancelled {
			u.dead[pi.id] = struct{}{}
			continue
		}
		lives = append(lives, pi)
	}

	// Copy-on-write overlay clones. Individual bitsets stay shared with
	// prev until first written this batch (clonedA/clonedP track that).
	tomb := make(map[int32]struct{}, len(prev.tomb)+len(victims))
	for id := range prev.tomb {
		tomb[id] = struct{}{}
	}
	for _, v := range victims {
		tomb[v] = struct{}{}
	}
	added := make(map[int32]*bitset.Set, len(prev.added)+len(lives))
	for id, m := range prev.added {
		added[id] = m
	}
	patched := make(map[int32]*bitset.Set, len(prev.patched))
	for id, m := range prev.patched {
		patched[id] = m
	}
	cuboids := make(map[mask.Mask][]int32, len(prev.cuboids)+len(affected))
	for delta, list := range prev.cuboids {
		cuboids[delta] = list
	}

	// Dominance sources beyond the tree: earlier added points and loose
	// outsiders, both restricted to live. Earlier added points are also
	// patch targets (an insert can dominate them).
	var prevAddedLive, extras []int32
	for id := range prev.added {
		if _, dead := u.dead[id]; !dead {
			prevAddedLive = append(prevAddedLive, id)
		}
	}
	sort.Slice(prevAddedLive, func(a, b int) bool { return prevAddedLive[a] < prevAddedLive[b] })
	extras = append(extras, prevAddedLive...)
	for id := range u.loose {
		if _, dead := u.dead[id]; !dead {
			extras = append(extras, id)
		}
	}
	sort.Slice(extras, func(a, b int) bool { return extras[a] < extras[b] })

	// Phase A: solve each live insert as a single-point MDMC task, in
	// parallel. Workers only read writer state (frozen for the batch).
	results := make([]*bitset.Set, len(lives))
	patches := make([][]patchEntry, len(lives))
	if len(lives) > 0 {
		tree := u.mctx.Tree
		var leafAlive func(li int) bool
		var alive func(pos int) bool
		if tree != nil && len(u.dead) > 0 {
			leafAlive = func(li int) bool { return u.leafDead[li] < tree.Leaves[li].Len() }
			alive = func(pos int) bool {
				_, dead := u.dead[u.treeID[pos]]
				return !dead
			}
		}
		workers := u.threads
		if workers > len(lives) {
			workers = len(lives)
		}
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sol := templates.NewSolution(u.mctx)
				defer sol.FlushKernelTally()
				exp := newExpander(total)
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(lives) {
						return
					}
					results[i], patches[i] = u.solveInsert(sol, exp, lives[i].point,
						extras, prevAddedLive, leafAlive, alive)
				}
			}()
		}
		wg.Wait()
	}

	// Phase B: cross-DTs among the batch's own inserts (sequential; each
	// pair is two coordinate comparisons).
	exp := newExpander(total)
	for i := range lives {
		for j := range lives {
			if i == j {
				continue
			}
			lt, eq := cmpMasks(lives[j].point, lives[i].point)
			if lt != 0 {
				results[i].Or(exp.dominated(lt, lt|eq))
			}
		}
	}
	for i, pi := range lives {
		added[pi.id] = results[i]
	}

	// Merge the reverse-direction patches: existing points the inserts
	// newly dominate get their masks grown (clone-on-first-write).
	clonedA := make(map[int32]bool)
	clonedP := make(map[int32]bool)
	for i := range lives {
		for _, pe := range patches[i] {
			if m, ok := added[pe.id]; ok {
				if !clonedA[pe.id] {
					m = m.Clone()
					added[pe.id] = m
					clonedA[pe.id] = true
				}
				m.Or(pe.bits)
				continue
			}
			m := patched[pe.id]
			switch {
			case m == nil:
				m = bitset.New(total)
				patched[pe.id] = m
			case !clonedP[pe.id]:
				m = m.Clone()
				patched[pe.id] = m
			}
			clonedP[pe.id] = true
			m.Or(pe.bits)
		}
	}

	// Maintain override lists the recompute below won't touch: drop
	// members an insert now dominates, add inserts that are members there.
	for delta, list := range cuboids {
		if _, re := affected[delta]; re {
			continue
		}
		changed := false
		newList := make([]int32, 0, len(list)+len(lives))
		for _, qid := range list {
			if _, dead := u.dead[qid]; dead {
				changed = true
				continue
			}
			dominated := false
			for i := range lives {
				if dominatesIn(lives[i].point, u.point(qid), delta) {
					dominated = true
					break
				}
			}
			if dominated {
				changed = true
				continue
			}
			newList = append(newList, qid)
		}
		for i, pi := range lives {
			if !results[i].Test(int(delta) - 1) {
				newList = append(newList, pi.id)
				changed = true
			}
		}
		if changed {
			cuboids[delta] = newList
		}
	}

	// Recompute the victims' cuboids exactly, over the final live set and
	// across the device pool. Row indices in the header are logical ids.
	if len(affected) > 0 {
		deltas := make([]mask.Mask, 0, len(affected))
		for delta := range affected {
			deltas = append(deltas, delta)
		}
		sort.Slice(deltas, func(a, b int) bool { return deltas[a] < deltas[b] })
		res := hetero.ComputeCuboids(u.datasetHeader(), u.liveRows(), deltas, u.devices())
		for delta, list := range res {
			cuboids[delta] = list
		}
	}

	snap := &Snapshot{
		epoch: prev.epoch + 1, d: u.d, ds: u.datasetHeader(),
		base: prev.base, tomb: tomb, added: added, patched: patched,
		cuboids: cuboids, live: prev.live + len(lives) - len(victims),
	}
	// Commit the epoch marker before publishing: once an epoch is served it
	// must survive a crash, or recovery could reuse the number for different
	// content and poison epoch-keyed caches. A commit failure still
	// publishes (writer state is already mutated); the serving layer's ack
	// commit reports the durability loss to the client.
	if u.journal != nil {
		_ = u.journal.Commit()
	}
	u.publish(snap)
	u.opt.Metrics.Batch(len(lives), len(victims), len(affected), time.Since(start))
	u.opt.Metrics.Epoch(snap.epoch, snap.live, snap.OverlaySize())
	u.maybeCompact(snap)
	return snap
}

// solveInsert computes one insert's B_{p∉S} (forward direction) and the
// mask patches it inflicts on existing points (reverse direction).
func (u *Updater) solveInsert(sol *templates.Solution, exp *expander, p []float32,
	extras, prevAddedLive []int32, leafAlive func(int) bool, alive func(int) bool) (*bitset.Set, []patchEntry) {
	sol.Reset()
	tree := u.mctx.Tree
	full := mask.Full(u.d)
	if tree != nil {
		medP, quartP, octP := tree.Route(p)
		sol.FilterExternal(medP, quartP, octP, 2, leafAlive)
		if sol.Remaining() > 0 {
			sol.RefineExternal(p, medP, quartP, octP, true, alive)
		}
	}
	for _, id := range extras {
		if sol.Remaining() == 0 {
			break
		}
		sol.ApplyDT(u.point(id), p, full, true)
	}
	res := sol.NotInS().Clone()

	// Reverse scan: which live points does p dominate, and in which
	// subspaces? Tree points in leaf order, then earlier added points.
	var plist []patchEntry
	if tree != nil {
		for pos := 0; pos < tree.Data.N; pos++ {
			if alive != nil && !alive(pos) {
				continue
			}
			lt, eq := cmpMasks(p, tree.Data.Point(pos))
			if lt != 0 {
				plist = append(plist, patchEntry{id: u.treeID[pos], bits: exp.dominated(lt, lt|eq)})
			}
		}
	}
	for _, id := range prevAddedLive {
		lt, eq := cmpMasks(p, u.point(id))
		if lt != 0 {
			plist = append(plist, patchEntry{id: id, bits: exp.dominated(lt, lt|eq)})
		}
	}
	return res, plist
}

func (u *Updater) publish(snap *Snapshot) {
	u.cur.Store(snap)
	keep := u.opt.History
	if keep == 0 {
		keep = DefaultHistory
	}
	if keep < 1 {
		keep = 1
	}
	u.histMu.Lock()
	u.hist = append(u.hist, snap)
	if len(u.hist) > keep {
		u.hist = u.hist[len(u.hist)-keep:]
	}
	u.histMu.Unlock()
}

// needsCompact reports whether the snapshot's overlay has crossed the
// auto-compaction trigger.
func (u *Updater) needsCompact(snap *Snapshot) bool {
	if !u.opt.AutoCompact {
		return false
	}
	frac := u.opt.CompactFraction
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	if frac < 0 {
		return false
	}
	floor := u.opt.MinCompactOverlay
	if floor == 0 {
		floor = DefaultMinCompactOverlay
	}
	ov := snap.OverlaySize()
	return ov >= floor && float64(ov) >= frac*float64(snap.base.points)
}

func (u *Updater) maybeCompact(snap *Snapshot) {
	if !u.needsCompact(snap) {
		return
	}
	select {
	case u.compactCh <- struct{}{}:
	default:
	}
}

func (u *Updater) compactLoop() {
	defer u.wg.Done()
	for {
		select {
		case <-u.closed:
			return
		case <-u.compactCh:
			// The signal can be stale: an explicit Compact — or WAL replay
			// of one, which runs before this loop starts — may have folded
			// the overlay after the signal was queued. Compacting again
			// would advance the epoch with nothing to fold, so a restart
			// would not recover to the pre-crash epoch.
			if u.needsCompact(u.Current()) {
				u.Compact()
			}
		}
	}
}

// ---- dominance helpers ----

type patchEntry struct {
	id   int32
	bits *bitset.Set
}

// expander memoises the expansion of a DT's (lt, lt|eq) mask pair into the
// bitset of dominated subspaces — submasks of lt|eq intersecting lt. The
// returned sets are shared and must never be mutated.
type expander struct {
	total int
	memo  map[uint64]*bitset.Set
}

func newExpander(total int) *expander {
	return &expander{total: total, memo: make(map[uint64]*bitset.Set)}
}

func (e *expander) dominated(lt, m mask.Mask) *bitset.Set {
	key := uint64(lt)<<32 | uint64(m)
	if b, ok := e.memo[key]; ok {
		return b
	}
	b := bitset.New(e.total)
	mask.SubmasksOf(m, func(sub mask.Mask) bool {
		if sub&lt != 0 {
			b.Set(int(sub) - 1)
		}
		return true
	})
	e.memo[key] = b
	return b
}

// cmpMasks returns the dims where p is strictly below q and where they tie.
func cmpMasks(p, q []float32) (lt, eq mask.Mask) {
	for j := range p {
		if p[j] < q[j] {
			lt |= 1 << uint(j)
		} else if p[j] == q[j] {
			eq |= 1 << uint(j)
		}
	}
	return lt, eq
}

// strictlyDominatesFull reports a < b on every dimension.
func strictlyDominatesFull(a, b []float32) bool {
	for j := range a {
		if a[j] >= b[j] {
			return false
		}
	}
	return true
}

// dominatesIn reports whether a dominates b in subspace delta: a ≤ b on
// every dim of delta, strictly on at least one.
func dominatesIn(a, b []float32, delta mask.Mask) bool {
	strict := false
	for j := 0; delta != 0; j, delta = j+1, delta>>1 {
		if delta&1 == 0 {
			continue
		}
		if a[j] > b[j] {
			return false
		}
		if a[j] < b[j] {
			strict = true
		}
	}
	return strict
}
