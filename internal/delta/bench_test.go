package delta

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"skycube/internal/gen"
)

// BenchmarkFlushInserts measures update throughput (inserts/s) as a
// function of batch size: each iteration buffers `batch` random points and
// flushes once, so the per-batch fixed costs — snapshot publication, patch
// merging, override maintenance — are amortised over more points as the
// batch grows. The EXPERIMENTS.md update-throughput recipe plots this.
func BenchmarkFlushInserts(b *testing.B) {
	const d = 5
	for _, batch := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ds := gen.Synthetic(gen.Independent, 20000, d, 1)
			u := NewUpdater(ds, Options{Threads: runtime.NumCPU()})
			defer u.Close()
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < batch; k++ {
					p := make([]float32, d)
					for j := range p {
						p[j] = rng.Float32()
					}
					if _, err := u.Insert(p); err != nil {
						b.Fatal(err)
					}
				}
				u.Flush()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "inserts/s")
		})
	}
}

// BenchmarkCompactionFraction sweeps the compaction threshold under a
// mixed insert/delete workload: a lower fraction rebuilds the base more
// often (costly, but keeps the overlay — and hence read overhead — small),
// a higher one lets patches pile up. Compaction is triggered synchronously
// from the measured loop so its cost lands inside the timing, and the
// compactions/op metric shows how often each setting pays it.
func BenchmarkCompactionFraction(b *testing.B) {
	const d, batch = 5, 50
	for _, frac := range []float64{0.02, 0.10, 0.25, 1.0} {
		b.Run(fmt.Sprintf("frac=%g", frac), func(b *testing.B) {
			ds := gen.Synthetic(gen.Independent, 20000, d, 3)
			u := NewUpdater(ds, Options{Threads: runtime.NumCPU()})
			defer u.Close()
			rng := rand.New(rand.NewSource(4))
			live := make([]int32, ds.N)
			for i := range live {
				live[i] = int32(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < batch; k++ {
					p := make([]float32, d)
					for j := range p {
						p[j] = rng.Float32()
					}
					id, err := u.Insert(p)
					if err != nil {
						b.Fatal(err)
					}
					live = append(live, id)
				}
				for k := 0; k < batch/2 && len(live) > 100; k++ {
					idx := rng.Intn(len(live))
					if err := u.Delete(live[idx]); err != nil {
						b.Fatal(err)
					}
					live = append(live[:idx], live[idx+1:]...)
				}
				u.Flush()
				if st := u.Stats(); float64(st.Overlay) >= frac*float64(st.BasePoints) {
					u.Compact()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(u.Stats().Compactions)/float64(b.N), "compactions/op")
		})
	}
}
