package bench

import (
	"fmt"
	"io"

	"skycube"
	"skycube/internal/gen"
)

// Sched compares the adaptive work-stealing scheduler against a static
// prepartitioned schedule on the cross-device MDMC workload (one CPU split
// into two sockets, two modelled 980s and a Titan). The adaptive run also
// reports its scheduling event totals — the same counters the /metrics
// surface exports as skycube_sched_*.
func Sched(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Scheduler: static vs adaptive cross-device MDMC (I %d×%d) [%s scale] ==\n",
		s.DefaultN, s.DefaultD, s.Name)
	ds, _ := dataset(gen.Independent, s.DefaultN, s.DefaultD)
	all := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}
	static := skycube.Scheduling{Prepartition: true, DisableStealing: true, DisableRetune: true}
	header(w, "schedule", "ms", "steals", "moved", "refills", "retunes")
	for _, v := range []struct {
		name string
		sch  skycube.Scheduling
	}{{"static", static}, {"adaptive", skycube.Scheduling{}}} {
		t, stats := timeBuild(ds, skycube.Options{
			Algorithm: skycube.MDMC, Threads: s.Threads, GPUs: all, CPUAlso: true,
			Scheduling: v.sch,
		})
		c := stats.Sched
		row(w, v.name, ms(t), fmt.Sprint(c.Steals), fmt.Sprint(c.StolenTasks),
			fmt.Sprint(c.Refills), fmt.Sprint(c.Retunes))
		if v.name == "adaptive" {
			header(w, "device", "tasks", "share")
			for _, sh := range stats.Shares {
				row(w, sh.Name, fmt.Sprint(sh.Tasks), fmt.Sprintf("%.1f%%", sh.Fraction*100))
			}
		}
	}
}
