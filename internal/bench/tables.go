package bench

import (
	"fmt"
	"io"
	"time"

	"skycube"
	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/qskycube"
	"skycube/internal/templates"
)

// paperExtSizes records the published |S⁺| of each real dataset (Table 2).
var paperExtSizes = map[gen.RealDataset]int{
	gen.NBA:       1796,
	gen.Household: 5774,
	gen.Covertype: 432253,
	gen.Weather:   78036,
}

// Table2 reproduces Table 2: the specifications of the real datasets —
// here, of their synthetic stand-ins — including the measured extended
// skyline size against the published one (scaled).
func Table2(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Table 2: real dataset stand-ins (scale %.3g) ==\n", s.RealScale)
	header(w, "ID", "n", "d", "|S+|", "paper |S+|", "paper n")
	for _, rw := range s.Real {
		ds := gen.Real(rw, s.RealScale, 20170514)
		ext := extendedSize(ds)
		paperN, _ := rw.Spec()
		scaledPaperExt := int(float64(paperExtSizes[rw]) * s.RealScale)
		row(w, rw.String(),
			fmt.Sprint(ds.N), fmt.Sprint(ds.Dims),
			fmt.Sprint(ext), fmt.Sprintf("~%d", scaledPaperExt), fmt.Sprint(paperN))
	}
}

// Table3 reproduces Table 3: execution times (ms) on the real-data
// stand-ins for every algorithm on the CPU, the GPU specialisations on one
// modelled card, and the cross-device runs.
func Table3(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Table 3: execution time (ms) on real-data stand-ins (scale %.3g) [%s scale] ==\n",
		s.RealScale, s.Name)
	labels := make([]string, len(s.Real))
	datasets := make([]*skycube.Dataset, len(s.Real))
	for i, rw := range s.Real {
		labels[i] = rw.String()
		datasets[i] = pub(gen.Real(rw, s.RealScale, 20170514))
	}
	header(w, append([]string{"algo"}, labels...)...)
	one := []skycube.GPUModel{skycube.GTX980}
	all := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}
	configs := []struct {
		label string
		opt   skycube.Options
	}{
		{"QSkycube", skycube.Options{Algorithm: skycube.QSkycube, Threads: 1}},
		{"PQSkycube", skycube.Options{Algorithm: skycube.PQSkycube, Threads: s.Threads}},
		{"STSC", skycube.Options{Algorithm: skycube.STSC, Threads: s.Threads}},
		{"SDSC", skycube.Options{Algorithm: skycube.SDSC, Threads: s.Threads}},
		{"MDMC", skycube.Options{Algorithm: skycube.MDMC, Threads: s.Threads}},
		{"SDSC-GPU", skycube.Options{Algorithm: skycube.SDSC, GPUs: one}},
		{"MDMC-GPU", skycube.Options{Algorithm: skycube.MDMC, GPUs: one, Threads: s.Threads}},
		{"SDSC-All", skycube.Options{Algorithm: skycube.SDSC, GPUs: all, CPUAlso: true, Threads: s.Threads}},
		{"MDMC-All", skycube.Options{Algorithm: skycube.MDMC, GPUs: all, CPUAlso: true, Threads: s.Threads}},
	}
	for _, c := range configs {
		cells := make([]string, 0, 4)
		for _, ds := range datasets {
			t, _ := timeBuild(ds, c.opt)
			cells = append(cells, ms(t))
		}
		row(w, c.label, cells...)
	}
}

// Ablations benchmarks the design decisions DESIGN.md calls out, on the
// default workload:
//
//  1. tree depth 3 vs 2 in MDMC;
//  2. MDMC's filter phase on vs off;
//  3. MDMC's seen-mask memoisation on vs off;
//  4. the extended skyline as reduced input vs recomputing every cuboid
//     from the full dataset;
//  5. min-cardinality parent selection vs first parent.
func Ablations(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Ablations (I %d×%d, %d threads) [%s scale] ==\n",
		s.DefaultN, s.DefaultD, s.Threads, s.Name)
	_, internal := dataset(gen.Independent, s.DefaultN, s.DefaultD)

	timeMDMC := func(opt templates.MDMCOptions) time.Duration {
		opt.Threads = s.Threads
		start := time.Now()
		templates.MDMC(internal, opt)
		return time.Since(start)
	}
	header(w, "variant", "ms")
	row(w, "MDMC depth-3", ms(timeMDMC(templates.MDMCOptions{})))
	row(w, "MDMC depth-2", ms(timeMDMC(templates.MDMCOptions{TreeDepth: 2})))
	row(w, "MDMC no-filter", ms(timeMDMC(templates.MDMCOptions{DisableFilter: true})))
	row(w, "MDMC no-memo", ms(timeMDMC(templates.MDMCOptions{DisableMemo: true})))

	timeTraversal := func(opt lattice.TopDownOptions, fullInput bool) time.Duration {
		hook := templates.HybridCuboid(1)
		if fullInput {
			inner := hook
			all := make([]int32, internal.N)
			for i := range all {
				all[i] = int32(i)
			}
			hook = func(ds2 *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
				return inner(ds2, all, delta)
			}
		}
		opt.CuboidThreads = s.Threads
		start := time.Now()
		lattice.TopDown(internal, hook, opt)
		return time.Since(start)
	}
	row(w, "ST min-parent", ms(timeTraversal(lattice.TopDownOptions{}, false)))
	row(w, "ST first-parent", ms(timeTraversal(lattice.TopDownOptions{FirstParent: true}, false)))
	row(w, "ST full-input", ms(timeTraversal(lattice.TopDownOptions{}, true)))

	start := time.Now()
	qskycube.Build(internal, qskycube.Options{Threads: s.Threads})
	row(w, "PQ (reference)", ms(time.Since(start)))

	// Hook pluggability (§4.2.2): SDSC with the paper's Hybrid hook versus
	// the PSkyline baseline, and the GPU hooks SkyAlign-style versus GGS.
	pds := pub(internal)
	tHy, _ := timeBuild(pds, skycube.Options{Algorithm: skycube.SDSC, Threads: s.Threads})
	row(w, "SDSC Hybrid", ms(tHy))
	tPS, _ := timeBuild(pds, skycube.Options{Algorithm: skycube.SDSC, Threads: s.Threads, SDSCHook: skycube.HookPSkyline})
	row(w, "SDSC PSkyline", ms(tPS))
	one := []skycube.GPUModel{skycube.GTX980}
	tSA, _ := timeBuild(pds, skycube.Options{Algorithm: skycube.SDSC, GPUs: one})
	row(w, "SDSC-GPU SkyAlign", ms(tSA))
	tGG, _ := timeBuild(pds, skycube.Options{Algorithm: skycube.SDSC, GPUs: one, SDSCHook: skycube.HookGGS})
	row(w, "SDSC-GPU GGS", ms(tGG))
}
