package bench

import (
	"bytes"
	"strings"
	"testing"
)

func tiny(t *testing.T) Scale {
	t.Helper()
	s, err := ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScaleByName(t *testing.T) {
	if _, err := ScaleByName("nope"); err == nil {
		t.Error("unknown scale should error")
	}
	s, err := ScaleByName("")
	if err != nil || s.Name != "small" {
		t.Errorf("default scale = %q, err %v", s.Name, err)
	}
	for _, name := range []string{"tiny", "small", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("scale %q: %v", name, err)
		}
		if len(s.NSweep) == 0 || len(s.DSweep) == 0 || s.Threads < 1 {
			t.Errorf("scale %q incomplete: %+v", name, s)
		}
	}
}

func TestFig4Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig4(&buf, s)
	for _, want := range []string{"Figure 4", "QSkycube", "cardinality", "dimensionality"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Fig4 output missing %q", want)
		}
	}
}

func TestFig6Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig6(&buf, s)
	for _, want := range []string{"Figure 6", "A:", "I:", "C:", "MD"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestFig7Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig7(&buf, s)
	for _, want := range []string{"Figure 7", "SD-GPU", "MD-All"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Fig7 output missing %q", want)
		}
	}
}

func TestFig12Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig12(&buf, s)
	o := buf.String()
	for _, want := range []string{"Figure 12", "CPU0", "980-1", "Titan", "%"} {
		if !strings.Contains(o, want) {
			t.Errorf("Fig12 output missing %q", want)
		}
	}
}

func TestFig13Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig13(&buf, s)
	for _, want := range []string{"Figure 13", "d'", "MD-All"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Fig13 output missing %q", want)
		}
	}
}

func TestFig5Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Fig5(&buf, s)
	o := buf.String()
	for _, want := range []string{"Figure 5", "one socket", "two sockets", "HT"} {
		if !strings.Contains(o, want) {
			t.Errorf("Fig5 output missing %q", want)
		}
	}
}

func TestFigHardwareOutput(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	FigHardware(&buf, s)
	o := buf.String()
	for _, want := range []string{"Figure 8a", "Figure 8b", "Figure 9a", "Figure 10a", "Figure 11"} {
		if !strings.Contains(o, want) {
			t.Errorf("hardware output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Table2(&buf, s)
	o := buf.String()
	// The tiny scale covers only the low-dimensional stand-ins.
	for _, want := range []string{"Table 2", "NBA", "HH"} {
		if !strings.Contains(o, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Table3(&buf, s)
	o := buf.String()
	for _, want := range []string{"Table 3", "QSkycube", "MDMC-All"} {
		if !strings.Contains(o, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func TestAblationsOutput(t *testing.T) {
	s := tiny(t)
	var buf bytes.Buffer
	Ablations(&buf, s)
	o := buf.String()
	for _, want := range []string{"Ablations", "depth-2", "no-filter", "first-parent", "full-input"} {
		if !strings.Contains(o, want) {
			t.Errorf("Ablations output missing %q", want)
		}
	}
}
