package bench

import (
	"fmt"
	"io"

	"skycube/internal/counters"
	"skycube/internal/data"
	"skycube/internal/gen"
)

// Fig5 reproduces Figure 5: parallel speedup as the thread count grows, on
// one socket (left plot) and two (right plot), with a final hyper-threaded
// point. Because this reproduction must run on arbitrary hosts (possibly a
// single core), speedups are *modelled*: each configuration is executed in
// the profiled build, and speedup is the ratio of modelled critical-path
// cycles (max over threads) against the one-thread run. Contention effects
// — shared L3 capacity, NUMA-remote lines, SMT-halved issue width — come
// from the memory-hierarchy model driven by the algorithms' real access
// streams.
func Fig5(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 5: modelled speedup vs threads (I %d×%d) [%s scale] ==\n", s.HWN, s.HWD, s.Name)
	ds := gen.Synthetic(gen.Independent, s.HWN, s.HWD, 20170514)

	type cfgPoint struct {
		label   string
		threads int
		sockets int
		smt     bool
	}
	var oneSocket, twoSocket []cfgPoint
	maxT := s.HWThreads
	for t := 1; t <= maxT; t++ {
		if t == 1 || t == maxT || t%2 == 0 {
			oneSocket = append(oneSocket, cfgPoint{fmt.Sprint(t), t, 1, false})
		}
	}
	oneSocket = append(oneSocket, cfgPoint{fmt.Sprintf("%dHT", 2*maxT), 2 * maxT, 1, true})
	for t := 2; t <= 2*maxT; t += 2 {
		if t == 2 || t == 2*maxT || t%4 == 0 {
			twoSocket = append(twoSocket, cfgPoint{fmt.Sprint(t), t, 2, false})
		}
	}
	twoSocket = append(twoSocket, cfgPoint{fmt.Sprintf("%dHT", 4*maxT), 4 * maxT, 2, true})

	baselines := map[string]int64{}
	for _, name := range []string{"PQ", "ST", "SD", "MD"} {
		r := profileOne(name, ds, counters.Config{Threads: 1, Sockets: 1, HugePages: true})
		baselines[name] = r.CriticalPathCycles
	}
	printBlock := func(title string, points []cfgPoint) {
		fmt.Fprintf(w, "-- %s --\n", title)
		header(w, "threads", "PQ", "ST", "SD", "MD")
		for _, pt := range points {
			cells := make([]string, 0, 4)
			for _, name := range []string{"PQ", "ST", "SD", "MD"} {
				r := profileOne(name, ds, counters.Config{
					Threads: pt.threads, Sockets: pt.sockets, HugePages: true, SMT: pt.smt,
				})
				sp := float64(baselines[name]) / float64(r.CriticalPathCycles)
				cells = append(cells, fmt.Sprintf("%.2f", sp))
			}
			row(w, pt.label, cells...)
		}
	}
	printBlock("one socket", oneSocket)
	printBlock("two sockets", twoSocket)
}

func profileOne(name string, ds *data.Dataset, cfg counters.Config) counters.Report {
	switch name {
	case "PQ":
		r, _ := counters.ProfilePQ(ds, cfg)
		return r
	case "ST":
		r, _ := counters.ProfileST(ds, cfg)
		return r
	case "SD":
		r, _ := counters.ProfileSD(ds, cfg)
		return r
	case "MD":
		r, _ := counters.ProfileMD(ds, cfg)
		return r
	}
	panic("bench: unknown profiled algorithm " + name)
}

// HardwareReports runs the profiled builds of all four algorithms on the
// hardware workload with HWThreads cores, once on one socket and once split
// across two — the shared input of Figures 8–9 and 11. A third pair with
// 4 KiB pages feeds Figure 10: at harness scale a transparent-huge-page
// footprint fits entirely in the STLB for every algorithm, so the paper's
// TLB contrast (which its 100 MB working sets expose even under THP) is
// only observable with small pages here.
func HardwareReports(s Scale) (one, two, tlb4k map[string]counters.Report) {
	ds := gen.Synthetic(gen.Independent, s.HWN, s.HWD, 20170514)
	one = map[string]counters.Report{}
	two = map[string]counters.Report{}
	tlb4k = map[string]counters.Report{}
	for _, name := range []string{"PQ", "ST", "SD", "MD"} {
		one[name] = profileOne(name, ds, counters.Config{Threads: s.HWThreads, Sockets: 1, HugePages: true})
		two[name] = profileOne(name, ds, counters.Config{Threads: s.HWThreads, Sockets: 2, HugePages: true})
		tlb4k[name] = profileOne(name, ds, counters.Config{Threads: s.HWThreads, Sockets: 1, HugePages: false})
	}
	return one, two, tlb4k
}

// FigHardware prints Figures 8–11 from one pair of profiled runs:
//
//	Fig 8  — L2 and L3 cache misses,
//	Fig 9  — cycles stalled on pending L2/L3 loads,
//	Fig 10 — STLB miss rate and page-walk cycle fraction,
//	Fig 11 — cycles per instruction,
//
// each on one socket versus two (10 modelled cores, default workload).
func FigHardware(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figures 8-11: modelled hardware counters (I %d×%d, %d cores) [%s scale] ==\n",
		s.HWN, s.HWD, s.HWThreads, s.Name)
	one, two, tlb4k := HardwareReports(s)
	names := []string{"PQ", "ST", "SD", "MD"}

	fmt.Fprintln(w, "-- Figure 8a: L2 misses --")
	header(w, "algo", "1 socket", "2 sockets")
	for _, n := range names {
		row(w, n, fmt.Sprint(one[n].Counters.L2Misses), fmt.Sprint(two[n].Counters.L2Misses))
	}
	fmt.Fprintln(w, "-- Figure 8b: L3 misses --")
	header(w, "algo", "1 socket", "2 sockets")
	for _, n := range names {
		row(w, n, fmt.Sprint(one[n].Counters.L3Misses), fmt.Sprint(two[n].Counters.L3Misses))
	}
	fmt.Fprintln(w, "-- Figure 9a: stalled cycles, L2 load pending --")
	header(w, "algo", "1 socket", "2 sockets")
	for _, n := range names {
		row(w, n, fmt.Sprint(one[n].Counters.StallL2Pending), fmt.Sprint(two[n].Counters.StallL2Pending))
	}
	fmt.Fprintln(w, "-- Figure 9b: stalled cycles, L3 load pending --")
	header(w, "algo", "1 socket", "2 sockets")
	for _, n := range names {
		row(w, n, fmt.Sprint(one[n].Counters.StallL3Pending), fmt.Sprint(two[n].Counters.StallL3Pending))
	}
	fmt.Fprintln(w, "-- Figure 10a: % of loads missing the STLB (4 KiB pages; see doc) --")
	header(w, "algo", "1 socket")
	for _, n := range names {
		row(w, n, fmt.Sprintf("%.4f%%", tlb4k[n].Counters.STLBMissRate()*100))
	}
	fmt.Fprintln(w, "-- Figure 10b: % of cycles in page walks (4 KiB pages) --")
	header(w, "algo", "1 socket")
	for _, n := range names {
		row(w, n, fmt.Sprintf("%.3f%%", tlb4k[n].Counters.PageWalkFraction(tlb4k[n].MachCfg)*100))
	}
	fmt.Fprintln(w, "-- Figure 11: cycles per instruction --")
	header(w, "algo", "1 socket", "2 sockets")
	for _, n := range names {
		row(w, n, fmt.Sprintf("%.3f", one[n].CPI()), fmt.Sprintf("%.3f", two[n].CPI()))
	}
}
