// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (§7 and Appendix A) it regenerates the
// corresponding rows or series — workload generation, parameter sweep,
// baselines, and printing — so EXPERIMENTS.md can record paper-versus-
// measured shapes. cmd/experiments is the CLI front end; the root-level
// bench_test.go exposes the same experiments as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"time"

	"skycube"
	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

// Scale is a preset of workload sizes. The paper's machine (2×10 cores,
// 3 GPUs) solved its default workload (independent, n = 500 000, d = 12) in
// seconds-to-minutes; this reproduction must also run on small hosts, so
// sweeps come in three sizes. "paper" uses the publication's parameters.
type Scale struct {
	Name string
	// NSweep is the cardinality sweep (at DForNSweep dimensions).
	NSweep     []int
	DForNSweep int
	// DSweep is the dimensionality sweep (at NForDSweep points).
	DSweep     []int
	NForDSweep int
	// DefaultN/DefaultD is the fixed workload for Figures 5 and 12.
	DefaultN, DefaultD int
	// HWN/HWD is the (smaller) workload for the profiled hardware runs.
	HWN, HWD int
	// Fig13N/Fig13D and Fig13Levels parameterise partial-skycube runs.
	Fig13N, Fig13D int
	Fig13Levels    []int
	// RealScale scales the real-data stand-ins (1 = published size).
	RealScale float64
	// Real lists which real-data stand-ins Tables 2–3 cover. The tiny scale
	// omits Covertype and Weather, whose dimensionalities (10 and 15) make
	// lattice-based runs expensive regardless of cardinality.
	Real []gen.RealDataset
	// Threads is the CPU worker count used throughout.
	Threads int
	// HWThreads is the modelled core count of the hardware figures (the
	// paper uses 10).
	HWThreads int
}

// Scales returns the available presets.
func Scales() map[string]Scale {
	return map[string]Scale{
		"tiny": {
			Name:   "tiny",
			NSweep: []int{500, 1000, 2000}, DForNSweep: 5,
			DSweep: []int{3, 4, 5}, NForDSweep: 800,
			DefaultN: 1000, DefaultD: 5,
			HWN: 400, HWD: 6,
			Fig13N: 500, Fig13D: 6, Fig13Levels: []int{2, 4, 6},
			RealScale: 0.002,
			Real:      []gen.RealDataset{gen.NBA, gen.Household},
			Threads:   4, HWThreads: 4,
		},
		"small": {
			Name:   "small",
			NSweep: []int{5000, 10000, 20000}, DForNSweep: 8,
			DSweep: []int{4, 6, 8, 10}, NForDSweep: 5000,
			DefaultN: 20000, DefaultD: 8,
			HWN: 2000, HWD: 8,
			Fig13N: 1500, Fig13D: 10, Fig13Levels: []int{2, 4, 6, 8, 10},
			RealScale: 0.002,
			Real:      []gen.RealDataset{gen.NBA, gen.Household, gen.Covertype, gen.Weather},
			Threads:   8, HWThreads: 10,
		},
		"paper": {
			Name:   "paper",
			NSweep: []int{100000, 250000, 500000, 750000, 1000000}, DForNSweep: 12,
			DSweep: []int{4, 6, 8, 10, 12, 14, 16}, NForDSweep: 500000,
			DefaultN: 500000, DefaultD: 12,
			HWN: 20000, HWD: 12,
			Fig13N: 500000, Fig13D: 16, Fig13Levels: []int{4, 6, 8, 10, 12, 14, 16},
			RealScale: 1,
			Real:      []gen.RealDataset{gen.NBA, gen.Household, gen.Covertype, gen.Weather},
			Threads:   20, HWThreads: 10,
		},
	}
}

// ScaleByName resolves a preset name, defaulting to "small".
func ScaleByName(name string) (Scale, error) {
	if name == "" {
		name = "small"
	}
	s, ok := Scales()[name]
	if !ok {
		return Scale{}, fmt.Errorf("bench: unknown scale %q (tiny, small, paper)", name)
	}
	return s, nil
}

// distributions in the paper's figure order: anticorrelated, independent,
// correlated (top to bottom).
var distributions = []gen.Distribution{gen.Anticorrelated, gen.Independent, gen.Correlated}

// dataset builds the synthetic workload with a fixed seed so runs are
// reproducible. Both representations are returned: the public one for
// skycube.Build and the internal one for the profiled/hardware runs.
func dataset(dist gen.Distribution, n, d int) (*skycube.Dataset, *data.Dataset) {
	internal := gen.Synthetic(dist, n, d, 20170514)
	return pub(internal), internal
}

// pub wraps an internal dataset in the public API type without copying.
func pub(ds *data.Dataset) *skycube.Dataset {
	out, err := skycube.NewDataset(ds.Dims, ds.Vals)
	if err != nil {
		panic(err)
	}
	return out
}

// timeBuild runs one Build and returns its wall-clock time and stats.
func timeBuild(ds *skycube.Dataset, opt skycube.Options) (time.Duration, skycube.Stats) {
	cube, stats, err := skycube.Build(ds, opt)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	_ = cube
	return stats.Elapsed, stats
}

// ms formats a duration as integral milliseconds, the paper's unit.
func ms(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}

// header prints a table header row.
func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i == 0 {
			fmt.Fprintf(w, "%-14s", c)
			continue
		}
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

// row prints one table row.
func row(w io.Writer, label string, cells ...string) {
	fmt.Fprintf(w, "%-14s", label)
	for _, c := range cells {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}

// extendedSize computes |S⁺(P)| of the full space, used by Table 2.
func extendedSize(ds *data.Dataset) int {
	full := mask.Full(ds.Dims)
	return len(skyline.ExtendedSkyline(ds, nil, full, skyline.AlgoHybrid, 4))
}
