package bench

import (
	"fmt"
	"io"

	"skycube"
	"skycube/internal/gen"
)

// Fig4 reproduces Figure 4: single-threaded QSkycube versus our
// PQSkycube parallelisation run with one thread, over the cardinality
// sweep (left plot) and dimensionality sweep (right plot) on independent
// data. The point being made is that the parallelisation introduces no
// single-thread overhead.
func Fig4(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 4: QSkycube vs PQSkycube, single-threaded (I) [%s scale] ==\n", s.Name)
	fmt.Fprintln(w, "-- time (ms) vs cardinality, d =", s.DForNSweep, "--")
	header(w, "n", "PQ", "QSkycube")
	for _, n := range s.NSweep {
		ds, _ := dataset(gen.Independent, n, s.DForNSweep)
		tPQ, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.PQSkycube, Threads: 1})
		tQ, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
		row(w, fmt.Sprint(n), ms(tPQ), ms(tQ))
	}
	fmt.Fprintln(w, "-- time (ms) vs dimensionality, n =", s.NForDSweep, "--")
	header(w, "d", "PQ", "QSkycube")
	for _, d := range s.DSweep {
		ds, _ := dataset(gen.Independent, s.NForDSweep, d)
		tPQ, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.PQSkycube, Threads: 1})
		tQ, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.QSkycube, Threads: 1})
		row(w, fmt.Sprint(d), ms(tPQ), ms(tQ))
	}
}

// cpuAlgos are the four CPU algorithms of Figures 5–6 in column order.
var cpuAlgos = []skycube.Algorithm{
	skycube.PQSkycube, skycube.STSC, skycube.SDSC, skycube.MDMC,
}

// Fig6 reproduces Figure 6: CPU execution times for PQ, ST, SD and MD over
// cardinality and dimensionality, one block per distribution (A, I, C).
func Fig6(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 6: CPU execution times (ms) [%s scale, %d threads] ==\n", s.Name, s.Threads)
	for _, dist := range distributions {
		fmt.Fprintf(w, "-- %v: vs cardinality (d = %d) --\n", dist, s.DForNSweep)
		header(w, "n", "PQ", "ST", "SD", "MD")
		for _, n := range s.NSweep {
			ds, _ := dataset(dist, n, s.DForNSweep)
			cells := make([]string, 0, 4)
			for _, a := range cpuAlgos {
				t, _ := timeBuild(ds, skycube.Options{Algorithm: a, Threads: s.Threads})
				cells = append(cells, ms(t))
			}
			row(w, fmt.Sprint(n), cells...)
		}
		fmt.Fprintf(w, "-- %v: vs dimensionality (n = %d) --\n", dist, s.NForDSweep)
		header(w, "d", "PQ", "ST", "SD", "MD")
		for _, d := range s.DSweep {
			ds, _ := dataset(dist, s.NForDSweep, d)
			cells := make([]string, 0, 4)
			for _, a := range cpuAlgos {
				t, _ := timeBuild(ds, skycube.Options{Algorithm: a, Threads: s.Threads})
				cells = append(cells, ms(t))
			}
			row(w, fmt.Sprint(d), cells...)
		}
	}
}

// Fig7 reproduces Figure 7: GPU and cross-device execution times for the
// SDSC and MDMC specialisations. "-GPU" runs on one modelled GTX 980;
// "-All" adds a second 980, a Titan, and the CPU. The GPU cost model's
// seconds are printed alongside wall clock, since the wall clock of a
// simulated device reflects the host, not the card.
func Fig7(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 7: GPU and cross-device times (ms wall / ms modelled) [%s scale] ==\n", s.Name)
	one := []skycube.GPUModel{skycube.GTX980}
	all := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}
	run := func(ds *skycube.Dataset, algo skycube.Algorithm, gpus []skycube.GPUModel, cpuAlso bool) string {
		t, stats := timeBuild(ds, skycube.Options{
			Algorithm: algo, Threads: s.Threads, GPUs: gpus, CPUAlso: cpuAlso,
		})
		model := 0.0
		for _, m := range stats.GPUModelSeconds {
			if m > model {
				model = m
			}
		}
		return fmt.Sprintf("%s/%.0f", ms(t), model*1000)
	}
	for _, dist := range distributions {
		fmt.Fprintf(w, "-- %v: vs cardinality (d = %d) --\n", dist, s.DForNSweep)
		header(w, "n", "SD-GPU", "MD-GPU", "SD-All", "MD-All")
		for _, n := range s.NSweep {
			ds, _ := dataset(dist, n, s.DForNSweep)
			row(w, fmt.Sprint(n),
				run(ds, skycube.SDSC, one, false),
				run(ds, skycube.MDMC, one, false),
				run(ds, skycube.SDSC, all, true),
				run(ds, skycube.MDMC, all, true))
		}
		fmt.Fprintf(w, "-- %v: vs dimensionality (n = %d) --\n", dist, s.NForDSweep)
		header(w, "d", "SD-GPU", "MD-GPU", "SD-All", "MD-All")
		for _, d := range s.DSweep {
			ds, _ := dataset(dist, s.NForDSweep, d)
			row(w, fmt.Sprint(d),
				run(ds, skycube.SDSC, one, false),
				run(ds, skycube.MDMC, one, false),
				run(ds, skycube.SDSC, all, true),
				run(ds, skycube.MDMC, all, true))
		}
	}
}

// Fig12 reproduces Figure 12: the fraction of parallel tasks executed by
// each device in a cross-device run (SD counts cuboids; MD counts points)
// on the default workload.
func Fig12(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 12: work share per device (default workload, I %d×%d) [%s scale] ==\n",
		s.DefaultN, s.DefaultD, s.Name)
	ds, _ := dataset(gen.Independent, s.DefaultN, s.DefaultD)
	all := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}
	for _, algo := range []skycube.Algorithm{skycube.SDSC, skycube.MDMC} {
		_, stats := timeBuild(ds, skycube.Options{
			Algorithm: algo, Threads: s.Threads, GPUs: all, CPUAlso: true,
		})
		fmt.Fprintf(w, "-- %v --\n", algo)
		header(w, "device", "tasks", "share")
		for _, sh := range stats.Shares {
			row(w, sh.Name, fmt.Sprint(sh.Tasks), fmt.Sprintf("%.1f%%", sh.Fraction*100))
		}
	}
}

// Fig13 reproduces Figure 13 (App. A.2): partial skycube construction time
// as the number of materialised lattice levels d′ grows, per distribution,
// for the CPU algorithms and the GPU/cross-device specialisations.
func Fig13(w io.Writer, s Scale) {
	fmt.Fprintf(w, "== Figure 13: partial skycubes, time (ms) vs levels d' (n = %d, d = %d) [%s scale] ==\n",
		s.Fig13N, s.Fig13D, s.Name)
	one := []skycube.GPUModel{skycube.GTX980}
	all := []skycube.GPUModel{skycube.GTX980, skycube.GTX980, skycube.GTXTitan}
	for _, dist := range distributions {
		fmt.Fprintf(w, "-- %v --\n", dist)
		header(w, "d'", "PQ", "ST", "SD", "MD", "SD-GPU", "MD-GPU", "SD-All", "MD-All")
		ds, _ := dataset(dist, s.Fig13N, s.Fig13D)
		for _, lvl := range s.Fig13Levels {
			cells := make([]string, 0, 8)
			for _, a := range cpuAlgos {
				t, _ := timeBuild(ds, skycube.Options{Algorithm: a, Threads: s.Threads, MaxLevel: lvl})
				cells = append(cells, ms(t))
			}
			tSDG, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.SDSC, GPUs: one, MaxLevel: lvl})
			tMDG, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.MDMC, GPUs: one, MaxLevel: lvl, Threads: s.Threads})
			tSDA, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.SDSC, GPUs: all, CPUAlso: true, Threads: s.Threads, MaxLevel: lvl})
			tMDA, _ := timeBuild(ds, skycube.Options{Algorithm: skycube.MDMC, GPUs: all, CPUAlso: true, Threads: s.Threads, MaxLevel: lvl})
			cells = append(cells, ms(tSDG), ms(tMDG), ms(tSDA), ms(tMDA))
			row(w, fmt.Sprint(lvl), cells...)
		}
	}
}
