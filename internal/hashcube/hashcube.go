// Package hashcube implements the HashCube skycube representation (paper
// Fig. 1b and Appendix B.1): each point p is represented by its bitmask
// B_{p∉S} — bit δ−1 set iff p is dominated in subspace δ — split into
// 32-bit words that are hashed independently. A point id is therefore
// stored at most once per 32 subspaces, giving up to 32-fold compression
// over the lattice, and insertion is per-point, which matches MDMC's
// point-parallel tasks: each task asynchronously inserts one finished
// bitmask.
package hashcube

import (
	"sort"
	"sync"

	"skycube/internal/bitset"
	"skycube/internal/mask"
)

// WordBits is w, the subspace group width.
const WordBits = 32

// HashCube is a skycube stored as per-word hash tables from word value to
// the ids sharing it. Safe for concurrent Insert.
type HashCube struct {
	D     int
	words []wordTable
}

type wordTable struct {
	mu sync.Mutex
	m  map[uint32][]int32
}

// New returns an empty HashCube over d dimensions.
func New(d int) *HashCube {
	nWords := (mask.NumSubspaces(d) + WordBits - 1) / WordBits
	h := &HashCube{D: d, words: make([]wordTable, nWords)}
	for i := range h.words {
		h.words[i].m = make(map[uint32][]int32)
	}
	return h
}

// Insert records point id with non-membership bitmask notInS (bit δ−1 set
// iff id ∉ S_δ). Fully-dominated words (all bits set) are not stored at
// all — those points are recoverable from no skyline in that word's group,
// which is the HashCube's compression trick.
func (h *HashCube) Insert(id int32, notInS *bitset.Set) {
	for w := range h.words {
		key := notInS.Word32(w)
		if key == h.fullWordMask(w) {
			continue
		}
		t := &h.words[w]
		t.mu.Lock()
		t.m[key] = append(t.m[key], id)
		t.mu.Unlock()
	}
}

// fullWordMask returns the all-dominated key for word w, accounting for the
// final word covering fewer than 32 subspaces.
func (h *HashCube) fullWordMask(w int) uint32 {
	total := mask.NumSubspaces(h.D)
	bitsInWord := total - w*WordBits
	if bitsInWord >= WordBits {
		return ^uint32(0)
	}
	return 1<<uint(bitsInWord) - 1
}

// Skyline reconstructs S_δ: the concatenation of the id lists of every key
// of word (δ−1)/32 whose bit (δ−1)%32 is *unset* (the point is not
// dominated in δ). Ids are returned sorted ascending.
func (h *HashCube) Skyline(delta mask.Mask) []int32 {
	if delta == 0 || int(delta) > mask.NumSubspaces(h.D) {
		return nil
	}
	w := int(delta-1) / WordBits
	bit := uint32(1) << uint(int(delta-1)%WordBits)
	t := &h.words[w]
	t.mu.Lock()
	var out []int32
	for key, ids := range t.m {
		if key&bit == 0 {
			out = append(out, ids...)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Membership returns the subspaces in which point id is a skyline member,
// ascending. This is the HashCube's native query direction (App. B.1: the
// HashCube is defined with respect to each point, the lattice with respect
// to each subspace): the id's key in each word names its non-memberships
// for 32 subspaces at once. Points that were never inserted — fully
// dominated everywhere — yield nil.
func (h *HashCube) Membership(id int32) []mask.Mask {
	var out []mask.Mask
	total := mask.NumSubspaces(h.D)
	for w := range h.words {
		t := &h.words[w]
		t.mu.Lock()
		var key uint32
		found := false
		for k, ids := range t.m {
			for _, v := range ids {
				if v == id {
					key = k
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		t.mu.Unlock()
		if !found {
			// Absent from this word: dominated in all of its subspaces.
			continue
		}
		base := w * WordBits
		for b := 0; b < WordBits && base+b < total; b++ {
			if key&(1<<uint(b)) == 0 {
				out = append(out, mask.Mask(base+b+1))
			}
		}
	}
	return out
}

// Remove deletes every stored occurrence of id — the tombstone hook of
// incremental maintenance. Removing an id that was never inserted (or whose
// words were all fully dominated) is a no-op. List order within a key is
// not preserved: Skyline sorts its output and Membership only scans, so no
// reader depends on it.
func (h *HashCube) Remove(id int32) {
	for w := range h.words {
		t := &h.words[w]
		t.mu.Lock()
		for key, ids := range t.m {
			for i, v := range ids {
				if v != id {
					continue
				}
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				if len(ids) == 0 {
					delete(t.m, key)
				} else {
					t.m[key] = ids
				}
				break
			}
		}
		t.mu.Unlock()
	}
}

// Patch augments id's stored non-membership mask with the set bits of
// extra, relocating the id between hash keys: masks only grow under
// inserts (a new point can only dominate existing points in more
// subspaces), so the patch ORs per word. A word whose key becomes fully
// dominated is dropped entirely, preserving the representation's
// compression invariant; a word from which the id is already absent stays
// absent (it was fully dominated before, and remains so).
func (h *HashCube) Patch(id int32, extra *bitset.Set) {
	for w := range h.words {
		x := extra.Word32(w)
		if x == 0 {
			continue
		}
		t := &h.words[w]
		t.mu.Lock()
		for key, ids := range t.m {
			found := false
			for i, v := range ids {
				if v != id {
					continue
				}
				found = true
				nk := key | x
				if nk == key {
					break
				}
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				if len(ids) == 0 {
					delete(t.m, key)
				} else {
					t.m[key] = ids
				}
				if nk != h.fullWordMask(w) {
					t.m[nk] = append(t.m[nk], id)
				}
				break
			}
			if found {
				break
			}
		}
		t.mu.Unlock()
	}
}

// IDCount returns the total number of stored ids — the HashCube's
// space measure, comparable with Lattice.IDCount.
func (h *HashCube) IDCount() int {
	total := 0
	for w := range h.words {
		t := &h.words[w]
		t.mu.Lock()
		for _, ids := range t.m {
			total += len(ids)
		}
		t.mu.Unlock()
	}
	return total
}

// Keys returns the number of distinct hash keys per word, a diagnostic for
// the compression analysis.
func (h *HashCube) Keys() []int {
	out := make([]int, len(h.words))
	for w := range h.words {
		t := &h.words[w]
		t.mu.Lock()
		out[w] = len(t.m)
		t.mu.Unlock()
	}
	return out
}
