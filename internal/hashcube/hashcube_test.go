package hashcube

import (
	"reflect"
	"sync"
	"testing"

	"skycube/internal/bitset"
	"skycube/internal/mask"
)

// buildFlightCube constructs the HashCube of Figure 1b: the flight skycube
// with d = 3, stored from each point's B_{p∉S}.
func buildFlightCube() *HashCube {
	h := New(3)
	// Non-membership masks derived from Figure 1a (bit δ−1 set iff ∉ S_δ).
	notIn := map[int32][]mask.Mask{
		0: {1, 2, 3},             // f0 ∉ S1,S2,S3
		1: {1, 2, 4},             // f1 ∉ S1,S2,S4
		2: {2, 4, 6},             // f2 ∉ S2,S4,S6
		3: {1, 4, 5},             // f3 ∉ S1,S4,S5
		4: {1, 2, 3, 4, 5, 6, 7}, // f4 dominated everywhere
	}
	for id, deltas := range notIn {
		b := bitset.New(mask.NumSubspaces(3))
		for _, d := range deltas {
			b.Set(int(d - 1))
		}
		h.Insert(id, b)
	}
	return h
}

var flightSkylines = map[mask.Mask][]int32{
	0b100: {0}, 0b010: {3}, 0b001: {2},
	0b101: {0, 1, 2}, 0b110: {0, 1, 3}, 0b011: {1, 2, 3},
	0b111: {0, 1, 2, 3},
}

func TestFlightCubeRetrieval(t *testing.T) {
	h := buildFlightCube()
	for delta, want := range flightSkylines {
		if got := h.Skyline(delta); !reflect.DeepEqual(got, want) {
			t.Errorf("S_%03b = %v, want %v", delta, got, want)
		}
	}
}

func TestFullyDominatedPointNotStored(t *testing.T) {
	h := buildFlightCube()
	// f4 is dominated in all 7 subspaces of the single word, so it must not
	// be stored at all.
	if got := h.IDCount(); got != 4 {
		t.Errorf("IDCount = %d, want 4 (f4 omitted)", got)
	}
}

func TestSkylineOutOfRange(t *testing.T) {
	h := New(3)
	if h.Skyline(0) != nil {
		t.Error("Skyline(0) should be nil")
	}
	if h.Skyline(8) != nil {
		t.Error("Skyline(2^d) should be nil")
	}
}

func TestMultiWordCube(t *testing.T) {
	// d = 6 → 63 subspaces → 2 words. A point dominated in all of word 0's
	// subspaces but none of word 1's must be stored only under word 1.
	h := New(6)
	b := bitset.New(63)
	for i := 0; i < 32; i++ {
		b.Set(i)
	}
	h.Insert(7, b)
	if got := h.Skyline(1); len(got) != 0 {
		t.Errorf("S_1 = %v, want empty", got)
	}
	if got := h.Skyline(33); !reflect.DeepEqual(got, []int32{7}) {
		t.Errorf("S_33 = %v, want [7]", got)
	}
	if got := h.IDCount(); got != 1 {
		t.Errorf("IDCount = %d, want 1", got)
	}
	keys := h.Keys()
	if keys[0] != 0 || keys[1] != 1 {
		t.Errorf("Keys = %v, want [0 1]", keys)
	}
}

func TestLastWordPartialWidth(t *testing.T) {
	// d = 6: word 1 covers subspaces 33..63, i.e. 31 bits. A point
	// dominated in subspaces 33..63 has a full *partial* word and must be
	// omitted from word 1.
	h := New(6)
	b := bitset.New(63)
	for i := 32; i < 63; i++ {
		b.Set(i)
	}
	h.Insert(3, b)
	if got := h.Skyline(40); len(got) != 0 {
		t.Errorf("S_40 = %v, want empty", got)
	}
	if got := h.Skyline(1); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("S_1 = %v, want [3]", got)
	}
	if got := h.IDCount(); got != 1 {
		t.Errorf("IDCount = %d, want 1 (partial word omitted)", got)
	}
}

func TestConcurrentInsert(t *testing.T) {
	// MDMC inserts asynchronously from many tasks.
	const n = 500
	h := New(4)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int32) {
			defer wg.Done()
			b := bitset.New(15)
			// Even ids in every skyline; odd ids dominated in δ=1 only.
			if id%2 == 1 {
				b.Set(0)
			}
			h.Insert(id, b)
		}(int32(i))
	}
	wg.Wait()
	s1 := h.Skyline(1)
	if len(s1) != n/2 {
		t.Fatalf("S_1 has %d ids, want %d", len(s1), n/2)
	}
	s2 := h.Skyline(2)
	if len(s2) != n {
		t.Fatalf("S_2 has %d ids, want %d", len(s2), n)
	}
	for i := 1; i < len(s2); i++ {
		if s2[i-1] >= s2[i] {
			t.Fatal("Skyline ids not sorted")
		}
	}
}
