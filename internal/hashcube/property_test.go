package hashcube

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"skycube/internal/bitset"
	"skycube/internal/mask"
)

// Property: for arbitrary non-membership bitmasks, retrieval inverts
// insertion exactly — Skyline(δ) returns id iff bit δ−1 was unset — and
// Membership(id) is the exact complement list.
func TestQuickInsertRetrieveRoundTrip(t *testing.T) {
	f := func(masks []uint64, d8 uint8) bool {
		d := int(d8%5) + 2 // 2..6 dims → 1 or 2 words
		total := mask.NumSubspaces(d)
		h := New(d)
		want := make(map[mask.Mask][]int32) // subspace → member ids
		for id, m := range masks {
			b := bitset.New(total)
			for bit := 0; bit < total; bit++ {
				if m&(1<<uint(bit%64)) != 0 && (bit+id)%3 != 0 {
					b.Set(bit)
				}
			}
			h.Insert(int32(id), b)
			for delta := mask.Mask(1); int(delta) <= total; delta++ {
				if !b.Test(int(delta) - 1) {
					want[delta] = append(want[delta], int32(id))
				}
			}
		}
		for delta := mask.Mask(1); int(delta) <= total; delta++ {
			if got := h.Skyline(delta); !reflect.DeepEqual(got, want[delta]) {
				return false
			}
		}
		// Membership must be the transpose of the skyline listings.
		member := make(map[int32][]mask.Mask)
		for delta := mask.Mask(1); int(delta) <= total; delta++ {
			for _, id := range want[delta] {
				member[id] = append(member[id], delta)
			}
		}
		for id := range masks {
			if got := h.Membership(int32(id)); !reflect.DeepEqual(got, member[int32(id)]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			masks := make([]uint64, 1+rng.Intn(30))
			for i := range masks {
				masks[i] = rng.Uint64()
			}
			v[0] = reflect.ValueOf(masks)
			v[1] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: any interleaving of Insert, Patch and Remove leaves the cube
// indistinguishable — Skyline and Membership over every subspace — from a
// cube rebuilt from scratch out of the surviving ids' final masks. This is
// the contract the incremental-maintenance overlay (internal/delta) and
// the in-place mutation hooks share.
func TestQuickMutateEquivalentToRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5) // 2..6 dims → crosses the 32-bit word boundary at d=6
		total := mask.NumSubspaces(d)
		h := New(d)
		shadow := make(map[int32]*bitset.Set)
		nextID := int32(0)

		randMask := func() *bitset.Set {
			b := bitset.New(total)
			for bit := 0; bit < total; bit++ {
				if rng.Intn(3) == 0 {
					b.Set(bit)
				}
			}
			return b
		}
		ids := func() []int32 {
			out := make([]int32, 0, len(shadow))
			for id := range shadow {
				out = append(out, id)
			}
			sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
			return out
		}

		for op := 0; op < 120; op++ {
			switch live := ids(); {
			case len(live) == 0 || rng.Intn(3) == 0: // insert
				m := randMask()
				h.Insert(nextID, m)
				shadow[nextID] = m
				nextID++
			case rng.Intn(2) == 0: // patch
				id := live[rng.Intn(len(live))]
				extra := randMask()
				h.Patch(id, extra)
				shadow[id].Or(extra)
			default: // remove
				id := live[rng.Intn(len(live))]
				h.Remove(id)
				delete(shadow, id)
			}
		}

		rebuilt := New(d)
		for id, m := range shadow {
			rebuilt.Insert(id, m)
		}
		for delta := mask.Mask(1); int(delta) <= total; delta++ {
			if !reflect.DeepEqual(h.Skyline(delta), rebuilt.Skyline(delta)) {
				return false
			}
		}
		for id := int32(0); id < nextID; id++ {
			if !reflect.DeepEqual(h.Membership(id), rebuilt.Membership(id)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			v[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: IDCount never exceeds ids × words, and equals the sum of all
// per-subspace listings' transposed storage.
func TestQuickIDCountBounds(t *testing.T) {
	f := func(masks []uint16) bool {
		const d = 4 // 15 subspaces → 1 word
		h := New(d)
		for id, m := range masks {
			b := bitset.New(15)
			for bit := 0; bit < 15; bit++ {
				if m&(1<<uint(bit)) != 0 {
					b.Set(bit)
				}
			}
			h.Insert(int32(id), b)
		}
		count := h.IDCount()
		if count > len(masks) {
			return false // one word → at most one entry per id
		}
		// Ids with all 15 bits set are omitted entirely.
		omitted := 0
		for _, m := range masks {
			if m&0x7fff == 0x7fff {
				omitted++
			}
		}
		return count == len(masks)-omitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
