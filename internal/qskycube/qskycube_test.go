package qskycube

import (
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

func TestBuildMatchesDirectComputation(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Anticorrelated} {
		ds := gen.Synthetic(dist, 350, 5, 7)
		for _, threads := range []int{1, 4} {
			l := Build(ds, Options{Threads: threads})
			for _, delta := range mask.Subspaces(5) {
				want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
				if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
					t.Errorf("%v threads=%d δ=%05b: %v, want %v", dist, threads, delta, got, want.Skyline)
				}
			}
		}
	}
}

func TestSequentialAndParallelAgree(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 500, 4, 3)
	seq := Build(ds, Options{Threads: 1})
	par := Build(ds, Options{Threads: 8})
	for _, delta := range mask.Subspaces(4) {
		if !reflect.DeepEqual(seq.Skyline(delta), par.Skyline(delta)) {
			t.Errorf("δ=%04b: sequential and parallel disagree", delta)
		}
		if !reflect.DeepEqual(seq.ExtOnly[delta], par.ExtOnly[delta]) {
			t.Errorf("δ=%04b: extended sets disagree", delta)
		}
	}
}

func TestPartialBuild(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 200, 5, 9)
	l := Build(ds, Options{Threads: 2, MaxLevel: 2})
	for _, delta := range mask.Subspaces(5) {
		got := l.Skyline(delta)
		if mask.Count(delta) > 2 {
			if got != nil {
				t.Errorf("δ=%b above MaxLevel was materialised", delta)
			}
			continue
		}
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%05b: %v, want %v", delta, got, want.Skyline)
		}
	}
}

func TestCuboidProducesBothSets(t *testing.T) {
	ds := data.FromRows([][]float32{
		{1, 2}, {2, 1}, {1, 2}, {3, 3},
	})
	rows := []int32{0, 1, 2, 3}
	sky, extOnly := Cuboid(ds, rows, 0b11)
	if !reflect.DeepEqual(sky, []int32{0, 1, 2}) {
		t.Errorf("skyline = %v", sky)
	}
	// Row 3 is strictly dominated, so it is not even extended-only.
	if len(extOnly) != 0 {
		t.Errorf("extOnly = %v, want empty", extOnly)
	}
}
