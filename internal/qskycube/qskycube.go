// Package qskycube implements the evaluation baseline (paper §7.1): the
// sequential state-of-the-art QSkycube (Lee & Hwang) — a top-down lattice
// traversal whose per-cuboid engine is the point-based BSkyTree — and
// PQSkycube, the paper's direct parallelisation of it with a parallel loop
// over the cuboids of each lattice level.
//
// The defining performance characteristic the paper ascribes to this
// baseline — a variable-depth, pointer-based recursive tree per cuboid that
// competes for shared cache and scales poorly across sockets — is
// faithfully present: skyline.AlgoBSkyTree allocates its partition tree
// recursively per cuboid, per level.
package qskycube

import (
	"skycube/internal/data"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
)

// Options configure a build.
type Options struct {
	// Threads is the number of concurrently computed cuboids. 1 reproduces
	// sequential QSkycube; >1 is PQSkycube.
	Threads int
	// MaxLevel restricts materialisation to |δ| ≤ MaxLevel (App. A.2).
	MaxLevel int
	// Trace, if non-nil, records level and cuboid spans.
	Trace *obs.Trace
	// OnCuboid, if non-nil, is called after each cuboid completes.
	OnCuboid func(delta mask.Mask)
}

// Build materialises the skycube of ds as a lattice.
func Build(ds *data.Dataset, opt Options) *lattice.Lattice {
	return lattice.TopDown(ds, Cuboid, lattice.TopDownOptions{
		CuboidThreads: opt.Threads,
		MaxLevel:      opt.MaxLevel,
		Trace:         opt.Trace,
		TrackPrefix:   "qsc",
		OnCuboid:      opt.OnCuboid,
	})
}

// Cuboid is QSkycube's per-cuboid hook: a single-threaded BSkyTree run that
// produces both S_δ and S⁺_δ \ S_δ.
func Cuboid(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32) {
	res := skyline.Compute(ds, rows, delta, skyline.AlgoBSkyTree, 1)
	return res.Skyline, res.ExtOnly
}
