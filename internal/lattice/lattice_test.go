package lattice

import (
	"reflect"
	"sync/atomic"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/skyline"
)

func flightData() *data.Dataset {
	return data.FromRows([][]float32{
		{12.20, 17, 120}, // f0
		{9.00, 12, 148},  // f1
		{8.20, 13, 169},  // f2
		{21.25, 3, 186},  // f3
		{21.25, 5, 196},  // f4
	})
}

func bnlCuboid(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32) {
	res := skyline.Compute(ds, rows, delta, skyline.AlgoBNL, 1)
	return res.Skyline, res.ExtOnly
}

// Figure 1a ground truth.
var flightSkylines = map[mask.Mask][]int32{
	0b100: {0}, 0b010: {3}, 0b001: {2},
	0b101: {0, 1, 2}, 0b110: {0, 1, 3}, 0b011: {1, 2, 3},
	0b111: {0, 1, 2, 3},
}

func TestTopDownFlights(t *testing.T) {
	for _, threads := range []int{1, 3} {
		l := TopDown(flightData(), bnlCuboid, TopDownOptions{CuboidThreads: threads})
		for delta, want := range flightSkylines {
			if got := l.Skyline(delta); !reflect.DeepEqual(got, want) {
				t.Errorf("threads=%d: S_%03b = %v, want %v", threads, delta, got, want)
			}
		}
	}
}

func TestTopDownMatchesDirectComputation(t *testing.T) {
	// The reduced-input traversal must agree with computing each cuboid
	// from scratch on the full dataset.
	ds := gen.Synthetic(gen.Anticorrelated, 300, 5, 77)
	l := TopDown(ds, bnlCuboid, TopDownOptions{CuboidThreads: 4})
	for _, delta := range mask.Subspaces(5) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%05b: lattice %v != direct %v", delta, got, want.Skyline)
		}
		if got := l.ExtOnly[delta]; !reflect.DeepEqual(got, want.ExtOnly) {
			t.Errorf("δ=%05b: extOnly %v != direct %v", delta, got, want.ExtOnly)
		}
	}
}

func TestPartialSkycube(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 250, 6, 13)
	const maxLevel = 3
	l := TopDown(ds, bnlCuboid, TopDownOptions{CuboidThreads: 2, MaxLevel: maxLevel})
	if l.MaxLevel != maxLevel {
		t.Fatalf("MaxLevel = %d", l.MaxLevel)
	}
	for _, delta := range mask.Subspaces(6) {
		got := l.Skyline(delta)
		if mask.Count(delta) > maxLevel {
			if got != nil {
				t.Errorf("δ=%b above MaxLevel was materialised", delta)
			}
			continue
		}
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%06b: partial %v != direct %v", delta, got, want.Skyline)
		}
	}
}

func TestOnCuboidCallbackCountsAllCuboids(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 100, 4, 5)
	var count int64
	TopDown(ds, bnlCuboid, TopDownOptions{
		CuboidThreads: 3,
		OnCuboid:      func(mask.Mask) { atomic.AddInt64(&count, 1) },
	})
	if count != int64(mask.NumSubspaces(4)) {
		t.Errorf("callback fired %d times, want %d", count, mask.NumSubspaces(4))
	}
}

func TestMinParentPrefersSmallerExtendedSkyline(t *testing.T) {
	l := New(3)
	l.Sky[0b110] = []int32{1, 2, 3}
	l.ExtOnly[0b110] = []int32{4}
	l.Sky[0b011] = []int32{1}
	l.ExtOnly[0b011] = nil
	if got := l.MinParent(0b010); got != 0b011 {
		t.Errorf("MinParent(010) = %03b, want 011", got)
	}
}

func TestMinParentPanicsWithoutParents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3).MinParent(0b001)
}

func TestIDCount(t *testing.T) {
	l := TopDown(flightData(), bnlCuboid, TopDownOptions{})
	// Figure 1a: ids stored 4 times each for the skylines (16 total), plus
	// extended-only entries (f4 in S⁺ of 011 and 111... count whatever the
	// traversal stored; just check it is ≥ the skyline total).
	skyTotal := 0
	for _, want := range flightSkylines {
		skyTotal += len(want)
	}
	if got := l.IDCount(); got < skyTotal {
		t.Errorf("IDCount = %d, want ≥ %d", got, skyTotal)
	}
	if got := l.ExtendedSize(0b011); got != 4 {
		t.Errorf("ExtendedSize(011) = %d, want 4", got)
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([]int32{1, 5, 9}, []int32{2, 5, 7})
	want := []int32{1, 2, 5, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mergeSorted = %v, want %v", got, want)
	}
	if got := mergeSorted(nil, []int32{3}); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("mergeSorted(nil, [3]) = %v", got)
	}
	if got := mergeSorted([]int32{3}, nil); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("mergeSorted([3], nil) = %v", got)
	}
}
