// Package lattice implements the lattice skycube representation (paper
// Fig. 1a) and the level-synchronised top-down traversal (Algorithms 1–2)
// shared by the lattice-based algorithms: QSkycube, PQSkycube, STSC and
// SDSC. Each non-empty subspace δ stores the point ids of S_δ plus the
// extra ids of S⁺_δ, so child cuboids can use the parent's extended skyline
// as a reduced input.
package lattice

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"skycube/internal/data"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// Lattice is a materialised skycube: Sky[δ] is the sorted id list of S_δ
// and ExtOnly[δ] the sorted ids of S⁺_δ \ S_δ. Index 0 (the empty subspace)
// is unused. For a partial skycube only levels |δ| ≤ MaxLevel are filled.
type Lattice struct {
	D        int
	MaxLevel int
	Sky      [][]int32
	ExtOnly  [][]int32
}

// New returns an empty lattice over d dimensions.
func New(d int) *Lattice {
	n := 1 << uint(d)
	return &Lattice{D: d, MaxLevel: d, Sky: make([][]int32, n), ExtOnly: make([][]int32, n)}
}

// Skyline returns S_δ (nil if δ was not materialised).
func (l *Lattice) Skyline(delta mask.Mask) []int32 { return l.Sky[delta] }

// Extended returns |S⁺_δ|.
func (l *Lattice) ExtendedSize(delta mask.Mask) int {
	return len(l.Sky[delta]) + len(l.ExtOnly[delta])
}

// Membership returns the subspaces in which point id is a skyline member,
// ascending. The lattice is organised per subspace, so this scans every
// materialised cuboid with a binary search — the access-pattern asymmetry
// versus the HashCube that the paper notes in §2.2.
func (l *Lattice) Membership(id int32) []mask.Mask {
	var out []mask.Mask
	for delta := mask.Mask(1); int(delta) < len(l.Sky); delta++ {
		ids := l.Sky[delta]
		lo, hi := 0, len(ids)
		for lo < hi {
			mid := (lo + hi) / 2
			if ids[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ids) && ids[lo] == id {
			out = append(out, delta)
		}
	}
	return out
}

// IDCount returns the total number of stored ids — the lattice's redundancy
// measure (each id is stored once per subspace skyline it appears in).
func (l *Lattice) IDCount() int {
	total := 0
	for delta := 1; delta < len(l.Sky); delta++ {
		total += len(l.Sky[delta]) + len(l.ExtOnly[delta])
	}
	return total
}

// MinParent returns the immediate superspace of δ with the smallest
// extended skyline — the reduced-input choice on line 5 of Algorithms 1–2.
// It panics if no parent is materialised (the traversal always fills level
// l+1 before level l).
func (l *Lattice) MinParent(delta mask.Mask) mask.Mask {
	best := mask.Mask(0)
	bestSize := int(^uint(0) >> 1)
	for _, p := range mask.Parents(delta, l.D) {
		if l.Sky[p] == nil && l.ExtOnly[p] == nil {
			continue
		}
		if s := l.ExtendedSize(p); s < bestSize {
			bestSize = s
			best = p
		}
	}
	if best == 0 {
		panic("lattice: no materialised parent")
	}
	return best
}

// CuboidFunc computes one cuboid: given the input dataset, the candidate
// rows (ids into ds; never nil) and the subspace, it returns the rows of
// S_δ and of S⁺_δ \ S_δ, each ascending. It is the hook the templates
// specialise (paper §4.2).
type CuboidFunc func(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32)

// TopDownOptions configure a traversal.
type TopDownOptions struct {
	// CuboidThreads is the number of cuboids computed concurrently within a
	// lattice level (the STSC/PQSkycube axis of parallelism). 1 means each
	// level is computed cuboid-by-cuboid (SDSC and sequential QSkycube).
	CuboidThreads int
	// MaxLevel d′ restricts materialisation to subspaces with |δ| ≤ d′
	// (partial skycubes, paper App. A.2). 0 or ≥ d means the full skycube.
	// When d′ < d the full-space extended skyline is computed once and used
	// as the input for every level-d′ cuboid.
	MaxLevel int
	// OnCuboid, if non-nil, is called after each cuboid completes. Used by
	// the cross-device scheduler to account work shares.
	OnCuboid func(delta mask.Mask)
	// FirstParent, if set, feeds each cuboid the extended skyline of its
	// *first* materialised parent instead of the smallest one — the
	// ablation of the min-cardinality parent selection on line 5 of
	// Algorithms 1–2.
	FirstParent bool
	// Trace, if non-nil, records one span per lattice level (the template's
	// synchronisation barriers) and one span per cuboid, on a track per
	// traversal worker. Nil costs one pointer test per cuboid.
	Trace *obs.Trace
	// TrackPrefix names the worker tracks in the trace ("lattice" by
	// default; the cross-device scheduler substitutes device names at the
	// hook layer instead and leaves this alone).
	TrackPrefix string
	// SuppressCuboidSpans keeps level spans but drops per-cuboid spans —
	// set by the cross-device scheduler, whose hook records each cuboid on
	// its *device's* track instead of a traversal-worker track.
	SuppressCuboidSpans bool
	// LargestFirst orders the cuboids of each level below the top by
	// descending min-parent extended-skyline size before handing them to
	// the workers — LPT scheduling against the per-level barrier, so the
	// expensive cuboids start first and no worker is left computing a large
	// cuboid alone after the rest of the level has drained.
	LargestFirst bool
}

// TopDown materialises the skycube of ds with the level-synchronised
// traversal of Algorithms 1–2, calling compute for every cuboid. The root
// cuboid's input is all of ds; every other cuboid receives the extended
// skyline of its smallest materialised parent.
func TopDown(ds *data.Dataset, compute CuboidFunc, opt TopDownOptions) *Lattice {
	d := ds.Dims
	l := New(d)
	maxLevel := opt.MaxLevel
	if maxLevel <= 0 || maxLevel > d {
		maxLevel = d
	}
	l.MaxLevel = maxLevel
	threads := opt.CuboidThreads
	if threads < 1 {
		threads = 1
	}

	tr := opt.Trace
	prefix := opt.TrackPrefix
	if prefix == "" {
		prefix = "lattice"
	}

	all := make([]int32, ds.N)
	for i := range all {
		all[i] = int32(i)
	}

	var topInput []int32 // input rows for the top materialised level
	if maxLevel == d {
		topInput = all
	} else {
		// Partial skycube: compute S⁺ of the full space once as the reduced
		// input for level maxLevel, without materialising levels above it.
		h := tr.Begin(prefix+"-0", obs.CatCuboid, "S⁺(P)")
		h.SetN(int64(len(all)))
		sky, extOnly := compute(ds, all, mask.Full(d))
		h.End()
		topInput = mergeSorted(sky, extOnly)
	}

	for level := maxLevel; level >= 1; level-- {
		cuboids := mask.Level(d, level)
		if opt.LargestFirst && level < maxLevel && len(cuboids) > 1 {
			// The input of each cuboid at this level is its min-parent's
			// extended skyline, already materialised — its size is the best
			// available cost estimate for the cuboid.
			ordered := make([]mask.Mask, len(cuboids))
			copy(ordered, cuboids)
			sort.SliceStable(ordered, func(a, b int) bool {
				return l.ExtendedSize(l.MinParent(ordered[a])) > l.ExtendedSize(l.MinParent(ordered[b]))
			})
			cuboids = ordered
		}
		lh := tr.Begin("levels", obs.CatLevel, fmt.Sprintf("level %d", level))
		lh.SetN(int64(len(cuboids)))
		run := func(worker int, delta mask.Mask) {
			rows := topInput
			if level < maxLevel {
				rows = inputRows(l, delta, opt.FirstParent)
			}
			var ch obs.SpanHandle
			if tr != nil && !opt.SuppressCuboidSpans {
				ch = tr.Begin(fmt.Sprintf("%s-%d", prefix, worker), obs.CatCuboid,
					fmt.Sprintf("δ=%0*b", d, uint32(delta)))
				ch.SetN(int64(len(rows)))
			}
			sky, extOnly := compute(ds, rows, delta)
			ch.End()
			l.Sky[delta] = sky
			l.ExtOnly[delta] = extOnly
			if opt.OnCuboid != nil {
				opt.OnCuboid(delta)
			}
		}
		if threads == 1 || len(cuboids) == 1 {
			for _, delta := range cuboids {
				run(0, delta)
			}
			lh.End()
			continue
		}
		// Level-parallel: cuboids are independent; synchronise per level.
		var next int64
		var wg sync.WaitGroup
		workers := threads
		if workers > len(cuboids) {
			workers = len(cuboids)
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					i := atomic.AddInt64(&next, 1) - 1
					if i >= int64(len(cuboids)) {
						return
					}
					run(w, cuboids[i])
				}
			}(w)
		}
		wg.Wait()
		lh.End()
	}
	return l
}

// inputRows returns the extended skyline of δ's smallest (or, for the
// ablation, first) materialised parent.
func inputRows(l *Lattice, delta mask.Mask, firstParent bool) []int32 {
	var p mask.Mask
	if firstParent {
		p = l.anyParent(delta)
	} else {
		p = l.MinParent(delta)
	}
	return mergeSorted(l.Sky[p], l.ExtOnly[p])
}

// anyParent returns the first materialised immediate superspace of δ.
func (l *Lattice) anyParent(delta mask.Mask) mask.Mask {
	for _, p := range mask.Parents(delta, l.D) {
		if l.Sky[p] != nil || l.ExtOnly[p] != nil {
			return p
		}
	}
	panic("lattice: no materialised parent")
}

// mergeSorted merges two ascending id lists.
func mergeSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
