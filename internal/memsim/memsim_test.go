package memsim

import (
	"sync"
	"testing"
)

func TestCacheHitsOnRepeatedAccess(t *testing.T) {
	c := newCache(1024, 4, 64)
	if c.access(0) {
		t.Error("cold access should miss")
	}
	if !c.access(0) {
		t.Error("repeated access should hit")
	}
	if !c.access(63) {
		t.Error("same line should hit")
	}
	if c.access(64) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4 ways, 64-byte lines, 256 bytes => exactly 1 set of 4 ways.
	c := newCache(256, 4, 64)
	setsLen := len(c.sets)
	if setsLen != 1 {
		t.Fatalf("expected 1 set, got %d", setsLen)
	}
	// Fill 4 ways, then access a 5th line: line 0 (LRU) must be evicted.
	for i := uint64(0); i < 4; i++ {
		c.access(i * 64)
	}
	c.access(4 * 64)
	if c.access(0) {
		t.Error("LRU line should have been evicted")
	}
	// Probing line 0 re-installed it, evicting the then-LRU line 1; lines
	// 2–4 must still be resident.
	if !c.access(4*64) || !c.access(2*64) || !c.access(3*64) {
		t.Error("recent lines should still be resident")
	}
	if c.access(1 * 64) {
		t.Error("line 1 should have been evicted by the reinstall of line 0")
	}
}

func TestThreadCountsMissesAndStalls(t *testing.T) {
	sys := NewSystem(DefaultConfig(1, true))
	th := sys.NewThread(0)
	th.Load(0, 4)
	c := th.C
	if c.Loads != 1 || c.L2Misses != 1 || c.L3Misses != 1 {
		t.Fatalf("cold load: %+v", c)
	}
	if c.StallL3Pending == 0 {
		t.Error("L3 miss should stall")
	}
	th.Load(0, 4)
	if th.C.L2Misses != 1 {
		t.Error("warm load should hit L2")
	}
}

func TestLoadSpansLines(t *testing.T) {
	sys := NewSystem(DefaultConfig(1, true))
	th := sys.NewThread(0)
	th.Load(60, 8) // crosses a 64-byte boundary
	if th.C.Loads != 2 {
		t.Errorf("cross-line load counted %d lines, want 2", th.C.Loads)
	}
}

func TestL3SharedWithinSocket(t *testing.T) {
	sys := NewSystem(DefaultConfig(1, true))
	a := sys.NewThread(0)
	b := sys.NewThread(0)
	a.Load(4096, 4)
	b.Load(4096, 4)
	// b misses its private L2 but must hit the socket-shared L3.
	if b.C.L3Misses != 0 {
		t.Errorf("thread b should hit shared L3: %+v", b.C)
	}
	if b.C.L2Misses != 1 {
		t.Errorf("thread b should miss its private L2: %+v", b.C)
	}
}

func TestL3NotSharedAcrossSockets(t *testing.T) {
	sys := NewSystem(DefaultConfig(2, true))
	a := sys.NewThread(0)
	b := sys.NewThread(1)
	a.Load(4096, 4)
	b.Load(4096, 4)
	if b.C.L3Misses != 1 {
		t.Errorf("remote socket should not see the line: %+v", b.C)
	}
}

func TestRemoteMemoryStallsLonger(t *testing.T) {
	cfg := DefaultConfig(2, true)
	sys := NewSystem(cfg)
	th := sys.NewThread(0)
	local := uint64(0)              // page 0 → home socket 0
	remote := uint64(cfg.PageBytes) // page 1 → home socket 1
	th.Load(local, 4)
	localStall := th.C.StallL3Pending
	th2 := sys.NewThread(0)
	th2.Load(remote, 4)
	if th2.C.StallL3Pending <= localStall {
		t.Errorf("remote stall %d should exceed local %d", th2.C.StallL3Pending, localStall)
	}
}

func TestTLBMissesAndHugePages(t *testing.T) {
	// Touch 2048 distinct 4 KiB pages: with 4 KiB pages the 1024-entry STLB
	// thrashes on a second pass; with 2 MiB pages everything fits.
	touch := func(hugePages bool) Counters {
		sys := NewSystem(DefaultConfig(1, hugePages))
		th := sys.NewThread(0)
		for pass := 0; pass < 2; pass++ {
			for p := uint64(0); p < 2048; p++ {
				th.Load(p*4096, 4)
			}
		}
		return th.C
	}
	small := touch(false)
	huge := touch(true)
	if small.STLBMisses <= huge.STLBMisses {
		t.Errorf("4K pages should miss more: %d vs %d", small.STLBMisses, huge.STLBMisses)
	}
	if huge.STLBMisses > 8 {
		t.Errorf("huge pages should nearly eliminate misses, got %d", huge.STLBMisses)
	}
	if small.PageWalkCycles == 0 {
		t.Error("page walks should cost cycles")
	}
}

func TestCPIGrowsWithStalls(t *testing.T) {
	cfg := DefaultConfig(1, true)
	clean := Counters{Instructions: 1000}
	stalled := Counters{Instructions: 1000, StallL3Pending: 5000}
	if clean.CPI(cfg) != cfg.BaseCPI {
		t.Errorf("stall-free CPI = %v, want %v", clean.CPI(cfg), cfg.BaseCPI)
	}
	if stalled.CPI(cfg) <= clean.CPI(cfg) {
		t.Error("stalls must raise CPI")
	}
	if (Counters{}).CPI(cfg) != 0 {
		t.Error("empty counters CPI should be 0")
	}
}

func TestCountersRates(t *testing.T) {
	cfg := DefaultConfig(1, true)
	c := Counters{Instructions: 100, Loads: 50, STLBMisses: 5, PageWalkCycles: 10}
	if got := c.STLBMissRate(); got != 0.1 {
		t.Errorf("STLBMissRate = %v", got)
	}
	if (Counters{}).STLBMissRate() != 0 {
		t.Error("zero loads rate should be 0")
	}
	if c.PageWalkFraction(cfg) <= 0 {
		t.Error("page-walk fraction should be positive")
	}
}

func TestTotalsAggregatesThreads(t *testing.T) {
	sys := NewSystem(DefaultConfig(2, true))
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		for i := 0; i < 4; i++ {
			th := sys.NewThread(s)
			wg.Add(1)
			go func(th *Thread, off uint64) {
				defer wg.Done()
				for j := uint64(0); j < 100; j++ {
					th.Load(off+j*64, 4)
				}
				th.Instr(50)
			}(th, uint64(s)<<30+uint64(i)<<20)
		}
	}
	wg.Wait()
	tot := sys.Totals()
	if tot.Loads != 800 {
		t.Errorf("total loads = %d, want 800", tot.Loads)
	}
	if tot.Instructions != 800+8*50 {
		t.Errorf("total instructions = %d", tot.Instructions)
	}
}

func TestNewThreadValidatesSocket(t *testing.T) {
	sys := NewSystem(DefaultConfig(1, true))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad socket")
		}
	}()
	sys.NewThread(1)
}
