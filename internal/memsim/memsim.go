// Package memsim models the CPU memory hierarchy — private L2 caches, a
// shared per-socket L3, a second-level TLB, and NUMA-distant memory — so
// the hardware-counter analysis of the paper's §7.2 (Figures 8–11) can be
// reproduced without PAPI or model-specific performance counters, which Go
// cannot read portably.
//
// Algorithms run in a "profiled build" (package internal/counters) that
// routes the loads of their hot loops through per-thread probes. The model
// then reports, per run: L2/L3 misses, cycles stalled on pending L2/L3
// loads, STLB misses and page-walk cycles, and a derived cycles-per-
// instruction figure. Absolute numbers are a model; the comparisons the
// paper draws — which algorithm misses more, and what happens when the
// same thread count is split across two sockets — are driven entirely by
// the algorithms' real access streams.
//
// The default configuration mirrors the paper's dual-socket Xeon E5-2687W
// v3 (10 cores/socket, 256 KB private L2, 25 MB shared L3, transparent
// huge pages available).
package memsim

import (
	"fmt"
	"sync"
)

// Config describes the modelled machine.
type Config struct {
	Sockets        int
	CoresPerSocket int
	LineBytes      int
	L2Bytes        int
	L2Ways         int
	L3Bytes        int
	L3Ways         int
	// STLBEntries is the unified second-level TLB size; PageBytes is the
	// page size (2 MiB with transparent huge pages, as the paper enables).
	STLBEntries int
	STLBWays    int
	PageBytes   int
	// Latencies in cycles.
	L2HitCycles    int
	L3HitCycles    int
	MemCycles      int
	RemoteFactor   float64 // multiplier for NUMA-remote memory
	PageWalkCycles int
	// BaseCPI is the no-stall cycles per instruction (0.25 = 4-wide issue).
	BaseCPI float64
	// HideFactor in [0,1] is the fraction of miss latency hidden by
	// out-of-order execution and prefetching.
	HideFactor float64
}

// DefaultConfig returns the paper's machine with the given socket count
// (1 or 2) and huge pages on or off.
func DefaultConfig(sockets int, hugePages bool) Config {
	page := 4 << 10
	if hugePages {
		page = 2 << 20
	}
	return Config{
		Sockets:        sockets,
		CoresPerSocket: 10,
		LineBytes:      64,
		L2Bytes:        256 << 10,
		L2Ways:         8,
		L3Bytes:        25 << 20,
		L3Ways:         20,
		STLBEntries:    1024,
		STLBWays:       8,
		PageBytes:      page,
		L2HitCycles:    12,
		L3HitCycles:    40,
		MemCycles:      220,
		RemoteFactor:   1.7,
		PageWalkCycles: 90,
		BaseCPI:        0.25,
		HideFactor:     0.55,
	}
}

// Counters are the accumulated events of one thread or a whole run.
type Counters struct {
	Instructions int64
	Loads        int64
	L2Misses     int64
	L3Misses     int64
	// StallL2Pending / StallL3Pending are cycles stalled while a load was
	// pending at that level (Figure 9's two panels).
	StallL2Pending int64
	StallL3Pending int64
	STLBMisses     int64
	PageWalkCycles int64
	// SyncCycles are cycles spent in barriers and joins (thread-parallel
	// algorithms' synchronisation overhead).
	SyncCycles int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instructions += other.Instructions
	c.Loads += other.Loads
	c.L2Misses += other.L2Misses
	c.L3Misses += other.L3Misses
	c.StallL2Pending += other.StallL2Pending
	c.StallL3Pending += other.StallL3Pending
	c.STLBMisses += other.STLBMisses
	c.PageWalkCycles += other.PageWalkCycles
	c.SyncCycles += other.SyncCycles
}

// Cycles returns the modelled cycle count: base issue plus unhidden stalls
// and page walks.
func (c Counters) Cycles(cfg Config) int64 {
	base := float64(c.Instructions) * cfg.BaseCPI
	return int64(base) + c.StallL2Pending + c.StallL3Pending + c.PageWalkCycles + c.SyncCycles
}

// CPI returns modelled cycles per instruction.
func (c Counters) CPI(cfg Config) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles(cfg)) / float64(c.Instructions)
}

// STLBMissRate returns the fraction of loads missing the STLB (Fig. 10a).
func (c Counters) STLBMissRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.STLBMisses) / float64(c.Loads)
}

// PageWalkFraction returns the fraction of cycles spent on page walks
// (Fig. 10b).
func (c Counters) PageWalkFraction(cfg Config) float64 {
	cy := c.Cycles(cfg)
	if cy == 0 {
		return 0
	}
	return float64(c.PageWalkCycles) / float64(cy)
}

// System is one modelled machine instance. Create one per profiled run.
type System struct {
	cfg Config
	l3  []*cache // one shared L3 per socket, mutex-protected
	l3m []sync.Mutex

	mu      sync.Mutex
	threads []*Thread
}

// NewSystem builds a machine from cfg.
func NewSystem(cfg Config) *System {
	if cfg.Sockets < 1 {
		panic("memsim: need at least one socket")
	}
	s := &System{cfg: cfg}
	for i := 0; i < cfg.Sockets; i++ {
		s.l3 = append(s.l3, newCache(cfg.L3Bytes, cfg.L3Ways, cfg.LineBytes))
	}
	s.l3m = make([]sync.Mutex, cfg.Sockets)
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// NewThread registers a probe pinned to the given socket. Threads are not
// safe for concurrent use; create one per goroutine.
func (s *System) NewThread(socket int) *Thread {
	if socket < 0 || socket >= s.cfg.Sockets {
		panic(fmt.Sprintf("memsim: socket %d out of range", socket))
	}
	t := &Thread{
		sys:    s,
		socket: socket,
		l2:     newCache(s.cfg.L2Bytes, s.cfg.L2Ways, s.cfg.LineBytes),
		stlb:   newCache(s.cfg.STLBEntries*s.cfg.PageBytes, s.cfg.STLBWays, s.cfg.PageBytes),
	}
	s.mu.Lock()
	s.threads = append(s.threads, t)
	s.mu.Unlock()
	return t
}

// Totals sums the counters of every registered thread.
func (s *System) Totals() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c Counters
	for _, t := range s.threads {
		c.Add(t.C)
	}
	return c
}

// PerThread returns a copy of each registered thread's counters, in
// registration order. The maximum per-thread cycle count is the modelled
// parallel critical path, from which modelled speedups are derived.
func (s *System) PerThread() []Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Counters, len(s.threads))
	for i, t := range s.threads {
		out[i] = t.C
	}
	return out
}

// MaxThreadCycles returns the modelled critical path: the largest cycle
// count of any registered thread.
func (s *System) MaxThreadCycles() int64 {
	var max int64
	for _, c := range s.PerThread() {
		if cy := c.Cycles(s.cfg); cy > max {
			max = cy
		}
	}
	return max
}

// Thread is a per-goroutine probe with a private L2 and STLB.
type Thread struct {
	sys    *System
	socket int
	l2     *cache
	stlb   *cache
	C      Counters
}

// Socket returns the thread's pinned socket.
func (t *Thread) Socket() int { return t.socket }

// Instr accounts n retired instructions that are not probed loads.
func (t *Thread) Instr(n int) {
	t.C.Instructions += int64(n)
}

// Barrier accounts one synchronisation point: the modelled cycles a thread
// spends entering and leaving a barrier or fork/join (used by the profiled
// builds to charge SDSC's per-tile and per-level synchronisation, §4.2.2).
func (t *Thread) Barrier(cycles int) {
	t.C.SyncCycles += int64(cycles)
}

// Load simulates a data load of size bytes at the given (logical) address,
// touching every cache line it spans.
func (t *Thread) Load(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	cfg := &t.sys.cfg
	line := uint64(cfg.LineBytes)
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	for l := first; l <= last; l++ {
		t.loadLine(l * line)
	}
}

func (t *Thread) loadLine(addr uint64) {
	cfg := &t.sys.cfg
	t.C.Loads++
	t.C.Instructions++

	// TLB lookup precedes the cache access.
	if !t.stlb.access(addr) {
		t.C.STLBMisses++
		t.C.PageWalkCycles += int64(cfg.PageWalkCycles)
	}

	if t.l2.access(addr) {
		return // L2 hit: latency fully hidden by the pipeline model
	}
	t.C.L2Misses++

	sock := t.socket
	t.sys.l3m[sock].Lock()
	hitL3 := t.sys.l3[sock].access(addr)
	t.sys.l3m[sock].Unlock()
	if hitL3 {
		// Pending at L2, satisfied from L3.
		t.C.StallL2Pending += unhidden(cfg.L3HitCycles, cfg.HideFactor)
		return
	}
	t.C.L3Misses++
	lat := float64(cfg.MemCycles)
	if homeSocket(addr, cfg) != sock {
		lat *= cfg.RemoteFactor
	}
	t.C.StallL3Pending += unhidden(int(lat), cfg.HideFactor)
}

// homeSocket interleaves memory pages across sockets, the default Linux
// policy for shared read-mostly data.
func homeSocket(addr uint64, cfg *Config) int {
	if cfg.Sockets == 1 {
		return 0
	}
	return int(addr/uint64(cfg.PageBytes)) % cfg.Sockets
}

func unhidden(lat int, hide float64) int64 {
	v := float64(lat) * (1 - hide)
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// cache is a set-associative LRU cache of lines (or pages, for the TLB).
type cache struct {
	sets      [][]uint64 // tag slices in LRU order (front = MRU)
	ways      int
	lineShift uint
	setMask   uint64
}

func newCache(bytes, ways, lineBytes int) *cache {
	if ways < 1 {
		ways = 1
	}
	nSets := bytes / (ways * lineBytes)
	if nSets < 1 {
		nSets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= nSets {
		p *= 2
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	sets := make([][]uint64, p)
	return &cache{sets: sets, ways: ways, lineShift: shift, setMask: uint64(p - 1)}
}

// access returns true on hit; on miss the line is installed, evicting LRU.
func (c *cache) access(addr uint64) bool {
	tag := addr >> c.lineShift
	idx := tag & c.setMask
	set := c.sets[idx]
	for i, t := range set {
		if t == tag {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[idx] = set
	return false
}
