// Package rcache is the materialized read path's response cache: a small,
// LRU-bounded map from (epoch, request variant) to a fully-encoded response
// body, with a singleflight gate so N concurrent readers of a cold key
// trigger exactly one computation.
//
// The design leans entirely on MVCC epochs for correctness. A key embeds
// the epoch the response was computed at, and epochs only ever advance
// (delta flush, compaction, or — at the coordinator — a routed write), so a
// cached entry is bit-exact for as long as anything can look it up under
// its key. There is no TTL, no heuristic invalidation, and nothing to
// invalidate explicitly: an epoch advance simply makes readers derive new
// keys, and stale entries age out of the LRU.
//
// Get is engineered to be allocation-free: the key is a comparable struct
// (map lookup does not escape), the LRU list is intrusive, and metrics
// handles are pre-resolved atomics. Serving a hit is a mutex-guarded map
// probe, a pointer splice, and a byte-slice write.
package rcache

import (
	"net/http"
	"strings"
	"sync"

	"skycube/internal/obs"
)

// Key identifies one cached response exactly. Epoch is the MVCC epoch (or
// any monotone generation) the response was computed at; Variant is the
// normalized request variant — typically the raw query string, which pins
// dimension order, points/extended flags, and pinned-epoch parameters
// without parsing them.
type Key struct {
	Epoch   uint64
	Variant string
}

// Entry is one immutable cached response: the encoded body and its strong
// validator. Entries are shared between concurrent readers and must never
// be mutated after publication.
type Entry struct {
	// ETag is the strong validator of the body, derived from the epoch and
	// subspace that produced it (quoted, per RFC 9110).
	ETag string
	// ETagHeader is ETag pre-boxed as a header value slice, so serving a
	// hit can assign it into the header map without allocating.
	ETagHeader []string
	// Body is the fully-encoded response (JSON bytes, trailing newline
	// included, exactly as the uncached path would have written).
	Body []byte
}

// NewEntry builds an immutable entry, pre-boxing the header value.
func NewEntry(etag string, body []byte) *Entry {
	return &Entry{ETag: etag, ETagHeader: []string{etag}, Body: body}
}

// contentTypeJSON is the pre-boxed Content-Type header value, assigned
// into the header map directly so serving a hit does not allocate.
var contentTypeJSON = []string{"application/json"}

// Serve writes a materialized response: strong ETag always, 304 Not
// Modified when If-None-Match revalidates, the pre-encoded bytes
// otherwise. cm may be nil.
func Serve(w http.ResponseWriter, r *http.Request, e *Entry, cm *obs.CacheMetrics) {
	h := w.Header()
	h["Etag"] = e.ETagHeader
	if MatchETag(r.Header.Get("If-None-Match"), e.ETag) {
		cm.NotModified()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = contentTypeJSON
	_, _ = w.Write(e.Body)
}

// MatchETag implements the weak comparison If-None-Match calls for
// (RFC 9110 §13.1.2): the header may be "*" or a comma-separated list, and
// a W/ prefix on a listed validator is ignored. Substring slicing only —
// no allocation on the revalidation path.
func MatchETag(inm, etag string) bool {
	if inm == "" {
		return false
	}
	if inm == "*" || inm == etag {
		return true
	}
	for inm != "" {
		var tok string
		if i := strings.IndexByte(inm, ','); i >= 0 {
			tok, inm = inm[:i], inm[i+1:]
		} else {
			tok, inm = inm, ""
		}
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "W/")
		if tok == etag {
			return true
		}
	}
	return false
}

// node is one intrusive LRU list element.
type node struct {
	key        Key
	entry      *Entry
	prev, next *node
}

// call is one in-flight singleflight computation.
type call struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// DefaultEntries bounds the cache when the configured size is zero.
const DefaultEntries = 4096

// Cache is the LRU-bounded, singleflight-gated response cache. The zero
// value is not usable; construct with New. A nil *Cache is valid and
// disables caching: Get always misses and Fill computes without storing —
// the -no-cache escape hatch is just a nil cache.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*node
	inflight map[Key]*call
	head     *node // most recently used
	tail     *node // least recently used
	max      int
	metrics  *obs.CacheMetrics
}

// New returns a cache bounded to max entries (DefaultEntries when max ≤ 0),
// reporting to m (which may be nil).
func New(max int, m *obs.CacheMetrics) *Cache {
	if max <= 0 {
		max = DefaultEntries
	}
	return &Cache{
		entries:  make(map[Key]*node),
		inflight: make(map[Key]*call),
		max:      max,
		metrics:  m,
	}
}

// Get returns the entry cached under key, promoting it to most recently
// used. The miss counter is deliberately not touched here: a miss proceeds
// to Fill, which records it, so a hit-after-coalesce is not double-counted.
func (c *Cache) Get(key Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	n, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.promote(n)
	e := n.entry
	c.mu.Unlock()
	c.metrics.Hit(len(e.Body))
	return e, true
}

// Fill returns the entry for key, computing it with fn if absent. Exactly
// one caller runs fn per cold key; the rest block on the in-flight
// computation and share its result. fn runs without the cache lock held.
// A nil receiver, or an fn error, computes without caching.
func (c *Cache) Fill(key Key, fn func() (*Entry, error)) (*Entry, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if n, ok := c.entries[key]; ok {
		// Lost a race with another fill between the caller's Get and now:
		// count it as the hit it effectively is.
		c.promote(n)
		e := n.entry
		c.mu.Unlock()
		c.metrics.Hit(len(e.Body))
		return e, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.metrics.Coalesce()
		<-cl.done
		return cl.entry, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	c.metrics.Miss()
	cl.entry, cl.err = fn()
	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil && cl.entry != nil {
		c.insert(key, cl.entry)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.entry, cl.err
}

// Put stores entry under key unconditionally (no singleflight). The
// coordinator uses it to index one merged response under a second key —
// the shard-epoch vector — alongside its write-generation key.
func (c *Cache) Put(key Key, e *Entry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	c.insert(key, e)
	c.mu.Unlock()
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// insert stores entry under key, evicting from the LRU tail past the
// bound. The caller holds c.mu.
func (c *Cache) insert(key Key, e *Entry) {
	if n, ok := c.entries[key]; ok {
		n.entry = e
		c.promote(n)
		return
	}
	n := &node{key: key, entry: e}
	c.entries[key] = n
	c.pushFront(n)
	for len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.metrics.Evict()
	}
	c.metrics.Resident(len(c.entries))
}

// promote moves n to the list head. The caller holds c.mu.
func (c *Cache) promote(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
