package rcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"skycube/internal/obs"
)

func fillEntry(tag string) func() (*Entry, error) {
	return func() (*Entry, error) { return NewEntry(tag, []byte(tag)), nil }
}

func TestCacheGetFill(t *testing.T) {
	c := New(4, nil)
	k := Key{Epoch: 1, Variant: "dims=0,2"}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	e, err := c.Fill(k, fillEntry(`"e1-s5"`))
	if err != nil || e == nil {
		t.Fatalf("Fill: %v, %v", e, err)
	}
	got, ok := c.Get(k)
	if !ok || got != e {
		t.Fatalf("Get after Fill: %v, %v (want the filled entry)", got, ok)
	}
	// A different epoch is a different key: epoch advance IS invalidation.
	if _, ok := c.Get(Key{Epoch: 2, Variant: "dims=0,2"}); ok {
		t.Fatal("epoch-advanced key hit a stale entry")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewCacheMetrics(reg, "test")
	c := New(2, m)
	for i := 0; i < 3; i++ {
		k := Key{Epoch: 1, Variant: fmt.Sprintf("v%d", i)}
		if _, err := c.Fill(k, fillEntry(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// v0 was least recently used and must be gone; v1, v2 remain.
	if _, ok := c.Get(Key{Epoch: 1, Variant: "v0"}); ok {
		t.Fatal("LRU entry survived past the bound")
	}
	for _, v := range []string{"v1", "v2"} {
		if _, ok := c.Get(Key{Epoch: 1, Variant: v}); !ok {
			t.Fatalf("recent entry %s was evicted", v)
		}
	}
	// Touching v1 must protect it from the next eviction.
	c.Get(Key{Epoch: 1, Variant: "v1"})
	if _, err := c.Fill(Key{Epoch: 1, Variant: "v3"}, fillEntry("3")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key{Epoch: 1, Variant: "v1"}); !ok {
		t.Fatal("recently-used entry was evicted before the LRU one")
	}
	if _, ok := c.Get(Key{Epoch: 1, Variant: "v2"}); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestCacheSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewCacheMetrics(reg, "test")
	c := New(8, m)
	k := Key{Epoch: 7, Variant: "dims=1"}

	var fills atomic.Int32
	gate := make(chan struct{})
	const readers = 16
	var wg sync.WaitGroup
	results := make([]*Entry, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.Fill(k, func() (*Entry, error) {
				fills.Add(1)
				<-gate // hold every other reader in the coalesce path
				return NewEntry(`"t"`, []byte("body")), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = e
		}(i)
	}
	// Wait until one fill is in flight, then release it. The remaining
	// readers either coalesce on it or hit the stored entry afterwards;
	// none may run a second fill.
	for fills.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("%d fills ran for one cold key, want 1", n)
	}
	for i, e := range results {
		if e == nil || string(e.Body) != "body" {
			t.Fatalf("reader %d got %v", i, e)
		}
	}
	if m.Misses() != 1 {
		t.Fatalf("misses = %v, want 1", m.Misses())
	}
	if m.Coalesced()+m.Hits() != readers-1 {
		t.Fatalf("coalesced %v + hits %v != %d", m.Coalesced(), m.Hits(), readers-1)
	}
}

func TestCacheFillErrorNotCached(t *testing.T) {
	c := New(4, nil)
	k := Key{Epoch: 1, Variant: "x"}
	wantErr := errors.New("boom")
	if _, err := c.Fill(k, func() (*Entry, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Fill error = %v, want %v", err, wantErr)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed fill left an entry behind")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failed fill", c.Len())
	}
}

func TestNilCacheDisables(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	ran := 0
	e, err := c.Fill(Key{}, func() (*Entry, error) { ran++; return NewEntry("t", nil), nil })
	if err != nil || e == nil || ran != 1 {
		t.Fatalf("nil-cache Fill: %v %v ran=%d", e, err, ran)
	}
	// Every Fill recomputes: nothing is stored.
	c.Fill(Key{}, func() (*Entry, error) { ran++; return NewEntry("t", nil), nil })
	if ran != 2 {
		t.Fatalf("nil cache memoized (ran=%d)", ran)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}

func TestCacheGetZeroAlloc(t *testing.T) {
	c := New(4, obs.NewCacheMetrics(obs.NewRegistry(), "test"))
	k := Key{Epoch: 3, Variant: "dims=0,1"}
	if _, err := c.Fill(k, fillEntry(`"e"`)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(k); !ok {
			t.Fatal("hit expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %v objects per hit, want 0", allocs)
	}
}
