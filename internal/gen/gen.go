// Package gen synthesises benchmark workloads.
//
// The core generator follows Börzsönyi, Kossmann and Stocker (ICDE 2001),
// the standard benchmark used by the paper (§7.1): independent (I),
// correlated (C) and anticorrelated (A) distributions over [0,1]^d, with
// smaller values better. It additionally provides stand-ins for the paper's
// four real datasets (App. A.1), reproducing their published shape — size,
// dimensionality, attribute skew and extended-skyline fraction — because
// the originals are external downloads this environment cannot fetch.
package gen

import (
	"math"
	"math/rand"

	"skycube/internal/data"
)

// Distribution selects the synthetic workload family.
type Distribution int

const (
	// Independent draws every attribute uniformly at random.
	Independent Distribution = iota
	// Correlated draws points near the diagonal: points good in one
	// dimension tend to be good in all. Skylines are small.
	Correlated
	// Anticorrelated draws points near the anti-diagonal plane: points good
	// in one dimension tend to be bad in others. Skylines are large.
	Anticorrelated
)

// String implements fmt.Stringer with the paper's one-letter labels.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "I"
	case Correlated:
		return "C"
	case Anticorrelated:
		return "A"
	}
	return "?"
}

// Synthetic generates n points over d dimensions from the given
// distribution, deterministically from seed.
func Synthetic(dist Distribution, n, d int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, n*d)
	switch dist {
	case Independent:
		for i := range vals {
			vals[i] = float32(rng.Float64())
		}
	case Correlated:
		for i := 0; i < n; i++ {
			base := peakedRand(rng) // common quality of the point
			for j := 0; j < d; j++ {
				v := base + 0.15*(rng.Float64()-0.5)
				vals[i*d+j] = clamp01(v)
			}
		}
	case Anticorrelated:
		for i := 0; i < n; i++ {
			// Draw a point whose coordinates sum to ≈ d/2: improveing one
			// dimension must degrade another. Following the reference
			// generator, sample a plane offset with small variance, then
			// spread it across dimensions.
			planeSum := float64(d)/2 + 0.25*normal(rng)
			row := vals[i*d : (i+1)*d]
			spreadOnPlane(rng, row, planeSum)
		}
	default:
		panic("gen: unknown distribution")
	}
	return data.New(d, vals)
}

// peakedRand returns a value in [0,1] with a peak around 0.5, per the
// reference generator's correlated family.
func peakedRand(rng *rand.Rand) float64 {
	return (rng.Float64() + rng.Float64()) / 2
}

// normal returns a standard normal variate.
func normal(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}

// spreadOnPlane fills row with values in [0,1] summing approximately to
// planeSum, by repeatedly shifting mass between random pairs of dimensions.
func spreadOnPlane(rng *rand.Rand, row []float32, planeSum float64) {
	d := len(row)
	// Start from an even split, clamped to [0,1].
	per := planeSum / float64(d)
	for j := range row {
		row[j] = clamp01(per)
	}
	// Randomly exchange mass between pairs to decorrelate dimensions while
	// preserving the sum (the signature of anticorrelation).
	for k := 0; k < 2*d; k++ {
		a, b := rng.Intn(d), rng.Intn(d)
		if a == b {
			continue
		}
		// Max transferable keeps both coordinates in [0,1].
		m := math.Min(float64(row[a]), 1-float64(row[b]))
		t := m * rng.Float64()
		row[a] -= float32(t)
		row[b] += float32(t)
	}
}

func clamp01(v float64) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(v)
}

// RealDataset names a stand-in for one of the paper's real datasets
// (Table 2).
type RealDataset int

const (
	// NBA models databasebasketball.com player seasons: 17 264 × 8,
	// correlated counting stats, |S⁺| ≈ 1 796.
	NBA RealDataset = iota
	// Household models the IPUMS expense survey: 127 931 × 6 percentage
	// attributes, |S⁺| ≈ 5 774.
	Household
	// Covertype models the UCI forestry dataset: 581 012 × 10 with heavy
	// low-cardinality skew (hillshade indices on 255 distinct values);
	// ~74 % of points land in the extended skyline.
	Covertype
	// Weather models the CRU terrestrial precipitation grid: 566 268 × 15,
	// coordinates clustered into continents, |S⁺| ≈ 78 036.
	Weather
)

// String implements fmt.Stringer with the paper's dataset IDs.
func (r RealDataset) String() string {
	switch r {
	case NBA:
		return "NBA"
	case Household:
		return "HH"
	case Covertype:
		return "CT"
	case Weather:
		return "WE"
	}
	return "?"
}

// Spec returns the published shape of the dataset: size and dimensionality
// from Table 2.
func (r RealDataset) Spec() (n, d int) {
	switch r {
	case NBA:
		return 17264, 8
	case Household:
		return 127931, 6
	case Covertype:
		return 581012, 10
	case Weather:
		return 566268, 15
	}
	return 0, 0
}

// Real synthesises the stand-in for dataset r at a scale factor in (0,1];
// scale 1 reproduces the published row count. The seed fixes the content.
func Real(r RealDataset, scale float64, seed int64) *data.Dataset {
	n, d := r.Spec()
	if scale > 0 && scale < 1 {
		n = int(float64(n) * scale)
		if n < 64 {
			n = 64
		}
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, n*d)
	switch r {
	case NBA:
		genNBA(rng, vals, n, d)
	case Household:
		genHousehold(rng, vals, n, d)
	case Covertype:
		genCovertype(rng, vals, n, d)
	case Weather:
		genWeather(rng, vals, n, d)
	}
	return data.New(d, vals)
}

// genNBA: counting statistics are mutually correlated through a latent
// "player quality" plus per-stat noise; a long tail of weak seasons. Lower
// is better in our convention, so quality is inverted.
func genNBA(rng *rand.Rand, vals []float32, n, d int) {
	for i := 0; i < n; i++ {
		quality := math.Pow(rng.Float64(), 0.45) // most seasons mediocre
		for j := 0; j < d; j++ {
			raw := quality + 0.18*normal(rng)
			// Logistic squash instead of clamping: extreme seasons stay
			// distinct rather than piling up at the boundary, so statistic
			// leaders are unique the way real counting stats are.
			vals[i*d+j] = float32(1 / (1 + math.Exp(-4*(raw-0.5))))
		}
	}
}

// genHousehold: percentage expenses; a few categories dominate and sum
// pressure induces mild anticorrelation between big categories, while small
// ones are nearly independent.
func genHousehold(rng *rand.Rand, vals []float32, n, d int) {
	for i := 0; i < n; i++ {
		budget := 1.0
		for j := 0; j < d-1; j++ {
			share := budget * rng.Float64() * 0.6
			vals[i*d+j] = clamp01(1 - share) // lower = bigger share = better trade-off surface
			budget -= share
			if budget < 0 {
				budget = 0
			}
		}
		vals[i*d+d-1] = clamp01(1 - budget)
	}
}

// genCovertype: low-cardinality skewed attributes. Three "hillshade"
// dimensions take one of 255 levels with mass piled near the optimum, which
// is what makes 74 % of the points extended-skyline members.
func genCovertype(rng *rand.Rand, vals []float32, n, d int) {
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			switch {
			case j < 3: // hillshade-like: 255 distinct values, skewed to 0
				lv := int(255 * math.Pow(rng.Float64(), 2.2))
				vals[i*d+j] = float32(lv) / 255
			case j < 6: // distances: 100 distinct values, moderate skew
				lv := int(100 * math.Pow(rng.Float64(), 1.3))
				vals[i*d+j] = float32(lv) / 100
			default: // elevation/slope-like: continuous but clustered
				vals[i*d+j] = clamp01(0.3*normal(rng) + rng.Float64())
			}
		}
	}
}

// genWeather: positions clustered into a handful of "continents"; monthly
// precipitation depends on the cluster plus seasonal phase, capturing the
// non-trivial attribute dependence the paper describes.
func genWeather(rng *rand.Rand, vals []float32, n, d int) {
	const clusters = 7
	centers := make([][2]float64, clusters)
	for c := range centers {
		centers[c] = [2]float64{rng.Float64(), rng.Float64()}
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(clusters)
		lat := clamp01(centers[c][0] + 0.07*normal(rng))
		lon := clamp01(centers[c][1] + 0.07*normal(rng))
		elev := clamp01(math.Pow(rng.Float64(), 3) + 0.1*normal(rng))
		vals[i*d+0] = lat
		vals[i*d+1] = lon
		vals[i*d+2] = elev
		phase := 2 * math.Pi * float64(c) / clusters
		wet := 0.3 + 0.6*rng.Float64()
		for j := 3; j < d; j++ {
			season := math.Sin(2*math.Pi*float64(j-3)/12 + phase)
			precip := wet * (0.5 + 0.45*season)
			vals[i*d+j] = clamp01(1 - precip + 0.12*normal(rng)) // low = extreme precipitation
		}
	}
}
