package gen

import (
	"testing"

	"skycube/internal/data"
)

func TestSyntheticShapes(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated} {
		ds := Synthetic(dist, 1000, 8, 7)
		if ds.N != 1000 || ds.Dims != 8 {
			t.Fatalf("%v: shape %dx%d", dist, ds.N, ds.Dims)
		}
		for i, v := range ds.Vals {
			if v < 0 || v > 1 {
				t.Fatalf("%v: value %v at %d out of [0,1]", dist, v, i)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(Anticorrelated, 500, 6, 42)
	b := Synthetic(Anticorrelated, 500, 6, 42)
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Synthetic(Anticorrelated, 500, 6, 43)
	same := true
	for i := range a.Vals {
		if a.Vals[i] != c.Vals[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// corrCoef computes the Pearson correlation between two dimensions.
func corrCoef(ds *data.Dataset, a, b int) float64 {
	n := float64(ds.N)
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < ds.N; i++ {
		x, y := float64(ds.Value(i, a)), float64(ds.Value(i, b))
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / (sqrt(va) * sqrt(vb))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestDistributionCorrelationSigns(t *testing.T) {
	const n, d = 20000, 6
	corr := Synthetic(Correlated, n, d, 1)
	anti := Synthetic(Anticorrelated, n, d, 1)
	ind := Synthetic(Independent, n, d, 1)
	cc := corrCoef(corr, 0, 3)
	ca := corrCoef(anti, 0, 3)
	ci := corrCoef(ind, 0, 3)
	if cc < 0.5 {
		t.Errorf("correlated data has r=%.3f between dims, want > 0.5", cc)
	}
	if ca > -0.05 {
		t.Errorf("anticorrelated data has r=%.3f between dims, want < -0.05", ca)
	}
	if ci < -0.05 || ci > 0.05 {
		t.Errorf("independent data has r=%.3f between dims, want ≈ 0", ci)
	}
}

func TestRealSpecs(t *testing.T) {
	cases := []struct {
		r    RealDataset
		n, d int
	}{
		{NBA, 17264, 8},
		{Household, 127931, 6},
		{Covertype, 581012, 10},
		{Weather, 566268, 15},
	}
	for _, c := range cases {
		n, d := c.r.Spec()
		if n != c.n || d != c.d {
			t.Errorf("%v: spec %dx%d, want %dx%d", c.r, n, d, c.n, c.d)
		}
	}
}

func TestRealScaled(t *testing.T) {
	for _, r := range []RealDataset{NBA, Household, Covertype, Weather} {
		ds := Real(r, 0.01, 9)
		_, d := r.Spec()
		if ds.Dims != d {
			t.Errorf("%v: dims %d, want %d", r, ds.Dims, d)
		}
		if ds.N < 64 {
			t.Errorf("%v: scaled size %d below floor", r, ds.N)
		}
		for i, v := range ds.Vals {
			if v < 0 || v > 1 {
				t.Fatalf("%v: value %v at %d out of range", r, v, i)
			}
		}
	}
}

func TestCovertypeLowCardinality(t *testing.T) {
	ds := Real(Covertype, 0.02, 11)
	distinct := make(map[float32]bool)
	for i := 0; i < ds.N; i++ {
		distinct[ds.Value(i, 0)] = true
	}
	if len(distinct) > 256 {
		t.Errorf("hillshade-like dim has %d distinct values, want ≤ 256", len(distinct))
	}
}

func TestStringLabels(t *testing.T) {
	if Independent.String() != "I" || Correlated.String() != "C" || Anticorrelated.String() != "A" {
		t.Error("distribution labels wrong")
	}
	if NBA.String() != "NBA" || Household.String() != "HH" || Covertype.String() != "CT" || Weather.String() != "WE" {
		t.Error("dataset labels wrong")
	}
	if Distribution(99).String() != "?" || RealDataset(99).String() != "?" {
		t.Error("unknown labels should be ?")
	}
}
