package hetero

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skycube/internal/gen"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

// slowDevice decorates a Device so every chunk appears factor× slower: the
// extra time is really slept (so the wall clock sees it) and reported in the
// account duration (so the scheduler's EWMA sees it too). perTask is a floor
// on the extra cost, making the slowdown robust when the real kernel time of
// a small chunk rounds to ~0.
type slowDevice struct {
	Device
	factor  float64
	perTask time.Duration
}

func (s *slowDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	s.Device.RunPoints(ctx, grab, func(lane, n int, dur time.Duration) {
		extra := time.Duration(float64(dur) * (s.factor - 1))
		if min := time.Duration(n) * s.perTask; extra < min {
			extra = min
		}
		time.Sleep(extra)
		account(lane, n, dur+extra)
	})
}

// jitterDevice adds a pseudo-random delay of up to maxDelay after each chunk
// (deterministic splitmix64 stream, safe for concurrent lanes).
type jitterDevice struct {
	Device
	maxDelay time.Duration
	seq      atomic.Uint64
}

func (j *jitterDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	j.Device.RunPoints(ctx, grab, func(lane, n int, dur time.Duration) {
		z := j.seq.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		delay := time.Duration(z % uint64(j.maxDelay))
		time.Sleep(delay)
		account(lane, n, dur+delay)
	})
}

// auditDevice decorates a Device so every task index handed to it is counted
// in a claim table shared by all devices of the run — the double-handout
// detector of the chaos test.
type auditDevice struct {
	Device
	claimed []int32
	dupes   *atomic.Int64
}

func (a *auditDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	a.Device.RunPoints(ctx, func(lane int) (int, int) {
		lo, hi := grab(lane)
		for i := lo; i < hi; i++ {
			if atomic.AddInt32(&a.claimed[i], 1) != 1 {
				a.dupes.Add(1)
			}
		}
		return lo, hi
	}, account)
}

// TestScheduleChaos runs cross-device MDMC under induced schedule chaos —
// random per-chunk delays on every device plus one device 10× slower — and
// checks that the skycube is still exactly right, that no chunk was handed
// out twice, and that the per-device Shares cover every point task exactly
// once. Run under -race this exercises the steal path's ownership handoff.
func TestScheduleChaos(t *testing.T) {
	ds := gen.Synthetic(gen.Anticorrelated, 2000, 6, 21)
	want := map[mask.Mask][]int32{}
	for _, delta := range mask.Subspaces(6) {
		want[delta] = skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1).Skyline
	}

	for _, cfg := range []struct {
		name        string
		tun         Tuning
		needsSteals bool
	}{
		{"adaptive", Tuning{}, false},
		{"no-steal", Tuning{DisableStealing: true}, false},
		// Prepartitioned with stealing on: the fast devices can only finish
		// by stealing the slow device's range, so steals are guaranteed.
		{"prepartition-steal", Tuning{Prepartition: true}, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			claimed := make([]int32, ds.N)
			var dupes atomic.Int64
			chaos := func(d Device, slow bool) Device {
				if slow {
					d = &slowDevice{Device: d, factor: 10, perTask: 2 * time.Microsecond}
				}
				d = &jitterDevice{Device: d, maxDelay: 100 * time.Microsecond}
				return &auditDevice{Device: d, claimed: claimed, dupes: &dupes}
			}
			devices := []Device{
				chaos(&CPUDevice{Threads: 2, Label: "fast0"}, false),
				chaos(&CPUDevice{Threads: 1, Label: "fast1"}, false),
				chaos(&CPUDevice{Threads: 1, Label: "slow"}, true),
			}
			reg := obs.NewRegistry()
			tun := cfg.tun
			tun.Metrics = obs.NewSchedMetrics(reg)
			tr := obs.New()
			res, shares, counters := MDMCAllSched(ds, devices, 2, 0, tun, tr, nil)

			for _, delta := range mask.Subspaces(6) {
				if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want[delta]) {
					t.Fatalf("δ=%06b: skyline diverged under chaos", delta)
				}
			}
			if d := dupes.Load(); d != 0 {
				t.Errorf("%d tasks handed out more than once", d)
			}
			n := len(res.ExtRows)
			for i := 0; i < n; i++ {
				if claimed[i] != 1 {
					t.Fatalf("task %d claimed %d times", i, claimed[i])
				}
			}
			if shares.Total() != int64(n) {
				t.Errorf("shares total %d, want %d point tasks", shares.Total(), n)
			}

			// Every chunk span in the trace is attributed to the device whose
			// share it counts toward — stolen work included.
			traced := map[string]int64{}
			for _, s := range tr.Spans() {
				if s.Cat == obs.CatChunk {
					traced[DeviceOfTrack(s.Track)] += s.N
				}
			}
			for _, f := range shares.Fractions() {
				if traced[f.Name] != f.Tasks {
					t.Errorf("device %s: trace says %d tasks, shares say %d",
						f.Name, traced[f.Name], f.Tasks)
				}
			}

			if cfg.needsSteals {
				if counters.Steals == 0 {
					t.Error("expected steals from the slow device's prepartitioned range")
				}
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(sb.String(), "skycube_sched_steals_total") {
					t.Error("steal events missing from exported metrics")
				}
			}
			if cfg.tun.DisableStealing && counters.Steals != 0 {
				t.Errorf("steals recorded with stealing disabled: %+v", counters)
			}
		})
	}
}

// imbalancedDevices is the benchmark fleet: three equal CPU devices and one
// 10× slower straggler.
func imbalancedDevices() []Device {
	return []Device{
		&CPUDevice{Threads: 1, Label: "cpu0"},
		&CPUDevice{Threads: 1, Label: "cpu1"},
		&CPUDevice{Threads: 1, Label: "cpu2"},
		&slowDevice{Device: &CPUDevice{Threads: 1, Label: "slow"},
			factor: 10, perTask: 10 * time.Microsecond},
	}
}

var staticTuning = Tuning{Prepartition: true, DisableStealing: true, DisableRetune: true}

// BenchmarkMDMCImbalance compares a static equal split against the adaptive
// work-stealing schedule when one of four devices is 10× slower. Static is
// bounded below by the straggler's quarter of the work; stealing moves that
// quarter to the idle fast devices.
func BenchmarkMDMCImbalance(b *testing.B) {
	ds := gen.Synthetic(gen.Anticorrelated, 4000, 6, 7)
	for _, cfg := range []struct {
		name string
		tun  Tuning
	}{
		{"static", staticTuning},
		{"stealing", Tuning{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MDMCAllSched(ds, imbalancedDevices(), 2, 0, cfg.tun, nil, nil)
			}
		})
	}
}

// TestStealingBeatsStaticUnderImbalance pins the benchmark's headline claim
// as a test: with one 10× straggler, the adaptive schedule must finish at
// least 1.3× faster than the static split (the expected gap is ~3–8×, so
// the margin absorbs CI noise), and the steals must show up in the exported
// metrics.
func TestStealingBeatsStaticUnderImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ds := gen.Synthetic(gen.Anticorrelated, 4000, 6, 7)
	timeRun := func(tun Tuning) (time.Duration, SchedCounters) {
		best := time.Duration(0)
		var counters SchedCounters
		for i := 0; i < 2; i++ {
			start := time.Now()
			_, _, c := MDMCAllSched(ds, imbalancedDevices(), 2, 0, tun, nil, nil)
			if el := time.Since(start); best == 0 || el < best {
				best = el
				counters = c
			}
		}
		return best, counters
	}
	static, _ := timeRun(staticTuning)

	reg := obs.NewRegistry()
	adaptive := Tuning{Metrics: obs.NewSchedMetrics(reg)}
	start := time.Now()
	_, _, counters := MDMCAllSched(ds, imbalancedDevices(), 2, 0, adaptive, nil, nil)
	stealing := time.Since(start)

	if float64(static) < 1.3*float64(stealing) {
		t.Errorf("static %v vs stealing %v: speedup %.2f× < 1.3×",
			static, stealing, float64(static)/float64(stealing))
	}
	t.Logf("static %v, stealing %v (%.1f×), counters %+v",
		static, stealing, float64(static)/float64(stealing), counters)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if counters.Steals > 0 && !strings.Contains(sb.String(), "skycube_sched_steals_total") {
		t.Error("steals counted but missing from exported metrics")
	}
}
