package hetero

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skycube/internal/data"
	"skycube/internal/mask"
	"skycube/internal/templates"
)

// fakeDevice is a scheduler-only Device: RunPoints and Cuboid are never
// called, only the scheduling hints matter.
type fakeDevice struct {
	name  string
	chunk int
	speed float64
}

func (f *fakeDevice) Name() string { return f.name }
func (f *fakeDevice) Cuboid(ds *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
	panic("not used")
}
func (f *fakeDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	panic("not used")
}
func (f *fakeDevice) ChunkHint(int) int  { return f.chunk }
func (f *fakeDevice) SpeedHint() float64 { return f.speed }

func fakeDevices(n int) []Device {
	out := make([]Device, n)
	for i := range out {
		out[i] = &fakeDevice{name: string(rune('a' + i)), chunk: 64, speed: 1}
	}
	return out
}

// claimAll drains the scheduler from one goroutine per device, marking every
// handed-out task, and returns the per-task claim counts.
func claimAll(t *testing.T, s *Scheduler, devices int, slowDev int) []int32 {
	t.Helper()
	claimed := make([]int32, s.NumTasks())
	var wg sync.WaitGroup
	wg.Add(devices)
	for i := 0; i < devices; i++ {
		go func(dev int) {
			defer wg.Done()
			for {
				lo, hi := s.Grab(dev)
				if lo >= hi {
					return
				}
				for j := lo; j < hi; j++ {
					if atomic.AddInt32(&claimed[j], 1) != 1 {
						t.Errorf("task %d handed out twice", j)
					}
				}
				if dev == slowDev {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(i)
	}
	wg.Wait()
	return claimed
}

func TestSchedulerDisjointCoverage(t *testing.T) {
	const n, k = 10_000, 4
	s := NewScheduler(n, 6, fakeDevices(k), Tuning{})
	claimed := claimAll(t, s, k, 1)
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("task %d claimed %d times", i, c)
		}
	}
	if c := s.Counters(); c.Refills == 0 {
		t.Error("no refills recorded")
	}
}

func TestSchedulerPrepartitionCoverage(t *testing.T) {
	const n, k = 7_001, 3 // deliberately not divisible
	s := NewScheduler(n, 6, fakeDevices(k), Tuning{Prepartition: true})
	total := 0
	for i := 0; i < k; i++ {
		rem := s.Remaining(i)
		if rem == 0 {
			t.Errorf("device %d got no prepartitioned range", i)
		}
		total += rem
	}
	if total != n {
		t.Fatalf("prepartitioned ranges cover %d tasks, want %d", total, n)
	}
	claimed := claimAll(t, s, k, 0)
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("task %d claimed %d times", i, c)
		}
	}
}

func TestSchedulerStealOccurs(t *testing.T) {
	// Device 1 never grabs: with a prepartitioned split, device 0 can only
	// finish the run by stealing device 1's whole range.
	const n = 1_000
	s := NewScheduler(n, 6, fakeDevices(2), Tuning{Prepartition: true})
	seen := 0
	for {
		lo, hi := s.Grab(0)
		if lo >= hi {
			break
		}
		seen += hi - lo
	}
	if seen != n {
		t.Fatalf("device 0 drained %d of %d tasks", seen, n)
	}
	c := s.Counters()
	if c.Steals == 0 || c.StolenTasks == 0 {
		t.Fatalf("no steals recorded: %+v", c)
	}
}

func TestSchedulerDisableStealing(t *testing.T) {
	const n = 1_000
	s := NewScheduler(n, 6, fakeDevices(2), Tuning{Prepartition: true, DisableStealing: true})
	seen := 0
	for {
		lo, hi := s.Grab(0)
		if lo >= hi {
			break
		}
		seen += hi - lo
	}
	if seen >= n {
		t.Fatalf("device 0 drained the whole run despite stealing being off")
	}
	if c := s.Counters(); c.Steals != 0 {
		t.Fatalf("steals recorded with stealing disabled: %+v", c)
	}
	if rem := s.Remaining(1); seen+rem != n {
		t.Errorf("device 1 still holds %d, device 0 took %d, total %d != %d",
			rem, seen, seen+rem, n)
	}
}

func TestSchedulerRetune(t *testing.T) {
	devs := fakeDevices(1)
	s := NewScheduler(1_000_000, 6, devs, Tuning{})
	start := s.ChunkSize(0)

	// A fast device (1e7 tasks/s × 2 ms target = 20k, clamped to MaxChunk)
	// should grow its chunk...
	for i := 0; i < 5; i++ {
		s.Observe(0, 10_000, time.Millisecond)
	}
	if got := s.ChunkSize(0); got <= start {
		t.Errorf("chunk %d did not grow from %d for a fast device", got, start)
	}
	// ...and a slow one (1k tasks/s) should shrink toward MinChunk.
	for i := 0; i < 20; i++ {
		s.Observe(0, 10, 10*time.Millisecond)
	}
	if got := s.ChunkSize(0); got > 64 {
		t.Errorf("chunk %d did not shrink for a slow device", got)
	}
	if c := s.Counters(); c.Retunes == 0 {
		t.Error("no retunes recorded")
	}

	frozen := NewScheduler(1_000_000, 6, fakeDevices(1), Tuning{DisableRetune: true})
	for i := 0; i < 5; i++ {
		frozen.Observe(0, 10_000, time.Millisecond)
	}
	if got := frozen.ChunkSize(0); got != 64 {
		t.Errorf("DisableRetune: chunk moved to %d", got)
	}
}

func TestSchedulerStealsFromSlowestQueue(t *testing.T) {
	// Three devices, prepartitioned; devices 1 and 2 hold equal ranges but
	// device 2 is observed to be 100× slower, so its queue has the longest
	// drain time — device 0, once empty, must steal from it.
	const n = 3_000
	s := NewScheduler(n, 6, fakeDevices(3), Tuning{Prepartition: true, DisableRetune: true})
	s.Observe(1, 1000, time.Millisecond)      // 1e6 tasks/s
	s.Observe(2, 10, time.Millisecond)        // 1e4 tasks/s
	for s.Remaining(0) > 0 {
		if lo, hi := s.Grab(0); lo >= hi {
			t.Fatal("grab failed before device 0's own range drained")
		}
	}
	before1, before2 := s.Remaining(1), s.Remaining(2)
	if lo, hi := s.Grab(0); lo >= hi {
		t.Fatal("steal failed")
	}
	if s.Remaining(1) != before1 {
		t.Errorf("stole from the fast queue (victim 1: %d -> %d)", before1, s.Remaining(1))
	}
	if s.Remaining(2) >= before2 {
		t.Errorf("slow queue untouched (victim 2: %d -> %d)", before2, s.Remaining(2))
	}
}

func TestSchedulerChunkHintClamped(t *testing.T) {
	devs := []Device{
		&fakeDevice{name: "tiny", chunk: 1, speed: 1},
		&fakeDevice{name: "huge", chunk: 1 << 20, speed: 1},
	}
	s := NewScheduler(100, 6, devs, Tuning{MinChunk: 8, MaxChunk: 256})
	if got := s.ChunkSize(0); got != 8 {
		t.Errorf("tiny hint clamped to %d, want 8", got)
	}
	if got := s.ChunkSize(1); got != 256 {
		t.Errorf("huge hint clamped to %d, want 256", got)
	}
}
