// Package hetero composes the template specialisations across devices — the
// paper's cross-device parallelism (§1, §4.1): one dual-socket CPU and any
// number of modelled GPUs cooperating on a single skycube, sharing the
// read-only template structures and pulling parallel tasks from a common
// queue.
//
// For SDSC the unit of work is a cuboid: with k devices, k cuboids of a
// lattice level run concurrently, each computed by that device's parallel
// skyline algorithm (§4.2.2). For MDMC the unit is a chunk of point tasks
// (§4.3). Task pulling is dynamic, so the work distribution adapts to each
// device's actual throughput — the property Figure 12 measures.
package hetero

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"skycube/internal/data"
	"skycube/internal/gpu"
	"skycube/internal/gpusim"
	"skycube/internal/lattice"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
	"skycube/internal/templates"
)

// Grab hands out the next chunk of point tasks for a worker lane, returning
// lo == hi when the queue is exhausted. It is the template's grab protocol
// (see internal/templates): the scheduler — not the device — decides the
// chunk size, so sizes can adapt to each device's measured throughput.
type Grab = templates.Grab

// AccountFunc reports one completed chunk of n point tasks that took dur
// on the device's lane (a CPU worker index, or 0 for a single-puller GPU).
// The duration lets the scheduler back-date a trace span for the chunk, so
// cross-device runs yield a Figure-12-style per-device work timeline, and
// feeds the throughput EWMA that auto-tunes the device's chunk size.
type AccountFunc func(lane, n int, dur time.Duration)

// Device is one compute unit participating in a cross-device run.
type Device interface {
	// Name identifies the device in work-share reports.
	Name() string
	// Cuboid computes one SDSC task: S_δ and S⁺_δ\S_δ over rows of ds.
	Cuboid(ds *data.Dataset, rows []int32, delta mask.Mask) (sky, extOnly []int32)
	// RunPoints consumes MDMC point chunks via grab until exhaustion,
	// reporting each completed chunk (with its wall time) to account.
	RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc)
	// ChunkHint is the device's preferred grab size for dimensionality d —
	// the scheduler's starting point before throughput observations arrive
	// (a cache-friendly 64 on the CPU, the resident-block count on a GPU).
	ChunkHint(d int) int
	// SpeedHint is a relative throughput estimate used to pick steal
	// victims before any chunk of the device has completed. Only compared
	// between devices; never mixed with measured rates.
	SpeedHint() float64
}

// CPUDevice is the multicore CPU as a device: Hybrid for cuboids, the §5.2
// kernel for points.
type CPUDevice struct {
	// Threads is the core count the device may use.
	Threads int
	// Label overrides the default name (e.g. "CPU0"/"CPU1" to present two
	// sockets as separate devices, as Figure 12 does).
	Label string
	// MDMC options for the point kernel (ablations, partial computation).
	MDMCOpt templates.MDMCOptions
}

// Name implements Device.
func (c *CPUDevice) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "CPU"
}

func (c *CPUDevice) threads() int {
	if c.Threads < 1 {
		return 1
	}
	return c.Threads
}

// Cuboid implements Device with the Hybrid multicore skyline.
func (c *CPUDevice) Cuboid(ds *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
	res := skyline.Compute(ds, rows, delta, skyline.AlgoHybrid, c.threads())
	return res.Skyline, res.ExtOnly
}

// cpuPointChunk is the CPU's preferred grab size per worker.
const cpuPointChunk = 64

// RunPoints implements Device: every core is an independent puller lane on
// the shared grab source.
func (c *CPUDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	templates.RunMDMCGrab(ctx, templates.CPUPointKernel(c.MDMCOpt), c.threads(), grab, account)
}

// ChunkHint implements Device: the §5.2 kernel's cache-friendly chunk.
func (c *CPUDevice) ChunkHint(int) int { return cpuPointChunk }

// SpeedHint implements Device: relative speed scales with the core count.
func (c *CPUDevice) SpeedHint() float64 { return 8 * float64(c.threads()) }

// GPUDevice wraps one modelled GPU.
type GPUDevice struct {
	Dev *gpusim.Device
	// Label disambiguates same-model cards ("980-1", "980-2").
	Label string
	// Stats, if non-nil, accumulates the device's modelled counters.
	Stats *gpu.StatsCollector
}

// Name implements Device.
func (g *GPUDevice) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return g.Dev.Name
}

// Cuboid implements Device with the SkyAlign-style device kernel.
func (g *GPUDevice) Cuboid(ds *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
	res := gpu.Compute(g.Dev, ds, rows, delta, g.Stats)
	return res.Skyline, res.ExtOnly
}

// RunPoints implements Device: one puller that turns each chunk into a
// block-per-point kernel launch.
func (g *GPUDevice) RunPoints(ctx *templates.MDMCContext, grab Grab, account AccountFunc) {
	kernel := gpu.PointKernel(g.Dev, g.Stats)
	for {
		lo, hi := grab(0)
		if lo >= hi {
			return
		}
		start := time.Now()
		kernel(ctx, lo, hi)
		account(0, hi-lo, time.Since(start))
	}
}

// ChunkHint implements Device: a launch should cover the card's resident
// blocks, which shrink as the per-point task state grows with d (§6.2).
func (g *GPUDevice) ChunkHint(d int) int { return gpu.PreferredChunk(g.Dev, d) }

// SpeedHint implements Device with the card's modelled issue throughput.
func (g *GPUDevice) SpeedHint() float64 { return g.Dev.RelativeSpeed() }

// Shares records how many parallel tasks each device completed.
type Shares struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewShares returns an empty share tracker.
func NewShares() *Shares { return &Shares{counts: make(map[string]int64)} }

// Add credits n tasks to a device.
func (s *Shares) Add(name string, n int64) {
	s.mu.Lock()
	s.counts[name] += n
	s.mu.Unlock()
}

// Total returns the number of tasks completed across all devices.
func (s *Shares) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// Fractions returns each device's share of the total, sorted by name.
func (s *Shares) Fractions() []DeviceShare {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, c := range s.counts {
		total += c
	}
	out := make([]DeviceShare, 0, len(s.counts))
	for name, c := range s.counts {
		f := 0.0
		if total > 0 {
			f = float64(c) / float64(total)
		}
		out = append(out, DeviceShare{Name: name, Tasks: c, Fraction: f})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// DeviceShare is one device's slice of the parallel work.
type DeviceShare struct {
	Name     string
	Tasks    int64
	Fraction float64
}

// SDSCAll runs the SDSC template across all devices: within each lattice
// level, devices pull cuboids from a shared queue, so k devices compute k
// cuboids concurrently (Figure 2b with multiple devices).
func SDSCAll(ds *data.Dataset, devices []Device, maxLevel int) (*lattice.Lattice, *Shares) {
	return SDSCAllTraced(ds, devices, maxLevel, nil, nil)
}

// SDSCAllTraced is SDSCAll with default scheduler tuning (see SDSCAllSched).
func SDSCAllTraced(ds *data.Dataset, devices []Device, maxLevel int, tr *obs.Trace,
	onCuboid func(delta mask.Mask)) (*lattice.Lattice, *Shares) {
	return SDSCAllSched(ds, devices, maxLevel, Tuning{}, tr, onCuboid)
}

// SDSCAllSched is the scheduled form of SDSCAll: within each lattice level
// below the top, cuboids are handed out cost-ordered largest-first (by the
// min-parent extended-skyline size) so the expensive cuboids start first
// and no device is left holding a large cuboid after the rest of the level
// has drained — LPT scheduling against the level barrier. Each cuboid is
// recorded as a span on its device's track (plus per-level barrier spans),
// and completed cuboids are reported to onCuboid. tr and onCuboid may be
// nil.
func SDSCAllSched(ds *data.Dataset, devices []Device, maxLevel int, tun Tuning,
	tr *obs.Trace, onCuboid func(delta mask.Mask)) (*lattice.Lattice, *Shares) {
	shares := NewShares()
	pool := make(chan Device, len(devices))
	for _, d := range devices {
		pool <- d
	}
	hook := func(ds *data.Dataset, rows []int32, delta mask.Mask) ([]int32, []int32) {
		dev := <-pool
		defer func() { pool <- dev }()
		var h obs.SpanHandle
		if tr != nil {
			h = tr.Begin(dev.Name(), obs.CatCuboid, fmt.Sprintf("δ=%0*b", ds.Dims, uint32(delta)))
			h.SetN(int64(len(rows)))
		}
		sky, extOnly := dev.Cuboid(ds, rows, delta)
		h.End()
		shares.Add(dev.Name(), 1)
		return sky, extOnly
	}
	l := lattice.TopDown(ds, hook, lattice.TopDownOptions{
		CuboidThreads:       len(devices),
		MaxLevel:            maxLevel,
		Trace:               tr,
		SuppressCuboidSpans: true,
		OnCuboid:            onCuboid,
		LargestFirst:        !tun.DisableCostOrder,
	})
	return l, shares
}

// MDMCAll runs the MDMC template across all devices: the shared tree and
// HashCube are built once; devices then drain the point-task queue
// concurrently with no further synchronisation (§4.3).
func MDMCAll(ds *data.Dataset, devices []Device, prepThreads, maxLevel int) (*templates.MDMCResult, *Shares) {
	return MDMCAllTraced(ds, devices, prepThreads, maxLevel, nil, nil)
}

// MDMCAllTraced is MDMCAll with default scheduler tuning (see MDMCAllSched).
func MDMCAllTraced(ds *data.Dataset, devices []Device, prepThreads, maxLevel int,
	tr *obs.Trace, onChunk func(n, total int)) (*templates.MDMCResult, *Shares) {
	res, shares, _ := MDMCAllSched(ds, devices, prepThreads, maxLevel, Tuning{}, tr, onChunk)
	return res, shares
}

// MDMCAllSched is the scheduled form of MDMCAll: devices drain per-device
// deques fed by a global grab counter, chunk sizes are auto-tuned from each
// device's throughput EWMA, and idle devices steal half the remaining range
// from the most burdened queue (see Scheduler). The prologue phases and one
// span per completed chunk are recorded on the owning device's track — the
// raw data of a Figure-12 work-share timeline; a device's CPU workers
// beyond lane 0 record on sub-tracks "NAME#lane". Stolen ranges are
// attributed to the stealing device, so Shares and the trace stay exactly
// consistent. onChunk, if non-nil, is told the size of every completed
// chunk plus the total task count |S⁺(P)|. tr and onChunk may be nil.
func MDMCAllSched(ds *data.Dataset, devices []Device, prepThreads, maxLevel int, tun Tuning,
	tr *obs.Trace, onChunk func(n, total int)) (*templates.MDMCResult, *Shares, SchedCounters) {
	ctx := templates.PrepareMDMCTraced(ds, prepThreads, 3, maxLevel, tr)
	shares, counters := MDMCRunPrepared(ctx, devices, tun, tr, onChunk)
	return &templates.MDMCResult{Cube: ctx.Cube, ExtRows: ctx.ExtRows}, shares, counters
}

// MDMCRunPrepared drains an already-prepared MDMC context across devices —
// the scheduled drain loop of MDMCAllSched without its prologue. Callers
// that need the prologue's artefacts beyond the cube (the static tree, for
// incremental maintenance; internal/delta keeps it to solve single-point
// insert tasks and rebuilds it at compaction) prepare the context
// themselves and hand it here.
func MDMCRunPrepared(ctx *templates.MDMCContext, devices []Device, tun Tuning,
	tr *obs.Trace, onChunk func(n, total int)) (*Shares, SchedCounters) {
	shares := NewShares()
	n := ctx.NumTasks()
	sched := NewScheduler(n, ctx.D, devices, tun)
	var wg sync.WaitGroup
	wg.Add(len(devices))
	for i, d := range devices {
		go func(i int, dev Device) {
			defer wg.Done()
			name := dev.Name()
			dev.RunPoints(ctx, sched.GrabFor(i), func(lane, k int, dur time.Duration) {
				sched.Observe(i, k, dur)
				shares.Add(name, int64(k))
				if tr != nil {
					tr.Record(ChunkTrack(name, lane), obs.CatChunk, "points", dur, int64(k))
				}
				if onChunk != nil {
					onChunk(k, n)
				}
			})
		}(i, d)
	}
	wg.Wait()
	return shares, sched.Counters()
}

// ComputeCuboids computes S_δ for each requested subspace over the given
// rows of ds, devices pulling cuboids from a shared queue exactly as SDSC
// hands out lattice-level work. It is the targeted-recompute job of
// incremental deletes (internal/delta): when a skyline member is removed,
// only the cuboids it belonged to are recomputed, scheduled across
// whatever devices the serving system has. Returned id lists are ascending
// rows of ds.
func ComputeCuboids(ds *data.Dataset, rows []int32, deltas []mask.Mask, devices []Device) map[mask.Mask][]int32 {
	out := make(map[mask.Mask][]int32, len(deltas))
	if len(deltas) == 0 || len(devices) == 0 {
		return out
	}
	jobs := make(chan mask.Mask)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(devices))
	for _, dev := range devices {
		go func(dev Device) {
			defer wg.Done()
			for delta := range jobs {
				sky, _ := dev.Cuboid(ds, rows, delta)
				mu.Lock()
				out[delta] = sky
				mu.Unlock()
			}
		}(dev)
	}
	for _, delta := range deltas {
		jobs <- delta
	}
	close(jobs)
	wg.Wait()
	return out
}

// ChunkTrack names the trace track for a device lane: the device name for
// lane 0, "NAME#lane" for the extra CPU worker lanes. DeviceOfTrack is its
// inverse.
func ChunkTrack(name string, lane int) string {
	if lane == 0 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, lane)
}

// DeviceOfTrack strips the "#lane" suffix off a chunk track name.
func DeviceOfTrack(track string) string {
	for i := 0; i < len(track); i++ {
		if track[i] == '#' {
			return track[:i]
		}
	}
	return track
}

// DefaultEcosystem reproduces the paper's test machine as devices: the two
// CPU sockets presented as one CPU device per socket, plus two GTX 980s and
// one Titan (§7.1 “Hardware”).
func DefaultEcosystem(cpuThreads int) []Device {
	half := cpuThreads / 2
	if half < 1 {
		half = 1
	}
	return []Device{
		&CPUDevice{Threads: half, Label: "CPU0"},
		&CPUDevice{Threads: cpuThreads - half, Label: "CPU1"},
		&GPUDevice{Dev: gpusim.GTX980(), Label: "980-1"},
		&GPUDevice{Dev: gpusim.GTX980(), Label: "980-2"},
		&GPUDevice{Dev: gpusim.GTXTitan(), Label: "Titan"},
	}
}
