package hetero

import (
	"reflect"
	"testing"

	"skycube/internal/gen"
	"skycube/internal/gpusim"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/skyline"
)

func smallEcosystem() []Device {
	return []Device{
		&CPUDevice{Threads: 2, Label: "CPU0"},
		&GPUDevice{Dev: gpusim.GTX980(), Label: "980-1"},
		&GPUDevice{Dev: gpusim.GTXTitan(), Label: "Titan"},
	}
}

func TestSDSCAllCorrectness(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 400, 5, 3)
	l, shares := SDSCAll(ds, smallEcosystem(), 0)
	for _, delta := range mask.Subspaces(5) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := l.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%05b: %v, want %v", delta, got, want.Skyline)
		}
	}
	if shares.Total() != int64(mask.NumSubspaces(5)) {
		t.Errorf("shares total %d, want %d cuboids", shares.Total(), mask.NumSubspaces(5))
	}
}

func TestMDMCAllCorrectness(t *testing.T) {
	ds := gen.Synthetic(gen.Anticorrelated, 800, 5, 5)
	res, shares := MDMCAll(ds, smallEcosystem(), 2, 0)
	for _, delta := range mask.Subspaces(5) {
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if got := res.Cube.Skyline(delta); !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%05b: %v, want %v", delta, got, want.Skyline)
		}
	}
	if shares.Total() != int64(len(res.ExtRows)) {
		t.Errorf("shares total %d, want %d point tasks", shares.Total(), len(res.ExtRows))
	}
}

func TestSharesFractionsSumToOne(t *testing.T) {
	s := NewShares()
	s.Add("a", 30)
	s.Add("b", 50)
	s.Add("a", 20)
	fr := s.Fractions()
	if len(fr) != 2 {
		t.Fatalf("got %d devices", len(fr))
	}
	if fr[0].Name != "a" || fr[0].Tasks != 50 || fr[0].Fraction != 0.5 {
		t.Errorf("share a = %+v", fr[0])
	}
	sum := 0.0
	for _, f := range fr {
		sum += f.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestEmptySharesFractions(t *testing.T) {
	s := NewShares()
	if len(s.Fractions()) != 0 || s.Total() != 0 {
		t.Error("empty shares should be empty")
	}
	s.Add("x", 0)
	if fr := s.Fractions(); len(fr) != 1 || fr[0].Fraction != 0 {
		t.Error("zero-task device should report zero fraction")
	}
}

func TestEveryDeviceContributesOnLargeInput(t *testing.T) {
	// With enough tasks, dynamic pulling should give every device work.
	ds := gen.Synthetic(gen.Anticorrelated, 4000, 6, 7)
	_, shares := MDMCAll(ds, smallEcosystem(), 2, 0)
	fr := shares.Fractions()
	if len(fr) != 3 {
		t.Fatalf("only %d devices contributed: %+v", len(fr), fr)
	}
	for _, f := range fr {
		if f.Tasks == 0 {
			t.Errorf("device %s did no work", f.Name)
		}
	}
}

func TestDefaultEcosystem(t *testing.T) {
	devs := DefaultEcosystem(8)
	if len(devs) != 5 {
		t.Fatalf("ecosystem has %d devices, want 5", len(devs))
	}
	names := map[string]bool{}
	for _, d := range devs {
		names[d.Name()] = true
	}
	for _, want := range []string{"CPU0", "CPU1", "980-1", "980-2", "Titan"} {
		if !names[want] {
			t.Errorf("missing device %s", want)
		}
	}
	// Degenerate thread count still yields at least one thread per socket.
	devs = DefaultEcosystem(1)
	if cpu := devs[0].(*CPUDevice); cpu.threads() < 1 {
		t.Error("CPU device must keep at least one thread")
	}
}

func TestCPUDeviceDefaults(t *testing.T) {
	c := &CPUDevice{}
	if c.Name() != "CPU" {
		t.Errorf("default name = %s", c.Name())
	}
	if c.threads() != 1 {
		t.Errorf("default threads = %d", c.threads())
	}
	g := &GPUDevice{Dev: gpusim.GTX980()}
	if g.Name() != "GTX980" {
		t.Errorf("GPU default name = %s", g.Name())
	}
}

func TestSDSCAllPartial(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 300, 6, 9)
	l, _ := SDSCAll(ds, smallEcosystem(), 2)
	for _, delta := range mask.Subspaces(6) {
		got := l.Skyline(delta)
		if mask.Count(delta) > 2 {
			if got != nil {
				t.Errorf("δ=%b above MaxLevel materialised", delta)
			}
			continue
		}
		want := skyline.Compute(ds, nil, delta, skyline.AlgoBNL, 1)
		if !reflect.DeepEqual(got, want.Skyline) {
			t.Errorf("δ=%06b: %v, want %v", delta, got, want.Skyline)
		}
	}
}

func TestTwoDeviceSharesMatchTrace(t *testing.T) {
	// Deterministic setup: two single-threaded CPU devices drain the MDMC
	// queue. The fractions must sum to 1.0 and the per-device task counts
	// must equal the chunk sizes the trace recorded for that device.
	ds := gen.Synthetic(gen.Anticorrelated, 6000, 6, 13)
	devices := []Device{
		&CPUDevice{Threads: 1, Label: "dev-a"},
		&CPUDevice{Threads: 1, Label: "dev-b"},
	}
	tr := obs.New()
	res, shares := MDMCAllTraced(ds, devices, 2, 0, tr, nil)

	// The queue is dynamic, so the split between the devices varies run to
	// run; the invariants are that the fractions cover the whole queue and
	// that every device's share equals what its trace track recorded.
	fr := shares.Fractions()
	if len(fr) == 0 {
		t.Fatal("no device contributed")
	}
	sum := 0.0
	for _, f := range fr {
		sum += f.Fraction
	}
	if sum < 0.9999 || sum > 1.0001 {
		t.Errorf("fractions sum to %v, want 1.0", sum)
	}
	if shares.Total() != int64(len(res.ExtRows)) {
		t.Errorf("total tasks %d != |S⁺(P)| = %d", shares.Total(), len(res.ExtRows))
	}

	// Group chunk spans by device and compare N sums with the shares.
	traced := map[string]int64{}
	for _, s := range tr.Spans() {
		if s.Cat == obs.CatChunk {
			traced[DeviceOfTrack(s.Track)] += s.N
		}
	}
	for _, f := range fr {
		if traced[f.Name] != f.Tasks {
			t.Errorf("device %s: trace says %d points, shares say %d",
				f.Name, traced[f.Name], f.Tasks)
		}
	}
}

func TestChunkTrackRoundTrip(t *testing.T) {
	for _, c := range []struct {
		name  string
		lane  int
		track string
	}{
		{"CPU0", 0, "CPU0"},
		{"CPU0", 3, "CPU0#3"},
		{"980-1", 0, "980-1"},
	} {
		if got := ChunkTrack(c.name, c.lane); got != c.track {
			t.Errorf("ChunkTrack(%s, %d) = %s, want %s", c.name, c.lane, got, c.track)
		}
		if got := DeviceOfTrack(c.track); got != c.name {
			t.Errorf("DeviceOfTrack(%s) = %s, want %s", c.track, got, c.name)
		}
	}
}

// ComputeCuboids must match direct per-cuboid computation — and restricting
// the input rows must restrict the result, which is how incremental deletes
// recompute only over live points.
func TestComputeCuboids(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 4, 21)
	devices := []Device{
		&CPUDevice{Threads: 2, Label: "CPU0"},
		&GPUDevice{Dev: gpusim.GTX980(), Label: "980-1"},
	}
	deltas := []mask.Mask{0b0001, 0b0110, 0b1011, 0b1111}

	// Drop every third row to simulate tombstones.
	var rows []int32
	for r := int32(0); r < int32(ds.N); r++ {
		if r%3 != 0 {
			rows = append(rows, r)
		}
	}
	got := ComputeCuboids(ds, rows, deltas, devices)
	if len(got) != len(deltas) {
		t.Fatalf("got %d cuboids, want %d", len(got), len(deltas))
	}
	for _, delta := range deltas {
		want := skyline.Compute(ds, rows, delta, skyline.AlgoBNL, 1)
		if !reflect.DeepEqual(got[delta], want.Skyline) {
			t.Errorf("δ=%04b: got %v, want %v", delta, got[delta], want.Skyline)
		}
	}
	if len(ComputeCuboids(ds, rows, nil, devices)) != 0 {
		t.Error("no deltas must yield an empty map")
	}
}
