package hetero

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skycube/internal/obs"
	"skycube/internal/templates"
)

// Tuning configures the adaptive work-stealing scheduler. The zero value
// enables everything with the default knobs; the Disable* switches exist
// for ablations, experiments and the differential tests.
type Tuning struct {
	// DisableStealing turns off work stealing: an idle device whose queue
	// and the global counter are both empty simply finishes.
	DisableStealing bool
	// DisableRetune freezes every queue's chunk size at its device hint
	// instead of auto-tuning it from the throughput EWMA.
	DisableRetune bool
	// DisableCostOrder keeps SDSC's within-level cuboid order numeric
	// instead of cost-ordered largest-first.
	DisableCostOrder bool
	// Prepartition splits the task range equally across the device queues
	// up front instead of feeding them from the shared grab counter on
	// demand. With stealing disabled this is the textbook static schedule —
	// the baseline of the imbalance experiment and BenchmarkMDMCImbalance.
	Prepartition bool
	// MinChunk/MaxChunk clamp the auto-tuned grab size. Defaults 16/4096.
	MinChunk, MaxChunk int
	// TargetChunkTime is the wall time a grab is tuned to take; small
	// enough that the end-of-queue straggler tail stays short, large enough
	// to amortise grab overhead. Default 2 ms.
	TargetChunkTime time.Duration
	// EWMAAlpha is the smoothing factor of the per-device throughput
	// average (weight of the newest chunk observation). Default 0.4.
	EWMAAlpha float64
	// RefillFactor is how many tuned chunks a queue pulls from the global
	// counter per refill; the surplus is what idle devices steal. Default 4.
	RefillFactor int
	// Metrics, if non-nil, receives steal/refill/retune counters and the
	// live chunk-size and throughput gauges.
	Metrics *obs.SchedMetrics
}

func (t Tuning) withDefaults() Tuning {
	if t.MinChunk <= 0 {
		t.MinChunk = 16
	}
	if t.MaxChunk <= 0 {
		t.MaxChunk = 4096
	}
	if t.MaxChunk < t.MinChunk {
		t.MaxChunk = t.MinChunk
	}
	if t.TargetChunkTime <= 0 {
		t.TargetChunkTime = 2 * time.Millisecond
	}
	if t.EWMAAlpha <= 0 || t.EWMAAlpha > 1 {
		t.EWMAAlpha = 0.4
	}
	if t.RefillFactor <= 0 {
		t.RefillFactor = 4
	}
	return t
}

// SchedCounters summarise one run of the scheduler.
type SchedCounters struct {
	// Steals is the number of work-stealing events; StolenTasks the point
	// tasks they moved between queues.
	Steals, StolenTasks int64
	// Refills counts device-queue refills from the global grab counter.
	Refills int64
	// Retunes counts chunk-size adjustments driven by the throughput EWMA.
	Retunes int64
}

// span is a half-open range of point-task indices owned by one queue.
type span struct{ lo, hi int }

// devQueue is one device's deque of task ranges. The owning device pops
// tuned chunks from the front; idle devices steal from the back.
type devQueue struct {
	name string
	mu   sync.Mutex
	// ranges are disjoint, each non-empty. The slice is short: at most the
	// refill surplus plus stolen spans.
	ranges []span
	// chunk is the current tuned grab size.
	chunk int
	// rate is the EWMA task throughput (tasks/s); 0 until the first chunk
	// completes, when hint stands in for victim selection.
	rate float64
	// hint is the device's relative speed estimate (only compared between
	// devices, never mixed with measured rates).
	hint float64
}

func (q *devQueue) remainingLocked() int {
	n := 0
	for _, r := range q.ranges {
		n += r.hi - r.lo
	}
	return n
}

// Scheduler is the adaptive cross-device work scheduler of the MDMC
// template (and, via cost-ordered queues, SDSC): per-device deques fed by a
// global grab counter, chunk sizes tuned from each device's recent
// throughput, and idle devices stealing half the remaining range from the
// queue that would take longest to drain. Every range is handed out exactly
// once, and every chunk is attributed to the device that executed it — the
// invariants the chaos test checks under -race.
type Scheduler struct {
	n      int
	tun    Tuning
	next   atomic.Int64
	queues []*devQueue

	steals, stolen, refills, retunes atomic.Int64
}

// NewScheduler builds a scheduler over n point tasks of dimensionality d
// for the given devices. Each device's queue starts at the device's own
// chunk hint (a CPU cache-friendly 64, a GPU's resident-block count).
func NewScheduler(n, d int, devices []Device, tun Tuning) *Scheduler {
	tun = tun.withDefaults()
	s := &Scheduler{n: n, tun: tun, queues: make([]*devQueue, len(devices))}
	for i, dev := range devices {
		chunk := dev.ChunkHint(d)
		if chunk < tun.MinChunk {
			chunk = tun.MinChunk
		}
		if chunk > tun.MaxChunk {
			chunk = tun.MaxChunk
		}
		s.queues[i] = &devQueue{name: dev.Name(), chunk: chunk, hint: dev.SpeedHint()}
	}
	if tun.Prepartition && n > 0 && len(devices) > 0 {
		per, extra := n/len(devices), n%len(devices)
		lo := 0
		for i, q := range s.queues {
			size := per
			if i < extra {
				size++
			}
			if size > 0 {
				q.ranges = append(q.ranges, span{lo, lo + size})
			}
			lo += size
		}
		s.next.Store(int64(n))
	}
	return s
}

// NumTasks returns the scheduled task count.
func (s *Scheduler) NumTasks() int { return s.n }

// Counters returns the run's scheduling event totals.
func (s *Scheduler) Counters() SchedCounters {
	return SchedCounters{
		Steals:      s.steals.Load(),
		StolenTasks: s.stolen.Load(),
		Refills:     s.refills.Load(),
		Retunes:     s.retunes.Load(),
	}
}

// GrabFor returns the grab source for device dev; all of the device's lanes
// share the device's queue.
func (s *Scheduler) GrabFor(dev int) templates.Grab {
	return func(int) (int, int) { return s.Grab(dev) }
}

// Grab hands device dev its next chunk: from its own queue, else a refill
// from the global counter, else by stealing. lo == hi means the whole run
// is out of undistributed work.
func (s *Scheduler) Grab(dev int) (int, int) {
	q := s.queues[dev]
	for {
		if lo, hi, ok := q.pop(); ok {
			return lo, hi
		}
		if lo, hi, ok := s.refill(q); ok {
			return lo, hi
		}
		if s.tun.DisableStealing || !s.steal(dev) {
			return s.n, s.n
		}
		// The stolen span is in our queue now; loop to pop from it.
	}
}

// pop takes one tuned chunk off the front of the queue.
func (q *devQueue) pop() (int, int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ranges) == 0 {
		return 0, 0, false
	}
	r := &q.ranges[0]
	lo := r.lo
	hi := lo + q.chunk
	if hi > r.hi {
		hi = r.hi
	}
	r.lo = hi
	if r.lo >= r.hi {
		q.ranges = q.ranges[1:]
	}
	return lo, hi, true
}

// refill claims RefillFactor tuned chunks from the global counter, returns
// the first and queues the surplus (the part idle devices may steal back).
func (s *Scheduler) refill(q *devQueue) (int, int, bool) {
	q.mu.Lock()
	chunk := q.chunk
	q.mu.Unlock()
	block := chunk * s.tun.RefillFactor
	lo := int(s.next.Add(int64(block))) - block
	if lo >= s.n {
		return 0, 0, false
	}
	hi := lo + block
	if hi > s.n {
		hi = s.n
	}
	grabHi := lo + chunk
	if grabHi > hi {
		grabHi = hi
	}
	if grabHi < hi {
		q.mu.Lock()
		q.ranges = append(q.ranges, span{grabHi, hi})
		q.mu.Unlock()
	}
	s.refills.Add(1)
	s.tun.Metrics.Refill(q.name, hi-lo)
	return lo, grabHi, true
}

// steal moves half of the remaining back range of the most burdened queue —
// longest modelled drain time, i.e. the slowest for what it still holds —
// into thief's queue. Ownership transfers under the victim's lock, so a
// range is only ever handed out by exactly one queue.
func (s *Scheduler) steal(thief int) bool {
	type cand struct {
		idx   int
		drain float64
	}
	cands := make([]cand, 0, len(s.queues)-1)
	for i, q := range s.queues {
		if i == thief {
			continue
		}
		q.mu.Lock()
		rem := q.remainingLocked()
		rate := q.rate
		if rate <= 0 {
			rate = q.hint
		}
		q.mu.Unlock()
		if rem == 0 {
			continue
		}
		if rate <= 0 {
			rate = 1
		}
		cands = append(cands, cand{i, float64(rem) / rate})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].drain > cands[b].drain })
	me := s.queues[thief]
	for _, c := range cands {
		v := s.queues[c.idx]
		v.mu.Lock()
		if len(v.ranges) == 0 {
			v.mu.Unlock()
			continue
		}
		r := &v.ranges[len(v.ranges)-1]
		mid := r.lo + (r.hi-r.lo)/2
		stolen := span{mid, r.hi}
		if mid == r.lo {
			// Single-task range: take it whole.
			v.ranges = v.ranges[:len(v.ranges)-1]
		} else {
			r.hi = mid
		}
		v.mu.Unlock()
		me.mu.Lock()
		me.ranges = append(me.ranges, stolen)
		me.mu.Unlock()
		s.steals.Add(1)
		s.stolen.Add(int64(stolen.hi - stolen.lo))
		s.tun.Metrics.Steal(me.name, v.name, stolen.hi-stolen.lo)
		return true
	}
	return false
}

// Observe feeds one completed chunk (n tasks in dur on device dev) into the
// device's throughput EWMA and retunes its chunk size toward
// TargetChunkTime. Called from the account path of every device lane.
func (s *Scheduler) Observe(dev, n int, dur time.Duration) {
	if n <= 0 {
		return
	}
	q := s.queues[dev]
	secs := dur.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	sample := float64(n) / secs
	q.mu.Lock()
	if q.rate <= 0 {
		q.rate = sample
	} else {
		q.rate = s.tun.EWMAAlpha*sample + (1-s.tun.EWMAAlpha)*q.rate
	}
	rate := q.rate
	retuned := 0
	if !s.tun.DisableRetune {
		want := int(rate * s.tun.TargetChunkTime.Seconds())
		if want < s.tun.MinChunk {
			want = s.tun.MinChunk
		}
		if want > s.tun.MaxChunk {
			want = s.tun.MaxChunk
		}
		// Retune only on a ≥ 25% move so the chunk size does not thrash on
		// measurement noise.
		if diff := want - q.chunk; 4*diff >= q.chunk || -4*diff >= q.chunk {
			q.chunk = want
			retuned = want
		}
	}
	q.mu.Unlock()
	if retuned > 0 {
		s.retunes.Add(1)
		s.tun.Metrics.Retune(q.name, retuned)
	}
	s.tun.Metrics.Rate(q.name, rate)
}

// ChunkSize reports the queue's current tuned grab size (for tests and the
// experiments report).
func (s *Scheduler) ChunkSize(dev int) int {
	q := s.queues[dev]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.chunk
}

// Remaining reports how many tasks are still queued (not yet grabbed) for
// device dev.
func (s *Scheduler) Remaining(dev int) int {
	q := s.queues[dev]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remainingLocked()
}
