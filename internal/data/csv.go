package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVOptions configure CSV ingestion.
type CSVOptions struct {
	// Header skips the first row (column names).
	Header bool
	// Columns selects which CSV columns become dimensions, in order. Nil
	// means every column.
	Columns []int
	// Comma is the field separator; 0 means ','.
	Comma rune
}

// ReadCSV parses tabular data into a dataset. Fields must be numeric in
// the selected columns; rows with the wrong field count are an error.
func ReadCSV(r io.Reader, opt CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opt.Comma != 0 {
		cr.Comma = opt.Comma
	}
	cr.ReuseRecord = true
	var vals []float32
	d := 0
	rowNum := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: csv row %d: %v", rowNum+1, err)
		}
		rowNum++
		if opt.Header && rowNum == 1 {
			continue
		}
		cols := opt.Columns
		if cols == nil {
			cols = make([]int, len(rec))
			for i := range cols {
				cols[i] = i
			}
		}
		if d == 0 {
			d = len(cols)
		} else if len(cols) != d {
			return nil, fmt.Errorf("data: csv row %d: %d selected columns, want %d", rowNum, len(cols), d)
		}
		for _, c := range cols {
			if c < 0 || c >= len(rec) {
				return nil, fmt.Errorf("data: csv row %d: column %d out of range (%d fields)", rowNum, c, len(rec))
			}
			v, err := strconv.ParseFloat(rec[c], 32)
			if err != nil {
				return nil, fmt.Errorf("data: csv row %d column %d: %v", rowNum, c, err)
			}
			vals = append(vals, float32(v))
		}
	}
	if d == 0 || len(vals) == 0 {
		return nil, fmt.Errorf("data: csv input has no data rows")
	}
	return New(d, vals), nil
}

// Direction states how a raw attribute relates to preference.
type Direction int

const (
	// LowerBetter attributes are already in skyline orientation.
	LowerBetter Direction = iota
	// HigherBetter attributes are flipped during normalisation (points
	// scored, throughput, …).
	HigherBetter
)

// Normalize rescales every dimension into [0,1] with smaller-is-better
// orientation: dimensions marked HigherBetter are mirrored. dirs may be nil
// (all LowerBetter) or must have one entry per dimension. Constant
// dimensions map to 0. Normalisation is order-preserving per dimension, so
// dominance relationships — and therefore every subspace skyline — are
// unchanged for LowerBetter dimensions and correctly reoriented for
// HigherBetter ones.
func Normalize(ds *Dataset, dirs []Direction) (*Dataset, error) {
	d := ds.Dims
	if dirs != nil && len(dirs) != d {
		return nil, fmt.Errorf("data: %d directions for %d dimensions", len(dirs), d)
	}
	lo := make([]float32, d)
	hi := make([]float32, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = ds.Value(0, j), ds.Value(0, j)
	}
	for i := 1; i < ds.N; i++ {
		for j := 0; j < d; j++ {
			v := ds.Value(i, j)
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	vals := make([]float32, len(ds.Vals))
	for i := 0; i < ds.N; i++ {
		for j := 0; j < d; j++ {
			den := hi[j] - lo[j]
			var v float32
			if den > 0 {
				v = (ds.Value(i, j) - lo[j]) / den
			}
			if dirs != nil && dirs[j] == HigherBetter {
				v = 1 - v
			}
			vals[i*d+j] = v
		}
	}
	ids := make([]int32, ds.N)
	copy(ids, ds.IDs)
	return &Dataset{Dims: d, N: ds.N, Vals: vals, IDs: ids}, nil
}
