// Property tests for the spatial partition modes: every row lands in
// exactly one shard, shard sizes stay balanced enough to be non-empty, and
// the per-partition corners genuinely bound their points — including
// datasets with negative coordinates and duplicate points.
package data

import (
	"fmt"
	"math/rand"
	"testing"
)

// randDataset builds a dataset whose coordinates may be negative and where
// a fraction of rows are exact duplicates of earlier rows.
func randDataset(rng *rand.Rand, n, d int, dupFraction float64) *Dataset {
	rows := make([][]float32, n)
	for i := range rows {
		if i > 0 && rng.Float64() < dupFraction {
			src := rows[rng.Intn(i)]
			dup := make([]float32, d)
			copy(dup, src)
			rows[i] = dup
			continue
		}
		row := make([]float32, d)
		for j := range row {
			row[j] = float32(rng.NormFloat64()) // negative about half the time
		}
		rows[i] = row
	}
	return FromRows(rows)
}

func TestPartitionPropertySpatialModes(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		d := 2 + rng.Intn(5)
		k := 1 + rng.Intn(8)
		if k > n {
			k = n
		}
		dup := float64(trial%3) * 0.25
		ds := randDataset(rng, n, d, dup)
		for _, mode := range []PartitionMode{Grid, Angular, RoundRobin, Range} {
			t.Run(fmt.Sprintf("t%d/%v/n%d/d%d/k%d", trial, mode, n, d, k), func(t *testing.T) {
				parts, err := Partition(ds, k, mode)
				if err != nil {
					t.Fatalf("Partition: %v", err)
				}
				if len(parts) != k {
					t.Fatalf("got %d shards, want %d", len(parts), k)
				}
				// Coverage: counting original row ids across shards, every
				// row appears exactly once. Duplicate points are
				// distinguishable by id, so a row routed twice (or dropped)
				// is caught even when its coordinates repeat.
				seen := make([]int, n)
				total := 0
				for s, p := range parts {
					if p.N == 0 {
						t.Fatalf("shard %d empty with n=%d k=%d", s, n, k)
					}
					total += p.N
					for _, id := range p.IDs {
						if id < 0 || int(id) >= n {
							t.Fatalf("shard %d carries foreign id %d", s, id)
						}
						seen[id]++
					}
				}
				if total != n {
					t.Fatalf("shards hold %d rows, dataset has %d", total, n)
				}
				for id, c := range seen {
					if c != 1 {
						t.Fatalf("row %d covered %d times", id, c)
					}
				}
				// Corners bound: every coordinate of every point of a shard
				// lies inside that shard's [min, max] box.
				for s, p := range parts {
					min, max := Corners(p)
					for i := 0; i < p.N; i++ {
						for j := 0; j < p.Dims; j++ {
							v := p.Vals[i*p.Dims+j]
							if v < min[j] || v > max[j] {
								t.Fatalf("shard %d row %d dim %d: %v outside corner box [%v,%v]",
									s, i, j, v, min[j], max[j])
							}
						}
					}
				}
			})
		}
	}
}

// TestPartitionGridCellsDisjoint pins the Grid mode's defining property on
// the split dimension hierarchy: the first-level split separates cells on
// dimension 0 (left cells' max ≤ right cells' min), which is what makes
// grid corners useful dominance witnesses.
func TestPartitionGridCellsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randDataset(rng, 256, 3, 0)
	parts, err := Partition(ds, 4, Grid)
	if err != nil {
		t.Fatal(err)
	}
	// gridSplit halves k first: shards {0,1} are the low half of dim 0,
	// shards {2,3} the high half.
	var lowMax, highMin float32
	for s, p := range parts {
		min, max := Corners(p)
		if s < 2 {
			if max[0] > lowMax || s == 0 {
				lowMax = max[0]
			}
		} else {
			if min[0] < highMin || s == 2 {
				highMin = min[0]
			}
		}
	}
	if lowMax > highMin {
		t.Fatalf("grid first-level split leaks on dim 0: low max %v > high min %v", lowMax, highMin)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := randDataset(rng, 200, 4, 0.3)
	for _, mode := range []PartitionMode{Grid, Angular} {
		a, err := Partition(ds, 5, mode)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(ds, 5, mode)
		if err != nil {
			t.Fatal(err)
		}
		for s := range a {
			if len(a[s].IDs) != len(b[s].IDs) {
				t.Fatalf("%v shard %d size differs across runs", mode, s)
			}
			for i := range a[s].IDs {
				if a[s].IDs[i] != b[s].IDs[i] {
					t.Fatalf("%v shard %d row %d differs across runs", mode, s, i)
				}
			}
		}
	}
}
