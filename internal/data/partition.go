package data

import (
	"fmt"
	"math"
)

// PartitionMode selects how Partition distributes rows across shards.
type PartitionMode int

const (
	// RoundRobin assigns row i to shard i mod k, so shard s holds the
	// original rows s, s+k, s+2k, … — local row r of shard s is global row
	// s + r*k (id base s, id stride k). Round-robin keeps every shard's
	// distribution statistically identical to the whole, and the arithmetic
	// id mapping stays valid as shards append new points.
	RoundRobin PartitionMode = iota
	// Range assigns contiguous row blocks: shard s holds the rows
	// [RangeOffsets(n,k)[s], RangeOffsets(n,k)[s+1]) — local row r is global
	// row offset+r (id base offset, id stride 1).
	Range
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case RoundRobin:
		return "round-robin"
	case Range:
		return "range"
	}
	return "?"
}

// RangeOffsets returns the k+1 boundaries of the balanced contiguous split
// of n rows: shard s is [out[s], out[s+1]), sizes differing by at most one.
func RangeOffsets(n, k int) []int {
	out := make([]int, k+1)
	q, rem := n/k, n%k
	for s := 0; s < k; s++ {
		out[s+1] = out[s] + q
		if s < rem {
			out[s+1]++
		}
	}
	return out
}

// Partition splits ds into k horizontal shards under the given mode. Each
// shard's IDs retain the original global row indices, so shard-local results
// remain comparable with (and mergeable into) whole-dataset results — the
// precondition of distributed skyline merging.
func Partition(ds *Dataset, k int, mode PartitionMode) ([]*Dataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: partition count %d must be positive", k)
	}
	if k > ds.N {
		return nil, fmt.Errorf("data: cannot split %d points into %d shards", ds.N, k)
	}
	shards := make([]*Dataset, k)
	switch mode {
	case RoundRobin:
		for s := 0; s < k; s++ {
			rows := make([]int, 0, (ds.N-s+k-1)/k)
			for i := s; i < ds.N; i += k {
				rows = append(rows, i)
			}
			shards[s] = ds.Subset(rows)
		}
	case Range:
		off := RangeOffsets(ds.N, k)
		for s := 0; s < k; s++ {
			rows := make([]int, 0, off[s+1]-off[s])
			for i := off[s]; i < off[s+1]; i++ {
				rows = append(rows, i)
			}
			shards[s] = ds.Subset(rows)
		}
	default:
		return nil, fmt.Errorf("data: unknown partition mode %d", mode)
	}
	return shards, nil
}

// CheckFinite returns an error naming the first non-finite coordinate
// (NaN or ±Inf) in ds, or nil if every value is finite. Non-finite values
// poison dominance tests — NaN compares false against everything, so a NaN
// point is never dominated and silently joins every skyline — hence loaders
// reject them up front.
func CheckFinite(ds *Dataset) error {
	for i, v := range ds.Vals {
		if isFinite(v) {
			continue
		}
		return fmt.Errorf("data: point %d dimension %d is %v (coordinates must be finite)",
			i/ds.Dims, i%ds.Dims, v)
	}
	return nil
}

// CheckFiniteRow validates one point's coordinates the same way.
func CheckFiniteRow(p []float32) error {
	for j, v := range p {
		if !isFinite(v) {
			return fmt.Errorf("data: dimension %d is %v (coordinates must be finite)", j, v)
		}
	}
	return nil
}

func isFinite(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
