package data

import (
	"fmt"
	"math"
	"sort"
)

// PartitionMode selects how Partition distributes rows across shards.
type PartitionMode int

const (
	// RoundRobin assigns row i to shard i mod k, so shard s holds the
	// original rows s, s+k, s+2k, … — local row r of shard s is global row
	// s + r*k (id base s, id stride k). Round-robin keeps every shard's
	// distribution statistically identical to the whole, and the arithmetic
	// id mapping stays valid as shards append new points.
	RoundRobin PartitionMode = iota
	// Range assigns contiguous row blocks: shard s holds the rows
	// [RangeOffsets(n,k)[s], RangeOffsets(n,k)[s+1]) — local row r is global
	// row offset+r (id base offset, id stride 1).
	Range
	// Grid assigns each shard an axis-aligned spatial cell via recursive
	// median splits (kd-style, cycling dimensions), so every shard's points
	// live in a tight bounding box — the region bounds that let a shard
	// prove most of its points globally dominated before replying (see
	// internal/cluster's pruned gather). Grid is a positional mode: global
	// ids follow the concatenation order of the returned shards (shard s's
	// id base is the total size of shards 0..s-1, stride 1), so
	// grid-partitioned clusters are read-only like Range.
	Grid
	// Angular sorts points by their first hyperspherical angle around the
	// dataset's per-dimension minimum corner and cuts equal-count slices.
	// Angular slices align with dominance rays from the origin, which keeps
	// every slice's local skyline small on anticorrelated data (arXiv
	// 2501.03850). Positional id mapping, like Grid.
	Angular
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case RoundRobin:
		return "round-robin"
	case Range:
		return "range"
	case Grid:
		return "grid"
	case Angular:
		return "angular"
	}
	return "?"
}

// Positional reports whether the mode maps global ids by concatenation
// order (id stride 1, base = prefix size sum) rather than by arithmetic
// over original row numbers. Positional partitions renumber points: global
// id g is row g - base of shard owner(g), in the shard order Partition
// returned.
func (m PartitionMode) Positional() bool { return m == Range || m == Grid || m == Angular }

// RangeOffsets returns the k+1 boundaries of the balanced contiguous split
// of n rows: shard s is [out[s], out[s+1]), sizes differing by at most one.
func RangeOffsets(n, k int) []int {
	out := make([]int, k+1)
	q, rem := n/k, n%k
	for s := 0; s < k; s++ {
		out[s+1] = out[s] + q
		if s < rem {
			out[s+1]++
		}
	}
	return out
}

// Partition splits ds into k horizontal shards under the given mode. Each
// shard's IDs retain the original global row indices, so shard-local results
// remain comparable with (and mergeable into) whole-dataset results — the
// precondition of distributed skyline merging.
func Partition(ds *Dataset, k int, mode PartitionMode) ([]*Dataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: partition count %d must be positive", k)
	}
	if k > ds.N {
		return nil, fmt.Errorf("data: cannot split %d points into %d shards", ds.N, k)
	}
	shards := make([]*Dataset, k)
	switch mode {
	case RoundRobin:
		for s := 0; s < k; s++ {
			rows := make([]int, 0, (ds.N-s+k-1)/k)
			for i := s; i < ds.N; i += k {
				rows = append(rows, i)
			}
			shards[s] = ds.Subset(rows)
		}
	case Range:
		off := RangeOffsets(ds.N, k)
		for s := 0; s < k; s++ {
			rows := make([]int, 0, off[s+1]-off[s])
			for i := off[s]; i < off[s+1]; i++ {
				rows = append(rows, i)
			}
			shards[s] = ds.Subset(rows)
		}
	case Grid:
		all := make([]int, ds.N)
		for i := range all {
			all[i] = i
		}
		for s, rows := range gridSplit(ds, all, k, 0) {
			shards[s] = ds.Subset(rows)
		}
	case Angular:
		for s, rows := range angularSplit(ds, k) {
			shards[s] = ds.Subset(rows)
		}
	default:
		return nil, fmt.Errorf("data: unknown partition mode %d", mode)
	}
	return shards, nil
}

// gridSplit recursively halves rows at the median of a cycling dimension
// until k cells remain, keeping cell sizes balanced (each recursion gives
// the left branch ⌊len·kl/k⌋ rows, which keeps every cell non-empty while
// rows ≥ k). Sorting ties on the row index makes the split deterministic
// for duplicate coordinates.
func gridSplit(ds *Dataset, rows []int, k, dim int) [][]int {
	if k == 1 {
		return [][]int{rows}
	}
	d := dim % ds.Dims
	sort.Slice(rows, func(a, b int) bool {
		va, vb := ds.Vals[rows[a]*ds.Dims+d], ds.Vals[rows[b]*ds.Dims+d]
		if va != vb {
			return va < vb
		}
		return rows[a] < rows[b]
	})
	kl := k / 2
	cut := len(rows) * kl / k
	left := gridSplit(ds, rows[:cut], kl, dim+1)
	right := gridSplit(ds, rows[cut:], k-kl, dim+1)
	return append(left, right...)
}

// angularSplit orders rows by the first hyperspherical angle of the point
// relative to the dataset's min corner — atan2 of the tail norm over the
// first shifted coordinate, so negative raw coordinates are handled by the
// shift — and cuts k equal-count contiguous slices. Ties (including exact
// duplicate points) order by row index for determinism.
func angularSplit(ds *Dataset, k int) [][]int {
	min := make([]float64, ds.Dims)
	for j := range min {
		min[j] = math.Inf(1)
	}
	for i := 0; i < ds.N; i++ {
		for j := 0; j < ds.Dims; j++ {
			if v := float64(ds.Vals[i*ds.Dims+j]); v < min[j] {
				min[j] = v
			}
		}
	}
	angle := make([]float64, ds.N)
	for i := 0; i < ds.N; i++ {
		first := float64(ds.Vals[i*ds.Dims]) - min[0]
		var tail float64
		for j := 1; j < ds.Dims; j++ {
			t := float64(ds.Vals[i*ds.Dims+j]) - min[j]
			tail += t * t
		}
		angle[i] = math.Atan2(math.Sqrt(tail), first)
	}
	rows := make([]int, ds.N)
	for i := range rows {
		rows[i] = i
	}
	sort.Slice(rows, func(a, b int) bool {
		if angle[rows[a]] != angle[rows[b]] {
			return angle[rows[a]] < angle[rows[b]]
		}
		return rows[a] < rows[b]
	})
	off := RangeOffsets(ds.N, k)
	out := make([][]int, k)
	for s := 0; s < k; s++ {
		out[s] = rows[off[s]:off[s+1]]
	}
	return out
}

// Corners returns the componentwise min and max corner over every row of
// ds — the tight axis-aligned bounding box of the partition. An empty
// dataset yields nil corners.
func Corners(ds *Dataset) (min, max []float32) {
	if ds.N == 0 {
		return nil, nil
	}
	min = make([]float32, ds.Dims)
	max = make([]float32, ds.Dims)
	copy(min, ds.Vals[:ds.Dims])
	copy(max, ds.Vals[:ds.Dims])
	for i := 1; i < ds.N; i++ {
		for j := 0; j < ds.Dims; j++ {
			v := ds.Vals[i*ds.Dims+j]
			if v < min[j] {
				min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	return min, max
}

// CheckFinite returns an error naming the first non-finite coordinate
// (NaN or ±Inf) in ds, or nil if every value is finite. Non-finite values
// poison dominance tests — NaN compares false against everything, so a NaN
// point is never dominated and silently joins every skyline — hence loaders
// reject them up front.
func CheckFinite(ds *Dataset) error {
	for i, v := range ds.Vals {
		if isFinite(v) {
			continue
		}
		return fmt.Errorf("data: point %d dimension %d is %v (coordinates must be finite)",
			i/ds.Dims, i%ds.Dims, v)
	}
	return nil
}

// CheckFiniteRow validates one point's coordinates the same way.
func CheckFiniteRow(p []float32) error {
	for j, v := range p {
		if !isFinite(v) {
			return fmt.Errorf("data: dimension %d is %v (coordinates must be finite)", j, v)
		}
	}
	return nil
}

func isFinite(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
