// Package data defines the in-memory dataset representation shared by every
// algorithm: a row-major float32 matrix with implicit point ids.
//
// Row-major layout matches the paper's design discussion (§6.1): dominance
// tests read a point's coordinates from contiguous cache lines, and the GPU
// specialisations rely on consecutive threads touching consecutive
// addresses for coalescing. Smaller values are better on every dimension
// (WLOG, per the paper's footnote 2).
package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"skycube/internal/mask"
)

// Dataset is an immutable set of n points over d dimensions.
type Dataset struct {
	Dims int
	N    int
	// Vals holds the coordinates row-major: point i's value on dimension j
	// is Vals[i*Dims+j].
	Vals []float32
	// IDs maps row index to the external point id. For generated data this
	// is the identity; subset views (extended skylines) retain the original
	// ids so results are comparable across representations.
	IDs []int32
}

// New creates a dataset from a row-major value slice, assigning identity
// ids. It panics if len(vals) is not a multiple of d, as that is always a
// programming error.
func New(d int, vals []float32) *Dataset {
	if d <= 0 || d > mask.MaxDims {
		panic(fmt.Sprintf("data: dimensionality %d out of range [1,%d]", d, mask.MaxDims))
	}
	if len(vals)%d != 0 {
		panic(fmt.Sprintf("data: %d values not divisible by d=%d", len(vals), d))
	}
	n := len(vals) / d
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return &Dataset{Dims: d, N: n, Vals: vals, IDs: ids}
}

// FromRows creates a dataset from per-point rows.
func FromRows(rows [][]float32) *Dataset {
	if len(rows) == 0 {
		panic("data: FromRows needs at least one row")
	}
	d := len(rows[0])
	vals := make([]float32, 0, len(rows)*d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("data: row %d has %d values, want %d", i, len(r), d))
		}
		vals = append(vals, r...)
	}
	return New(d, vals)
}

// Point returns the coordinates of row i as a slice aliasing the backing
// array. Callers must not modify it.
func (ds *Dataset) Point(i int) []float32 {
	return ds.Vals[i*ds.Dims : (i+1)*ds.Dims]
}

// Value returns point i's coordinate on dimension j.
func (ds *Dataset) Value(i, j int) float32 {
	return ds.Vals[i*ds.Dims+j]
}

// Subset returns a new dataset containing the given rows (by row index),
// preserving their external ids. The coordinate data is copied so the
// subset is compact and cache-friendly, matching the paper's use of the
// extended skyline as a reduced input.
func (ds *Dataset) Subset(rows []int) *Dataset {
	d := ds.Dims
	vals := make([]float32, len(rows)*d)
	ids := make([]int32, len(rows))
	for k, r := range rows {
		copy(vals[k*d:(k+1)*d], ds.Point(r))
		ids[k] = ds.IDs[r]
	}
	return &Dataset{Dims: d, N: len(rows), Vals: vals, IDs: ids}
}

// Clone returns a deep copy.
func (ds *Dataset) Clone() *Dataset {
	vals := make([]float32, len(ds.Vals))
	copy(vals, ds.Vals)
	ids := make([]int32, len(ds.IDs))
	copy(ids, ds.IDs)
	return &Dataset{Dims: ds.Dims, N: ds.N, Vals: vals, IDs: ids}
}

// Write emits the dataset in the whitespace-separated text format used by
// the standard skyline benchmark generator: one point per line.
func (ds *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.N; i++ {
		p := ds.Point(i)
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format produced by Write: one point per line,
// whitespace-separated values. Blank lines and lines starting with '#' are
// skipped. All points must have the same dimensionality.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var vals []float32
	d := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if d == 0 {
			d = len(fields)
			if d > mask.MaxDims {
				return nil, fmt.Errorf("data: line %d: %d dimensions exceeds max %d", line, d, mask.MaxDims)
			}
		} else if len(fields) != d {
			return nil, fmt.Errorf("data: line %d: %d values, want %d", line, len(fields), d)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %v", line, err)
			}
			vals = append(vals, float32(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == 0 {
		return nil, fmt.Errorf("data: empty input")
	}
	return New(d, vals), nil
}
