package data

import (
	"sort"
	"sync"
)

// DefaultBlockSize is the lane count of one SoA block. 256 lanes keep a
// block's per-dimension column in four cache lines while amortising the
// per-block word-sweep setup; callers with tiny windows (hybrid groups) use
// smaller blocks.
const DefaultBlockSize = 256

// Block is a structure-of-arrays view of up to BlockSize points projected
// onto K dimensions: column j holds the j-th projected coordinate of every
// lane, so a dominance sweep against one query point walks each column
// sequentially. This is the CPU mirror of the paper's §6.1 coalesced layout
// argument — the row-major Dataset stays the storage format, a Block is the
// comparison format.
type Block struct {
	// N is the number of occupied lanes.
	N int
	// Cols[j][lane] is the projected coordinate of the lane's point on the
	// j-th dimension of the projection (not the original dimension index).
	Cols [][]float32
	// Rows[lane] is the caller-defined identity of the lane's point
	// (a dataset row, a candidate index — the kernels never interpret it).
	Rows []int32
	// Sums[lane] is the lane's δ-sum (float32 L1 norm over the projected
	// dimensions), the sort key of stop-point filtering.
	Sums []float32
	// Alive has bit lane set iff the lane is occupied and not killed; the
	// kernels mask their verdict words with it.
	Alive []uint64

	buf []float32 // backing array carved into Cols
}

// MinSum returns the smallest δ-sum of any lane ever appended to the block.
// Blocks are filled in ascending sum order by SortedBlocksOf, so this is
// Sums[0]; killing lanes never raises it, which keeps the stop-point bound
// conservative (sound) after evictions.
func (b *Block) MinSum() float32 { return b.Sums[0] }

// Kill marks a lane dead. The lane's data stays in place; only the Alive
// mask changes, so concurrent readers of Cols are unaffected.
func (b *Block) Kill(lane int) {
	b.Alive[lane>>6] &^= 1 << uint(lane&63)
}

// IsAlive reports whether a lane is occupied and not killed.
func (b *Block) IsAlive(lane int) bool {
	return b.Alive[lane>>6]&(1<<uint(lane&63)) != 0
}

// prepare (re)shapes the block for k projected dimensions and bs lanes,
// reusing the backing buffer when large enough.
func (b *Block) prepare(k, bs int) {
	if cap(b.buf) < k*bs {
		b.buf = make([]float32, k*bs)
	}
	if cap(b.Cols) < k {
		b.Cols = make([][]float32, 0, k)
	}
	b.Cols = b.Cols[:0]
	for j := 0; j < k; j++ {
		b.Cols = append(b.Cols, b.buf[j*bs:(j+1)*bs])
	}
	if cap(b.Rows) < bs {
		b.Rows = make([]int32, bs)
		b.Sums = make([]float32, bs)
	}
	b.Rows = b.Rows[:bs]
	b.Sums = b.Sums[:bs]
	words := (bs + 63) / 64
	if cap(b.Alive) < words {
		b.Alive = make([]uint64, words)
	}
	b.Alive = b.Alive[:words]
	for i := range b.Alive {
		b.Alive[i] = 0
	}
	b.N = 0
}

// BlockSet is an appendable sequence of Blocks over one projection. For
// stop-point filtering the caller must append points in non-decreasing Sums
// order; the kernels then stop scanning at the first block whose MinSum
// exceeds the query's sum.
type BlockSet struct {
	// K is the projection width (number of dimensions per lane).
	K int
	// BlockSize is the lane capacity of each block.
	BlockSize int
	// Blocks are the filled blocks, in append order.
	Blocks []*Block

	spare []*Block // recycled blocks ready to activate
	n     int
}

// NewBlockSet returns an empty, non-pooled block set.
func NewBlockSet(k, blockSize int) *BlockSet {
	s := &BlockSet{}
	s.reset(k, blockSize)
	return s
}

// Len returns the number of appended lanes (killed lanes included).
func (s *BlockSet) Len() int { return s.n }

func (s *BlockSet) reset(k, blockSize int) {
	if blockSize < 64 {
		blockSize = 64
	}
	// A block's buffer is carved per (k, blockSize); a shape change just
	// re-carves it in prepare, so spares survive reconfiguration.
	s.spare = append(s.spare, s.Blocks...)
	s.Blocks = s.Blocks[:0]
	s.K, s.BlockSize = k, blockSize
	s.n = 0
}

// Append adds one point: its projected coordinates (len ≥ K; extra entries
// ignored), its caller-defined row identity, and its δ-sum sort key.
func (s *BlockSet) Append(coords []float32, row int32, sum float32) {
	var b *Block
	if m := len(s.Blocks); m > 0 && s.Blocks[m-1].N < s.BlockSize {
		b = s.Blocks[m-1]
	} else {
		if m := len(s.spare); m > 0 {
			b = s.spare[m-1]
			s.spare = s.spare[:m-1]
		} else {
			b = &Block{}
		}
		b.prepare(s.K, s.BlockSize)
		s.Blocks = append(s.Blocks, b)
	}
	lane := b.N
	for j := 0; j < s.K; j++ {
		b.Cols[j][lane] = coords[j]
	}
	b.Rows[lane] = row
	b.Sums[lane] = sum
	b.Alive[lane>>6] |= 1 << uint(lane&63)
	b.N++
	s.n++
}

var blockSetPool = sync.Pool{New: func() any { return &BlockSet{} }}

// GetBlockSet returns an empty block set from the scratch pool, shaped for
// k projected dimensions and the given block size.
func GetBlockSet(k, blockSize int) *BlockSet {
	s := blockSetPool.Get().(*BlockSet)
	s.reset(k, blockSize)
	return s
}

// PutBlockSet returns a block set to the scratch pool. The set must no
// longer be referenced by the caller.
func PutBlockSet(s *BlockSet) {
	if s != nil {
		blockSetPool.Put(s)
	}
}

// ProjectInto copies p's coordinates on dims into dst[:len(dims)].
func ProjectInto(dst, p []float32, dims []int) {
	for idx, j := range dims {
		dst[idx] = p[j]
	}
}

// SumOver returns the float32 L1 norm of p over dims, accumulated in dims
// order. It is the monotone stop-point key: float32 addition of the same
// dimension sequence is monotone in each addend, so q ≤ p componentwise on
// dims implies SumOver(q, dims) ≤ SumOver(p, dims) — a dominator can never
// sort after the point it dominates.
func SumOver(p []float32, dims []int) float32 {
	var s float32
	for _, j := range dims {
		s += p[j]
	}
	return s
}

// SortedBlocksOf builds a pooled block set over the given dataset rows,
// projected onto dims and appended in ascending (δ-sum, row) order — the
// precondition of stop-point filtering. The caller owns the result and must
// return it with PutBlockSet.
func SortedBlocksOf(ds *Dataset, rows []int32, dims []int, blockSize int) *BlockSet {
	n := len(rows)
	ord := make([]int32, n)
	sums := make([]float32, n)
	for i, r := range rows {
		ord[i] = int32(i)
		sums[i] = SumOver(ds.Point(int(r)), dims)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sums[ia] != sums[ib] {
			return sums[ia] < sums[ib]
		}
		return rows[ia] < rows[ib]
	})
	s := GetBlockSet(len(dims), blockSize)
	pq := make([]float32, len(dims))
	for _, i := range ord {
		r := rows[i]
		ProjectInto(pq, ds.Point(int(r)), dims)
		s.Append(pq, r, sums[i])
	}
	return s
}
