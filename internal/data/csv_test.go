package data

import (
	"reflect"
	"strings"
	"testing"

	"skycube/internal/mask"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1.5,2,3\n4,5.25,6\n"
	ds, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 2 || ds.Dims != 3 {
		t.Fatalf("shape %dx%d", ds.N, ds.Dims)
	}
	if ds.Value(1, 1) != 5.25 {
		t.Errorf("value = %v", ds.Value(1, 1))
	}
}

func TestReadCSVHeaderAndColumns(t *testing.T) {
	in := "name,price,rating,weight\nx,10,4.5,2\ny,20,3.0,1\n"
	ds, err := ReadCSV(strings.NewReader(in), CSVOptions{Header: true, Columns: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 2 || ds.Dims != 2 {
		t.Fatalf("shape %dx%d", ds.N, ds.Dims)
	}
	if ds.Value(0, 0) != 10 || ds.Value(1, 1) != 1 {
		t.Errorf("values wrong: %v", ds.Vals)
	}
}

func TestReadCSVSeparator(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1;2\n3;4\n"), CSVOptions{Comma: ';'})
	if err != nil || ds.N != 2 {
		t.Fatalf("semicolon CSV: %v", err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]CSVOptions{
		"":      {},
		"a,b\n": {},
		"1,2\n": {Columns: []int{5}},
		"h\n":   {Header: true},
	}
	for in, opt := range cases {
		if _, err := ReadCSV(strings.NewReader(in), opt); err == nil {
			t.Errorf("input %q should error", in)
		}
	}
}

func TestNormalizeRangesAndDirections(t *testing.T) {
	ds := FromRows([][]float32{
		{10, 100, 7},
		{20, 300, 7},
		{30, 200, 7},
	})
	norm, err := Normalize(ds, []Direction{LowerBetter, HigherBetter, LowerBetter})
	if err != nil {
		t.Fatal(err)
	}
	// Dim 0: min-max into [0,1].
	if norm.Value(0, 0) != 0 || norm.Value(2, 0) != 1 || norm.Value(1, 0) != 0.5 {
		t.Errorf("dim 0: %v %v %v", norm.Value(0, 0), norm.Value(1, 0), norm.Value(2, 0))
	}
	// Dim 1 higher-better: 300 (best) → 0, 100 (worst) → 1.
	if norm.Value(1, 1) != 0 || norm.Value(0, 1) != 1 || norm.Value(2, 1) != 0.5 {
		t.Errorf("dim 1: %v %v %v", norm.Value(0, 1), norm.Value(1, 1), norm.Value(2, 1))
	}
	// Constant dim → all zero.
	for i := 0; i < 3; i++ {
		if norm.Value(i, 2) != 0 {
			t.Errorf("constant dim should map to 0")
		}
	}
}

// dominatesIn is a local Definition-1 oracle: internal/dom now imports this
// package (the block kernels operate on data.Block), so the test cannot.
func dominatesIn(p, q []float32, delta mask.Mask) bool {
	strict := false
	for j := range p {
		if delta&(1<<uint(j)) == 0 {
			continue
		}
		if p[j] > q[j] {
			return false
		}
		if p[j] < q[j] {
			strict = true
		}
	}
	return strict
}

func TestNormalizePreservesDominance(t *testing.T) {
	ds := FromRows([][]float32{
		{3, 50}, {1, 80}, {2, 20}, {3, 80},
	})
	// Orient dim 1 as higher-better; after normalisation, dominance in the
	// oriented space must match raw comparisons with the direction applied.
	norm, err := Normalize(ds, []Direction{LowerBetter, HigherBetter})
	if err != nil {
		t.Fatal(err)
	}
	oriented := FromRows([][]float32{
		{3, -50}, {1, -80}, {2, -20}, {3, -80},
	})
	for p := 0; p < ds.N; p++ {
		for q := 0; q < ds.N; q++ {
			if p == q {
				continue
			}
			for _, delta := range mask.Subspaces(2) {
				a := dominatesIn(norm.Point(p), norm.Point(q), delta)
				b := dominatesIn(oriented.Point(p), oriented.Point(q), delta)
				if a != b {
					t.Fatalf("dominance changed: p=%d q=%d δ=%b", p, q, delta)
				}
			}
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	ds := FromRows([][]float32{{1, 2}})
	if _, err := Normalize(ds, []Direction{LowerBetter}); err == nil {
		t.Error("direction count mismatch should error")
	}
}

func TestNormalizeKeepsIDs(t *testing.T) {
	ds := FromRows([][]float32{{1, 2}, {3, 4}}).Subset([]int{1})
	norm, err := Normalize(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm.IDs, []int32{1}) {
		t.Errorf("ids = %v", norm.IDs)
	}
}
