package data

import (
	"math"
	"reflect"
	"testing"
)

func seqDataset(n, d int) *Dataset {
	vals := make([]float32, n*d)
	for i := range vals {
		vals[i] = float32(i)
	}
	return New(d, vals)
}

func TestPartitionRoundRobin(t *testing.T) {
	ds := seqDataset(10, 2)
	shards, err := Partition(ds, 3, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := [][]int32{{0, 3, 6, 9}, {1, 4, 7}, {2, 5, 8}}
	for s, sh := range shards {
		if !reflect.DeepEqual(sh.IDs, wantIDs[s]) {
			t.Errorf("shard %d ids = %v, want %v", s, sh.IDs, wantIDs[s])
		}
		for r := 0; r < sh.N; r++ {
			global := int(sh.IDs[r])
			if !reflect.DeepEqual(sh.Point(r), ds.Point(global)) {
				t.Errorf("shard %d row %d coordinates diverge from global row %d", s, r, global)
			}
			// The arithmetic id mapping shard nodes use: base s, stride k.
			if global != s+r*3 {
				t.Errorf("shard %d row %d has global id %d, want %d", s, r, global, s+r*3)
			}
		}
	}
}

func TestPartitionRange(t *testing.T) {
	ds := seqDataset(10, 2)
	shards, err := Partition(ds, 3, Range)
	if err != nil {
		t.Fatal(err)
	}
	off := RangeOffsets(10, 3)
	if !reflect.DeepEqual(off, []int{0, 4, 7, 10}) {
		t.Fatalf("offsets = %v", off)
	}
	for s, sh := range shards {
		if sh.N != off[s+1]-off[s] {
			t.Errorf("shard %d has %d rows, want %d", s, sh.N, off[s+1]-off[s])
		}
		for r := 0; r < sh.N; r++ {
			if int(sh.IDs[r]) != off[s]+r {
				t.Errorf("shard %d row %d id = %d, want %d", s, r, sh.IDs[r], off[s]+r)
			}
		}
	}
}

func TestPartitionCoversEveryRowOnce(t *testing.T) {
	ds := seqDataset(23, 3)
	for _, mode := range []PartitionMode{RoundRobin, Range} {
		for k := 1; k <= 5; k++ {
			shards, err := Partition(ds, k, mode)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int32]bool{}
			for _, sh := range shards {
				for _, id := range sh.IDs {
					if seen[id] {
						t.Fatalf("%v k=%d: id %d appears twice", mode, k, id)
					}
					seen[id] = true
				}
			}
			if len(seen) != ds.N {
				t.Fatalf("%v k=%d: %d ids covered, want %d", mode, k, len(seen), ds.N)
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	ds := seqDataset(3, 2)
	if _, err := Partition(ds, 0, RoundRobin); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(ds, 4, RoundRobin); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Partition(ds, 2, PartitionMode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite(seqDataset(4, 3)); err != nil {
		t.Errorf("finite dataset rejected: %v", err)
	}
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		ds := seqDataset(4, 3)
		ds.Vals[7] = bad // point 2, dimension 1
		err := CheckFinite(ds)
		if err == nil {
			t.Fatalf("value %v accepted", bad)
		}
	}
	if err := CheckFiniteRow([]float32{1, float32(math.NaN())}); err == nil {
		t.Error("NaN row accepted")
	}
	if err := CheckFiniteRow([]float32{1, 2}); err != nil {
		t.Errorf("finite row rejected: %v", err)
	}
}
