package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	ds := New(3, []float32{1, 2, 3, 4, 5, 6})
	if ds.N != 2 || ds.Dims != 3 {
		t.Fatalf("N=%d Dims=%d, want 2, 3", ds.N, ds.Dims)
	}
	if ds.Value(1, 2) != 6 {
		t.Errorf("Value(1,2) = %v, want 6", ds.Value(1, 2))
	}
	p := ds.Point(0)
	if len(p) != 3 || p[0] != 1 {
		t.Errorf("Point(0) = %v", p)
	}
	if ds.IDs[0] != 0 || ds.IDs[1] != 1 {
		t.Errorf("identity ids wrong: %v", ds.IDs)
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("misaligned", func() { New(3, []float32{1, 2, 3, 4}) })
	mustPanic("zero dims", func() { New(0, nil) })
	mustPanic("too many dims", func() { New(33, make([]float32, 33)) })
	mustPanic("ragged rows", func() { FromRows([][]float32{{1, 2}, {3}}) })
	mustPanic("empty rows", func() { FromRows(nil) })
}

func TestSubsetKeepsIDs(t *testing.T) {
	ds := New(2, []float32{0, 0, 1, 1, 2, 2, 3, 3})
	sub := ds.Subset([]int{3, 1})
	if sub.N != 2 {
		t.Fatalf("subset N = %d", sub.N)
	}
	if sub.IDs[0] != 3 || sub.IDs[1] != 1 {
		t.Errorf("subset ids = %v, want [3 1]", sub.IDs)
	}
	if sub.Value(0, 0) != 3 || sub.Value(1, 1) != 1 {
		t.Errorf("subset values wrong")
	}
	// Nested subsets must keep referring to the original ids.
	sub2 := sub.Subset([]int{1})
	if sub2.IDs[0] != 1 {
		t.Errorf("nested subset id = %d, want 1", sub2.IDs[0])
	}
}

func TestCloneIsDeep(t *testing.T) {
	ds := New(2, []float32{1, 2, 3, 4})
	c := ds.Clone()
	c.Vals[0] = 99
	c.IDs[0] = 42
	if ds.Vals[0] != 1 || ds.IDs[0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := New(3, []float32{0.25, 1.5, 3, 0.125, 2.75, 4})
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ds.N || got.Dims != ds.Dims {
		t.Fatalf("round trip shape: %dx%d, want %dx%d", got.N, got.Dims, ds.N, ds.Dims)
	}
	for i := range ds.Vals {
		if got.Vals[i] != ds.Vals[i] {
			t.Errorf("val[%d] = %v, want %v", i, got.Vals[i], ds.Vals[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 2\n3 4\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 2 || ds.Dims != 2 {
		t.Fatalf("N=%d Dims=%d", ds.N, ds.Dims)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Read(strings.NewReader("1 2\n3\n")); err == nil {
		t.Error("ragged input should error")
	}
	if _, err := Read(strings.NewReader("1 x\n")); err == nil {
		t.Error("non-numeric input should error")
	}
}
