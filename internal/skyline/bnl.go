package skyline

import (
	"sort"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// bnlFilter is the window-based block-nested-loop skyline (Börzsönyi et
// al.): each point is compared against the current window of undominated
// candidates; dominated points are dropped, and points dominated by a new
// arrival are evicted. It is the correctness reference and the recursion
// leaf of the pivot algorithm.
func bnlFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	if dom.BlocksEnabled() {
		if len(rows) >= blockMinRows && len(mask.Dims(delta)) >= blockMinDims {
			return bnlBlockFilter(ds, rows, delta, strict)
		}
		scalarFallback()
	}
	window := make([]int32, 0, 16)
	for _, p := range rows {
		pp := ds.Point(int(p))
		dead := false
		w := 0
		for _, q := range window {
			r := dom.Compare(ds.Point(int(q)), pp)
			if kills(r, delta, strict) {
				dead = true
				break
			}
			// Keep q unless p kills it.
			rq := dom.Rel{Lt: invertLt(r, delta), Eq: r.Eq}
			if !kills(rq, delta, strict) {
				window[w] = q
				w++
			}
		}
		if dead {
			continue
		}
		window = window[:w]
		window = append(window, p)
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	return window
}

// kills reports whether the relationship r = Compare(q, p) removes p under
// the mode: strict removes on q ≺≺_δ p, otherwise on q ≺_δ p.
func kills(r dom.Rel, delta mask.Mask, strict bool) bool {
	if strict {
		return dom.RelStrictlyDominates(r, delta)
	}
	return dom.RelDominates(r, delta)
}

// invertLt derives B_{p<q} from Compare(q, p) restricted to δ: p < q
// exactly where q is neither less nor equal.
func invertLt(r dom.Rel, delta mask.Mask) mask.Mask {
	return delta &^ (r.Lt | r.Eq)
}
