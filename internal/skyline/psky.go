package skyline

import (
	"sort"
	"sync"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// pskyFilter is PSkyline (Park, Kim, Park, Kim, Im — ICDE 2009; paper §3):
// the naive divide-and-conquer multicore skyline. The input is split
// horizontally across threads; each thread computes a local skyline
// sequentially; the local results are then merged pairwise in a reduction
// tree. It serves as the alternative SDSC hook, demonstrating that the
// templates accept any parallel skyline algorithm (§4.2.2), and as the
// baseline the point-based methods are measured against.
func pskyFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, threads int) []int32 {
	if threads < 1 {
		threads = 1
	}
	if threads == 1 || len(rows) < 2*threads {
		return bnlFilter(ds, rows, delta, strict)
	}

	// Map: local skylines of equal slices.
	parts := make([][]int32, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		lo := w * len(rows) / threads
		hi := (w + 1) * len(rows) / threads
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = bnlFilter(ds, rows[lo:hi], delta, strict)
		}(w, lo, hi)
	}
	wg.Wait()

	// Reduce: pairwise skymerge until one list remains. Each round merges
	// disjoint pairs in parallel.
	for len(parts) > 1 {
		next := make([][]int32, (len(parts)+1)/2)
		wg.Add(len(parts) / 2)
		for i := 0; i+1 < len(parts); i += 2 {
			go func(i int) {
				defer wg.Done()
				next[i/2] = skyMerge(ds, parts[i], parts[i+1], delta, strict)
			}(i)
		}
		if len(parts)%2 == 1 {
			next[len(next)-1] = parts[len(parts)-1]
		}
		wg.Wait()
		parts = next
	}
	out := parts[0]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// skyMerge merges two local skylines: because each side is already
// internally undominated and dominance is transitive, the skyline of the
// union is exactly the members of each side not dominated by the other.
func skyMerge(ds *data.Dataset, a, b []int32, delta mask.Mask, strict bool) []int32 {
	if dom.BlocksEnabled() {
		if len(a)+len(b) >= blockMinRows {
			return skyMergeBlocks(ds, a, b, delta, strict)
		}
		scalarFallback()
	}
	out := make([]int32, 0, len(a)+len(b))
	for _, p := range a {
		if !killedByAny(ds, b, p, delta, strict) {
			out = append(out, p)
		}
	}
	for _, p := range b {
		if !killedByAny(ds, a, p, delta, strict) {
			out = append(out, p)
		}
	}
	return out
}

func killedByAny(ds *data.Dataset, qs []int32, p int32, delta mask.Mask, strict bool) bool {
	pp := ds.Point(int(p))
	for _, q := range qs {
		if kills(dom.Compare(ds.Point(int(q)), pp), delta, strict) {
			return true
		}
	}
	return false
}
