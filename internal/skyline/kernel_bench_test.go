package skyline

import (
	"math/rand"
	"testing"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// benchFilterDataset builds a correlated-ish uniform dataset large enough
// that bnlFilter takes the block path (n ≫ blockMinRows).
func benchFilterDataset(n, d int) (*data.Dataset, []int32, mask.Mask) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float32, n)
	for i := range rows {
		p := make([]float32, d)
		for j := range p {
			p[j] = rng.Float32()
		}
		rows[i] = p
	}
	ds := data.FromRows(rows)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return ds, idx, mask.Full(d)
}

// benchBNL runs the window filter end to end under the given kernel config,
// restoring the default afterwards.
func benchBNL(b *testing.B, d int, cfg dom.KernelConfig) {
	prev := dom.Kernels()
	dom.SetKernelConfig(cfg)
	defer dom.SetKernelConfig(prev)
	ds, idx, delta := benchFilterDataset(4096, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := bnlFilter(ds, idx, delta, false)
		if len(out) == 0 {
			b.Fatal("empty skyline")
		}
	}
}

// BenchmarkBNLFilterBlocks is the build-path counterpart of the dom
// microbenchmarks: the whole BNL window filter with the block kernels (and
// stop points) on. Widths start at blockMinDims — below it the filter is
// structurally scalar.
func BenchmarkBNLFilterBlocks(b *testing.B) {
	b.Run("d=6", func(b *testing.B) { benchBNL(b, 6, dom.KernelConfig{}) })
	b.Run("d=8", func(b *testing.B) { benchBNL(b, 8, dom.KernelConfig{}) })
}

// BenchmarkBNLFilterScalar is the same filter forced onto the scalar
// per-pair path — the ablation the block speedup is measured against.
func BenchmarkBNLFilterScalar(b *testing.B) {
	b.Run("d=6", func(b *testing.B) { benchBNL(b, 6, dom.KernelConfig{DisableBlocks: true}) })
	b.Run("d=8", func(b *testing.B) { benchBNL(b, 8, dom.KernelConfig{DisableBlocks: true}) })
}
