package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
)

// Table 1 flights with dimension 0 = Arrival, 1 = Duration, 2 = Price.
func flightData() *data.Dataset {
	return data.FromRows([][]float32{
		{12.20, 17, 120}, // f0
		{9.00, 12, 148},  // f1
		{8.20, 13, 169},  // f2
		{21.25, 3, 186},  // f3
		{21.25, 5, 196},  // f4
	})
}

// Figure 1a ground truth: subspace → skyline ids.
var flightSkylines = map[mask.Mask][]int32{
	0b100: {0},          // S4 (Price): f0
	0b010: {3},          // S2 (Duration): f3
	0b001: {2},          // S1 (Arrival): f2
	0b101: {0, 1, 2},    // S5
	0b110: {0, 1, 3},    // S6
	0b011: {1, 2, 3},    // S3
	0b111: {0, 1, 2, 3}, // S7
}

func TestFlightSkylinesAllAlgorithms(t *testing.T) {
	ds := flightData()
	for _, algo := range []Algo{AlgoBNL, AlgoBSkyTree, AlgoHybrid} {
		for delta, want := range flightSkylines {
			got := Compute(ds, nil, delta, algo, 2)
			if !reflect.DeepEqual(got.Skyline, want) {
				t.Errorf("%v: S_%d = %v, want %v", algo, delta, got.Skyline, want)
			}
		}
	}
}

func TestFlightExtendedSkyline(t *testing.T) {
	// §2.2: S⁺_3 additionally includes f4 (ties f3 on arrival time).
	ds := flightData()
	for _, algo := range []Algo{AlgoBNL, AlgoBSkyTree, AlgoHybrid} {
		res := Compute(ds, nil, 0b011, algo, 1)
		if !reflect.DeepEqual(res.ExtOnly, []int32{4}) {
			t.Errorf("%v: S⁺_3 \\ S_3 = %v, want [4]", algo, res.ExtOnly)
		}
		ext := res.Extended()
		if !reflect.DeepEqual(ext, []int32{1, 2, 3, 4}) {
			t.Errorf("%v: S⁺_3 = %v, want [1 2 3 4]", algo, ext)
		}
	}
}

func TestAlgorithmsAgreeOnRandomData(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.Anticorrelated} {
		for _, d := range []int{2, 4, 6} {
			ds := gen.Synthetic(dist, 600, d, int64(d)*17)
			rng := rand.New(rand.NewSource(int64(d)))
			deltas := []mask.Mask{mask.Full(d), 1}
			for i := 0; i < 4; i++ {
				deltas = append(deltas, mask.Mask(rng.Intn(1<<d-1)+1))
			}
			for _, delta := range deltas {
				ref := Compute(ds, nil, delta, AlgoBNL, 1)
				for _, algo := range []Algo{AlgoBSkyTree, AlgoHybrid} {
					got := Compute(ds, nil, delta, algo, 3)
					if !reflect.DeepEqual(got.Skyline, ref.Skyline) {
						t.Errorf("%v/%v d=%d δ=%b: skyline %v != BNL %v",
							dist, algo, d, delta, got.Skyline, ref.Skyline)
					}
					if !reflect.DeepEqual(got.ExtOnly, ref.ExtOnly) {
						t.Errorf("%v/%v d=%d δ=%b: extOnly %v != BNL %v",
							dist, algo, d, delta, got.ExtOnly, ref.ExtOnly)
					}
				}
			}
		}
	}
}

func TestHybridLargerInputAgrees(t *testing.T) {
	// Force multiple tiles (n >> α) and multiple threads.
	ds := gen.Synthetic(gen.Anticorrelated, 5000, 5, 99)
	delta := mask.Full(5)
	ref := Compute(ds, nil, delta, AlgoBSkyTree, 1)
	got := Compute(ds, nil, delta, AlgoHybrid, 4)
	if !reflect.DeepEqual(got.Skyline, ref.Skyline) {
		t.Errorf("hybrid skyline (%d) != bskytree (%d)", len(got.Skyline), len(ref.Skyline))
	}
	if !reflect.DeepEqual(got.ExtOnly, ref.ExtOnly) {
		t.Errorf("hybrid extOnly (%d) != bskytree (%d)", len(got.ExtOnly), len(ref.ExtOnly))
	}
}

func TestDuplicatePointsStayInSkyline(t *testing.T) {
	// Identical points do not dominate one another (Definition 1 requires a
	// differing dimension), so duplicates of a skyline point all survive.
	ds := data.FromRows([][]float32{
		{0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9},
	})
	for _, algo := range []Algo{AlgoBNL, AlgoBSkyTree, AlgoHybrid} {
		res := Compute(ds, nil, 0b11, algo, 1)
		if !reflect.DeepEqual(res.Skyline, []int32{0, 1}) {
			t.Errorf("%v: skyline = %v, want [0 1]", algo, res.Skyline)
		}
	}
}

func TestAllDuplicatesDegenerate(t *testing.T) {
	// Pathological input for pivot partitioning: every point identical.
	rows := make([][]float32, 200)
	for i := range rows {
		rows[i] = []float32{0.3, 0.7, 0.1}
	}
	ds := data.FromRows(rows)
	for _, algo := range []Algo{AlgoBNL, AlgoBSkyTree, AlgoHybrid} {
		res := Compute(ds, nil, 0b111, algo, 2)
		if len(res.Skyline) != 200 {
			t.Errorf("%v: %d of 200 duplicates in skyline", algo, len(res.Skyline))
		}
		if len(res.ExtOnly) != 0 {
			t.Errorf("%v: %d duplicates marked extended-only", algo, len(res.ExtOnly))
		}
	}
}

func TestSkylineSubsetOfExtended(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 800, 6, 5)
	for _, delta := range []mask.Mask{1, 0b101, mask.Full(6)} {
		res := Compute(ds, nil, delta, AlgoBSkyTree, 1)
		ext := make(map[int32]bool)
		for _, r := range res.Extended() {
			ext[r] = true
		}
		for _, r := range res.Skyline {
			if !ext[r] {
				t.Fatalf("skyline row %d missing from extended skyline", r)
			}
		}
	}
}

func TestExtendedContainment(t *testing.T) {
	// The key property the top-down traversal relies on (§2.2): S⁺ of δ
	// contains S⁺ of every subspace δ′ ⊆ δ.
	ds := gen.Synthetic(gen.Independent, 400, 5, 21)
	d := 5
	full := mask.Full(d)
	extFull := make(map[int32]bool)
	for _, r := range ExtendedSkyline(ds, nil, full, AlgoBNL, 1) {
		extFull[r] = true
	}
	for _, delta := range mask.Subspaces(d) {
		for _, r := range ExtendedSkyline(ds, nil, delta, AlgoBNL, 1) {
			if !extFull[r] {
				t.Fatalf("S⁺_%b row %d not in S⁺_full", delta, r)
			}
		}
	}
}

func TestComputeOnRowSubset(t *testing.T) {
	// Computing within a row subset must equal computing on the subset
	// dataset — the reduced-input pattern of the lattice traversal.
	ds := gen.Synthetic(gen.Anticorrelated, 500, 4, 33)
	delta := mask.Mask(0b0111)
	ext := ExtendedSkyline(ds, nil, mask.Full(4), AlgoBNL, 1)
	res := Compute(ds, ext, delta, AlgoBSkyTree, 1)

	intRows := make([]int, len(ext))
	for i, r := range ext {
		intRows[i] = int(r)
	}
	sub := ds.Subset(intRows)
	resSub := Compute(sub, nil, delta, AlgoBNL, 1)
	// Map subset rows back through IDs (identity here since gen ids are
	// identity and Subset preserves them).
	want := make([]int32, len(resSub.Skyline))
	for i, r := range resSub.Skyline {
		want[i] = sub.IDs[r]
	}
	if !reflect.DeepEqual(res.Skyline, want) {
		t.Errorf("subset rows: %v != subset dataset: %v", res.Skyline, want)
	}
}

func TestSingletonSubspace(t *testing.T) {
	// In a 1-d subspace the skyline is every point tied at the minimum.
	ds := data.FromRows([][]float32{{3, 9}, {1, 5}, {1, 7}, {2, 1}})
	for _, algo := range []Algo{AlgoBNL, AlgoBSkyTree, AlgoHybrid} {
		res := Compute(ds, nil, 0b01, algo, 1)
		if !reflect.DeepEqual(res.Skyline, []int32{1, 2}) {
			t.Errorf("%v: S_1 = %v, want [1 2]", algo, res.Skyline)
		}
		// Extended skyline in 1-d equals the skyline (any tie is equality,
		// and equal values are never strictly dominated).
		if len(res.ExtOnly) != 0 {
			t.Errorf("%v: 1-d extOnly = %v, want empty", algo, res.ExtOnly)
		}
	}
}

func TestResultExtendedMerge(t *testing.T) {
	r := Result{Skyline: []int32{1, 4, 9}, ExtOnly: []int32{2, 7, 11}}
	want := []int32{1, 2, 4, 7, 9, 11}
	if got := r.Extended(); !reflect.DeepEqual(got, want) {
		t.Errorf("Extended() = %v, want %v", got, want)
	}
	if r.ExtendedSize() != 6 {
		t.Errorf("ExtendedSize = %d", r.ExtendedSize())
	}
}

func TestStatusAll(t *testing.T) {
	ds := flightData()
	st := StatusAll(ds, 0b011, AlgoBNL, 1)
	want := []Status{Dominated, InSkyline, InSkyline, InSkyline, ExtendedOnly}
	if !reflect.DeepEqual(st, want) {
		t.Errorf("StatusAll = %v, want %v", st, want)
	}
}

func TestAlgoStrings(t *testing.T) {
	if AlgoBNL.String() != "BNL" || AlgoBSkyTree.String() != "BSkyTree" || AlgoHybrid.String() != "Hybrid" {
		t.Error("algo labels wrong")
	}
	if Algo(9).String() != "?" {
		t.Error("unknown algo label")
	}
}
