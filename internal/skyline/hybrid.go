package skyline

import (
	"sort"
	"sync"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// hybridTileSize is α, the number of points processed per tile.
const hybridTileSize = 512

// hybridFilter is the multicore algorithm in the style of Hybrid (Chester,
// Šidlauskas, Assent, Bøgh — ICDE 2015; paper §5.1): a compact, fixed
// two-level, array-based tree of *global* median/quartile pivots replaces
// the recursive SkyTree, and the input is consumed in tiles so threads
// cooperate on one shared, read-mostly result structure.
//
// Points are ordered by their L1 norm over δ, which guarantees every
// (strict or non-strict) dominator of a point appears in an earlier tile or
// in the point's own tile; cross-tile work is the data-parallel hook.
func hybridFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, threads int) []int32 {
	if threads < 1 {
		threads = 1
	}
	if len(rows) <= hybridTileSize || threads == 1 && len(rows) <= 4*hybridTileSize {
		return pivotFilter(ds, rows, delta, strict)
	}
	dims := mask.Dims(delta)

	// Global two-level labels over only the relevant dimensions (§5.1:
	// partition on the subspace's dimensions when hooked into a cuboid).
	med, quart := subspacePivots(ds, rows, dims)
	n := len(rows)
	medM := make([]mask.Mask, n)
	quartM := make([]mask.Mask, n)
	sum := make([]float32, n)
	for k, p := range rows {
		pt := ds.Point(int(p))
		var m, q mask.Mask
		var s float32
		for idx, j := range dims {
			v := pt[j]
			s += v
			half := 1
			if v < med[idx] {
				m |= 1 << uint(j)
				half = 0
			}
			if v < quart[half][idx] {
				q |= 1 << uint(j)
			}
		}
		medM[k], quartM[k], sum[k] = m, q, s
	}

	// Sort by L1 norm ascending (ties by row for determinism).
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sum[ia] != sum[ib] {
			return sum[ia] < sum[ib]
		}
		return rows[ia] < rows[ib]
	})

	type group struct {
		med, quart mask.Mask
		members    []int32        // indices into rows (scalar path)
		bs         *data.BlockSet // sum-ordered SoA members (block path)
	}
	var groups []group
	groupIdx := make(map[uint64]int)
	survivors := make([]int32, 0, n/4)

	// Block path: group members live in small SoA blocks appended in tile
	// (= ascending δ-sum) order, so one kernel sweep replaces the scalar
	// member loop of phase A. Both paths test the same membership, so the
	// phase-A verdicts are identical.
	useBlocks := dom.BlocksEnabled()
	useStop := useBlocks && dom.StopPointsEnabled()

	alive := make([]bool, hybridTileSize)
	var wg sync.WaitGroup
	for tileStart := 0; tileStart < n; tileStart += hybridTileSize {
		tileEnd := tileStart + hybridTileSize
		if tileEnd > n {
			tileEnd = n
		}
		tile := ord[tileStart:tileEnd]

		// Phase A (parallel): prune tile points against the global result,
		// group by group, with label tests before any dominance test.
		work := func(lo, hi int) {
			defer wg.Done()
			var tally dom.KernelTally
			pq := make([]float32, len(dims))
			for t := lo; t < hi; t++ {
				k := tile[t]
				pp := ds.Point(int(rows[k]))
				if useBlocks {
					data.ProjectInto(pq, pp, dims)
				}
				mp, qp := medM[k], quartM[k]
				ok := true
			groupLoop:
				for gi := range groups {
					g := &groups[gi]
					// Group members are guaranteed strictly worse than the
					// point on `worse`; if that intersects δ they cannot
					// dominate it.
					worse := CompositeStrict2(mp, qp, g.med, g.quart)
					if worse&delta != 0 {
						continue
					}
					// Conversely, if the group is guaranteed strictly
					// better on all of δ, the point dies with no DT.
					better := CompositeStrict2(g.med, g.quart, mp, qp)
					if better&delta == delta {
						ok = false
						break
					}
					if useBlocks {
						if dom.BlocksAnyDominator(g.bs, pq, sum[k], strict, useStop, &tally) {
							ok = false
							break
						}
						continue
					}
					for _, m := range g.members {
						r := dom.Compare(ds.Point(int(rows[m])), pp)
						if kills(r, delta, strict) {
							ok = false
							break groupLoop
						}
					}
				}
				alive[t] = ok
			}
			tally.Flush()
		}
		tlen := len(tile)
		tn := threads
		if tn > tlen {
			tn = tlen
		}
		wg.Add(tn)
		for w := 0; w < tn; w++ {
			lo := w * tlen / tn
			hi := (w + 1) * tlen / tn
			go work(lo, hi)
		}
		wg.Wait()

		// Phase B (sequential): intra-tile filtering among survivors. The
		// L1 order makes earlier tile members the only possible intra-tile
		// dominators, but BNL handles any order regardless.
		tileRows := make([]int32, 0, tlen)
		backref := make(map[int32]int32, tlen)
		for t := 0; t < tlen; t++ {
			if alive[t] {
				r := rows[tile[t]]
				backref[r] = tile[t]
				tileRows = append(tileRows, r)
			}
		}
		kept := bnlFilter(ds, tileRows, delta, strict)

		// Append survivors to their (med, quart) group.
		for _, r := range kept {
			k := backref[r]
			key := uint64(medM[k])<<32 | uint64(quartM[k])
			gi, exists := groupIdx[key]
			if !exists {
				gi = len(groups)
				groups = append(groups, group{med: medM[k], quart: quartM[k]})
				groupIdx[key] = gi
			}
			if !useBlocks {
				groups[gi].members = append(groups[gi].members, k)
			}
			survivors = append(survivors, r)
		}
		if useBlocks && len(kept) > 0 {
			// Block members must be appended in tile order: kept is
			// row-sorted, but the stop-point invariant needs each group's
			// lanes in non-decreasing δ-sum order across all tiles.
			keptSet := make(map[int32]struct{}, len(kept))
			for _, r := range kept {
				keptSet[r] = struct{}{}
			}
			pq := make([]float32, len(dims))
			for t := 0; t < tlen; t++ {
				k := tile[t]
				r := rows[k]
				if _, ok := keptSet[r]; !ok {
					continue
				}
				g := &groups[groupIdx[uint64(medM[k])<<32|uint64(quartM[k])]]
				if g.bs == nil {
					g.bs = data.NewBlockSet(len(dims), 64)
				}
				data.ProjectInto(pq, ds.Point(int(r)), dims)
				g.bs.Append(pq, r, sum[k])
			}
		}
	}

	sort.Slice(survivors, func(a, b int) bool { return survivors[a] < survivors[b] })
	return survivors
}

// CompositeStrict2 is the two-level label comparison: the subspace on which
// any point labelled (medQ, quartQ) is guaranteed strictly better than any
// point labelled (medP, quartP). Exported for the probe-instrumented
// variants used in the hardware-counter experiments.
func CompositeStrict2(medQ, quartQ, medP, quartP mask.Mask) mask.Mask {
	delta := medQ &^ medP
	sameHalf := ^(medQ ^ medP)
	return delta | (quartQ&^quartP)&sameHalf
}

// subspacePivots computes per-dimension medians and half-relative quartiles
// over the given rows, restricted to dims.
func subspacePivots(ds *data.Dataset, rows []int32, dims []int) (med []float32, quart [2][]float32) {
	med = make([]float32, len(dims))
	quart[0] = make([]float32, len(dims))
	quart[1] = make([]float32, len(dims))
	col := make([]float32, len(rows))
	for idx, j := range dims {
		for i, p := range rows {
			col[i] = ds.Value(int(p), j)
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		n := len(col)
		med[idx] = col[n/2]
		quart[0][idx] = col[n/4]
		q3 := 3 * n / 4
		if q3 >= n {
			q3 = n - 1
		}
		quart[1][idx] = col[q3]
	}
	return med, quart
}
