package skyline

import (
	"sort"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// PivotStrategy selects how the pivot-partitioned algorithm picks its
// pivot per recursion (the axis on which BSkyTree, OSP and friends differ,
// paper §3).
type PivotStrategy int

const (
	// PivotMinL1 is BSkyTree's balanced pivot: the point with the smallest
	// range-normalised L1 distance from the origin. It cannot be strictly
	// dominated, and it balances the partition masks.
	PivotMinL1 PivotStrategy = iota
	// PivotFirst takes the first input point after removing those it
	// dominates — OSP-style "a skyline point", cheap but unbalanced.
	PivotFirst
	// PivotMedian builds a virtual pivot from per-dimension medians
	// (VMPSP-style). Virtual pivots partition but never kill points.
	PivotMedian
)

// pivotStrategy is the package-wide strategy used by AlgoBSkyTree; the
// ablation benchmarks swap it via PivotFilterWith.
var defaultPivotStrategy = PivotMinL1

// PivotFilterWith runs the pivot-partitioned filter under an explicit
// strategy, for ablation studies.
func PivotFilterWith(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, strategy PivotStrategy) []int32 {
	out := pivotRecWith(ds, rows, delta, strict, 0, strategy)
	sorted := make([]int32, len(out))
	copy(sorted, out)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted
}

// pivotFilter is the sequential point-based partitioning algorithm in the
// style of BSkyTree (Lee & Hwang; paper §3, App. B.2): pick a pivot that
// cannot be strictly dominated (the minimum range-normalised L1 point),
// partition the input by each point's B_{π≤p} mask, recurse per partition
// in ascending popcount order, and compare across partitions only when the
// mask test (Equation 1) is inconclusive.
//
// This is the per-cuboid engine of the QSkycube baseline; it uses a
// variable-depth recursive tree, which is exactly the pointer-chasing,
// cache-hungry structure whose parallel scalability the paper critiques.
func pivotFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	return PivotFilterWith(ds, rows, delta, strict, defaultPivotStrategy)
}

// pivotLeafSize is the input size below which recursion falls back to BNL.
const pivotLeafSize = 48

type bucket struct {
	m    mask.Mask // B_{π≤p} & δ shared by the partition
	rows []int32
}

func pivotRecWith(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, depth int, strategy PivotStrategy) []int32 {
	if len(rows) <= pivotLeafSize || depth > 64 {
		return bnlFilter(ds, rows, delta, strict)
	}
	var piv int32
	var pivPoint []float32
	var virtual []float32
	switch strategy {
	case PivotFirst:
		piv = rows[0]
		pivPoint = ds.Point(int(piv))
	case PivotMedian:
		piv = -1
		virtual = medianPivot(ds, rows, delta)
		pivPoint = virtual
	default:
		piv = selectPivot(ds, rows, delta)
		pivPoint = ds.Point(int(piv))
	}

	// Partition by mask against the pivot, dropping points the pivot kills.
	parts := make(map[mask.Mask]*bucket, 64)
	var order []*bucket
	progress := false
	for _, p := range rows {
		r := dom.Compare(pivPoint, ds.Point(int(p)))
		// A virtual pivot (piv < 0) is not a data point, so it must not
		// remove anything: only a real pivot kills.
		if piv >= 0 && p != piv && kills(r, delta, strict) {
			progress = true
			continue
		}
		m := r.Leq() & delta
		b := parts[m]
		if b == nil {
			b = &bucket{m: m}
			parts[m] = b
			order = append(order, b)
		}
		b.rows = append(b.rows, p)
	}
	if !progress && len(order) == 1 {
		// Degenerate input (e.g. all duplicates): partitioning cannot make
		// progress, so finish with the quadratic leaf algorithm.
		return bnlFilter(ds, rows, delta, strict)
	}

	// Ascending popcount: a partition's dominators lie only in partitions
	// whose mask is a submask of its own, which have strictly fewer bits.
	sort.Slice(order, func(a, b int) bool {
		ca, cb := mask.Count(order[a].m), mask.Count(order[b].m)
		if ca != cb {
			return ca < cb
		}
		return order[a].m < order[b].m
	})

	type resEntry struct {
		row int32
		m   mask.Mask
	}
	var result []resEntry
	for _, b := range order {
		local := pivotRecWith(ds, b.rows, delta, strict, depth+1, strategy)
		for _, p := range local {
			pp := ds.Point(int(p))
			dead := false
			for _, e := range result {
				// Mask test: e can only dominate p if e.m ⊆ b.m within δ
				// (Equation 1 with the shared pivot π).
				if e.m&^b.m&delta != 0 {
					continue
				}
				r := dom.Compare(ds.Point(int(e.row)), pp)
				if kills(r, delta, strict) {
					dead = true
					break
				}
			}
			if !dead {
				result = append(result, resEntry{row: p, m: b.m})
			}
		}
	}
	out := make([]int32, len(result))
	for i, e := range result {
		out[i] = e.row
	}
	return out
}

// medianPivot builds VMPSP's virtual pivot: the per-dimension median of
// the rows, restricted to δ (other dimensions are zero and never consulted
// because the partition masks are projected onto δ).
func medianPivot(ds *data.Dataset, rows []int32, delta mask.Mask) []float32 {
	piv := make([]float32, ds.Dims)
	col := make([]float32, len(rows))
	for _, j := range mask.Dims(delta) {
		for i, p := range rows {
			col[i] = ds.Value(int(p), j)
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		piv[j] = col[len(col)/2]
	}
	return piv
}

// selectPivot returns the row minimising the range-normalised L1 distance
// from the origin over the dimensions of δ (BSkyTree's balanced pivot).
// Such a point cannot be strictly dominated by any other input point, so it
// is always in S⁺_δ.
func selectPivot(ds *data.Dataset, rows []int32, delta mask.Mask) int32 {
	dims := mask.Dims(delta)
	lo := make([]float32, len(dims))
	hi := make([]float32, len(dims))
	for k := range dims {
		lo[k], hi[k] = ds.Value(int(rows[0]), dims[k]), ds.Value(int(rows[0]), dims[k])
	}
	for _, p := range rows[1:] {
		for k, j := range dims {
			v := ds.Value(int(p), j)
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	best := rows[0]
	bestScore := float64(1e30)
	for _, p := range rows {
		s := 0.0
		for k, j := range dims {
			den := hi[k] - lo[k]
			if den <= 0 {
				continue
			}
			s += float64((ds.Value(int(p), j) - lo[k]) / den)
		}
		if s < bestScore {
			bestScore = s
			best = p
		}
	}
	return best
}
