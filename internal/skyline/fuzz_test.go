package skyline

import (
	"encoding/binary"
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/mask"
)

// fuzzDataset decodes raw fuzz bytes into a small dataset: the first byte
// picks the dimensionality (2–5), every following pair of bytes is one
// coordinate in [0, 1]. The coarse 16-bit grid makes ties and duplicate
// points common — exactly the inputs where dominance semantics diverge if
// an algorithm gets the strict/non-strict distinction wrong.
func fuzzDataset(raw []byte) *data.Dataset {
	if len(raw) < 1 {
		return nil
	}
	d := 2 + int(raw[0])%4
	raw = raw[1:]
	n := len(raw) / (2 * d)
	if n < 1 {
		return nil
	}
	if n > 256 {
		n = 256
	}
	rows := make([][]float32, n)
	for i := 0; i < n; i++ {
		row := make([]float32, d)
		for j := 0; j < d; j++ {
			v := binary.LittleEndian.Uint16(raw[(i*d+j)*2:])
			row[j] = float32(v) / 65535
		}
		rows[i] = row
	}
	return data.FromRows(rows)
}

// FuzzSkylineEquivalence checks that the four skyline algorithms — the BNL
// reference, the pivot-partitioned BSkyTree, the tiled multicore Hybrid and
// the divide-and-conquer PSkyline — agree on the skyline and the extended
// skyline of arbitrary (tie-heavy) inputs, in the full space and in every
// subspace.
func FuzzSkylineEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0})
	f.Add([]byte{3, 0xff, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80,
		0x90, 0xa0, 0xb0, 0xc0, 0xd0, 0xe0, 0xf0, 0x00, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ds := fuzzDataset(raw)
		if ds == nil {
			t.Skip("too few bytes for a dataset")
		}
		algos := []Algo{AlgoBSkyTree, AlgoHybrid, AlgoPSkyline}
		for _, delta := range mask.Subspaces(ds.Dims) {
			ref := Compute(ds, nil, delta, AlgoBNL, 1)
			for _, algo := range algos {
				got := Compute(ds, nil, delta, algo, 2)
				if !reflect.DeepEqual(got.Skyline, ref.Skyline) {
					t.Fatalf("%v: skyline of δ=%0*b diverges from BNL\n got %v\nwant %v",
						algo, ds.Dims, delta, got.Skyline, ref.Skyline)
				}
				if !reflect.DeepEqual(got.ExtOnly, ref.ExtOnly) {
					t.Fatalf("%v: extended skyline of δ=%0*b diverges from BNL\n got %v\nwant %v",
						algo, ds.Dims, delta, got.ExtOnly, ref.ExtOnly)
				}
			}
		}
	})
}
