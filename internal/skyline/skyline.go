// Package skyline implements the subspace-skyline substrate the skycube
// templates hook in (paper §3, §5.1):
//
//   - BNL: the classic block-nested-loop algorithm, used as the reference
//     implementation and for small recursion leaves;
//   - BSkyTree: sequential point-based pivot partitioning (Lee & Hwang),
//     the per-cuboid engine of QSkycube;
//   - Hybrid: the tiled, two-level-tree multicore algorithm (Chester et
//     al., ICDE 2015), the hook of the STSC and SDSC CPU specialisations.
//
// Every algorithm computes, for a subspace δ, both the skyline S_δ and the
// extended skyline S⁺_δ (Definition 2): the extended skyline of a parent
// cuboid is the reduced input for its children in the top-down lattice
// traversal.
package skyline

import (
	"skycube/internal/data"
	"skycube/internal/mask"
)

// Algo selects a skyline implementation.
type Algo int

const (
	// AlgoBNL is the O(n²) reference block-nested-loop.
	AlgoBNL Algo = iota
	// AlgoBSkyTree is sequential pivot-based partitioning.
	AlgoBSkyTree
	// AlgoHybrid is the tiled multicore algorithm.
	AlgoHybrid
	// AlgoPSkyline is the naive divide-and-conquer multicore baseline.
	AlgoPSkyline
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoBNL:
		return "BNL"
	case AlgoBSkyTree:
		return "BSkyTree"
	case AlgoHybrid:
		return "Hybrid"
	case AlgoPSkyline:
		return "PSkyline"
	}
	return "?"
}

// Status classifies a point relative to a subspace δ.
type Status uint8

const (
	// Dominated points are strictly dominated in δ: in neither S_δ nor S⁺_δ.
	Dominated Status = iota
	// ExtendedOnly points are in S⁺_δ but not S_δ (dominated, with a tie on
	// some dimension of δ).
	ExtendedOnly
	// InSkyline points are in S_δ (hence also in S⁺_δ).
	InSkyline
)

// Result reports a subspace computation over an input dataset.
type Result struct {
	// Skyline holds the rows (indices into the input dataset) of S_δ, in
	// ascending row order.
	Skyline []int32
	// ExtOnly holds the rows of S⁺_δ \ S_δ, ascending.
	ExtOnly []int32
}

// ExtendedSize returns |S⁺_δ|.
func (r Result) ExtendedSize() int { return len(r.Skyline) + len(r.ExtOnly) }

// Extended returns all rows of S⁺_δ in ascending order.
func (r Result) Extended() []int32 {
	out := make([]int32, 0, r.ExtendedSize())
	i, j := 0, 0
	for i < len(r.Skyline) && j < len(r.ExtOnly) {
		if r.Skyline[i] < r.ExtOnly[j] {
			out = append(out, r.Skyline[i])
			i++
		} else {
			out = append(out, r.ExtOnly[j])
			j++
		}
	}
	out = append(out, r.Skyline[i:]...)
	out = append(out, r.ExtOnly[j:]...)
	return out
}

// Compute runs algorithm algo on the given rows of ds (all rows if rows is
// nil) in subspace δ, with the given thread count (only AlgoHybrid is
// parallel; the others ignore threads). It returns both S_δ and S⁺_δ\S_δ.
//
// The two sets are produced with the paper's two-phase structure: a strict-
// dominance filter yields S⁺_δ, and a dominance filter *within* S⁺_δ yields
// S_δ — sound because S_δ ⊆ S⁺_δ and any dominator of a point in S⁺_δ can
// be replaced by one in S⁺_δ.
func Compute(ds *data.Dataset, rows []int32, delta mask.Mask, algo Algo, threads int) Result {
	if rows == nil {
		rows = allRows(ds.N)
	}
	ext := filter(ds, rows, delta, true, algo, threads)
	sky := filter(ds, ext, delta, false, algo, threads)
	return Result{Skyline: sky, ExtOnly: diffSorted(ext, sky)}
}

// ExtendedSkyline returns the rows of S⁺_δ.
func ExtendedSkyline(ds *data.Dataset, rows []int32, delta mask.Mask, algo Algo, threads int) []int32 {
	if rows == nil {
		rows = allRows(ds.N)
	}
	return filter(ds, rows, delta, true, algo, threads)
}

// filter returns the rows not (strictly, if strict) dominated in δ by any
// other given row, in ascending row order.
func filter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool, algo Algo, threads int) []int32 {
	switch algo {
	case AlgoBNL:
		return bnlFilter(ds, rows, delta, strict)
	case AlgoBSkyTree:
		return pivotFilter(ds, rows, delta, strict)
	case AlgoHybrid:
		return hybridFilter(ds, rows, delta, strict, threads)
	case AlgoPSkyline:
		return pskyFilter(ds, rows, delta, strict, threads)
	}
	panic("skyline: unknown algorithm")
}

// StatusAll classifies every row of ds relative to δ.
func StatusAll(ds *data.Dataset, delta mask.Mask, algo Algo, threads int) []Status {
	res := Compute(ds, nil, delta, algo, threads)
	st := make([]Status, ds.N)
	for _, r := range res.Skyline {
		st[r] = InSkyline
	}
	for _, r := range res.ExtOnly {
		st[r] = ExtendedOnly
	}
	return st
}

func allRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// diffSorted returns the elements of a (sorted ascending) not present in b
// (sorted ascending).
func diffSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)-len(b))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
