package skyline

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// datasetFromBytes deterministically builds a small low-cardinality dataset
// (ties are frequent, stressing the strict/non-strict split) from raw
// generator output.
func datasetFromBytes(raw []byte, d int) *data.Dataset {
	n := len(raw) / d
	if n < 2 {
		return nil
	}
	vals := make([]float32, n*d)
	for i := range vals {
		vals[i] = float32(raw[i] % 6)
	}
	return data.New(d, vals)
}

// Property: every algorithm agrees with BNL on arbitrary inputs, for both
// the skyline and the extended skyline, in every subspace.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(raw []byte, d8, delta8 uint8) bool {
		d := int(d8%4) + 2 // 2..5 dims
		ds := datasetFromBytes(raw, d)
		if ds == nil {
			return true
		}
		delta := mask.Mask(delta8)&mask.Full(d) | 1
		ref := Compute(ds, nil, delta, AlgoBNL, 1)
		for _, algo := range []Algo{AlgoBSkyTree, AlgoHybrid, AlgoPSkyline} {
			got := Compute(ds, nil, delta, algo, 3)
			if !reflect.DeepEqual(got, ref) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, 60+rng.Intn(700))
			rng.Read(raw)
			v[0] = reflect.ValueOf(raw)
			v[1] = reflect.ValueOf(uint8(rng.Intn(256)))
			v[2] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the skyline of any subspace is contained in its extended
// skyline, and the extended skyline of δ contains the extended skyline of
// every subspace of δ (Definition 2's containment, §2.2).
func TestQuickExtendedContainment(t *testing.T) {
	f := func(raw []byte, delta8, sub8 uint8) bool {
		const d = 4
		ds := datasetFromBytes(raw, d)
		if ds == nil {
			return true
		}
		delta := mask.Mask(delta8)&mask.Full(d) | 1
		sub := mask.Mask(sub8) & delta
		if sub == 0 {
			sub = delta & (-delta) // lowest set bit
		}
		extDelta := toSet(ExtendedSkyline(ds, nil, delta, AlgoBNL, 1))
		res := Compute(ds, nil, delta, AlgoBNL, 1)
		for _, r := range res.Skyline {
			if !extDelta[r] {
				return false
			}
		}
		for _, r := range ExtendedSkyline(ds, nil, sub, AlgoBNL, 1) {
			if !extDelta[r] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, 40+rng.Intn(400))
			rng.Read(raw)
			v[0] = reflect.ValueOf(raw)
			v[1] = reflect.ValueOf(uint8(rng.Intn(256)))
			v[2] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: no skyline member is dominated by any input point, and every
// excluded point is dominated by some skyline member (soundness +
// completeness of the filter).
func TestQuickSkylineSoundComplete(t *testing.T) {
	f := func(raw []byte) bool {
		const d = 3
		ds := datasetFromBytes(raw, d)
		if ds == nil {
			return true
		}
		delta := mask.Full(d)
		res := Compute(ds, nil, delta, AlgoBSkyTree, 1)
		in := toSet(res.Skyline)
		for i := 0; i < ds.N; i++ {
			dominated := false
			for j := 0; j < ds.N && !dominated; j++ {
				if i == j {
					continue
				}
				r := dom.Compare(ds.Point(j), ds.Point(i))
				if kills(r, delta, false) {
					dominated = true
				}
			}
			if in[int32(i)] == dominated {
				return false // members must be undominated, non-members dominated
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(v []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, 30+rng.Intn(200))
			rng.Read(raw)
			v[0] = reflect.ValueOf(raw)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func toSet(rows []int32) map[int32]bool {
	m := make(map[int32]bool, len(rows))
	for _, r := range rows {
		m[r] = true
	}
	return m
}
