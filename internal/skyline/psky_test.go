package skyline

import (
	"reflect"
	"testing"

	"skycube/internal/data"
	"skycube/internal/gen"
	"skycube/internal/mask"
)

func TestPSkylineAgreesWithBNL(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.Anticorrelated} {
		ds := gen.Synthetic(dist, 900, 5, 13)
		for _, delta := range []mask.Mask{1, 0b10101, mask.Full(5)} {
			ref := Compute(ds, nil, delta, AlgoBNL, 1)
			got := Compute(ds, nil, delta, AlgoPSkyline, 4)
			if !reflect.DeepEqual(got.Skyline, ref.Skyline) {
				t.Errorf("%v δ=%b: PSkyline %d ids != BNL %d ids", dist, delta, len(got.Skyline), len(ref.Skyline))
			}
			if !reflect.DeepEqual(got.ExtOnly, ref.ExtOnly) {
				t.Errorf("%v δ=%b: PSkyline extOnly mismatch", dist, delta)
			}
		}
	}
}

func TestPSkylineSingleThreadFallsBack(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 300, 4, 7)
	delta := mask.Full(4)
	a := Compute(ds, nil, delta, AlgoPSkyline, 1)
	b := Compute(ds, nil, delta, AlgoBNL, 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("single-thread PSkyline should equal BNL")
	}
}

func TestPSkylineManyThreadsSmallInput(t *testing.T) {
	// More threads than sensible for the input size must still be correct.
	ds := gen.Synthetic(gen.Anticorrelated, 50, 3, 5)
	delta := mask.Full(3)
	ref := Compute(ds, nil, delta, AlgoBNL, 1)
	got := Compute(ds, nil, delta, AlgoPSkyline, 64)
	if !reflect.DeepEqual(got, ref) {
		t.Error("PSkyline with excess threads diverged")
	}
}

func TestSkyMergeCrossDomination(t *testing.T) {
	// Regression for the transitive-merge subtlety: a ∈ A dominated by
	// b ∈ B, where b is itself dominated by a' ∈ A. Both a and b must go.
	ds := data.FromRows([][]float32{
		{0.9, 0.9}, // a  (slice A) — dominated by b
		{0.1, 0.1}, // a' (slice A) — dominates everything
		{0.5, 0.5}, // b  (slice B) — dominates a, dominated by a'
		{0.8, 0.7}, // b2 (slice B) — dominated by a'
	})
	a := bnlFilter(ds, []int32{0, 1}, 0b11, false)
	b := bnlFilter(ds, []int32{2, 3}, 0b11, false)
	merged := skyMerge(ds, a, b, 0b11, false)
	if len(merged) != 1 || merged[0] != 1 {
		t.Errorf("skyMerge = %v, want [1]", merged)
	}
}

func TestPSkylineOddPartitionCount(t *testing.T) {
	// Odd reduction-tree width exercises the carry-over branch.
	ds := gen.Synthetic(gen.Independent, 700, 4, 21)
	delta := mask.Full(4)
	ref := Compute(ds, nil, delta, AlgoBNL, 1)
	got := Compute(ds, nil, delta, AlgoPSkyline, 5)
	if !reflect.DeepEqual(got, ref) {
		t.Error("PSkyline with 5 threads diverged")
	}
}

func TestPSkylineString(t *testing.T) {
	if AlgoPSkyline.String() != "PSkyline" {
		t.Error("label wrong")
	}
}

func TestPivotStrategiesAgree(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Anticorrelated, gen.Correlated} {
		ds := gen.Synthetic(dist, 700, 5, 29)
		for _, delta := range []mask.Mask{1, 0b10110, mask.Full(5)} {
			for _, strict := range []bool{false, true} {
				want := bnlFilter(ds, allRows(ds.N), delta, strict)
				for _, strat := range []PivotStrategy{PivotMinL1, PivotFirst, PivotMedian} {
					got := PivotFilterWith(ds, allRows(ds.N), delta, strict, strat)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%v strat=%d δ=%b strict=%v: %d ids != %d ids",
							dist, strat, delta, strict, len(got), len(want))
					}
				}
			}
		}
	}
}

func TestPivotStrategiesOnDuplicates(t *testing.T) {
	rows := make([][]float32, 300)
	for i := range rows {
		rows[i] = []float32{float32(i % 2), float32(i % 2), 0.5}
	}
	ds := data.FromRows(rows)
	want := bnlFilter(ds, allRows(ds.N), 0b111, false)
	for _, strat := range []PivotStrategy{PivotMinL1, PivotFirst, PivotMedian} {
		got := PivotFilterWith(ds, allRows(ds.N), 0b111, false, strat)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("strat=%d: duplicates broke pivot filter", strat)
		}
	}
}
