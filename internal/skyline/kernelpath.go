// Block-kernel paths of the skyline filters: the same window/merge logic as
// the scalar loops in bnl.go and psky.go, but with candidates held in the
// SoA block layout (internal/data) swept by the branch-free kernels
// (internal/dom), and candidates processed in ascending δ-sum order so
// likely dominators are scanned first and sorted stop points apply.
//
// Every function here is result-identical to its scalar counterpart — the
// skyline of a set does not depend on processing order, both paths return
// rows sorted ascending, and the differential/fuzz harnesses compare them
// bit for bit. The scalar paths remain both the sparse-input fast path and
// the oracle.
package skyline

import (
	"sort"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// blockMinRows is the input size below which the window filters stay on the
// scalar path: a sub-block window can't amortise projection and block setup.
const blockMinRows = 64

// blockMinDims is the subspace width below which the BNL window filter stays
// scalar. In narrow subspaces dominators are dense, the scalar window loop
// exits on its first comparisons, and a full 64-lane sweep costs more than
// it saves (measured: blocks lose ~1.7× at d=4 but win 2–3× from d=6 up);
// the merge/witness shapes keep the block path at any width because their
// scans rarely terminate early.
const blockMinDims = 5

// scalarFallback records one scalar-path filter call taken while the block
// kernels were enabled (input below blockMinRows) — the skycube_kernel_*
// fallback counter.
func scalarFallback() {
	t := dom.KernelTally{Fallbacks: 1}
	t.Flush()
}

// bnlBlockFilter is bnlFilter over a sum-sorted SoA window. Processing in
// ascending (δ-sum, row) order guarantees a point's dominators — which
// float32-sum to at most the point's own sum — are already in the window
// when the point is tested, except for equal-sum dominators still to come;
// those are handled by the equal-sum tail eviction at append time, mirroring
// scalar BNL's window eviction.
func bnlBlockFilter(ds *data.Dataset, rows []int32, delta mask.Mask, strict bool) []int32 {
	dims := mask.Dims(delta)
	k := len(dims)
	n := len(rows)
	ord := make([]int32, n)
	sums := make([]float32, n)
	for i, r := range rows {
		ord[i] = int32(i)
		sums[i] = data.SumOver(ds.Point(int(r)), dims)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sums[ia] != sums[ib] {
			return sums[ia] < sums[ib]
		}
		return rows[ia] < rows[ib]
	})

	useStop := dom.StopPointsEnabled()
	var tally dom.KernelTally
	win := data.GetBlockSet(k, data.DefaultBlockSize)
	defer data.PutBlockSet(win)
	pq := make([]float32, k)
	for _, ii := range ord {
		r := rows[ii]
		data.ProjectInto(pq, ds.Point(int(r)), dims)
		s := sums[ii]
		if dom.BlocksAnyDominator(win, pq, s, strict, useStop, &tally) {
			continue
		}
		killEqualSumTail(win, pq, s, strict)
		win.Append(pq, r, s)
	}

	out := make([]int32, 0, win.Len())
	for _, b := range win.Blocks {
		for lane := 0; lane < b.N; lane++ {
			if b.IsAlive(lane) {
				out = append(out, b.Rows[lane])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	tally.Flush()
	return out
}

// killEqualSumTail evicts window lanes the arriving point pq dominates.
// Only lanes with the same δ-sum can qualify (a dominated lane's sum is at
// least its dominator's), and sums are appended non-decreasing, so they form
// a suffix of the window.
func killEqualSumTail(win *data.BlockSet, pq []float32, psum float32, strict bool) {
	for bi := len(win.Blocks) - 1; bi >= 0; bi-- {
		b := win.Blocks[bi]
		for lane := b.N - 1; lane >= 0; lane-- {
			if b.Sums[lane] != psum {
				return
			}
			if b.IsAlive(lane) && laneDominatedBy(b, lane, pq, strict) {
				b.Kill(lane)
			}
		}
	}
}

// laneDominatedBy reports whether pq dominates the lane's projected point.
func laneDominatedBy(b *data.Block, lane int, pq []float32, strict bool) bool {
	if strict {
		for j := range pq {
			if pq[j] >= b.Cols[j][lane] {
				return false
			}
		}
		return true
	}
	any := false
	for j := range pq {
		v := b.Cols[j][lane]
		if pq[j] > v {
			return false
		}
		if pq[j] < v {
			any = true
		}
	}
	return any
}

// skyMergeBlocks is skyMerge with each side staged as a sum-sorted block
// set: a side's survivors are the points no block of the other side
// dominates, and because the other side is sorted the scan both meets
// likely dominators first and stops at the first block past the query's sum.
func skyMergeBlocks(ds *data.Dataset, a, b []int32, delta mask.Mask, strict bool) []int32 {
	dims := mask.Dims(delta)
	k := len(dims)
	bsA := data.SortedBlocksOf(ds, a, dims, data.DefaultBlockSize)
	defer data.PutBlockSet(bsA)
	bsB := data.SortedBlocksOf(ds, b, dims, data.DefaultBlockSize)
	defer data.PutBlockSet(bsB)

	useStop := dom.StopPointsEnabled()
	var tally dom.KernelTally
	pq := make([]float32, k)
	out := make([]int32, 0, len(a)+len(b))
	for _, p := range a {
		pp := ds.Point(int(p))
		data.ProjectInto(pq, pp, dims)
		if !dom.BlocksAnyDominator(bsB, pq, data.SumOver(pp, dims), strict, useStop, &tally) {
			out = append(out, p)
		}
	}
	for _, p := range b {
		pp := ds.Point(int(p))
		data.ProjectInto(pq, pp, dims)
		if !dom.BlocksAnyDominator(bsA, pq, data.SumOver(pp, dims), strict, useStop, &tally) {
			out = append(out, p)
		}
	}
	tally.Flush()
	return out
}
