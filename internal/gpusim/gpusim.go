// Package gpusim is the GPU device model on which the GPU template
// specialisations execute.
//
// Go has no practical CUDA story, so — per the substitution rule recorded
// in DESIGN.md — this package replaces the paper's physical NVIDIA cards
// with a software device that preserves the architectural properties the
// paper's GPU designs respond to (§2.3):
//
//   - a grid of thread blocks scheduled over a fixed number of streaming
//     multiprocessors (SMs);
//   - a per-block shared-memory budget that bounds how many blocks are
//     resident concurrently (the occupancy constraint that makes MDMC's
//     2·(2^d −1)-bit task state the limiting factor at high d, §6.2);
//   - 32-wide warps with warp votes and a divergence penalty;
//   - a global-memory cost model that distinguishes coalesced from
//     scattered transactions (128-byte lines).
//
// Kernels are written warp-cooperatively: the kernel function receives a
// BlockCtx and expresses its loads, ALU work, votes and divergence through
// it, so the *work* is executed for real on the host while the *cost* is
// accounted under the device model. Launch returns both the wall-clock
// outcome (the computed data) and modelled device statistics.
package gpusim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// WarpSize is the number of step-locked lanes per warp.
const WarpSize = 32

// Device describes one modelled GPU.
type Device struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// SharedMemPerSM is the shared memory per SM in bytes (the paper's
	// card: 96 KB per 2048 concurrent threads).
	SharedMemPerSM int
	// MaxBlocksPerSM bounds resident blocks per SM irrespective of memory.
	MaxBlocksPerSM int
	// ClockGHz is the core clock used by the time model.
	ClockGHz float64
	// IPCPerSM is the modelled retired-instructions-per-cycle per SM.
	IPCPerSM float64
	// MemLatency is the modelled global-memory latency in cycles; the
	// effective cost per transaction assumes latency hiding across resident
	// warps, so only a fraction is charged.
	MemLatency int
	// HostWorkers caps the host goroutines used to execute blocks. 0 means
	// one per concurrently-resident block (up to a small multiple of SMs).
	HostWorkers int
	// PCIeGBps is the effective host↔device bandwidth in GB/s (PCIe3 x16
	// sustains ≈ 12). Transfers are part of the paper's timing convention
	// (§7.1: "including all PCIe transfers").
	PCIeGBps float64
}

// GTX980 models the NVIDIA GTX 980 used for the single-GPU experiments.
func GTX980() *Device {
	return &Device{
		Name: "GTX980", SMs: 16, SharedMemPerSM: 96 * 1024, MaxBlocksPerSM: 32,
		ClockGHz: 1.126, IPCPerSM: 4, MemLatency: 350, PCIeGBps: 12,
	}
}

// GTXTitan models the older-generation GTX Titan added for the cross-device
// experiments; fewer SMs, matching the paper's observation that it
// contributes a smaller work share.
func GTXTitan() *Device {
	return &Device{
		Name: "Titan", SMs: 14, SharedMemPerSM: 48 * 1024, MaxBlocksPerSM: 16,
		ClockGHz: 0.876, IPCPerSM: 4, MemLatency: 400, PCIeGBps: 10,
	}
}

// Stats are the modelled counters of one launch (or an accumulation).
type Stats struct {
	Blocks         int64
	Instructions   int64 // warp-level ALU/control instructions
	Transactions   int64 // global-memory transactions (128 B)
	SharedAccesses int64
	Divergences    int64 // serialised branch splits
	Votes          int64
	Syncs          int64
	// TransferBytes counts host↔device PCIe traffic.
	TransferBytes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Blocks += other.Blocks
	s.Instructions += other.Instructions
	s.Transactions += other.Transactions
	s.SharedAccesses += other.SharedAccesses
	s.Divergences += other.Divergences
	s.Votes += other.Votes
	s.Syncs += other.Syncs
	s.TransferBytes += other.TransferBytes
}

// ModelSeconds converts the counters into modelled device seconds:
// instruction issue over all SMs, plus memory transactions at an effective
// (latency-hidden) cost, plus a serialisation penalty per divergence.
func (d *Device) ModelSeconds(s Stats) float64 {
	issue := float64(s.Instructions) / (float64(d.SMs) * d.IPCPerSM)
	// With thousands of resident warps most latency overlaps compute; an
	// effective 1/32 of the raw latency per transaction is charged, spread
	// over the SMs' load/store units.
	mem := float64(s.Transactions) * float64(d.MemLatency) / 32 / float64(d.SMs)
	div := float64(s.Divergences) * float64(WarpSize) / (float64(d.SMs) * d.IPCPerSM)
	shared := float64(s.SharedAccesses) / (float64(d.SMs) * d.IPCPerSM * 4)
	cycles := issue + mem + div + shared
	secs := cycles / (d.ClockGHz * 1e9)
	if d.PCIeGBps > 0 {
		secs += float64(s.TransferBytes) / (d.PCIeGBps * 1e9)
	}
	return secs
}

// Transfer returns the stats for a host↔device copy of the given size, to
// be accumulated alongside launch stats.
func Transfer(bytes int) Stats {
	return Stats{TransferBytes: int64(bytes)}
}

// RelativeSpeed is the device's raw issue throughput — SMs × IPC × clock,
// in modelled giga-instructions per second. The cross-device scheduler uses
// it as the initial throughput estimate of a card's queue, before any chunk
// has completed and fed the real EWMA (a GTX 980 reports ≈ 72, the older
// Titan ≈ 49 — matching the paper's observation that the Titan takes a
// smaller work share).
func (d *Device) RelativeSpeed() float64 {
	return float64(d.SMs) * d.IPCPerSM * d.ClockGHz
}

// BlockCtx is the execution context of one thread block. Kernels run the
// block's logic sequentially on the host while describing its parallel
// shape (loads, votes, divergence) through the accounting methods.
type BlockCtx struct {
	// Block is the block index within the launch grid.
	Block int
	// Threads is the block size (a multiple of WarpSize).
	Threads int
	stats   Stats
}

// Instr accounts n warp-level ALU/control instructions.
func (b *BlockCtx) Instr(n int) { b.stats.Instructions += int64(n) }

// LoadCoalesced accounts a warp loading `bytes` contiguous bytes from
// global memory: ceil(bytes/128) transactions.
func (b *BlockCtx) LoadCoalesced(bytes int) {
	b.stats.Transactions += int64((bytes + 127) / 128)
	b.stats.Instructions++
}

// LoadScattered accounts count independent loads of bytesEach from
// arbitrary addresses: one transaction each (the uncoalesced worst case).
func (b *BlockCtx) LoadScattered(count, bytesEach int) {
	b.stats.Transactions += int64(count)
	b.stats.Instructions += int64(count)
	_ = bytesEach
}

// SharedAccess accounts n shared-memory accesses.
func (b *BlockCtx) SharedAccess(n int) { b.stats.SharedAccesses += int64(n) }

// Diverge accounts a branch on which the warp's lanes disagreed,
// serialising both sides.
func (b *BlockCtx) Diverge() { b.stats.Divergences++ }

// Vote accounts a warp vote and returns its argument, mirroring CUDA's
// __any_sync usage in the refine kernel (§6.2).
func (b *BlockCtx) Vote(any bool) bool {
	b.stats.Votes++
	b.stats.Instructions++
	return any
}

// Sync accounts a __syncthreads barrier (blocks execute sequentially on the
// host, so this is purely an accounting event).
func (b *BlockCtx) Sync() { b.stats.Syncs++ }

// Launch executes a kernel grid on the device. sharedBytesPerBlock is the
// block's shared-memory footprint: it bounds occupancy (resident blocks)
// and errors out if a single block exceeds the per-SM budget, forcing
// callers to restructure exactly as real kernels must.
func (d *Device) Launch(blocks, threadsPerBlock, sharedBytesPerBlock int, kernel func(*BlockCtx)) (Stats, error) {
	if blocks <= 0 {
		return Stats{}, nil
	}
	if threadsPerBlock <= 0 || threadsPerBlock%WarpSize != 0 {
		return Stats{}, fmt.Errorf("gpusim: block size %d is not a positive multiple of %d", threadsPerBlock, WarpSize)
	}
	if sharedBytesPerBlock > d.SharedMemPerSM {
		return Stats{}, fmt.Errorf("gpusim: block needs %d B shared memory, SM has %d B",
			sharedBytesPerBlock, d.SharedMemPerSM)
	}
	residentPerSM := d.MaxBlocksPerSM
	if sharedBytesPerBlock > 0 {
		if byMem := d.SharedMemPerSM / sharedBytesPerBlock; byMem < residentPerSM {
			residentPerSM = byMem
		}
	}
	if residentPerSM < 1 {
		residentPerSM = 1
	}
	concurrency := d.SMs * residentPerSM
	if d.HostWorkers > 0 && concurrency > d.HostWorkers {
		concurrency = d.HostWorkers
	}
	if concurrency > blocks {
		concurrency = blocks
	}
	// Host execution is bounded separately so simulating a 512-block
	// occupancy does not spawn 512 goroutines.
	workers := concurrency
	if workers > 4*d.SMs {
		workers = 4 * d.SMs
	}

	var total Stats
	var mu sync.Mutex
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := Stats{}
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(blocks) {
					break
				}
				ctx := BlockCtx{Block: int(i), Threads: threadsPerBlock}
				kernel(&ctx)
				local.Add(ctx.stats)
				local.Blocks++
			}
			mu.Lock()
			total.Add(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total, nil
}

// OccupantBlocks reports how many blocks are concurrently resident for a
// given shared-memory footprint — the quantity the MDMC specialisation
// trades against task state (§6.2).
func (d *Device) OccupantBlocks(sharedBytesPerBlock int) int {
	residentPerSM := d.MaxBlocksPerSM
	if sharedBytesPerBlock > 0 {
		byMem := d.SharedMemPerSM / sharedBytesPerBlock
		if byMem < residentPerSM {
			residentPerSM = byMem
		}
	}
	if residentPerSM < 1 {
		residentPerSM = 1
	}
	return d.SMs * residentPerSM
}
