package gpusim

import (
	"sync/atomic"
	"testing"
)

func TestLaunchRunsEveryBlock(t *testing.T) {
	dev := GTX980()
	var seen int64
	hits := make([]int32, 100)
	st, err := dev.Launch(100, 64, 0, func(b *BlockCtx) {
		atomic.AddInt64(&seen, 1)
		atomic.AddInt32(&hits[b.Block], 1)
		b.Instr(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 100 || st.Blocks != 100 {
		t.Fatalf("ran %d blocks, stats %d, want 100", seen, st.Blocks)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("block %d ran %d times", i, h)
		}
	}
	if st.Instructions != 1000 {
		t.Errorf("instructions = %d, want 1000", st.Instructions)
	}
}

func TestLaunchValidation(t *testing.T) {
	dev := GTX980()
	if _, err := dev.Launch(1, 33, 0, func(*BlockCtx) {}); err == nil {
		t.Error("non-warp-multiple block size should error")
	}
	if _, err := dev.Launch(1, 0, 0, func(*BlockCtx) {}); err == nil {
		t.Error("zero block size should error")
	}
	if _, err := dev.Launch(1, 32, dev.SharedMemPerSM+1, func(*BlockCtx) {}); err == nil {
		t.Error("oversized shared memory should error")
	}
	st, err := dev.Launch(0, 32, 0, func(*BlockCtx) { t.Error("kernel ran") })
	if err != nil || st.Blocks != 0 {
		t.Error("zero blocks should be a no-op")
	}
}

func TestOccupancyShrinksWithSharedMemory(t *testing.T) {
	dev := GTX980()
	free := dev.OccupantBlocks(0)
	small := dev.OccupantBlocks(1024)
	big := dev.OccupantBlocks(16 * 1024) // d=16 MDMC state: 2×8 KB
	if !(free >= small && small >= big) {
		t.Fatalf("occupancy not monotone: %d, %d, %d", free, small, big)
	}
	if big != dev.SMs*(dev.SharedMemPerSM/(16*1024)) {
		t.Errorf("big occupancy = %d", big)
	}
	// Even a block using the whole SM keeps one resident per SM.
	if got := dev.OccupantBlocks(dev.SharedMemPerSM); got != dev.SMs {
		t.Errorf("full-SM block occupancy = %d, want %d", got, dev.SMs)
	}
}

func TestCoalescingAccounting(t *testing.T) {
	dev := GTX980()
	st, err := dev.Launch(1, 32, 0, func(b *BlockCtx) {
		b.LoadCoalesced(128)   // exactly one line
		b.LoadCoalesced(129)   // two lines
		b.LoadScattered(32, 4) // 32 transactions
		b.SharedAccess(5)
		b.Diverge()
		b.Vote(true)
		b.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Transactions != 1+2+32 {
		t.Errorf("transactions = %d, want 35", st.Transactions)
	}
	if st.SharedAccesses != 5 || st.Divergences != 1 || st.Votes != 1 || st.Syncs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestModelSecondsPositiveAndMonotone(t *testing.T) {
	dev := GTX980()
	a := dev.ModelSeconds(Stats{Instructions: 1e6, Transactions: 1e4})
	b := dev.ModelSeconds(Stats{Instructions: 2e6, Transactions: 1e4})
	c := dev.ModelSeconds(Stats{Instructions: 1e6, Transactions: 1e6})
	if a <= 0 || b <= a || c <= a {
		t.Errorf("model seconds not monotone: %g %g %g", a, b, c)
	}
	// The older Titan should be slower on identical work.
	titan := GTXTitan()
	if titan.ModelSeconds(Stats{Instructions: 1e6, Transactions: 1e4}) <= a {
		t.Error("Titan should model slower than GTX 980")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Blocks: 1, Instructions: 2, Transactions: 3, SharedAccesses: 4, Divergences: 5, Votes: 6, Syncs: 7}
	b := a
	a.Add(b)
	if a.Blocks != 2 || a.Instructions != 4 || a.Syncs != 14 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestVoteReturnsArgument(t *testing.T) {
	dev := GTX980()
	_, err := dev.Launch(1, 32, 0, func(b *BlockCtx) {
		if !b.Vote(true) || b.Vote(false) {
			t.Error("Vote must return its argument")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
