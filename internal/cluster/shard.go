// Package cluster is the scale-out tier of the skycube service: shard
// nodes each own a horizontal partition of the data and serve shard-local
// per-subspace results, and a coordinator scatter-gathers those results
// over HTTP and merges them — with one final dominance filter — into the
// exact global skyline of any queried subspace.
//
// The distribution rests on the distributivity of skyline computation over
// horizontal partitions (Zhang & Zhang, "Computing Skylines on Distributed
// Data"): a globally undominated point is undominated within its partition,
// so the union of shard-local (extended) skylines is a superset of the
// global skyline, and dominance transitivity guarantees the final filter
// removes exactly the impostors. No shard ever needs another shard's data.
//
// The serving path is engineered for partial failure: replication factor R
// per shard, per-attempt timeouts, capped exponential backoff with jitter,
// hedged reads against a second replica when the first is slow, and a
// per-replica circuit breaker so dead nodes cost nothing. When every
// replica of a shard is down the coordinator answers with an explicit
// partial-result response (HTTP 206 and "partial": true) — degraded is
// visible, never silently wrong.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skycube"
	"skycube/internal/data"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/rcache"
	"skycube/internal/rebalance"
	"skycube/internal/server"
	"skycube/internal/skyline"
)

// ShardOptions configure a shard node beyond the build options.
type ShardOptions struct {
	// IDBase/IDStride map the shard's local row r to its global point id
	// IDBase + r*IDStride. Round-robin partitions of K shards use base s,
	// stride K (Dataset.Partition / datagen -shards); range partitions use
	// their start offset and stride 1. The zero value (0, 0) means stride 1
	// from 0 — a single-shard cluster.
	IDBase, IDStride int
	// Metrics, if non-nil, receives the embedded server's request metrics
	// and enables GET /metrics.
	Metrics *obs.Registry
	// Logger, if non-nil, logs one line per request.
	Logger *log.Logger
	// MaxBodyBytes caps mutation bodies (0 = server default, 1 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the shard's /shard/cuboid response cache and the
	// embedded server's read cache (0 = rcache.DefaultEntries).
	CacheEntries int
	// DisableCache turns response memoization off on both surfaces
	// (the ETag/304 contract remains).
	DisableCache bool
	// Requests, if non-nil, enables distributed request tracing on the
	// shard: requests carrying a coordinator-propagated traceparent header
	// (and one in SampleEvery locally-initiated ones) are recorded into the
	// ring, inspectable via GET /debug/requests and harvested by the
	// coordinator's /trace/query assembly.
	Requests *obs.RequestRing
	// SampleEvery admits one in N locally-initiated requests into tracing
	// (0 = trace only coordinator-propagated requests).
	SampleEvery int
	// SlowQuery, when > 0, logs one structured line per request at least
	// this slow.
	SlowQuery time.Duration
	// IDSegments, when non-empty, replaces the IDBase/IDStride single
	// mapping with an explicit piecewise scheme — how a restarted split
	// child reinstates its sealed insert block.
	IDSegments []IDSegment
	// Threads sizes the extended-skyline scan pool for shards built through
	// NewShardFrom (NewShard derives it from the build options); 0 means
	// NumCPU.
	Threads int
	// Source, when non-nil, is the rebalance node this shard was
	// bootstrapped from; it enables POST /shard/sync (pull the source
	// peer's remaining WAL tail — the split cutover's final catch-up).
	Source *rebalance.Node
}

// Shard is a shard node: a maintainable skycube over one horizontal
// partition, serving the embedded server's full endpoint set (reads,
// mutations, /healthz, /metrics) plus the cluster protocol:
//
//	GET /shard/cuboid?subspace=N[&extended=true][&filter=pts]   shard-local S_δ (or S⁺_δ) with global ids +
//	                                                            coordinates, minus members dominated by a filter point
//	GET /shard/skymeta?subspace=N[&extended=true][&k=K]         the cuboid's count, epoch, min/max corner and
//	                                                            top-K representative points (the pruning prelude)
//	GET /shard/info                                             id mapping, dims, live points, epoch
type Shard struct {
	srv     *server.Server
	up      *skycube.Updater
	dims    int
	threads int

	// scheme is the shard's piecewise local→global id mapping, swapped
	// atomically when a split cutover seals a fresh insert block.
	scheme atomic.Pointer[idScheme]

	// maxGen is the highest coordinator shard-map generation this shard has
	// seen; requests carrying an older one are answered 409 so a stale map
	// holder refreshes instead of acting on dead topology.
	maxGen atomic.Uint64

	// source, when non-nil, is the peer stream this shard bootstrapped from
	// (POST /shard/sync pulls its remaining tail); sourceMu serialises the
	// cursor.
	sourceMu sync.Mutex
	source   *rebalance.Node

	// adminMu serialises the rare mutating admin operations (seal, prune) so
	// their read-modify-write sequences stay atomic.
	adminMu sync.Mutex

	rbm *obs.RebalanceMetrics

	// cache memoizes encoded /shard/cuboid responses per (epoch, query):
	// a coordinator fan-out of a warm subspace is a map probe and a byte
	// copy, not an extraction plus an encode. Nil when disabled.
	cache *rcache.Cache
	cm    *obs.CacheMetrics
}

// schemeFor builds a shard's initial id scheme from its options.
func schemeFor(sopt ShardOptions) (*idScheme, error) {
	if len(sopt.IDSegments) > 0 {
		return schemeFromSegments(sopt.IDSegments)
	}
	if sopt.IDBase < 0 || sopt.IDStride < 0 {
		return nil, fmt.Errorf("cluster: negative id mapping (base %d, stride %d)", sopt.IDBase, sopt.IDStride)
	}
	return newIDScheme(sopt.IDBase, sopt.IDStride), nil
}

// NewShard builds the shard's skycube over its partition (via
// skycube.NewUpdater, so coordinator-routed inserts and deletes work) and
// returns the node. Close releases the updater's background goroutines.
func NewShard(ds *skycube.Dataset, opt skycube.Options, sopt ShardOptions) (*Shard, error) {
	scheme, err := schemeFor(sopt)
	if err != nil {
		return nil, err
	}
	if sopt.Metrics != nil {
		opt.Metrics = sopt.Metrics // skycube.Metrics is an alias of obs.Registry
	}
	up, err := skycube.NewUpdater(ds, opt)
	if err != nil {
		return nil, err
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	return finishShard(up, ds.Dims(), threads, scheme, sopt), nil
}

// NewShardFrom wraps an already-built updater — typically one adopted from a
// rebalance bootstrap (skycube.AdoptUpdater) — as a serving shard node. The
// dimensionality comes from the updater's current snapshot; sopt.Threads
// sizes the extended-skyline pool.
func NewShardFrom(up *skycube.Updater, sopt ShardOptions) (*Shard, error) {
	scheme, err := schemeFor(sopt)
	if err != nil {
		return nil, err
	}
	threads := sopt.Threads
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	return finishShard(up, up.Current().Dims(), threads, scheme, sopt), nil
}

// finishShard wires the shard node around a ready updater: response cache,
// embedded server, and the cluster + rebalance endpoint set.
func finishShard(up *skycube.Updater, dims, threads int, scheme *idScheme, sopt ShardOptions) *Shard {
	sh := &Shard{
		up:      up,
		dims:    dims,
		threads: threads,
		source:  sopt.Source,
	}
	sh.scheme.Store(scheme)
	sh.rbm = obs.NewRebalanceMetrics(sopt.Metrics)
	sh.cm = obs.NewCacheMetrics(sopt.Metrics, "shard")
	if !sopt.DisableCache {
		sh.cache = rcache.New(sopt.CacheEntries, sh.cm)
	}
	sh.srv = server.NewWith(nil, nil, server.Options{
		Updater:      up,
		Metrics:      sopt.Metrics,
		Logger:       sopt.Logger,
		MaxBodyBytes: sopt.MaxBodyBytes,
		CacheEntries: sopt.CacheEntries,
		DisableCache: sopt.DisableCache,
		Requests:     sopt.Requests,
		SampleEvery:  sopt.SampleEvery,
		SlowQuery:    sopt.SlowQuery,
		TraceKind:    "shard",
	})
	sh.srv.Handle("/shard/cuboid", http.HandlerFunc(sh.handleCuboid))
	sh.srv.Handle("/shard/skymeta", http.HandlerFunc(sh.handleSkymeta))
	sh.srv.Handle("/shard/info", http.HandlerFunc(sh.handleInfo))
	sh.srv.Handle("/shard/snapshot", http.HandlerFunc(sh.handleSnapshot))
	sh.srv.Handle("/shard/tail", http.HandlerFunc(sh.handleTail))
	sh.srv.Handle("/shard/sync", http.HandlerFunc(sh.handleSync))
	sh.srv.Handle("/shard/seal", http.HandlerFunc(sh.handleSeal))
	sh.srv.Handle("/shard/prune", http.HandlerFunc(sh.handlePrune))
	return sh
}

// mapGenHeader carries the coordinator's shard-map generation on every
// fan-out request; the shard answers generations older than the highest it
// has seen with 409 Conflict (and the current generation in the same header)
// so a stale map holder refreshes instead of acting on dead topology.
const mapGenHeader = "X-Skycube-Map-Gen"

// ServeHTTP implements http.Handler through the embedded server (so the
// request middleware covers the cluster endpoints too). Requests carrying a
// stale shard-map generation are rejected before they reach any handler.
func (s *Shard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if gs := r.Header.Get(mapGenHeader); gs != "" {
		gen, err := strconv.ParseUint(gs, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s header %q", mapGenHeader, gs), http.StatusBadRequest)
			return
		}
		for {
			cur := s.maxGen.Load()
			if gen < cur {
				s.rbm.StaleGen()
				w.Header().Set(mapGenHeader, strconv.FormatUint(cur, 10))
				http.Error(w, fmt.Sprintf("stale shard map generation %d (current %d)", gen, cur),
					http.StatusConflict)
				return
			}
			if gen == cur || s.maxGen.CompareAndSwap(cur, gen) {
				break
			}
		}
	}
	s.srv.ServeHTTP(w, r)
}

// Updater exposes the shard's updater (tests and embedding).
func (s *Shard) Updater() *skycube.Updater { return s.up }

// Server exposes the embedded HTTP server (e.g. for SetReady).
func (s *Shard) Server() *server.Server { return s.srv }

// Close stops the updater's background compactor.
func (s *Shard) Close() { s.up.Close() }

// GlobalID maps a local row to its global point id through the current
// piecewise scheme.
func (s *Shard) GlobalID(local int32) int32 {
	return s.scheme.Load().global(local)
}

// cuboidResponse is the /shard/cuboid payload: the shard-local result for
// one subspace, as global ids plus coordinates (so the coordinator's merge
// needs no second round trip). Filtered counts the local members dropped
// source-side because a request filter point dominated them; Count + Filtered
// is always the full local cuboid size, which is what keeps the pruned
// coordinator's candidate accounting identical to the unpruned one.
type cuboidResponse struct {
	Subspace uint32      `json:"subspace"`
	Epoch    uint64      `json:"epoch"`
	Extended bool        `json:"extended"`
	Count    int         `json:"count"`
	Filtered int         `json:"filtered,omitempty"`
	IDs      []int32     `json:"ids"`
	Points   [][]float32 `json:"points"`
}

func (s *Shard) handleCuboid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
		return
	}
	rec := obs.RecordFrom(r.Context())
	if s.cache != nil {
		if e, ok := s.cache.Get(rcache.Key{Epoch: s.up.Current().Epoch(), Variant: r.URL.RawQuery}); ok {
			rec.Event(obs.Event{Kind: obs.EvCache, Detail: "hit", Start: rec.Since()})
			rcache.Serve(w, r, e, s.cm)
			return
		}
	}
	rec.Event(obs.Event{Kind: obs.EvCache, Detail: "miss", Start: rec.Since()})
	spec := r.URL.Query().Get("subspace")
	v, err := strconv.ParseUint(spec, 10, 32)
	if err != nil || v == 0 || v >= 1<<uint(s.dims) {
		http.Error(w, fmt.Sprintf("bad subspace %q (need 1..%d)", spec, 1<<uint(s.dims)-1),
			http.StatusBadRequest)
		return
	}
	delta := mask.Mask(v)
	extended := r.URL.Query().Get("extended") == "true"
	filter, err := decodePointList(r.URL.Query().Get("filter"), s.dims)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Key and fill under the snapshot's epoch — the epoch echoed in the
	// body — so a fan-out racing a flush can never receive bytes whose
	// payload disagrees with their validator. The singleflight gate means R
	// replicas' worth of concurrent cold fan-outs cost one extraction here.
	snap := s.up.Current()
	e, err2 := s.cache.Fill(rcache.Key{Epoch: snap.Epoch(), Variant: r.URL.RawQuery},
		func() (*rcache.Entry, error) {
			extractStart := rec.Since()
			var local []int32
			if extended {
				local = s.extendedSkyline(snap, delta)
			} else {
				local = snap.Skyline(delta)
			}
			rec.Event(obs.Event{Kind: obs.EvCuboid, Start: extractStart,
				Dur: rec.Since() - extractStart, N: int64(len(local)), Epoch: snap.Epoch()})
			// Source-side pruning: drop local members a filter point
			// dominates before they are encoded. Every filter point the
			// coordinator sends witnesses an actual point elsewhere in the
			// cluster, so a dropped member could never survive the final
			// merge anyway.
			filtered := 0
			if len(filter) > 0 {
				pruneStart := rec.Since()
				local, filtered = filterMembers(local, snap.Point, filter, delta)
				rec.Event(obs.Event{Kind: obs.EvPrune, Start: pruneStart,
					Dur: rec.Since() - pruneStart, N: int64(filtered)})
			}
			resp := cuboidResponse{
				Subspace: uint32(delta),
				Epoch:    snap.Epoch(),
				Extended: extended,
				Count:    len(local),
				Filtered: filtered,
				IDs:      make([]int32, len(local)),
				Points:   make([][]float32, len(local)),
			}
			for i, row := range local {
				resp.IDs[i] = s.GlobalID(row)
				resp.Points[i] = snap.Point(row)
			}
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(resp); err != nil {
				return nil, err
			}
			tag := fmt.Sprintf(`"e%d-s%d"`, snap.Epoch(), uint32(delta))
			if extended {
				tag = strings.TrimSuffix(tag, `"`) + `-x"`
			}
			return rcache.NewEntry(tag, buf.Bytes()), nil
		})
	if err2 != nil {
		http.Error(w, err2.Error(), http.StatusInternalServerError)
		return
	}
	rcache.Serve(w, r, e, s.cm)
}

// extendedSkyline computes the shard-local S⁺_δ over the snapshot's live
// points — the exact candidate set the partition-and-merge theory calls
// for. It is an O(n)-input scan rather than an O(1) cube lookup; the
// coordinator only requests it in extended mode (the default ships the
// materialised S_δ, a subset of S⁺_δ that merges identically).
func (s *Shard) extendedSkyline(snap skycube.Snapshot, delta mask.Mask) []int32 {
	n := snap.Len()
	rows := make([]int32, 0, n)
	vals := make([]float32, 0, n*s.dims)
	for id := int32(0); int(id) < n; id++ {
		if !snap.Alive(id) {
			continue
		}
		rows = append(rows, id)
		vals = append(vals, snap.Point(id)...)
	}
	if len(rows) == 0 {
		return nil
	}
	sub := &data.Dataset{Dims: s.dims, N: len(rows), Vals: vals, IDs: rows}
	ext := skyline.ExtendedSkyline(sub, nil, delta, skyline.AlgoHybrid, s.threads)
	out := make([]int32, len(ext))
	for i, r := range ext {
		out[i] = sub.IDs[r]
	}
	return out
}

// skymetaResponse is the /shard/skymeta payload — the pruning prelude's
// view of one shard-local cuboid: its size and serving epoch, the tight
// min/max corner over its members (absent when empty), and up to K
// representative points (the members with the smallest coordinate sum over
// the queried subspace — the strongest dominators to broadcast).
type skymetaResponse struct {
	Subspace uint32      `json:"subspace"`
	Epoch    uint64      `json:"epoch"`
	Extended bool        `json:"extended"`
	Count    int         `json:"count"`
	Min      []float32   `json:"min,omitempty"`
	Max      []float32   `json:"max,omitempty"`
	Reps     [][]float32 `json:"reps,omitempty"`
}

// maxSkymetaReps caps the k parameter (a rep list is broadcast to every
// other shard; past a few dozen the marginal rep prunes nothing).
const maxSkymetaReps = 1024

func (s *Shard) handleSkymeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
		return
	}
	rec := obs.RecordFrom(r.Context())
	// Skymeta entries share the cuboid cache under a namespaced variant (the
	// two endpoints' raw queries can collide verbatim).
	variant := "m|" + r.URL.RawQuery
	if s.cache != nil {
		if e, ok := s.cache.Get(rcache.Key{Epoch: s.up.Current().Epoch(), Variant: variant}); ok {
			rec.Event(obs.Event{Kind: obs.EvCache, Detail: "hit", Start: rec.Since()})
			rcache.Serve(w, r, e, s.cm)
			return
		}
	}
	rec.Event(obs.Event{Kind: obs.EvCache, Detail: "miss", Start: rec.Since()})
	spec := r.URL.Query().Get("subspace")
	v, err := strconv.ParseUint(spec, 10, 32)
	if err != nil || v == 0 || v >= 1<<uint(s.dims) {
		http.Error(w, fmt.Sprintf("bad subspace %q (need 1..%d)", spec, 1<<uint(s.dims)-1),
			http.StatusBadRequest)
		return
	}
	delta := mask.Mask(v)
	extended := r.URL.Query().Get("extended") == "true"
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		kv, err := strconv.Atoi(ks)
		if err != nil || kv < 0 || kv > maxSkymetaReps {
			http.Error(w, fmt.Sprintf("bad k %q (need 0..%d)", ks, maxSkymetaReps), http.StatusBadRequest)
			return
		}
		k = kv
	}

	snap := s.up.Current()
	e, err2 := s.cache.Fill(rcache.Key{Epoch: snap.Epoch(), Variant: variant},
		func() (*rcache.Entry, error) {
			extractStart := rec.Since()
			var local []int32
			if extended {
				local = s.extendedSkyline(snap, delta)
			} else {
				local = snap.Skyline(delta)
			}
			rec.Event(obs.Event{Kind: obs.EvCuboid, Start: extractStart,
				Dur: rec.Since() - extractStart, N: int64(len(local)), Epoch: snap.Epoch()})
			resp := skymetaResponse{
				Subspace: uint32(delta),
				Epoch:    snap.Epoch(),
				Extended: extended,
				Count:    len(local),
			}
			if len(local) > 0 {
				resp.Min = make([]float32, s.dims)
				resp.Max = make([]float32, s.dims)
				copy(resp.Min, snap.Point(local[0]))
				copy(resp.Max, snap.Point(local[0]))
				for _, row := range local[1:] {
					p := snap.Point(row)
					for j, pv := range p {
						if pv < resp.Min[j] {
							resp.Min[j] = pv
						}
						if pv > resp.Max[j] {
							resp.Max[j] = pv
						}
					}
				}
				if k > 0 {
					resp.Reps = s.bestReps(snap, local, delta, k)
				}
			}
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(resp); err != nil {
				return nil, err
			}
			tag := fmt.Sprintf(`"m%d-s%d-k%d"`, snap.Epoch(), uint32(delta), k)
			if extended {
				tag = strings.TrimSuffix(tag, `"`) + `-x"`
			}
			return rcache.NewEntry(tag, buf.Bytes()), nil
		})
	if err2 != nil {
		http.Error(w, err2.Error(), http.StatusInternalServerError)
		return
	}
	rcache.Serve(w, r, e, s.cm)
}

// bestReps returns the k members of the local cuboid with the smallest
// coordinate sum over δ — on a smaller-is-better dataset, the points most
// likely to dominate foreign candidates. Ties break on global id so the rep
// set is deterministic across replicas (replica sets are byte-identical).
func (s *Shard) bestReps(snap skycube.Snapshot, local []int32, delta mask.Mask, k int) [][]float32 {
	type scored struct {
		row int32
		sum float64
	}
	cand := make([]scored, len(local))
	for i, row := range local {
		p := snap.Point(row)
		var sum float64
		for j := 0; j < s.dims; j++ {
			if delta&mask.Bit(j) != 0 {
				sum += float64(p[j])
			}
		}
		cand[i] = scored{row: row, sum: sum}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].sum != cand[b].sum {
			return cand[a].sum < cand[b].sum
		}
		return s.GlobalID(cand[a].row) < s.GlobalID(cand[b].row)
	})
	if k > len(cand) {
		k = len(cand)
	}
	reps := make([][]float32, k)
	for i := 0; i < k; i++ {
		reps[i] = snap.Point(cand[i].row)
	}
	return reps
}

// shardInfo is the /shard/info payload. IDBase/IDStride echo the first
// segment's arithmetic for backward compatibility; IDSegments is the full
// piecewise scheme. The wal_* freshness keys (present only on durable
// shards) are what rebalance.Freshness and anti-entropy catch-up read.
type shardInfo struct {
	Dims        int         `json:"dims"`
	Live        int         `json:"live"`
	Epoch       uint64      `json:"epoch"`
	IDBase      int         `json:"id_base"`
	IDStride    int         `json:"id_stride"`
	IDSegments  []IDSegment `json:"id_segments"`
	MapGen      uint64      `json:"map_gen"`
	WALSeq      uint64      `json:"wal_seq,omitempty"`
	SnapshotSeq uint64      `json:"snapshot_seq,omitempty"`
	Replayed    int         `json:"replayed,omitempty"`
	Records     uint64      `json:"records,omitempty"`
}

func (s *Shard) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
		return
	}
	snap := s.up.Current()
	scheme := s.scheme.Load()
	base, stride := scheme.primary()
	info := shardInfo{
		Dims:       s.dims,
		Live:       snap.Live(),
		Epoch:      snap.Epoch(),
		IDBase:     base,
		IDStride:   stride,
		IDSegments: scheme.segments(),
		MapGen:     s.maxGen.Load(),
	}
	if st := s.up.Store(); st != nil {
		info.WALSeq = st.Seq()
		info.SnapshotSeq = st.SnapshotSeq()
		info.Replayed = s.up.Replayed()
		info.Records = st.Records()
	}
	writeJSON(w, info)
}
