package cluster

import (
	"math/rand"
	"testing"

	"skycube/internal/dom"
	"skycube/internal/mask"
)

func TestMergeSkylineFiltersDominated(t *testing.T) {
	delta := mask.Mask(0b11)
	cands := []candidate{
		{id: 5, point: []float32{1, 3, 9}},
		{id: 2, point: []float32{2, 2, 0}},
		{id: 9, point: []float32{3, 3, 0}}, // dominated by id 2 (and 5) in {0,1}
	}
	got := mergeSkyline(cands, delta, nil)
	want := []int32{2, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("mergeSkyline = %v, want %v", got, want)
	}
}

func TestMergeSkylineKeepsTies(t *testing.T) {
	// Definition-1 dominance: equal projections do not dominate each other,
	// so duplicate coordinates must all survive the merge.
	delta := mask.Mask(0b01)
	cands := []candidate{
		{id: 1, point: []float32{1, 9}},
		{id: 7, point: []float32{1, 2}},
	}
	got := mergeSkyline(cands, delta, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("mergeSkyline dropped a tie: %v", got)
	}
}

func TestMergeSkylineDedupsSameID(t *testing.T) {
	delta := mask.Mask(0b1)
	cands := []candidate{
		{id: 3, point: []float32{1}},
		{id: 3, point: []float32{1}}, // a shard answer delivered twice
	}
	got := mergeSkyline(cands, delta, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("mergeSkyline = %v, want [3]", got)
	}
}

func TestMergeSkylineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(4)
		n := 1 + rng.Intn(60)
		delta := mask.Mask(1 + rng.Intn(1<<uint(d)-1))
		cands := make([]candidate, n)
		for i := range cands {
			p := make([]float32, d)
			for j := range p {
				p[j] = float32(rng.Intn(5)) // small domain forces ties
			}
			cands[i] = candidate{id: int32(i), point: p}
		}
		got := mergeSkyline(append([]candidate(nil), cands...), delta, nil)
		inGot := map[int32]bool{}
		for _, id := range got {
			inGot[id] = true
		}
		for i, c := range cands {
			dominated := false
			for j, q := range cands {
				if i != j && dom.DominatesIn(q.point, c.point, delta) {
					dominated = true
					break
				}
			}
			if dominated == inGot[c.id] {
				t.Fatalf("trial %d: id %d dominated=%v but in merge output=%v",
					trial, c.id, dominated, inGot[c.id])
			}
		}
	}
}
