// Cluster differential tests: a K-shard scatter-gather cluster must answer
// every subspace query with exactly the ids the single-node Build
// materialises — across distributions, dimensionalities, shard counts,
// partition modes, and both the S_δ and S⁺_δ shard protocols.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"skycube"
	"skycube/internal/mask"
)

// assertClusterMatchesSingleNode queries every non-empty subspace through
// the coordinator and compares against the single-node skycube.
func assertClusterMatchesSingleNode(t *testing.T, tc *testCluster, ds *skycube.Dataset) {
	t.Helper()
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatalf("single-node Build: %v", err)
	}
	d := ds.Dims()
	for delta := mask.Mask(1); delta < 1<<uint(d); delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		if got.Partial {
			t.Fatalf("subspace %d: partial response from a healthy cluster", delta)
		}
		want := cube.Skyline(skycube.Subspace(delta))
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d: cluster ids %v != single-node %v (candidates %d)",
				delta, got.IDs, want, got.Candidates)
		}
	}
}

func TestDifferentialClusterGrid(t *testing.T) {
	dists := []struct {
		name string
		dist skycube.Distribution
	}{
		{"correlated", skycube.Correlated},
		{"independent", skycube.Independent},
		{"anticorrelated", skycube.Anticorrelated},
	}
	maxD := 6
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		maxD = 4
		shardCounts = []int{1, 2}
	}
	for _, dc := range dists {
		for d := 2; d <= maxD; d++ {
			n := 400
			ds := skycube.GenerateSynthetic(dc.dist, n, d, int64(31*d)+7)
			for _, k := range shardCounts {
				t.Run(fmt.Sprintf("%s/d%d/k%d", dc.name, d, k), func(t *testing.T) {
					tc := newTestCluster(t, ds, k, 1, skycube.RoundRobinPartition, CoordinatorOptions{})
					assertClusterMatchesSingleNode(t, tc, ds)
				})
			}
		}
	}
}

func TestDifferentialClusterRangePartition(t *testing.T) {
	for d := 2; d <= 4; d++ {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("d%d/k%d", d, k), func(t *testing.T) {
				ds := skycube.GenerateSynthetic(skycube.Independent, 300, d, int64(d))
				tc := newTestCluster(t, ds, k, 1, skycube.RangePartition, CoordinatorOptions{})
				assertClusterMatchesSingleNode(t, tc, ds)
			})
		}
	}
}

func TestDifferentialClusterExtendedMode(t *testing.T) {
	// The S⁺_δ shard protocol must merge to the identical global skyline.
	for _, dist := range []skycube.Distribution{skycube.Independent, skycube.Anticorrelated} {
		d := 4
		ds := skycube.GenerateSynthetic(dist, 300, d, 17)
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, CoordinatorOptions{Extended: true})
			assertClusterMatchesSingleNode(t, tc, ds)
		})
	}
}

func TestDifferentialClusterWithReplication(t *testing.T) {
	// R=2 with hedging enabled: replication must not perturb results.
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 300, 4, 23)
	tc := newTestCluster(t, ds, 2, 2, skycube.RoundRobinPartition, CoordinatorOptions{})
	assertClusterMatchesSingleNode(t, tc, ds)
}

func TestDifferentialClusterAfterMutations(t *testing.T) {
	// Route a mixed insert+delete workload through the coordinator, then
	// re-check every subspace against a single-node build of the same
	// logical dataset.
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 29)
	k := 2
	tc := newTestCluster(t, ds, k, 2, skycube.RoundRobinPartition, CoordinatorOptions{})

	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	ins := [][]float32{{0.02, 0.9, 0.4}, {0.9, 0.02, 0.6}, {0.3, 0.3, 0.01}}
	var iresp insertResponse
	mustUnmarshal(t, postJSON(t, tc.coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &iresp)
	for i, id := range iresp.IDs {
		points[id] = ins[i]
	}
	del := []int32{0, 3, 17, 42}
	postJSON(t, tc.coord, "/delete", deleteRequest{IDs: del}, http.StatusOK)
	for _, id := range del {
		delete(points, id)
	}
	postJSON(t, tc.coord, "/flush", struct{}{}, http.StatusOK)

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		want := bruteSkyline(points, delta)
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after mutations: ids %v, want %v", delta, got.IDs, want)
		}
	}
	// Replicas must have stayed identical: ask each replica of each shard
	// for the full-space cuboid and compare.
	for s, reps := range tc.servers {
		var first []int32
		for rep, srv := range reps {
			resp, err := http.Get(srv.URL + "/shard/cuboid?subspace=7")
			if err != nil {
				t.Fatal(err)
			}
			var cr cuboidResponse
			decodeBody(t, resp, &cr)
			if rep == 0 {
				first = cr.IDs
			} else if !equalIDs(first, cr.IDs) {
				t.Fatalf("shard %d replicas diverged: %v vs %v", s, first, cr.IDs)
			}
		}
	}
}

func mustUnmarshal(t *testing.T, b []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
