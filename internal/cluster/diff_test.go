// Cluster differential tests: a K-shard scatter-gather cluster must answer
// every subspace query with exactly the ids the single-node Build
// materialises — across distributions, dimensionalities, shard counts,
// partition modes, and both the S_δ and S⁺_δ shard protocols.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"skycube"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// assertClusterMatchesSingleNode queries every non-empty subspace through
// the coordinator and compares against the single-node skycube.
func assertClusterMatchesSingleNode(t *testing.T, tc *testCluster, ds *skycube.Dataset) {
	t.Helper()
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatalf("single-node Build: %v", err)
	}
	d := ds.Dims()
	for delta := mask.Mask(1); delta < 1<<uint(d); delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		if got.Partial {
			t.Fatalf("subspace %d: partial response from a healthy cluster", delta)
		}
		want := cube.Skyline(skycube.Subspace(delta))
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d: cluster ids %v != single-node %v (candidates %d)",
				delta, got.IDs, want, got.Candidates)
		}
	}
}

func TestDifferentialClusterGrid(t *testing.T) {
	dists := []struct {
		name string
		dist skycube.Distribution
	}{
		{"correlated", skycube.Correlated},
		{"independent", skycube.Independent},
		{"anticorrelated", skycube.Anticorrelated},
	}
	maxD := 6
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		maxD = 4
		shardCounts = []int{1, 2}
	}
	for _, dc := range dists {
		for d := 2; d <= maxD; d++ {
			n := 400
			ds := skycube.GenerateSynthetic(dc.dist, n, d, int64(31*d)+7)
			for _, k := range shardCounts {
				t.Run(fmt.Sprintf("%s/d%d/k%d", dc.name, d, k), func(t *testing.T) {
					tc := newTestCluster(t, ds, k, 1, skycube.RoundRobinPartition, CoordinatorOptions{})
					assertClusterMatchesSingleNode(t, tc, ds)
				})
			}
		}
	}
}

func TestDifferentialClusterRangePartition(t *testing.T) {
	for d := 2; d <= 4; d++ {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("d%d/k%d", d, k), func(t *testing.T) {
				ds := skycube.GenerateSynthetic(skycube.Independent, 300, d, int64(d))
				tc := newTestCluster(t, ds, k, 1, skycube.RangePartition, CoordinatorOptions{})
				assertClusterMatchesSingleNode(t, tc, ds)
			})
		}
	}
}

func TestDifferentialClusterExtendedMode(t *testing.T) {
	// The S⁺_δ shard protocol must merge to the identical global skyline.
	for _, dist := range []skycube.Distribution{skycube.Independent, skycube.Anticorrelated} {
		d := 4
		ds := skycube.GenerateSynthetic(dist, 300, d, 17)
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, CoordinatorOptions{Extended: true})
			assertClusterMatchesSingleNode(t, tc, ds)
		})
	}
}

func TestDifferentialClusterWithReplication(t *testing.T) {
	// R=2 with hedging enabled: replication must not perturb results.
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 300, 4, 23)
	tc := newTestCluster(t, ds, 2, 2, skycube.RoundRobinPartition, CoordinatorOptions{})
	assertClusterMatchesSingleNode(t, tc, ds)
}

func TestDifferentialClusterAfterMutations(t *testing.T) {
	// Route a mixed insert+delete workload through the coordinator, then
	// re-check every subspace against a single-node build of the same
	// logical dataset.
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 29)
	k := 2
	tc := newTestCluster(t, ds, k, 2, skycube.RoundRobinPartition, CoordinatorOptions{})

	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	ins := [][]float32{{0.02, 0.9, 0.4}, {0.9, 0.02, 0.6}, {0.3, 0.3, 0.01}}
	var iresp insertResponse
	mustUnmarshal(t, postJSON(t, tc.coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &iresp)
	for i, id := range iresp.IDs {
		points[id] = ins[i]
	}
	del := []int32{0, 3, 17, 42}
	postJSON(t, tc.coord, "/delete", deleteRequest{IDs: del}, http.StatusOK)
	for _, id := range del {
		delete(points, id)
	}
	postJSON(t, tc.coord, "/flush", struct{}{}, http.StatusOK)

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		want := bruteSkyline(points, delta)
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after mutations: ids %v, want %v", delta, got.IDs, want)
		}
	}
	// Replicas must have stayed identical: ask each replica of each shard
	// for the full-space cuboid and compare.
	for s, reps := range tc.servers {
		var first []int32
		for rep, srv := range reps {
			resp, err := http.Get(srv.URL + "/shard/cuboid?subspace=7")
			if err != nil {
				t.Fatal(err)
			}
			var cr cuboidResponse
			decodeBody(t, resp, &cr)
			if rep == 0 {
				first = cr.IDs
			} else if !equalIDs(first, cr.IDs) {
				t.Fatalf("shard %d replicas diverged: %v vs %v", s, first, cr.IDs)
			}
		}
	}
}

func mustUnmarshal(t *testing.T, b []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// newSecondCoordinator stands up another coordinator over the same shard
// servers as tc — the pruned/unpruned byte-identity tests compare two
// independent gather paths against identical shard state.
func newSecondCoordinator(t *testing.T, tc *testCluster, copt CoordinatorOptions) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(tc.specs, copt)
	if err != nil {
		t.Fatalf("NewCoordinator (second): %v", err)
	}
	return coord
}

// queryRawSkyline issues GET /skyline and returns the raw response body.
func queryRawSkyline(t *testing.T, h http.Handler, delta mask.Mask, wantStatus int) []byte {
	t.Helper()
	var dims []string
	for d := 0; d < 32; d++ {
		if delta&mask.Bit(d) != 0 {
			dims = append(dims, fmt.Sprint(d))
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims="+strings.Join(dims, ","), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET /skyline subspace %b: status %d, want %d: %s", delta, rec.Code, wantStatus, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// oracleDataset returns the dataset whose single-node skyline uses the same
// global ids the cluster serves: the original dataset for round-robin
// (id = original row), the shard concatenation for positional modes
// (grid/angular permute rows; range preserves order, so concatenation is a
// no-op there).
func oracleDataset(t *testing.T, tc *testCluster, mode skycube.PartitionMode, ds *skycube.Dataset) *skycube.Dataset {
	t.Helper()
	if !mode.Positional() {
		return ds
	}
	rows := make([][]float32, 0, ds.Len())
	for _, part := range tc.parts {
		for i := 0; i < part.Len(); i++ {
			rows = append(rows, part.Point(i))
		}
	}
	oracle, err := skycube.DatasetFromRows(rows)
	if err != nil {
		t.Fatalf("oracle concat: %v", err)
	}
	return oracle
}

// metricTotal sums every sample of the named metric family in reg.
func metricTotal(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse metric line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestDifferentialPrunedVsUnprunedMatrix is the merge path's acceptance
// wall: across partition mode × shard count × protocol (S_δ/S⁺_δ) ×
// pre-filter setting, the pruned coordinator's /skyline response must be
// byte-identical to the unpruned coordinator's over the same shards, and
// both must match a single-node build. The matrix runs on anticorrelated
// data — the distribution with the largest local skylines, i.e. pruning's
// hardest case for staying exact.
func TestDifferentialPrunedVsUnprunedMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode skycube.PartitionMode
	}{
		{"roundrobin", skycube.RoundRobinPartition},
		{"range", skycube.RangePartition},
		{"grid", skycube.GridPartition},
		{"angular", skycube.AngularPartition},
	}
	shardCounts := []int{1, 2, 4}
	extendeds := []bool{false, true}
	preKs := []int{0, 8}
	if testing.Short() {
		modes = modes[:2:2]
		modes = append(modes, struct {
			name string
			mode skycube.PartitionMode
		}{"grid", skycube.GridPartition})
		shardCounts = []int{2}
		extendeds = []bool{false}
	}
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 240, 4, 41)
	reg := obs.NewRegistry()
	for _, mc := range modes {
		for _, k := range shardCounts {
			for _, ext := range extendeds {
				for _, preK := range preKs {
					t.Run(fmt.Sprintf("%s/k%d/ext%v/pre%d", mc.name, k, ext, preK), func(t *testing.T) {
						tc := newTestCluster(t, ds, k, 1, mc.mode, CoordinatorOptions{Extended: ext})
						pruned := newSecondCoordinator(t, tc, CoordinatorOptions{
							Extended:           ext,
							Prune:              true,
							PreFilterK:         preK,
							PreFilterMinShards: 2,
							Metrics:            reg,
						})
						oracle := oracleDataset(t, tc, mc.mode, ds)
						cube, _, err := skycube.Build(oracle, skycube.Options{Threads: 2})
						if err != nil {
							t.Fatalf("single-node Build: %v", err)
						}
						for delta := mask.Mask(1); delta < 1<<4; delta++ {
							plain := queryRawSkyline(t, tc.coord, delta, http.StatusOK)
							fast := queryRawSkyline(t, pruned, delta, http.StatusOK)
							if !bytes.Equal(plain, fast) {
								t.Fatalf("subspace %b: pruned body differs from unpruned:\n  pruned:   %s\n  unpruned: %s",
									delta, fast, plain)
							}
							var resp skylineResponse
							mustUnmarshal(t, fast, &resp)
							want := cube.Skyline(skycube.Subspace(delta))
							if !equalIDs(resp.IDs, want) {
								t.Fatalf("subspace %b: cluster ids %v != single-node %v", delta, resp.IDs, want)
							}
						}
					})
				}
			}
		}
	}
	// The matrix must not have passed vacuously: pruning really engaged on
	// the multi-shard cells, and never by giving up on a healthy cluster.
	if pruned := metricTotal(t, reg, "skycube_cluster_pruned_points_total"); pruned == 0 {
		t.Fatal("matrix passed but no points were ever pruned — the pruned path did not engage")
	}
	if fb := metricTotal(t, reg, "skycube_cluster_prune_fallbacks_total"); fb != 0 {
		t.Fatalf("pruned gather fell back %v times on healthy clusters", fb)
	}
}

// TestDifferentialPrunedAfterMutationsAndEpochRoll routes writes through the
// cluster and re-checks byte-identity at the new epoch vector: the pruned
// path's prelude/gather epoch validation must keep it exact across flushes,
// not just on static data.
func TestDifferentialPrunedAfterMutationsAndEpochRoll(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 43)
	tc := newTestCluster(t, ds, 3, 1, skycube.RoundRobinPartition, CoordinatorOptions{})
	reg := obs.NewRegistry()
	pruned := newSecondCoordinator(t, tc, CoordinatorOptions{
		Prune:              true,
		PreFilterK:         4,
		PreFilterMinShards: 2,
		Metrics:            reg,
	})

	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		plain := queryRawSkyline(t, tc.coord, delta, http.StatusOK)
		fast := queryRawSkyline(t, pruned, delta, http.StatusOK)
		if !bytes.Equal(plain, fast) {
			t.Fatalf("subspace %b pre-mutation: pruned body differs from unpruned", delta)
		}
	}

	ins := [][]float32{{0.01, 0.95, 0.4}, {0.95, 0.01, 0.6}, {0.4, 0.4, 0.005}}
	var iresp insertResponse
	mustUnmarshal(t, postJSON(t, tc.coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &iresp)
	for i, id := range iresp.IDs {
		points[id] = ins[i]
	}
	del := []int32{1, 5, 9, 33}
	postJSON(t, tc.coord, "/delete", deleteRequest{IDs: del}, http.StatusOK)
	for _, id := range del {
		delete(points, id)
	}
	// Flush through both coordinators: shard epochs advance once per flush,
	// and each coordinator's own write generation must roll so neither
	// serves its pre-mutation fast-path entry.
	postJSON(t, tc.coord, "/flush", struct{}{}, http.StatusOK)
	postJSON(t, pruned, "/flush", struct{}{}, http.StatusOK)

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		plain := queryRawSkyline(t, tc.coord, delta, http.StatusOK)
		fast := queryRawSkyline(t, pruned, delta, http.StatusOK)
		if !bytes.Equal(plain, fast) {
			t.Fatalf("subspace %b post-mutation: pruned body differs from unpruned:\n  pruned:   %s\n  unpruned: %s",
				delta, fast, plain)
		}
		var resp skylineResponse
		mustUnmarshal(t, fast, &resp)
		want := bruteSkyline(points, delta)
		if !equalIDs(resp.IDs, want) {
			t.Fatalf("subspace %b post-mutation: ids %v, want %v", delta, resp.IDs, want)
		}
	}
	if fb := metricTotal(t, reg, "skycube_cluster_prune_fallbacks_total"); fb != 0 {
		t.Fatalf("pruned gather fell back %v times with no concurrent writers", fb)
	}
}
