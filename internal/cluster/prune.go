// Communication-efficient gather: source-side region pruning and the
// representative-point pre-filter.
//
// The unpruned scatter-gather ships every shard-local skyline member to the
// coordinator and lets one final dominance filter remove the impostors. Most
// of those bytes are wasted: a point dominated by *any* actual point of
// another shard can never survive the merge. This file gives the cluster
// three ways to prove that before the bytes move:
//
//   - Region corners (always on with Prune): the prelude round fetches each
//     shard's per-cuboid bounding box (min/max corner over its local S_δ)
//     plus its count and epoch. A shard whose whole region is dominated by
//     another non-empty shard's region is skipped outright; every other
//     shard receives the foreign max corners as filter points and drops the
//     local members they dominate before replying.
//
//   - Representative points (PreFilterK > 0): the prelude additionally asks
//     each shard for its k best points by sum-of-coordinates in the queried
//     subspace. Reps are actual points, so they prune far more than corners
//     on datasets whose shard boxes overlap.
//
//   - Arrival-order late skips: as cuboid replies stream in, their actual
//     points are tested against the min corners of still-pending shards; a
//     pending shard whose entire region is dominated by an arrived point is
//     cancelled mid-flight.
//
// Soundness rests on every filter point witnessing an actual stored point:
// a rep IS a point, and a non-empty region's max corner is dominated-by
// implies dominated-by-every-region-point (internal/dom/region.go). A shard
// never receives its own corner or reps — they can never Definition-1
// dominate its own result members (the corner is componentwise ≥ each of
// them; reps are members, and members are mutually undominated), so
// shipping them back is pure waste.
//
// Exactness: the pruned merge is byte-identical to the unpruned merge at
// the prelude's epoch vector. Dropped points are exactly points the final
// dominance filter would discard (a dominated point's minimal dominator is
// globally undominated, hence locally undominated, hence shipped — the
// transitivity argument of the package comment), and the response's
// Candidates field counts *considered* points (shipped + filtered +
// skipped), which both paths agree equals Σ|local S_δ|. The pruned path
// validates that every gathered shard still serves its prelude epoch and
// falls back to the plain gather on any prelude failure, gather failure or
// epoch mismatch — degraded is unpruned or an honest 206, never silently
// wrong.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// DefaultPreFilterMinShards is the shard count below which the
// representative pre-filter is skipped automatically: with very few shards
// the rep broadcast costs about what it saves.
const DefaultPreFilterMinShards = 3

// maxFilterPoints caps how many filter points a shard accepts in one cuboid
// request (the coordinator stays far below this; the cap bounds adversarial
// query cost).
const maxFilterPoints = 4096

// encodePointList renders points as "v1,v2;v1,v2" with strconv's shortest
// round-trip float32 formatting. The result goes into a URL query parameter
// — callers must url.QueryEscape it ('g' formatting can emit '+' in
// exponents, which would decode as a space).
func encodePointList(pts [][]float32) string {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(';')
		}
		for j, v := range p {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32))
		}
	}
	return sb.String()
}

// decodePointList parses encodePointList's format, requiring every point to
// have exactly dims finite coordinates.
func decodePointList(s string, dims int) ([][]float32, error) {
	if s == "" {
		return nil, nil
	}
	groups := strings.Split(s, ";")
	if len(groups) > maxFilterPoints {
		return nil, fmt.Errorf("filter has %d points (max %d)", len(groups), maxFilterPoints)
	}
	pts := make([][]float32, len(groups))
	for i, g := range groups {
		fields := strings.Split(g, ",")
		if len(fields) != dims {
			return nil, fmt.Errorf("filter point %d has %d coordinates, want %d", i, len(fields), dims)
		}
		p := make([]float32, dims)
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("filter point %d coordinate %d: %v", i, j, err)
			}
			p[j] = float32(v)
		}
		pts[i] = p
	}
	return pts, nil
}

// estPointBytes estimates the wire cost of one candidate in a cuboid
// response body (its id plus d JSON-encoded float32s) — the unit the
// bytes-saved counter is credited in.
func estPointBytes(d int) int { return 8 + 14*d }

// dominatedByAny reports whether any filter point dominates p in δ. Filter
// points are dominance witnesses (actual points or non-empty-region max
// corners), so a true result proves p cannot be in the global skyline.
func dominatedByAny(filter [][]float32, p []float32, delta mask.Mask) bool {
	for _, f := range filter {
		if dom.DominatesIn(f, p, delta) {
			return true
		}
	}
	return false
}

// filterBlockMin is the member count below which the shard-side filter keeps
// the scalar per-member loop.
const filterBlockMin = 64

// filterMembers drops the members of local that any filter point dominates
// in δ, returning the survivors (in local's order) and the drop count. The
// block path packs the members into SoA blocks and crosses off each filter
// point's victims 64 lanes at a time with DominatedBitmap; both paths keep
// exactly the same members in the same order.
func filterMembers(local []int32, point func(int32) []float32, filter [][]float32, delta mask.Mask) ([]int32, int) {
	if dom.BlocksEnabled() && len(local) >= filterBlockMin {
		return filterMembersBlocks(local, point, filter, delta)
	}
	if dom.BlocksEnabled() {
		t := dom.KernelTally{Fallbacks: 1}
		t.Flush()
	}
	kept := make([]int32, 0, len(local))
	filtered := 0
	for _, row := range local {
		if dominatedByAny(filter, point(row), delta) {
			filtered++
			continue
		}
		kept = append(kept, row)
	}
	return kept, filtered
}

// filterMembersBlocks is the block-kernel form of filterMembers. Members go
// into blocks in local order (sums are irrelevant here — no stop points, the
// scan is witness-outer), each filter point marks its victims with one
// DominatedBitmap sweep per block, and surviving lanes come back out in
// append order, so the kept slice is byte-identical to the scalar loop's.
func filterMembersBlocks(local []int32, point func(int32) []float32, filter [][]float32, delta mask.Mask) ([]int32, int) {
	dims := mask.Dims(delta)
	bs := data.GetBlockSet(len(dims), data.DefaultBlockSize)
	defer data.PutBlockSet(bs)
	pq := make([]float32, len(dims))
	for _, row := range local {
		data.ProjectInto(pq, point(row), dims)
		bs.Append(pq, row, 0)
	}

	var tally dom.KernelTally
	words := (data.DefaultBlockSize + 63) / 64
	drop := make([]uint64, words)
	sweep := make([]uint64, words)
	kept := make([]int32, 0, len(local))
	for _, b := range bs.Blocks {
		bw := (b.N + 63) >> 6
		for w := 0; w < bw; w++ {
			drop[w] = 0
		}
		for _, f := range filter {
			data.ProjectInto(pq, f, dims)
			dom.DominatedBitmap(b, pq, false, sweep[:bw], &tally)
			for w := 0; w < bw; w++ {
				drop[w] |= sweep[w]
			}
		}
		for lane := 0; lane < b.N; lane++ {
			if drop[lane>>6]&(1<<uint(lane&63)) == 0 {
				kept = append(kept, b.Rows[lane])
			}
		}
	}
	tally.Flush()
	return kept, len(local) - len(kept)
}

// shardMeta is one shard's prelude contribution: its local cuboid size and
// epoch, the bounding box of its local result, and its representative
// points. The zero region (nil corners) means the shard's cuboid is empty.
type shardMeta struct {
	count  int
	epoch  uint64
	region dom.Region
	reps   [][]float32
}

// upfrontSkips decides, from prelude metadata alone, which shards need not
// be gathered at all: empty shards, and shards whose entire region is
// dominated by another shard's region or by another shard's representative
// point. The skip relation cannot cycle — every witness w_j of "skip i"
// satisfies min_j ≤ w_j and w_j ≺ min_i, so a cycle would chain into a
// strict self-domination — hence at least one non-empty shard always
// survives.
func upfrontSkips(metas []shardMeta, delta mask.Mask) []bool {
	skip := make([]bool, len(metas))
	for i := range metas {
		if metas[i].count == 0 {
			skip[i] = true
			continue
		}
		for j := range metas {
			if j == i || metas[j].count == 0 {
				continue
			}
			if dom.RegionDominatesRegion(metas[j].region, metas[i].region, delta) {
				skip[i] = true
				break
			}
			dominated := false
			for _, rep := range metas[j].reps {
				if dom.PointDominatesRegion(rep, metas[i].region, delta) {
					dominated = true
					break
				}
			}
			if dominated {
				skip[i] = true
				break
			}
		}
	}
	return skip
}

// buildFilter assembles destination shard self's filter set: every OTHER
// non-empty shard's max corner plus its representative points. The
// destination's own corner and reps are excluded: they cannot prune any of
// its own result members (the corner is componentwise ≥ each member, and
// members never dominate each other), so sending them is wasted bytes and
// wasted dominance tests.
func buildFilter(metas []shardMeta, self int) [][]float32 {
	var out [][]float32
	for j := range metas {
		if j == self || metas[j].count == 0 {
			continue
		}
		out = append(out, metas[j].region.Max)
		out = append(out, metas[j].reps...)
	}
	return out
}

// pruneFallback records the pruned gather abandoning its prelude.
func (c *Coordinator) pruneFallback(rec *obs.ReqRecord, reason string, err error) {
	c.cm.PruneFallback(reason)
	ev := obs.Event{Kind: obs.EvPruneFallback, Detail: reason, Start: rec.Since()}
	if err != nil {
		ev.Err = err.Error()
	}
	rec.Event(ev)
	if c.opt.Logger != nil {
		c.opt.Logger.Printf("cluster: pruned gather fell back (%s): %v", reason, err)
	}
}

// dimCount returns the learned cluster dimensionality (0 until Refresh).
func (c *Coordinator) dimCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dims
}

// gatherForQuery is the gather used by computeSkyline: the pruned path when
// enabled (falling back to the plain gather on any prelude/epoch/transport
// trouble), the plain gather otherwise. The fourth result is the considered
// candidate count — shipped + source-filtered + skipped — which the response
// reports as Candidates; on the unpruned path it equals len(cands). The
// fifth result reports a stale-map 409 from any shard: the pinned map's
// generation is behind a cutover the shards already crossed, so the caller
// must abandon this gather and retry on the current map. A stale pruned
// prelude/gather simply falls back to the plain gather, which sees the same
// 409 and raises the flag.
func (c *Coordinator) gatherForQuery(ctx context.Context, m *shardMap, delta mask.Mask, scratch *mergeScratch) ([]candidate, map[string]uint64, []string, int, bool) {
	if c.opt.Prune && len(m.shards) > 1 {
		if cands, epochs, considered, ok := c.gatherPruned(ctx, m, delta, scratch); ok {
			return cands, epochs, nil, considered, false
		}
	}
	cands, epochs, failed, stale := c.gather(ctx, m, delta, scratch)
	return cands, epochs, failed, len(cands), stale
}

// gatherPruned runs the pruned gather: prelude (corners + reps), upfront
// region skips, filtered cuboid fan-out with arrival-order late skips, and
// per-shard epoch validation. ok=false means the caller must fall back to
// the plain gather; the reason has already been recorded.
func (c *Coordinator) gatherPruned(ctx context.Context, m *shardMap, delta mask.Mask, scratch *mergeScratch) ([]candidate, map[string]uint64, int, bool) {
	rec := obs.RecordFrom(ctx)
	n := len(m.shards)
	preK := c.opt.PreFilterK
	if n < c.opt.PreFilterMinShards {
		preK = 0
	}
	metaPath := fmt.Sprintf("/shard/skymeta?subspace=%d", uint32(delta))
	if c.opt.Extended {
		metaPath += "&extended=true"
	}
	if preK > 0 {
		metaPath += "&k=" + strconv.Itoa(preK)
	}

	// Prelude: every shard's corners (and reps) — tiny bodies, full
	// hedge/retry machinery. Any failure aborts pruning: a missing region
	// means missing witnesses, and guessing is how wrong answers happen.
	preludeStart := rec.Since()
	metas := make([]shardMeta, n)
	type metaResult struct {
		idx int
		err error
	}
	mch := make(chan metaResult, n)
	for i, g := range m.shards {
		go func(i int, g *shardGroup) {
			body, err := c.client.get(ctx, g, metaPath, m.gen)
			if err == nil {
				var sm skymetaResponse
				if err = json.Unmarshal(body, &sm); err == nil {
					metas[i] = shardMeta{count: sm.Count, epoch: sm.Epoch,
						region: dom.Region{Min: sm.Min, Max: sm.Max}, reps: sm.Reps}
				}
			}
			mch <- metaResult{i, err}
		}(i, g)
	}
	var preludeErr error
	for range m.shards {
		if r := <-mch; r.err != nil && preludeErr == nil {
			preludeErr = fmt.Errorf("shard %s skymeta: %w", m.shards[r.idx].name, r.err)
		}
	}
	if preludeErr != nil {
		c.pruneFallback(rec, "prelude_error", preludeErr)
		return nil, nil, 0, false
	}
	if preK > 0 {
		totalReps := 0
		for i := range metas {
			totalReps += len(metas[i].reps)
		}
		c.cm.Prefilter(totalReps)
		rec.Event(obs.Event{Kind: obs.EvPrefilter, Start: preludeStart,
			Dur: rec.Since() - preludeStart, N: int64(totalReps)})
	}

	skipped := upfrontSkips(metas, delta)

	// Filtered fan-out to the surviving shards, each under its own
	// cancellable context so a late skip can abandon the request mid-flight
	// (the client releases breaker probes on cancellation, so our own
	// cancels never look like replica failures).
	basePath := fmt.Sprintf("/shard/cuboid?subspace=%d", uint32(delta))
	if c.opt.Extended {
		basePath += "&extended=true"
	}
	type prResult struct {
		idx        int
		resp       *cuboidResponse
		bodyLen    int
		err        error
		began, dur time.Duration
		wall       time.Duration
	}
	ch := make(chan prResult, n)
	cancels := make([]context.CancelFunc, n)
	defer func() {
		for _, cf := range cancels {
			if cf != nil {
				cf()
			}
		}
	}()
	active := 0
	for i, g := range m.shards {
		if skipped[i] {
			continue
		}
		path := basePath
		if f := buildFilter(metas, i); len(f) > 0 {
			path += "&filter=" + url.QueryEscape(encodePointList(f))
		}
		cctx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		active++
		go func(i int, g *shardGroup, path string, cctx context.Context) {
			began := rec.Since()
			start := time.Now()
			body, err := c.client.get(cctx, g, path, m.gen)
			res := prResult{idx: i, began: began, wall: time.Since(start), err: err}
			if err == nil {
				var resp cuboidResponse
				if uerr := json.Unmarshal(body, &resp); uerr != nil {
					res.err = uerr
				} else {
					res.resp = &resp
					res.bodyLen = len(body)
				}
			}
			res.dur = rec.Since() - began
			ch <- res
		}(i, g, path, cctx)
	}

	d := c.dimCount()
	responses := make([]*cuboidResponse, n)
	lateSkipped := make([]bool, n)
	var fallbackReason string
	var fallbackErr error
	for got := 0; got < active; got++ {
		r := <-ch
		if lateSkipped[r.idx] {
			// Either our cancellation surfacing as an error, or the response
			// racing the cancel: the shard is skipped either way, and the
			// prelude already accounts for it.
			continue
		}
		if r.err != nil {
			fallbackReason, fallbackErr = "gather_error",
				fmt.Errorf("shard %s: %w", m.shards[r.idx].name, r.err)
			break
		}
		if r.resp.Epoch != metas[r.idx].epoch {
			// The shard advanced between prelude and gather: the filter
			// points other shards pruned with may reference points this
			// epoch no longer holds. Only the unpruned path is exact now.
			fallbackReason = "epoch_mismatch"
			fallbackErr = fmt.Errorf("shard %s answered at epoch %d, prelude saw %d",
				m.shards[r.idx].name, r.resp.Epoch, metas[r.idx].epoch)
			break
		}
		g := m.shards[r.idx]
		c.cm.Fanout(g.name, r.wall, true)
		rec.Event(obs.Event{Kind: obs.EvShardResult, Shard: g.name,
			Start: r.began, Dur: r.dur,
			N: int64(len(r.resp.IDs)), Bytes: int64(r.bodyLen), Epoch: r.resp.Epoch})
		if r.resp.Filtered > 0 {
			c.cm.Pruned(g.name, len(r.resp.IDs)+r.resp.Filtered, r.resp.Filtered,
				r.resp.Filtered*estPointBytes(d))
			rec.Event(obs.Event{Kind: obs.EvPrune, Shard: g.name,
				Start: rec.Since(), N: int64(r.resp.Filtered)})
		}
		responses[r.idx] = r.resp
		// Arrival-order late skips: an arrived actual point dominating a
		// pending shard's min corner dominates that shard's every result
		// point — stop asking.
		for j := range m.shards {
			if j == r.idx || skipped[j] || lateSkipped[j] || responses[j] != nil {
				continue
			}
			for _, p := range r.resp.Points {
				if dom.PointDominatesRegion(p, metas[j].region, delta) {
					lateSkipped[j] = true
					cancels[j]()
					break
				}
			}
		}
	}
	if fallbackReason != "" {
		c.pruneFallback(rec, fallbackReason, fallbackErr)
		return nil, nil, 0, false
	}

	// Assemble: candidates from gathered shards; epochs and considered
	// counts cover every shard (skipped ones at their prelude epoch, which
	// gathered epochs were just validated against — the whole response
	// corresponds to the prelude's epoch vector).
	epochs := make(map[string]uint64, n)
	considered := 0
	total := 0
	for i := range m.shards {
		if responses[i] != nil {
			total += len(responses[i].IDs)
		}
	}
	if cap(scratch.cands) < total {
		scratch.cands = make([]candidate, 0, total)
	}
	cands := scratch.cands[:0]
	for i, g := range m.shards {
		if resp := responses[i]; resp != nil {
			epochs[g.name] = resp.Epoch
			considered += len(resp.IDs) + resp.Filtered
			for k, id := range resp.IDs {
				cands = append(cands, candidate{id: id, point: resp.Points[k]})
			}
			continue
		}
		epochs[g.name] = metas[i].epoch
		considered += metas[i].count
		detail := "upfront"
		if lateSkipped[i] {
			detail = "late"
		}
		c.cm.ShardSkipped(g.name, metas[i].count, metas[i].count*estPointBytes(d))
		rec.Event(obs.Event{Kind: obs.EvPruneSkip, Shard: g.name, Detail: detail,
			Start: rec.Since(), N: int64(metas[i].count), Epoch: metas[i].epoch})
	}
	scratch.cands = cands
	return cands, epochs, considered, true
}
