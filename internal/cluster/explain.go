package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"skycube/internal/mask"
	"skycube/internal/obs"
)

// ?explain=1 on the coordinator's /skyline: answer the query AND return a
// JSON timing breakdown of the fan-out instead of the skyline payload —
// per-replica attempt latencies, which attempt was the hedge and whether it
// won, retries, breaker rejections, per-shard candidate counts and response
// bytes, merge and encode durations, and the cache disposition. The
// breakdown is an interpretation of the same typed events the trace ring
// records (one recording mechanism, two renderings), so explain output and
// /debug/requests never disagree.
//
// Explain always bypasses the coordinator's generation-keyed fast path and
// is itself never memoized: its purpose is to observe the real scatter —
// hedges, retries, breakers — not a cache probe. The epoch-vector merge
// memo stays active and is reported honestly as "hit-epoch-vector" (the
// merge and encode stages are then absent).

// explainResponse is the ?explain=1 payload.
type explainResponse struct {
	TraceID string `json:"trace_id"`
	Status  int    `json:"status"`
	Dims    []int  `json:"dims"`
	// DurNS is the end-to-end latency of this query as measured around the
	// whole fan-out; every stage below nests inside it.
	DurNS int64 `json:"dur_ns"`
	// Cache is the coordinator-cache disposition: "bypass" (explain skips
	// the generation fast path), or "hit-epoch-vector" when the merge memo
	// proved the shards unchanged and merge/encode were skipped.
	Cache        string   `json:"cache"`
	Count        int      `json:"count"`
	Candidates   int64    `json:"candidates"`
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failed_shards,omitempty"`
	// Pruned is the total candidate points that never crossed the wire
	// (source-side filtered plus skipped-shard counts); SkippedShards lists
	// shards whose cuboid was never requested; PruneFallback names the
	// reason when a pruned gather abandoned its prelude and re-ran plain.
	Pruned        int64            `json:"pruned,omitempty"`
	SkippedShards []string         `json:"skipped_shards,omitempty"`
	PruneFallback string           `json:"prune_fallback,omitempty"`
	Prefilter     *explainStage    `json:"prefilter,omitempty"`
	Shards        []explainShard   `json:"shards"`
	Merge         *explainStage    `json:"merge,omitempty"`
	Encode        *explainStage    `json:"encode,omitempty"`
	Attempts      []explainAttempt `json:"attempts"`
}

// explainShard summarises one shard's contribution to the scatter.
type explainShard struct {
	Shard string `json:"shard"`
	// StartNS/DurNS bound the shard's dispatch-to-accept interval (across
	// hedges and retries).
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Candidates/Bytes are the shard-reported candidate count and the
	// response body size; Epoch is the shard's serving epoch.
	Candidates int64  `json:"candidates"`
	Bytes      int64  `json:"bytes"`
	Epoch      uint64 `json:"epoch,omitempty"`
	Attempts   int    `json:"attempts"`
	Hedges     int    `json:"hedges"`
	Retries    int    `json:"retries"`
	// BreakerRejects counts launch attempts no replica's breaker admitted.
	BreakerRejects int    `json:"breaker_rejects,omitempty"`
	Err            string `json:"error,omitempty"`
	// Pruned counts candidate points of this shard that never crossed the
	// wire; Skipped means the whole cuboid request was elided.
	Pruned  int64 `json:"pruned,omitempty"`
	Skipped bool  `json:"skipped,omitempty"`
}

// explainAttempt is one HTTP attempt against a replica.
type explainAttempt struct {
	Shard   string `json:"shard"`
	Replica string `json:"replica"`
	Hedge   bool   `json:"hedge,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"error,omitempty"`
}

// explainStage is a coordinator-local pipeline stage (merge, encode).
type explainStage struct {
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	N       int64 `json:"n,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
}

// serveExplain runs the real fan-out for the query and writes the timing
// breakdown. rec is never nil here — handleSkyline forces a record for
// explain requests.
func (c *Coordinator) serveExplain(w http.ResponseWriter, r *http.Request, rec *obs.ReqRecord, dims []int, delta mask.Mask, start time.Time) int {
	entry, err := c.computeSkyline(r.Context(), c.curMap(), r.URL.RawQuery, dims, delta)
	status := http.StatusOK
	resp := explainResponse{TraceID: rec.TraceID(), Dims: dims, Cache: "bypass"}
	if err != nil {
		var pe *partialError
		var ge *gatewayError
		switch {
		case errors.Is(err, errStaleMap):
			// Explain bypasses the retry loop (one fan-out, one breakdown);
			// a cutover racing it is simply reported.
			status = http.StatusServiceUnavailable
			http.Error(w, "shard map changed during the explain fan-out; retry", status)
			return status
		case errors.As(err, &pe):
			status = http.StatusPartialContent
			resp.Partial = true
		case errors.As(err, &ge):
			status = http.StatusBadGateway
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return http.StatusInternalServerError
		}
	}
	c.cm.QueryTraced(time.Since(start), resp.Partial, rec.TraceID())
	resp.Status = status
	buildExplain(&resp, rec.Snapshot(), time.Since(start))
	if entry != nil && resp.Count == 0 {
		// Epoch-vector hit: merge and encode were skipped, so the count is
		// not in the event stream — read it off the memoized body.
		var body skylineResponse
		if json.Unmarshal(entry.Body, &body) == nil {
			resp.Count = body.Count
			resp.Candidates = int64(body.Candidates)
		}
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSONStatus(w, status, resp)
	return status
}

// buildExplain folds the record's events into the breakdown. Separated from
// serveExplain (and fed a snapshot) so tests can drive it with a synthetic
// event list.
func buildExplain(resp *explainResponse, snap obs.RecordSnapshot, total time.Duration) {
	resp.DurNS = total.Nanoseconds()
	resp.Attempts = []explainAttempt{}
	byShard := map[string]*explainShard{}
	order := []string{}
	shard := func(name string) *explainShard {
		s, ok := byShard[name]
		if !ok {
			s = &explainShard{Shard: name}
			byShard[name] = s
			order = append(order, name)
		}
		return s
	}
	for _, e := range snap.Events {
		switch e.Kind {
		case obs.EvAttempt:
			s := shard(e.Shard)
			s.Attempts++
			resp.Attempts = append(resp.Attempts, explainAttempt{
				Shard:   e.Shard,
				Replica: e.Replica,
				Hedge:   e.Hedge,
				StartNS: e.Start.Nanoseconds(),
				DurNS:   e.Dur.Nanoseconds(),
				Err:     e.Err,
			})
		case obs.EvHedge:
			shard(e.Shard).Hedges++
		case obs.EvRetry:
			shard(e.Shard).Retries++
		case obs.EvBreakerReject:
			shard(e.Shard).BreakerRejects++
		case obs.EvShardResult:
			s := shard(e.Shard)
			s.StartNS = e.Start.Nanoseconds()
			s.DurNS = e.Dur.Nanoseconds()
			s.Candidates = e.N
			s.Bytes = e.Bytes
			s.Epoch = e.Epoch
			s.Err = e.Err
			if e.Err == "" {
				resp.Candidates += e.N
			} else {
				resp.FailedShards = append(resp.FailedShards, e.Shard)
			}
		case obs.EvCache:
			if e.Detail != "" && e.Detail != "miss" {
				resp.Cache = e.Detail
			}
		case obs.EvPrefilter:
			resp.Prefilter = &explainStage{StartNS: e.Start.Nanoseconds(),
				DurNS: e.Dur.Nanoseconds(), N: e.N}
		case obs.EvPrune:
			if e.Shard != "" {
				shard(e.Shard).Pruned += e.N
			}
			resp.Pruned += e.N
			resp.Candidates += e.N
		case obs.EvPruneSkip:
			s := shard(e.Shard)
			s.Skipped = true
			s.Pruned += e.N
			s.Epoch = e.Epoch
			resp.Pruned += e.N
			resp.Candidates += e.N
			resp.SkippedShards = append(resp.SkippedShards, e.Shard)
		case obs.EvPruneFallback:
			resp.PruneFallback = e.Detail
		case obs.EvMerge:
			resp.Merge = &explainStage{StartNS: e.Start.Nanoseconds(),
				DurNS: e.Dur.Nanoseconds(), N: e.N}
			resp.Count = int(e.N)
		case obs.EvEncode:
			resp.Encode = &explainStage{StartNS: e.Start.Nanoseconds(),
				DurNS: e.Dur.Nanoseconds(), Bytes: e.Bytes}
		}
	}
	sort.Strings(order)
	resp.Shards = make([]explainShard, 0, len(order))
	for _, name := range order {
		resp.Shards = append(resp.Shards, *byShard[name])
	}
	sort.Strings(resp.FailedShards)
	sort.Strings(resp.SkippedShards)
	sort.Slice(resp.Attempts, func(i, j int) bool {
		if resp.Attempts[i].Shard != resp.Attempts[j].Shard {
			return resp.Attempts[i].Shard < resp.Attempts[j].Shard
		}
		return resp.Attempts[i].StartNS < resp.Attempts[j].StartNS
	})
}
