package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"skycube"
	"skycube/internal/server"
)

// TestCoordinatorTreatsRecoveringReplicaAsDown: a replica still behind its
// startup gate answers 503 not-ready; the coordinator must fail over to
// the healthy replica (the 503 feeds the breaker like any replica fault)
// and keep serving correct skylines. Once the gate opens, the replica
// serves again.
func TestCoordinatorTreatsRecoveringReplicaAsDown(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 120, 3, 61)
	sh, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{IDBase: 0, IDStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	healthy := httptest.NewServer(sh)
	defer healthy.Close()

	// The recovering replica: a startup gate that nothing has opened yet —
	// exactly what a node replaying its WAL serves.
	gate := server.NewStartupGate()
	recovering := httptest.NewServer(gate)
	defer recovering.Close()

	if resp, err := http.Get(recovering.URL + "/skyline?dims=0,1,2"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("recovering replica answered %d, want 503", resp.StatusCode)
		}
	}

	coord, err := NewCoordinator([]ShardSpec{
		{Replicas: []string{recovering.URL, healthy.URL}, IDBase: 0, IDStride: 1},
	}, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}

	want := sh.Updater().Current().Skyline(skycube.FullSpace(3))
	query := func(label string) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1,2", nil)
		rec := httptest.NewRecorder()
		coord.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: coordinator status %d: %s", label, rec.Code, rec.Body.String())
		}
		var body struct {
			IDs []int32 `json:"ids"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(body.IDs, want) {
			t.Fatalf("%s: ids %v, want %v", label, body.IDs, want)
		}
	}
	// Repeated queries during recovery must all fail over, not flap.
	for i := 0; i < 3; i++ {
		query("during recovery")
	}

	// Recovery completes: the gate opens onto a second shard over the same
	// data, and the replica set is fully healthy again.
	sh2, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{IDBase: 0, IDStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	gate.Open(sh2)
	if resp, err := http.Get(recovering.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("opened replica /healthz answered %d, want 200", resp.StatusCode)
		}
	}
	query("after recovery")
}
