package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"skycube/internal/obs"
)

// Client-side defaults (CoordinatorOptions fields left zero).
const (
	DefaultTimeout          = 2 * time.Second
	DefaultHedgeDelay       = 50 * time.Millisecond
	DefaultMaxAttempts      = 3
	DefaultBackoffBase      = 25 * time.Millisecond
	DefaultBackoffMax       = 500 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second

	// maxResponseBytes caps how much of a replica response is read (a
	// skyline of every point of a large shard, with coordinates, stays far
	// below this).
	maxResponseBytes = 256 << 20
)

// errAllReplicasDown is returned when every replica of a shard is
// unreachable or breaker-blocked.
var errAllReplicasDown = errors.New("cluster: no live replica")

// statusError is a replica's non-2xx response. Keeping the code lets the
// client tell caller errors (4xx — the replica is healthy, the request is
// bad) from replica failures (5xx, timeouts, transport errors). gen is the
// shard's current map generation when the response was a stale-generation
// 409 (0 otherwise).
type statusError struct {
	code int
	msg  string
	gen  uint64
}

func (e *statusError) Error() string { return e.msg }

// isCallerError reports whether err is a 4xx replica response: a
// deterministic rejection of the request itself. Such errors must not
// count toward a replica's circuit breaker and must not be retried —
// every replica would answer the same way.
func isCallerError(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code >= 400 && se.code < 500
}

// staleMapGen reports whether err (anywhere in its chain) is a shard's
// stale-generation 409: the request carried an outdated shard-map
// generation. The caller must reload the current map and retry the whole
// operation on it — never mix shards answered under different maps.
func staleMapGen(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusConflict && se.gen > 0
}

// staleGenOf returns the shard's current map generation carried by a
// stale-generation 409 (0 when err is not one). The retry loops feed it to
// Coordinator.adoptMapGen so a restarted coordinator — counting from 1
// again — catches up to the generation the shard nodes remember instead of
// retrying a number they will reject forever.
func staleGenOf(err error) uint64 {
	var se *statusError
	if errors.As(err, &se) && se.code == http.StatusConflict {
		return se.gen
	}
	return 0
}

// replica is one endpoint of a shard's replica set.
type replica struct {
	url string
	brk *breaker
}

// shardGroup is a shard's replica set plus its global-id scheme.
type shardGroup struct {
	name     string
	replicas []*replica
	// scheme is the shard's piecewise local→global id mapping (filled from
	// ShardSpec or learned from /shard/info at Refresh; extended by a split
	// cutover's seal). Atomic pointer because Refresh and admin operations
	// swap it while concurrent handlers read; nil means not yet known.
	scheme atomic.Pointer[idScheme]
	// diverged latches when a write-all POST partially succeeded: some
	// replicas applied the batch and some exhausted retries, so the
	// replica set is no longer byte-identical. Surfaced via /info and
	// /healthz; cleared when a Refresh observes every replica reachable and
	// agreeing on (epoch, live) again — e.g. after an operator rebuilt the
	// lagging replica through the rebalance bootstrap.
	diverged atomic.Bool
	// rr rotates the first replica tried per request, spreading read load.
	rr atomic.Uint64
}

// idMap returns the shard's original partition arithmetic (the first
// segment), (0, 0) while the scheme is unknown.
func (g *shardGroup) idMap() (base, stride int) {
	s := g.scheme.Load()
	if s == nil {
		return 0, 0
	}
	return s.primary()
}

// clone returns a copy of the group sharing the replica objects (and thus
// their breaker state) — the copy-on-write step of a map swap that changes
// the group's replica list.
func (g *shardGroup) clone() *shardGroup {
	ng := &shardGroup{name: g.name, replicas: append([]*replica(nil), g.replicas...)}
	ng.scheme.Store(g.scheme.Load())
	ng.diverged.Store(g.diverged.Load())
	return ng
}

// pick returns the next replica whose breaker admits a request, nil if none.
// Replicas already tried this request (in `used`) are skipped.
func (g *shardGroup) pick(used map[*replica]bool) *replica {
	n := len(g.replicas)
	start := int(g.rr.Add(1))
	for i := 0; i < n; i++ {
		rep := g.replicas[(start+i)%n]
		if used[rep] || !rep.brk.Allow() {
			continue
		}
		used[rep] = true
		return rep
	}
	return nil
}

// fanoutClient issues requests to shard replicas with per-attempt timeouts,
// capped exponential backoff + jitter retries, hedged reads and circuit
// breakers.
type fanoutClient struct {
	hc          *http.Client
	timeout     time.Duration
	hedgeDelay  time.Duration // 0 disables hedging
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration
	metrics     *obs.ClusterMetrics
}

// backoff returns the capped exponential delay before retry number n
// (1-based), with ±50% jitter so retry storms from many coordinators
// decorrelate.
func (c *fanoutClient) backoff(n int) time.Duration {
	d := c.backoffBase << uint(n-1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// do runs one HTTP attempt under the per-request timeout, propagating the
// trace context when the request is traced and the shard-map generation
// when the caller pinned one. Non-2xx statuses are errors carrying a body
// snippet; a stale-generation 409 carries the shard's current generation.
func (c *fanoutClient) do(ctx context.Context, method, url string, body []byte, traceparent string, gen uint64) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	if gen > 0 {
		req.Header.Set(mapGenHeader, strconv.FormatUint(gen, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet := string(b)
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		se := &statusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s %s: status %d: %s", method, url, resp.StatusCode, snippet),
		}
		if resp.StatusCode == http.StatusConflict {
			se.gen, _ = strconv.ParseUint(resp.Header.Get(mapGenHeader), 10, 64)
		}
		return nil, se
	}
	return b, nil
}

// get fetches path from one of the shard's replicas: the rotation-chosen
// primary first, a hedge against a second replica if the primary is slow,
// and backoff retries on failure until maxAttempts is exhausted or no
// breaker admits another try. The attempt that loses the race is cancelled
// via context.
//
// When the request is traced (ctx carries a ReqRecord) every attempt sends
// the traceparent header — so the shard's hop record joins the trace — and
// the record receives one event per attempt, hedge, retry and breaker
// rejection. Untraced requests pay a context lookup and nil tests.
func (c *fanoutClient) get(ctx context.Context, g *shardGroup, path string, gen uint64) ([]byte, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rec := obs.RecordFrom(ctx)
	tp := rec.Traceparent()

	type attemptResult struct {
		body  []byte
		err   error
		hedge bool
	}
	results := make(chan attemptResult, c.maxAttempts+1)
	used := map[*replica]bool{}
	launch := func(hedge bool) bool {
		rep := g.pick(used)
		if rep == nil && !hedge {
			// Every replica has been tried once; a retry may revisit them
			// (the failure could have been transient), but a hedge must
			// not duplicate a request already in flight.
			for k := range used {
				delete(used, k)
			}
			rep = g.pick(used)
		}
		if rep == nil {
			if rec != nil {
				rec.Event(obs.Event{Kind: obs.EvBreakerReject, Shard: g.name,
					Hedge: hedge, Start: rec.Since()})
			}
			return false
		}
		go func() {
			began := rec.Since()
			body, err := c.do(ctx, http.MethodGet, rep.url+path, nil, tp, gen)
			switch {
			case err == nil, isCallerError(err):
				// A 4xx means the replica is up and answering; only the
				// request was bad. Either way the replica made contact.
				rep.brk.Success()
			case ctx.Err() != nil:
				// A cancelled loser is not a replica failure — and if this
				// attempt held the breaker's single half-open probe,
				// release it so the replica is not wedged out of rotation
				// until the next verdict-producing attempt.
				rep.brk.AbortProbe()
			default:
				rep.brk.Failure()
			}
			if rec != nil {
				ev := obs.Event{Kind: obs.EvAttempt, Shard: g.name, Replica: rep.url,
					Hedge: hedge, Start: began, Dur: rec.Since() - began}
				if err != nil {
					ev.Err = err.Error()
				}
				rec.Event(ev)
			}
			results <- attemptResult{body, err, hedge}
		}()
		return true
	}

	if !launch(false) {
		return nil, errAllReplicasDown
	}
	inflight := 1
	attempts := 1
	hedged := false
	var hedgeTimer <-chan time.Time
	if c.hedgeDelay > 0 && len(g.replicas) > 1 {
		hedgeTimer = time.After(c.hedgeDelay)
	}
	var retryTimer <-chan time.Time
	var lastErr error

	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeTimer:
			hedgeTimer = nil
			// The primary is slower than the hedge delay: race a second
			// replica and take whichever answers first.
			if launch(true) {
				hedged = true
				inflight++
				if rec != nil {
					rec.Event(obs.Event{Kind: obs.EvHedge, Shard: g.name, Start: rec.Since()})
				}
			}
		case <-retryTimer:
			retryTimer = nil
			if launch(false) {
				c.metrics.Retry(g.name)
				inflight++
				attempts++
				if rec != nil {
					rec.Event(obs.Event{Kind: obs.EvRetry, Shard: g.name, Start: rec.Since(),
						N: int64(attempts)})
				}
			} else if inflight == 0 {
				return nil, lastErr
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				if hedged {
					c.metrics.Hedge(g.name, r.hedge)
				}
				return r.body, nil
			}
			if isCallerError(r.err) {
				// Deterministic rejection: every replica would answer the
				// same 4xx, so retrying only wastes attempts.
				return nil, r.err
			}
			lastErr = r.err
			if inflight > 0 || retryTimer != nil {
				continue // the race partner may still win
			}
			if attempts >= c.maxAttempts {
				return nil, lastErr
			}
			retryTimer = time.After(c.backoff(attempts))
		}
	}
}

// post writes body to every replica of the shard in parallel (replication
// is write-all so replicas stay byte-identical), retrying each replica
// with backoff. It returns one response body per replica, or an error if
// any replica could not be written.
func (c *fanoutClient) post(ctx context.Context, g *shardGroup, path string, body []byte, gen uint64) ([][]byte, error) {
	type repResult struct {
		i    int
		body []byte
		err  error
	}
	rec := obs.RecordFrom(ctx)
	tp := rec.Traceparent()
	ch := make(chan repResult, len(g.replicas))
	for i, rep := range g.replicas {
		go func(i int, rep *replica) {
			var b []byte
			var err error
			for n := 1; ; n++ {
				began := rec.Since()
				b, err = c.do(ctx, http.MethodPost, rep.url+path, body, tp, gen)
				if rec != nil {
					ev := obs.Event{Kind: obs.EvAttempt, Shard: g.name, Replica: rep.url,
						Start: began, Dur: rec.Since() - began}
					if err != nil {
						ev.Err = err.Error()
					}
					rec.Event(ev)
				}
				if err == nil || isCallerError(err) {
					// A 4xx is the caller's fault: the replica answered, so
					// it is healthy for the breaker's purposes, and a retry
					// would deterministically fail the same way.
					rep.brk.Success()
					break
				}
				if ctx.Err() != nil {
					rep.brk.AbortProbe()
					break
				}
				rep.brk.Failure()
				if n >= c.maxAttempts {
					break
				}
				c.metrics.Retry(g.name)
				select {
				case <-time.After(c.backoff(n)):
				case <-ctx.Done():
				}
			}
			ch <- repResult{i, b, err}
		}(i, rep)
	}
	out := make([][]byte, len(g.replicas))
	var firstErr error
	succeeded := 0
	for range g.replicas {
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s replica %s: %w", g.name, g.replicas[r.i].url, r.err)
			}
		} else {
			succeeded++
		}
		out[r.i] = r.body
	}
	if firstErr != nil {
		if succeeded > 0 && !staleMapGen(firstErr) {
			// Write-all partially applied: some replicas took the batch and
			// some did not, so the replica set is no longer byte-identical.
			// Latch it so /info and /healthz surface the divergence instead
			// of hedged reads silently flip-flopping between inconsistent
			// replicas. A stale-generation 409 is exempt: the replica
			// rejected the batch before applying anything, and the caller
			// retries the whole write on the fresh map.
			g.diverged.Store(true)
		}
		return nil, firstErr
	}
	return out, nil
}
