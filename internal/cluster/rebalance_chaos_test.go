// Rebalance chaos tests: membership must change — joins, splits, restarts —
// while the cluster serves mixed traffic, with zero wrong answers. The map
// generation protocol, the snapshot-streamed bootstrap and the write-quiesced
// cutover are each driven through their failure windows here.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skycube"
	"skycube/internal/delta"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/rebalance"
	"skycube/internal/server"
	"skycube/internal/wal"
)

// durableShard builds a shard whose updater journals to dir. Auto-checkpoint
// stays off so tail-chain cursors are stable unless a test checkpoints
// explicitly.
func durableShard(t *testing.T, ds *skycube.Dataset, dir string, sopt ShardOptions) *Shard {
	t.Helper()
	sh, err := NewShard(ds, skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: dir, Fsync: "never", CheckpointEvery: -1},
	}, sopt)
	if err != nil {
		t.Fatalf("durable shard: %v", err)
	}
	t.Cleanup(sh.Close)
	return sh
}

// bootstrapChild joins a fresh replica from peer's snapshot stream and wraps
// it as a serving shard with the source still attached (so /shard/sync can
// pull the remaining tail). Closing the shard closes the node's store too.
func bootstrapChild(t *testing.T, peer, dir string, sopt ShardOptions) *Shard {
	t.Helper()
	node, err := rebalance.Bootstrap(context.Background(), rebalance.Options{
		Dir:   dir,
		Peer:  peer,
		Delta: delta.Options{Threads: 2},
		WAL:   wal.Options{Fsync: "never", CheckpointEvery: -1},
	})
	if err != nil {
		t.Fatalf("bootstrap from %s: %v", peer, err)
	}
	up := skycube.AdoptUpdater(node.Updater, node.Store, node.Replayed)
	sopt.Threads = 2
	sopt.Source = node
	sh, err := NewShardFrom(up, sopt)
	if err != nil {
		t.Fatalf("shard from bootstrap: %v", err)
	}
	t.Cleanup(sh.Close)
	return sh
}

// mutateShard applies k inserts and del deletes directly to the shard's
// journaled updater and flushes.
func mutateShard(t *testing.T, sh *Shard, k, del int, seed int64) {
	t.Helper()
	up := sh.Updater()
	extra := skycube.GenerateSynthetic(skycube.Independent, k, up.Current().Dims(), seed)
	for i := 0; i < extra.Len(); i++ {
		if _, err := up.Insert(extra.Point(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	snap := up.Current()
	for id := int32(0); id < int32(snap.Len()) && del > 0; id++ {
		if snap.Alive(id) {
			if err := up.Delete(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			del--
		}
	}
	up.Flush()
}

// assertShardsEqual compares two shards' frontier and every subspace skyline.
func assertShardsEqual(t *testing.T, a, b *Shard, stage string) {
	t.Helper()
	sa, sb := a.Updater().Current(), b.Updater().Current()
	if sa.Epoch() != sb.Epoch() || sa.Live() != sb.Live() {
		t.Fatalf("%s: frontiers differ: epoch %d/%d, live %d/%d",
			stage, sa.Epoch(), sb.Epoch(), sa.Live(), sb.Live())
	}
	for d := mask.Mask(1); d < 1<<uint(sa.Dims()); d++ {
		if !equalIDs(sa.Skyline(d), sb.Skyline(d)) {
			t.Fatalf("%s: subspace %d skylines differ: %v vs %v",
				stage, d, sa.Skyline(d), sb.Skyline(d))
		}
	}
}

// postRaw issues one request against a handler and returns the recorder.
func postRaw(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestShardSnapshotTailJoin drives the state-transfer protocol shard to
// shard: bootstrap a replica over HTTP from a mutated source, converge it via
// /shard/sync, and verify a source checkpoint turns a stale sync cursor into
// the explicit restart-from-snapshot signal rather than silence.
func TestShardSnapshotTailJoin(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 120, 3, 71)
	parent := durableShard(t, ds, t.TempDir(), ShardOptions{IDBase: 0, IDStride: 1})
	psrv := httptest.NewServer(parent)
	defer psrv.Close()
	mutateShard(t, parent, 10, 3, 711)

	child := bootstrapChild(t, psrv.URL, t.TempDir(), ShardOptions{IDBase: 0, IDStride: 1})
	assertShardsEqual(t, parent, child, "after join")

	// Writes the child missed: /shard/sync pulls the remaining tail and the
	// frontiers re-agree exactly.
	mutateShard(t, parent, 6, 2, 712)
	var sr syncResponse
	mustUnmarshal(t, postJSON(t, child, "/shard/sync", struct{}{}, http.StatusOK), &sr)
	if sr.Applied == 0 {
		t.Fatal("sync applied no records despite missed writes")
	}
	if want := parent.Updater().Current().Epoch(); sr.Epoch != want {
		t.Fatalf("sync epoch %d, parent epoch %d", sr.Epoch, want)
	}
	assertShardsEqual(t, parent, child, "after sync")

	// A parent checkpoint truncates the segments the child's cursor names:
	// the next sync must surface the truncation (410 from the source's tail
	// endpoint, 502 from the child's sync), never skip records silently.
	mutateShard(t, parent, 3, 0, 713)
	if err := parent.Updater().Store().Checkpoint(parent.Updater().Delta()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	rec := postRaw(child, "/shard/sync", nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("sync against a truncated tail: status %d, body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "truncated") {
		t.Fatalf("sync error %q does not carry the truncation signal", rec.Body.String())
	}
}

// TestChaosLiveSplitUnderLoad is the elastic-membership acceptance wall: a
// durable K=2 cluster serves continuous mixed traffic while a third shard is
// bootstrapped from a live peer's snapshot stream and cut into the ring.
// Every read during the split must be a committed 200 whose epoch vector
// names a complete topology (never a mix of old and new maps); afterwards
// every subspace must match a brute-force oracle fed exactly the cluster's
// own accepted writes; and a subsequently killed replica degrades to explicit
// 206 partials, never silent wrong answers.
func TestChaosLiveSplitUnderLoad(t *testing.T) {
	const k = 2
	ds := skycube.GenerateSynthetic(skycube.Independent, 240, 3, 73)
	parts, err := ds.Partition(k, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var specs []ShardSpec
	var parentURLs []string
	for s, part := range parts {
		sh := durableShard(t, part, t.TempDir(), ShardOptions{IDBase: s, IDStride: k})
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		parentURLs = append(parentURLs, srv.URL)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: k})
	}
	coord, err := NewCoordinator(specs, CoordinatorOptions{
		Timeout:     5 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The oracle: every id the cluster has accepted, with its point. The
	// cluster's answers must equal this map's brute-force skyline regardless
	// of how the topology changed underneath. Round-robin global ids
	// reproduce the original row index, so the seed rows prime it directly.
	var oracleMu sync.Mutex
	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}

	// Continuous readers, running through every phase up to the kill window:
	// every response must be a complete 200 whose epoch keys name a full
	// topology — {"0","1"} before the cutover, {"0","1","2"} after — and
	// never a mix.
	stop := make(chan struct{})
	readerErrs := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					readerErrs <- nil
					return
				default:
				}
				sub := mask.Mask(1 + (w+i)%7)
				status, got, err := rawQuerySkyline(coord, sub)
				if err != nil {
					readerErrs <- fmt.Errorf("reader %d: subspace %d: %v", w, sub, err)
					return
				}
				if status != http.StatusOK || got.Partial {
					readerErrs <- fmt.Errorf("reader %d: subspace %d: status %d partial=%v during rebalance",
						w, sub, status, got.Partial)
					return
				}
				_, has0 := got.Epochs["0"]
				_, has1 := got.Epochs["1"]
				_, has2 := got.Epochs["2"]
				oldMap := len(got.Epochs) == k && has0 && has1
				newMap := len(got.Epochs) == k+1 && has0 && has1 && has2
				if !oldMap && !newMap {
					readerErrs <- fmt.Errorf("reader %d: subspace %d: mixed/incomplete epoch vector %v",
						w, sub, got.Epochs)
					return
				}
			}
		}(w)
	}

	// Phase A, healthy writes: inserts and deletes through the coordinator,
	// mirrored into the oracle.
	ins := skycube.GenerateSynthetic(skycube.Anticorrelated, 30, 3, 731)
	var batch [][]float32
	for i := 0; i < ins.Len(); i++ {
		batch = append(batch, ins.Point(i))
	}
	var iresp insertResponse
	mustUnmarshal(t, postJSON(t, coord, "/insert", insertRequest{Points: batch}, http.StatusOK), &iresp)
	oracleMu.Lock()
	for i, id := range iresp.IDs {
		points[id] = batch[i]
	}
	oracleMu.Unlock()
	del := []int32{2, 7, 19, 44}
	postJSON(t, coord, "/delete", deleteRequest{IDs: del}, http.StatusOK)
	oracleMu.Lock()
	for _, id := range del {
		delete(points, id)
	}
	oracleMu.Unlock()
	postJSON(t, coord, "/flush", struct{}{}, http.StatusOK)

	// Phase B, the live split: writes keep flowing from a background writer
	// (no deletes in the split window — deletes pause around membership
	// changes so the oracle's view of claimants stays unambiguous) while the
	// child bootstraps from shard 0's snapshot stream and the cutover runs.
	writerDone := make(chan error, 1)
	writerStop := make(chan struct{})
	go func() {
		wpts := skycube.GenerateSynthetic(skycube.Correlated, 200, 3, 733)
		for i := 0; ; i++ {
			select {
			case <-writerStop:
				writerDone <- nil
				return
			default:
			}
			p := wpts.Point(i % wpts.Len())
			b, _ := json.Marshal(insertRequest{Points: [][]float32{p}})
			rec := postRaw(coord, "/insert", b)
			if rec.Code != http.StatusOK {
				writerDone <- fmt.Errorf("writer insert %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			var wresp insertResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &wresp); err != nil || len(wresp.IDs) != 1 {
				writerDone <- fmt.Errorf("writer insert %d: ids %v, err %v", i, wresp.IDs, err)
				return
			}
			oracleMu.Lock()
			points[wresp.IDs[0]] = p
			oracleMu.Unlock()
		}
	}()

	child := bootstrapChild(t, parentURLs[0], t.TempDir(), ShardOptions{IDBase: 0, IDStride: k})
	childFault := &faultyHandler{inner: child}
	csrv := httptest.NewServer(childFault)
	t.Cleanup(csrv.Close)

	var split adminSplitResponse
	mustUnmarshal(t, postJSON(t, coord, "/admin/split", adminSplitRequest{
		Shard: "0", Child: "2", Replicas: []string{csrv.URL},
	}, http.StatusOK), &split)
	if len(split.PruneErrors) != 0 {
		t.Fatalf("split prune errors: %v", split.PruneErrors)
	}
	if split.Gen < 2 || split.Child != "2" || len(split.IDSegments) != 2 {
		t.Fatalf("split response: %+v", split)
	}
	close(writerStop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	// Phase C, post-split: more inserts must route across all three shards,
	// and the child's must mint from its sealed id block.
	post := skycube.GenerateSynthetic(skycube.Independent, 120, 3, 737)
	batch = batch[:0]
	for i := 0; i < post.Len(); i++ {
		batch = append(batch, post.Point(i))
	}
	mustUnmarshal(t, postJSON(t, coord, "/insert", insertRequest{Points: batch}, http.StatusOK), &iresp)
	var sawSealed bool
	oracleMu.Lock()
	for i, id := range iresp.IDs {
		points[id] = batch[i]
		if id >= SplitBlockBase {
			sawSealed = true
		}
	}
	oracleMu.Unlock()
	if !sawSealed {
		t.Fatalf("no post-split insert minted from the sealed block; ids %v", iresp.IDs)
	}
	if iresp.Routed["2"] == 0 {
		t.Fatalf("no post-split insert routed to the child: %v", iresp.Routed)
	}
	// Post-split deletes: even ids sit in the copied region both the parent's
	// open arithmetic and the child's first segment claim, so these exercise
	// the claimant-broadcast path; 9 stays single-claimant on shard 1.
	del = []int32{4, 10, 9}
	postJSON(t, coord, "/delete", deleteRequest{IDs: del}, http.StatusOK)
	oracleMu.Lock()
	for _, id := range del {
		delete(points, id)
	}
	oracleMu.Unlock()
	postJSON(t, coord, "/flush", struct{}{}, http.StatusOK)

	// Quiesce the readers, then the oracle comparison: every subspace, exact.
	close(stop)
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-readerErrs; err != nil {
			t.Fatal(err)
		}
	}
	oracleMu.Lock()
	defer oracleMu.Unlock()
	for sub := mask.Mask(1); sub < 1<<3; sub++ {
		got := querySkyline(t, coord, sub, http.StatusOK)
		if got.Partial {
			t.Fatalf("subspace %d partial on a healthy post-split cluster", sub)
		}
		if want := bruteSkyline(points, sub); !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after live split: ids %v, want %v", sub, got.IDs, want)
		}
	}

	// The map must have swapped and the admin surface must show the sealed
	// child scheme.
	req := httptest.NewRequest(http.MethodGet, "/admin/map", nil)
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	var am adminMapResponse
	mustUnmarshal(t, rec.Body.Bytes(), &am)
	if len(am.Shards) != 3 || am.Gen != split.Gen {
		t.Fatalf("admin map after split: %+v", am)
	}
	if swaps := metricTotal(t, reg, "skycube_rebalance_map_swaps_total"); swaps == 0 {
		t.Fatal("no map swap counted")
	}

	// Phase D, injected replica kill: the child dies; its shard has R=1, so
	// reads must degrade to the explicit 206 partial contract — the ONLY
	// acceptable non-200 — and recover to exact 200s once revived. A delete
	// routed to shard 1 (id 15 is odd: single claimant, child untouched)
	// first advances the write generation, so the read below fans out
	// instead of replaying the memoized pre-kill answer.
	childFault.dead.Store(true)
	postJSON(t, coord, "/delete", deleteRequest{IDs: []int32{15}}, http.StatusOK)
	delete(points, 15)
	got := querySkyline(t, coord, 3, http.StatusPartialContent)
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != "2" {
		t.Fatalf("kill window: partial=%v failed=%v, want explicit child failure", got.Partial, got.FailedShards)
	}
	childFault.dead.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, got, err := rawQuerySkyline(coord, 3)
		if err == nil && status == http.StatusOK && !got.Partial {
			if want := bruteSkyline(points, 3); !equalIDs(got.IDs, want) {
				t.Fatalf("post-revival subspace 3: ids %v, want %v", got.IDs, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never recovered: status %d, err %v", status, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosRestartedReplicaCatchesUpBeforeReady: a replica is killed, misses
// writes (latching the group's diverged flag), and restarts behind its peer.
// Anti-entropy must detect the stale recovery, wipe, re-bootstrap from the
// peer BEFORE the startup gate opens — and once the replica serves again, a
// coordinator refresh must verify the replicas re-agree and clear the
// diverged latch.
func TestChaosRestartedReplicaCatchesUpBeforeReady(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 150, 3, 79)
	dirA, dirB := t.TempDir(), t.TempDir()
	repA := durableShard(t, ds, dirA, ShardOptions{IDBase: 0, IDStride: 1})
	srvA := httptest.NewServer(repA)
	defer srvA.Close()

	// Replica B starts as an independent durable build of the same partition
	// behind a swappable handler, so its URL survives the "process restart".
	// Built inline (not durableShard) because the test closes it mid-flight.
	repB, err := NewShard(ds, skycube.Options{
		Threads: 2,
		Durable: skycube.DurableOptions{Dir: dirB, Fsync: "never", CheckpointEvery: -1},
	}, ShardOptions{IDBase: 0, IDStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	var curB atomic.Pointer[http.Handler]
	var hB http.Handler = repB
	curB.Store(&hB)
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*curB.Load()).ServeHTTP(w, r)
	}))
	defer srvB.Close()

	coord, err := NewCoordinator([]ShardSpec{
		{Replicas: []string{srvA.URL, srvB.URL}, IDBase: 0, IDStride: 1},
	}, CoordinatorOptions{
		Timeout:     2 * time.Second,
		HedgeDelay:  -1,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	ins := [][]float32{{0.05, 0.9, 0.3}, {0.9, 0.05, 0.5}}
	var iresp insertResponse
	mustUnmarshal(t, postJSON(t, coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &iresp)
	for i, id := range iresp.IDs {
		points[id] = ins[i]
	}
	postJSON(t, coord, "/flush", struct{}{}, http.StatusOK)

	// Kill B: gate its URL closed (a fresh, unopened startup gate — exactly
	// what a restarting process serves) and release its data directory.
	gate := server.NewStartupGate()
	var hGate http.Handler = gate
	curB.Store(&hGate)
	repB.Close()

	// Writes B misses. The write-all fan-out partially fails: the request
	// surfaces the error AND the group latches diverged.
	more := [][]float32{{0.02, 0.95, 0.4}, {0.95, 0.02, 0.7}, {0.4, 0.4, 0.02}}
	b, _ := json.Marshal(insertRequest{Points: more})
	if rec := postRaw(coord, "/insert", b); rec.Code == http.StatusOK {
		t.Fatalf("partial write-all reported success: %s", rec.Body.String())
	}
	// The surviving replica applied the batch; mirror its new live rows into
	// the oracle from A directly.
	snapA := repA.Updater().Flush()
	for id := int32(ds.Len() + len(ins)); int(id) < snapA.Len(); id++ {
		if snapA.Alive(id) {
			points[id] = snapA.Point(id)
		}
	}
	if !coord.curMap().shards[0].diverged.Load() {
		t.Fatal("partial write-all did not latch the diverged flag")
	}
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health healthResponse
	mustUnmarshal(t, rec.Body.Bytes(), &health)
	if health.Status != "degraded" || len(health.DivergedShards) != 1 {
		t.Fatalf("healthz after partial write-all = %+v, want degraded+diverged", health)
	}

	// Restart B: recover its directory the way a restarted node does. The
	// recovered frontier is the pre-kill state — behind A.
	store, recovered, err := wal.Open(wal.Options{Dir: dirB, Fsync: "never", CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recover B: %v", err)
	}
	if recovered == nil {
		t.Fatal("B's directory recovered no state")
	}
	du, err := delta.NewUpdaterFrom(recovered.State, delta.Options{Threads: 2})
	if err != nil {
		t.Fatalf("rebuild B: %v", err)
	}
	if _, err := store.Replay(du); err != nil {
		t.Fatalf("replay B: %v", err)
	}
	recSnap := du.Current()
	local := rebalance.Freshness{Epoch: recSnap.Epoch(), Live: recSnap.Live()}

	// Anti-entropy: compare against the peer and find ourselves behind.
	rc := &rebalance.Client{}
	peerFresh, err := rc.Freshness(context.Background(), srvA.URL)
	if err != nil {
		t.Fatalf("peer freshness: %v", err)
	}
	behind, freshest := rebalance.Behind(local, []rebalance.Freshness{peerFresh})
	if !behind || freshest != 0 {
		t.Fatalf("restarted replica at epoch %d vs peer %d not detected as behind",
			local.Epoch, peerFresh.Epoch)
	}
	// The gate must still be closed — B has not reported ready while stale.
	if resp, err := http.Get(srvB.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("stale replica reported ready: %d", resp.StatusCode)
		}
	}

	// Wipe and re-bootstrap from the freshest peer, then open the gate.
	du.Close()
	store.Close()
	if err := wal.WipeForRejoin(dirB); err != nil {
		t.Fatalf("wipe B: %v", err)
	}
	repB2 := bootstrapChild(t, srvA.URL, dirB, ShardOptions{IDBase: 0, IDStride: 1})
	assertShardsEqual(t, repA, repB2, "after re-bootstrap")
	gate.Open(repB2)

	// The replicas agree again: the operator's POST /admin/refresh verifies
	// it directly and clears the diverged latch (the response map must show
	// the flag gone too).
	var refreshed adminMapResponse
	mustUnmarshal(t, postJSON(t, coord, "/admin/refresh", nil, http.StatusOK), &refreshed)
	for _, s := range refreshed.Shards {
		if s.Diverged {
			t.Fatalf("refresh response still flags shard %s diverged", s.Name)
		}
	}
	if coord.curMap().shards[0].diverged.Load() {
		t.Fatal("diverged latch survived a verified repair")
	}
	rec = httptest.NewRecorder()
	coord.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	health = healthResponse{}
	mustUnmarshal(t, rec.Body.Bytes(), &health)
	if health.Status == "degraded" || len(health.DivergedShards) != 0 {
		t.Fatalf("healthz still degraded after repair: %+v", health)
	}

	// Full service resumes: write-all succeeds, reads are exact.
	late := [][]float32{{0.3, 0.3, 0.03}}
	mustUnmarshal(t, postJSON(t, coord, "/insert", insertRequest{Points: late}, http.StatusOK), &iresp)
	for i, id := range iresp.IDs {
		points[id] = late[i]
	}
	postJSON(t, coord, "/flush", struct{}{}, http.StatusOK)
	for sub := mask.Mask(1); sub < 1<<3; sub++ {
		got := querySkyline(t, coord, sub, http.StatusOK)
		if want := bruteSkyline(points, sub); !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after rejoin: ids %v, want %v", sub, got.IDs, want)
		}
	}
}

// TestCoordinatorRefreshRacesMapChanges hammers Refresh, dimsOrRefresh and
// query handlers against a churning membership (join/drain swaps advancing
// the map generation) — run under -race this is the shard-map lifecycle's
// data-race probe. Correctness of answers is covered elsewhere; here every
// response only has to be one of the protocol's sanctioned statuses.
func TestCoordinatorRefreshRacesMapChanges(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 83)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	var specs []ShardSpec
	var extras []string // second URL per shard, joinable/drainable
	for s, part := range parts {
		sh, err := NewShard(part, skycube.Options{Threads: 2}, ShardOptions{IDBase: s, IDStride: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sh.Close)
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		// A second server over the SAME shard: always frontier-identical, so
		// joins always pass verification.
		srv2 := httptest.NewServer(sh)
		t.Cleanup(srv2.Close)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: 2})
		extras = append(extras, srv2.URL)
	}
	coord, err := NewCoordinator(specs, CoordinatorOptions{
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Membership churn: join the extra replica, drain it, repeat. A join or
	// drain can legitimately lose an admin race (409/404) or fail its
	// write-gated verification against in-flight traffic (502); what it may
	// never do is corrupt the map the other goroutines read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			body, _ := json.Marshal(adminTargetRequest{Shard: fmt.Sprint(i % 2), Replica: extras[i%2]})
			for _, ep := range []string{"/admin/join", "/admin/drain"} {
				rec := postRaw(coord, ep, body)
				switch rec.Code {
				case http.StatusOK, http.StatusConflict, http.StatusNotFound, http.StatusBadGateway:
				default:
					fail("%s: status %d: %s", ep, rec.Code, rec.Body.String())
					return
				}
			}
		}
	}()

	// Refresh + dimsOrRefresh churn.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for !stop.Load() {
				if err := coord.Refresh(ctx); err != nil {
					fail("refresh: %v", err)
					return
				}
				if _, err := coord.dimsOrRefresh(ctx); err != nil {
					fail("dimsOrRefresh: %v", err)
					return
				}
			}
		}()
	}

	// Query handlers racing the swaps: 200 (possibly after internal stale
	// retries) or 503 (repeated swaps exhausted the bounded retry) are the
	// only sanctioned outcomes.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				sub := mask.Mask(1 + (w+i)%7)
				status, got, err := rawQuerySkyline(coord, sub)
				if status == http.StatusServiceUnavailable {
					continue
				}
				if err != nil {
					fail("query %d: %v", sub, err)
					return
				}
				if status != http.StatusOK || got.Partial {
					fail("query %d: status %d partial=%v", sub, status, got.Partial)
					return
				}
			}
		}(w)
	}

	// Writes racing the swaps: 200, or 409 when the map changed repeatedly
	// mid-batch (the handler's bounded retry), or 503 before dims resolve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pts := skycube.GenerateSynthetic(skycube.Correlated, 50, 3, 831)
		for i := 0; !stop.Load(); i++ {
			b, _ := json.Marshal(insertRequest{Points: [][]float32{pts.Point(i % pts.Len())}})
			rec := postRaw(coord, "/insert", b)
			switch rec.Code {
			case http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable:
			default:
				fail("insert: status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The churn really churned: the map generation moved well past its seed.
	if gen := coord.curMap().gen; gen < 3 {
		t.Fatalf("map generation only reached %d; churn did not engage", gen)
	}
}

// TestCoordinatorAdoptsShardMapGeneration: shard nodes remember the highest
// map generation any coordinator ever sent them and 409 lower ones. A
// RESTARTED coordinator counts from 1 again — it must adopt the generation
// the shards report instead of being locked out of its own cluster: reads,
// writes, refresh and membership ops all have to work on the first try a
// human makes, not after some magic incantation.
func TestCoordinatorAdoptsShardMapGeneration(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 80, 3, 97)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	var specs []ShardSpec
	var extra string
	for s, part := range parts {
		sh, err := NewShard(part, skycube.Options{Threads: 2}, ShardOptions{IDBase: s, IDStride: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sh.Close)
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: 2})
		if s == 0 {
			srv2 := httptest.NewServer(sh)
			t.Cleanup(srv2.Close)
			extra = srv2.URL
		}
		// Teach the shard a high generation, as the previous coordinator's
		// map swaps would have.
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/shard/info", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(mapGenHeader, "7")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priming gen 7: status %d", resp.StatusCode)
		}
	}

	coord, err := NewCoordinator(specs, CoordinatorOptions{
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First read: attempt 1 carries gen 1 and collects 409s; the retry must
	// run on the adopted generation and succeed completely.
	full := mask.Mask(1<<3 - 1)
	if got := querySkyline(t, coord, full, http.StatusOK); got.Partial {
		t.Fatalf("partial read after adoption: %+v", got)
	}
	if g := coord.curMap().gen; g < 7 {
		t.Fatalf("map generation %d after read, want >= 7", g)
	}

	// Writes route on the adopted generation.
	var ins insertResponse
	mustUnmarshal(t, postJSON(t, coord, "/insert",
		insertRequest{Points: [][]float32{{0.1, 0.2, 0.3}}}, http.StatusOK), &ins)
	if len(ins.IDs) != 1 {
		t.Fatalf("insert after adoption: %+v", ins)
	}

	// The operator surface works without a refresh first: a join's frontier
	// verification adopts too.
	var joined adminSwapResponse
	mustUnmarshal(t, postJSON(t, coord, "/admin/join",
		adminTargetRequest{Shard: "0", Replica: extra}, http.StatusOK), &joined)
	if joined.Gen <= 7 {
		t.Fatalf("join published generation %d, want > 7", joined.Gen)
	}

	var refreshed adminMapResponse
	mustUnmarshal(t, postJSON(t, coord, "/admin/refresh", nil, http.StatusOK), &refreshed)
	if refreshed.Gen != joined.Gen {
		t.Fatalf("refresh sees generation %d, join published %d", refreshed.Gen, joined.Gen)
	}
}

// TestCoordinatorAdoptsOnFirstMembershipOp: the adoption above must also
// work when a membership operation is the restarted coordinator's FIRST
// contact with the cluster — the frontier check inside the join runs under
// the admin mutex, so its stale-generation retry must use the lock-held
// adoption path (a re-lock here deadlocks the admin surface forever).
func TestCoordinatorAdoptsOnFirstMembershipOp(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 60, 3, 99)
	sh, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{IDBase: 0, IDStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	srv := httptest.NewServer(sh)
	t.Cleanup(srv.Close)
	srv2 := httptest.NewServer(sh)
	t.Cleanup(srv2.Close)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/shard/info", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(mapGenHeader, "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	coord, err := NewCoordinator(
		[]ShardSpec{{Replicas: []string{srv.URL}, IDBase: 0, IDStride: 1}},
		CoordinatorOptions{Timeout: 2 * time.Second, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var joined adminSwapResponse
	go func() {
		defer close(done)
		mustUnmarshal(t, postJSON(t, coord, "/admin/join",
			adminTargetRequest{Shard: "0", Replica: srv2.URL}, http.StatusOK), &joined)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("join as the first operation hung: lock-held adoption path deadlocked")
	}
	if joined.Gen <= 5 {
		t.Fatalf("join published generation %d, want > 5", joined.Gen)
	}
}
