package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's injectable now().
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooldown, nil)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("breaker refused while closed (failure %d)", i)
		}
		b.Failure()
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatal("breaker did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a request before the cooldown elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request without a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker never re-admitted a probe")
	}
}

func TestBreakerAbortProbeReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted after cooldown")
	}
	// The probe's request is abandoned (e.g. cancelled after losing a hedge
	// race) — without AbortProbe the breaker would stay latched in probing
	// and refuse every future request.
	b.AbortProbe()
	if b.State() != breakerOpen {
		t.Fatalf("state after aborted probe = %d, want open", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker wedged: no fresh probe admitted after an aborted one")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatal("probe success after an aborted probe did not close the breaker")
	}
}

func TestBreakerAbortProbeNoopWhenClosed(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.AbortProbe()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("AbortProbe on a closed breaker changed its state")
	}
}

func TestBreakerStateCallback(t *testing.T) {
	var states []int
	b := newBreaker(1, time.Second, func(s int) { states = append(states, s) })
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	b.Failure()
	clk.advance(time.Second)
	b.Allow()
	b.Success()
	want := []int{breakerOpen, breakerHalfOpen, breakerClosed}
	if len(states) != len(want) {
		t.Fatalf("state transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state transitions = %v, want %v", states, want)
		}
	}
}
