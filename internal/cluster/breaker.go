package cluster

import (
	"sync"
	"time"
)

// Breaker states, also the values of the skycube_cluster_breaker_state gauge.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-replica circuit breaker: after threshold consecutive
// failures it opens and the replica is skipped outright — no connection
// attempts, no timeout waits — until cooldown elapses, at which point a
// single half-open probe is admitted. A probe success closes the breaker; a
// probe failure re-opens it for another cooldown. This keeps a dead replica
// from adding a full timeout to every scatter-gather fan-out.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	onState   func(state int)  // metrics hook, may be nil

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, onState func(int)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, onState: onState}
}

func (b *breaker) setState(s int) {
	b.state = s
	if b.onState != nil {
		b.onState(s)
	}
}

// Allow reports whether a request may be sent to the replica right now.
// When the cooldown of an open breaker has elapsed it admits exactly one
// half-open probe; concurrent callers keep being refused until that probe
// resolves.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// Failure records a failed request, opening the breaker at the threshold
// (immediately for a failed half-open probe).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.setState(breakerOpen)
		b.openedAt = b.now()
		b.failures = 0
	}
}

// AbortProbe releases a half-open probe whose request was abandoned before
// producing a verdict — e.g. cancelled after losing a hedge race, or the
// caller's context expired mid-flight. The replica is neither credited nor
// blamed: the breaker returns to open with its original deadline, so the
// next Allow may admit a fresh probe immediately. Without this, an
// abandoned probe would leave probing latched and the replica would be
// refused forever.
func (b *breaker) AbortProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.probing {
		return
	}
	b.probing = false
	if b.state == breakerHalfOpen {
		b.setState(breakerOpen)
	}
}

// State returns the current state without side effects.
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
