package cluster

import "testing"

func TestRingDeterministic(t *testing.T) {
	r1 := newRing([]string{"a", "b", "c"})
	r2 := newRing([]string{"a", "b", "c"})
	for key := uint64(0); key < 10_000; key++ {
		if r1.owner(key) != r2.owner(key) {
			t.Fatalf("ring ownership not deterministic at key %d", key)
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	r := newRing([]string{"s0", "s1", "s2", "s3"})
	counts := make([]int, 4)
	for i := 0; i < 40_000; i++ {
		p := []float32{float32(i), float32(i * 7 % 113)}
		counts[r.owner(hashPoint(p))]++
	}
	for s, c := range counts {
		// With 64 virtual nodes per shard the split should be roughly even;
		// accept anything within a factor of ~3 of fair share.
		if c < 40_000/(4*3) {
			t.Fatalf("shard %d got only %d of 40000 keys: %v", s, c, counts)
		}
	}
}

func TestRingStableUnderGrowth(t *testing.T) {
	// Consistent hashing's point: adding a shard must not reshuffle keys
	// between pre-existing shards — a key either stays put or moves to the
	// new shard.
	small := newRing([]string{"s0", "s1", "s2"})
	big := newRing([]string{"s0", "s1", "s2", "s3"})
	moved := 0
	const keys = 20_000
	for i := 0; i < keys; i++ {
		k := hashBytes([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		before, after := small.owner(k), big.owner(k)
		if before == after {
			continue
		}
		if after != 3 {
			t.Fatalf("key %d moved between old shards: %d -> %d", i, before, after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("new shard received no keys")
	}
	if moved > keys/2 {
		t.Fatalf("adding one shard moved %d/%d keys; expected roughly 1/4", moved, keys)
	}
}

func TestHashPointSensitivity(t *testing.T) {
	a := hashPoint([]float32{1, 2, 3})
	b := hashPoint([]float32{1, 2, 3.0000002})
	if a == b {
		t.Fatal("hashPoint ignored a coordinate perturbation")
	}
	if a != hashPoint([]float32{1, 2, 3}) {
		t.Fatal("hashPoint not deterministic")
	}
}
