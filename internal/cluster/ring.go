package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// ring is a consistent-hash ring over shard indices. Each shard contributes
// vnodesPerShard virtual points so load spreads evenly, and adding or
// removing a shard moves only ~1/K of the key space — the property that
// makes resharding a data migration rather than a full reshuffle.
type ring struct {
	points []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

const vnodesPerShard = 64

// newRing builds the ring for shards named by the given labels (the labels,
// not the indices, are hashed, so a shard keeps its arc when the list is
// reordered).
func newRing(labels []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(labels)*vnodesPerShard)}
	for i, label := range labels {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashBytes([]byte(fmt.Sprintf("%s#%d", label, v))),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// owner returns the shard index owning key: the first ring point at or
// after the key's hash, wrapping around.
func (r *ring) owner(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashBytes is 64-bit FNV-1a with a splitmix64 finalizer: plain FNV-1a has
// weak avalanche on short, similar inputs (vnode labels like "s0#12"), which
// clusters ring points and skews arc lengths badly.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashPoint hashes a point's coordinates (their exact float32 bit
// patterns), giving inserts a stable shard placement independent of request
// batching.
func hashPoint(p []float32) uint64 {
	buf := make([]byte, 4*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return hashBytes(buf)
}
