package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skycube"
	"skycube/internal/dom"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// testCluster is a K-shard, R-replica cluster wired over httptest servers.
type testCluster struct {
	coord   *Coordinator
	shards  [][]*Shard           // [shard][replica]
	servers [][]*httptest.Server // [shard][replica]
	parts   []*skycube.Dataset
	specs   []ShardSpec
}

func (tc *testCluster) close() {
	for _, reps := range tc.servers {
		for _, s := range reps {
			s.Close()
		}
	}
	for _, reps := range tc.shards {
		for _, sh := range reps {
			sh.Close()
		}
	}
}

// newTestCluster partitions ds into k shards with r replicas each, serves
// every replica over loopback HTTP, and builds a coordinator on top.
func newTestCluster(t *testing.T, ds *skycube.Dataset, k, r int, mode skycube.PartitionMode, copt CoordinatorOptions) *testCluster {
	t.Helper()
	return newTestClusterOpts(t, ds, k, r, mode, copt, nil)
}

// newTestClusterOpts is newTestCluster with a per-shard options hook (used
// by the trace tests to give every shard its own request ring).
func newTestClusterOpts(t *testing.T, ds *skycube.Dataset, k, r int, mode skycube.PartitionMode, copt CoordinatorOptions, shardOpt func(shard, replica int, so *ShardOptions)) *testCluster {
	t.Helper()
	parts, err := ds.Partition(k, mode)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	tc := &testCluster{parts: parts}
	posBase := 0
	for s, part := range parts {
		base, stride := s, k
		if mode.Positional() {
			// Positional modes (range, grid, angular) number global ids by
			// concatenation order: this shard's base is the total size of
			// the shards before it. For range partitions of equal size this
			// reproduces data.RangeOffsets; grid/angular cells are unequal.
			base, stride = posBase, 1
		}
		posBase += part.Len()
		var reps []*Shard
		var srvs []*httptest.Server
		var urls []string
		for rep := 0; rep < r; rep++ {
			so := ShardOptions{IDBase: base, IDStride: stride}
			if shardOpt != nil {
				shardOpt(s, rep, &so)
			}
			sh, err := NewShard(part, skycube.Options{Threads: 2}, so)
			if err != nil {
				t.Fatalf("NewShard(%d/%d): %v", s, rep, err)
			}
			srv := httptest.NewServer(sh)
			reps = append(reps, sh)
			srvs = append(srvs, srv)
			urls = append(urls, srv.URL)
		}
		tc.shards = append(tc.shards, reps)
		tc.servers = append(tc.servers, srvs)
		tc.specs = append(tc.specs, ShardSpec{Replicas: urls, IDBase: base, IDStride: stride})
	}
	coord, err := NewCoordinator(tc.specs, copt)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	tc.coord = coord
	t.Cleanup(tc.close)
	return tc
}

// querySkyline issues GET /skyline for the subspace and decodes the payload.
func querySkyline(t *testing.T, h http.Handler, delta mask.Mask, wantStatus int) skylineResponse {
	t.Helper()
	var dims []string
	for d := 0; d < 32; d++ {
		if delta&mask.Bit(d) != 0 {
			dims = append(dims, fmt.Sprint(d))
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims="+strings.Join(dims, ","), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET /skyline subspace %b: status %d, want %d: %s", delta, rec.Code, wantStatus, rec.Body.String())
	}
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode /skyline: %v", err)
	}
	return resp
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}, wantStatus int) []byte {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", path, rec.Code, wantStatus, rec.Body.String())
	}
	return rec.Body.Bytes()
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bruteSkyline computes the Definition-1 skyline of an id -> point map.
func bruteSkyline(points map[int32][]float32, delta mask.Mask) []int32 {
	var out []int32
	for id, p := range points {
		dominated := false
		for other, q := range points {
			if other != id && dom.DominatesIn(q, p, delta) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []int32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func TestShardCuboidEndpoint(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 300, 3, 7)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShard(parts[1], skycube.Options{Threads: 2}, ShardOptions{IDBase: 1, IDStride: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	cube, _, err := skycube.Build(parts[1], skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/shard/cuboid?subspace=%d", delta), nil)
		rec := httptest.NewRecorder()
		sh.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("subspace %d: status %d: %s", delta, rec.Code, rec.Body.String())
		}
		var resp cuboidResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		local := cube.Skyline(skycube.Subspace(delta))
		if len(resp.IDs) != len(local) {
			t.Fatalf("subspace %d: %d ids, want %d", delta, len(resp.IDs), len(local))
		}
		for i, row := range local {
			want := int32(1) + row*2
			if resp.IDs[i] != want {
				t.Fatalf("subspace %d id[%d] = %d, want global %d", delta, i, resp.IDs[i], want)
			}
			p := parts[1].Point(int(row))
			for j := range p {
				if resp.Points[i][j] != p[j] {
					t.Fatalf("subspace %d: point mismatch for id %d", delta, want)
				}
			}
		}
	}
}

func TestShardCuboidExtendedSuperset(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 200, 3, 11)
	sh, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		get := func(extended bool) *cuboidResponse {
			url := fmt.Sprintf("/shard/cuboid?subspace=%d&extended=%v", delta, extended)
			req := httptest.NewRequest(http.MethodGet, url, nil)
			rec := httptest.NewRecorder()
			sh.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d", url, rec.Code)
			}
			var resp cuboidResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			return &resp
		}
		sky, ext := get(false), get(true)
		in := map[int32]bool{}
		for _, id := range ext.IDs {
			in[id] = true
		}
		for _, id := range sky.IDs {
			if !in[id] {
				t.Fatalf("subspace %d: skyline id %d missing from extended skyline", delta, id)
			}
		}
	}
}

func TestShardCuboidBadSubspace(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 50, 3, 1)
	sh, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for _, spec := range []string{"", "0", "8", "abc", "-1"} {
		req := httptest.NewRequest(http.MethodGet, "/shard/cuboid?subspace="+spec, nil)
		rec := httptest.NewRecorder()
		sh.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("subspace %q: status %d, want 400", spec, rec.Code)
		}
	}
}

func TestShardInfoEndpoint(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Correlated, 120, 4, 3)
	sh, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{IDBase: 2, IDStride: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	req := httptest.NewRequest(http.MethodGet, "/shard/info", nil)
	rec := httptest.NewRecorder()
	sh.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var info shardInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Dims != 4 || info.Live != 120 || info.IDBase != 2 || info.IDStride != 3 {
		t.Fatalf("info = %+v", info)
	}
}

func TestCoordinatorInsertRoutesAndMapsIDs(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 90, 3, 5)
	tc := newTestCluster(t, ds, 3, 1, skycube.RoundRobinPartition, CoordinatorOptions{})

	// Track every live point by its global id: the 90 originals...
	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	// ...plus a batch inserted through the coordinator.
	ins := [][]float32{{0.01, 0.99, 0.5}, {0.99, 0.01, 0.5}, {0.5, 0.5, 0.001}, {0.2, 0.2, 0.2}}
	var resp insertResponse
	if err := json.Unmarshal(postJSON(t, tc.coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != len(ins) {
		t.Fatalf("insert returned %d ids for %d points", len(resp.IDs), len(ins))
	}
	routed := 0
	for _, n := range resp.Routed {
		routed += n
	}
	if routed != len(ins) {
		t.Fatalf("routed counts %v do not sum to %d", resp.Routed, len(ins))
	}
	for i, id := range resp.IDs {
		if _, dup := points[id]; dup {
			t.Fatalf("insert assigned id %d twice", id)
		}
		points[id] = ins[i]
	}
	postJSON(t, tc.coord, "/flush", struct{}{}, http.StatusOK)

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		if got.Partial {
			t.Fatalf("subspace %d: unexpected partial response", delta)
		}
		want := bruteSkyline(points, delta)
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after insert: ids %v, want %v", delta, got.IDs, want)
		}
	}
}

func TestCoordinatorDeleteRoutesByIDArithmetic(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 80, 3, 9)
	tc := newTestCluster(t, ds, 4, 1, skycube.RoundRobinPartition, CoordinatorOptions{})

	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	// Delete the full-space skyline members: every subspace must re-form
	// from the survivors.
	full := mask.Mask(1<<3 - 1)
	doomed := bruteSkyline(points, full)
	var dresp deleteResponse
	if err := json.Unmarshal(postJSON(t, tc.coord, "/delete", deleteRequest{IDs: doomed}, http.StatusOK), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.Deleted != len(doomed) {
		t.Fatalf("deleted %d, want %d (routed %v)", dresp.Deleted, len(doomed), dresp.Routed)
	}
	for _, id := range doomed {
		delete(points, id)
	}
	postJSON(t, tc.coord, "/flush", struct{}{}, http.StatusOK)

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		got := querySkyline(t, tc.coord, delta, http.StatusOK)
		want := bruteSkyline(points, delta)
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d after delete: ids %v, want %v", delta, got.IDs, want)
		}
	}
}

func TestCoordinatorRejectsBadRequests(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 40, 3, 2)
	tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, CoordinatorOptions{})

	for _, q := range []string{"", "dims=", "dims=3", "dims=a", "dims=0,0", "dims=-1"} {
		req := httptest.NewRequest(http.MethodGet, "/skyline?"+q, nil)
		rec := httptest.NewRecorder()
		tc.coord.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET /skyline?%s: status %d, want 400", q, rec.Code)
		}
	}
	postJSON(t, tc.coord, "/insert", insertRequest{}, http.StatusBadRequest)
	postJSON(t, tc.coord, "/delete", deleteRequest{}, http.StatusBadRequest)
	postJSON(t, tc.coord, "/delete", deleteRequest{IDs: []int32{-7}}, http.StatusBadRequest)

	req := httptest.NewRequest(http.MethodPost, "/skyline?dims=0", nil)
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /skyline: status %d, want 405", rec.Code)
	}
}

func TestCoordinatorInfoAndHealth(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 60, 3, 4)
	reg := obs.NewRegistry()
	tc := newTestCluster(t, ds, 2, 2, skycube.RoundRobinPartition, CoordinatorOptions{Metrics: reg})

	if err := tc.coord.Refresh(t.Context()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	req := httptest.NewRequest(http.MethodGet, "/info", nil)
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	var info infoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Dims != 3 || len(info.Shards) != 2 || len(info.Shards[0].Replicas) != 2 {
		t.Fatalf("info = %+v", info)
	}
	if info.Shards[1].IDBase != 1 || info.Shards[1].IDStride != 2 {
		t.Fatalf("shard 1 id mapping = %+v", info.Shards[1])
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", rec.Code, rec.Body.String())
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.ShardCount != 2 || h.ReplicaGoal != 2 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestCoordinatorShardInfoMismatchDetected(t *testing.T) {
	ds3 := skycube.GenerateSynthetic(skycube.Independent, 30, 3, 1)
	ds4 := skycube.GenerateSynthetic(skycube.Independent, 30, 4, 1)
	sh3, err := NewShard(ds3, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh3.Close()
	sh4, err := NewShard(ds4, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh4.Close()
	s3, s4 := httptest.NewServer(sh3), httptest.NewServer(sh4)
	defer s3.Close()
	defer s4.Close()
	coord, err := NewCoordinator([]ShardSpec{
		{Replicas: []string{s3.URL}},
		{Replicas: []string{s4.URL}},
	}, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Refresh(t.Context()); err == nil {
		t.Fatal("Refresh accepted shards with mismatched dimensionality")
	}
}

func TestCoordinatorLearnsIDMappingFromShards(t *testing.T) {
	// Specs without IDBase/IDStride: Refresh must learn them from
	// /shard/info so deletes still route correctly.
	ds := skycube.GenerateSynthetic(skycube.Independent, 60, 3, 8)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	var specs []ShardSpec
	for s, part := range parts {
		sh, err := NewShard(part, skycube.Options{Threads: 1}, ShardOptions{IDBase: s, IDStride: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()
		srv := httptest.NewServer(sh)
		defer srv.Close()
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}}) // no id mapping
	}
	coord, err := NewCoordinator(specs, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var dresp deleteResponse
	if err := json.Unmarshal(postJSON(t, coord, "/delete", deleteRequest{IDs: []int32{0, 1, 3}}, http.StatusOK), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.Deleted != 3 || dresp.Routed["0"] != 1 || dresp.Routed["1"] != 2 {
		t.Fatalf("delete after learned mapping = %+v", dresp)
	}
}

func TestCoordinatorOptionsDefaults(t *testing.T) {
	o := CoordinatorOptions{}.withDefaults()
	if o.Timeout != DefaultTimeout || o.HedgeDelay != DefaultHedgeDelay ||
		o.MaxAttempts != DefaultMaxAttempts || o.BreakerThreshold != DefaultBreakerThreshold {
		t.Fatalf("withDefaults = %+v", o)
	}
	if d := (CoordinatorOptions{HedgeDelay: -1}).withDefaults().HedgeDelay; d != 0 {
		t.Fatalf("negative HedgeDelay should disable hedging, got %v", d)
	}
	if _, err := NewCoordinator(nil, CoordinatorOptions{}); err == nil {
		t.Fatal("NewCoordinator accepted an empty shard map")
	}
	if _, err := NewCoordinator([]ShardSpec{{}}, CoordinatorOptions{}); err == nil {
		t.Fatal("NewCoordinator accepted a shard with no replicas")
	}
}

// TestCoordinatorRejectsInsertOnRangePartition: in range mode (stride-1 id
// blocks) an appended row's global id would collide with the next shard's
// base, so the coordinator must refuse inserts outright — while deletes of
// existing ids stay unambiguous and keep working.
func TestCoordinatorRejectsInsertOnRangePartition(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 40, 3, 3)
	tc := newTestCluster(t, ds, 2, 1, skycube.RangePartition, CoordinatorOptions{})

	postJSON(t, tc.coord, "/insert",
		insertRequest{Points: [][]float32{{0.1, 0.2, 0.3}}}, http.StatusConflict)

	var dresp deleteResponse
	if err := json.Unmarshal(postJSON(t, tc.coord, "/delete", deleteRequest{IDs: []int32{0, 25}}, http.StatusOK), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.Deleted != 2 || dresp.Routed["0"] != 1 || dresp.Routed["1"] != 1 {
		t.Fatalf("range-mode delete = %+v, want one id per shard", dresp)
	}
}

// TestCoordinatorInsertRetryIsIdempotent times out the first /insert
// attempt AFTER the shard has applied it: the coordinator's retry carries
// the same batch id, so the shard replays the original response instead of
// inserting the points a second time.
func TestCoordinatorInsertRetryIsIdempotent(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 60, 3, 12)
	sh, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	var swallowed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/insert" && swallowed.CompareAndSwap(false, true) {
			// Apply the insert but never answer: the coordinator times out
			// and retries a write that WAS applied.
			rec := httptest.NewRecorder()
			sh.ServeHTTP(rec, r)
			<-r.Context().Done()
			return
		}
		sh.ServeHTTP(w, r)
	}))
	defer srv.Close()
	coord, err := NewCoordinator([]ShardSpec{{Replicas: []string{srv.URL}}}, CoordinatorOptions{
		Timeout:     100 * time.Millisecond,
		HedgeDelay:  -1,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ins := [][]float32{{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}}
	var resp insertResponse
	if err := json.Unmarshal(postJSON(t, coord, "/insert", insertRequest{Points: ins}, http.StatusOK), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 2 || resp.IDs[0] != 60 || resp.IDs[1] != 61 {
		t.Fatalf("replayed insert ids = %v, want the first application's [60 61]", resp.IDs)
	}
	postJSON(t, coord, "/flush", struct{}{}, http.StatusOK)
	if live := sh.Updater().Current().Live(); live != 62 {
		t.Fatalf("live points after retried insert = %d, want 62 (retry double-inserted)", live)
	}
}

// TestClient4xxNotRetriedAndNoBreakerTrip: a 4xx is a deterministic caller
// error — it must not be retried (every replica answers the same) and must
// not count toward the replica's circuit breaker.
func TestClient4xxNotRetriedAndNoBreakerTrip(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad subspace", http.StatusBadRequest)
	}))
	defer srv.Close()
	brk := newBreaker(2, time.Minute, nil)
	g := &shardGroup{name: "s", replicas: []*replica{{url: srv.URL, brk: brk}}}
	c := &fanoutClient{
		hc:          srv.Client(),
		timeout:     time.Second,
		maxAttempts: 3,
		backoffBase: time.Millisecond,
		backoffMax:  time.Millisecond,
		metrics:     obs.NewClusterMetrics(nil),
	}
	if _, err := c.get(context.Background(), g, "/shard/cuboid?subspace=1", 0); err == nil || !isCallerError(err) {
		t.Fatalf("get: err = %v, want a caller (4xx) error", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("get retried a 4xx: %d attempts, want 1", n)
	}
	if brk.State() != breakerClosed {
		t.Fatal("a 4xx counted toward the breaker on get")
	}
	if _, err := c.post(context.Background(), g, "/insert", []byte("{}"), 0); err == nil || !isCallerError(err) {
		t.Fatalf("post: err = %v, want a caller (4xx) error", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("post retried a 4xx: %d total attempts, want 2", n)
	}
	if brk.State() != breakerClosed {
		t.Fatal("a 4xx counted toward the breaker on post")
	}
}

// TestCoordinatorSurfacesWriteDivergence: when a write-all insert lands on
// some replicas but exhausts retries on another, the shard's replica set is
// no longer byte-identical — /info and /healthz must say so.
func TestCoordinatorSurfacesWriteDivergence(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 30, 3, 7)
	shA, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer shA.Close()
	shB, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer shB.Close()
	srvA := httptest.NewServer(shA)
	defer srvA.Close()
	// Replica B takes every request except /insert, which always fails as a
	// replica (5xx) error.
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/insert" {
			http.Error(w, "disk full", http.StatusInternalServerError)
			return
		}
		shB.ServeHTTP(w, r)
	}))
	defer srvB.Close()
	coord, err := NewCoordinator([]ShardSpec{{Name: "s0", Replicas: []string{srvA.URL, srvB.URL}}},
		CoordinatorOptions{
			Timeout:     time.Second,
			HedgeDelay:  -1,
			MaxAttempts: 2,
			BackoffBase: time.Millisecond,
			BackoffMax:  time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}

	postJSON(t, coord, "/insert",
		insertRequest{Points: [][]float32{{0.5, 0.5, 0.5}}}, http.StatusBadGateway)

	req := httptest.NewRequest(http.MethodGet, "/info", nil)
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	var info infoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Shards) != 1 || !info.Shards[0].WritesDiverged {
		t.Fatalf("/info after partial write-all = %+v, want writes_diverged on s0", info.Shards)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d (diverged shard still serves reads)", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || len(h.DivergedShards) != 1 || h.DivergedShards[0] != "s0" {
		t.Fatalf("healthz after partial write-all = %+v, want degraded with diverged s0", h)
	}
}

// waitReady polls the shard's /healthz until ready (updater warm-up).
func waitReady(t *testing.T, h http.Handler) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("shard never became ready")
}

func TestShardServesHealthz(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 50, 3, 6)
	sh, err := NewShard(ds, skycube.Options{Threads: 1}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	waitReady(t, sh)

	sh.Server().SetReady(false)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	sh.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while not ready: status %d, want 503", rec.Code)
	}
	sh.Server().SetReady(true)
	waitReady(t, sh)
}
