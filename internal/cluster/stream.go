package cluster

// Shard-side state-transfer and rebalance endpoints. Together with
// internal/rebalance they form the elastic-membership protocol:
//
//	GET  /shard/snapshot          pin a fresh checkpoint and stream its bytes
//	GET  /shard/tail?from=&skip=  the WAL records appended after a snapshot
//	POST /shard/sync              pull the bootstrap source's remaining tail
//	POST /shard/seal              {"base": N}: seal a fresh insert-id block
//	POST /shard/prune             {"labels", "own", "drop"}: delete rows the
//	                              new ring hands to a dropped label
//
// Snapshot and tail are read-only and always safe. Sync, seal and prune are
// cutover steps the coordinator drives write-quiesced (its map swap gates
// inserts and deletes around them).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"skycube/internal/rebalance"
	"skycube/internal/wal"
)

// handleSnapshot serves GET /shard/snapshot: checkpoint now — pinning the
// current epoch so the paired tail starts exactly where the snapshot ends —
// and stream the checkpoint file verbatim. Requires a durable shard; an
// in-memory shard has no checkpoint format to serve.
func (s *Shard) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
		return
	}
	st := s.up.Store()
	if st == nil {
		http.Error(w, "shard is not durable: no snapshot stream to serve", http.StatusServiceUnavailable)
		return
	}
	start := time.Now()
	if err := st.Checkpoint(s.up.Delta()); err != nil {
		http.Error(w, fmt.Sprintf("checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	raw, seq, err := st.StreamSnapshot()
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot stream: %v", err), http.StatusInternalServerError)
		return
	}
	s.rbm.SnapshotServed(len(raw), time.Since(start))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(rebalance.TailSeqHeader, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Write(raw)
}

// handleTail serves GET /shard/tail?from=&skip=: the CRC-framed records of
// the contiguous segment chain from `from` through the active segment,
// minus the first `skip` already delivered. 410 Gone means a checkpoint
// truncated the chain — the caller restarts from a fresh snapshot.
func (s *Shard) handleTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed (use GET)", http.StatusMethodNotAllowed)
		return
	}
	st := s.up.Store()
	if st == nil {
		http.Error(w, "shard is not durable: no WAL tail to serve", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, fmt.Sprintf("bad from %q (need a segment seq >= 1)", q.Get("from")), http.StatusBadRequest)
		return
	}
	skip := 0
	if ss := q.Get("skip"); ss != "" {
		if skip, err = strconv.Atoi(ss); err != nil || skip < 0 {
			http.Error(w, fmt.Sprintf("bad skip %q", ss), http.StatusBadRequest)
			return
		}
	}
	recs, total, err := st.TailChain(from, skip)
	if err != nil {
		if errors.Is(err, wal.ErrTailTruncated) {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := wal.EncodeRecords(recs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.rbm.TailServed(len(recs), len(body))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(rebalance.TailSeqHeader, strconv.FormatUint(st.Seq(), 10))
	w.Header().Set(rebalance.TailTotalHeader, strconv.Itoa(total))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// syncResponse is the POST /shard/sync payload: the catch-up's outcome and
// the shard's resulting frontier, which the coordinator compares against the
// source shard's before cutting a split over.
type syncResponse struct {
	Applied int    `json:"applied"`
	Epoch   uint64 `json:"epoch"`
	Live    int    `json:"live"`
}

// handleSync serves POST /shard/sync: pull the bootstrap source's WAL tail
// from this shard's cursor and apply it. The coordinator calls this
// write-quiesced as a split's final catch-up; the response's epoch matching
// the source's proves the copy converged.
func (s *Shard) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed (use POST)", http.StatusMethodNotAllowed)
		return
	}
	s.sourceMu.Lock()
	defer s.sourceMu.Unlock()
	if s.source == nil {
		http.Error(w, "shard has no bootstrap source attached", http.StatusPreconditionFailed)
		return
	}
	applied, err := s.source.CatchUp(r.Context())
	if err != nil {
		http.Error(w, fmt.Sprintf("sync: %v", err), http.StatusBadGateway)
		return
	}
	snap := s.up.Current()
	writeJSON(w, syncResponse{Applied: applied, Epoch: snap.Epoch(), Live: snap.Live()})
}

// sealRequest is the POST /shard/seal body.
type sealRequest struct {
	// Base is the first global id of the fresh stride-1 insert block; it must
	// lie in the reserved split region (>= SplitBlockBase).
	Base int32 `json:"base"`
}

// sealResponse echoes the resulting scheme.
type sealResponse struct {
	IDSegments []IDSegment `json:"id_segments"`
	Sealed     bool        `json:"sealed"`
}

// handleSeal serves POST /shard/seal: extend the id scheme with a fresh
// stride-1 block covering every row inserted from now on. The coordinator
// calls this write-quiesced at a split cutover — with no insert in flight,
// the next-local-row boundary captured here is exact. Repeating a seal with
// the same base is a no-op (cutover retries are idempotent).
func (s *Shard) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed (use POST)", http.StatusMethodNotAllowed)
		return
	}
	var req sealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad seal request: %v", err), http.StatusBadRequest)
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	cur := s.scheme.Load()
	last := cur.segs[len(cur.segs)-1]
	if last.Stride == 1 && last.Base == req.Base {
		writeJSON(w, sealResponse{IDSegments: cur.segments(), Sealed: true})
		return
	}
	snap := s.up.Current()
	pendingInserts, _ := s.up.Pending()
	nextLocal := int32(snap.Len() + pendingInserts)
	sealed, err := cur.seal(nextLocal, req.Base)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.scheme.Store(sealed)
	writeJSON(w, sealResponse{IDSegments: sealed.segments(), Sealed: true})
}

// pruneRequest is the POST /shard/prune body: the post-cutover shard labels
// (the new ring), which label this shard is, and which labels' rows to drop.
// After a split copies a parent wholesale into a child, each copied row is
// live on both; prune deletes it from whichever side the new ring does NOT
// assign it to — parent drops [child], child drops every label but its own —
// so each copied row survives on exactly one shard. Rows the new ring
// assigns to labels outside drop stay put: reads fan out to every shard, so
// a row's residence never needs to match its ring arc.
type pruneRequest struct {
	Labels []string `json:"labels"`
	Own    string   `json:"own"`
	Drop   []string `json:"drop"`
}

// pruneResponse reports the sweep's outcome.
type pruneResponse struct {
	Examined int    `json:"examined"`
	Deleted  int    `json:"deleted"`
	Failed   int    `json:"failed,omitempty"`
	Epoch    uint64 `json:"epoch"`
	Live     int    `json:"live"`
}

// handlePrune serves POST /shard/prune. Victims go through the ordinary
// journaled Delete path, so the sweep is durable, crash-recoverable, and
// (applied to each replica of a group) deterministic.
func (s *Shard) handlePrune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed (use POST)", http.StatusMethodNotAllowed)
		return
	}
	var req pruneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad prune request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Labels) == 0 || len(req.Drop) == 0 {
		http.Error(w, "prune needs labels and a non-empty drop list", http.StatusBadRequest)
		return
	}
	ownIdx := -1
	for i, l := range req.Labels {
		if l == req.Own {
			ownIdx = i
		}
	}
	if ownIdx < 0 {
		http.Error(w, fmt.Sprintf("own label %q not in labels", req.Own), http.StatusBadRequest)
		return
	}
	drop := make(map[int]bool, len(req.Drop))
	for _, d := range req.Drop {
		found := false
		for i, l := range req.Labels {
			if l == d {
				drop[i] = true
				found = true
			}
		}
		if !found {
			http.Error(w, fmt.Sprintf("drop label %q not in labels", d), http.StatusBadRequest)
			return
		}
	}
	if drop[ownIdx] {
		http.Error(w, fmt.Sprintf("own label %q cannot be in the drop list", req.Own), http.StatusBadRequest)
		return
	}

	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	start := time.Now()
	ring := newRing(req.Labels)
	snap := s.up.Current()
	examined, deleted, failed := 0, 0, 0
	for row := int32(0); int(row) < snap.Len(); row++ {
		if !snap.Alive(row) {
			continue
		}
		examined++
		if !drop[ring.owner(hashPoint(snap.Point(row)))] {
			continue
		}
		// Per-row errors (e.g. a concurrent delete already got it) don't
		// abort the sweep: the goal state is "victims gone", and a row that
		// is already gone is at the goal.
		if err := s.up.Delete(row); err != nil {
			failed++
			continue
		}
		deleted++
	}
	after := s.up.Flush()
	if st := s.up.Store(); st != nil {
		if err := st.Commit(); err != nil {
			http.Error(w, fmt.Sprintf("prune commit: %v", err), http.StatusInternalServerError)
			return
		}
	}
	s.rbm.Prune(examined, deleted, time.Since(start))
	writeJSON(w, pruneResponse{
		Examined: examined,
		Deleted:  deleted,
		Failed:   failed,
		Epoch:    after.Epoch(),
		Live:     after.Live(),
	})
}
