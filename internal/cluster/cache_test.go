// Tests of the cluster tier's materialized read path: the coordinator's
// write-generation memo (short-circuiting the fan-out entirely), its
// invalidation by routed writes, the never-cache-partial rule with
// Cache-Control: no-store, and the shard-level cuboid cache.
package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skycube"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// fastOpts are coordinator options tuned for tests (short timeouts, metrics
// attached so cache counters are observable).
func fastOpts(reg *obs.Registry) CoordinatorOptions {
	return CoordinatorOptions{
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Metrics:     reg,
	}
}

// TestCoordinatorCacheShortCircuit proves a warm coordinator answers with
// no shard traffic at all: prime the memo, kill every shard, and the same
// query must still answer 200 with identical bytes.
func TestCoordinatorCacheShortCircuit(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Correlated, 200, 3, 61)
	reg := obs.NewRegistry()
	tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, fastOpts(reg))

	first := querySkyline(t, tc.coord, mask.Mask(0b011), http.StatusOK)
	// Kill every replica of every shard.
	for _, reps := range tc.servers {
		for _, srv := range reps {
			srv.Close()
		}
	}
	second := querySkyline(t, tc.coord, mask.Mask(0b011), http.StatusOK)
	if !equalIDs(first.IDs, second.IDs) {
		t.Fatalf("cached answer diverged: %v vs %v", first.IDs, second.IDs)
	}
	if tc.coord.cacheCM.Hits() < 1 {
		t.Fatalf("no coordinator cache hit recorded; hits=%v", tc.coord.cacheCM.Hits())
	}
	// A cold subspace, by contrast, must now fail (all shards unreachable).
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0", nil)
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("cold query with dead shards: status %d, want 502", rec.Code)
	}
}

// TestCoordinatorCacheInvalidatedByWrite checks a routed write rolls the
// generation so the next read re-gathers and sees the mutation immediately.
func TestCoordinatorCacheInvalidatedByWrite(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 67)
	tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, fastOpts(obs.NewRegistry()))

	before := querySkyline(t, tc.coord, mask.Full(3), http.StatusOK)
	// A point dominating everything: after insert+flush it IS the skyline.
	postJSON(t, tc.coord, "/insert", map[string]interface{}{
		"points": [][]float32{{-1, -1, -1}},
	}, http.StatusOK)
	postJSON(t, tc.coord, "/flush", map[string]interface{}{}, http.StatusOK)

	after := querySkyline(t, tc.coord, mask.Full(3), http.StatusOK)
	if equalIDs(before.IDs, after.IDs) {
		t.Fatalf("read after write served stale ids %v", after.IDs)
	}
	if len(after.IDs) != 1 {
		t.Fatalf("dominating point: skyline %v, want a single id", after.IDs)
	}
}

// TestCoordinatorETagRoundTrip: the merged response carries a strong
// validator and revalidates with 304 once warm.
func TestCoordinatorETagRoundTrip(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 150, 3, 71)
	tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, fastOpts(obs.NewRegistry()))

	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1", nil)
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	etag := rec.Header().Get("Etag")
	if etag == "" {
		t.Fatal("merged response carries no ETag")
	}
	req = httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match: status %d, want 304", rec.Code)
	}
}

// TestPartialResponseNeverCachedAndNoStore: with a whole shard down the
// coordinator answers 206 with Cache-Control: no-store, does not memoize
// the degraded answer, and serves the complete answer again once the shard
// returns.
func TestPartialResponseNeverCachedAndNoStore(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 73)
	reg := obs.NewRegistry()
	opts := fastOpts(reg)
	opts.BreakerThreshold = 1000 // keep probing the dead shard, no breaker latch
	tc := newTestCluster(t, ds, 2, 1, skycube.RoundRobinPartition, opts)
	if err := tc.coord.Refresh(t.Context()); err != nil {
		t.Fatal(err)
	}
	full := querySkyline(t, tc.coord, mask.Full(3), http.StatusOK)

	// Invalidate the memo (the write fails — shard 1 is about to die — but
	// still rolls the generation), then take shard 1 down.
	tc.servers[1][0].Close()
	postJSON(t, tc.coord, "/flush", map[string]interface{}{}, http.StatusBadGateway)

	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1,2", nil)
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("dead shard: status %d, want 206: %s", rec.Code, rec.Body)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("partial response Cache-Control = %q, want no-store", cc)
	}
	if !strings.Contains(rec.Body.String(), `"partial":true`) {
		t.Fatalf("206 body lacks partial flag: %s", rec.Body)
	}
	// The degraded answer must not have been memoized: repeating the query
	// gathers again (and stays partial while the shard is down)...
	rec2 := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1,2", nil))
	if rec2.Code != http.StatusPartialContent {
		t.Fatalf("repeat during outage: status %d, want 206", rec2.Code)
	}
	// ...and once the shard is back (fresh server over the same partition),
	// the complete answer returns.
	sh, err := NewShard(tc.parts[1], skycube.Options{Threads: 2}, ShardOptions{IDBase: 1, IDStride: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	srv := httptest.NewServer(sh)
	t.Cleanup(srv.Close)
	tc.coord.curMap().shards[1].replicas[0].url = srv.URL

	healed := querySkyline(t, tc.coord, mask.Full(3), http.StatusOK)
	if !equalIDs(healed.IDs, full.IDs) {
		t.Fatalf("healed cluster ids %v, want %v", healed.IDs, full.IDs)
	}
}

// TestShardCuboidCacheWarms checks the shard-level cuboid cache: the
// second identical fan-out request is a hit and byte-identical.
func TestShardCuboidCacheWarms(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Correlated, 150, 3, 79)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sh, err := NewShard(parts[0], skycube.Options{Threads: 2},
		ShardOptions{IDBase: 0, IDStride: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)

	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/shard/cuboid?subspace=3", nil)
		rec := httptest.NewRecorder()
		sh.ServeHTTP(rec, req)
		return rec
	}
	first, second := do(), do()
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("shard cuboid bytes changed between cold and warm")
	}
	if sh.cm.Hits() < 1 {
		t.Fatalf("no shard cache hit recorded; hits=%v", sh.cm.Hits())
	}
	// The cuboid response revalidates too.
	req := httptest.NewRequest(http.MethodGet, "/shard/cuboid?subspace=3", nil)
	req.Header.Set("If-None-Match", first.Header().Get("Etag"))
	rec := httptest.NewRecorder()
	sh.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("cuboid If-None-Match: status %d, want 304", rec.Code)
	}
}
