package cluster

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skycube/internal/dom"
	"skycube/internal/mask"
	"skycube/internal/obs"
	"skycube/internal/rcache"
)

// ShardSpec names one shard of the cluster: its replica URLs (all serving
// the same partition) and the partition's global-id arithmetic. Leave
// IDBase/IDStride zero to have the coordinator learn them from
// GET /shard/info at Refresh time.
type ShardSpec struct {
	// Name labels the shard in metrics and responses; "" means its index.
	Name string
	// Replicas are base URLs ("http://host:port") of the shard's replicas.
	Replicas []string
	// IDBase/IDStride map the shard's local row r to global id
	// IDBase + r*IDStride.
	IDBase, IDStride int
}

// CoordinatorOptions tune the scatter-gather serving path. The zero value
// uses the Default* constants.
type CoordinatorOptions struct {
	// Timeout bounds each HTTP attempt against a replica.
	Timeout time.Duration
	// HedgeDelay is how long the primary replica may stay silent before a
	// hedge request races a second replica; negative disables hedging.
	HedgeDelay time.Duration
	// MaxAttempts caps tries per shard per request (1 = no retries).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential retry backoff
	// (jitter of ±50% is always applied).
	BackoffBase, BackoffMax time.Duration
	// BreakerThreshold consecutive failures open a replica's breaker for
	// BreakerCooldown, during which the replica is skipped outright.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Extended asks shards for the extended skyline S⁺_δ instead of the
	// materialised S_δ. Both merge to the identical global skyline; S_δ is
	// an O(1) cube lookup per shard, S⁺_δ is the literal candidate set of
	// the partition-and-merge theory (and an input scan per query).
	Extended bool
	// Prune enables the communication-efficient gather (see prune.go): a
	// prelude round fetches per-shard region corners, whole shards whose
	// region is dominated are skipped, and the remaining shards drop
	// candidates dominated by foreign corners before replying. The merged
	// result is byte-identical to the unpruned gather; any prelude failure
	// or epoch race falls back to the plain path.
	Prune bool
	// PreFilterK, when > 0, additionally broadcasts each shard's K best
	// points (smallest coordinate sum in the queried subspace) as filter
	// points — the representative-point pre-filter. Implies Prune. The
	// pre-filter is skipped automatically below PreFilterMinShards shards.
	PreFilterK int
	// PreFilterMinShards is the minimum cluster size at which PreFilterK
	// takes effect (0 = DefaultPreFilterMinShards).
	PreFilterMinShards int
	// CacheEntries bounds the coordinator's merged-response cache (LRU);
	// 0 means rcache.DefaultEntries.
	CacheEntries int
	// DisableCache turns merged-response memoization off. With it set every
	// query scatter-gathers; without it a query whose answer cannot have
	// changed — no write was routed through this coordinator since it was
	// cached — is served as pre-encoded bytes with no shard traffic at all.
	// Writes applied directly to shards (bypassing this coordinator) are
	// invisible to the memo; run multi-writer topologies with DisableCache.
	DisableCache bool
	// Metrics, if non-nil, receives skycube_cluster_* families and enables
	// GET /metrics.
	Metrics *obs.Registry
	// Logger, if non-nil, logs one line per proxied failure.
	Logger *log.Logger
	// Client overrides the HTTP client (tests inject one).
	Client *http.Client
	// Requests, if non-nil, enables distributed request tracing: sampled
	// queries mint a trace id, propagate it (as a traceparent header) over
	// every replica attempt, record typed span events into this ring, and
	// two endpoints are mounted — GET /debug/requests (the ring as JSON,
	// in-flight queries included) and GET /trace/query?id=<trace> (the
	// cross-process Chrome trace assembled from this ring plus every
	// contacted shard's ring). Sampled-out queries keep the warm-cache
	// fast path allocation-free.
	Requests *obs.RequestRing
	// SampleEvery admits one in N queries into tracing (0 = trace only
	// requests arriving with a traceparent header or ?explain=1).
	SampleEvery int
	// SlowQuery, when > 0, logs one structured line (with the trace id when
	// sampled) for every /skyline query at least this slow.
	SlowQuery time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = DefaultHedgeDelay
	} else if o.HedgeDelay < 0 {
		o.HedgeDelay = 0
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.PreFilterK > 0 {
		o.Prune = true
	}
	if o.PreFilterMinShards <= 0 {
		o.PreFilterMinShards = DefaultPreFilterMinShards
	}
	return o
}

// shardMap is one immutable generation of the cluster topology: the shard
// groups, the consistent-hash ring over their labels, and the monotonic
// generation number stamped on every fan-out request. Membership changes
// (join, split, drain) build a NEW map and swap the coordinator's pointer
// atomically; every request pins exactly one map for its whole lifetime, so
// a query is answered entirely on one topology — old or new, never a mix.
type shardMap struct {
	gen    uint64
	shards []*shardGroup
	ring   *ring
}

// labels returns the group names in map order (the ring's label list).
func (m *shardMap) labels() []string {
	out := make([]string, len(m.shards))
	for i, g := range m.shards {
		out[i] = g.name
	}
	return out
}

// find returns the group with the given name, nil if absent.
func (m *shardMap) find(name string) *shardGroup {
	for _, g := range m.shards {
		if g.name == name {
			return g
		}
	}
	return nil
}

// claim is one shard's claim on a global id: the group and the local row
// its scheme maps the id to.
type claim struct {
	g     *shardGroup
	local int32
}

// claimants returns every group whose id scheme claims the global id. After
// a split, a row copied from parent to child is claimed by both (the
// parent's open-ended arithmetic still reaches it) — deletes broadcast to
// all claimants so whichever side still holds the row drops it.
func (m *shardMap) claimants(id int32) []claim {
	var out []claim
	for _, g := range m.shards {
		s := g.scheme.Load()
		if s == nil {
			continue
		}
		if local, ok := s.localOf(id); ok {
			out = append(out, claim{g: g, local: local})
		}
	}
	return out
}

// Coordinator owns the shard map and serves the cluster's public surface:
//
//	GET  /skyline?dims=0,2          exact global skyline (scatter, gather, merge)
//	GET  /info                      cluster topology and per-replica breaker state
//	GET  /healthz                   readiness: every shard has an admitting replica
//	GET  /metrics                   Prometheus exposition (when Metrics is set)
//	POST /insert                    {"points": [[...]]} routed by consistent hash
//	POST /delete                    {"ids": [global ids]} routed by id arithmetic
//	POST /flush                     broadcast: apply buffered batches everywhere
//	GET  /admin/map                 current shard map (generation, groups, schemes)
//	POST /admin/join                add a caught-up replica to a shard group
//	POST /admin/split               cut a pre-bootstrapped child shard over
//	POST /admin/drain               remove a replica from a shard group
//	POST /admin/refresh             re-probe shards, clear repaired divergence
type Coordinator struct {
	// smap is the current topology; handlers pin one map per request.
	smap   atomic.Pointer[shardMap]
	client *fanoutClient
	cm     *obs.ClusterMetrics
	rbm    *obs.RebalanceMetrics
	// km folds the process-wide dominance-kernel counters (the merge filter
	// runs in this process) into the registry at /metrics scrape time.
	km *obs.KernelMetrics
	opt    CoordinatorOptions
	mux    *http.ServeMux

	// writeMu gates mutations against membership cutovers: insert, delete
	// and flush hold it shared; a split cutover holds it exclusively while
	// it converges the child and swaps the map, so no write is in flight
	// across the swap (reads are never blocked — a read racing a cutover is
	// answered on whichever map it pinned, or rejected by a shard's
	// stale-generation check and retried on the new one).
	writeMu sync.RWMutex
	// adminMu serialises membership operations with each other.
	adminMu sync.Mutex

	// cache memoizes merged /skyline responses under two key families: the
	// write-generation key ("q|" + query, epoch = writeGen) that lets a
	// repeat query skip the fan-out — hedges, retries, breakers and merge —
	// entirely, and the shard-epoch-vector key ("v|" + query, epoch = FNV
	// of the gathered epochs) that skips the merge and encode when a
	// re-gather proves the shards unchanged. nil when disabled.
	cache   *rcache.Cache
	cacheCM *obs.CacheMetrics
	// writeGen counts mutations routed through this coordinator; it
	// advances when a write finishes (successfully or not), so any response
	// gathered concurrently with the write is cached under an already-dead
	// generation. Shard epochs only advance through writes, which makes
	// generation-keyed reuse exact for single-writer topologies.
	writeGen atomic.Uint64

	// sampler admits queries into the request ring; nil (never sampling)
	// unless SampleEvery is positive.
	sampler *obs.Sampler

	mu   sync.Mutex
	dims int // learned from /shard/info; 0 until known
}

// NewCoordinator assembles a coordinator over the given shard map. Call
// Refresh (or let the first query do it) to learn dims and any id mappings
// left zero in the specs.
func NewCoordinator(specs []ShardSpec, opt CoordinatorOptions) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	opt = opt.withDefaults()
	cm := obs.NewClusterMetrics(opt.Metrics)
	c := &Coordinator{
		cm:  cm,
		km:  obs.NewKernelMetrics(opt.Metrics),
		opt: opt,
		client: &fanoutClient{
			hc:          opt.Client,
			timeout:     opt.Timeout,
			hedgeDelay:  opt.HedgeDelay,
			maxAttempts: opt.MaxAttempts,
			backoffBase: opt.BackoffBase,
			backoffMax:  opt.BackoffMax,
			metrics:     cm,
		},
	}
	c.rbm = obs.NewRebalanceMetrics(opt.Metrics)
	shards := make([]*shardGroup, 0, len(specs))
	for i, spec := range specs {
		if len(spec.Replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		name := spec.Name
		if name == "" {
			name = strconv.Itoa(i)
		}
		g := &shardGroup{name: name}
		if spec.IDStride != 0 {
			g.scheme.Store(newIDScheme(spec.IDBase, spec.IDStride))
		}
		for _, u := range spec.Replicas {
			g.replicas = append(g.replicas, c.newReplica(u))
		}
		shards = append(shards, g)
	}
	m := &shardMap{gen: 1, shards: shards}
	m.ring = newRing(m.labels())
	c.smap.Store(m)
	c.cacheCM = obs.NewCacheMetrics(opt.Metrics, "coordinator")
	if !opt.DisableCache {
		c.cache = rcache.New(opt.CacheEntries, c.cacheCM)
	}
	c.sampler = obs.NewSampler(opt.SampleEvery)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/skyline", c.handleSkyline)
	c.mux.HandleFunc("/info", c.handleInfo)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/insert", c.handleInsert)
	c.mux.HandleFunc("/delete", c.handleDelete)
	c.mux.HandleFunc("/flush", c.handleFlush)
	c.mux.HandleFunc("/admin/map", c.handleAdminMap)
	c.mux.HandleFunc("/admin/join", c.handleAdminJoin)
	c.mux.HandleFunc("/admin/split", c.handleAdminSplit)
	c.mux.HandleFunc("/admin/drain", c.handleAdminDrain)
	c.mux.HandleFunc("/admin/refresh", c.handleAdminRefresh)
	if opt.Metrics != nil {
		c.mux.HandleFunc("/metrics", c.handleMetrics)
	}
	if opt.Requests != nil {
		c.mux.Handle("/debug/requests", opt.Requests.Handler())
		c.mux.HandleFunc("/trace/query", c.handleTraceQuery)
	}
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// curMap returns the current shard map. Every handler calls this exactly
// once and threads the pinned map through its whole request.
func (c *Coordinator) curMap() *shardMap { return c.smap.Load() }

// newReplica wires one replica endpoint with its circuit breaker.
func (c *Coordinator) newReplica(u string) *replica {
	u = strings.TrimRight(u, "/")
	rep := &replica{url: u}
	rep.brk = newBreaker(c.opt.BreakerThreshold, c.opt.BreakerCooldown,
		func(state int) { c.cm.Breaker(u, state) })
	return rep
}

// Refresh queries each shard's /shard/info (through the full retry/hedge
// machinery) and fills in dims and any id schemes the specs left zero.
// Unreachable shards are tolerated — a dead shard must not block queries
// that can still answer partially — but a dimensionality conflict between
// reachable shards is an error, and so is learning dims from no shard at
// all.
//
// Refresh is also the divergence repair path: for a group whose write-all
// divergence flag is latched, it additionally fetches /shard/info from
// EVERY replica directly; if all are reachable and agree on (epoch, live)
// — e.g. after an operator rebuilt the lagging replica through a rebalance
// bootstrap — the flag clears and /healthz leaves "degraded".
func (c *Coordinator) Refresh(ctx context.Context) error {
	m := c.curMap()
	var firstErr error
	for _, g := range m.shards {
		body, err := c.client.get(ctx, g, "/shard/info", m.gen)
		if staleMapGen(err) {
			// A shard remembers a higher generation than this (likely
			// restarted) coordinator: adopt it and re-ask on the number the
			// shards accept.
			c.adoptMapGen(staleGenOf(err))
			m = c.curMap()
			body, err = c.client.get(ctx, g, "/shard/info", m.gen)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s info: %w", g.name, err)
			}
			continue
		}
		var info shardInfo
		if err := json.Unmarshal(body, &info); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s info: %w", g.name, err)
			}
			continue
		}
		c.mu.Lock()
		if c.dims == 0 {
			c.dims = info.Dims
		} else if c.dims != info.Dims {
			c.mu.Unlock()
			return fmt.Errorf("cluster: shard %s has %d dims, cluster has %d", g.name, info.Dims, c.dims)
		}
		c.mu.Unlock()
		if g.scheme.Load() == nil {
			if scheme, err := schemeFromShardInfo(info); err == nil {
				g.scheme.Store(scheme)
			} else if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s id scheme: %w", g.name, err)
			}
		}
		if g.diverged.Load() && c.replicasAgree(ctx, g) {
			g.diverged.Store(false)
		}
	}
	c.mu.Lock()
	learned := c.dims != 0
	c.mu.Unlock()
	if !learned {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("cluster: no shard reported its dimensionality")
	}
	return nil
}

// schemeFromShardInfo adopts the scheme a shard reports: the full segment
// list when present, the base/stride pair otherwise.
func schemeFromShardInfo(info shardInfo) (*idScheme, error) {
	if len(info.IDSegments) > 0 {
		return schemeFromSegments(info.IDSegments)
	}
	if info.IDStride <= 0 {
		return nil, fmt.Errorf("shard reported stride %d", info.IDStride)
	}
	return newIDScheme(info.IDBase, info.IDStride), nil
}

// replicasAgree fetches /shard/info from every replica of the group
// directly (no hedging — the point is to observe each replica itself) and
// reports whether all are reachable and agree on (epoch, live). Write-all
// replicas apply identical batches in order, so agreement on the frontier
// means the replica set has re-converged.
func (c *Coordinator) replicasAgree(ctx context.Context, g *shardGroup) bool {
	type frontier struct {
		epoch uint64
		live  int
		err   error
	}
	fs := make([]frontier, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			body, err := c.client.do(ctx, http.MethodGet, url+"/shard/info", nil, "", 0)
			if err != nil {
				fs[i].err = err
				return
			}
			var info shardInfo
			if err := json.Unmarshal(body, &info); err != nil {
				fs[i].err = err
				return
			}
			fs[i].epoch, fs[i].live = info.Epoch, info.Live
		}(i, rep.url)
	}
	wg.Wait()
	for i := range fs {
		if fs[i].err != nil || fs[i].epoch != fs[0].epoch || fs[i].live != fs[0].live {
			return false
		}
	}
	return len(fs) > 0
}

// dimsOrRefresh returns the cluster dimensionality, refreshing lazily.
func (c *Coordinator) dimsOrRefresh(ctx context.Context) (int, error) {
	c.mu.Lock()
	d := c.dims
	c.mu.Unlock()
	if d != 0 {
		return d, nil
	}
	if err := c.Refresh(ctx); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dims, nil
}

// gatherResult is one shard's contribution to a scatter-gather query.
type gatherResult struct {
	shard string
	resp  *cuboidResponse
	err   error
}

// mergeScratch holds one query's gather/merge slices, recycled through
// mergePool so the steady-state serving path stops allocating them.
type mergeScratch struct {
	cands []candidate
	ids   []int32
}

var mergePool = sync.Pool{New: func() interface{} { return new(mergeScratch) }}

// maxPooledCandidates caps what a scratch may retain back into the pool: a
// pathological huge answer should not pin its backing arrays (and the
// candidate point slices they reference) forever.
const maxPooledCandidates = 1 << 16

func (s *mergeScratch) release() {
	if cap(s.cands) > maxPooledCandidates {
		return
	}
	// Drop the point references so pooling does not pin decoded bodies.
	for i := range s.cands {
		s.cands[i] = candidate{}
	}
	s.cands = s.cands[:0]
	s.ids = s.ids[:0]
	mergePool.Put(s)
}

// gather scatters the cuboid request to every shard of the pinned map
// concurrently and collects the responses; failed shards (all replicas
// exhausted) are reported, not fatal. The candidate slice is assembled into
// scratch, pre-sized from the shard-reported counts instead of grown from
// zero. stale reports that a shard rejected the map generation — the caller
// must retry the whole query on the current map rather than serve a mix.
func (c *Coordinator) gather(ctx context.Context, m *shardMap, delta mask.Mask, scratch *mergeScratch) (_ []candidate, _ map[string]uint64, _ []string, stale bool) {
	path := fmt.Sprintf("/shard/cuboid?subspace=%d", uint32(delta))
	if c.opt.Extended {
		path += "&extended=true"
	}
	rec := obs.RecordFrom(ctx)
	ch := make(chan gatherResult, len(m.shards))
	for _, g := range m.shards {
		go func(g *shardGroup) {
			began := rec.Since()
			start := time.Now()
			body, err := c.client.get(ctx, g, path, m.gen)
			c.cm.Fanout(g.name, time.Since(start), err == nil)
			if err != nil {
				if c.opt.Logger != nil {
					c.opt.Logger.Printf("cluster: shard %s: %v", g.name, err)
				}
				if rec != nil {
					rec.Event(obs.Event{Kind: obs.EvShardResult, Shard: g.name,
						Start: began, Dur: rec.Since() - began, Err: err.Error()})
				}
				ch <- gatherResult{shard: g.name, err: err}
				return
			}
			var resp cuboidResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				ch <- gatherResult{shard: g.name, err: err}
				return
			}
			if rec != nil {
				rec.Event(obs.Event{Kind: obs.EvShardResult, Shard: g.name,
					Start: began, Dur: rec.Since() - began,
					N: int64(len(resp.IDs)), Bytes: int64(len(body)), Epoch: resp.Epoch})
			}
			ch <- gatherResult{shard: g.name, resp: &resp}
		}(g)
	}
	responses := make([]*cuboidResponse, 0, len(m.shards))
	epochs := make(map[string]uint64, len(m.shards))
	var failed []string
	total := 0
	for range m.shards {
		r := <-ch
		if r.err != nil {
			if staleMapGen(r.err) {
				stale = true
				c.adoptMapGen(staleGenOf(r.err))
			}
			failed = append(failed, r.shard)
			continue
		}
		epochs[r.shard] = r.resp.Epoch
		responses = append(responses, r.resp)
		total += len(r.resp.IDs)
	}
	if cap(scratch.cands) < total {
		scratch.cands = make([]candidate, 0, total)
	}
	cands := scratch.cands[:0]
	for _, resp := range responses {
		for i, id := range resp.IDs {
			cands = append(cands, candidate{id: id, point: resp.Points[i]})
		}
	}
	scratch.cands = cands
	sort.Strings(failed)
	return cands, epochs, failed, stale
}

// epochVectorHash folds the gathered per-shard epochs — in the fixed shard
// order, seeded with the map generation — into one 64-bit key: FNV-1a with
// a splitmix64 finalizer (see hashBytes). Two gathers with identical epoch
// vectors under the same map are byte-identical responses, so the hash
// memoizes the merge across unrelated writes; seeding with the generation
// keeps vectors from different topologies (same epochs, different shard
// sets) apart.
func (c *Coordinator) epochVectorHash(m *shardMap, epochs map[string]uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for b := 0; b < 8; b++ {
		h ^= (m.gen >> (8 * b)) & 0xff
		h *= prime64
	}
	for _, g := range m.shards {
		e := epochs[g.name]
		for b := 0; b < 8; b++ {
			h ^= (e >> (8 * b)) & 0xff
			h *= prime64
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// skylineResponse is the coordinator's /skyline payload. Partial is set —
// and the HTTP status is 206 — when a shard had no live replica: the ids
// are then a correct skyline of the reachable partitions only, never a
// silently wrong global answer. Candidates counts the shard-local skyline
// members the query CONSIDERED — shipped plus source-side filtered plus
// skipped-shard counts — so the pruned and unpruned gathers report the
// same value (and stay byte-identical).
type skylineResponse struct {
	Dims         []int             `json:"dims"`
	Subspace     uint32            `json:"subspace"`
	Count        int               `json:"count"`
	IDs          []int32           `json:"ids"`
	Candidates   int               `json:"candidates"`
	Partial      bool              `json:"partial"`
	FailedShards []string          `json:"failed_shards,omitempty"`
	Epochs       map[string]uint64 `json:"epochs,omitempty"`
}

// Key-variant prefixes namespace the coordinator cache's two key families
// (the Epoch field carries a write generation in one and an epoch-vector
// hash in the other, and the two value spaces must never collide).
const (
	genKeyPrefix   = "q|"
	epochKeyPrefix = "v|"
)

// partialError carries an explicitly partial (206) response out of the
// cache fill: partial answers are served but never memoized, and marked
// no-store so intermediaries don't cache a degraded answer either.
type partialError struct{ body []byte }

func (e *partialError) Error() string { return "cluster: partial response" }

// gatewayError is the all-shards-unreachable outcome (HTTP 502).
type gatewayError struct{ msg string }

func (e *gatewayError) Error() string { return e.msg }

func (c *Coordinator) handleSkyline(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	start := time.Now()
	// Tracing decision up front. The common untraced request pays a raw-query
	// Contains, a header lookup and a nil-sampler test — no parsing, no
	// allocation — so the warm-cache fast path below stays allocation-free.
	// ?explain=1 forces a record: the explain response is built from it.
	explain := strings.Contains(r.URL.RawQuery, "explain=") &&
		r.URL.Query().Get("explain") == "1"
	var rec *obs.ReqRecord
	if c.opt.Requests != nil || explain {
		if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
			if trace, _, ok := obs.ParseTraceparent(tp); ok {
				rec = obs.NewRecord("coordinator", trace, r.Method, r.URL.Path, r.URL.RawQuery)
			}
		}
		if rec == nil && (explain || c.sampler.Sample()) {
			rec = obs.NewRecord("coordinator", obs.NewTraceID(), r.Method, r.URL.Path, r.URL.RawQuery)
		}
		if rec != nil {
			c.opt.Requests.Add(rec)
			r = r.WithContext(obs.WithRecord(r.Context(), rec))
		}
	}
	status := c.serveSkyline(w, r, rec, explain, start)
	rec.Finish(status)
	if dur := time.Since(start); c.opt.SlowQuery > 0 && dur >= c.opt.SlowQuery {
		c.logSlow(r, status, dur, rec.TraceID())
	}
}

// serveSkyline answers one /skyline query and returns the HTTP status it
// wrote (for the trace record and the slow-query log).
func (c *Coordinator) serveSkyline(w http.ResponseWriter, r *http.Request, rec *obs.ReqRecord, explain bool, start time.Time) int {
	// Fast path: a query already answered at this write generation cannot
	// have changed (shard epochs advance only through routed writes), so
	// serve the memoized bytes with no fan-out — no hedges, no retries, no
	// breaker traffic, no merge. Explain always bypasses it: its purpose is
	// to observe the real fan-out.
	if c.cache != nil && !explain {
		if e, ok := c.cache.Get(rcache.Key{Epoch: c.writeGen.Load(), Variant: genKeyPrefix + r.URL.RawQuery}); ok {
			rec.Event(obs.Event{Kind: obs.EvCache, Detail: "hit-generation", Start: rec.Since()})
			rcache.Serve(w, r, e, c.cacheCM)
			c.cm.QueryTraced(time.Since(start), false, rec.TraceID())
			return http.StatusOK
		}
	}
	d, err := c.dimsOrRefresh(r.Context())
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster not ready: %v", err), http.StatusServiceUnavailable)
		return http.StatusServiceUnavailable
	}
	dims, delta, errMsg := parseDims(r.URL.Query().Get("dims"), d)
	if errMsg != "" {
		http.Error(w, errMsg, http.StatusBadRequest)
		return http.StatusBadRequest
	}
	if explain {
		return c.serveExplain(w, r, rec, dims, delta, start)
	}
	rec.Event(obs.Event{Kind: obs.EvCache, Detail: "miss", Start: rec.Since()})
	// Pin one shard map per attempt. A shard answering "stale generation"
	// proves a membership cutover swapped the map mid-query; the whole
	// query retries on the new map — shards gathered under different maps
	// are never mixed into one answer.
	var entry *rcache.Entry
	for attempt := 0; ; attempt++ {
		m := c.curMap()
		// Read the generation before gathering: a write landing mid-gather
		// bumps it when it completes, so whatever mix of old and new shard
		// state this query observed is stored under an already-dead key.
		gen := c.writeGen.Load()
		entry, err = c.cache.Fill(rcache.Key{Epoch: gen, Variant: genKeyPrefix + r.URL.RawQuery},
			func() (*rcache.Entry, error) {
				return c.computeSkyline(r.Context(), m, r.URL.RawQuery, dims, delta)
			})
		if errors.Is(err, errStaleMap) && attempt < 2 {
			rec.Event(obs.Event{Kind: obs.EvRetry, Detail: "stale-map", Start: rec.Since()})
			continue
		}
		break
	}
	if err != nil {
		var pe *partialError
		var ge *gatewayError
		switch {
		case errors.As(err, &pe):
			w.Header().Set("Cache-Control", "no-store")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusPartialContent)
			_, _ = w.Write(pe.body)
			c.cm.QueryTraced(time.Since(start), true, rec.TraceID())
			return http.StatusPartialContent
		case errors.As(err, &ge):
			http.Error(w, ge.msg, http.StatusBadGateway)
			c.cm.QueryTraced(time.Since(start), false, rec.TraceID())
			return http.StatusBadGateway
		case errors.Is(err, errStaleMap):
			http.Error(w, "shard map changed repeatedly during the query; retry",
				http.StatusServiceUnavailable)
			return http.StatusServiceUnavailable
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return http.StatusInternalServerError
		}
	}
	rcache.Serve(w, r, entry, c.cacheCM)
	c.cm.QueryTraced(time.Since(start), false, rec.TraceID())
	return http.StatusOK
}

// logSlow emits the coordinator's slow-query log line.
func (c *Coordinator) logSlow(r *http.Request, status int, dur time.Duration, traceID string) {
	if traceID == "" {
		traceID = "-"
	}
	line := fmt.Sprintf("slow-query method=%s path=%s query=%q status=%d dur=%s threshold=%s trace=%s",
		r.Method, r.URL.Path, r.URL.RawQuery, status, dur, c.opt.SlowQuery, traceID)
	if c.opt.Logger != nil {
		c.opt.Logger.Print(line)
		return
	}
	log.Print(line)
}

// errStaleMap reports that a shard rejected the pinned map's generation: a
// cutover swapped the map mid-query, and the whole query must rerun on the
// current map.
var errStaleMap = errors.New("cluster: shard map generation went stale mid-query")

// computeSkyline runs one scatter-gather-merge on the pinned map and
// returns the encoded response entry, or a partialError/gatewayError for
// degraded outcomes. Runs under the cache's singleflight gate, so
// concurrent identical cold queries share one fan-out.
func (c *Coordinator) computeSkyline(ctx context.Context, m *shardMap, rawQuery string, dims []int, delta mask.Mask) (*rcache.Entry, error) {
	rec := obs.RecordFrom(ctx)
	scratch := mergePool.Get().(*mergeScratch)
	defer scratch.release()
	cands, epochs, failed, considered, stale := c.gatherForQuery(ctx, m, delta, scratch)
	if stale {
		return nil, errStaleMap
	}
	if len(failed) == len(m.shards) {
		return nil, &gatewayError{msg: fmt.Sprintf("all %d shards unreachable", len(m.shards))}
	}
	if len(failed) == 0 {
		// Complete answer: the shard-epoch vector fully determines the
		// response bytes. If an identical vector was merged before — under
		// any write generation — reuse it and skip the merge and encode.
		evKey := rcache.Key{Epoch: c.epochVectorHash(m, epochs), Variant: epochKeyPrefix + rawQuery}
		if e, ok := c.cache.Get(evKey); ok {
			rec.Event(obs.Event{Kind: obs.EvCache, Detail: "hit-epoch-vector", Start: rec.Since()})
			return e, nil
		}
		mergeStart := rec.Since()
		ids := mergeSkyline(cands, delta, scratch.ids)
		scratch.ids = ids
		c.cm.Merge(len(cands), len(ids))
		rec.Event(obs.Event{Kind: obs.EvMerge, Start: mergeStart,
			Dur: rec.Since() - mergeStart, N: int64(len(ids))})
		resp := skylineResponse{
			Dims:       dims,
			Subspace:   uint32(delta),
			Count:      len(ids),
			IDs:        ids,
			Candidates: considered,
			Epochs:     epochs,
		}
		encStart := rec.Since()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			return nil, err
		}
		rec.Event(obs.Event{Kind: obs.EvEncode, Start: encStart,
			Dur: rec.Since() - encStart, Bytes: int64(buf.Len())})
		e := rcache.NewEntry(fmt.Sprintf(`"v%x-s%d"`, evKey.Epoch, uint32(delta)), buf.Bytes())
		c.cache.Put(evKey, e)
		return e, nil
	}
	mergeStart := rec.Since()
	ids := mergeSkyline(cands, delta, scratch.ids)
	scratch.ids = ids
	c.cm.Merge(len(cands), len(ids))
	rec.Event(obs.Event{Kind: obs.EvMerge, Start: mergeStart,
		Dur: rec.Since() - mergeStart, N: int64(len(ids))})
	resp := skylineResponse{
		Dims:         dims,
		Subspace:     uint32(delta),
		Count:        len(ids),
		IDs:          ids,
		Candidates:   considered,
		Partial:      true,
		FailedShards: failed,
		Epochs:       epochs,
	}
	encStart := rec.Since()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, err
	}
	rec.Event(obs.Event{Kind: obs.EvEncode, Start: encStart,
		Dur: rec.Since() - encStart, Bytes: int64(buf.Len())})
	return nil, &partialError{body: buf.Bytes()}
}

// infoResponse is the coordinator's /info payload.
type infoResponse struct {
	Shards   []shardStatus `json:"shards"`
	Dims     int           `json:"dims"`
	Extended bool          `json:"extended"`
	MapGen   uint64        `json:"map_gen"`
}

type shardStatus struct {
	Name       string          `json:"name"`
	IDBase     int             `json:"id_base"`
	IDStride   int             `json:"id_stride"`
	IDSegments []IDSegment     `json:"id_segments,omitempty"`
	Replicas   []replicaStatus `json:"replicas"`
	// WritesDiverged reports that a write-all POST partially succeeded on
	// this shard: its replicas are no longer byte-identical and need a
	// rebuild (Refresh clears it once every replica agrees again).
	WritesDiverged bool `json:"writes_diverged,omitempty"`
}

type replicaStatus struct {
	URL     string `json:"url"`
	Breaker string `json:"breaker"` // closed | open | half-open
}

func breakerName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

func (c *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	c.mu.Lock()
	d := c.dims
	c.mu.Unlock()
	m := c.curMap()
	resp := infoResponse{Dims: d, Extended: c.opt.Extended, MapGen: m.gen}
	for _, g := range m.shards {
		base, stride := g.idMap()
		st := shardStatus{Name: g.name, IDBase: base, IDStride: stride, WritesDiverged: g.diverged.Load()}
		if s := g.scheme.Load(); s != nil {
			st.IDSegments = s.segments()
		}
		for _, rep := range g.replicas {
			st.Replicas = append(st.Replicas, replicaStatus{URL: rep.url, Breaker: breakerName(rep.brk.State())})
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, resp)
}

// healthResponse is the coordinator's /healthz payload: ready means every
// shard currently has at least one replica whose breaker is not open.
type healthResponse struct {
	Status     string   `json:"status"`
	Ready      bool     `json:"ready"`
	DownShards []string `json:"down_shards,omitempty"`
	// DivergedShards lists shards whose replicas a partial write-all
	// failure left byte-inconsistent. The cluster still serves (degraded):
	// reads from such a shard may flip-flop depending on which replica
	// answers, so operators should rebuild the listed shards.
	DivergedShards []string `json:"diverged_shards,omitempty"`
	ShardCount     int      `json:"shards"`
	ReplicaGoal    int      `json:"replicas_per_shard"`
	MapGen         uint64   `json:"map_gen"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	m := c.curMap()
	resp := healthResponse{Status: "ok", Ready: true, ShardCount: len(m.shards), MapGen: m.gen}
	for _, g := range m.shards {
		if len(g.replicas) > resp.ReplicaGoal {
			resp.ReplicaGoal = len(g.replicas)
		}
		live := 0
		for _, rep := range g.replicas {
			if rep.brk.State() != breakerOpen {
				live++
			}
		}
		if live == 0 {
			resp.Ready = false
			resp.DownShards = append(resp.DownShards, g.name)
		}
		if g.diverged.Load() {
			resp.DivergedShards = append(resp.DivergedShards, g.name)
		}
	}
	if !resp.Ready {
		resp.Status = "unavailable"
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	if len(resp.DivergedShards) > 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ks := dom.KernelStats()
	c.km.Sync(ks.BlockSweeps, ks.StopPointExits, ks.ScalarFallbacks)
	// Exemplars use OpenMetrics syntax that classic text-format parsers
	// reject, so they are opt-in per scrape.
	if r.URL.Query().Get("exemplars") == "1" {
		_ = c.opt.Metrics.WritePrometheusExemplars(w)
		return
	}
	_ = c.opt.Metrics.WritePrometheus(w)
}

// insertRequest / insertResponse mirror the shard server's protocol, but
// with global ids: the coordinator hashes each point onto the ring, writes
// it to every replica of the owning shard, and maps the shard's local ids
// through the shard's id arithmetic.
type insertRequest struct {
	Points [][]float32 `json:"points"`
	// Batch optionally makes the insert idempotent end-to-end: the
	// coordinator derives per-shard batch ids from it (generating one when
	// absent), and shard replicas replay rather than re-apply a batch id
	// they have already accepted. Point routing is deterministic, so
	// resending the same batch returns the same global ids.
	Batch string `json:"batch,omitempty"`
}

type insertResponse struct {
	IDs    []int32        `json:"ids"`
	Routed map[string]int `json:"routed"` // shard name -> points routed there
}

// shardInsertResponse is the subset of the shard server's /insert payload
// the coordinator needs.
type shardInsertResponse struct {
	IDs []int32 `json:"ids"`
}

// newBatchID returns a fresh idempotency token for one insert request.
func newBatchID() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("b%x", rand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

func (c *Coordinator) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if _, err := c.dimsOrRefresh(r.Context()); err != nil {
		http.Error(w, fmt.Sprintf("cluster not ready: %v", err), http.StatusServiceUnavailable)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResponseBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		http.Error(w, `missing points (e.g. {"points": [[1,2,3]]})`, http.StatusBadRequest)
		return
	}
	// Writes hold the gate shared: a split cutover holds it exclusively
	// across its convergence and map swap, so no insert spans the swap.
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	// Per-shard batch ids make replica writes idempotent: a retry after a
	// timeout (the first attempt may or may not have been applied) replays
	// the shard's original response instead of inserting twice. Generated
	// once, so a stale-map retry of the whole request replays too.
	batch := req.Batch
	if batch == "" {
		batch = newBatchID()
	}
	for attempt := 0; ; attempt++ {
		status, msg := c.insertOnce(w, r, &req, batch)
		if status == http.StatusConflict && msg == "" && attempt < 2 {
			continue // stale map: retry the whole batch on the current map
		}
		if status != 0 {
			http.Error(w, msg, status)
		}
		return
	}
}

// insertOnce routes one insert batch on the current map. It returns (0, "")
// after writing the success response itself, or a status and message for
// the caller; (StatusConflict, "") is the stale-map outcome the caller
// retries.
func (c *Coordinator) insertOnce(w http.ResponseWriter, r *http.Request, req *insertRequest, batch string) (int, string) {
	m := c.curMap()
	// Range-partitioned clusters (stride-1 id blocks) cannot accept
	// inserts: shard s's next local row n_s maps to global id
	// base_s + n_s, which is exactly shard s+1's base — two distinct
	// points would share a global id, the merge would silently drop one,
	// and deletes would route to the wrong shard. Range mode is read-only;
	// refuse rather than corrupt. (Sealed split blocks live in their own
	// reserved id region and do not trip this.)
	if len(m.shards) > 1 {
		for _, g := range m.shards {
			if s := g.scheme.Load(); s != nil && s.rangePartitioned() {
				return http.StatusConflict, fmt.Sprintf(
					"shard %s is range-partitioned (id stride 1): inserted ids would collide with the next shard's id block; range-partitioned clusters are read-only (use round-robin partitions for writable clusters)",
					g.name)
			}
		}
	}
	// Invalidate the read memo when the write finishes — success or not,
	// since a failed write-all may have partially applied. Bumping at
	// completion (not start) matters: a read that gathered pre-write shard
	// state must not be cached under the post-write generation.
	defer c.writeGen.Add(1)
	// Group the batch per owning shard, remembering request order.
	perShard := make(map[int][]int, len(m.shards)) // shard index -> request indices
	for i, p := range req.Points {
		s := m.ring.owner(hashPoint(p))
		perShard[s] = append(perShard[s], i)
	}
	resp := insertResponse{IDs: make([]int32, len(req.Points)), Routed: map[string]int{}}
	for s, idxs := range perShard {
		g := m.shards[s]
		scheme := g.scheme.Load()
		if scheme == nil {
			// The shard never reported its id scheme (spec left it zero and
			// /shard/info was unreachable): the global ids would be garbage,
			// so refuse until a Refresh learns the mapping.
			return http.StatusServiceUnavailable,
				fmt.Sprintf("shard %s id mapping unknown (unreachable at refresh?)", g.name)
		}
		pts := make([][]float32, len(idxs))
		for k, i := range idxs {
			pts[k] = req.Points[i]
		}
		body, err := json.Marshal(insertRequest{Points: pts, Batch: batch + "/" + g.name})
		if err != nil {
			return http.StatusInternalServerError, err.Error()
		}
		// Write-all replication: every replica must accept the batch so the
		// replica set stays byte-identical (and agrees on assigned ids).
		bodies, err := c.client.post(r.Context(), g, "/insert", body, m.gen)
		if err != nil {
			if staleMapGen(err) {
				c.adoptMapGen(staleGenOf(err))
				if len(resp.Routed) == 0 {
					// Nothing applied yet: rerouting the whole batch on the
					// new map is safe.
					return http.StatusConflict, ""
				}
				// Part of the batch landed under the old map; rerouting the
				// rest could place a point on a different shard than a
				// replayed retry of the applied part. Surface the conflict
				// instead of splitting the batch across topologies.
				return http.StatusBadGateway,
					"shard map changed mid-insert after part of the batch applied"
			}
			status := http.StatusBadGateway
			if isCallerError(err) {
				status = http.StatusBadRequest
			}
			return status, fmt.Sprintf("insert failed on shard %s: %v", g.name, err)
		}
		var localIDs []int32
		for ri, b := range bodies {
			var sr shardInsertResponse
			if err := json.Unmarshal(b, &sr); err != nil || len(sr.IDs) != len(idxs) {
				return http.StatusBadGateway,
					fmt.Sprintf("shard %s replica returned a malformed insert response", g.name)
			}
			if ri == 0 {
				localIDs = sr.IDs
				continue
			}
			for k := range sr.IDs {
				if sr.IDs[k] != localIDs[k] {
					// Replicas no longer agree on the id sequence — refuse to
					// report ids that would be wrong on half the replica set.
					return http.StatusBadGateway,
						fmt.Sprintf("shard %s replicas diverged on assigned ids", g.name)
				}
			}
		}
		for k, i := range idxs {
			resp.IDs[i] = scheme.global(localIDs[k])
		}
		resp.Routed[g.name] += len(idxs)
	}
	writeJSON(w, resp)
	return 0, ""
}

// deleteRequest / deleteResponse carry global ids; each id routes to its
// owning shard by the id arithmetic (with the round-robin scheme, id mod K).
type deleteRequest struct {
	IDs []int32 `json:"ids"`
}

type deleteResponse struct {
	Deleted int            `json:"deleted"`
	Routed  map[string]int `json:"routed"`
}

func (c *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if _, err := c.dimsOrRefresh(r.Context()); err != nil {
		http.Error(w, fmt.Sprintf("cluster not ready: %v", err), http.StatusServiceUnavailable)
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResponseBytes)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.IDs) == 0 {
		http.Error(w, `missing ids (e.g. {"ids": [17]})`, http.StatusBadRequest)
		return
	}
	// Writes hold the gate shared (see handleInsert). Deletes are
	// idempotent at the system level — a victim already gone answers 4xx —
	// so a stale-map retry can always rerun the whole request.
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	for attempt := 0; ; attempt++ {
		status, msg := c.deleteOnce(w, r, &req)
		if status == http.StatusConflict && msg == "" && attempt < 2 {
			continue // stale map: retry on the current map
		}
		if status != 0 {
			http.Error(w, msg, status)
		}
		return
	}
}

// deleteOnce routes one delete batch on the current map, broadcasting each
// id to EVERY group whose scheme claims it. After a split, rows copied from
// parent to child are claimed by both until the ownership prune completes —
// and the parent's open arithmetic claims the child's copied rows forever —
// so a delete succeeds if at least one claimant dropped the row; claimants
// that no longer hold it answer 4xx, which is the goal state, not an error.
// Any 5xx (a claimant that might still hold the row but could not be
// written) fails the request. Returns like insertOnce.
func (c *Coordinator) deleteOnce(w http.ResponseWriter, r *http.Request, req *deleteRequest) (int, string) {
	m := c.curMap()
	// Bump the read-memo generation when the delete finishes (see
	// handleInsert for why completion, not start).
	defer c.writeGen.Add(1)

	// Bucket ids by their full claimant signature: ids claimed by exactly
	// one group batch per group as before; ids claimed by several groups go
	// one-by-one so a per-id miss on one claimant cannot fail unrelated ids
	// batched with it.
	type bucket struct {
		g      *shardGroup
		locals []int32
		ids    []int32 // global ids, for accounting
	}
	singles := make(map[*shardGroup]*bucket)
	type multi struct {
		id     int32
		claims []claim
	}
	var multis []multi
	for _, id := range req.IDs {
		claims := m.claimants(id)
		switch len(claims) {
		case 0:
			return http.StatusBadRequest, fmt.Sprintf("id %d maps to no shard", id)
		case 1:
			b := singles[claims[0].g]
			if b == nil {
				b = &bucket{g: claims[0].g}
				singles[claims[0].g] = b
			}
			b.locals = append(b.locals, claims[0].local)
			b.ids = append(b.ids, id)
		default:
			multis = append(multis, multi{id: id, claims: claims})
		}
	}

	resp := deleteResponse{Routed: map[string]int{}}
	for _, b := range singles {
		body, err := json.Marshal(deleteRequest{IDs: b.locals})
		if err != nil {
			return http.StatusInternalServerError, err.Error()
		}
		if _, err := c.client.post(r.Context(), b.g, "/delete", body, m.gen); err != nil {
			if staleMapGen(err) {
				c.adoptMapGen(staleGenOf(err))
				return http.StatusConflict, ""
			}
			status := http.StatusBadGateway
			if isCallerError(err) {
				status = http.StatusBadRequest
			}
			return status, fmt.Sprintf("delete failed on shard %s: %v", b.g.name, err)
		}
		resp.Deleted += len(b.locals)
		resp.Routed[b.g.name] += len(b.locals)
	}
	for _, mu := range multis {
		dropped := 0
		for _, cl := range mu.claims {
			body, err := json.Marshal(deleteRequest{IDs: []int32{cl.local}})
			if err != nil {
				return http.StatusInternalServerError, err.Error()
			}
			if _, err := c.client.post(r.Context(), cl.g, "/delete", body, m.gen); err != nil {
				if staleMapGen(err) {
					c.adoptMapGen(staleGenOf(err))
					return http.StatusConflict, ""
				}
				if isCallerError(err) {
					continue // this claimant no longer holds the row
				}
				return http.StatusBadGateway,
					fmt.Sprintf("delete %d failed on shard %s: %v", mu.id, cl.g.name, err)
			}
			dropped++
			resp.Routed[cl.g.name]++
		}
		if dropped == 0 {
			return http.StatusBadRequest, fmt.Sprintf("id %d is not live on any claiming shard", mu.id)
		}
		resp.Deleted++
	}
	writeJSON(w, resp)
	return 0, ""
}

// flushResponse reports the post-flush epoch per shard.
type flushResponse struct {
	Epochs map[string]uint64 `json:"epochs"`
}

// shardEpochResponse is the subset of the shard's /flush payload used here.
type shardEpochResponse struct {
	Epoch uint64 `json:"epoch"`
}

func (c *Coordinator) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	// Flush is a write: it holds the gate shared and pins one map.
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	m := c.curMap()
	// Flush advances shard epochs, so the read memo must roll over with it.
	defer c.writeGen.Add(1)
	resp := flushResponse{Epochs: map[string]uint64{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(m.shards))
	for _, g := range m.shards {
		wg.Add(1)
		go func(g *shardGroup) {
			defer wg.Done()
			bodies, err := c.client.post(r.Context(), g, "/flush", []byte("{}"), m.gen)
			if err != nil {
				errCh <- fmt.Errorf("flush failed on shard %s: %w", g.name, err)
				return
			}
			var er shardEpochResponse
			if err := json.Unmarshal(bodies[0], &er); err != nil {
				errCh <- fmt.Errorf("shard %s flush response: %w", g.name, err)
				return
			}
			mu.Lock()
			resp.Epochs[g.name] = er.Epoch
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, resp)
}

// parseDims parses the dims=0,2,5 query parameter against dimensionality d,
// returning the dims, the subspace mask, and "" or an error message.
func parseDims(spec string, d int) ([]int, mask.Mask, string) {
	if spec == "" {
		return nil, 0, "missing dims parameter (e.g. dims=0,2,5)"
	}
	var dims []int
	var delta mask.Mask
	for _, part := range strings.Split(spec, ",") {
		dim, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || dim < 0 || dim >= d {
			return nil, 0, fmt.Sprintf("bad dimension %q (need 0..%d)", part, d-1)
		}
		if delta&mask.Bit(dim) != 0 {
			return nil, 0, fmt.Sprintf("duplicate dimension %d in dims=%s", dim, spec)
		}
		dims = append(dims, dim)
		delta |= mask.Bit(dim)
	}
	return dims, delta, ""
}

// allowMethod guards a handler's verb with the Allow header on mismatch.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	http.Error(w, fmt.Sprintf("method %s not allowed (use %s)", r.Method, method),
		http.StatusMethodNotAllowed)
	return false
}

// writeJSON buffers the encoding so a failure can still produce a clean 500.
func writeJSON(w http.ResponseWriter, v interface{}) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	_, _ = w.Write(buf.Bytes())
}
