package cluster

// Online membership: the coordinator's /admin surface mutates the shard map
// without stopping traffic.
//
//	GET  /admin/map     the current map (generation, groups, schemes)
//	POST /admin/join    {"shard","replica"}: add a caught-up replica
//	POST /admin/drain   {"shard","replica"}: remove a replica
//	POST /admin/split   {"shard","child","replicas"}: cut a child shard over
//
// Every mutation builds a NEW immutable shardMap and swaps the atomic
// pointer — in-flight requests keep the map they pinned; new requests see
// the new one. The generation number stamped on every fan-out lets shards
// reject requests carrying an older map than they have already served, so a
// query never observes a mix of topologies (see ServeHTTP in shard.go).
//
// A split's cutover sequence, write-quiesced under writeMu:
//
//	flush parent  → pending batches applied, epoch is the durable frontier
//	sync child    → each child replica pulls its source's remaining WAL tail
//	verify        → every child replica reports the parent's exact epoch
//	seal child    → child's id scheme gains a fresh stride-1 insert block
//	swap map      → ring now includes the child; writes resume
//
// then, outside the write gate, both sides prune the rows the new ring
// assigns to the other. Prune failure degrades storage, not correctness:
// until the prune lands a copied row is live on both sides, and the merge's
// id-dedup collapses the duplicates (the copies are identical points).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// trimURL normalises a replica URL the way newReplica does, so lookups by
// URL match regardless of a trailing slash.
func trimURL(u string) string { return strings.TrimRight(u, "/") }

// adminMapResponse is GET /admin/map.
type adminMapResponse struct {
	Gen    uint64          `json:"gen"`
	Shards []adminMapShard `json:"shards"`
}

type adminMapShard struct {
	Name       string      `json:"name"`
	Replicas   []string    `json:"replicas"`
	IDSegments []IDSegment `json:"id_segments,omitempty"`
	Diverged   bool        `json:"diverged,omitempty"`
}

func (c *Coordinator) handleAdminMap(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	c.handleAdminMapBody(w)
}

// handleAdminRefresh serves POST /admin/refresh: re-probe every shard's
// /shard/info and run the divergence repair check. This is the operator's
// lever after rebuilding a lagging replica (anti-entropy re-bootstrap, or a
// manual -join-from): once all of a diverged group's replicas answer with
// the same frontier, the writes_diverged latch clears and /healthz leaves
// "degraded". Responds with the refreshed map so the caller sees the
// surviving flags.
func (c *Coordinator) handleAdminRefresh(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if err := c.Refresh(r.Context()); err != nil {
		http.Error(w, fmt.Sprintf("refresh: %v", err), http.StatusBadGateway)
		return
	}
	c.handleAdminMapBody(w)
}

// handleAdminMapBody writes the current-map payload (shared by GET
// /admin/map and the POST /admin/refresh response).
func (c *Coordinator) handleAdminMapBody(w http.ResponseWriter) {
	m := c.curMap()
	resp := adminMapResponse{Gen: m.gen}
	for _, g := range m.shards {
		s := adminMapShard{Name: g.name, Diverged: g.diverged.Load()}
		for _, rep := range g.replicas {
			s.Replicas = append(s.Replicas, rep.url)
		}
		if sch := g.scheme.Load(); sch != nil {
			s.IDSegments = sch.segments()
		}
		resp.Shards = append(resp.Shards, s)
	}
	writeJSON(w, resp)
}

// swapMap publishes a new topology: generation+1, a ring over the new label
// set, and a write-generation bump so memoized reads roll over. Callers hold
// adminMu (serialising swaps) and writeMu exclusively (no write in flight
// across the swap).
func (c *Coordinator) swapMap(shards []*shardGroup) *shardMap {
	old := c.curMap()
	m := &shardMap{gen: old.gen + 1, shards: shards}
	m.ring = newRing(m.labels())
	c.smap.Store(m)
	c.rbm.MapSwap(m.gen, len(shards))
	c.writeGen.Add(1)
	if c.opt.Logger != nil {
		c.opt.Logger.Printf("cluster: shard map generation %d (%d shards: %v)",
			m.gen, len(shards), m.labels())
	}
	return m
}

// adoptMapGen raises the coordinator's map generation to learned without
// changing topology. Shard nodes remember the highest generation any
// coordinator ever sent them and answer lower ones with 409 — correct
// against a coordinator acting on dead topology, but a *restarted*
// coordinator starts counting at 1 again and would be locked out of its own
// cluster forever. A stale-409 carries the shard's current generation; the
// retry loops adopt it here (republishing the identical topology at the
// learned number) before re-pinning the map, so the very next attempt
// carries a generation the shards accept. The write generation is not
// bumped: the topology is unchanged, so memoized reads stay valid.
func (c *Coordinator) adoptMapGen(learned uint64) {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	c.adoptMapGenLocked(learned)
}

// adoptMapGenLocked is adoptMapGen for callers already holding adminMu —
// the membership handlers, whose shard calls can be the restarted
// coordinator's first contact with the cluster.
func (c *Coordinator) adoptMapGenLocked(learned uint64) {
	if learned == 0 {
		return
	}
	old := c.curMap()
	if learned <= old.gen {
		return
	}
	m := &shardMap{gen: learned, shards: old.shards, ring: old.ring}
	c.smap.Store(m)
	c.rbm.MapSwap(m.gen, len(m.shards))
	if c.opt.Logger != nil {
		c.opt.Logger.Printf("cluster: adopted shard map generation %d from a shard node (restart recovery)", m.gen)
	}
}

// nextSplitBase picks the first global id of the next sealed insert block:
// the reserved split region's start, past every block any shard has already
// sealed. Blocks are splitBlockSize apart, so a shard can insert a million
// rows post-split before colliding with the next split's block — and a seal
// request beyond that is rejected by the shard's own overlap check.
func nextSplitBase(m *shardMap) int32 {
	base := int32(SplitBlockBase)
	for _, g := range m.shards {
		s := g.scheme.Load()
		if s == nil {
			continue
		}
		for _, seg := range s.segments() {
			if seg.Stride == 1 && seg.Base >= SplitBlockBase && seg.Base+splitBlockSize > base {
				base = seg.Base + splitBlockSize
			}
		}
	}
	return base
}

// adminTargetRequest addresses one replica of one shard (join, drain).
type adminTargetRequest struct {
	Shard   string `json:"shard"`
	Replica string `json:"replica"`
}

// adminSwapResponse reports a completed membership change.
type adminSwapResponse struct {
	Gen      uint64   `json:"gen"`
	Shard    string   `json:"shard"`
	Replicas []string `json:"replicas"`
}

// handleAdminJoin adds a replica to a shard group. The replica must already
// be serving the shard's state (bootstrapped via the rebalance snapshot
// stream); the handler verifies it under the write gate — writes quiesced,
// the replica's frontier must equal the group's exactly — so from the swap
// on, write-all delivery keeps it converged.
func (c *Coordinator) handleAdminJoin(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req adminTargetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	m := c.curMap()
	g := m.find(req.Shard)
	if g == nil {
		http.Error(w, fmt.Sprintf("no shard %q in the map", req.Shard), http.StatusNotFound)
		return
	}
	rep := c.newReplica(req.Replica)
	for _, have := range g.replicas {
		if have.url == rep.url {
			http.Error(w, fmt.Sprintf("replica %s already serves shard %s", rep.url, g.name),
				http.StatusConflict)
			return
		}
	}

	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	groupEpoch, groupLive, err := c.groupFrontier(r, g, m.gen)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard %s frontier: %v", g.name, err), http.StatusBadGateway)
		return
	}
	repEpoch, repLive, err := c.replicaFrontier(r, rep.url)
	if err != nil {
		http.Error(w, fmt.Sprintf("joining replica %s: %v", rep.url, err), http.StatusBadGateway)
		return
	}
	if repEpoch != groupEpoch || repLive != groupLive {
		http.Error(w, fmt.Sprintf(
			"replica %s is at epoch %d (%d live), shard %s is at epoch %d (%d live): bootstrap it first",
			rep.url, repEpoch, repLive, g.name, groupEpoch, groupLive), http.StatusConflict)
		return
	}

	shards := make([]*shardGroup, len(m.shards))
	for i, og := range m.shards {
		if og == g {
			ng := og.clone()
			ng.replicas = append(ng.replicas, rep)
			shards[i] = ng
		} else {
			shards[i] = og
		}
	}
	nm := c.swapMap(shards)
	writeJSON(w, adminSwapResponse{Gen: nm.gen, Shard: g.name, Replicas: replicaURLs(nm.find(g.name))})
}

// handleAdminDrain removes a replica from a shard group. The drained replica
// keeps serving whatever it holds (and can be wiped or re-joined later); it
// simply stops receiving traffic from maps at the new generation on.
func (c *Coordinator) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req adminTargetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	m := c.curMap()
	g := m.find(req.Shard)
	if g == nil {
		http.Error(w, fmt.Sprintf("no shard %q in the map", req.Shard), http.StatusNotFound)
		return
	}
	idx := -1
	for i, have := range g.replicas {
		if have.url == trimURL(req.Replica) {
			idx = i
		}
	}
	if idx < 0 {
		http.Error(w, fmt.Sprintf("replica %s does not serve shard %s", req.Replica, g.name),
			http.StatusNotFound)
		return
	}
	if len(g.replicas) == 1 {
		http.Error(w, fmt.Sprintf("replica %s is shard %s's last: draining it would lose the shard",
			req.Replica, g.name), http.StatusConflict)
		return
	}

	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	shards := make([]*shardGroup, len(m.shards))
	for i, og := range m.shards {
		if og == g {
			ng := og.clone()
			ng.replicas = append(ng.replicas[:idx], ng.replicas[idx+1:]...)
			shards[i] = ng
		} else {
			shards[i] = og
		}
	}
	nm := c.swapMap(shards)
	writeJSON(w, adminSwapResponse{Gen: nm.gen, Shard: g.name, Replicas: replicaURLs(nm.find(g.name))})
}

// adminSplitRequest cuts a pre-bootstrapped child shard into the map.
type adminSplitRequest struct {
	// Shard is the parent being split.
	Shard string `json:"shard"`
	// Child names the new shard; Replicas are its replica URLs, each already
	// bootstrapped as a full copy of the parent (rebalance.Bootstrap with the
	// source node left attached, so /shard/sync can pull the final tail).
	Child    string   `json:"child"`
	Replicas []string `json:"replicas"`
}

// adminSplitResponse reports the cutover.
type adminSplitResponse struct {
	Gen         uint64      `json:"gen"`
	Parent      string      `json:"parent"`
	Child       string      `json:"child"`
	Synced      int         `json:"synced"`
	Epoch       uint64      `json:"epoch"`
	IDSegments  []IDSegment `json:"child_id_segments"`
	PruneErrors []string    `json:"prune_errors,omitempty"`
}

func (c *Coordinator) handleAdminSplit(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req adminSplitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Child == "" || len(req.Replicas) == 0 {
		http.Error(w, "split needs a child name and at least one replica URL", http.StatusBadRequest)
		return
	}
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	m := c.curMap()
	parent := m.find(req.Shard)
	if parent == nil {
		http.Error(w, fmt.Sprintf("no shard %q in the map", req.Shard), http.StatusNotFound)
		return
	}
	if m.find(req.Child) != nil {
		http.Error(w, fmt.Sprintf("shard %q already exists", req.Child), http.StatusConflict)
		return
	}
	child := &shardGroup{name: req.Child}
	for _, u := range req.Replicas {
		child.replicas = append(child.replicas, c.newReplica(u))
	}

	// --- cutover, write-quiesced ---
	c.writeMu.Lock()
	// 1. Flush the parent: pending batches apply and the epoch advances to
	// the durable frontier the child must reach. The flush is journaled, so
	// the child's tail replay performs the identical flush.
	flushBodies, err := c.client.post(r.Context(), parent, "/flush", []byte("{}"), m.gen)
	if staleMapGen(err) {
		// First contact after a coordinator restart: adopt the shards'
		// generation and retry, so a split works without a prior read.
		c.adoptMapGenLocked(staleGenOf(err))
		m = c.curMap()
		flushBodies, err = c.client.post(r.Context(), parent, "/flush", []byte("{}"), m.gen)
	}
	if err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: flush parent %s: %v", parent.name, err), http.StatusBadGateway)
		return
	}
	var parentEpoch shardEpochResponse
	if err := json.Unmarshal(flushBodies[0], &parentEpoch); err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: parent flush response: %v", err), http.StatusBadGateway)
		return
	}

	// 2. Sync: every child replica pulls its bootstrap source's remaining
	// tail. Write-all, so each replica converges independently.
	syncBodies, err := c.client.post(r.Context(), child, "/shard/sync", []byte("{}"), m.gen)
	if err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: sync child %s: %v", req.Child, err), http.StatusBadGateway)
		return
	}
	synced := 0
	for i, body := range syncBodies {
		var sr syncResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			c.writeMu.Unlock()
			http.Error(w, fmt.Sprintf("split: child sync response: %v", err), http.StatusBadGateway)
			return
		}
		synced += sr.Applied
		// 3. Verify: with writes quiesced the frontiers must agree exactly;
		// anything else means the copy diverged and cutting over would serve
		// wrong answers.
		if sr.Epoch != parentEpoch.Epoch {
			c.writeMu.Unlock()
			http.Error(w, fmt.Sprintf(
				"split: child replica %s synced to epoch %d, parent %s is at %d: not cutting over",
				child.replicas[i].url, sr.Epoch, parent.name, parentEpoch.Epoch), http.StatusConflict)
			return
		}
	}

	// 4. Seal the child's id scheme: rows it holds keep their copied global
	// ids; rows it inserts from now on draw from a fresh stride-1 block, so
	// parent and child arithmetics never collide on new ids.
	sealBody, err := json.Marshal(sealRequest{Base: nextSplitBase(m)})
	if err != nil {
		c.writeMu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sealBodies, err := c.client.post(r.Context(), child, "/shard/seal", sealBody, m.gen)
	if err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: seal child %s: %v", req.Child, err), http.StatusBadGateway)
		return
	}
	var sealed sealResponse
	if err := json.Unmarshal(sealBodies[0], &sealed); err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: child seal response: %v", err), http.StatusBadGateway)
		return
	}
	scheme, err := schemeFromSegments(sealed.IDSegments)
	if err != nil {
		c.writeMu.Unlock()
		http.Error(w, fmt.Sprintf("split: child sealed scheme: %v", err), http.StatusBadGateway)
		return
	}
	child.scheme.Store(scheme)

	// 5. Swap: the ring now includes the child; writes resume on the new map.
	shards := append(append([]*shardGroup(nil), m.shards...), child)
	nm := c.swapMap(shards)
	c.writeMu.Unlock()

	// 6. Prune, outside the write gate: each side drops the rows the new
	// ring assigns to the other. Until this lands both sides hold the copied
	// rows — reads stay exact through the merge's id-dedup — so a prune
	// failure is reported, not fatal; the operator re-runs it.
	var pruneErrs []string
	labels := nm.labels()
	prune := func(g *shardGroup, drop []string) {
		body, err := json.Marshal(pruneRequest{Labels: labels, Own: g.name, Drop: drop})
		if err != nil {
			pruneErrs = append(pruneErrs, fmt.Sprintf("%s: %v", g.name, err))
			return
		}
		if _, err := c.client.post(r.Context(), g, "/shard/prune", body, nm.gen); err != nil {
			pruneErrs = append(pruneErrs, fmt.Sprintf("%s: %v", g.name, err))
		}
	}
	prune(nm.find(parent.name), []string{child.name})
	var childDrop []string
	for _, l := range labels {
		if l != child.name {
			childDrop = append(childDrop, l)
		}
	}
	prune(nm.find(child.name), childDrop)
	// The prunes advanced shard epochs outside a coordinator write; roll the
	// read memo so no pre-prune body outlives them.
	c.writeGen.Add(1)

	writeJSON(w, adminSplitResponse{
		Gen:         nm.gen,
		Parent:      parent.name,
		Child:       child.name,
		Synced:      synced,
		Epoch:       parentEpoch.Epoch,
		IDSegments:  sealed.IDSegments,
		PruneErrors: pruneErrs,
	})
}

// groupFrontier reads the shard group's (epoch, live) through the normal
// fan-out client (any admitting replica answers; write-all keeps them equal).
func (c *Coordinator) groupFrontier(r *http.Request, g *shardGroup, gen uint64) (uint64, int, error) {
	body, err := c.client.get(r.Context(), g, "/shard/info", gen)
	if staleMapGen(err) {
		// A restarted coordinator counts from 1 while the shards remember
		// the old map's generation: adopt theirs and re-ask, so membership
		// operations work without requiring a refresh first. Callers hold
		// adminMu, so this must be the locked variant.
		c.adoptMapGenLocked(staleGenOf(err))
		body, err = c.client.get(r.Context(), g, "/shard/info", c.curMap().gen)
	}
	if err != nil {
		return 0, 0, err
	}
	var info shardInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return 0, 0, err
	}
	return info.Epoch, info.Live, nil
}

// replicaFrontier reads one replica's (epoch, live) directly — no hedging,
// no fallback: the point is to observe this exact replica.
func (c *Coordinator) replicaFrontier(r *http.Request, url string) (uint64, int, error) {
	body, err := c.client.do(r.Context(), http.MethodGet, trimURL(url)+"/shard/info", nil, "", 0)
	if err != nil {
		return 0, 0, err
	}
	var info shardInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return 0, 0, err
	}
	return info.Epoch, info.Live, nil
}

func replicaURLs(g *shardGroup) []string {
	if g == nil {
		return nil
	}
	out := make([]string, len(g.replicas))
	for i, rep := range g.replicas {
		out[i] = rep.url
	}
	return out
}
