// Cluster serving benchmarks: the coordinator's write-generation memo
// versus a full scatter-gather-merge per query.
package cluster

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"skycube"
	"skycube/internal/obs"
)

// benchNopWriter mirrors the server package's benchmark writer.
type benchNopWriter struct {
	h http.Header
}

func (w *benchNopWriter) Header() http.Header         { return w.h }
func (w *benchNopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *benchNopWriter) WriteHeader(int)             {}

func (w *benchNopWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
}

// benchCluster wires a K=2, R=1 cluster over loopback HTTP. traced adds a
// request ring (SampleEvery 0) to coordinator and shards: tracing compiled
// in but sampled out, the configuration the 0-alloc bar must survive.
func benchCluster(b *testing.B, disableCache, traced bool) (*Coordinator, func()) {
	b.Helper()
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 2048, 4, 103)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		b.Fatal(err)
	}
	var cleanups []func()
	var specs []ShardSpec
	for s, part := range parts {
		so := ShardOptions{IDBase: s, IDStride: 2}
		if traced {
			so.Requests = obs.NewRequestRing(64)
		}
		sh, err := NewShard(part, skycube.Options{Threads: 2}, so)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(sh)
		cleanups = append(cleanups, srv.Close, sh.Close)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: 2})
	}
	copt := CoordinatorOptions{
		Timeout:      5 * time.Second,
		DisableCache: disableCache,
	}
	if traced {
		copt.Requests = obs.NewRequestRing(64)
	}
	coord, err := NewCoordinator(specs, copt)
	if err != nil {
		b.Fatal(err)
	}
	return coord, func() {
		for _, f := range cleanups {
			f()
		}
	}
}

func benchClusterRequest(b *testing.B, coord *Coordinator, disabled bool) {
	b.Helper()
	u, err := url.Parse("/skyline?dims=0,1,3")
	if err != nil {
		b.Fatal(err)
	}
	req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
	w := &benchNopWriter{h: http.Header{}}
	coord.ServeHTTP(w, req) // learn dims; warm the memo when enabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		coord.ServeHTTP(w, req)
	}
}

// BenchmarkClusterServeHot: a warm coordinator serves the merged bytes
// with no shard traffic — no fan-out, no hedging, no merge, no encode.
func BenchmarkClusterServeHot(b *testing.B) {
	coord, done := benchCluster(b, false, false)
	defer done()
	benchClusterRequest(b, coord, false)
}

// BenchmarkClusterServeHotTraced: the warm memo hit with request rings
// wired everywhere but the query sampled out (no traceparent header,
// SampleEvery 0). Must match BenchmarkClusterServeHot's 0 allocs/op.
func BenchmarkClusterServeHotTraced(b *testing.B) {
	coord, done := benchCluster(b, false, true)
	defer done()
	benchClusterRequest(b, coord, false)
}

// BenchmarkClusterServeCold scatter-gathers and merges on every request
// (two HTTP round trips per query on loopback).
func BenchmarkClusterServeCold(b *testing.B) {
	coord, done := benchCluster(b, true, false)
	defer done()
	benchClusterRequest(b, coord, true)
}
