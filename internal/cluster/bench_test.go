// Cluster serving benchmarks: the coordinator's write-generation memo
// versus a full scatter-gather-merge per query.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"skycube"
	"skycube/internal/obs"
)

// benchNopWriter mirrors the server package's benchmark writer.
type benchNopWriter struct {
	h http.Header
}

func (w *benchNopWriter) Header() http.Header         { return w.h }
func (w *benchNopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *benchNopWriter) WriteHeader(int)             {}

func (w *benchNopWriter) reset() {
	for k := range w.h {
		delete(w.h, k)
	}
}

// benchCluster wires a K=2, R=1 cluster over loopback HTTP. traced adds a
// request ring (SampleEvery 0) to coordinator and shards: tracing compiled
// in but sampled out, the configuration the 0-alloc bar must survive.
func benchCluster(b *testing.B, disableCache, traced bool) (*Coordinator, func()) {
	b.Helper()
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 2048, 4, 103)
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		b.Fatal(err)
	}
	var cleanups []func()
	var specs []ShardSpec
	for s, part := range parts {
		so := ShardOptions{IDBase: s, IDStride: 2}
		if traced {
			so.Requests = obs.NewRequestRing(64)
		}
		sh, err := NewShard(part, skycube.Options{Threads: 2}, so)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(sh)
		cleanups = append(cleanups, srv.Close, sh.Close)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: 2})
	}
	copt := CoordinatorOptions{
		Timeout:      5 * time.Second,
		DisableCache: disableCache,
	}
	if traced {
		copt.Requests = obs.NewRequestRing(64)
	}
	coord, err := NewCoordinator(specs, copt)
	if err != nil {
		b.Fatal(err)
	}
	return coord, func() {
		for _, f := range cleanups {
			f()
		}
	}
}

func benchClusterRequest(b *testing.B, coord *Coordinator, disabled bool) {
	b.Helper()
	u, err := url.Parse("/skyline?dims=0,1,3")
	if err != nil {
		b.Fatal(err)
	}
	req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
	w := &benchNopWriter{h: http.Header{}}
	coord.ServeHTTP(w, req) // learn dims; warm the memo when enabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		coord.ServeHTTP(w, req)
	}
}

// BenchmarkClusterServeHot: a warm coordinator serves the merged bytes
// with no shard traffic — no fan-out, no hedging, no merge, no encode.
func BenchmarkClusterServeHot(b *testing.B) {
	coord, done := benchCluster(b, false, false)
	defer done()
	benchClusterRequest(b, coord, false)
}

// BenchmarkClusterServeHotTraced: the warm memo hit with request rings
// wired everywhere but the query sampled out (no traceparent header,
// SampleEvery 0). Must match BenchmarkClusterServeHot's 0 allocs/op.
func BenchmarkClusterServeHotTraced(b *testing.B) {
	coord, done := benchCluster(b, false, true)
	defer done()
	benchClusterRequest(b, coord, false)
}

// BenchmarkClusterServeCold scatter-gathers and merges on every request
// (two HTTP round trips per query on loopback).
func BenchmarkClusterServeCold(b *testing.B) {
	coord, done := benchCluster(b, true, false)
	defer done()
	benchClusterRequest(b, coord, true)
}

// benchPrunedCluster wires a K-shard grid-partitioned cluster (positional id
// mapping) over anticorrelated data — the pruning benchmarks' fixture. Grid
// cells give each shard a tight bounding box, which is what the prelude's
// corners and reps exploit.
func benchPrunedCluster(b *testing.B, k int, copt CoordinatorOptions) (*Coordinator, func()) {
	b.Helper()
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 2048, 4, 103)
	parts, err := ds.Partition(k, skycube.GridPartition)
	if err != nil {
		b.Fatal(err)
	}
	var cleanups []func()
	var specs []ShardSpec
	base := 0
	for _, part := range parts {
		sh, err := NewShard(part, skycube.Options{Threads: 2}, ShardOptions{IDBase: base, IDStride: 1})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(sh)
		cleanups = append(cleanups, srv.Close, sh.Close)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: base, IDStride: 1})
		base += part.Len()
	}
	if copt.Timeout == 0 {
		copt.Timeout = 5 * time.Second
	}
	coord, err := NewCoordinator(specs, copt)
	if err != nil {
		b.Fatal(err)
	}
	return coord, func() {
		for _, f := range cleanups {
			f()
		}
	}
}

// reportShipped runs one instrumented query and reports the per-query
// candidate points actually shipped over the wire (and, for the pruned
// path, the estimated shard-response bytes saved) — the communication cost
// the pruned gather exists to cut. Shard state is static, so one
// measurement is exact for every iteration.
func reportShipped(b *testing.B, coord *Coordinator, reg *obs.Registry, path string) {
	b.Helper()
	before := struct{ pruned, saved float64 }{}
	if reg != nil {
		before.pruned = benchMetricTotal(b, reg, "skycube_cluster_pruned_points_total")
		before.saved = benchMetricTotal(b, reg, "skycube_cluster_bytes_saved_total")
	}
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("measurement query: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		b.Fatal(err)
	}
	shipped := float64(resp.Candidates)
	if reg != nil {
		prunedPts := benchMetricTotal(b, reg, "skycube_cluster_pruned_points_total") - before.pruned
		shipped -= prunedPts
		b.ReportMetric(benchMetricTotal(b, reg, "skycube_cluster_bytes_saved_total")-before.saved, "wire_B_saved/op")
	}
	b.ReportMetric(shipped, "shipped_pts/op")
}

func benchMetricTotal(b *testing.B, reg *obs.Registry, name string) float64 {
	b.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		b.Fatal(err)
	}
	var total float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			b.Fatal(err)
		}
		total += v
	}
	return total
}

// BenchmarkClusterServeColdPruned: the communication-efficiency matrix —
// unpruned versus pruned cold gathers at K ∈ {2,4,8} on grid-partitioned
// anticorrelated data, reporting shipped candidate points per query
// alongside ns/op. The pruned rows must ship ≥2× fewer candidates at K=4
// (BENCH_serve.json records the measured ratio).
func BenchmarkClusterServeColdPruned(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		for _, prune := range []bool{false, true} {
			name := fmt.Sprintf("k%d/unpruned", k)
			if prune {
				name = fmt.Sprintf("k%d/pruned", k)
			}
			b.Run(name, func(b *testing.B) {
				copt := CoordinatorOptions{DisableCache: true}
				var reg *obs.Registry
				if prune {
					reg = obs.NewRegistry()
					copt.Prune = true
					copt.PreFilterK = 16
					copt.PreFilterMinShards = 2
					copt.Metrics = reg
				}
				coord, done := benchPrunedCluster(b, k, copt)
				defer done()
				u, err := url.Parse("/skyline?dims=0,1")
				if err != nil {
					b.Fatal(err)
				}
				req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
				w := &benchNopWriter{h: http.Header{}}
				coord.ServeHTTP(w, req) // learn dims
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.reset()
					coord.ServeHTTP(w, req)
				}
				b.StopTimer()
				// After the loop: ResetTimer clears ReportMetric values, so
				// the shipped-candidates measurement must come last.
				reportShipped(b, coord, reg, "/skyline?dims=0,1")
			})
		}
	}
}

// BenchmarkClusterServeHotPruned: the warm write-generation memo with
// pruning enabled. The fast path must stay a map probe and a byte copy —
// CI holds this to the same 0 allocs/op as the unpruned hot path.
func BenchmarkClusterServeHotPruned(b *testing.B) {
	coord, done := benchPrunedCluster(b, 2, CoordinatorOptions{
		Prune: true, PreFilterK: 16, PreFilterMinShards: 2,
	})
	defer done()
	benchClusterRequest(b, coord, false)
}
