package cluster

import (
	"sort"

	"skycube/internal/data"
	"skycube/internal/dom"
	"skycube/internal/mask"
)

// mergeBlockMin is the candidate count below which the final merge filter
// stays on the scalar O(n²) loop; tiny unions can't amortise block setup.
const mergeBlockMin = 64

// candidate is one shard-local skyline member: a global point id and its
// coordinates, shipped together so the coordinator can run dominance tests
// without a second round trip.
type candidate struct {
	id    int32
	point []float32
}

// mergeSkyline reduces the union of shard-local results to the exact global
// skyline of δ with one final dominance filter (the merge step of
// partition-and-merge skyline processing).
//
// Correctness: each shard returns a superset of its partition's
// contribution to the global skyline — a globally undominated point is
// undominated within its shard, so it appears in the shard's local S_δ
// (and a fortiori in its S⁺_δ). Any union member outside the global skyline
// has, by transitivity of Definition-1 dominance, a dominator that IS a
// global skyline member and therefore also in the union, so the filter
// removes exactly the non-members. Ids return sorted ascending, matching
// single-node Skycube.Skyline output.
//
// cands is consumed (sorted and compacted in place), and the result reuses
// scratch's backing array when it is large enough — both slices come from
// the serving path's mergeScratch pool.
func mergeSkyline(cands []candidate, delta mask.Mask, scratch []int32) []int32 {
	// Sort by id and drop duplicates up front (a retried sub-request can in
	// principle deliver a shard's answer twice); dominance-by-duplicate
	// would otherwise be ambiguous under Definition 1's tie handling.
	sort.Slice(cands, func(a, b int) bool { return cands[a].id < cands[b].id })
	uniq := cands[:0]
	for i, c := range cands {
		if i == 0 || c.id != cands[i-1].id {
			uniq = append(uniq, c)
		}
	}
	out := scratch[:0]
	if cap(out) < len(uniq) {
		out = make([]int32, 0, len(uniq))
	}
	if dom.BlocksEnabled() && len(uniq) >= mergeBlockMin {
		return mergeSkylineBlocks(uniq, delta, out)
	}
	if dom.BlocksEnabled() {
		t := dom.KernelTally{Fallbacks: 1}
		t.Flush()
	}
	for i, c := range uniq {
		dominated := false
		for j, q := range uniq {
			if i == j {
				continue
			}
			if dom.DominatesIn(q.point, c.point, delta) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c.id)
		}
	}
	return out
}

// mergeSkylineBlocks is the block-kernel form of the final merge filter:
// the deduplicated union goes into one sum-sorted SoA block set, and each
// candidate asks for any dominator with a sorted stop point. A point never
// dominates itself (all-equal fails Definition 1), so no self-exclusion is
// needed, and the id-ascending output order of the scalar loop is preserved
// because candidates are emitted in uniq order, not scan order.
func mergeSkylineBlocks(uniq []candidate, delta mask.Mask, out []int32) []int32 {
	dims := mask.Dims(delta)
	k := len(dims)
	bs := data.GetBlockSet(k, data.DefaultBlockSize)
	defer data.PutBlockSet(bs)

	sums := make([]float32, len(uniq))
	ord := make([]int32, len(uniq))
	for i, c := range uniq {
		sums[i] = data.SumOver(c.point, dims)
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if sums[ia] != sums[ib] {
			return sums[ia] < sums[ib]
		}
		return ia < ib
	})
	pq := make([]float32, k)
	for _, i := range ord {
		data.ProjectInto(pq, uniq[i].point, dims)
		bs.Append(pq, int32(i), sums[i])
	}

	useStop := dom.StopPointsEnabled()
	var tally dom.KernelTally
	for i, c := range uniq {
		data.ProjectInto(pq, c.point, dims)
		if !dom.BlocksAnyDominator(bs, pq, sums[i], false, useStop, &tally) {
			out = append(out, c.id)
		}
	}
	tally.Flush()
	return out
}
