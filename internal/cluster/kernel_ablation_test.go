package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"skycube/internal/dom"
	"skycube/internal/mask"
)

// randCandidates builds a candidate union with duplicates, mimicking shard
// replies (duplicate ids carry identical coordinates, as retries would).
func randCandidates(rng *rand.Rand, n, d int) []candidate {
	cands := make([]candidate, 0, n+n/8)
	for i := 0; i < n; i++ {
		p := make([]float32, d)
		for j := range p {
			p[j] = float32(rng.Intn(16)) / 8 // coarse grid forces ties
		}
		cands = append(cands, candidate{id: int32(i), point: p})
	}
	for i := 0; i < n/8; i++ {
		cands = append(cands, cands[rng.Intn(n)])
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands
}

// TestMergeSkylineKernelAblation pins the coordinator's final merge filter:
// block path and scalar path must return identical id slices on unions
// straddling the block threshold, across subspaces and trials.
func TestMergeSkylineKernelAblation(t *testing.T) {
	defer dom.SetKernelConfig(dom.KernelConfig{})
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(300) // straddles mergeBlockMin
		d := 2 + rng.Intn(5)
		cands := randCandidates(rng, n, d)
		delta := mask.Mask(1 + rng.Intn(1<<uint(d)-1))
		for _, stopOff := range []bool{false, true} {
			dom.SetKernelConfig(dom.KernelConfig{DisableBlocks: true})
			want := mergeSkyline(append([]candidate(nil), cands...), delta, nil)
			dom.SetKernelConfig(dom.KernelConfig{DisableStopPoints: stopOff})
			got := mergeSkyline(append([]candidate(nil), cands...), delta, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (n=%d d=%d δ=%b stopOff=%v): blocks %v, scalar %v",
					trial, n, d, delta, stopOff, got, want)
			}
		}
	}
}

// TestFilterMembersKernelAblation pins the shard-side witness filter: the
// DominatedBitmap path must keep exactly the members the scalar loop keeps,
// in the same order, with the same filtered count.
func TestFilterMembersKernelAblation(t *testing.T) {
	defer dom.SetKernelConfig(dom.KernelConfig{})
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(300) // straddles filterBlockMin
		d := 2 + rng.Intn(5)
		pts := make([][]float32, n)
		local := make([]int32, n)
		for i := range pts {
			p := make([]float32, d)
			for j := range p {
				p[j] = float32(rng.Intn(16)) / 8
			}
			pts[i] = p
			local[i] = int32(i)
		}
		nf := 1 + rng.Intn(6)
		filter := make([][]float32, nf)
		for i := range filter {
			f := make([]float32, d)
			for j := range f {
				f[j] = float32(rng.Intn(16)) / 8
			}
			filter[i] = f
		}
		delta := mask.Mask(1 + rng.Intn(1<<uint(d)-1))
		point := func(r int32) []float32 { return pts[r] }
		dom.SetKernelConfig(dom.KernelConfig{DisableBlocks: true})
		wantKept, wantN := filterMembers(local, point, filter, delta)
		dom.SetKernelConfig(dom.KernelConfig{})
		gotKept, gotN := filterMembers(local, point, filter, delta)
		if gotN != wantN || !reflect.DeepEqual(gotKept, wantKept) {
			t.Fatalf("trial %d (n=%d d=%d δ=%b): blocks kept %d %v, scalar kept %d %v",
				trial, n, d, delta, gotN, gotKept, wantN, wantKept)
		}
	}
}
