package cluster

import (
	"encoding/binary"
	"math"
	"net/url"
	"sort"
	"strings"
	"testing"

	"skycube/internal/dom"
	"skycube/internal/mask"
)

func TestEncodeDecodePointListRoundTrip(t *testing.T) {
	cases := [][][]float32{
		nil,
		{{1, 2, 3}},
		{{-0.5, 1e-7, 3.4e38}, {0, -0, 42}},
		{{1.5e+20, -2.25e-30}, {float32(math.SmallestNonzeroFloat32), -1}},
		{{0.1, 0.2}, {0.1, 0.2}}, // duplicates survive
	}
	for _, pts := range cases {
		dims := 3
		if len(pts) > 0 {
			dims = len(pts[0])
		}
		enc := encodePointList(pts)
		got, err := decodePointList(enc, dims)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if len(got) != len(pts) {
			t.Fatalf("decode(%q): %d points, want %d", enc, len(got), len(pts))
		}
		for i := range pts {
			for j := range pts[i] {
				if got[i][j] != pts[i][j] {
					t.Fatalf("point %d coord %d: %v != %v (enc %q)", i, j, got[i][j], pts[i][j], enc)
				}
			}
		}
	}
}

// TestEncodePointListSurvivesQueryEscaping: 'g' formatting emits '+' in
// positive exponents, which a query parser decodes as a space unless the
// coordinator escapes it. This pins the escape/unescape/decode chain the
// pruned gather and the shard handler actually use.
func TestEncodePointListSurvivesQueryEscaping(t *testing.T) {
	pts := [][]float32{{1.5e+20, -3e-7}, {0.25, 1e+30}}
	enc := encodePointList(pts)
	if !strings.Contains(enc, "+") {
		t.Fatalf("encoding %v = %q: expected a '+' exponent to exercise escaping", pts, enc)
	}
	vals, err := url.ParseQuery("filter=" + url.QueryEscape(enc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePointList(vals.Get("filter"), 2)
	if err != nil {
		t.Fatalf("decode after query round-trip: %v", err)
	}
	for i := range pts {
		for j := range pts[i] {
			if got[i][j] != pts[i][j] {
				t.Fatalf("query round-trip corrupted point %d coord %d: %v != %v", i, j, got[i][j], pts[i][j])
			}
		}
	}
}

func TestDecodePointListRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1,2;3", // ragged width
		"1,2,3", // wrong dims (want 2)
		"a,b",   // not numbers
		"1,",    // empty coordinate
		strings.Repeat("1,1;", maxFilterPoints) + "1,1", // over the cap
	} {
		if pts, err := decodePointList(bad, 2); err == nil {
			t.Fatalf("decodePointList(%q) accepted: %v", bad, pts)
		}
	}
}

func TestDominatedByAny(t *testing.T) {
	full := mask.Mask(0b11)
	filter := [][]float32{{0.5, 0.5}, {0.1, 0.9}}
	if !dominatedByAny(filter, []float32{0.6, 0.6}, full) {
		t.Fatal("(0.6,0.6) should be dominated by (0.5,0.5)")
	}
	if dominatedByAny(filter, []float32{0.5, 0.5}, full) {
		t.Fatal("a point equal to a filter point is not dominated (Definition 1 needs strictness)")
	}
	if dominatedByAny(filter, []float32{0.05, 0.95}, full) {
		t.Fatal("(0.05,0.95) is incomparable to both filter points")
	}
	// Subspace {0}: only the first coordinate matters.
	if !dominatedByAny(filter, []float32{0.2, 0.0}, mask.Mask(0b01)) {
		t.Fatal("in subspace {0}, (0.2,*) is dominated by (0.1,*)")
	}
	if dominatedByAny(nil, []float32{0, 0}, full) {
		t.Fatal("an empty filter dominates nothing")
	}
}

func metaOf(epoch uint64, pts [][]float32, preK int, delta mask.Mask) shardMeta {
	m := shardMeta{count: len(pts), epoch: epoch, region: dom.RegionOf(pts)}
	if preK > 0 && len(pts) > 0 {
		m.reps = pickReps(pts, preK, delta)
	}
	return m
}

// pickReps mirrors the shard's bestReps selection on raw point slices: k
// points with the smallest coordinate sum over δ, ties by position.
func pickReps(pts [][]float32, k int, delta mask.Mask) [][]float32 {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sum := func(p []float32) float64 {
		var s float64
		for d := 0; d < len(p); d++ {
			if delta&mask.Bit(d) != 0 {
				s += float64(p[d])
			}
		}
		return s
	}
	sort.SliceStable(idx, func(a, b int) bool { return sum(pts[idx[a]]) < sum(pts[idx[b]]) })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([][]float32, k)
	for i := 0; i < k; i++ {
		out[i] = pts[idx[i]]
	}
	return out
}

func TestUpfrontSkips(t *testing.T) {
	full := mask.Mask(0b11)
	// Shard 0's whole region is strictly better than shard 1's; shard 2 is
	// empty; shard 3 is incomparable.
	metas := []shardMeta{
		metaOf(1, [][]float32{{0.1, 0.1}, {0.2, 0.2}}, 0, full),
		metaOf(1, [][]float32{{0.5, 0.5}, {0.9, 0.9}}, 0, full),
		metaOf(1, nil, 0, full),
		metaOf(1, [][]float32{{0.05, 0.95}}, 0, full),
	}
	skip := upfrontSkips(metas, full)
	want := []bool{false, true, true, false}
	for i := range want {
		if skip[i] != want[i] {
			t.Fatalf("skip = %v, want %v", skip, want)
		}
	}

	// Region corners alone cannot prove it, but a representative point can:
	// shard 0's box overlaps shard 1's, yet its best actual point dominates
	// shard 1's whole region.
	overlap := []shardMeta{
		metaOf(1, [][]float32{{0.1, 0.1}, {0.8, 0.8}}, 1, full),
		metaOf(1, [][]float32{{0.5, 0.5}, {0.7, 0.6}}, 1, full),
	}
	if s := upfrontSkips([]shardMeta{{count: overlap[0].count, epoch: 1, region: overlap[0].region},
		{count: overlap[1].count, epoch: 1, region: overlap[1].region}}, full); s[0] || s[1] {
		t.Fatalf("corners alone skipped a shard: %v", s)
	}
	if s := upfrontSkips(overlap, full); s[0] || !s[1] {
		t.Fatalf("rep (0.1,0.1) should skip shard 1: %v", s)
	}

	// Mutually non-dominating shards: nobody is skipped, and in particular
	// never everybody (the acyclicity guarantee).
	inc := []shardMeta{
		metaOf(1, [][]float32{{0.1, 0.9}}, 1, full),
		metaOf(1, [][]float32{{0.9, 0.1}}, 1, full),
	}
	if s := upfrontSkips(inc, full); s[0] || s[1] {
		t.Fatalf("incomparable shards skipped: %v", s)
	}
}

func TestBuildFilterExcludesSelf(t *testing.T) {
	full := mask.Mask(0b11)
	metas := []shardMeta{
		metaOf(1, [][]float32{{0.1, 0.2}, {0.3, 0.4}}, 1, full),
		metaOf(1, [][]float32{{0.5, 0.6}}, 1, full),
		metaOf(1, nil, 1, full), // empty: contributes nothing
	}
	f := buildFilter(metas, 0)
	// Shard 0's filter: shard 1's max corner plus its one rep — and nothing
	// from shard 0 itself or the empty shard 2.
	if len(f) != 2 {
		t.Fatalf("filter for shard 0 has %d points, want 2: %v", len(f), f)
	}
	for _, p := range f {
		if p[0] != 0.5 || p[1] != 0.6 {
			t.Fatalf("filter for shard 0 contains foreign point %v, want only (0.5,0.6)", p)
		}
	}
	// A shard's own max corner can never Definition-1-dominate its own
	// members (it is componentwise ≥ each of them), so shipping it back is
	// pure waste — pin that it stays excluded.
	for _, p := range metas[0].reps {
		if dom.DominatesIn(metas[0].region.Max, p, full) {
			t.Fatalf("own max corner dominated own member %v", p)
		}
	}
	for _, p := range buildFilter(metas, 1) {
		if p[0] == 0.5 && p[1] == 0.6 {
			t.Fatalf("shard 1's filter contains its own point: %v", buildFilter(metas, 1))
		}
	}
}

// fuzzPrunePlan decodes raw fuzz bytes into a deterministic multi-shard
// scenario: d in [2,4], k shards in [2,4], preK reps in [0,3], then int16
// coordinate pairs on a 1/16384 grid (negative coordinates and exact
// duplicates arise naturally).
func fuzzPrunePlan(raw []byte) (d, k, preK int, pts [][]float32) {
	if len(raw) < 3 {
		return 0, 0, 0, nil
	}
	d = 2 + int(raw[0])%3
	k = 2 + int(raw[1])%3
	preK = int(raw[2]) % 4
	body := raw[3:]
	n := len(body) / (2 * d)
	if n > 48 {
		n = 48
	}
	if n < k {
		return 0, 0, 0, nil
	}
	pts = make([][]float32, n)
	for i := 0; i < n; i++ {
		p := make([]float32, d)
		for j := 0; j < d; j++ {
			u := binary.LittleEndian.Uint16(body[(i*d+j)*2:])
			p[j] = float32(int16(u)) / 16384
		}
		pts[i] = p
	}
	return d, k, preK, pts
}

// FuzzPrunedMergeEquivalence drives the pure pruning pipeline — prelude
// metadata, upfront region/rep skips, per-destination filters, source-side
// drops — against the plain union-then-merge on the same round-robin
// sharding, and requires identical skylines plus exact considered-count
// accounting for every subspace. This is the merge path's equivalence
// obligation with no HTTP in the way.
func FuzzPrunedMergeEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 1, 2,
		0xff, 0x7f, 0, 0x80, 0x10, 0, // extreme positive/negative/small
		0x10, 0, 0x10, 0, 0x10, 0,
		0xff, 0xff, 0xee, 0xee, 0x01, 0x00,
		0x00, 0x40, 0x00, 0xc0, 0x00, 0x20})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, k, preK, pts := fuzzPrunePlan(raw)
		if pts == nil {
			t.Skip("not enough bytes for a scenario")
		}
		// Round-robin sharding with global id = index.
		locals := make([][][]float32, k) // shard -> local skyline points
		ids := make([][]int32, k)        // shard -> matching global ids
		for delta := mask.Mask(1); delta < mask.Mask(1)<<d; delta++ {
			for s := range locals {
				locals[s], ids[s] = locals[s][:0], ids[s][:0]
			}
			for i, p := range pts {
				s := i % k
				dominated := false
				for j, q := range pts {
					if j != i && j%k == s && dom.DominatesIn(q, p, delta) {
						dominated = true
						break
					}
				}
				if !dominated {
					locals[s] = append(locals[s], p)
					ids[s] = append(ids[s], int32(i))
				}
			}

			var unpruned []candidate
			totalLocal := 0
			for s := range locals {
				totalLocal += len(locals[s])
				for i, p := range locals[s] {
					unpruned = append(unpruned, candidate{id: ids[s][i], point: p})
				}
			}
			want := mergeSkyline(unpruned, delta, nil)

			metas := make([]shardMeta, k)
			for s := range metas {
				metas[s] = metaOf(7, locals[s], preK, delta)
			}
			skips := upfrontSkips(metas, delta)
			var pruned []candidate
			considered := 0
			for s := range metas {
				if skips[s] {
					considered += metas[s].count
					continue
				}
				filter := buildFilter(metas, s)
				for i, p := range locals[s] {
					considered++
					if dominatedByAny(filter, p, delta) {
						continue
					}
					pruned = append(pruned, candidate{id: ids[s][i], point: p})
				}
			}
			got := mergeSkyline(pruned, delta, nil)

			if !equalIDs(got, want) {
				t.Fatalf("subspace %b: pruned skyline %v != unpruned %v (d=%d k=%d preK=%d, %d pts)",
					delta, got, want, d, k, preK, len(pts))
			}
			if considered != totalLocal {
				t.Fatalf("subspace %b: considered %d points, want Σ|local| = %d", delta, considered, totalLocal)
			}
		}
	})
}
