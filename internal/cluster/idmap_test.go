package cluster

import "testing"

// TestIDSchemeSingleSegment: the plain-partition scheme reproduces the
// -id-base/-id-stride arithmetic and inverts exactly the ids it mints.
func TestIDSchemeSingleSegment(t *testing.T) {
	s := newIDScheme(1, 3) // shard 1 of a 3-way round-robin
	for local := int32(0); local < 100; local++ {
		g := s.global(local)
		if want := 1 + local*3; g != want {
			t.Fatalf("global(%d) = %d, want %d", local, g, want)
		}
		back, ok := s.localOf(g)
		if !ok || back != local {
			t.Fatalf("localOf(%d) = %d,%v; want %d,true", g, back, ok, local)
		}
	}
	// Ids off the stride grid belong to the other shards.
	for _, g := range []int32{0, 2, 3, 5, 6} {
		if _, ok := s.localOf(g); ok {
			t.Fatalf("localOf(%d) claimed an id off this shard's grid", g)
		}
	}
	if base, stride := s.primary(); base != 1 || stride != 3 {
		t.Fatalf("primary = %d/%d, want 1/3", base, stride)
	}
	if s.sealed() {
		t.Fatal("plain scheme reports sealed")
	}
	if s.rangePartitioned() {
		t.Fatal("stride-3 scheme reports range-partitioned")
	}
	if !newIDScheme(500, 1).rangePartitioned() {
		t.Fatal("stride-1 low-base scheme not range-partitioned")
	}
	// Stride 0 (single-shard cluster) normalises to the identity mapping.
	if g := newIDScheme(0, 0).global(7); g != 7 {
		t.Fatalf("stride-0 global(7) = %d", g)
	}
}

// TestIDSchemeSeal: sealing appends a fresh stride-1 block; copied rows
// keep the parent arithmetic, rows from nextLocal on mint from the block,
// and localOf resolves a contested id to the newer segment.
func TestIDSchemeSeal(t *testing.T) {
	s := newIDScheme(0, 2) // child copied from parent shard 0 of 2
	sealed, err := s.seal(50, SplitBlockBase)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if !sealed.sealed() {
		t.Fatal("sealed scheme reports unsealed")
	}
	if s.sealed() {
		t.Fatal("seal mutated the original scheme")
	}
	// Copied region: original arithmetic.
	if g := sealed.global(49); g != 98 {
		t.Fatalf("copied row 49 -> %d, want 98", g)
	}
	// Post-seal region: the fresh block.
	if g := sealed.global(50); g != SplitBlockBase {
		t.Fatalf("first minted row -> %d, want %d", g, SplitBlockBase)
	}
	if g := sealed.global(53); g != SplitBlockBase+3 {
		t.Fatalf("minted row 53 -> %d, want %d", g, SplitBlockBase+3)
	}
	// Inversion covers both regions.
	if back, ok := sealed.localOf(98); !ok || back != 49 {
		t.Fatalf("localOf(98) = %d,%v", back, ok)
	}
	if back, ok := sealed.localOf(SplitBlockBase + 3); !ok || back != 53 {
		t.Fatalf("localOf(block+3) = %d,%v", back, ok)
	}
	// Local rows 50+ no longer answer to the old arithmetic: global id 100
	// (old row 50) is nobody's id on this shard now.
	if _, ok := sealed.localOf(100); ok {
		t.Fatal("localOf(100) still resolves through the superseded arithmetic")
	}
	// Sealing is still not range-partitioned (the primary stride-2 rules).
	if sealed.rangePartitioned() {
		t.Fatal("sealed stride-2 scheme reports range-partitioned")
	}

	// Validation: a second seal must start after the last segment, and the
	// fresh base must sit in the reserved region.
	if _, err := sealed.seal(50, SplitBlockBase+splitBlockSize); err == nil {
		t.Fatal("seal at an existing segment start accepted")
	}
	if _, err := sealed.seal(60, 1000); err == nil {
		t.Fatal("seal base below the reserved region accepted")
	}
}

// TestIDSchemeSegmentsRoundTrip: segments() → schemeFromSegments rebuilds
// an equivalent scheme (the /shard/info → coordinator learn path, and the
// -id-segments restart path).
func TestIDSchemeSegmentsRoundTrip(t *testing.T) {
	s := newIDScheme(1, 2)
	sealed, err := s.seal(30, SplitBlockBase+splitBlockSize)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	rebuilt, err := schemeFromSegments(sealed.segments())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for local := int32(0); local < 80; local++ {
		if a, b := sealed.global(local), rebuilt.global(local); a != b {
			t.Fatalf("global(%d): %d vs %d after round trip", local, a, b)
		}
	}
	// The defensive copy really is one.
	segs := sealed.segments()
	segs[0].Base = 999
	if sealed.segs[0].Base == 999 {
		t.Fatal("segments() exposed the internal slice")
	}

	// Validation failures.
	for name, segs := range map[string][]IDSegment{
		"empty":           nil,
		"gap at zero":     {{Start: 5, Base: 0, Stride: 1}},
		"zero stride":     {{Start: 0, Base: 0, Stride: 0}},
		"negative base":   {{Start: 0, Base: -1, Stride: 1}},
		"duplicate start": {{Start: 0, Base: 0, Stride: 1}, {Start: 0, Base: 9, Stride: 1}},
	} {
		if _, err := schemeFromSegments(segs); err == nil {
			t.Fatalf("%s segment list accepted", name)
		}
	}
	// Out-of-order input is sorted, not rejected.
	ok, err := schemeFromSegments([]IDSegment{
		{Start: 40, Base: SplitBlockBase, Stride: 1},
		{Start: 0, Base: 0, Stride: 2},
	})
	if err != nil {
		t.Fatalf("out-of-order segments rejected: %v", err)
	}
	if g := ok.global(41); g != SplitBlockBase+1 {
		t.Fatalf("sorted scheme global(41) = %d", g)
	}
}
