package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"skycube/internal/obs"
)

// GET /trace/query?id=<32-hex trace id>: the assembled cross-process Chrome
// trace of one traced query. The coordinator's own hop record anchors the
// timeline; every replica of every shard is then asked (best-effort, in
// parallel) for its hop records of the same trace id via /debug/requests,
// and each hop's spans are offset by its wall-clock start relative to the
// coordinator hop. The result loads into about://tracing or
// https://ui.perfetto.dev: one "coordinator" track plus one track per
// shard/replica hop, with the replica attempts, the winning hedge, the
// shard-local cache probe and cuboid extraction, and the final merge and
// encode all on one timeline.
//
// Clock skew between processes shifts shard tracks by the skew (offsets are
// wall-clock differences); within one machine — the common debugging setup —
// this is negligible.

// traceFetchTimeout bounds the whole shard-ring collection; a dead replica
// must not stall the trace export.
const traceFetchTimeout = 2 * time.Second

func (c *Coordinator) handleTraceQuery(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	id := r.URL.Query().Get("id")
	if _, ok := obs.ParseTraceID(id); !ok {
		http.Error(w, fmt.Sprintf("bad id %q (need the 32-hex trace id from /debug/requests, explain output or the slow-query log)", id),
			http.StatusBadRequest)
		return
	}
	root := c.opt.Requests.Find(id)
	if root == nil {
		http.Error(w, fmt.Sprintf("trace %s not resident (evicted from the ring, or never sampled)", id),
			http.StatusNotFound)
		return
	}
	rootSnap := root.Snapshot()
	spans := obs.SnapshotSpans(rootSnap, 0, "coordinator")

	// Collect the shards' hop records for this trace, best-effort: a replica
	// that is down or was never contacted contributes nothing.
	type hop struct {
		track string
		snaps []obs.RecordSnapshot
	}
	ctx, cancel := context.WithTimeout(r.Context(), traceFetchTimeout)
	defer cancel()
	var wg sync.WaitGroup
	ch := make(chan hop)
	for _, g := range c.curMap().shards {
		for _, rep := range g.replicas {
			wg.Add(1)
			go func(shard, url string) {
				defer wg.Done()
				snaps, err := c.fetchHops(ctx, url, id)
				if err != nil || len(snaps) == 0 {
					return
				}
				ch <- hop{track: shard + " " + url, snaps: snaps}
			}(g.name, rep.url)
		}
	}
	go func() { wg.Wait(); close(ch) }()
	for h := range ch {
		for _, snap := range h.snaps {
			base := snap.Start.Sub(rootSnap.Start)
			spans = append(spans, obs.SnapshotSpans(snap, base, h.track)...)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="trace-%s.json"`, id))
	_ = obs.WriteChromeSpans(w, spans)
}

// fetchHops pulls one replica's hop records for a trace id from its
// /debug/requests endpoint.
func (c *Coordinator) fetchHops(ctx context.Context, replicaURL, trace string) ([]obs.RecordSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		replicaURL+"/debug/requests?trace="+trace, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s/debug/requests: status %d", replicaURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	return obs.DecodeRequests(body)
}
