package cluster

import (
	"fmt"
	"math"
	"sort"
)

// IDSegment maps one contiguous run of a shard's local rows to global point
// ids: local rows r >= Start (up to the next segment's Start) carry global
// id Base + (r-Start)*Stride. A shard born into a K-way round-robin
// partition has the single segment {0, s, K}; a split seals its child with
// an extra segment so rows copied from the parent keep their original
// global ids while rows inserted after the cutover mint from a fresh,
// collision-free block.
type IDSegment struct {
	Start  int32 `json:"start"`
	Base   int32 `json:"base"`
	Stride int32 `json:"stride"`
}

// SplitBlockBase is the first global id of the region reserved for
// split-minted insert blocks. Ids below it belong to the original partition
// arithmetic (round-robin or range); each split cutover seals its child
// with a stride-1 block of splitBlockSize ids starting at or above it, so
// sealed blocks can never collide with the parent's continuing sequence in
// any bounded deployment.
const SplitBlockBase = 1 << 28

// splitBlockSize is the id capacity of one sealed split block.
const splitBlockSize = 1 << 20

// idScheme is a shard's full piecewise id mapping, ordered by Start. It is
// immutable once built — mutation is copy-and-swap (see shardGroup.scheme).
type idScheme struct {
	segs []IDSegment
}

// newIDScheme builds the single-segment scheme of a plain partition.
// Stride 0 normalises to 1 (a single-shard cluster).
func newIDScheme(base, stride int) *idScheme {
	if stride == 0 {
		stride = 1
	}
	return &idScheme{segs: []IDSegment{{Start: 0, Base: int32(base), Stride: int32(stride)}}}
}

// schemeFromSegments validates and adopts an explicit segment list (from
// /shard/info or an admin request).
func schemeFromSegments(segs []IDSegment) (*idScheme, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("cluster: empty id-segment list")
	}
	out := append([]IDSegment(nil), segs...)
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	if out[0].Start != 0 {
		return nil, fmt.Errorf("cluster: id segments must start at local row 0, got %d", out[0].Start)
	}
	for i, seg := range out {
		if seg.Stride <= 0 || seg.Base < 0 || seg.Start < 0 {
			return nil, fmt.Errorf("cluster: bad id segment %+v", seg)
		}
		if i > 0 && seg.Start == out[i-1].Start {
			return nil, fmt.Errorf("cluster: duplicate id-segment start %d", seg.Start)
		}
	}
	return &idScheme{segs: out}, nil
}

// segEnd returns the exclusive local-row bound of segment i.
func (s *idScheme) segEnd(i int) int32 {
	if i+1 < len(s.segs) {
		return s.segs[i+1].Start
	}
	return math.MaxInt32
}

// global maps a local row to its global id.
func (s *idScheme) global(local int32) int32 {
	for i := len(s.segs) - 1; i >= 0; i-- {
		if local >= s.segs[i].Start {
			seg := s.segs[i]
			return seg.Base + (local-seg.Start)*seg.Stride
		}
	}
	// Unreachable: segment 0 starts at local row 0 and rows are >= 0.
	return local
}

// localOf inverts global: the local row carrying that global id, if any
// segment claims it. Newer segments are tried first so a sealed high block
// wins over an open-ended earlier arithmetic that would also reach the id.
func (s *idScheme) localOf(global int32) (int32, bool) {
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		off := global - seg.Base
		if off < 0 || off%seg.Stride != 0 {
			continue
		}
		local := seg.Start + off/seg.Stride
		if local >= seg.Start && local < s.segEnd(i) {
			return local, true
		}
	}
	return 0, false
}

// primary returns the first segment's arithmetic — the shard's original
// partition mapping, reported for backward compatibility in /shard/info.
func (s *idScheme) primary() (base, stride int) {
	return int(s.segs[0].Base), int(s.segs[0].Stride)
}

// sealed reports whether the scheme carries a split-minted block.
func (s *idScheme) sealed() bool {
	return s.segs[len(s.segs)-1].Base >= SplitBlockBase
}

// seal returns a copy of the scheme extended with a fresh stride-1 block
// for rows inserted from nextLocal on.
func (s *idScheme) seal(nextLocal, freshBase int32) (*idScheme, error) {
	last := s.segs[len(s.segs)-1]
	if nextLocal <= last.Start {
		return nil, fmt.Errorf("cluster: seal at local row %d, but a segment already starts at %d",
			nextLocal, last.Start)
	}
	if freshBase < SplitBlockBase {
		return nil, fmt.Errorf("cluster: seal base %d below the split block region %d", freshBase, SplitBlockBase)
	}
	segs := append(append([]IDSegment(nil), s.segs...),
		IDSegment{Start: nextLocal, Base: freshBase, Stride: 1})
	return &idScheme{segs: segs}, nil
}

// segments returns a defensive copy for JSON surfaces.
func (s *idScheme) segments() []IDSegment {
	return append([]IDSegment(nil), s.segs...)
}

// rangePartitioned reports the read-only stride-1 range layout: the
// ORIGINAL partition arithmetic has stride 1, meaning shard s's next local
// row would mint exactly shard s+1's base id. Sealed split blocks are also
// stride 1 but live in their own reserved region, so they do not count.
func (s *idScheme) rangePartitioned() bool {
	return s.segs[0].Stride == 1 && s.segs[0].Base < SplitBlockBase
}
