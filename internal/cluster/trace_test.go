// End-to-end tests for distributed request tracing: traceparent propagation
// coordinator -> shard, the ?explain=1 breakdown, the /trace/query Chrome
// export, and the slow-query log.
package cluster

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"skycube"
	"skycube/internal/obs"
)

// tracedCluster builds a K=2, R=1 cluster where the coordinator and every
// shard have their own request ring. SampleEvery stays 0: only requests
// carrying a traceparent header (or ?explain=1) are traced, which is also
// the configuration under which the hot path must stay allocation-free.
type tracedCluster struct {
	*testCluster
	coordRing  *obs.RequestRing
	shardRings map[int]*obs.RequestRing // shard index -> ring
}

func newTracedCluster(t *testing.T, copt CoordinatorOptions) *tracedCluster {
	t.Helper()
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 400, 4, 61)
	tc := &tracedCluster{
		coordRing:  obs.NewRequestRing(64),
		shardRings: map[int]*obs.RequestRing{},
	}
	copt.Requests = tc.coordRing
	if copt.Timeout == 0 {
		copt.Timeout = 5 * time.Second
	}
	if copt.HedgeDelay == 0 {
		// A hedge firing under CI load would add attempts nondeterministically
		// (the golden shape test pins the attempt list).
		copt.HedgeDelay = time.Minute
	}
	tc.testCluster = newTestClusterOpts(t, ds, 2, 1, skycube.RoundRobinPartition, copt,
		func(shard, replica int, so *ShardOptions) {
			ring := obs.NewRequestRing(64)
			tc.shardRings[shard] = ring
			so.Requests = ring
		})
	return tc
}

func traceRequest(path, traceparent string) *http.Request {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	return req
}

func eventKinds(snap obs.RecordSnapshot) map[string]int {
	kinds := map[string]int{}
	for _, e := range snap.Events {
		kinds[e.Kind]++
	}
	return kinds
}

func TestTracePropagationAcrossCluster(t *testing.T) {
	tc := newTracedCluster(t, CoordinatorOptions{})
	trace := obs.NewTraceID()
	tp := obs.Traceparent(trace, obs.NewSpanID())

	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2", tp))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced query: status %d: %s", rec.Code, rec.Body.String())
	}

	// The coordinator hop: recorded under the incoming trace id, with the
	// full scatter visible as typed events.
	root := tc.coordRing.Find(trace.String())
	if root == nil {
		t.Fatal("coordinator ring has no record for the propagated trace id")
	}
	snap := root.Snapshot()
	if snap.Kind != "coordinator" || snap.InFlight || snap.Status != http.StatusOK {
		t.Fatalf("coordinator hop = kind %q in_flight %v status %d", snap.Kind, snap.InFlight, snap.Status)
	}
	kinds := eventKinds(snap)
	if kinds[obs.EvAttempt] < 2 || kinds[obs.EvShardResult] != 2 ||
		kinds[obs.EvMerge] != 1 || kinds[obs.EvEncode] != 1 || kinds[obs.EvCache] == 0 {
		t.Fatalf("coordinator events incomplete: %v", kinds)
	}

	// Every shard hop: same trace id, kind "shard", cuboid extraction timed.
	for s, ring := range tc.shardRings {
		hop := ring.Find(trace.String())
		if hop == nil {
			t.Fatalf("shard %d ring has no record for the propagated trace id", s)
		}
		hs := hop.Snapshot()
		if hs.Kind != "shard" || hs.Path != "/shard/cuboid" {
			t.Fatalf("shard %d hop = kind %q path %q", s, hs.Kind, hs.Path)
		}
		if eventKinds(hs)[obs.EvCuboid] != 1 {
			t.Fatalf("shard %d hop has no cuboid event: %+v", s, hs.Events)
		}
	}

	// With SampleEvery 0, a header-less query must NOT be recorded.
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("untraced query: status %d", rec.Code)
	}
	if got := len(tc.coordRing.Snapshot("", 0)); got != 1 {
		t.Fatalf("sampled-out query was recorded: ring holds %d records, want 1", got)
	}
}

func TestExplainBreakdown(t *testing.T) {
	tc := newTracedCluster(t, CoordinatorOptions{})

	// Explain first, against a cold cache: the full scatter plus merge and
	// encode must appear in the breakdown.
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2&explain=1", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: status %d: %s", rec.Code, rec.Body.String())
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("explain Cache-Control = %q, want no-store", cc)
	}
	var ex explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ex); err != nil {
		t.Fatalf("decode explain: %v", err)
	}
	if _, ok := obs.ParseTraceID(ex.TraceID); !ok {
		t.Errorf("explain trace_id %q does not parse", ex.TraceID)
	}
	if ex.Status != http.StatusOK || ex.Partial || ex.Cache != "bypass" {
		t.Errorf("explain status=%d partial=%v cache=%q, want 200/false/bypass", ex.Status, ex.Partial, ex.Cache)
	}
	if len(ex.Shards) != 2 {
		t.Fatalf("explain shards = %d, want 2", len(ex.Shards))
	}
	var candSum int64
	for _, s := range ex.Shards {
		if s.Attempts < 1 || s.Err != "" {
			t.Errorf("shard %s: attempts=%d err=%q", s.Shard, s.Attempts, s.Err)
		}
		if s.Candidates <= 0 || s.Bytes <= 0 {
			t.Errorf("shard %s: candidates=%d bytes=%d, want both > 0", s.Shard, s.Candidates, s.Bytes)
		}
		if s.StartNS < 0 || s.DurNS <= 0 || s.StartNS+s.DurNS > ex.DurNS {
			t.Errorf("shard %s interval [%d, +%d] outside end-to-end %d", s.Shard, s.StartNS, s.DurNS, ex.DurNS)
		}
		candSum += s.Candidates
	}
	if ex.Candidates != candSum {
		t.Errorf("candidates %d != per-shard sum %d", ex.Candidates, candSum)
	}
	if len(ex.Attempts) < 2 {
		t.Fatalf("explain attempts = %d, want >= 2", len(ex.Attempts))
	}
	for _, a := range ex.Attempts {
		if a.StartNS < 0 || a.StartNS+a.DurNS > ex.DurNS {
			t.Errorf("attempt %s@%s interval [%d, +%d] outside end-to-end %d", a.Shard, a.Replica, a.StartNS, a.DurNS, ex.DurNS)
		}
	}
	if ex.Merge == nil || ex.Encode == nil {
		t.Fatalf("cold explain lost pipeline stages: merge=%v encode=%v", ex.Merge, ex.Encode)
	}
	if ex.Merge.StartNS+ex.Merge.DurNS > ex.DurNS || ex.Encode.StartNS+ex.Encode.DurNS > ex.DurNS {
		t.Errorf("merge/encode intervals outside end-to-end %d: %+v %+v", ex.DurNS, ex.Merge, ex.Encode)
	}
	if ex.Count <= 0 || int64(ex.Count) != ex.Merge.N {
		t.Errorf("count %d != merge n %d (or not positive)", ex.Count, ex.Merge.N)
	}

	// The answer explain reports must match the real endpoint's.
	resp := querySkyline(t, tc.coord, 0b0111, http.StatusOK)
	if resp.Count != ex.Count || resp.Candidates != int(ex.Candidates) {
		t.Errorf("explain count/candidates %d/%d != /skyline %d/%d",
			ex.Count, ex.Candidates, resp.Count, resp.Candidates)
	}

	// A repeat explain re-gathers but proves the shards unchanged: the
	// epoch-vector memo answers, merge and encode are skipped, and the
	// disposition says so — while count/candidates are still reported.
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2&explain=1", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("second explain: status %d", rec.Code)
	}
	var ex2 explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ex2); err != nil {
		t.Fatal(err)
	}
	if ex2.Cache != "hit-epoch-vector" || ex2.Merge != nil || ex2.Encode != nil {
		t.Errorf("memoized explain: cache=%q merge=%v encode=%v, want hit-epoch-vector/nil/nil",
			ex2.Cache, ex2.Merge, ex2.Encode)
	}
	if ex2.Count != ex.Count || ex2.Candidates != ex.Candidates {
		t.Errorf("memoized explain count/candidates %d/%d != cold %d/%d",
			ex2.Count, ex2.Candidates, ex.Count, ex.Candidates)
	}
}

// TestExplainGoldenShape pins the explain JSON's field names and structure
// against a golden file, with volatile values (trace id, timings, byte
// sizes, epochs, replica URLs) normalized. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/cluster -run TestExplainGoldenShape
func TestExplainGoldenShape(t *testing.T) {
	tc := newTracedCluster(t, CoordinatorOptions{})
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2&explain=1", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: status %d: %s", rec.Code, rec.Body.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode explain: %v", err)
	}
	normalizeExplain(doc)
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "explain_shape.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("explain shape drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// normalizeExplain rewrites volatile values in a decoded explain document so
// the deterministic shape (field names, shard count, attempt structure,
// counts) can be compared byte-for-byte.
func normalizeExplain(v any) {
	switch node := v.(type) {
	case map[string]any:
		for k, val := range node {
			switch {
			case k == "trace_id":
				node[k] = "<trace>"
			case k == "replica":
				node[k] = "<url>"
			case strings.HasSuffix(k, "_ns"):
				if f, ok := val.(float64); ok && f != 0 {
					node[k] = 1
				}
			case k == "bytes" || k == "epoch":
				if f, ok := val.(float64); ok && f != 0 {
					node[k] = 1
				}
			default:
				normalizeExplain(val)
			}
		}
	case []any:
		for _, item := range node {
			normalizeExplain(item)
		}
	}
}

func TestTraceQueryChromeExport(t *testing.T) {
	tc := newTracedCluster(t, CoordinatorOptions{})
	trace := obs.NewTraceID()
	tp := obs.Traceparent(trace, obs.NewSpanID())

	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1,2", tp))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced query: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/trace/query?id="+trace.String(), ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace/query: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, trace.String()) {
		t.Errorf("Content-Disposition = %q, want filename with trace id", cd)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &file); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	// Track names come from thread_name metadata events: the coordinator
	// track plus one per contacted shard replica.
	var tracks []string
	var spanNames []string
	for _, e := range file.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			if name, ok := e.Args["name"].(string); ok {
				tracks = append(tracks, name)
			}
		case e.Ph == "X":
			spanNames = append(spanNames, e.Name)
		}
	}
	sort.Strings(tracks)
	hasTrack := func(prefix string) bool {
		for _, tr := range tracks {
			if strings.HasPrefix(tr, prefix) {
				return true
			}
		}
		return false
	}
	if !hasTrack("coordinator") || !hasTrack("0 http") || !hasTrack("1 http") {
		t.Fatalf("trace export tracks = %v, want coordinator plus both shards", tracks)
	}
	var skylineSpans, cuboidSpans int
	for _, n := range spanNames {
		if strings.Contains(n, "/skyline") {
			skylineSpans++
		}
		if strings.Contains(n, "/shard/cuboid") {
			cuboidSpans++
		}
	}
	if skylineSpans == 0 || cuboidSpans < 2 {
		t.Fatalf("trace export spans: %d /skyline, %d /shard/cuboid (want >=1 and >=2): %v",
			skylineSpans, cuboidSpans, spanNames)
	}

	// Error surface: malformed id, then a well-formed but unknown id.
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/trace/query?id=nope", ""))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/trace/query?id="+obs.NewTraceID().String(), ""))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", rec.Code)
	}
}

func TestCoordinatorSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	tc := newTracedCluster(t, CoordinatorOptions{
		Logger:    log.New(&buf, "", 0),
		SlowQuery: time.Nanosecond, // every query is "slow"
	})
	trace := obs.NewTraceID()
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1", obs.Traceparent(trace, obs.NewSpanID())))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	line := buf.String()
	if !strings.Contains(line, "slow-query") || !strings.Contains(line, "path=/skyline") {
		t.Fatalf("slow-query line missing or malformed: %q", line)
	}
	if !strings.Contains(line, "trace="+trace.String()) {
		t.Fatalf("slow-query line lacks the trace id: %q", line)
	}

	// An unsampled (and untraced) slow query still logs, with trace=-.
	buf.Reset()
	rec = httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, traceRequest("/skyline?dims=0,1", ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if line := buf.String(); !strings.Contains(line, "trace=-") {
		t.Fatalf("untraced slow-query line should carry trace=-: %q", line)
	}
}
