// Pruning-path tests at the protocol and chaos level: the /shard/skymeta
// prelude and /shard/cuboid filter parameter, and the pruned gather's
// degradation contract — a pre-filter racing a flush epoch advance or a
// shard death must fall back to the unpruned path or an honest 206, with
// the fallback recorded in metrics and trace events, never a silently
// wrong answer.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skycube"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

func getJSON(t *testing.T, h http.Handler, path string, wantStatus int, v interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", path, rec.Code, wantStatus, rec.Body.String())
	}
	if v != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func TestShardSkymetaEndpoint(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 200, 3, 61)
	sh, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		var cuboid cuboidResponse
		getJSON(t, sh, fmt.Sprintf("/shard/cuboid?subspace=%d", delta), http.StatusOK, &cuboid)
		var meta skymetaResponse
		getJSON(t, sh, fmt.Sprintf("/shard/skymeta?subspace=%d&k=3", delta), http.StatusOK, &meta)

		if meta.Count != cuboid.Count || meta.Epoch != cuboid.Epoch {
			t.Fatalf("subspace %d: skymeta (count %d, epoch %d) disagrees with cuboid (count %d, epoch %d)",
				delta, meta.Count, meta.Epoch, cuboid.Count, cuboid.Epoch)
		}
		// The corner must tightly bound every member, and each corner
		// coordinate must be attained by some member.
		for j := 0; j < 3; j++ {
			lo, hi := cuboid.Points[0][j], cuboid.Points[0][j]
			for _, p := range cuboid.Points {
				if p[j] < meta.Min[j] || p[j] > meta.Max[j] {
					t.Fatalf("subspace %d: member coord %v outside corner [%v,%v]", delta, p[j], meta.Min[j], meta.Max[j])
				}
				if p[j] < lo {
					lo = p[j]
				}
				if p[j] > hi {
					hi = p[j]
				}
			}
			if lo != meta.Min[j] || hi != meta.Max[j] {
				t.Fatalf("subspace %d dim %d: corner [%v,%v] not tight, members span [%v,%v]",
					delta, j, meta.Min[j], meta.Max[j], lo, hi)
			}
		}
		// Reps are actual members, sorted by ascending coordinate sum over δ.
		if len(meta.Reps) != min(3, meta.Count) {
			t.Fatalf("subspace %d: %d reps, want %d", delta, len(meta.Reps), min(3, meta.Count))
		}
		prev := float64(-1 << 30)
		for _, rep := range meta.Reps {
			var sum float64
			found := false
			for j := 0; j < 3; j++ {
				if delta&mask.Bit(j) != 0 {
					sum += float64(rep[j])
				}
			}
			for _, p := range cuboid.Points {
				same := true
				for j := range p {
					if p[j] != rep[j] {
						same = false
						break
					}
				}
				if same {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("subspace %d: rep %v is not a cuboid member", delta, rep)
			}
			if sum < prev {
				t.Fatalf("subspace %d: reps not sorted by δ-sum", delta)
			}
			prev = sum
		}
	}

	// Extended mode is honored (S⁺ count ≥ S count) and echoed.
	var plain, ext skymetaResponse
	getJSON(t, sh, "/shard/skymeta?subspace=7", http.StatusOK, &plain)
	getJSON(t, sh, "/shard/skymeta?subspace=7&extended=true", http.StatusOK, &ext)
	if !ext.Extended || ext.Count < plain.Count {
		t.Fatalf("extended skymeta = %+v, plain = %+v", ext, plain)
	}

	// Parameter validation.
	for _, bad := range []string{
		"/shard/skymeta?subspace=0",
		"/shard/skymeta?subspace=8",
		"/shard/skymeta?subspace=7&k=-1",
		"/shard/skymeta?subspace=7&k=abc",
		fmt.Sprintf("/shard/skymeta?subspace=7&k=%d", maxSkymetaReps+1),
	} {
		getJSON(t, sh, bad, http.StatusBadRequest, nil)
	}
}

func TestShardCuboidFilterParam(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 200, 3, 67)
	sh, err := NewShard(ds, skycube.Options{Threads: 2}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	var unfiltered cuboidResponse
	getJSON(t, sh, "/shard/cuboid?subspace=7", http.StatusOK, &unfiltered)

	// A filter point dominating part of the local skyline: Count shrinks,
	// Filtered grows, and their sum stays the full local cuboid size.
	filter := encodePointList([][]float32{unfiltered.Points[len(unfiltered.Points)/2]})
	var got cuboidResponse
	getJSON(t, sh, "/shard/cuboid?subspace=7&filter="+url.QueryEscape(filter), http.StatusOK, &got)
	if got.Count+got.Filtered != unfiltered.Count {
		t.Fatalf("count %d + filtered %d != unfiltered %d", got.Count, got.Filtered, unfiltered.Count)
	}
	// The filter point is itself a local member: it dominates nothing of its
	// own skyline (members are mutually undominated), so nothing is dropped.
	if got.Filtered != 0 {
		t.Fatalf("a shard's own member filtered %d of its own skyline", got.Filtered)
	}
	// An overwhelming foreign witness prunes everything.
	strong := encodePointList([][]float32{{-1000, -1000, -1000}})
	getJSON(t, sh, "/shard/cuboid?subspace=7&filter="+url.QueryEscape(strong), http.StatusOK, &got)
	if got.Count != 0 || got.Filtered != unfiltered.Count {
		t.Fatalf("overwhelming filter: count %d filtered %d, want 0/%d", got.Count, got.Filtered, unfiltered.Count)
	}
	// Survivors under a partial filter are exactly the undominated members.
	weak := [][]float32{{0.2, 0.2, 0.2}}
	getJSON(t, sh, "/shard/cuboid?subspace=7&filter="+url.QueryEscape(encodePointList(weak)), http.StatusOK, &got)
	kept := map[int32]bool{}
	for _, id := range got.IDs {
		kept[id] = true
	}
	for i, id := range unfiltered.IDs {
		want := !dominatedByAny(weak, unfiltered.Points[i], mask.Mask(7))
		if kept[id] != want {
			t.Fatalf("id %d: shipped=%v, want %v", id, kept[id], want)
		}
	}

	// Malformed filters are caller errors.
	for _, bad := range []string{
		"1,2",       // wrong width
		"a,b,c",     // not numbers
		"1,2,3;4,5", // ragged
	} {
		getJSON(t, sh, "/shard/cuboid?subspace=7&filter="+url.QueryEscape(bad), http.StatusBadRequest, nil)
	}
}

// pathFaultHandler fails or intercepts requests by URL path.
type pathFaultHandler struct {
	inner    http.Handler
	deadPath atomic.Value // string: requests with this path prefix get a 500
	// beforeCuboid, when armed, runs once before the next /shard/cuboid is
	// forwarded (used to advance the shard's epoch mid-pruned-gather).
	beforeCuboid atomic.Value // func()
}

func (f *pathFaultHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if dp, _ := f.deadPath.Load().(string); dp != "" && strings.HasPrefix(r.URL.Path, dp) {
		http.Error(w, "injected fault: path dead", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/shard/cuboid" {
		if fn, _ := f.beforeCuboid.Load().(func()); fn != nil {
			f.beforeCuboid.Store(func() {}) // run at most once
			if fn != nil {
				fn()
			}
		}
	}
	f.inner.ServeHTTP(w, r)
}

// prunedChaosCluster is K=2 round-robin shards, one replica each, with
// path-level fault injection, plus a pruned and an unpruned coordinator
// over the same shards.
type prunedChaosCluster struct {
	pruned   *Coordinator
	unpruned *Coordinator
	shards   []*Shard
	faults   []*pathFaultHandler
	reg      *obs.Registry
}

func newPrunedChaosCluster(t *testing.T, ds *skycube.Dataset) *prunedChaosCluster {
	t.Helper()
	const k = 2
	parts, err := ds.Partition(k, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	cc := &prunedChaosCluster{reg: obs.NewRegistry()}
	var specs []ShardSpec
	for s, part := range parts {
		sh, err := NewShard(part, skycube.Options{Threads: 2}, ShardOptions{
			IDBase: s, IDStride: k,
			Requests: obs.NewRequestRing(64), SampleEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sh.Close)
		f := &pathFaultHandler{inner: sh}
		srv := httptest.NewServer(f)
		t.Cleanup(srv.Close)
		cc.shards = append(cc.shards, sh)
		cc.faults = append(cc.faults, f)
		specs = append(specs, ShardSpec{Replicas: []string{srv.URL}, IDBase: s, IDStride: k})
	}
	base := CoordinatorOptions{
		Timeout:      time.Second,
		HedgeDelay:   -1,
		MaxAttempts:  2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		DisableCache: true,
		Requests:     obs.NewRequestRing(64),
		SampleEvery:  1,
	}
	if cc.unpruned, err = NewCoordinator(specs, base); err != nil {
		t.Fatal(err)
	}
	pruneOpt := base
	pruneOpt.Prune = true
	pruneOpt.PreFilterK = 4
	pruneOpt.PreFilterMinShards = 2
	pruneOpt.Metrics = cc.reg
	pruneOpt.Requests = obs.NewRequestRing(64)
	if cc.pruned, err = NewCoordinator(specs, pruneOpt); err != nil {
		t.Fatal(err)
	}
	return cc
}

// TestChaosPrunedEpochAdvanceFallsBack races the pre-filter against a flush
// epoch advance: the prelude observes epoch E, then the shard applies an
// insert and flushes to E+1 before serving its cuboid. The pruned gather
// must detect the mismatch, fall back to the unpruned path, and answer
// exactly for the post-flush data — with the fallback visible in metrics
// and in the ?explain=1 trace rendering.
func TestChaosPrunedEpochAdvanceFallsBack(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 71)
	cc := newPrunedChaosCluster(t, ds)

	points := map[int32][]float32{}
	for i := 0; i < ds.Len(); i++ {
		points[int32(i)] = ds.Point(i)
	}
	// Arm shard 0: right before its next cuboid answer, insert a strongly
	// dominating point and flush — its serving epoch advances past what the
	// prelude saw.
	arm := func() {
		cc.faults[0].beforeCuboid.Store(func() {
			sh := cc.shards[0]
			body := `{"points":[[0.001,0.001,0.001]]}`
			req := httptest.NewRequest(http.MethodPost, "/insert", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			sh.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("arm insert: status %d: %s", rec.Code, rec.Body.String()))
			}
			req = httptest.NewRequest(http.MethodPost, "/flush", strings.NewReader("{}"))
			rec = httptest.NewRecorder()
			sh.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("arm flush: status %d: %s", rec.Code, rec.Body.String()))
			}
		})
	}
	arm()
	// Shard 0 (base 0, stride 2) appends local row 100 -> global id 200.
	points[200] = []float32{0.001, 0.001, 0.001}

	got := querySkyline(t, cc.pruned, mask.Mask(7), http.StatusOK)
	if got.Partial {
		t.Fatal("epoch race degraded to partial despite healthy shards")
	}
	if want := bruteSkyline(points, mask.Mask(7)); !equalIDs(got.IDs, want) {
		t.Fatalf("post-race ids %v, want %v (silently wrong under epoch advance)", got.IDs, want)
	}
	m := metricsText(t, cc.reg)
	if !strings.Contains(m, `skycube_cluster_prune_fallbacks_total{reason="epoch_mismatch"}`) {
		t.Fatalf("epoch-mismatch fallback not counted; metrics:\n%s", m)
	}

	// Re-arm and run the same race under ?explain=1: the trace rendering
	// must carry the fallback reason.
	arm()
	points[202] = []float32{0.001, 0.001, 0.001}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1,2&explain=1", nil)
	rec := httptest.NewRecorder()
	cc.pruned.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status %d: %s", rec.Code, rec.Body.String())
	}
	var ex explainResponse
	mustUnmarshal(t, rec.Body.Bytes(), &ex)
	if ex.PruneFallback != "epoch_mismatch" {
		t.Fatalf("explain prune_fallback = %q, want epoch_mismatch (%s)", ex.PruneFallback, rec.Body.String())
	}

	// Steady state after the race: pruning works again, byte-identical to
	// the unpruned coordinator.
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		fast := querySkyline(t, cc.pruned, delta, http.StatusOK)
		plain := querySkyline(t, cc.unpruned, delta, http.StatusOK)
		if !equalIDs(fast.IDs, plain.IDs) || fast.Candidates != plain.Candidates {
			t.Fatalf("subspace %d post-race: pruned %v (cand %d) != unpruned %v (cand %d)",
				delta, fast.IDs, fast.Candidates, plain.IDs, plain.Candidates)
		}
	}
}

// TestChaosPrunedShardDeathDegradesHonestly kills a shard at each stage of
// the pruned gather: a dead prelude must fall back ("prelude_error"), a dead
// cuboid after a healthy prelude must fall back ("gather_error"), and since
// the shard has no surviving replica the fallback path answers an honest
// 206 with the shard named — never a fabricated complete answer.
func TestChaosPrunedShardDeathDegradesHonestly(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 73)
	// The surviving shard-0 view.
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	cube0, _, err := skycube.Build(parts[0], skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantSurvivors := func(delta mask.Mask) []int32 {
		local := cube0.Skyline(skycube.Subspace(delta))
		out := make([]int32, len(local))
		for i, row := range local {
			out[i] = row * 2
		}
		return out
	}

	for _, tt := range []struct {
		name, deadPath, reason string
	}{
		{"prelude-dead", "/shard/", "prelude_error"},
		{"cuboid-dead", "/shard/cuboid", "gather_error"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cc := newPrunedChaosCluster(t, ds)
			cc.faults[1].deadPath.Store(tt.deadPath)
			got := querySkyline(t, cc.pruned, mask.Mask(7), http.StatusPartialContent)
			if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != "1" {
				t.Fatalf("partial=%v failed=%v, want honest 206 naming shard 1", got.Partial, got.FailedShards)
			}
			if want := wantSurvivors(7); !equalIDs(got.IDs, want) {
				t.Fatalf("surviving ids %v, want %v", got.IDs, want)
			}
			m := metricsText(t, cc.reg)
			if !strings.Contains(m, fmt.Sprintf(`skycube_cluster_prune_fallbacks_total{reason=%q}`, tt.reason)) {
				t.Fatalf("fallback reason %q not counted; metrics:\n%s", tt.reason, m)
			}
		})
	}
}

// TestChaosPrunedConcurrentUnderReplicaFlap hammers a pruned coordinator
// from many goroutines while a replica flaps — under -race this probes the
// pruned gather's concurrent machinery (prelude fan-out, late-skip cancels,
// fallback re-gather). With one replica of each shard always alive, every
// answer must be complete and exact, pruned or fallen back.
func TestChaosPrunedConcurrentUnderReplicaFlap(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 200, 3, 79)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:            time.Second,
		HedgeDelay:         2 * time.Millisecond,
		BackoffBase:        time.Millisecond,
		BackoffMax:         2 * time.Millisecond,
		DisableCache:       true,
		Prune:              true,
		PreFilterK:         4,
		PreFilterMinShards: 2,
	})
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cc.faults[0][0].dead.Store(i%2 == 0)
			time.Sleep(3 * time.Millisecond)
		}
	}()
	defer close(stop)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				delta := mask.Mask(1 + (w+i)%7)
				status, got, err := rawQuerySkyline(cc.coord, delta)
				if err != nil {
					errs <- fmt.Errorf("worker %d: subspace %d: %v", w, delta, err)
					return
				}
				if status != http.StatusOK || got.Partial {
					errs <- fmt.Errorf("worker %d: subspace %d: status %d partial=%v", w, delta, status, got.Partial)
					return
				}
				if want := cube.Skyline(skycube.Subspace(delta)); !equalIDs(got.IDs, want) {
					errs <- fmt.Errorf("worker %d: subspace %d ids %v, want %v", w, delta, got.IDs, want)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
