// Chaos tests: the cluster must stay exact through slow replicas, killed
// replicas and mid-query failovers — and when a whole shard is gone it must
// say so explicitly (HTTP 206 + "partial": true), never answer silently
// wrong.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skycube"
	"skycube/internal/mask"
	"skycube/internal/obs"
)

// faultyHandler wraps a shard with injectable latency and a kill switch.
type faultyHandler struct {
	inner http.Handler
	delay atomic.Int64 // nanoseconds added to every request
	dead  atomic.Bool  // refuse all requests with a 500
}

func (f *faultyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "injected fault: replica dead", http.StatusInternalServerError)
		return
	}
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	f.inner.ServeHTTP(w, r)
}

// chaosCluster is K=2 shards × R=2 replicas with fault injection on every
// replica.
type chaosCluster struct {
	coord  *Coordinator
	faults [][]*faultyHandler   // [shard][replica]
	srvs   [][]*httptest.Server // [shard][replica]
	reg    *obs.Registry
}

func newChaosCluster(t *testing.T, ds *skycube.Dataset, copt CoordinatorOptions) *chaosCluster {
	t.Helper()
	const k, r = 2, 2
	parts, err := ds.Partition(k, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	cc := &chaosCluster{reg: obs.NewRegistry()}
	var specs []ShardSpec
	for s, part := range parts {
		var faults []*faultyHandler
		var srvs []*httptest.Server
		var urls []string
		for rep := 0; rep < r; rep++ {
			// Trace every request through the chaos: under -race this makes
			// the hedge/retry event recording itself a data-race probe.
			sh, err := NewShard(part, skycube.Options{Threads: 2}, ShardOptions{
				IDBase: s, IDStride: k,
				Requests: obs.NewRequestRing(64), SampleEvery: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sh.Close)
			f := &faultyHandler{inner: sh}
			srv := httptest.NewServer(f)
			t.Cleanup(srv.Close)
			faults = append(faults, f)
			srvs = append(srvs, srv)
			urls = append(urls, srv.URL)
		}
		cc.faults = append(cc.faults, faults)
		cc.srvs = append(cc.srvs, srvs)
		specs = append(specs, ShardSpec{Replicas: urls, IDBase: s, IDStride: k})
	}
	copt.Metrics = cc.reg
	if copt.Requests == nil {
		copt.Requests = obs.NewRequestRing(64)
		copt.SampleEvery = 1
	}
	coord, err := NewCoordinator(specs, copt)
	if err != nil {
		t.Fatal(err)
	}
	cc.coord = coord
	return cc
}

// rawQuerySkyline is the goroutine-safe variant of querySkyline: it never
// touches testing.T.
func rawQuerySkyline(h http.Handler, delta mask.Mask) (int, skylineResponse, error) {
	var dims []string
	for d := 0; d < 32; d++ {
		if delta&mask.Bit(d) != 0 {
			dims = append(dims, fmt.Sprint(d))
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims="+strings.Join(dims, ","), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp skylineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return rec.Code, resp, fmt.Errorf("decode (%s): %w", rec.Body.String(), err)
	}
	return rec.Code, resp, nil
}

func metricsText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestChaosSlowReplicaHedgedReads(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Anticorrelated, 300, 4, 41)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:     5 * time.Second,
		HedgeDelay:  10 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Slow one replica of each shard to 10x the hedge delay: whichever
	// replica rotation picks first, roughly half the queries hit a slow
	// primary and must be rescued by a hedge to the fast replica.
	cc.faults[0][0].delay.Store(int64(100 * time.Millisecond))
	cc.faults[1][1].delay.Store(int64(100 * time.Millisecond))

	for delta := mask.Mask(1); delta < 1<<4; delta++ {
		got := querySkyline(t, cc.coord, delta, http.StatusOK)
		if got.Partial {
			t.Fatalf("subspace %d: partial despite live replicas", delta)
		}
		if want := cube.Skyline(skycube.Subspace(delta)); !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d under slow replica: ids %v, want %v", delta, got.IDs, want)
		}
	}
	m := metricsText(t, cc.reg)
	if !strings.Contains(m, "skycube_cluster_hedges_total") {
		t.Fatalf("no hedges launched against a 10x-slow replica; metrics:\n%s", m)
	}
	if !strings.Contains(m, "skycube_cluster_hedge_wins_total") {
		t.Fatalf("no hedge ever won against a 10x-slow replica; metrics:\n%s", m)
	}
}

func TestChaosKilledReplicaFailover(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 300, 4, 43)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:     time.Second,
		HedgeDelay:  5 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		// This test exercises the fan-out failover machinery; with the
		// read memo on, the post-kill repeats of an already-answered query
		// would be served from cache and never touch a replica.
		DisableCache: true,
	})
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		for delta := mask.Mask(1); delta < 1<<4; delta++ {
			got := querySkyline(t, cc.coord, delta, http.StatusOK)
			if got.Partial {
				t.Fatalf("%s: subspace %d partial despite a live replica per shard", stage, delta)
			}
			if want := cube.Skyline(skycube.Subspace(delta)); !equalIDs(got.IDs, want) {
				t.Fatalf("%s: subspace %d ids %v, want %v", stage, delta, got.IDs, want)
			}
		}
	}
	check("healthy")
	// Kill one replica of shard 0 mid-run: retries and hedges must fail
	// over to the surviving replica with zero wrong answers.
	cc.faults[0][1].dead.Store(true)
	check("one replica dead")
	// Hard-close the other shard's replica socket too (connection refused
	// rather than HTTP 500).
	cc.srvs[1][0].Close()
	check("one replica dead + one socket closed")
	m := metricsText(t, cc.reg)
	if !strings.Contains(m, "skycube_cluster_retries_total") && !strings.Contains(m, "skycube_cluster_hedges_total") {
		t.Fatalf("failover left no retry/hedge trace; metrics:\n%s", m)
	}
}

func TestChaosWholeShardDownIsExplicitlyPartial(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 47)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:          time.Second,
		HedgeDelay:       5 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	// Both replicas of shard 1 die.
	cc.faults[1][0].dead.Store(true)
	cc.faults[1][1].dead.Store(true)

	// The surviving half of the data, as the partial responses should see it.
	parts, err := ds.Partition(2, skycube.RoundRobinPartition)
	if err != nil {
		t.Fatal(err)
	}
	cube0, _, err := skycube.Build(parts[0], skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for delta := mask.Mask(1); delta < 1<<3; delta++ {
		got := querySkyline(t, cc.coord, delta, http.StatusPartialContent)
		if !got.Partial {
			t.Fatalf("subspace %d: 206 without partial flag", delta)
		}
		if len(got.FailedShards) != 1 || got.FailedShards[0] != "1" {
			t.Fatalf("subspace %d: failed_shards = %v, want [1]", delta, got.FailedShards)
		}
		local := cube0.Skyline(skycube.Subspace(delta))
		want := make([]int32, len(local))
		for i, row := range local {
			want[i] = row * 2 // shard 0 of 2, round-robin
		}
		if !equalIDs(got.IDs, want) {
			t.Fatalf("subspace %d: partial ids %v, want shard-0 skyline %v", delta, got.IDs, want)
		}
	}

	// With breakers now open on shard 1, readiness must say so.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	cc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"down_shards":["1"]`) {
		t.Fatalf("healthz body lacks down shard: %s", rec.Body.String())
	}
	m := metricsText(t, cc.reg)
	if !strings.Contains(m, "skycube_cluster_partial_responses_total") {
		t.Fatalf("partial responses not counted; metrics:\n%s", m)
	}
	if !strings.Contains(m, "skycube_cluster_breaker_opens_total") {
		t.Fatalf("breaker opens not counted; metrics:\n%s", m)
	}
}

func TestChaosAllShardsDown(t *testing.T) {
	ds := skycube.GenerateSynthetic(skycube.Independent, 100, 3, 53)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:     500 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	// Learn dims while healthy, then lose everything.
	if err := cc.coord.Refresh(t.Context()); err != nil {
		t.Fatal(err)
	}
	for _, shard := range cc.faults {
		for _, f := range shard {
			f.dead.Store(true)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/skyline?dims=0,1", nil)
	rec := httptest.NewRecorder()
	cc.coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all shards down: status %d, want 502: %s", rec.Code, rec.Body.String())
	}
}

func TestChaosConcurrentQueriesUnderFaults(t *testing.T) {
	// Hammer the coordinator from many goroutines while a replica flaps;
	// run under -race this doubles as a data-race probe for the client's
	// hedge/retry machinery.
	ds := skycube.GenerateSynthetic(skycube.Independent, 200, 3, 59)
	cc := newChaosCluster(t, ds, CoordinatorOptions{
		Timeout:     time.Second,
		HedgeDelay:  2 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	cube, _, err := skycube.Build(ds, skycube.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		// Flap one replica for the duration of the test.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cc.faults[0][0].dead.Store(i%2 == 0)
			time.Sleep(3 * time.Millisecond)
		}
	}()
	defer close(stop)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				delta := mask.Mask(1 + (w+i)%7)
				status, got, err := rawQuerySkyline(cc.coord, delta)
				if err != nil {
					errs <- fmt.Errorf("worker %d: subspace %d: %v", w, delta, err)
					return
				}
				if status != http.StatusOK || got.Partial {
					errs <- fmt.Errorf("worker %d: subspace %d: status %d partial=%v", w, delta, status, got.Partial)
					return
				}
				if want := cube.Skyline(skycube.Subspace(delta)); !equalIDs(got.IDs, want) {
					errs <- fmt.Errorf("worker %d: subspace %d ids %v, want %v", w, delta, got.IDs, want)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
