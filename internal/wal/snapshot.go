package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"skycube/internal/delta"
)

// writeSnapshotFile serializes a checkpoint — the captured updater state
// plus the batch-reply mirror — to path, fsyncs it, and returns its size.
// The whole file is covered by a trailing CRC32C; a snapshot that fails
// that check is ignored by recovery in favour of an older one.
//
// Layout (little-endian): magic "SKYSNP01", u64 tail segment seq, u64
// epoch, u32 dims, u64 live, u64 len(vals) + vals, u32 dead count + ids,
// u32 pending-insert count + (id, cancelled, point) each, u32
// pending-delete count + ids, u32 batch count + (id, status, body) each,
// u32 CRC.
func writeSnapshotFile(path string, tailSeq uint64, st delta.RestoreState,
	batches map[string]BatchReply, batchOrder []string) (int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	w := &crcWriter{w: bufio.NewWriterSize(f, 1<<16)}
	encodeSnapshotBody(w, tailSeq, st, batches, batchOrder)
	if w.err != nil {
		f.Close()
		return 0, w.err
	}
	if err := w.w.(*bufio.Writer).Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return w.n, nil
}

// encodeSnapshotBody writes the full snapshot wire encoding — fields and
// trailing whole-stream CRC — through w. It is shared by the on-disk
// checkpoint writer and the snapshot-stream encoder, so a served snapshot
// is byte-compatible with a checkpoint file.
func encodeSnapshotBody(w *crcWriter, tailSeq uint64, st delta.RestoreState,
	batches map[string]BatchReply, batchOrder []string) {
	w.bytes([]byte(snapMagic))
	w.u64(tailSeq)
	w.u64(st.Epoch)
	w.u32(uint32(st.Dims))
	w.u64(uint64(st.Live))
	w.u64(uint64(len(st.Vals)))
	for _, v := range st.Vals {
		w.u32(math.Float32bits(v))
	}
	w.u32(uint32(len(st.Dead)))
	for _, id := range st.Dead {
		w.u32(uint32(id))
	}
	w.u32(uint32(len(st.PendingInserts)))
	for _, op := range st.PendingInserts {
		w.u32(uint32(op.ID))
		c := byte(0)
		if op.Cancelled {
			c = 1
		}
		w.bytes([]byte{c})
		for _, v := range op.Point {
			w.u32(math.Float32bits(v))
		}
	}
	w.u32(uint32(len(st.PendingDeletes)))
	for _, id := range st.PendingDeletes {
		w.u32(uint32(id))
	}
	// Batches in remembered order, so eviction order survives restarts.
	w.u32(uint32(len(batchOrder)))
	for _, id := range batchOrder {
		rep := batches[id]
		w.u16(uint16(len(id)))
		w.bytes([]byte(id))
		w.u32(uint32(rep.Status))
		w.u32(uint32(len(rep.Body)))
		w.bytes(rep.Body)
	}
	sum := w.crc
	w.u32(sum)
}

// crcWriter tracks a running CRC32C and byte count over the written
// stream, latching the first error.
type crcWriter struct {
	w   interface{ Write([]byte) (int, error) }
	crc uint32
	n   int64
	err error
}

func (c *crcWriter) bytes(b []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, castagnoli, b)
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *crcWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.bytes(b[:])
}

func (c *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.bytes(b[:])
}

func (c *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.bytes(b[:])
}

// snapshotData is a decoded checkpoint file.
type snapshotData struct {
	tailSeq    uint64
	state      delta.RestoreState
	batches    map[string]BatchReply
	batchOrder []string
}

// readSnapshotFile loads and verifies one checkpoint file. Any framing,
// bounds or CRC problem is an error — the caller falls back to an older
// snapshot or fails recovery.
func readSnapshotFile(path string) (*snapshotData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(raw, path)
}

// decodeSnapshot verifies and decodes one snapshot encoding (a checkpoint
// file's bytes, or the same bytes received over a snapshot stream). path
// only labels errors.
func decodeSnapshot(raw []byte, path string) (*snapshotData, error) {
	if len(raw) < len(snapMagic)+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: not a snapshot file", path)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("wal: %s: snapshot CRC mismatch", path)
	}
	r := &byteReader{b: body[len(snapMagic):]}
	sd := &snapshotData{batches: make(map[string]BatchReply)}
	sd.tailSeq = r.u64()
	sd.state.Epoch = r.u64()
	sd.state.Dims = int(r.u32())
	sd.state.Live = int(r.u64())
	if r.err == nil && (sd.state.Dims <= 0 || sd.state.Dims > math.MaxUint16) {
		return nil, fmt.Errorf("wal: %s: snapshot has %d dims", path, sd.state.Dims)
	}
	nVals := int(r.u64())
	if r.err == nil && (nVals < 0 || nVals > len(r.b)/4+1) {
		return nil, fmt.Errorf("wal: %s: snapshot declares %d values", path, nVals)
	}
	if r.err == nil {
		sd.state.Vals = make([]float32, nVals)
		for i := range sd.state.Vals {
			sd.state.Vals[i] = math.Float32frombits(r.u32())
		}
	}
	nDead := int(r.u32())
	if r.err == nil && nDead >= 0 && nDead <= len(r.b)/4+1 {
		sd.state.Dead = make([]int32, nDead)
		for i := range sd.state.Dead {
			sd.state.Dead[i] = int32(r.u32())
		}
	}
	nPI := int(r.u32())
	for i := 0; i < nPI && r.err == nil; i++ {
		op := delta.PendingOp{ID: int32(r.u32())}
		op.Cancelled = r.u8() != 0
		op.Point = make([]float32, sd.state.Dims)
		for j := range op.Point {
			op.Point[j] = math.Float32frombits(r.u32())
		}
		sd.state.PendingInserts = append(sd.state.PendingInserts, op)
	}
	nPD := int(r.u32())
	for i := 0; i < nPD && r.err == nil; i++ {
		sd.state.PendingDeletes = append(sd.state.PendingDeletes, int32(r.u32()))
	}
	nB := int(r.u32())
	for i := 0; i < nB && r.err == nil; i++ {
		id := string(r.take(int(r.u16())))
		status := int(r.u32())
		rbody := append([]byte(nil), r.take(int(r.u32()))...)
		if r.err == nil {
			sd.batches[id] = BatchReply{Status: status, Body: rbody}
			sd.batchOrder = append(sd.batchOrder, id)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("wal: %s: %v", path, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wal: %s: %d trailing bytes", path, len(r.b))
	}
	return sd, nil
}

// byteReader consumes little-endian fields from a byte slice, latching the
// first out-of-bounds read as an error.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.err = fmt.Errorf("truncated snapshot (want %d bytes, have %d)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) u8() byte {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
